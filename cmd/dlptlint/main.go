// Command dlptlint runs the project's analyzer suite
// (internal/analysis/...) over the module. Two modes:
//
// Direct (the CI entry point):
//
//	go run ./cmd/dlptlint ./...
//
// loads, type-checks and analyzes the matched packages and exits 1 if
// any analyzer reports a finding. -run narrows to a comma-separated
// analyzer subset, -list prints the suite.
//
// Vettool: when invoked by `go vet -vettool=$(which dlptlint)` the
// tool speaks the unitchecker protocol — go vet probes with -V=full
// and -flags, then invokes the tool once per package with a *.cfg
// JSON file describing the unit. Diagnostics go to stderr and exit
// status 2 marks findings, mirroring the real
// golang.org/x/tools/go/analysis/unitchecker.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dlpt/internal/analysis"
	"dlpt/internal/analysis/load"
	"dlpt/internal/analysis/suite"
)

// modulePath scopes vettool mode: analyzers only run on this module's
// packages, never on the stdlib units go vet also feeds the tool.
const modulePath = "dlpt"

func main() {
	// go vet probes the vettool before handing it work.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full":
			printVersion()
			return
		case "-flags":
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(vetUnit(os.Args[1]))
	}

	var (
		runFlag  = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		listFlag = flag.Bool("list", false, "list registered analyzers and exit")
	)
	flag.Parse()

	if *listFlag {
		for _, a := range suite.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := selectAnalyzers(*runFlag)
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	prog, err := load.Dir(root, patterns...)
	if err != nil {
		fatal(err)
	}

	findings := 0
	for _, pkg := range prog.Packages {
		for _, a := range analyzers {
			diags, err := analysis.RunPackage(a, prog.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.Path)
			if err != nil {
				fatal(err)
			}
			for _, d := range diags {
				findings++
				fmt.Fprintf(os.Stderr, "%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "dlptlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func selectAnalyzers(runSpec string) []*analysis.Analyzer {
	if runSpec == "" {
		return suite.All()
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(runSpec, ",") {
		a := analysis.Lookup(strings.TrimSpace(name))
		if a == nil {
			fatal(fmt.Errorf("unknown analyzer %q (use -list)", name))
		}
		out = append(out, a)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlptlint:", err)
	os.Exit(1)
}

// printVersion answers go vet's -V=full probe. The version string
// must be stable per build; hash the binary itself the way
// unitchecker does.
func printVersion() {
	name := filepath.Base(os.Args[0])
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			_, _ = io.Copy(h, f)
			f.Close()
			fmt.Printf("%s version dev sha256=%x\n", name, h.Sum(nil))
			return
		}
	}
	fmt.Printf("%s version dev\n", name)
}

// vetConfig is the unitchecker *.cfg schema (the subset dlptlint
// consumes).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one go vet unit described by cfgFile and returns
// the process exit code (0 clean, 2 findings — go vet's convention).
func vetUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parse %s: %w", cfgFile, err))
	}

	// go vet hands the tool every dependency unit (for fact
	// propagation); dlptlint's invariants are this module's, so
	// stdlib and vendored deps pass through untouched.
	if cfg.ImportPath != modulePath && !strings.HasPrefix(cfg.ImportPath, modulePath+"/") {
		writeVetx(cfg.VetxOutput)
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(f)
	}
	tcfg := &types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg.VetxOutput)
			return 0
		}
		fatal(err)
	}

	findings := 0
	for _, a := range suite.All() {
		diags, err := analysis.RunPackage(a, fset, files, pkg, info, cfg.ImportPath)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			findings++
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	writeVetx(cfg.VetxOutput)
	if findings > 0 {
		return 2
	}
	return 0
}

// writeVetx emits the (empty) facts file go vet expects at
// VetxOutput; dlptlint's analyzers are fact-free.
func writeVetx(path string) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, []byte{}, 0o666); err != nil {
		fatal(err)
	}
}
