package main

import "testing"

func TestRunSmall(t *testing.T) {
	if err := run(6, 60, 120, 1, "live"); err != nil {
		t.Fatal(err)
	}
}

func TestRunSinglePeer(t *testing.T) {
	if err := run(1, 10, 20, 2, "live"); err != nil {
		t.Fatal(err)
	}
}

func TestRunLocalEngine(t *testing.T) {
	if err := run(4, 30, 60, 3, "local"); err != nil {
		t.Fatal(err)
	}
}

func TestRunTCPEngine(t *testing.T) {
	if err := run(4, 30, 60, 4, "tcp"); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownEngine(t *testing.T) {
	if err := run(4, 10, 10, 1, "quantum"); err == nil {
		t.Fatal("unknown engine must error")
	}
}
