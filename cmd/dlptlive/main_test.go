package main

import "testing"

func TestRunSmall(t *testing.T) {
	if err := run(6, 60, 120, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunSinglePeer(t *testing.T) {
	if err := run(1, 10, 20, 2); err != nil {
		t.Fatal(err)
	}
}
