// Command dlptlive demonstrates the DLPT deployment runtimes behind
// the pluggable engine API: it starts an overlay on the chosen
// engine, registers a grid-computing service catalogue, runs
// concurrent discoveries, and prints the resulting prefix tree and
// routing statistics.
//
// Usage:
//
//	dlptlive [-engine local|live|tcp] [-peers N] [-services N] [-queries N] [-seed N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"dlpt"
	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

func main() {
	engineKind := flag.String("engine", "live", "execution engine: local, live or tcp")
	peers := flag.Int("peers", 16, "number of peers")
	services := flag.Int("services", 200, "number of services to register")
	queries := flag.Int("queries", 1000, "number of concurrent discovery requests")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	if err := run(*peers, *services, *queries, *seed, *engineKind); err != nil {
		fmt.Fprintf(os.Stderr, "dlptlive: %v\n", err)
		os.Exit(1)
	}
}

func run(peers, services, queries int, seed int64, engineKind string) error {
	ctx := context.Background()
	reg, err := dlpt.New(peers,
		dlpt.WithSeed(seed),
		dlpt.WithAlphabet(keys.LowerAlnum),
		dlpt.WithEngine(dlpt.EngineKind(engineKind)))
	if err != nil {
		return err
	}
	defer reg.Close()

	corpus := workload.GridCorpus(services)
	batch := make([]dlpt.Registration, len(corpus))
	for i, k := range corpus {
		batch[i] = dlpt.Registration{Name: string(k), Endpoint: "endpoint://" + string(k)}
	}
	if err := reg.RegisterBatch(ctx, batch); err != nil {
		return err
	}
	fmt.Printf("overlay: %s engine, %d peers, %d services, %d tree nodes\n",
		reg.Engine().Name(), reg.NumPeers(), services, reg.NumNodes())

	var wg sync.WaitGroup
	var found, logical, physical int64
	workers := 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < queries; i += workers {
				svc, ok, err := reg.Discover(ctx, string(corpus[i%len(corpus)]))
				if err != nil {
					return
				}
				if ok {
					atomic.AddInt64(&found, 1)
					atomic.AddInt64(&logical, int64(svc.LogicalHops))
					atomic.AddInt64(&physical, int64(svc.PhysicalHops))
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("discoveries: %d/%d found, avg %.2f logical hops, %.2f physical hops\n",
		found, queries,
		float64(logical)/float64(found), float64(physical)/float64(found))

	if err := reg.Validate(ctx); err != nil {
		return fmt.Errorf("overlay invariants violated: %w", err)
	}
	fmt.Println("overlay invariants: OK")

	completions, err := reg.Complete(ctx, "sge", 5)
	if err != nil {
		return err
	}
	fmt.Printf("\ncompletion of \"sge\": %v\n", completions)
	inRange, err := reg.Range(ctx, "saxpy", "sgemv", 5)
	if err != nil {
		return err
	}
	fmt.Printf("range [saxpy, sgemv]: %v\n", inRange)

	snap, err := reg.Engine().Snapshot(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\ntree depth: %d, keys: %d\n", snap.Depth(), snap.NumKeys())
	return nil
}
