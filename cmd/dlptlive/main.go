// Command dlptlive demonstrates the concurrent DLPT runtime: it
// starts a goroutine-per-peer overlay, registers a grid-computing
// service catalogue, runs concurrent discoveries, and prints the
// resulting prefix tree and routing statistics.
//
// Usage:
//
//	dlptlive [-peers N] [-services N] [-queries N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"dlpt/internal/keys"
	"dlpt/internal/live"
	"dlpt/internal/workload"
)

func main() {
	peers := flag.Int("peers", 16, "number of peers")
	services := flag.Int("services", 200, "number of services to register")
	queries := flag.Int("queries", 1000, "number of concurrent discovery requests")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	if err := run(*peers, *services, *queries, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "dlptlive: %v\n", err)
		os.Exit(1)
	}
}

func run(peers, services, queries int, seed int64) error {
	caps := make([]int, peers)
	for i := range caps {
		caps[i] = 1 << 20
	}
	cluster, err := live.Start(keys.LowerAlnum, caps, seed)
	if err != nil {
		return err
	}
	defer cluster.Stop()

	corpus := workload.GridCorpus(services)
	for _, k := range corpus {
		if err := cluster.Register(k, "endpoint://"+string(k)); err != nil {
			return err
		}
	}
	fmt.Printf("overlay: %d peers, %d services, %d tree nodes\n",
		cluster.NumPeers(), services, cluster.NumNodes())

	var wg sync.WaitGroup
	var found, logical, physical int64
	workers := 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < queries; i += workers {
				res, err := cluster.Discover(corpus[i%len(corpus)])
				if err != nil {
					return
				}
				if res.Found {
					atomic.AddInt64(&found, 1)
					atomic.AddInt64(&logical, int64(res.LogicalHops))
					atomic.AddInt64(&physical, int64(res.PhysicalHops))
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("discoveries: %d/%d found, avg %.2f logical hops, %.2f physical hops\n",
		found, queries,
		float64(logical)/float64(found), float64(physical)/float64(found))

	if err := cluster.Validate(); err != nil {
		return fmt.Errorf("overlay invariants violated: %w", err)
	}
	fmt.Println("overlay invariants: OK")

	snap := cluster.Snapshot()
	fmt.Printf("\ncompletion of \"sge\": %v\n", snap.Complete("sge", 5))
	fmt.Printf("range [saxpy, sgemv]: %v\n", snap.Range("saxpy", "sgemv", 5))
	fmt.Printf("\ntree depth: %d, keys: %d\n", snap.Depth(), snap.NumKeys())
	return nil
}
