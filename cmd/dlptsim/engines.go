package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"dlpt"
	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

// runEngines drives the identical register/discover/range workload
// through each execution engine and reports wall-clock latency and
// routing cost side by side — the deployment-shape comparison the
// paper's future-work prototype asks for.
func runEngines(quick bool, seed int64, w io.Writer) error {
	peers, nkeys, queries := 32, 400, 2000
	if quick {
		peers, nkeys, queries = 8, 120, 300
	}
	corpus := workload.GridCorpus(nkeys)
	batch := make([]dlpt.Registration, len(corpus))
	for i, k := range corpus {
		batch[i] = dlpt.Registration{Name: string(k), Endpoint: "ep://" + string(k)}
	}

	fmt.Fprintf(w, "# Engine comparison: %d peers, %d keys, %d discoveries + %d range queries\n",
		peers, nkeys, queries, queries/10)
	fmt.Fprintf(w, "%-8s  %12s  %12s  %12s  %10s  %10s\n",
		"engine", "register", "discover/op", "range/op", "log.hops", "phys.hops")

	ctx := context.Background()
	for _, kind := range []dlpt.EngineKind{dlpt.EngineLocal, dlpt.EngineLive, dlpt.EngineTCP} {
		reg, err := dlpt.New(peers,
			dlpt.WithSeed(seed),
			dlpt.WithAlphabet(keys.LowerAlnum),
			dlpt.WithEngine(kind))
		if err != nil {
			return err
		}
		start := time.Now()
		if err := reg.RegisterBatch(ctx, batch); err != nil {
			reg.Close()
			return err
		}
		regDur := time.Since(start)

		var logical, physical int
		start = time.Now()
		for i := 0; i < queries; i++ {
			svc, ok, err := reg.Discover(ctx, string(corpus[i%len(corpus)]))
			if err != nil || !ok {
				reg.Close()
				return fmt.Errorf("%s: discover %q: ok=%v err=%v", kind, corpus[i%len(corpus)], ok, err)
			}
			logical += svc.LogicalHops
			physical += svc.PhysicalHops
		}
		discDur := time.Since(start) / time.Duration(queries)

		start = time.Now()
		for i := 0; i < queries/10; i++ {
			if _, err := reg.Range(ctx, "pd", "pz", 0); err != nil {
				reg.Close()
				return err
			}
		}
		rangeDur := time.Since(start) / time.Duration(queries/10)
		reg.Close()

		fmt.Fprintf(w, "%-8s  %12v  %12v  %12v  %10.2f  %10.2f\n",
			kind, regDur.Round(time.Microsecond), discDur.Round(time.Microsecond),
			rangeDur.Round(time.Microsecond),
			float64(logical)/float64(queries), float64(physical)/float64(queries))
	}
	return nil
}
