package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func parseBaseline(t *testing.T, raw string) *benchReport {
	t.Helper()
	base := &benchReport{}
	if err := json.Unmarshal([]byte(raw), base); err != nil {
		t.Fatal(err)
	}
	return base
}

const gateBaseline = `{"peers":32,"keys":400,"results":[` +
	`{"engine":"local","register_ns_per_key":15000,"discover_ns_per_op":2700,"range_ns_per_op":20000},` +
	`{"engine":"tcp","register_ns_per_key":2900,"discover_ns_per_op":28000,"range_ns_per_op":16000}]}`

func gateReport(tcpDiscover int64) *benchReport {
	return &benchReport{Results: []benchResult{
		{Engine: "local", RegisterNsPerKey: 14000, DiscoverNsPerOp: 2800, RangeNsPerOp: 21000},
		{Engine: "tcp", RegisterNsPerKey: 3000, DiscoverNsPerOp: tcpDiscover, RangeNsPerOp: 17000},
	}}
}

func TestPerfGatePasses(t *testing.T) {
	base := parseBaseline(t, gateBaseline)
	var sb strings.Builder
	if err := checkBaseline(gateReport(30000), base, "baseline.json", &sb); err != nil {
		t.Fatalf("gate failed on healthy run: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "perf gate passed") {
		t.Fatalf("missing pass marker:\n%s", sb.String())
	}
}

func TestPerfGateFailsOnRegression(t *testing.T) {
	base := parseBaseline(t, gateBaseline)
	var sb strings.Builder
	// 28000 -> 80000 ns is a 2.86x regression: must fail.
	err := checkBaseline(gateReport(80000), base, "baseline.json", &sb)
	if err == nil {
		t.Fatalf("gate passed a 2.86x regression:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "tcp discover_ns_per_op") {
		t.Fatalf("regression not attributed: %v", err)
	}
}

func TestPerfGateJitterFloor(t *testing.T) {
	// A microsecond-scale metric past the factor but inside the
	// absolute jitter floor must not trip the gate: 900 -> 2500 ns is
	// 2.8x but only +1600 ns.
	base := parseBaseline(t, `{"results":[`+
		`{"engine":"local","register_ns_per_key":15000,"discover_ns_per_op":900,"range_ns_per_op":20000}]}`)
	rep := &benchReport{Results: []benchResult{
		{Engine: "local", RegisterNsPerKey: 14000, DiscoverNsPerOp: 2500, RangeNsPerOp: 21000},
	}}
	if err := checkBaseline(rep, base, "baseline.json", &strings.Builder{}); err != nil {
		t.Fatalf("gate tripped inside the jitter floor: %v", err)
	}
}

func TestPerfGateMissingEngine(t *testing.T) {
	base := parseBaseline(t, gateBaseline)
	rep := &benchReport{Results: []benchResult{
		{Engine: "local", RegisterNsPerKey: 14000, DiscoverNsPerOp: 2800, RangeNsPerOp: 21000},
	}}
	if err := checkBaseline(rep, base, "baseline.json", &strings.Builder{}); err == nil {
		t.Fatal("gate ignored a missing engine")
	}
}
