package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"dlpt"
	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

// benchResult is one engine's measurements, the unit of the
// machine-readable benchmark output.
type benchResult struct {
	Engine            string  `json:"engine"`
	RegisterNsPerKey  int64   `json:"register_ns_per_key"`
	DiscoverNsPerOp   int64   `json:"discover_ns_per_op"`
	RangeNsPerOp      int64   `json:"range_ns_per_op"`
	LogicalHopsPerOp  float64 `json:"logical_hops_per_op"`
	PhysicalHopsPerOp float64 `json:"physical_hops_per_op"`
}

// benchReport is the whole run: workload scale, environment, one
// result per engine. The schema is the perf trajectory consumed by
// tooling comparing BENCH_engines.json across commits.
type benchReport struct {
	Peers       int           `json:"peers"`
	Keys        int           `json:"keys"`
	Discoveries int           `json:"discoveries"`
	Ranges      int           `json:"ranges"`
	Seed        int64         `json:"seed"`
	GoVersion   string        `json:"go_version"`
	Results     []benchResult `json:"results"`
}

// runBench measures the identical register/discover/range workload on
// every engine and reports the results as JSON (default, written to
// -out) or as the human-readable table of the engines experiment.
func runBench(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(w)
	jsonOut := fs.Bool("json", true, "write machine-readable JSON to -out")
	out := fs.String("out", "BENCH_engines.json", "JSON output path (- for stdout)")
	quick := fs.Bool("quick", false, "reduced scale")
	seed := fs.Int64("seed", 1, "base random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("bench: unexpected argument %q", fs.Arg(0))
	}
	if !*jsonOut {
		return runEngines(*quick, *seed, w)
	}

	rep, err := measureEngines(*quick, *seed)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		_, err = w.Write(buf)
		return err
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "# wrote %s (%d engines)\n", *out, len(rep.Results))
	return nil
}

// measureEngines runs the comparison workload of the engines
// experiment and returns structured timings.
func measureEngines(quick bool, seed int64) (*benchReport, error) {
	peers, nkeys, queries := 32, 400, 2000
	if quick {
		peers, nkeys, queries = 8, 120, 300
	}
	corpus := workload.GridCorpus(nkeys)
	batch := make([]dlpt.Registration, len(corpus))
	for i, k := range corpus {
		batch[i] = dlpt.Registration{Name: string(k), Endpoint: "ep://" + string(k)}
	}
	rep := &benchReport{
		Peers:       peers,
		Keys:        nkeys,
		Discoveries: queries,
		Ranges:      queries / 10,
		Seed:        seed,
		GoVersion:   runtime.Version(),
	}
	ctx := context.Background()
	for _, kind := range []dlpt.EngineKind{dlpt.EngineLocal, dlpt.EngineLive, dlpt.EngineTCP} {
		reg, err := dlpt.New(peers,
			dlpt.WithSeed(seed),
			dlpt.WithAlphabet(keys.LowerAlnum),
			dlpt.WithEngine(kind))
		if err != nil {
			return nil, err
		}
		res, err := measureOne(ctx, reg, kind, batch, corpus, queries)
		reg.Close()
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

func measureOne(ctx context.Context, reg *dlpt.Registry, kind dlpt.EngineKind,
	batch []dlpt.Registration, corpus []keys.Key, queries int) (benchResult, error) {
	var out benchResult
	out.Engine = string(kind)

	start := time.Now()
	if err := reg.RegisterBatch(ctx, batch); err != nil {
		return out, err
	}
	out.RegisterNsPerKey = time.Since(start).Nanoseconds() / int64(len(batch))

	var logical, physical int
	start = time.Now()
	for i := 0; i < queries; i++ {
		svc, ok, err := reg.Discover(ctx, string(corpus[i%len(corpus)]))
		if err != nil || !ok {
			return out, fmt.Errorf("%s: discover %q: ok=%v err=%v",
				kind, corpus[i%len(corpus)], ok, err)
		}
		logical += svc.LogicalHops
		physical += svc.PhysicalHops
	}
	out.DiscoverNsPerOp = time.Since(start).Nanoseconds() / int64(queries)
	out.LogicalHopsPerOp = float64(logical) / float64(queries)
	out.PhysicalHopsPerOp = float64(physical) / float64(queries)

	ranges := queries / 10
	start = time.Now()
	for i := 0; i < ranges; i++ {
		if _, err := reg.Range(ctx, "pd", "pz", 0); err != nil {
			return out, err
		}
	}
	out.RangeNsPerOp = time.Since(start).Nanoseconds() / int64(ranges)
	return out, nil
}
