package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"dlpt"
	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

// benchResult is one engine's measurements, the unit of the
// machine-readable benchmark output. Allocation counters are
// process-wide runtime.MemStats deltas over the timed section: on the
// concurrent engines they include background goroutine allocations,
// so they track trends, not exact per-op attribution.
type benchResult struct {
	Engine               string  `json:"engine"`
	RegisterNsPerKey     int64   `json:"register_ns_per_key"`
	RegisterAllocsPerKey int64   `json:"register_allocs_per_key"`
	RegisterBytesPerKey  int64   `json:"register_bytes_per_key"`
	DiscoverNsPerOp      int64   `json:"discover_ns_per_op"`
	DiscoverAllocsPerOp  int64   `json:"discover_allocs_per_op"`
	DiscoverBytesPerOp   int64   `json:"discover_bytes_per_op"`
	RangeNsPerOp         int64   `json:"range_ns_per_op"`
	RangeAllocsPerOp     int64   `json:"range_allocs_per_op"`
	RangeBytesPerOp      int64   `json:"range_bytes_per_op"`
	LogicalHopsPerOp     float64 `json:"logical_hops_per_op"`
	PhysicalHopsPerOp    float64 `json:"physical_hops_per_op"`
}

// benchReport is the whole run: workload scale, environment, one
// result per engine. The schema is the perf trajectory consumed by
// tooling comparing BENCH_engines.json across commits.
type benchReport struct {
	Peers       int           `json:"peers"`
	Keys        int           `json:"keys"`
	Discoveries int           `json:"discoveries"`
	Ranges      int           `json:"ranges"`
	Seed        int64         `json:"seed"`
	GoVersion   string        `json:"go_version"`
	Results     []benchResult `json:"results"`
}

// regressionFactor is the perf gate: a latency metric more than this
// factor above the committed baseline fails the run.
const regressionFactor = 2.0

// regressionFloorNs absorbs scheduler jitter on microsecond-scale
// metrics: a metric must also exceed the baseline by this much in
// absolute terms to count as a regression.
const regressionFloorNs = 2000

// runBench measures the identical register/discover/range workload on
// every engine and reports the results as JSON (default, written to
// -out) or as the human-readable table of the engines experiment.
// With -check it additionally diffs the run against a committed
// baseline and fails on any >2x latency regression (the CI perf
// gate).
func runBench(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(w)
	jsonOut := fs.Bool("json", true, "write machine-readable JSON to -out")
	out := fs.String("out", "BENCH_engines.json", "JSON output path (- for stdout)")
	check := fs.String("check", "", "baseline JSON to diff against; fail on >2x ns/op regression")
	quick := fs.Bool("quick", false, "reduced scale")
	seed := fs.Int64("seed", 1, "base random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("bench: unexpected argument %q", fs.Arg(0))
	}
	if !*jsonOut && *check == "" {
		return runEngines(*quick, *seed, w)
	}

	// Load the baseline before anything is written: with the default
	// -out, `bench -check BENCH_engines.json` would otherwise
	// overwrite the baseline first and gate the run against itself.
	var baseline *benchReport
	if *check != "" {
		buf, err := os.ReadFile(*check)
		if err != nil {
			return fmt.Errorf("bench: read baseline: %w", err)
		}
		baseline = &benchReport{}
		if err := json.Unmarshal(buf, baseline); err != nil {
			return fmt.Errorf("bench: parse baseline %s: %w", *check, err)
		}
	}

	rep, err := measureEngines(*quick, *seed)
	if err != nil {
		return err
	}
	if *jsonOut {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if *out == "-" {
			if _, err := w.Write(buf); err != nil {
				return err
			}
		} else {
			if err := os.WriteFile(*out, buf, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "# wrote %s (%d engines)\n", *out, len(rep.Results))
		}
	}
	if baseline != nil {
		return checkBaseline(rep, baseline, *check, w)
	}
	return nil
}

// checkBaseline diffs rep against the pre-loaded committed baseline
// and returns an error naming every latency metric that regressed
// more than regressionFactor (the CI perf gate).
func checkBaseline(rep *benchReport, base *benchReport, path string, w io.Writer) error {
	current := make(map[string]benchResult, len(rep.Results))
	for _, r := range rep.Results {
		current[r.Engine] = r
	}
	var regressions []string
	for _, b := range base.Results {
		cur, ok := current[b.Engine]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s: engine missing from this run", b.Engine))
			continue
		}
		for _, m := range []struct {
			name      string
			base, cur int64
		}{
			{"register_ns_per_key", b.RegisterNsPerKey, cur.RegisterNsPerKey},
			{"discover_ns_per_op", b.DiscoverNsPerOp, cur.DiscoverNsPerOp},
			{"range_ns_per_op", b.RangeNsPerOp, cur.RangeNsPerOp},
		} {
			ratio := float64(m.cur) / float64(m.base)
			verdict := "ok"
			if float64(m.cur) > regressionFactor*float64(m.base) &&
				m.cur-m.base > regressionFloorNs {
				verdict = "REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s %s: %d -> %d ns (%.2fx > %.1fx limit)",
						b.Engine, m.name, m.base, m.cur, ratio, regressionFactor))
			}
			fmt.Fprintf(w, "# perf-gate %-5s %-20s %8d -> %8d ns  %.2fx  %s\n",
				b.Engine, m.name, m.base, m.cur, ratio, verdict)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench: perf gate failed against %s:\n  %s",
			path, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(w, "# perf gate passed against %s\n", path)
	return nil
}

// measureEngines runs the comparison workload of the engines
// experiment and returns structured timings.
func measureEngines(quick bool, seed int64) (*benchReport, error) {
	peers, nkeys, queries := 32, 400, 2000
	if quick {
		peers, nkeys, queries = 8, 120, 300
	}
	corpus := workload.GridCorpus(nkeys)
	batch := make([]dlpt.Registration, len(corpus))
	for i, k := range corpus {
		batch[i] = dlpt.Registration{Name: string(k), Endpoint: "ep://" + string(k)}
	}
	rep := &benchReport{
		Peers:       peers,
		Keys:        nkeys,
		Discoveries: queries,
		Ranges:      queries / 10,
		Seed:        seed,
		GoVersion:   runtime.Version(),
	}
	ctx := context.Background()
	for _, kind := range []dlpt.EngineKind{dlpt.EngineLocal, dlpt.EngineLive, dlpt.EngineTCP} {
		reg, err := dlpt.New(peers,
			dlpt.WithSeed(seed),
			dlpt.WithAlphabet(keys.LowerAlnum),
			dlpt.WithEngine(kind))
		if err != nil {
			return nil, err
		}
		res, err := measureOne(ctx, reg, kind, batch, corpus, queries)
		reg.Close()
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// memCounters collects and reads the process-wide cumulative
// allocation counters. The collection isolates the timed phases from
// each other: without it a phase inherits the previous phase's GC
// trigger state, and a low-allocation phase (pooled TCP discovery)
// hands the next phase a near-trigger heap that taxes it with the
// collections the earlier phase banked.
func memCounters() (mallocs, bytes uint64) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs, ms.TotalAlloc
}

func measureOne(ctx context.Context, reg *dlpt.Registry, kind dlpt.EngineKind,
	batch []dlpt.Registration, corpus []keys.Key, queries int) (benchResult, error) {
	var out benchResult
	out.Engine = string(kind)

	m0, b0 := memCounters()
	start := time.Now()
	if err := reg.RegisterBatch(ctx, batch); err != nil {
		return out, err
	}
	out.RegisterNsPerKey = time.Since(start).Nanoseconds() / int64(len(batch))
	m1, b1 := memCounters()
	out.RegisterAllocsPerKey = int64(m1-m0) / int64(len(batch))
	out.RegisterBytesPerKey = int64(b1-b0) / int64(len(batch))

	var logical, physical int
	m0, b0 = m1, b1 // the end-of-phase read already collected
	start = time.Now()
	for i := 0; i < queries; i++ {
		svc, ok, err := reg.Discover(ctx, string(corpus[i%len(corpus)]))
		if err != nil || !ok {
			return out, fmt.Errorf("%s: discover %q: ok=%v err=%v",
				kind, corpus[i%len(corpus)], ok, err)
		}
		logical += svc.LogicalHops
		physical += svc.PhysicalHops
	}
	out.DiscoverNsPerOp = time.Since(start).Nanoseconds() / int64(queries)
	m1, b1 = memCounters()
	out.DiscoverAllocsPerOp = int64(m1-m0) / int64(queries)
	out.DiscoverBytesPerOp = int64(b1-b0) / int64(queries)
	out.LogicalHopsPerOp = float64(logical) / float64(queries)
	out.PhysicalHopsPerOp = float64(physical) / float64(queries)

	ranges := queries / 10
	m0, b0 = m1, b1
	start = time.Now()
	for i := 0; i < ranges; i++ {
		if _, err := reg.Range(ctx, "pd", "pz", 0); err != nil {
			return out, err
		}
	}
	out.RangeNsPerOp = time.Since(start).Nanoseconds() / int64(ranges)
	m1, b1 = memCounters()
	out.RangeAllocsPerOp = int64(m1-m0) / int64(ranges)
	out.RangeBytesPerOp = int64(b1-b0) / int64(ranges)
	return out, nil
}
