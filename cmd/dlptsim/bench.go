package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"dlpt"
	"dlpt/engine"
	"dlpt/internal/catalog"
	"dlpt/internal/daemon"
	"dlpt/internal/keys"
	"dlpt/internal/obs"
	"dlpt/internal/workload"
)

// benchResult is one engine's measurements, the unit of the
// machine-readable benchmark output. Allocation counters are
// process-wide runtime.MemStats deltas over the timed section: on the
// concurrent engines they include background goroutine allocations,
// so they track trends, not exact per-op attribution.
type benchResult struct {
	Engine               string  `json:"engine"`
	RegisterNsPerKey     int64   `json:"register_ns_per_key"`
	RegisterAllocsPerKey int64   `json:"register_allocs_per_key"`
	RegisterBytesPerKey  int64   `json:"register_bytes_per_key"`
	DiscoverNsPerOp      int64   `json:"discover_ns_per_op"`
	DiscoverAllocsPerOp  int64   `json:"discover_allocs_per_op"`
	DiscoverBytesPerOp   int64   `json:"discover_bytes_per_op"`
	RangeNsPerOp         int64   `json:"range_ns_per_op"`
	RangeAllocsPerOp     int64   `json:"range_allocs_per_op"`
	RangeBytesPerOp      int64   `json:"range_bytes_per_op"`
	LogicalHopsPerOp     float64 `json:"logical_hops_per_op"`
	PhysicalHopsPerOp    float64 `json:"physical_hops_per_op"`

	// Streaming-query metrics, measured on the large keyspace
	// (LimitKeys declared keys): time to the first key of an
	// unlimited streaming completion (early exit after one result),
	// a drained limit-10 completion, and the node visits of the
	// limited walk versus the full walk — the limit pushdown the
	// streaming API exists for.
	FirstResultNsPerOp     int64   `json:"first_result_ns_per_op"`
	LimitCompleteNsPerOp   int64   `json:"limit_complete_ns_per_op"`
	LimitNodesVisitedPerOp float64 `json:"limit_nodes_visited_per_op"`
	FullNodesVisited       int64   `json:"full_nodes_visited"`

	// Replication metrics: the replica-transfer messages one
	// topology change costs on average (successor re-homing — the
	// churn-proportional replication cost), and the latency of one
	// crash-recovery pass (restore from successor replicas plus the
	// canonical anti-entropy rebuild).
	ReplicaTransferMsgsPerTopologyChange float64 `json:"replica_transfer_msgs_per_topology_change"`
	RecoverNsPerOp                       int64   `json:"recover_ns_per_op"`

	// TraceOverheadNsPerOp is the per-discovery latency cost of
	// enabling WithObservability (span recording plus counters),
	// measured by re-running the discovery workload instrumented and
	// diffing against the untraced run. Floored at zero: a negative
	// delta is scheduler noise, not a speedup.
	TraceOverheadNsPerOp int64 `json:"trace_overhead_ns_per_op"`
}

// benchReport is the whole run: workload scale, environment, one
// result per engine. The schema is the perf trajectory consumed by
// tooling comparing BENCH_engines.json across commits.
type benchReport struct {
	Peers       int `json:"peers"`
	Keys        int `json:"keys"`
	Discoveries int `json:"discoveries"`
	Ranges      int `json:"ranges"`
	// LimitKeys is the keyspace of the streaming limit-pushdown
	// measurements (first_result / limit_complete).
	LimitKeys int           `json:"limit_keys"`
	Seed      int64         `json:"seed"`
	GoVersion string        `json:"go_version"`
	Results   []benchResult `json:"results"`

	// Daemon deployment metrics (engine-independent, measured on
	// in-process dlptd daemons over real loopback sockets): the
	// latency of one JOIN/HELLO bootstrap handshake including the
	// mirror installation, and the wall-clock from a member's abrupt
	// death to the steward's maintenance loop having crashed it out
	// and recovered its nodes (probe-timer dominated by design).
	JoinHandshakeNsPerOp int64 `json:"join_handshake_ns_per_op"`
	RedialRecoveryMs     int64 `json:"redial_recovery_ms"`
	// StewardFailoverMs is the wall-clock from the steward's abrupt
	// death to the first write acknowledged by an elected successor
	// (suspicion, epoch-fenced election, epoch-open barrier, resumed
	// origination), measured on a 3-daemon overlay.
	StewardFailoverMs int64 `json:"steward_failover_ms"`

	// Durability metrics, measured on a persistent live-engine overlay
	// (the snapshot path is engine-independent: every engine captures
	// under its cluster lock and encodes+fsyncs outside it).
	// SnapshotBytesPerKey is the on-disk snapshot cost of the 10k-key
	// catalogue under the default (LOUDS) codec;
	// SnapshotLegacyBytesPerKey is the same catalogue under the legacy
	// codec — the succinct-codec win is their ratio and is asserted
	// >= 5x at measurement time. SnapshotWriteStallNs is the time the
	// cluster write lock is held per snapshot (capture + journal
	// rotation, NOT encode or fsync) on the 100k-key catalogue;
	// SnapshotWriteStallNs10k is the 10k-key reading the flatness
	// assertion compares it against — O(1) capture means the two stay
	// within noise of each other while catalogue size grows 10x.
	// ColdRestartMs is a full dlpt.Restart (snapshot mmap + decode +
	// journal replay + overlay rebuild) of the 100k-key directory.
	SnapshotBytesPerKey       int64 `json:"snapshot_bytes_per_key"`
	SnapshotLegacyBytesPerKey int64 `json:"snapshot_legacy_bytes_per_key"`
	SnapshotWriteStallNs      int64 `json:"snapshot_write_stall_ns"`
	SnapshotWriteStallNs10k   int64 `json:"snapshot_write_stall_ns_10k"`
	ColdRestartMs             int64 `json:"cold_restart_ms"`
}

// regressionFactor is the perf gate: a latency metric more than this
// factor above the committed baseline fails the run.
const regressionFactor = 2.0

// regressionFloorNs absorbs scheduler jitter on microsecond-scale
// metrics: a metric must also exceed the baseline by this much in
// absolute terms to count as a regression.
const regressionFloorNs = 2000

// runBench measures the identical register/discover/range workload on
// every engine and reports the results as JSON (default, written to
// -out) or as the human-readable table of the engines experiment.
// With -check it additionally diffs the run against a committed
// baseline and fails on any >2x latency regression (the CI perf
// gate).
func runBench(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(w)
	jsonOut := fs.Bool("json", true, "write machine-readable JSON to -out")
	out := fs.String("out", "BENCH_engines.json", "JSON output path (- for stdout)")
	check := fs.String("check", "", "baseline JSON to diff against; fail on >2x ns/op regression")
	quick := fs.Bool("quick", false, "reduced scale")
	seed := fs.Int64("seed", 1, "base random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("bench: unexpected argument %q", fs.Arg(0))
	}
	if !*jsonOut && *check == "" {
		return runEngines(*quick, *seed, w)
	}

	// Load the baseline before anything is written: with the default
	// -out, `bench -check BENCH_engines.json` would otherwise
	// overwrite the baseline first and gate the run against itself.
	var baseline *benchReport
	if *check != "" {
		buf, err := os.ReadFile(*check)
		if err != nil {
			return fmt.Errorf("bench: read baseline: %w", err)
		}
		baseline = &benchReport{}
		if err := json.Unmarshal(buf, baseline); err != nil {
			return fmt.Errorf("bench: parse baseline %s: %w", *check, err)
		}
	}

	rep, err := measureEngines(*quick, *seed)
	if err != nil {
		return err
	}
	if *jsonOut {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if *out == "-" {
			if _, err := w.Write(buf); err != nil {
				return err
			}
		} else {
			if err := os.WriteFile(*out, buf, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "# wrote %s (%d engines)\n", *out, len(rep.Results))
		}
	}
	if baseline != nil {
		return checkBaseline(rep, baseline, *check, w)
	}
	return nil
}

// checkBaseline diffs rep against the pre-loaded committed baseline
// and returns an error naming every latency metric that regressed
// more than regressionFactor (the CI perf gate).
func checkBaseline(rep *benchReport, base *benchReport, path string, w io.Writer) error {
	current := make(map[string]benchResult, len(rep.Results))
	for _, r := range rep.Results {
		current[r.Engine] = r
	}
	var regressions []string
	for _, b := range base.Results {
		cur, ok := current[b.Engine]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s: engine missing from this run", b.Engine))
			continue
		}
		for _, m := range []struct {
			name      string
			base, cur int64
		}{
			{"register_ns_per_key", b.RegisterNsPerKey, cur.RegisterNsPerKey},
			{"discover_ns_per_op", b.DiscoverNsPerOp, cur.DiscoverNsPerOp},
			{"range_ns_per_op", b.RangeNsPerOp, cur.RangeNsPerOp},
			{"first_result_ns_per_op", b.FirstResultNsPerOp, cur.FirstResultNsPerOp},
			{"limit_complete_ns_per_op", b.LimitCompleteNsPerOp, cur.LimitCompleteNsPerOp},
			{"recover_ns_per_op", b.RecoverNsPerOp, cur.RecoverNsPerOp},
		} {
			if m.base == 0 {
				continue // metric absent from an older baseline schema
			}
			ratio := float64(m.cur) / float64(m.base)
			verdict := "ok"
			if float64(m.cur) > regressionFactor*float64(m.base) &&
				m.cur-m.base > regressionFloorNs {
				verdict = "REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s %s: %d -> %d ns (%.2fx > %.1fx limit)",
						b.Engine, m.name, m.base, m.cur, ratio, regressionFactor))
			}
			fmt.Fprintf(w, "# perf-gate %-5s %-20s %8d -> %8d ns  %.2fx  %s\n",
				b.Engine, m.name, m.base, m.cur, ratio, verdict)
		}
	}
	// Report-level durability metrics gate the same way (bytes and
	// milliseconds use the same factor; the absolute floor absorbs
	// jitter on the small readings).
	for _, m := range []struct {
		name      string
		base, cur int64
		floor     int64 // absolute slack in the metric's own unit
	}{
		{"snapshot_bytes_per_key", base.SnapshotBytesPerKey, rep.SnapshotBytesPerKey, 2},
		{"snapshot_write_stall_ns", base.SnapshotWriteStallNs, rep.SnapshotWriteStallNs, regressionFloorNs},
		{"cold_restart_ms", base.ColdRestartMs, rep.ColdRestartMs, 250},
	} {
		if m.base == 0 {
			continue // metric absent from an older baseline schema
		}
		ratio := float64(m.cur) / float64(m.base)
		verdict := "ok"
		if float64(m.cur) > regressionFactor*float64(m.base) &&
			m.cur-m.base > m.floor {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %d -> %d (%.2fx > %.1fx limit)",
					m.name, m.base, m.cur, ratio, regressionFactor))
		}
		fmt.Fprintf(w, "# perf-gate %-5s %-20s %8d -> %8d     %.2fx  %s\n",
			"all", m.name, m.base, m.cur, ratio, verdict)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench: perf gate failed against %s:\n  %s",
			path, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(w, "# perf gate passed against %s\n", path)
	return nil
}

// measureEngines runs the comparison workload of the engines
// experiment and returns structured timings.
func measureEngines(quick bool, seed int64) (*benchReport, error) {
	peers, nkeys, queries := 32, 400, 2000
	limitKeys := 10000
	if quick {
		peers, nkeys, queries = 8, 120, 300
		limitKeys = 1500
	}
	corpus := workload.GridCorpus(nkeys)
	batch := make([]dlpt.Registration, len(corpus))
	for i, k := range corpus {
		batch[i] = dlpt.Registration{Name: string(k), Endpoint: "ep://" + string(k)}
	}
	rep := &benchReport{
		Peers:       peers,
		Keys:        nkeys,
		Discoveries: queries,
		Ranges:      queries / 10,
		LimitKeys:   limitKeys,
		Seed:        seed,
		GoVersion:   runtime.Version(),
	}
	ctx := context.Background()
	for _, kind := range []dlpt.EngineKind{dlpt.EngineLocal, dlpt.EngineLive, dlpt.EngineTCP} {
		reg, err := dlpt.New(peers,
			dlpt.WithSeed(seed),
			dlpt.WithAlphabet(keys.LowerAlnum),
			dlpt.WithEngine(kind))
		if err != nil {
			return nil, err
		}
		res, err := measureOne(ctx, reg, kind, batch, corpus, queries)
		reg.Close()
		if err != nil {
			return nil, err
		}
		if err := measureLimit(ctx, kind, seed, peers, limitKeys, &res); err != nil {
			return nil, err
		}
		if err := measureReplication(ctx, kind, seed, peers, nkeys, quick, &res); err != nil {
			return nil, err
		}
		if err := measureTraceOverhead(ctx, kind, seed, peers, batch, corpus, queries, &res); err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, res)
	}
	if err := measureDaemon(quick, seed, rep); err != nil {
		return nil, err
	}
	if err := measureSnapshot(ctx, quick, seed, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// snapshotCodecFloor is the minimum legacy/LOUDS size ratio the
// succinct codec must hold on the 10k-key snapshot corpus. It is
// asserted at measurement time (codec sizes are deterministic — no
// noise allowance needed), so a codec regression fails the bench even
// before the baseline diff runs.
const snapshotCodecFloor = 5.0

// measureSnapshot runs the durability workload on a persistent
// live-engine overlay: per-key snapshot cost under both codecs at 10k
// keys, the lock-held snapshot stall at 10k and again at 100k keys
// (asserted flat: capture is O(peers), not O(catalogue)), and a timed
// cold restart of the 100k-key directory.
func measureSnapshot(ctx context.Context, quick bool, seed int64, rep *benchReport) error {
	smallKeys, bigKeys := 10_000, 100_000
	if quick {
		smallKeys, bigKeys = 1_500, 15_000
	}
	dir, err := os.MkdirTemp("", "dlpt-bench-snap")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	reg, err := dlpt.New(16,
		dlpt.WithSeed(seed),
		dlpt.WithAlphabet(keys.LowerAlnum),
		dlpt.WithEngine(dlpt.EngineLive),
		dlpt.WithPersistence(dir),
		dlpt.WithObservability(dlpt.NewObservability()))
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			reg.Close()
		}
	}()

	// Endpoints are shared, as in the replication workload: the codec
	// deduplicates the value table, so the per-key cost measures the
	// key structure the LOUDS trie compresses (unique per-key values
	// would dominate both codecs identically and wash the ratio out).
	corpus := workload.GridCorpus(bigKeys)
	register := func(lo, hi int) error {
		batch := make([]dlpt.Registration, 0, hi-lo)
		for _, k := range corpus[lo:hi] {
			batch = append(batch, dlpt.Registration{Name: string(k), Endpoint: "ep"})
		}
		return reg.RegisterBatch(ctx, batch)
	}
	// minStall replicates a few times and keeps the smallest lock-held
	// stall the gauge saw: scheduler noise only ever adds to the
	// reading, so the minimum is the right statistic for a flatness
	// comparison.
	minStall := func(reps int) (int64, error) {
		best := int64(-1)
		for i := 0; i < reps; i++ {
			if _, err := reg.Replicate(ctx); err != nil {
				return 0, err
			}
			ns := int64(reg.ObsSnapshot().Get(obs.SeriesSnapshotStall) * 1e9)
			if best < 0 || ns < best {
				best = ns
			}
		}
		return best, nil
	}

	if err := register(0, smallKeys); err != nil {
		return err
	}
	if rep.SnapshotWriteStallNs10k, err = minStall(5); err != nil {
		return err
	}
	snap := reg.ObsSnapshot()
	bytes := int64(snap.Get(obs.SeriesSnapshotBytes))
	nkeys := int64(snap.Get(obs.SeriesSnapshotKeys))
	if nkeys != int64(smallKeys) {
		return fmt.Errorf("bench: snapshot declared %d keys, registered %d", nkeys, smallKeys)
	}
	rep.SnapshotBytesPerKey = bytes / nkeys

	// The codec win, measured codec-to-codec on the identical entry
	// set so the ratio is free of envelope and peer-table overhead.
	entries := make([]catalog.Entry, smallKeys)
	for i, k := range corpus[:smallKeys] {
		entries[i] = catalog.Entry{Key: string(k), Values: []string{"ep"}}
	}
	loudsBytes := len(catalog.Append(nil, catalog.LOUDS, entries, catalog.SecValues))
	legacyBytes := len(catalog.Append(nil, catalog.Legacy, entries, catalog.SecValues))
	rep.SnapshotLegacyBytesPerKey = int64(legacyBytes) / nkeys
	// The floor is a 10k-key property (quick mode's short corpus has
	// less prefix structure to compress — report, don't assert).
	if ratio := float64(legacyBytes) / float64(loudsBytes); !quick && ratio < snapshotCodecFloor {
		return fmt.Errorf("bench: LOUDS snapshot only %.2fx smaller than legacy on %d keys (floor %.1fx)",
			ratio, smallKeys, snapshotCodecFloor)
	}

	if err := register(smallKeys, bigKeys); err != nil {
		return err
	}
	if rep.SnapshotWriteStallNs, err = minStall(5); err != nil {
		return err
	}
	// Flatness: the lock-held window must not scale with the
	// catalogue. A 10x-bigger catalogue gets a generous 4x noise
	// allowance plus an absolute floor — an O(keys) capture would blow
	// through both.
	if rep.SnapshotWriteStallNs > 4*rep.SnapshotWriteStallNs10k &&
		rep.SnapshotWriteStallNs-rep.SnapshotWriteStallNs10k > 2_000_000 {
		return fmt.Errorf("bench: snapshot write stall grew with the catalogue: %d ns at %d keys vs %d ns at %d keys",
			rep.SnapshotWriteStallNs, bigKeys, rep.SnapshotWriteStallNs10k, smallKeys)
	}

	if err := reg.Close(); err != nil {
		return err
	}
	closed = true
	start := time.Now()
	restarted, err := dlpt.Restart(dir,
		dlpt.WithSeed(seed),
		dlpt.WithEngine(dlpt.EngineLive))
	if err != nil {
		return err
	}
	rep.ColdRestartMs = time.Since(start).Milliseconds()
	defer restarted.Close()
	recovered, err := restarted.Services(ctx)
	if err != nil {
		return err
	}
	if len(recovered) != bigKeys {
		return fmt.Errorf("bench: cold restart recovered %d of %d keys", len(recovered), bigKeys)
	}
	return nil
}

// measureDaemon times the cross-process deployment layer on
// in-process daemons: the bootstrap join handshake (dial, JOIN/HELLO
// negotiation, mirror install), the redial-driven crash recovery
// (member dies abruptly; the steward's maintenance loop probes it
// out, recovers from replicas, and the survivors validate), and the
// steward failover (steward dies abruptly; the survivors elect and
// writes resume under the new epoch).
func measureDaemon(quick bool, seed int64, rep *benchReport) error {
	nop := func(string, ...any) {}
	cfg := func(s int64, bootstrap ...string) daemon.Config {
		return daemon.Config{
			Listen:          "127.0.0.1:0",
			Bootstrap:       bootstrap,
			Capacity:        8,
			Alphabet:        "lower_alnum",
			Seed:            s,
			ProbeEvery:      daemon.Duration(50 * time.Millisecond),
			MissThreshold:   3,
			ReplicateEvery:  daemon.Duration(time.Hour),
			JoinTimeout:     daemon.Duration(15 * time.Second),
			ElectionTimeout: daemon.Duration(300 * time.Millisecond),
			ForwardRetry:    daemon.Duration(20 * time.Second),
		}
	}
	steward, err := daemon.Start(cfg(seed), nop)
	if err != nil {
		return err
	}
	defer steward.Close()

	joins := 8
	if quick {
		joins = 3
	}
	var total time.Duration
	for i := 0; i < joins; i++ {
		start := time.Now()
		m, err := daemon.Start(cfg(seed+int64(i)+1, steward.Addr()), nop)
		if err != nil {
			return fmt.Errorf("bench: join handshake: %w", err)
		}
		total += time.Since(start)
		if err := m.Close(); err != nil {
			return err
		}
	}
	rep.JoinHandshakeNsPerOp = total.Nanoseconds() / int64(joins)

	// Redial recovery: a 3-daemon overlay with replicated state loses
	// one member to an abrupt stop; measure until the steward's mirror
	// is whole again (member crashed out, nodes recovered, validation
	// clean).
	m1, err := daemon.Start(cfg(seed+100, steward.Addr()), nop)
	if err != nil {
		return err
	}
	defer m1.Close()
	m2, err := daemon.Start(cfg(seed+101, steward.Addr()), nop)
	if err != nil {
		return err
	}
	defer m2.Close()
	ctx := context.Background()
	for i := 0; i < 24; i++ {
		if _, err := daemon.Admin(ctx, steward.Addr(),
			&daemon.AdminRequest{Op: "register", Key: fmt.Sprintf("bench%02d", i), Value: "ep"}); err != nil {
			return err
		}
	}
	if err := steward.ReplicateNow(); err != nil {
		return err
	}
	m2.Cluster().Stop() // abrupt death: no graceful leave
	start := time.Now()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if steward.MemberCount() == 2 && steward.Cluster().Validate() == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: redial recovery never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep.RedialRecoveryMs = time.Since(start).Milliseconds()

	// Steward failover: rebuild a 3-daemon overlay (quorum needs two
	// surviving voters over three known members), replicate so the
	// steward's nodes survive its death, kill the steward abruptly,
	// and measure until a survivor has won the election and
	// acknowledged a write under the new epoch.
	m3, err := daemon.Start(cfg(seed+102, steward.Addr()), nop)
	if err != nil {
		return err
	}
	defer m3.Close()
	if err := steward.ReplicateNow(); err != nil {
		return err
	}
	steward.Cluster().Stop() // abrupt death: no graceful leave
	start = time.Now()
	deadline = time.Now().Add(30 * time.Second)
	for i := 0; ; i++ {
		var acked bool
		for _, d := range []*daemon.Daemon{m1, m3} {
			if !d.IsSteward() {
				continue
			}
			key := fmt.Sprintf("failover%02d", i%100)
			if _, err := daemon.Admin(ctx, d.Addr(),
				&daemon.AdminRequest{Op: "register", Key: key, Value: "ep"}); err == nil {
				acked = true
			}
			break
		}
		if acked {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: steward failover never completed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	rep.StewardFailoverMs = time.Since(start).Milliseconds()
	return nil
}

// measureReplication runs the fault-tolerance workload on a fresh
// overlay: a replicated corpus, a join/leave churn loop whose
// successor re-homing traffic yields the transfer cost per topology
// change, and timed replicate→crash→recover cycles.
func measureReplication(ctx context.Context, kind dlpt.EngineKind, seed int64,
	peers, nkeys int, quick bool, res *benchResult) error {

	// The overlay runs instrumented so the transfer-cost metric reads
	// from single consistent obs snapshots (one collector pass each)
	// instead of stitching together counters from separate
	// MembershipStats/PoolStats calls that can interleave with churn.
	reg, err := dlpt.New(peers,
		dlpt.WithSeed(seed),
		dlpt.WithAlphabet(keys.LowerAlnum),
		dlpt.WithEngine(kind),
		dlpt.WithObservability(dlpt.NewObservability()))
	if err != nil {
		return err
	}
	defer reg.Close()
	corpus := workload.GridCorpus(nkeys)
	batch := make([]dlpt.Registration, len(corpus))
	for i, k := range corpus {
		batch[i] = dlpt.Registration{Name: string(k), Endpoint: "ep"}
	}
	if err := reg.RegisterBatch(ctx, batch); err != nil {
		return err
	}
	if _, err := reg.Replicate(ctx); err != nil {
		return err
	}

	churnRounds, recReps := 16, 16
	if quick {
		churnRounds, recReps = 6, 6
	}
	base := reg.ObsSnapshot()
	for i := 0; i < churnRounds; i++ {
		id, err := reg.AddPeerWithCapacity(ctx, 1<<20)
		if err != nil {
			return err
		}
		if err := reg.RemovePeer(ctx, id); err != nil {
			return err
		}
	}
	snap := reg.ObsSnapshot()
	changes := float64(2 * churnRounds) // one join + one leave per round
	res.ReplicaTransferMsgsPerTopologyChange =
		(snap.Get(obs.SeriesReplicaTransfers) - base.Get(obs.SeriesReplicaTransfers)) / changes

	runtime.GC()
	var total time.Duration
	for i := 0; i < recReps; i++ {
		id, err := reg.AddPeerWithCapacity(ctx, 1<<20)
		if err != nil {
			return err
		}
		if _, err := reg.Replicate(ctx); err != nil {
			return err
		}
		if err := reg.CrashPeer(ctx, id); err != nil {
			return err
		}
		start := time.Now()
		if _, err := reg.Recover(ctx); err != nil {
			return err
		}
		total += time.Since(start)
	}
	res.RecoverNsPerOp = total.Nanoseconds() / int64(recReps)
	return nil
}

// measureTraceOverhead re-runs the discovery workload on an overlay
// instrumented with WithObservability and reports the per-op latency
// delta against the untraced run already in res.DiscoverNsPerOp —
// the cost of span recording plus metric counters on the hot path.
func measureTraceOverhead(ctx context.Context, kind dlpt.EngineKind, seed int64,
	peers int, batch []dlpt.Registration, corpus []keys.Key, queries int, res *benchResult) error {

	reg, err := dlpt.New(peers,
		dlpt.WithSeed(seed),
		dlpt.WithAlphabet(keys.LowerAlnum),
		dlpt.WithEngine(kind),
		dlpt.WithObservability(dlpt.NewObservability()))
	if err != nil {
		return err
	}
	defer reg.Close()
	if err := reg.RegisterBatch(ctx, batch); err != nil {
		return err
	}
	runtime.GC()
	start := time.Now()
	for i := 0; i < queries; i++ {
		if _, ok, err := reg.Discover(ctx, string(corpus[i%len(corpus)])); err != nil || !ok {
			return fmt.Errorf("%s: traced discover %q: ok=%v err=%v",
				kind, corpus[i%len(corpus)], ok, err)
		}
	}
	traced := time.Since(start).Nanoseconds() / int64(queries)
	if d := traced - res.DiscoverNsPerOp; d > 0 {
		res.TraceOverheadNsPerOp = d
	}
	return nil
}

// measureLimit runs the large-keyspace limit-pushdown workload on a
// fresh overlay: time-to-first-result of an unlimited streaming
// completion (early exit after one key) and a drained limit-10
// completion, plus the node-visit counts that make the pushdown
// visible next to the full walk's.
func measureLimit(ctx context.Context, kind dlpt.EngineKind, seed int64,
	peers, limitKeys int, res *benchResult) error {

	reg, err := dlpt.New(peers,
		dlpt.WithSeed(seed),
		dlpt.WithAlphabet(keys.LowerAlnum),
		dlpt.WithEngine(kind))
	if err != nil {
		return err
	}
	defer reg.Close()
	corpus := workload.GridCorpus(limitKeys)
	batch := make([]dlpt.Registration, len(corpus))
	for i, k := range corpus {
		batch[i] = dlpt.Registration{Name: string(k), Endpoint: "ep"}
	}
	if err := reg.RegisterBatch(ctx, batch); err != nil {
		return err
	}
	eng := reg.Engine()

	full, err := engine.CollectQuery(ctx, eng, engine.Query{Kind: engine.QueryComplete})
	if err != nil {
		return err
	}
	if len(full.Keys) != limitKeys {
		return fmt.Errorf("%s: full streaming walk yielded %d of %d keys",
			kind, len(full.Keys), limitKeys)
	}
	fullStream, err := eng.Query(ctx, engine.Query{Kind: engine.QueryComplete})
	if err != nil {
		return err
	}
	for {
		if _, ok := fullStream.Next(); !ok {
			break
		}
	}
	res.FullNodesVisited = int64(fullStream.Stats().NodesVisited)
	fullStream.Close()

	// The registration and full-drain phases above leave the heap near
	// a collection trigger; collect before each timed loop so a GC
	// pause does not land inside it (these metrics feed the 2x gate
	// and the loops are short). reps amortizes the rest.
	const reps = 200
	runtime.GC()
	start := time.Now()
	for i := 0; i < reps; i++ {
		s, err := eng.Query(ctx, engine.Query{Kind: engine.QueryComplete})
		if err != nil {
			return err
		}
		if _, ok := s.Next(); !ok {
			s.Close()
			return fmt.Errorf("%s: streaming completion yielded no first result", kind)
		}
		s.Close() // early exit: the traversal behind the rest is cancelled
	}
	res.FirstResultNsPerOp = time.Since(start).Nanoseconds() / reps

	var visited int64
	runtime.GC()
	start = time.Now()
	for i := 0; i < reps; i++ {
		s, err := eng.Query(ctx, engine.Query{Kind: engine.QueryComplete, Limit: 10})
		if err != nil {
			return err
		}
		n := 0
		for {
			if _, ok := s.Next(); !ok {
				break
			}
			n++
		}
		if err := s.Err(); err != nil {
			s.Close()
			return err
		}
		visited += int64(s.Stats().NodesVisited)
		s.Close()
		if n != 10 {
			return fmt.Errorf("%s: limit-10 completion yielded %d keys", kind, n)
		}
	}
	res.LimitCompleteNsPerOp = time.Since(start).Nanoseconds() / reps
	res.LimitNodesVisitedPerOp = float64(visited) / float64(reps)
	return nil
}

// memCounters collects and reads the process-wide cumulative
// allocation counters. The collection isolates the timed phases from
// each other: without it a phase inherits the previous phase's GC
// trigger state, and a low-allocation phase (pooled TCP discovery)
// hands the next phase a near-trigger heap that taxes it with the
// collections the earlier phase banked.
func memCounters() (mallocs, bytes uint64) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs, ms.TotalAlloc
}

func measureOne(ctx context.Context, reg *dlpt.Registry, kind dlpt.EngineKind,
	batch []dlpt.Registration, corpus []keys.Key, queries int) (benchResult, error) {
	var out benchResult
	out.Engine = string(kind)

	m0, b0 := memCounters()
	start := time.Now()
	if err := reg.RegisterBatch(ctx, batch); err != nil {
		return out, err
	}
	out.RegisterNsPerKey = time.Since(start).Nanoseconds() / int64(len(batch))
	m1, b1 := memCounters()
	out.RegisterAllocsPerKey = int64(m1-m0) / int64(len(batch))
	out.RegisterBytesPerKey = int64(b1-b0) / int64(len(batch))

	var logical, physical int
	m0, b0 = m1, b1 // the end-of-phase read already collected
	start = time.Now()
	for i := 0; i < queries; i++ {
		svc, ok, err := reg.Discover(ctx, string(corpus[i%len(corpus)]))
		if err != nil || !ok {
			return out, fmt.Errorf("%s: discover %q: ok=%v err=%v",
				kind, corpus[i%len(corpus)], ok, err)
		}
		logical += svc.LogicalHops
		physical += svc.PhysicalHops
	}
	out.DiscoverNsPerOp = time.Since(start).Nanoseconds() / int64(queries)
	m1, b1 = memCounters()
	out.DiscoverAllocsPerOp = int64(m1-m0) / int64(queries)
	out.DiscoverBytesPerOp = int64(b1-b0) / int64(queries)
	out.LogicalHopsPerOp = float64(logical) / float64(queries)
	out.PhysicalHopsPerOp = float64(physical) / float64(queries)

	ranges := queries / 10
	m0, b0 = m1, b1
	start = time.Now()
	for i := 0; i < ranges; i++ {
		if _, err := reg.Range(ctx, "pd", "pz", 0); err != nil {
			return out, err
		}
	}
	out.RangeNsPerOp = time.Since(start).Nanoseconds() / int64(ranges)
	m1, b1 = memCounters()
	out.RangeAllocsPerOp = int64(m1-m0) / int64(ranges)
	out.RangeBytesPerOp = int64(b1-b0) / int64(ranges)
	return out, nil
}
