// Command dlptsim regenerates the tables and figures of the paper's
// evaluation (RR-6557 Section 4 and 5). Each experiment prints the
// same rows/series the paper reports: figures as gnuplot-style
// columns (or CSV with -format csv), tables as aligned text.
//
// Usage:
//
//	dlptsim [-quick] [-format gnuplot|csv] [-seed N] fig4..fig9|table1|table2|ablation|objective|engines|all
//	dlptsim churn [-engine local|live|tcp] [-peers N] [-ops N] [-strategy MLT] ...
//	dlptsim bench [-json] [-out BENCH_engines.json] [-quick] ...
//
// The default scale matches the paper (100 peers, 1000 keys, 30-100
// runs); -quick runs a reduced scale in a few seconds. The churn
// subcommand soaks an engine under membership churn (joins, graceful
// leaves, crashes, recoveries, periodic balancing); bench runs the
// cross-engine comparison and emits machine-readable results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dlpt/internal/experiments"
	"dlpt/internal/metrics"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale (seconds instead of minutes)")
	format := flag.String("format", "gnuplot", "figure output format: gnuplot or csv")
	seed := flag.Int64("seed", 1, "base random seed")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: dlptsim [flags] fig4|fig5|fig6|fig7|fig8|fig9|table1|table2|ablation|objective|engines|all\n"+
				"       dlptsim churn [churn flags]\n"+
				"       dlptsim bench [bench flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	switch flag.Arg(0) {
	case "churn", "bench":
		// Subcommands own their flags; top-level flags before the
		// subcommand would be silently dropped, so refuse them.
		if flag.NFlag() > 0 {
			fmt.Fprintf(os.Stderr,
				"dlptsim: pass flags after the subcommand, e.g. dlptsim %s -seed 7\n",
				flag.Arg(0))
			os.Exit(2)
		}
		if flag.Arg(0) == "churn" {
			err = runChurn(flag.Args()[1:], os.Stdout)
		} else {
			err = runBench(flag.Args()[1:], os.Stdout)
		}
	default:
		if flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
		err = run(flag.Arg(0), *quick, *format, *seed, os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlptsim: %v\n", err)
		os.Exit(1)
	}
}

func run(name string, quick bool, format string, seed int64, w io.Writer) error {
	writeDS := func(ds *metrics.Dataset) error {
		if format == "csv" {
			return ds.WriteCSV(w)
		}
		return ds.WriteGnuplot(w)
	}
	runFigure := func(spec experiments.Spec) error {
		spec.Base.Seed = seed
		start := time.Now()
		ds, err := experiments.RunSpec(spec)
		if err != nil {
			return err
		}
		if err := writeDS(ds); err != nil {
			return err
		}
		fmt.Fprintf(w, "# elapsed: %v\n", time.Since(start).Round(time.Millisecond))
		return nil
	}
	switch name {
	case "fig4":
		return runFigure(experiments.Figure4(quick))
	case "fig5":
		return runFigure(experiments.Figure5(quick))
	case "fig6":
		return runFigure(experiments.Figure6(quick))
	case "fig7":
		return runFigure(experiments.Figure7(quick))
	case "fig8":
		return runFigure(experiments.Figure8(quick))
	case "zipf":
		return runFigure(experiments.Zipf(quick))
	case "fig9":
		ds, err := experiments.RunFigure9(quick)
		if err != nil {
			return err
		}
		return writeDS(ds)
	case "table1":
		tb, err := experiments.Table1(quick)
		if err != nil {
			return err
		}
		return tb.Render(w)
	case "table2":
		tb, err := experiments.Table2(quick)
		if err != nil {
			return err
		}
		return tb.Render(w)
	case "ablation":
		tb, err := experiments.AblationMaintenance(quick)
		if err != nil {
			return err
		}
		return tb.Render(w)
	case "objective":
		tb, err := experiments.AblationObjective(quick)
		if err != nil {
			return err
		}
		return tb.Render(w)
	case "engines":
		return runEngines(quick, seed, w)
	case "all":
		for _, n := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
			"table1", "table2", "ablation", "objective", "zipf"} {
			fmt.Fprintf(w, "==== %s ====\n", n)
			if err := run(n, quick, format, seed, w); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	return fmt.Errorf("unknown experiment %q", name)
}
