package main

import (
	"strings"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run("nope", true, "gnuplot", 1, &b); err == nil {
		t.Fatalf("unknown experiment must error")
	}
}

func TestRunFigureGnuplot(t *testing.T) {
	var b strings.Builder
	if err := run("fig4", true, "gnuplot", 1, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# Figure 4") {
		t.Fatalf("missing figure header:\n%s", out)
	}
	if !strings.Contains(out, "MLT") || !strings.Contains(out, "NoLB") {
		t.Fatalf("missing curves:\n%s", out)
	}
	if !strings.Contains(out, "# elapsed:") {
		t.Fatalf("missing elapsed footer:\n%s", out)
	}
}

func TestRunFigureCSV(t *testing.T) {
	var b strings.Builder
	if err := run("fig4", true, "csv", 1, &b); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(b.String(), "\n", 2)[0]
	if !strings.HasPrefix(first, "time,MLT") {
		t.Fatalf("CSV header = %q", first)
	}
}

func TestRunTables(t *testing.T) {
	for _, name := range []string{"table1", "table2", "ablation", "objective"} {
		var b strings.Builder
		if err := run(name, true, "gnuplot", 1, &b); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(b.String(), "|") {
			t.Fatalf("%s produced no table:\n%s", name, b.String())
		}
	}
}

func TestRunFig9(t *testing.T) {
	var b strings.Builder
	if err := run("fig9", true, "gnuplot", 1, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "physical_lexico_MLT") {
		t.Fatalf("fig9 output missing curve:\n%s", b.String())
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("all experiments take a few seconds")
	}
	var b strings.Builder
	if err := run("all", true, "gnuplot", 1, &b); err != nil {
		t.Fatal(err)
	}
	for _, section := range []string{"==== fig4 ====", "==== table2 ====", "==== objective ===="} {
		if !strings.Contains(b.String(), section) {
			t.Fatalf("missing section %s", section)
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	var a, b strings.Builder
	if err := run("fig4", true, "csv", 7, &a); err != nil {
		t.Fatal(err)
	}
	if err := run("fig4", true, "csv", 7, &b); err != nil {
		t.Fatal(err)
	}
	strip := func(s string) string {
		var out []string
		for _, l := range strings.Split(s, "\n") {
			if strings.HasPrefix(l, "# elapsed:") {
				continue
			}
			out = append(out, l)
		}
		return strings.Join(out, "\n")
	}
	if strip(a.String()) != strip(b.String()) {
		t.Fatalf("same seed must give identical output")
	}
}
