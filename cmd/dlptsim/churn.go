package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"time"

	"dlpt"
	"dlpt/churn"
	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

// runChurn soaks one engine under membership churn: a seeded mix of
// joins, graceful leaves, crashes, replication-backed recoveries and
// periodic balancing interleaved with a data workload, closed by a
// full invariant validation. Exit status reflects the validation, so
// CI can use it as a membership regression gate.
func runChurn(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("churn", flag.ContinueOnError)
	fs.SetOutput(w)
	engineName := fs.String("engine", "local", "execution engine: local, live or tcp")
	peers := fs.Int("peers", 32, "initial overlay size")
	ops := fs.Int("ops", 2000, "workload steps")
	seed := fs.Int64("seed", 1, "driver and overlay seed")
	strategy := fs.String("strategy", "MLT", "balancing strategy (MLT, KC, EqualLoad, Directory, NoLB)")
	nkeys := fs.Int("keys", 300, "service-key corpus size")
	capacity := fs.Int("capacity", 200, "per-peer capacity (initial and joining peers)")
	join := fs.Float64("join", 0.04, "per-step join probability")
	leave := fs.Float64("leave", 0.03, "per-step graceful-leave probability")
	crash := fs.Float64("crash", 0.02, "per-step crash probability")
	recoverRate := fs.Float64("recover", 0.02, "per-step explicit-recovery probability")
	replicateEvery := fs.Int("replicate-every", 64, "steps between replication ticks")
	balanceEvery := fs.Int("balance-every", 32, "steps between balancing rounds")
	persistDir := fs.String("persist", "", "persistence directory (durable snapshots + journal)")
	coldRestart := fs.Bool("cold-restart", false,
		"after the soak: kill every peer and restart from -persist, validating the recovered catalogue")
	maxWall := fs.Duration("max-wall", 0,
		"fail if the whole soak (including any cold restart) takes longer than this; 0 disables the gate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("churn: unexpected argument %q", fs.Arg(0))
	}
	if *coldRestart {
		if *persistDir == "" {
			return fmt.Errorf("churn: -cold-restart needs -persist")
		}
		keyNames := make([]string, *nkeys)
		for i, k := range workload.GridCorpus(*nkeys) {
			keyNames[i] = string(k)
		}
		fmt.Fprintf(w, "# cold-restart soak: engine=%s peers=%d ops=%d seed=%d dir=%s\n",
			*engineName, *peers, *ops, *seed, *persistDir)
		start := time.Now()
		st, err := churn.RunColdRestart(context.Background(), churn.ColdRestartConfig{
			Dir:      *persistDir,
			Engine:   dlpt.EngineKind(*engineName),
			Peers:    *peers,
			Capacity: *capacity,
			Seed:     *seed,
			Preload:  true,
			Churn: churn.Config{
				Seed:           *seed,
				Ops:            *ops,
				JoinRate:       *join,
				LeaveRate:      *leave,
				CrashRate:      *crash,
				RecoverRate:    *recoverRate,
				JoinCapacity:   *capacity,
				ReplicateEvery: *replicateEvery,
				BalanceEvery:   *balanceEvery,
				Strategy:       *strategy,
				Keys:           keyNames,
			},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "soak:    %+v\n", st.Soak)
		fmt.Fprintf(w, "kill:    %d peers crashed, remainder died abruptly\n", st.CrashedBeforeKill)
		fmt.Fprintf(w, "restart: %d/%d keys recovered from %s\n",
			st.Recovered, st.Declared, *persistDir)
		fmt.Fprintf(w, "phases:  soak=%v kill=%v restart=%v\n",
			st.SoakWall.Round(time.Millisecond), st.KillWall.Round(time.Millisecond),
			st.RestartWall.Round(time.Millisecond))
		elapsed := time.Since(start)
		fmt.Fprintf(w, "# cold restart validated OK in %v\n", elapsed.Round(time.Millisecond))
		return gateWall(elapsed, *maxWall)
	}

	caps := make([]int, *peers)
	for i := range caps {
		caps[i] = *capacity
	}
	regOpts := []dlpt.Option{
		dlpt.WithSeed(*seed),
		dlpt.WithAlphabet(keys.LowerAlnum),
		dlpt.WithCapacities(caps),
		dlpt.WithEngine(dlpt.EngineKind(*engineName)),
	}
	if *persistDir != "" {
		regOpts = append(regOpts, dlpt.WithPersistence(*persistDir))
	}
	reg, err := dlpt.New(*peers, regOpts...)
	if err != nil {
		return err
	}
	defer reg.Close()

	ctx := context.Background()
	corpus := workload.GridCorpus(*nkeys)
	batch := make([]dlpt.Registration, len(corpus))
	keyNames := make([]string, len(corpus))
	for i, k := range corpus {
		batch[i] = dlpt.Registration{Name: string(k), Endpoint: "ep://" + string(k)}
		keyNames[i] = string(k)
	}
	if err := reg.RegisterBatch(ctx, batch); err != nil {
		return err
	}

	fmt.Fprintf(w, "# churn soak: engine=%s peers=%d ops=%d strategy=%s seed=%d\n",
		*engineName, *peers, *ops, *strategy, *seed)
	start := time.Now()
	st, err := churn.Run(ctx, reg.Engine(), churn.Config{
		Seed:           *seed,
		Ops:            *ops,
		JoinRate:       *join,
		LeaveRate:      *leave,
		CrashRate:      *crash,
		RecoverRate:    *recoverRate,
		JoinCapacity:   *capacity,
		ReplicateEvery: *replicateEvery,
		BalanceEvery:   *balanceEvery,
		Strategy:       *strategy,
		Keys:           keyNames,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	ms, err := reg.MembershipStats(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "data:       %d registers, %d unregisters, %d discoveries (%d found)\n",
		st.Registers, st.Unregisters, st.Discoveries, st.Found)
	fmt.Fprintf(w, "membership: %d joins, %d leaves, %d crashes, %d recoveries\n",
		st.Joins, st.Leaves, st.Crashes, st.Recoveries)
	fmt.Fprintf(w, "replication: %d ticks shipping %d snapshots; %d restored, %d lost\n",
		st.Replications, st.ReplicatedNodes, st.RestoredNodes, st.LostNodes)
	fmt.Fprintf(w, "balancing:  %d rounds, %d boundary moves (%s)\n",
		st.BalanceRounds, st.BalanceMoves, *strategy)
	fmt.Fprintf(w, "final:      %d peers, %d keys, engine counters %+v\n",
		st.FinalPeers, st.FinalKeys, ms)
	fmt.Fprintf(w, "# validated OK in %v\n", elapsed.Round(time.Millisecond))
	return gateWall(elapsed, *maxWall)
}

// gateWall turns a blown wall-time budget into a non-zero exit — the
// CI gate for soaks whose cost must stay bounded (the 1M-key cold
// restart in particular: snapshot encode, mmap load and journal
// replay all sit on this path).
func gateWall(elapsed, max time.Duration) error {
	if max > 0 && elapsed > max {
		return fmt.Errorf("churn: wall time %v exceeded the -max-wall budget %v",
			elapsed.Round(time.Millisecond), max)
	}
	return nil
}
