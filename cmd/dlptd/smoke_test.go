package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"dlpt/internal/daemon"
)

// syncBuffer is a bytes.Buffer safe to read while the exec copier
// goroutine is still writing the live process's stderr into it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer // guarded by mu (written by the exec pipe copier goroutine)
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// proc is one dlptd process under test.
type proc struct {
	cmd    *exec.Cmd
	addr   string
	stderr *syncBuffer
}

// startProc launches a dlptd process and reads its advertised address
// off stdout.
func startProc(t *testing.T, bin, cfgPath string) *proc {
	t.Helper()
	p := &proc{cmd: exec.Command(bin, "run", "-config", cfgPath), stderr: &syncBuffer{}}
	p.cmd.Stderr = p.stderr
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("start dlptd: %v", err)
	}
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			addrCh <- sc.Text()
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			t.Fatalf("dlptd printed no address; stderr:\n%s", p.stderr.String())
		}
		p.addr = addr
	case <-time.After(30 * time.Second):
		t.Fatalf("dlptd never printed its address; stderr:\n%s", p.stderr.String())
	}
	return p
}

func writeConfig(t *testing.T, dir, name string, cfg map[string]any) string {
	t.Helper()
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("timed out: %s", msg)
}

// TestSmokeThreeProcessOverlay is the end-to-end deployment check:
// three dlptd processes on localhost form one overlay through the
// bootstrap handshake, serve registrations, discoveries and streamed
// completions across process boundaries, and survive the SIGKILL of
// one member — the steward's maintenance loop declares it crashed,
// recovers its nodes from replicas, and the survivors validate clean.
func TestSmokeThreeProcessOverlay(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "dlptd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build dlptd: %v\n%s", err, out)
	}

	base := map[string]any{
		"listen":          "127.0.0.1:0",
		"capacity":        8,
		"alphabet":        "lower_alnum",
		"probe_every":     "100ms",
		"miss_threshold":  3,
		"replicate_every": "500ms",
		"join_timeout":    "20s",
	}
	cfg := func(seed int64, bootstrap ...string) map[string]any {
		m := map[string]any{"seed": seed}
		for k, v := range base {
			m[k] = v
		}
		if len(bootstrap) > 0 {
			m["bootstrap"] = bootstrap
		}
		return m
	}

	steward := startProc(t, bin, writeConfig(t, dir, "steward.json", cfg(1)))
	m1 := startProc(t, bin, writeConfig(t, dir, "m1.json", cfg(2, steward.addr)))
	m2 := startProc(t, bin, writeConfig(t, dir, "m2.json", cfg(3, steward.addr)))
	procs := []*proc{steward, m1, m2}

	ctx := context.Background()
	for i, p := range procs {
		waitUntil(t, 15*time.Second, func() bool {
			st, err := daemon.GetStatus(ctx, p.addr)
			return err == nil && st.Peers == 3
		}, fmt.Sprintf("process %d sees 3 peers; stderr:\n%s", i, p.stderr.String()))
	}

	// Register through every process; each key lands wherever the ring
	// places it, so discoveries and completions cross processes.
	for i := 0; i < 9; i++ {
		k := fmt.Sprintf("svc%02d", i)
		p := procs[i%3]
		if _, err := daemon.Admin(ctx, p.addr, &daemon.AdminRequest{Op: "register", Key: k, Value: "endpoint"}); err != nil {
			t.Fatalf("register %s via process %d: %v", k, i%3, err)
		}
	}
	for i, p := range procs {
		for j := 0; j < 9; j++ {
			k := fmt.Sprintf("svc%02d", j)
			resp, err := daemon.Admin(ctx, p.addr, &daemon.AdminRequest{Op: "discover", Key: k})
			if err != nil || !resp.Found {
				t.Fatalf("discover %s on process %d: found=%v err=%v", k, i, resp != nil && resp.Found, err)
			}
		}
		resp, err := daemon.Admin(ctx, p.addr, &daemon.AdminRequest{Op: "complete", Prefix: "svc"})
		if err != nil {
			t.Fatalf("complete on process %d: %v", i, err)
		}
		if len(resp.Keys) != 9 {
			t.Fatalf("complete on process %d = %d keys, want 9", i, len(resp.Keys))
		}
		if _, err := daemon.Admin(ctx, p.addr, &daemon.AdminRequest{Op: "validate"}); err != nil {
			t.Fatalf("validate on process %d: %v", i, err)
		}
	}

	// Give the replicate tick a beat so every node has a ring-successor
	// snapshot, then SIGKILL one member — no graceful leave.
	time.Sleep(1200 * time.Millisecond)
	if err := m2.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	m2.cmd.Wait()

	survivors := []*proc{steward, m1}
	for i, p := range survivors {
		waitUntil(t, 20*time.Second, func() bool {
			st, err := daemon.GetStatus(ctx, p.addr)
			return err == nil && st.Peers == 2
		}, fmt.Sprintf("survivor %d sees the crash handled; stderr:\n%s", i, p.stderr.String()))
	}
	for i, p := range survivors {
		if _, err := daemon.Admin(ctx, p.addr, &daemon.AdminRequest{Op: "validate"}); err != nil {
			t.Fatalf("validate on survivor %d after SIGKILL: %v", i, err)
		}
		for j := 0; j < 9; j++ {
			k := fmt.Sprintf("svc%02d", j)
			resp, err := daemon.Admin(ctx, p.addr, &daemon.AdminRequest{Op: "discover", Key: k})
			if err != nil || !resp.Found {
				t.Fatalf("key %s lost after SIGKILL (survivor %d): err=%v", k, i, err)
			}
		}
	}

	// Graceful shutdown of the survivors exercises the LEAVE path.
	for _, p := range []*proc{m1, steward} {
		p.cmd.Process.Signal(syscall.SIGTERM)
	}
	waitUntil(t, 10*time.Second, func() bool {
		return m1.cmd.ProcessState != nil || m1.cmd.Wait() == nil
	}, "member exits on SIGTERM")
}

// TestSmokeStewardFailover is the cross-process failover soak: five
// dlptd processes form one overlay, concurrent register/query load
// runs against the members, and the steward is SIGKILLed mid-load.
// The survivors elect a new steward under epoch 2, every write that
// was acknowledged (before, during or after the failover window)
// stays discoverable, writes resume through every survivor, and the
// restarted old steward rejoins as a plain member of the new epoch.
func TestSmokeStewardFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "dlptd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build dlptd: %v\n%s", err, out)
	}

	base := map[string]any{
		"listen":           "127.0.0.1:0",
		"capacity":         8,
		"alphabet":         "lower_alnum",
		"probe_every":      "100ms",
		"miss_threshold":   3,
		"replicate_every":  "300ms",
		"join_timeout":     "30s",
		"election_timeout": "400ms",
		"forward_retry":    "20s",
	}
	cfg := func(seed int64, bootstrap ...string) map[string]any {
		m := map[string]any{"seed": seed}
		for k, v := range base {
			m[k] = v
		}
		if len(bootstrap) > 0 {
			m["bootstrap"] = bootstrap
		}
		return m
	}

	steward := startProc(t, bin, writeConfig(t, dir, "steward.json", cfg(1)))
	members := make([]*proc, 0, 4)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("m%d.json", i+1)
		members = append(members, startProc(t, bin, writeConfig(t, dir, name, cfg(int64(i+2), steward.addr))))
	}
	procs := append([]*proc{steward}, members...)

	ctx := context.Background()
	for i, p := range procs {
		waitUntil(t, 20*time.Second, func() bool {
			st, err := daemon.GetStatus(ctx, p.addr)
			return err == nil && st.Peers == 5
		}, fmt.Sprintf("process %d sees 5 peers; stderr:\n%s", i, p.stderr.String()))
	}
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("seed%02d", i)
		if _, err := daemon.Admin(ctx, procs[i%5].addr, &daemon.AdminRequest{Op: "register", Key: k, Value: "v"}); err != nil {
			t.Fatalf("seed register %s: %v", k, err)
		}
	}
	// Let the replicate tick snapshot replicas so the steward's own
	// nodes survive its death.
	time.Sleep(900 * time.Millisecond)

	// Concurrent load against every member: registers (forwarded
	// originations that must ride out the failover window via the
	// retry budget) and discoveries (served from local mirrors). Only
	// acknowledged writes are asserted durable.
	stop := make(chan struct{})
	var killed atomic.Bool
	type loadResult struct {
		// ackedPostKill are writes whose register call started after
		// the steward was dead — they can only have been serialized by
		// the new steward, so they must be durable. Writes acked by the
		// old steward in its final replicate window may be hosted on
		// the dying peer with no replicas yet and are legitimately lost
		// on crash, so they carry no durability claim here.
		ackedPostKill []string
		errs          []string
	}
	results := make([]loadResult, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *proc) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("load%d%03d", i, n)
				postKill := killed.Load()
				if _, err := daemon.Admin(ctx, m.addr, &daemon.AdminRequest{Op: "register", Key: k, Value: "v"}); err != nil {
					results[i].errs = append(results[i].errs, fmt.Sprintf("%s: %v", k, err))
				} else if postKill {
					results[i].ackedPostKill = append(results[i].ackedPostKill, k)
				}
				if _, err := daemon.Admin(ctx, m.addr, &daemon.AdminRequest{Op: "discover", Key: "seed00"}); err != nil {
					results[i].errs = append(results[i].errs, fmt.Sprintf("discover: %v", err))
				}
				time.Sleep(25 * time.Millisecond)
			}
		}(i, m)
	}

	// SIGKILL the steward mid-load: no goodbye, no flush.
	time.Sleep(500 * time.Millisecond)
	if err := steward.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	steward.cmd.Wait()
	killed.Store(true)

	// One survivor assumes stewardship under epoch 2 and every
	// survivor converges on the new epoch with the dead steward
	// crashed out.
	var newSteward *proc
	waitUntil(t, 30*time.Second, func() bool {
		newSteward = nil
		n := 0
		for _, p := range members {
			st, err := daemon.GetStatus(ctx, p.addr)
			if err == nil && st.Role == "steward" && st.Epoch == 2 {
				newSteward = p
				n++
			}
		}
		return n == 1
	}, "one survivor assumes stewardship at epoch 2")
	for i, p := range members {
		waitUntil(t, 30*time.Second, func() bool {
			st, err := daemon.GetStatus(ctx, p.addr)
			return err == nil && st.Epoch == 2 && st.Peers == 4 && len(st.Members) == 4
		}, fmt.Sprintf("survivor %d converges on epoch 2; stderr:\n%s", i, p.stderr.String()))
	}

	// Let the load run a beat under the new steward, then stop it.
	time.Sleep(700 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Writes resumed: the post-kill window must have produced acks on
	// every member (the retry budget covers the election), every
	// post-kill acknowledged write must be discoverable on every
	// survivor, and the replicated seed keys survived the crash.
	for i := range results {
		if len(results[i].ackedPostKill) == 0 {
			t.Fatalf("member %d acked no writes after the kill; errors: %v", i, results[i].errs)
		}
	}
	seqs := make(map[string]uint64)
	for i, p := range members {
		for j := range results {
			for _, k := range results[j].ackedPostKill {
				resp, err := daemon.Admin(ctx, p.addr, &daemon.AdminRequest{Op: "discover", Key: k})
				if err != nil || !resp.Found {
					t.Fatalf("post-kill acked write %s missing on survivor %d: err=%v", k, i, err)
				}
			}
		}
		for s := 0; s < 10; s++ {
			k := fmt.Sprintf("seed%02d", s)
			resp, err := daemon.Admin(ctx, p.addr, &daemon.AdminRequest{Op: "discover", Key: k})
			if err != nil || !resp.Found {
				t.Fatalf("replicated seed key %s missing on survivor %d: err=%v", k, i, err)
			}
		}
		if _, err := daemon.Admin(ctx, p.addr, &daemon.AdminRequest{Op: "validate"}); err != nil {
			t.Fatalf("validate on survivor %d: %v", i, err)
		}
		st, err := daemon.GetStatus(ctx, p.addr)
		if err != nil {
			t.Fatal(err)
		}
		seqs[p.addr] = st.Seq
	}
	for addr, s := range seqs {
		if s != seqs[newSteward.addr] {
			t.Fatalf("seq diverged: %s at %d, steward at %d", addr, s, seqs[newSteward.addr])
		}
	}

	// Fresh writes land through every survivor under the new epoch.
	for i, p := range members {
		k := fmt.Sprintf("resumed%02d", i)
		if _, err := daemon.Admin(ctx, p.addr, &daemon.AdminRequest{Op: "register", Key: k, Value: "v"}); err != nil {
			t.Fatalf("post-failover register via survivor %d: %v", i, err)
		}
	}

	// The old steward restarts with the survivors as bootstrap and
	// rejoins as a plain member of epoch 2.
	restartCfg := cfg(1, members[0].addr, members[1].addr)
	restarted := startProc(t, bin, writeConfig(t, dir, "restarted.json", restartCfg))
	waitUntil(t, 30*time.Second, func() bool {
		st, err := daemon.GetStatus(ctx, restarted.addr)
		return err == nil && st.Role == "member" && st.Epoch == 2 && st.Peers == 5 &&
			st.StewardAddr == newSteward.addr
	}, fmt.Sprintf("old steward rejoins as member; stderr:\n%s", restarted.stderr.String()))
	if _, err := daemon.Admin(ctx, restarted.addr, &daemon.AdminRequest{Op: "validate"}); err != nil {
		t.Fatalf("validate on rejoined old steward: %v", err)
	}
	resp, err := daemon.Admin(ctx, restarted.addr, &daemon.AdminRequest{Op: "discover", Key: "seed00"})
	if err != nil || !resp.Found {
		t.Fatalf("seed key missing on rejoined old steward: err=%v", err)
	}
}
