package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"dlpt/internal/daemon"
)

// proc is one dlptd process under test.
type proc struct {
	cmd    *exec.Cmd
	addr   string
	stderr *bytes.Buffer
}

// startProc launches a dlptd process and reads its advertised address
// off stdout.
func startProc(t *testing.T, bin, cfgPath string) *proc {
	t.Helper()
	p := &proc{cmd: exec.Command(bin, "run", "-config", cfgPath), stderr: &bytes.Buffer{}}
	p.cmd.Stderr = p.stderr
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("start dlptd: %v", err)
	}
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			addrCh <- sc.Text()
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			t.Fatalf("dlptd printed no address; stderr:\n%s", p.stderr.String())
		}
		p.addr = addr
	case <-time.After(30 * time.Second):
		t.Fatalf("dlptd never printed its address; stderr:\n%s", p.stderr.String())
	}
	return p
}

func writeConfig(t *testing.T, dir, name string, cfg map[string]any) string {
	t.Helper()
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("timed out: %s", msg)
}

// TestSmokeThreeProcessOverlay is the end-to-end deployment check:
// three dlptd processes on localhost form one overlay through the
// bootstrap handshake, serve registrations, discoveries and streamed
// completions across process boundaries, and survive the SIGKILL of
// one member — the steward's maintenance loop declares it crashed,
// recovers its nodes from replicas, and the survivors validate clean.
func TestSmokeThreeProcessOverlay(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "dlptd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build dlptd: %v\n%s", err, out)
	}

	base := map[string]any{
		"listen":          "127.0.0.1:0",
		"capacity":        8,
		"alphabet":        "lower_alnum",
		"probe_every":     "100ms",
		"miss_threshold":  3,
		"replicate_every": "500ms",
		"join_timeout":    "20s",
	}
	cfg := func(seed int64, bootstrap ...string) map[string]any {
		m := map[string]any{"seed": seed}
		for k, v := range base {
			m[k] = v
		}
		if len(bootstrap) > 0 {
			m["bootstrap"] = bootstrap
		}
		return m
	}

	steward := startProc(t, bin, writeConfig(t, dir, "steward.json", cfg(1)))
	m1 := startProc(t, bin, writeConfig(t, dir, "m1.json", cfg(2, steward.addr)))
	m2 := startProc(t, bin, writeConfig(t, dir, "m2.json", cfg(3, steward.addr)))
	procs := []*proc{steward, m1, m2}

	ctx := context.Background()
	for i, p := range procs {
		waitUntil(t, 15*time.Second, func() bool {
			st, err := daemon.GetStatus(ctx, p.addr)
			return err == nil && st.Peers == 3
		}, fmt.Sprintf("process %d sees 3 peers; stderr:\n%s", i, p.stderr.String()))
	}

	// Register through every process; each key lands wherever the ring
	// places it, so discoveries and completions cross processes.
	for i := 0; i < 9; i++ {
		k := fmt.Sprintf("svc%02d", i)
		p := procs[i%3]
		if _, err := daemon.Admin(ctx, p.addr, &daemon.AdminRequest{Op: "register", Key: k, Value: "endpoint"}); err != nil {
			t.Fatalf("register %s via process %d: %v", k, i%3, err)
		}
	}
	for i, p := range procs {
		for j := 0; j < 9; j++ {
			k := fmt.Sprintf("svc%02d", j)
			resp, err := daemon.Admin(ctx, p.addr, &daemon.AdminRequest{Op: "discover", Key: k})
			if err != nil || !resp.Found {
				t.Fatalf("discover %s on process %d: found=%v err=%v", k, i, resp != nil && resp.Found, err)
			}
		}
		resp, err := daemon.Admin(ctx, p.addr, &daemon.AdminRequest{Op: "complete", Prefix: "svc"})
		if err != nil {
			t.Fatalf("complete on process %d: %v", i, err)
		}
		if len(resp.Keys) != 9 {
			t.Fatalf("complete on process %d = %d keys, want 9", i, len(resp.Keys))
		}
		if _, err := daemon.Admin(ctx, p.addr, &daemon.AdminRequest{Op: "validate"}); err != nil {
			t.Fatalf("validate on process %d: %v", i, err)
		}
	}

	// Give the replicate tick a beat so every node has a ring-successor
	// snapshot, then SIGKILL one member — no graceful leave.
	time.Sleep(1200 * time.Millisecond)
	if err := m2.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	m2.cmd.Wait()

	survivors := []*proc{steward, m1}
	for i, p := range survivors {
		waitUntil(t, 20*time.Second, func() bool {
			st, err := daemon.GetStatus(ctx, p.addr)
			return err == nil && st.Peers == 2
		}, fmt.Sprintf("survivor %d sees the crash handled; stderr:\n%s", i, p.stderr.String()))
	}
	for i, p := range survivors {
		if _, err := daemon.Admin(ctx, p.addr, &daemon.AdminRequest{Op: "validate"}); err != nil {
			t.Fatalf("validate on survivor %d after SIGKILL: %v", i, err)
		}
		for j := 0; j < 9; j++ {
			k := fmt.Sprintf("svc%02d", j)
			resp, err := daemon.Admin(ctx, p.addr, &daemon.AdminRequest{Op: "discover", Key: k})
			if err != nil || !resp.Found {
				t.Fatalf("key %s lost after SIGKILL (survivor %d): err=%v", k, i, err)
			}
		}
	}

	// Graceful shutdown of the survivors exercises the LEAVE path.
	for _, p := range []*proc{m1, steward} {
		p.cmd.Process.Signal(syscall.SIGTERM)
	}
	waitUntil(t, 10*time.Second, func() bool {
		return m1.cmd.ProcessState != nil || m1.cmd.Wait() == nil
	}, "member exits on SIGTERM")
}
