// Command dlptd runs one DLPT daemon: a single-peer overlay process
// that joins other dlptd processes over TCP to form one cross-host
// prefix-tree service-discovery overlay.
//
// Usage:
//
//	dlptd run -config dlptd.json
//	dlptd run -listen 127.0.0.1:7401 [-bootstrap host:port,...] [flags]
//	dlptd status [-addr host:port] [-obs]
//	dlptd op [-addr host:port] register KEY VALUE
//	dlptd op [-addr host:port] unregister KEY VALUE
//	dlptd op [-addr host:port] discover KEY
//	dlptd op [-addr host:port] complete PREFIX
//	dlptd op [-addr host:port] range LO HI
//	dlptd op [-addr host:port] validate
//
// A daemon started without -bootstrap seeds a fresh overlay and acts
// as its steward; with -bootstrap it joins the overlay those
// addresses belong to, retrying with backoff until the handshake
// succeeds. SIGINT/SIGTERM shut down gracefully: a member announces
// its departure so its tree nodes hand off before the process exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"dlpt/internal/daemon"
	"dlpt/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:], os.Stdout)
	case "op":
		err = cmdOp(os.Args[2:], os.Stdout)
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
		return
	default:
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlptd: %v\n", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, "usage: dlptd run -config FILE | dlptd run [flags]\n"+
		"       dlptd status [-addr HOST:PORT] [-obs]\n"+
		"       dlptd op [-addr HOST:PORT] register|unregister|discover|complete|range|validate ARGS...\n")
}

// cmdRun starts a daemon and blocks until SIGINT/SIGTERM.
func cmdRun(args []string) error {
	fs := flag.NewFlagSet("dlptd run", flag.ExitOnError)
	configPath := fs.String("config", "", "JSON config file (flags override it)")
	listen := fs.String("listen", "", "listener bind address, host:port (0 port = ephemeral)")
	advertise := fs.String("advertise", "", "host other daemons dial (for 0.0.0.0 binds)")
	bootstrap := fs.String("bootstrap", "", "comma-separated bootstrap addresses; empty seeds a new overlay")
	dataDir := fs.String("data-dir", "", "persistence directory (steward only)")
	capacity := fs.Int("capacity", 0, "peer capacity (default 64)")
	alphabet := fs.String("alphabet", "", "key alphabet: binary, lower_alnum, printable_ascii or digit string")
	seed := fs.Int64("seed", 0, "rng seed (0 = from clock)")
	metrics := fs.String("metrics", "", "HTTP address serving /metrics and /debug/trace (empty = disabled)")
	electionTimeout := fs.Duration("election-timeout", 0, "election vote round-trip bound and retry pace (default 1s)")
	fs.Parse(args)

	cfg := &daemon.Config{}
	if *configPath != "" {
		var err error
		if cfg, err = daemon.LoadConfig(*configPath); err != nil {
			return err
		}
	}
	if *listen != "" {
		cfg.Listen = *listen
	}
	if *advertise != "" {
		cfg.Advertise = *advertise
	}
	if *bootstrap != "" {
		cfg.Bootstrap = strings.Split(*bootstrap, ",")
	}
	if *dataDir != "" {
		cfg.DataDir = *dataDir
	}
	if *capacity > 0 {
		cfg.Capacity = *capacity
	}
	if *alphabet != "" {
		cfg.Alphabet = *alphabet
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *metrics != "" {
		cfg.MetricsAddr = *metrics
	}
	if *electionTimeout > 0 {
		cfg.ElectionTimeout = daemon.Duration(*electionTimeout)
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	d, err := daemon.Start(*cfg, logger.Printf)
	if err != nil {
		return err
	}
	// The advertised address on stdout lets scripts (and the smoke
	// test) bootstrap off ephemeral ports.
	fmt.Println(d.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	logger.Printf("dlptd: %v, shutting down", s)
	return d.Close()
}

// cmdStatus prints a daemon's status as JSON; with -obs it appends the
// daemon's key observability counters (the same series the /metrics
// endpoint exports), fetched over the admin wire path.
func cmdStatus(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dlptd status", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7401", "daemon address")
	showObs := fs.Bool("obs", false, "also print observability counters (visit load, pool, replication lag)")
	fs.Parse(args)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := daemon.GetStatus(ctx, *addr)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(st); err != nil {
		return err
	}
	if !*showObs {
		return nil
	}
	resp, err := daemon.Admin(ctx, *addr, &daemon.AdminRequest{Op: "obs"})
	if err != nil {
		return err
	}
	printObs(w, resp.Obs)
	return nil
}

// printObs renders the counters `dlptd status -obs` surfaces: the ten
// most loaded peers, the connection pool's depth and dial count, and
// the replication/apply lag.
func printObs(w io.Writer, snap obs.Snapshot) {
	type load struct {
		peer string
		val  float64
	}
	var loads []load
	prefix := obs.SeriesVisitLoad + `{peer="`
	for k, v := range snap {
		if strings.HasPrefix(k, prefix) && strings.HasSuffix(k, `"}`) {
			loads = append(loads, load{peer: k[len(prefix) : len(k)-2], val: v})
		}
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].val != loads[j].val {
			return loads[i].val > loads[j].val
		}
		return loads[i].peer < loads[j].peer
	})
	if len(loads) > 10 {
		loads = loads[:10]
	}
	fmt.Fprintf(w, "visit load (top %d):\n", len(loads))
	for _, l := range loads {
		fmt.Fprintf(w, "  %-24s %g\n", l.peer, l.val)
	}
	fmt.Fprintf(w, "pool: %g conns, %g dials\n",
		snap.Get(obs.SeriesPoolConns), snap.Get(obs.SeriesPoolDials))
	fmt.Fprintf(w, "visits: %g total, %g drops\n",
		snap.Get(obs.SeriesVisits), snap.Get(obs.SeriesSaturationDrops))
	fmt.Fprintf(w, "replication lag: %gs (apply seq %g, lag %gs)\n",
		snap.Get(obs.SeriesReplicationLag), snap.Get(obs.SeriesApplySeq), snap.Get(obs.SeriesApplyLag))
}

// cmdOp runs one admin operation against a daemon.
func cmdOp(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dlptd op", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7401", "daemon address")
	limit := fs.Int("limit", 0, "result limit for complete/range (0 = unlimited)")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) < 1 {
		return fmt.Errorf("op: missing operation")
	}
	req := &daemon.AdminRequest{Op: rest[0], Limit: *limit}
	switch rest[0] {
	case "register", "unregister":
		if len(rest) != 3 {
			return fmt.Errorf("op %s: want KEY VALUE", rest[0])
		}
		req.Key, req.Value = rest[1], rest[2]
	case "discover":
		if len(rest) != 2 {
			return fmt.Errorf("op discover: want KEY")
		}
		req.Key = rest[1]
	case "complete":
		if len(rest) != 2 {
			return fmt.Errorf("op complete: want PREFIX")
		}
		req.Prefix = rest[1]
	case "range":
		if len(rest) != 3 {
			return fmt.Errorf("op range: want LO HI")
		}
		req.Lo, req.Hi = rest[1], rest[2]
	case "validate":
		if len(rest) != 1 {
			return fmt.Errorf("op validate: no arguments")
		}
	default:
		return fmt.Errorf("op: unknown operation %q", rest[0])
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := daemon.Admin(ctx, *addr, req)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(resp)
}
