// Package engine defines the pluggable execution-engine contract of
// the DLPT library: one interface every deployment shape of the
// paper's protocol implements, so the public Registry and Directory
// APIs, the examples and the benchmarks all run unchanged over any
// backend.
//
// Three first-class implementations ship with the module:
//
//   - engine/local — the sequential protocol core behind one mutex;
//     deterministic, no goroutines, the shape of the paper's simulator.
//   - engine/live  — one goroutine per peer with channel mailboxes and
//     hop-by-hop concurrent discovery routing (the default backend).
//   - engine/tcp   — every peer owns a loopback TCP listener and
//     discoveries hop peer-to-peer as binary frames multiplexed over
//     persistent pooled connections.
//
// Every operation takes a context.Context; cancelling it aborts
// in-flight routed traversals and returns the context error.
package engine

import (
	"context"
	"errors"

	"dlpt/internal/core"
	"dlpt/internal/keys"
	"dlpt/internal/obs"
	"dlpt/internal/persist"
	"dlpt/internal/trace"
	"dlpt/internal/trie"
)

// ErrClosed is returned by every operation on a closed engine.
var ErrClosed = errors.New("dlpt: engine closed")

// ErrSaturated is returned by Discover on a capacity-gated engine
// (Config.GateCapacity) when a peer on the routing path has exhausted
// its per-time-unit capacity and dropped the request — Section 4's
// request model. Tick starts a fresh unit and clears the saturation.
var ErrSaturated = errors.New("dlpt: peer saturated")

// Entry is one (key, value) registration, the unit of RegisterBatch.
type Entry struct {
	Key   string
	Value string
}

// Result is the outcome of a routed discovery.
type Result struct {
	Key   string
	Found bool
	// Values holds the registered values in lexicographic order.
	Values []string
	// LogicalHops counts tree edges traversed; PhysicalHops the subset
	// crossing peer boundaries (wire transfers on networked engines).
	LogicalHops  int
	PhysicalHops int
}

// QueryResult is the outcome of a routed multi-key query (automatic
// completion or lexicographic range).
type QueryResult struct {
	// Keys are the matching declared keys in lexicographic order.
	Keys         []string
	LogicalHops  int
	PhysicalHops int
}

// QueryKind selects the traversal of a streaming query.
type QueryKind int

const (
	// QueryComplete resolves automatic completion of a partial search
	// string: every declared key extending Prefix.
	QueryComplete QueryKind = iota
	// QueryRange resolves the lexicographic range query [Lo, Hi].
	QueryRange
)

// Query describes one streaming multi-key query. Limit is pushed
// down into the tree traversal: the walk stops as soon as Limit
// matches have been yielded instead of collecting everything and
// truncating at the top. Limit <= 0 means unlimited.
type Query struct {
	Kind   QueryKind
	Prefix string // QueryComplete
	Lo, Hi string // QueryRange
	Limit  int
}

// QueryStats reports the routing cost a stream has accumulated so
// far; after the stream is exhausted they are the query's totals.
type QueryStats struct {
	// LogicalHops counts tree edges traversed; PhysicalHops the
	// subset crossing peer boundaries.
	LogicalHops  int
	PhysicalHops int
	// NodesVisited counts tree nodes touched by the traversal — the
	// direct measure of limit pushdown (a limited stream visits a
	// fraction of the nodes the full walk would).
	NodesVisited int
}

// Stream yields the matches of one Query in lexicographic order as
// the tree traversal discovers them. Streams are not safe for
// concurrent use. Close releases the stream's resources and halts
// the underlying traversal; it is idempotent and must be called
// (the public iterator wrappers do so on every exit path).
type Stream interface {
	// Next returns the next matching key. ok == false means the
	// stream is exhausted — normally, on error, or after Close; Err
	// disambiguates.
	Next() (key string, ok bool)
	// Err reports the error that terminated the stream early, nil
	// after a normal end of stream.
	Err() error
	// Stats reports the traversal cost accumulated so far.
	Stats() QueryStats
	// Close halts the traversal and releases the stream.
	Close() error
}

// Querier is the streaming-query surface of an engine; CollectQuery
// only needs this slice of the contract.
type Querier interface {
	Query(ctx context.Context, q Query) (Stream, error)
}

// CollectQuery drains e.Query(ctx, q) into a QueryResult — the slice
// path every engine's Complete and Range are thin wrappers over, so
// old and new paths cannot diverge.
func CollectQuery(ctx context.Context, e Querier, q Query) (QueryResult, error) {
	s, err := e.Query(ctx, q)
	if err != nil {
		return QueryResult{}, err
	}
	defer s.Close()
	var ks []string
	for {
		k, ok := s.Next()
		if !ok {
			break
		}
		ks = append(ks, k)
	}
	if err := s.Err(); err != nil {
		return QueryResult{}, err
	}
	st := s.Stats()
	return QueryResult{Keys: ks, LogicalHops: st.LogicalHops, PhysicalHops: st.PhysicalHops}, nil
}

// ListStream is a Stream over an already-materialized result — the
// easy way for a custom backend (WithEngineFactory) to satisfy the
// streaming contract before it has a genuinely incremental traversal.
type ListStream struct {
	keys  []string
	stats QueryStats
	pos   int
}

// NewListStream wraps keys and their traversal stats in a Stream.
func NewListStream(keys []string, stats QueryStats) *ListStream {
	return &ListStream{keys: keys, stats: stats}
}

// Next implements Stream.
func (s *ListStream) Next() (string, bool) {
	if s.pos >= len(s.keys) {
		return "", false
	}
	k := s.keys[s.pos]
	s.pos++
	return k, true
}

// Err implements Stream (a materialized stream cannot fail).
func (s *ListStream) Err() error { return nil }

// Stats implements Stream.
func (s *ListStream) Stats() QueryStats { return s.stats }

// Close implements Stream.
func (s *ListStream) Close() error {
	s.pos = len(s.keys)
	return nil
}

// QueryResultFrom converts an internal key slice plus hop counters
// into a QueryResult; shared by the engine implementations.
func QueryResultFrom(ks []keys.Key, logical, physical int) QueryResult {
	out := QueryResult{LogicalHops: logical, PhysicalHops: physical}
	if len(ks) > 0 {
		out.Keys = make([]string, len(ks))
		for i, k := range ks {
			out.Keys[i] = string(k)
		}
	}
	return out
}

// PeerInfo is a read-only view of one live peer.
type PeerInfo struct {
	// ID is the peer's ring identifier.
	ID string
	// Capacity is the peer's per-time-unit processing capacity.
	Capacity int
	// Nodes is the number of tree nodes the peer currently runs.
	Nodes int
	// Load is the peer's aggregate load of the previous time unit
	// (the input of the MLT balancing heuristic).
	Load int
}

// MembershipStats aggregates the peer-lifecycle and replication
// counters of one engine since construction.
type MembershipStats struct {
	// Peers is the current peer count.
	Peers int
	// Joins counts peers added through AddPeer after construction.
	Joins int
	// Leaves counts graceful departures (RemovePeer).
	Leaves int
	// Crashes counts abrupt failures (CrashPeer).
	Crashes int
	// Recoveries counts Recover calls.
	Recoveries int
	// ReplicatedNodes counts node snapshots shipped by Replicate,
	// cumulatively.
	ReplicatedNodes int
	// RestoredNodes counts nodes reinstalled from snapshots.
	RestoredNodes int
	// LostNodes counts crashed nodes that could not be recovered
	// (declared after the last Replicate on a peer that crashed).
	LostNodes int
	// BalanceMoves counts boundary moves applied by Balance.
	BalanceMoves int
	// ReplicaTransferMsgs counts the replica-set transfer messages
	// topology changes paid to re-home replicas onto their hosts' new
	// ring successors (one per source→target batch per event), and
	// ReplicaTransferredNodes the snapshots those messages carried —
	// the churn-proportional replication cost of the paper's model.
	ReplicaTransferMsgs     int
	ReplicaTransferredNodes int
}

// RecoveryReport is the outcome of one Recover pass.
type RecoveryReport struct {
	// Restored counts nodes reinstalled from replica snapshots.
	Restored int
	// Lost counts crashed nodes that could not be brought back; it is
	// always len(LostKeys).
	Lost int
	// LostKeys names the crashed node keys that could not be brought
	// back, in ascending order — only data declared after the last
	// Replicate on a crashed peer (plus prefix labels whose whole
	// subtree vanished with it) can appear here, so callers can
	// assert loss windows precisely instead of by cardinality.
	LostKeys []string
}

// RegisterObsCollectors wires the scrape-time mirrors an in-process
// engine needs: per-peer visit-load and node-count gauges (replaced
// wholesale each scrape, so balance renames never leave stale series)
// and the core's never-reset replication counters (mirrored with Set,
// so they stay monotonic across crash/recover and Balance). The
// callbacks run at scrape time under the engine's own locking.
func RegisterObsCollectors(m *obs.Metrics,
	peers func() []core.PeerSummary, repl func() core.ReplicationCounters) {
	if m == nil {
		return
	}
	m.Registry.OnScrape(func() {
		sums := peers()
		loads := make(map[string]float64, len(sums))
		nodes := make(map[string]float64, len(sums))
		for _, s := range sums {
			loads[string(s.ID)] = float64(s.LoadPrev)
			nodes[string(s.ID)] = float64(s.Nodes)
		}
		m.Registry.ReplaceGauges(obs.SeriesVisitLoad,
			"Discovery visits received per peer in the last load unit.", "peer", loads)
		m.Registry.ReplaceGauges(obs.SeriesPeerNodes,
			"Tree nodes hosted per peer.", "peer", nodes)
		rs := repl()
		m.ReplicaSnapshotMsgs.Set(float64(rs.SnapshotMsgs))
		m.ReplicaTransferMsgs.Set(float64(rs.TransferMsgs))
		m.ReplicaTransferNodes.Set(float64(rs.TransferredNodes))
	})
}

// PeerInfosFrom converts protocol-core peer summaries into the public
// view; shared by the engine implementations.
func PeerInfosFrom(ps []core.PeerSummary) []PeerInfo {
	out := make([]PeerInfo, len(ps))
	for i, p := range ps {
		out[i] = PeerInfo{
			ID:       string(p.ID),
			Capacity: p.Capacity,
			Nodes:    p.Nodes,
			Load:     p.LoadPrev,
		}
	}
	return out
}

// Config collects the deployment parameters every engine constructor
// accepts.
type Config struct {
	// Alphabet is the key alphabet of the overlay.
	Alphabet *keys.Alphabet
	// Capacities lists one entry per peer; the overlay starts with
	// len(Capacities) peers.
	Capacities []int
	// Seed fixes the engine's internal randomness (peer identifiers,
	// discovery entry points).
	Seed int64
	// JoinPlacement names the internal/lb strategy whose PlaceJoin
	// picks ring identifiers for joining peers ("KC", "NoLB", ...),
	// so k-choices placement runs on every backend, not just the
	// simulator. Empty keeps the engine's uniform random placement.
	JoinPlacement string
	// GateCapacity enforces per-peer capacity on the discovery path:
	// every discovery visit consumes capacity and a saturated peer
	// drops the request (Discover returns ErrSaturated) until Tick
	// starts the next time unit — Section 4's request model on the
	// deployment engines. Off by default.
	GateCapacity bool
	// Persist, when non-nil, makes the overlay durable: every
	// Replicate tick writes an fsynced snapshot of the replica state
	// to the store and every catalogue mutation appends to its
	// journal, so a cold restart (Restore) can rebuild the overlay
	// after every peer dies.
	Persist *persist.Store
	// Restore rebuilds the overlay from Persist's newest snapshot and
	// journal instead of starting fresh: the persisted ring (ids and
	// capacities) is recreated — Capacities is ignored — the
	// replicated nodes are reinstalled through the canonical
	// anti-entropy rebuild, and the journal replays on top.
	Restore bool
	// Bind is the address the socket-backed engine's listeners bind:
	// "host", "host:port" or "host:0". Empty preserves the historical
	// 127.0.0.1 ephemeral-port binding; a fixed port only suits
	// single-peer deployments (dlptd). In-process engines ignore it.
	Bind string
	// AdvertiseHost overrides the host other processes dial when the
	// bind host is not reachable as written (e.g. a 0.0.0.0 bind
	// behind a NAT). In-process engines ignore it.
	AdvertiseHost string
	// Obs, when non-nil, instruments the engine: traversal counters,
	// per-phase hop-latency histograms and replication/pool state feed
	// this bundle's registry (see dlpt.WithObservability).
	Obs *obs.Metrics
	// Trace, when non-nil, records per-hop spans for routed traversals
	// and topology events into the ring-buffer recorder.
	Trace *trace.Recorder
}

// Factory constructs an engine from a Config. The root dlpt package
// maps engine kinds to factories; custom backends plug in through
// dlpt.WithEngineFactory.
type Factory func(Config) (Engine, error)

// Engine is one running deployment of the DLPT overlay. All methods
// are safe for concurrent use. Close releases the engine's resources
// (goroutines, listeners) and is idempotent; operations on a closed
// engine return ErrClosed.
type Engine interface {
	// Name identifies the backend ("local", "live", "tcp", ...).
	Name() string
	// Alphabet returns the overlay's key alphabet.
	Alphabet() *keys.Alphabet

	// Register declares key with a value.
	Register(ctx context.Context, key, value string) error
	// RegisterBatch declares every entry, holding the write side once
	// where the backend permits. It stops at the first failing entry.
	RegisterBatch(ctx context.Context, entries []Entry) error
	// Unregister removes value from key, reporting whether it was
	// registered.
	Unregister(ctx context.Context, key, value string) (bool, error)

	// Discover routes a discovery request for key through the overlay.
	// On a capacity-gated engine a saturated peer on the path drops
	// the request and Discover returns ErrSaturated.
	Discover(ctx context.Context, key string) (Result, error)
	// Query starts a streaming multi-key query: the returned Stream
	// yields matches in lexicographic order as the tree traversal
	// discovers them and stops traversing once q.Limit results have
	// been yielded or the consumer closes the stream. Cancelling ctx
	// aborts the in-flight traversal.
	Query(ctx context.Context, q Query) (Stream, error)
	// Complete resolves automatic completion of a partial search
	// string: every declared key extending prefix. It is a thin
	// wrapper draining Query.
	Complete(ctx context.Context, prefix string) (QueryResult, error)
	// Range resolves the lexicographic range query [lo, hi]. It is a
	// thin wrapper draining Query.
	Range(ctx context.Context, lo, hi string) (QueryResult, error)

	// AddPeer grows the overlay by one peer of the given capacity and
	// returns its identifier.
	AddPeer(ctx context.Context, capacity int) (string, error)
	// RemovePeer removes the peer with the given id gracefully: its
	// tree nodes hand off to the peers becoming responsible for them
	// and the catalogue is unchanged. Removing the last peer while it
	// hosts tree nodes is an error.
	RemovePeer(ctx context.Context, id string) error
	// CrashPeer fails the peer abruptly: its node states vanish
	// without transfer, per the paper's fault model. Until Recover
	// runs, the tree is degraded — discoveries may miss keys and
	// mutations must not be issued. The last peer cannot crash.
	CrashPeer(ctx context.Context, id string) error
	// Recover restores crashed node state from the replica store and
	// rebuilds the canonical tree structure; after it returns,
	// Validate holds again. Keys declared after the last Replicate on
	// a crashed peer are counted lost.
	Recover(ctx context.Context) (RecoveryReport, error)
	// Replicate snapshots every tree node to the replica store (the
	// periodic replication tick backing CrashPeer/Recover) and
	// returns the number of nodes replicated.
	Replicate(ctx context.Context) (int, error)
	// Peers lists the live peers in ascending id (ring) order.
	Peers(ctx context.Context) ([]PeerInfo, error)
	// MembershipStats reports the engine's peer-lifecycle and
	// replication counters.
	MembershipStats(ctx context.Context) (MembershipStats, error)

	// Tick ends the current load-accounting time unit: every node's
	// current load becomes the previous-unit load the balancing
	// strategies consume, and peer processed counters reset.
	Tick(ctx context.Context) error
	// Balance runs one periodic balancing round of the named
	// internal strategy ("MLT", "KC", "EqualLoad", "Directory",
	// "NoLB") over every peer, returning the number of boundary
	// moves applied. Peer identifiers may change: a move renames the
	// predecessor peer to preserve the placement rule.
	Balance(ctx context.Context, strategy string) (int, error)
	// Snapshot returns a consistent copy of the whole prefix tree
	// (whole-catalogue reads with no routing cost).
	Snapshot(ctx context.Context) (*trie.Tree, error)
	// Validate cross-checks every overlay invariant.
	Validate(ctx context.Context) error

	// NumPeers returns the current peer count.
	NumPeers() int
	// NumNodes returns the current tree size (declared keys plus
	// structural prefix nodes).
	NumNodes() int

	// Close shuts the engine down.
	Close() error
}
