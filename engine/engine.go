// Package engine defines the pluggable execution-engine contract of
// the DLPT library: one interface every deployment shape of the
// paper's protocol implements, so the public Registry and Directory
// APIs, the examples and the benchmarks all run unchanged over any
// backend.
//
// Three first-class implementations ship with the module:
//
//   - engine/local — the sequential protocol core behind one mutex;
//     deterministic, no goroutines, the shape of the paper's simulator.
//   - engine/live  — one goroutine per peer with channel mailboxes and
//     hop-by-hop concurrent discovery routing (the default backend).
//   - engine/tcp   — every peer owns a loopback TCP listener and
//     discoveries hop peer-to-peer as binary frames multiplexed over
//     persistent pooled connections.
//
// Every operation takes a context.Context; cancelling it aborts
// in-flight routed traversals and returns the context error.
package engine

import (
	"context"
	"errors"

	"dlpt/internal/core"
	"dlpt/internal/keys"
	"dlpt/internal/trie"
)

// ErrClosed is returned by every operation on a closed engine.
var ErrClosed = errors.New("dlpt: engine closed")

// Entry is one (key, value) registration, the unit of RegisterBatch.
type Entry struct {
	Key   string
	Value string
}

// Result is the outcome of a routed discovery.
type Result struct {
	Key   string
	Found bool
	// Values holds the registered values in lexicographic order.
	Values []string
	// LogicalHops counts tree edges traversed; PhysicalHops the subset
	// crossing peer boundaries (wire transfers on networked engines).
	LogicalHops  int
	PhysicalHops int
}

// QueryResult is the outcome of a routed multi-key query (automatic
// completion or lexicographic range).
type QueryResult struct {
	// Keys are the matching declared keys in lexicographic order.
	Keys         []string
	LogicalHops  int
	PhysicalHops int
}

// QueryResultFrom converts an internal key slice plus hop counters
// into a QueryResult; shared by the engine implementations.
func QueryResultFrom(ks []keys.Key, logical, physical int) QueryResult {
	out := QueryResult{LogicalHops: logical, PhysicalHops: physical}
	if len(ks) > 0 {
		out.Keys = make([]string, len(ks))
		for i, k := range ks {
			out.Keys[i] = string(k)
		}
	}
	return out
}

// PeerInfo is a read-only view of one live peer.
type PeerInfo struct {
	// ID is the peer's ring identifier.
	ID string
	// Capacity is the peer's per-time-unit processing capacity.
	Capacity int
	// Nodes is the number of tree nodes the peer currently runs.
	Nodes int
	// Load is the peer's aggregate load of the previous time unit
	// (the input of the MLT balancing heuristic).
	Load int
}

// MembershipStats aggregates the peer-lifecycle and replication
// counters of one engine since construction.
type MembershipStats struct {
	// Peers is the current peer count.
	Peers int
	// Joins counts peers added through AddPeer after construction.
	Joins int
	// Leaves counts graceful departures (RemovePeer).
	Leaves int
	// Crashes counts abrupt failures (CrashPeer).
	Crashes int
	// Recoveries counts Recover calls.
	Recoveries int
	// ReplicatedNodes counts node snapshots shipped by Replicate,
	// cumulatively.
	ReplicatedNodes int
	// RestoredNodes counts nodes reinstalled from snapshots.
	RestoredNodes int
	// LostNodes counts crashed nodes that could not be recovered
	// (declared after the last Replicate on a peer that crashed).
	LostNodes int
	// BalanceMoves counts boundary moves applied by Balance.
	BalanceMoves int
}

// RecoveryReport is the outcome of one Recover pass.
type RecoveryReport struct {
	// Restored counts nodes reinstalled from replica snapshots.
	Restored int
	// Lost counts crashed nodes that could not be brought back.
	Lost int
}

// PeerInfosFrom converts protocol-core peer summaries into the public
// view; shared by the engine implementations.
func PeerInfosFrom(ps []core.PeerSummary) []PeerInfo {
	out := make([]PeerInfo, len(ps))
	for i, p := range ps {
		out[i] = PeerInfo{
			ID:       string(p.ID),
			Capacity: p.Capacity,
			Nodes:    p.Nodes,
			Load:     p.LoadPrev,
		}
	}
	return out
}

// Config collects the deployment parameters every engine constructor
// accepts.
type Config struct {
	// Alphabet is the key alphabet of the overlay.
	Alphabet *keys.Alphabet
	// Capacities lists one entry per peer; the overlay starts with
	// len(Capacities) peers.
	Capacities []int
	// Seed fixes the engine's internal randomness (peer identifiers,
	// discovery entry points).
	Seed int64
}

// Factory constructs an engine from a Config. The root dlpt package
// maps engine kinds to factories; custom backends plug in through
// dlpt.WithEngineFactory.
type Factory func(Config) (Engine, error)

// Engine is one running deployment of the DLPT overlay. All methods
// are safe for concurrent use. Close releases the engine's resources
// (goroutines, listeners) and is idempotent; operations on a closed
// engine return ErrClosed.
type Engine interface {
	// Name identifies the backend ("local", "live", "tcp", ...).
	Name() string
	// Alphabet returns the overlay's key alphabet.
	Alphabet() *keys.Alphabet

	// Register declares key with a value.
	Register(ctx context.Context, key, value string) error
	// RegisterBatch declares every entry, holding the write side once
	// where the backend permits. It stops at the first failing entry.
	RegisterBatch(ctx context.Context, entries []Entry) error
	// Unregister removes value from key, reporting whether it was
	// registered.
	Unregister(ctx context.Context, key, value string) (bool, error)

	// Discover routes a discovery request for key through the overlay.
	Discover(ctx context.Context, key string) (Result, error)
	// Complete resolves automatic completion of a partial search
	// string: every declared key extending prefix.
	Complete(ctx context.Context, prefix string) (QueryResult, error)
	// Range resolves the lexicographic range query [lo, hi].
	Range(ctx context.Context, lo, hi string) (QueryResult, error)

	// AddPeer grows the overlay by one peer of the given capacity and
	// returns its identifier.
	AddPeer(ctx context.Context, capacity int) (string, error)
	// RemovePeer removes the peer with the given id gracefully: its
	// tree nodes hand off to the peers becoming responsible for them
	// and the catalogue is unchanged. Removing the last peer while it
	// hosts tree nodes is an error.
	RemovePeer(ctx context.Context, id string) error
	// CrashPeer fails the peer abruptly: its node states vanish
	// without transfer, per the paper's fault model. Until Recover
	// runs, the tree is degraded — discoveries may miss keys and
	// mutations must not be issued. The last peer cannot crash.
	CrashPeer(ctx context.Context, id string) error
	// Recover restores crashed node state from the replica store and
	// rebuilds the canonical tree structure; after it returns,
	// Validate holds again. Keys declared after the last Replicate on
	// a crashed peer are counted lost.
	Recover(ctx context.Context) (RecoveryReport, error)
	// Replicate snapshots every tree node to the replica store (the
	// periodic replication tick backing CrashPeer/Recover) and
	// returns the number of nodes replicated.
	Replicate(ctx context.Context) (int, error)
	// Peers lists the live peers in ascending id (ring) order.
	Peers(ctx context.Context) ([]PeerInfo, error)
	// MembershipStats reports the engine's peer-lifecycle and
	// replication counters.
	MembershipStats(ctx context.Context) (MembershipStats, error)

	// Tick ends the current load-accounting time unit: every node's
	// current load becomes the previous-unit load the balancing
	// strategies consume, and peer processed counters reset.
	Tick(ctx context.Context) error
	// Balance runs one periodic balancing round of the named
	// internal strategy ("MLT", "KC", "EqualLoad", "Directory",
	// "NoLB") over every peer, returning the number of boundary
	// moves applied. Peer identifiers may change: a move renames the
	// predecessor peer to preserve the placement rule.
	Balance(ctx context.Context, strategy string) (int, error)
	// Snapshot returns a consistent copy of the whole prefix tree
	// (whole-catalogue reads with no routing cost).
	Snapshot(ctx context.Context) (*trie.Tree, error)
	// Validate cross-checks every overlay invariant.
	Validate(ctx context.Context) error

	// NumPeers returns the current peer count.
	NumPeers() int
	// NumNodes returns the current tree size (declared keys plus
	// structural prefix nodes).
	NumNodes() int

	// Close shuts the engine down.
	Close() error
}
