package engine

import (
	"context"
	"sync/atomic"

	"dlpt/internal/core"
	"dlpt/internal/keys"
)

// MembershipCluster is the membership surface the concurrent runtime
// clusters (internal/live, internal/transport) share. Membership
// adapts it to the membership half of the Engine contract so the
// concurrent engine wrappers implement it once.
type MembershipCluster interface {
	RemovePeer(id keys.Key) error
	FailPeer(id keys.Key) error
	Recover() (restored int, lost []keys.Key, err error)
	Replicate() (int, error)
	ResetUnit() error
	Balance(strategy string) (int, error)
	PeerSummaries() []core.PeerSummary
	ReplicationStats() core.ReplicationCounters
	NumPeers() int
	Stopped() bool
}

// Membership implements the membership methods of Engine over a
// MembershipCluster; the concurrent engines embed a *Membership and
// report successful AddPeers through CountJoin.
type Membership struct {
	cluster MembershipCluster
	// mapErr normalizes the cluster's stopped error to ErrClosed.
	mapErr func(error) error

	joins, leaves, crashes, recoveries, balanceMoves atomic.Int64
}

// NewMembership adapts cluster, normalizing errors through mapErr.
func NewMembership(cluster MembershipCluster, mapErr func(error) error) *Membership {
	return &Membership{cluster: cluster, mapErr: mapErr}
}

// CountJoin records one successful AddPeer on the owning engine.
func (m *Membership) CountJoin() { m.joins.Add(1) }

// RecoveryReportFrom builds the public recovery report from the
// protocol core's restored count and lost key set; shared by the
// engine implementations.
func RecoveryReportFrom(restored int, lost []keys.Key) RecoveryReport {
	rep := RecoveryReport{Restored: restored, Lost: len(lost)}
	if len(lost) > 0 {
		rep.LostKeys = make([]string, len(lost))
		for i, k := range lost {
			rep.LostKeys[i] = string(k)
		}
	}
	return rep
}

// RemovePeer removes a peer gracefully; its tree nodes hand off to
// the peers becoming responsible for them.
func (m *Membership) RemovePeer(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := m.cluster.RemovePeer(keys.Key(id)); err != nil {
		return m.mapErr(err)
	}
	m.leaves.Add(1)
	return nil
}

// CrashPeer fails a peer abruptly: its node states vanish without
// transfer.
func (m *Membership) CrashPeer(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := m.cluster.FailPeer(keys.Key(id)); err != nil {
		return m.mapErr(err)
	}
	m.crashes.Add(1)
	return nil
}

// Recover restores crashed node state from the replica store.
func (m *Membership) Recover(ctx context.Context) (RecoveryReport, error) {
	if err := ctx.Err(); err != nil {
		return RecoveryReport{}, err
	}
	restored, lost, err := m.cluster.Recover()
	if err != nil {
		return RecoveryReport{}, m.mapErr(err)
	}
	m.recoveries.Add(1)
	return RecoveryReportFrom(restored, lost), nil
}

// Replicate snapshots every tree node to the replica store.
func (m *Membership) Replicate(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	n, err := m.cluster.Replicate()
	return n, m.mapErr(err)
}

// Peers lists the live peers in ring order.
func (m *Membership) Peers(ctx context.Context) ([]PeerInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if m.cluster.Stopped() {
		return nil, ErrClosed
	}
	return PeerInfosFrom(m.cluster.PeerSummaries()), nil
}

// MembershipStats reports the lifecycle and replication counters.
func (m *Membership) MembershipStats(ctx context.Context) (MembershipStats, error) {
	if err := ctx.Err(); err != nil {
		return MembershipStats{}, err
	}
	if m.cluster.Stopped() {
		return MembershipStats{}, ErrClosed
	}
	rep := m.cluster.ReplicationStats()
	return MembershipStats{
		Peers:                   m.cluster.NumPeers(),
		Joins:                   int(m.joins.Load()),
		Leaves:                  int(m.leaves.Load()),
		Crashes:                 int(m.crashes.Load()),
		Recoveries:              int(m.recoveries.Load()),
		ReplicatedNodes:         rep.SnapshotMsgs,
		RestoredNodes:           rep.RestoredNodes,
		LostNodes:               rep.LostNodes,
		BalanceMoves:            int(m.balanceMoves.Load()),
		ReplicaTransferMsgs:     rep.TransferMsgs,
		ReplicaTransferredNodes: rep.TransferredNodes,
	}, nil
}

// Tick ends the current load-accounting time unit.
func (m *Membership) Tick(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return m.mapErr(m.cluster.ResetUnit())
}

// Balance runs one round of the named strategy; the cluster rewires
// its routing identities across the renames the round applies.
func (m *Membership) Balance(ctx context.Context, strategy string) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	moves, err := m.cluster.Balance(strategy)
	m.balanceMoves.Add(int64(moves))
	return moves, m.mapErr(err)
}
