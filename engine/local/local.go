// Package local implements the engine.Engine contract over the
// sequential protocol core (internal/core) behind a single mutex: no
// goroutines, no sockets, fully deterministic given a seed. It is the
// cheapest backend for tests, simulations and single-process
// deployments, and the reference the differential tests compare the
// concurrent backends against.
package local

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"dlpt/engine"
	"dlpt/internal/core"
	"dlpt/internal/keys"
	"dlpt/internal/trie"
)

// Engine is a mutex-serialized sequential overlay.
type Engine struct {
	mu     sync.Mutex
	net    *core.Network
	rng    *rand.Rand
	closed bool
}

// New starts a local overlay with one peer per capacity entry.
func New(cfg engine.Config) (*Engine, error) {
	alpha := cfg.Alphabet
	if alpha == nil {
		alpha = keys.PrintableASCII
	}
	if len(cfg.Capacities) == 0 {
		return nil, fmt.Errorf("local: no peers")
	}
	e := &Engine{
		net: core.NewNetwork(alpha, core.PlacementLexicographic),
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	for _, capacity := range cfg.Capacities {
		if _, err := e.addPeer(capacity); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Wrap adapts an already-built network (e.g. one a test drives
// directly) to the engine contract. The caller keeps ownership of the
// network's peer lifecycle.
func Wrap(net *core.Network, seed int64) *Engine {
	return &Engine{net: net, rng: rand.New(rand.NewSource(seed))}
}

// Factory adapts New to the engine.Factory signature.
func Factory(cfg engine.Config) (engine.Engine, error) { return New(cfg) }

// Name identifies the backend.
func (e *Engine) Name() string { return "local" }

// Alphabet returns the overlay's key alphabet.
func (e *Engine) Alphabet() *keys.Alphabet { return e.net.Alphabet }

// guard rejects operations on a closed engine or cancelled context.
// Callers must hold e.mu.
func (e *Engine) guard(ctx context.Context) error {
	if e.closed {
		return engine.ErrClosed
	}
	return ctx.Err()
}

func (e *Engine) addPeer(capacity int) (keys.Key, error) {
	var id keys.Key
	for {
		id = e.net.Alphabet.RandomKey(e.rng, 12, 12)
		if _, exists := e.net.Peer(id); !exists {
			break
		}
	}
	if err := e.net.JoinPeer(id, capacity, e.rng); err != nil {
		return "", err
	}
	return id, nil
}

// Register declares key with a value.
func (e *Engine) Register(ctx context.Context, key, value string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return err
	}
	return e.net.InsertData(keys.Key(key), value, e.rng)
}

// RegisterBatch declares every entry under one lock acquisition. The
// context is checked once up front (as on every engine): an accepted
// batch runs to completion, so cancellation cannot leave a partially
// applied prefix.
func (e *Engine) RegisterBatch(ctx context.Context, entries []engine.Entry) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return err
	}
	for _, ent := range entries {
		if err := e.net.InsertData(keys.Key(ent.Key), ent.Value, e.rng); err != nil {
			return err
		}
	}
	return nil
}

// Unregister removes value from key.
func (e *Engine) Unregister(ctx context.Context, key, value string) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return false, err
	}
	return e.net.RemoveData(keys.Key(key), value), nil
}

// Discover routes a discovery request entering at a random node.
func (e *Engine) Discover(ctx context.Context, key string) (engine.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return engine.Result{}, err
	}
	res := e.net.DiscoverRandom(keys.Key(key), false, e.rng)
	out := engine.Result{
		Key:          key,
		Found:        res.Satisfied,
		LogicalHops:  res.LogicalHops,
		PhysicalHops: res.PhysicalHops,
	}
	if res.Satisfied {
		vals, _ := e.net.Values(keys.Key(key))
		sort.Strings(vals)
		out.Values = vals
	}
	return out, nil
}

// Complete resolves automatic completion of a partial search string.
func (e *Engine) Complete(ctx context.Context, prefix string) (engine.QueryResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return engine.QueryResult{}, err
	}
	q := e.net.Complete(keys.Key(prefix), e.rng)
	return engine.QueryResultFrom(q.Keys, q.LogicalHops, q.PhysicalHops), nil
}

// Range resolves the lexicographic range query [lo, hi].
func (e *Engine) Range(ctx context.Context, lo, hi string) (engine.QueryResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return engine.QueryResult{}, err
	}
	q := e.net.RangeQuery(keys.Key(lo), keys.Key(hi), e.rng)
	return engine.QueryResultFrom(q.Keys, q.LogicalHops, q.PhysicalHops), nil
}

// AddPeer grows the overlay by one peer.
func (e *Engine) AddPeer(ctx context.Context, capacity int) (string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return "", err
	}
	id, err := e.addPeer(capacity)
	return string(id), err
}

// Snapshot returns a consistent copy of the whole tree.
func (e *Engine) Snapshot(ctx context.Context) (*trie.Tree, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return nil, err
	}
	return e.net.TreeSnapshot(), nil
}

// Validate cross-checks every overlay invariant.
func (e *Engine) Validate(ctx context.Context) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return err
	}
	return e.net.Validate()
}

// NumPeers returns the peer count.
func (e *Engine) NumPeers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.net.NumPeers()
}

// NumNodes returns the tree size.
func (e *Engine) NumNodes() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.net.NumNodes()
}

// Close marks the engine closed. It is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return nil
}

// Compile-time conformance check.
var _ engine.Engine = (*Engine)(nil)
