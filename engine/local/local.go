// Package local implements the engine.Engine contract over the
// sequential protocol core (internal/core) behind a single mutex: no
// goroutines, no sockets, fully deterministic given a seed. It is the
// cheapest backend for tests, simulations and single-process
// deployments, and the reference the differential tests compare the
// concurrent backends against.
package local

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"dlpt/engine"
	"dlpt/internal/core"
	"dlpt/internal/keys"
	"dlpt/internal/lb"
	"dlpt/internal/trie"
)

// Engine is a mutex-serialized sequential overlay.
type Engine struct {
	mu     sync.Mutex
	net    *core.Network
	rng    *rand.Rand
	closed bool

	// membership lifecycle counters (guarded by mu).
	joins, leaves, crashes, recoveries, balanceMoves int
}

// New starts a local overlay with one peer per capacity entry.
func New(cfg engine.Config) (*Engine, error) {
	alpha := cfg.Alphabet
	if alpha == nil {
		alpha = keys.PrintableASCII
	}
	if len(cfg.Capacities) == 0 {
		return nil, fmt.Errorf("local: no peers")
	}
	e := &Engine{
		net: core.NewNetwork(alpha, core.PlacementLexicographic),
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	for _, capacity := range cfg.Capacities {
		if _, err := e.addPeer(capacity); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Wrap adapts an already-built network (e.g. one a test drives
// directly) to the engine contract. The caller keeps ownership of the
// network's peer lifecycle.
func Wrap(net *core.Network, seed int64) *Engine {
	return &Engine{net: net, rng: rand.New(rand.NewSource(seed))}
}

// Factory adapts New to the engine.Factory signature.
func Factory(cfg engine.Config) (engine.Engine, error) { return New(cfg) }

// Name identifies the backend.
func (e *Engine) Name() string { return "local" }

// Alphabet returns the overlay's key alphabet.
func (e *Engine) Alphabet() *keys.Alphabet { return e.net.Alphabet }

// guard rejects operations on a closed engine or cancelled context.
// Callers must hold e.mu.
func (e *Engine) guard(ctx context.Context) error {
	if e.closed {
		return engine.ErrClosed
	}
	return ctx.Err()
}

func (e *Engine) addPeer(capacity int) (keys.Key, error) {
	var id keys.Key
	for {
		id = e.net.Alphabet.RandomKey(e.rng, 12, 12)
		if _, exists := e.net.Peer(id); !exists {
			break
		}
	}
	if err := e.net.JoinPeer(id, capacity, e.rng); err != nil {
		return "", err
	}
	return id, nil
}

// Register declares key with a value.
func (e *Engine) Register(ctx context.Context, key, value string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return err
	}
	return e.net.InsertData(keys.Key(key), value, e.rng)
}

// RegisterBatch declares every entry under one lock acquisition. The
// context is checked once up front (as on every engine): an accepted
// batch runs to completion, so cancellation cannot leave a partially
// applied prefix.
func (e *Engine) RegisterBatch(ctx context.Context, entries []engine.Entry) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return err
	}
	for _, ent := range entries {
		if err := e.net.InsertData(keys.Key(ent.Key), ent.Value, e.rng); err != nil {
			return err
		}
	}
	return nil
}

// Unregister removes value from key.
func (e *Engine) Unregister(ctx context.Context, key, value string) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return false, err
	}
	return e.net.RemoveData(keys.Key(key), value), nil
}

// Discover routes a discovery request entering at a random node.
func (e *Engine) Discover(ctx context.Context, key string) (engine.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return engine.Result{}, err
	}
	res := e.net.DiscoverRandom(keys.Key(key), false, e.rng)
	out := engine.Result{
		Key:          key,
		Found:        res.Satisfied,
		LogicalHops:  res.LogicalHops,
		PhysicalHops: res.PhysicalHops,
	}
	if res.Satisfied {
		vals, _ := e.net.Values(keys.Key(key))
		sort.Strings(vals)
		out.Values = vals
	}
	return out, nil
}

// Complete resolves automatic completion of a partial search string.
func (e *Engine) Complete(ctx context.Context, prefix string) (engine.QueryResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return engine.QueryResult{}, err
	}
	q := e.net.Complete(keys.Key(prefix), e.rng)
	return engine.QueryResultFrom(q.Keys, q.LogicalHops, q.PhysicalHops), nil
}

// Range resolves the lexicographic range query [lo, hi].
func (e *Engine) Range(ctx context.Context, lo, hi string) (engine.QueryResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return engine.QueryResult{}, err
	}
	q := e.net.RangeQuery(keys.Key(lo), keys.Key(hi), e.rng)
	return engine.QueryResultFrom(q.Keys, q.LogicalHops, q.PhysicalHops), nil
}

// AddPeer grows the overlay by one peer.
func (e *Engine) AddPeer(ctx context.Context, capacity int) (string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return "", err
	}
	id, err := e.addPeer(capacity)
	if err == nil {
		e.joins++
	}
	return string(id), err
}

// RemovePeer removes a peer gracefully, handing its nodes off.
func (e *Engine) RemovePeer(ctx context.Context, id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return err
	}
	if err := e.net.LeavePeer(keys.Key(id)); err != nil {
		return err
	}
	e.leaves++
	return nil
}

// CrashPeer fails a peer abruptly; its node states vanish.
func (e *Engine) CrashPeer(ctx context.Context, id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return err
	}
	if err := e.net.FailPeer(keys.Key(id)); err != nil {
		return err
	}
	e.crashes++
	return nil
}

// Recover restores crashed state from the replica store.
func (e *Engine) Recover(ctx context.Context) (engine.RecoveryReport, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return engine.RecoveryReport{}, err
	}
	restored, lost := e.net.Recover()
	e.recoveries++
	return engine.RecoveryReport{Restored: restored, Lost: lost}, nil
}

// Replicate snapshots every tree node to the replica store.
func (e *Engine) Replicate(ctx context.Context) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return 0, err
	}
	return e.net.Replicate(), nil
}

// Peers lists the live peers in ring order.
func (e *Engine) Peers(ctx context.Context) ([]engine.PeerInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return nil, err
	}
	return engine.PeerInfosFrom(e.net.PeerSummaries()), nil
}

// MembershipStats reports the lifecycle and replication counters.
func (e *Engine) MembershipStats(ctx context.Context) (engine.MembershipStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return engine.MembershipStats{}, err
	}
	return engine.MembershipStats{
		Peers:           e.net.NumPeers(),
		Joins:           e.joins,
		Leaves:          e.leaves,
		Crashes:         e.crashes,
		Recoveries:      e.recoveries,
		ReplicatedNodes: e.net.Replication.SnapshotMsgs,
		RestoredNodes:   e.net.Replication.RestoredNodes,
		LostNodes:       e.net.Replication.LostNodes,
		BalanceMoves:    e.balanceMoves,
	}, nil
}

// Tick ends the current load-accounting time unit.
func (e *Engine) Tick(ctx context.Context) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return err
	}
	e.net.ResetUnit()
	return nil
}

// Balance runs one round of the named internal/lb strategy.
func (e *Engine) Balance(ctx context.Context, strategy string) (int, error) {
	strat, err := lb.ByName(strategy)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return 0, err
	}
	moves, err := lb.RunRound(e.net, strat)
	e.balanceMoves += moves
	return moves, err
}

// Snapshot returns a consistent copy of the whole tree.
func (e *Engine) Snapshot(ctx context.Context) (*trie.Tree, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return nil, err
	}
	return e.net.TreeSnapshot(), nil
}

// Validate cross-checks every overlay invariant.
func (e *Engine) Validate(ctx context.Context) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return err
	}
	return e.net.Validate()
}

// NumPeers returns the peer count.
func (e *Engine) NumPeers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.net.NumPeers()
}

// NumNodes returns the tree size.
func (e *Engine) NumNodes() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.net.NumNodes()
}

// Close marks the engine closed. It is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return nil
}

// Compile-time conformance check.
var _ engine.Engine = (*Engine)(nil)
