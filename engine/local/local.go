// Package local implements the engine.Engine contract over the
// sequential protocol core (internal/core) behind a single mutex: no
// goroutines, no sockets, fully deterministic given a seed. It is the
// cheapest backend for tests, simulations and single-process
// deployments, and the reference the differential tests compare the
// concurrent backends against.
package local

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dlpt/engine"
	"dlpt/internal/core"
	"dlpt/internal/keys"
	"dlpt/internal/lb"
	"dlpt/internal/obs"
	"dlpt/internal/persist"
	"dlpt/internal/trie"
)

// Engine is a mutex-serialized sequential overlay.
type Engine struct {
	mu     sync.Mutex
	net    *core.Network  // guarded by mu
	rng    *rand.Rand     // guarded by mu
	place  lb.Strategy    // join placement hook; nil = uniform random
	gated  bool           // enforce peer capacity on discoveries
	store  *persist.Store // durability layer; nil = in-memory only
	closed bool           // guarded by mu

	// membership lifecycle counters, guarded by mu.
	joins, leaves, crashes, recoveries, balanceMoves int // guarded by mu
}

// New starts a local overlay with one peer per capacity entry — or,
// with cfg.Restore, rebuilds one from cfg.Persist's newest snapshot
// and journal.
func New(cfg engine.Config) (*Engine, error) {
	alpha := cfg.Alphabet
	if alpha == nil {
		alpha = keys.PrintableASCII
	}
	if len(cfg.Capacities) == 0 && !cfg.Restore {
		return nil, fmt.Errorf("local: no peers")
	}
	e := &Engine{
		net:   core.NewNetwork(alpha, core.PlacementLexicographic),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		gated: cfg.GateCapacity,
		store: cfg.Persist,
	}
	// Every query walker built over the network inherits the
	// instrumentation; the collectors mirror peer load and replication
	// counters at scrape time under the engine mutex.
	e.net.Obs = cfg.Obs
	e.net.Tracer = cfg.Trace
	engine.RegisterObsCollectors(cfg.Obs,
		func() []core.PeerSummary {
			e.mu.Lock()
			defer e.mu.Unlock()
			return e.net.PeerSummaries()
		},
		func() core.ReplicationCounters {
			e.mu.Lock()
			defer e.mu.Unlock()
			return e.net.Replication
		})
	if cfg.JoinPlacement != "" {
		strat, err := lb.ByName(cfg.JoinPlacement)
		if err != nil {
			return nil, err
		}
		e.place = strat
	}
	if cfg.Restore {
		if e.store == nil {
			return nil, fmt.Errorf("local: restore without a persistence store")
		}
		if err := e.net.RestoreFromStore(e.store, e.rng); err != nil {
			return nil, err
		}
	} else {
		for _, capacity := range cfg.Capacities {
			if _, err := e.addPeerLocked(capacity); err != nil {
				return nil, err
			}
		}
	}
	e.net.AttachJournal(e.store)
	return e, nil
}

// Wrap adapts an already-built network (e.g. one a test drives
// directly) to the engine contract. The caller keeps ownership of the
// network's peer lifecycle.
func Wrap(net *core.Network, seed int64) *Engine {
	return &Engine{net: net, rng: rand.New(rand.NewSource(seed))}
}

// Factory adapts New to the engine.Factory signature.
func Factory(cfg engine.Config) (engine.Engine, error) { return New(cfg) }

// Name identifies the backend.
func (e *Engine) Name() string { return "local" }

// Alphabet returns the overlay's key alphabet.
func (e *Engine) Alphabet() *keys.Alphabet {
	//dlptlint:ignore lockcheck the net pointer and its Alphabet are set once at construction and never reassigned
	return e.net.Alphabet
}

// guard rejects operations on a closed engine or cancelled context.
// Callers must hold e.mu (dlptlint:held mu).
func (e *Engine) guard(ctx context.Context) error {
	if e.closed {
		return engine.ErrClosed
	}
	return ctx.Err()
}

func (e *Engine) addPeerLocked(capacity int) (keys.Key, error) {
	var id keys.Key
	if e.place != nil {
		id = e.place.PlaceJoin(e.net, e.rng, capacity)
	} else {
		for {
			id = e.net.Alphabet.RandomKey(e.rng, 12, 12)
			if _, exists := e.net.Peer(id); !exists {
				break
			}
		}
	}
	if err := e.net.JoinPeer(id, capacity, e.rng); err != nil {
		return "", err
	}
	return id, nil
}

// Register declares key with a value.
func (e *Engine) Register(ctx context.Context, key, value string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return err
	}
	return e.net.InsertData(keys.Key(key), value, e.rng)
}

// RegisterBatch declares every entry under one lock acquisition. The
// context is checked once up front (as on every engine): an accepted
// batch runs to completion, so cancellation cannot leave a partially
// applied prefix.
func (e *Engine) RegisterBatch(ctx context.Context, entries []engine.Entry) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return err
	}
	for _, ent := range entries {
		if err := e.net.InsertData(keys.Key(ent.Key), ent.Value, e.rng); err != nil {
			return err
		}
	}
	return nil
}

// Unregister removes value from key.
func (e *Engine) Unregister(ctx context.Context, key, value string) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return false, err
	}
	return e.net.RemoveData(keys.Key(key), value), nil
}

// Discover routes a discovery request entering at a random node. On
// a capacity-gated engine a saturated peer drops the request and
// Discover returns ErrSaturated.
func (e *Engine) Discover(ctx context.Context, key string) (engine.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return engine.Result{}, err
	}
	var began time.Time
	if e.net.Obs != nil || e.net.Tracer.Enabled() {
		began = time.Now()
	}
	root := e.net.Tracer.StartRoot(obs.PhaseDiscover, "")
	root.SetAttr("key", key)
	res := e.net.DiscoverRandom(keys.Key(key), e.gated, e.rng)
	root.End()
	if m := e.net.Obs; m != nil {
		d := time.Since(began)
		m.DiscoverLatency.Observe(d.Seconds())
		m.RecordPhase(obs.PhaseDiscover, res.LogicalHops, d)
		if res.Dropped {
			m.Drops.Inc()
		}
	}
	out := engine.Result{
		Key:          key,
		Found:        res.Satisfied,
		LogicalHops:  res.LogicalHops,
		PhysicalHops: res.PhysicalHops,
	}
	if res.Dropped {
		return out, engine.ErrSaturated
	}
	if res.Satisfied {
		vals, _ := e.net.Values(keys.Key(key))
		sort.Strings(vals)
		out.Values = vals
	}
	return out, nil
}

// localChunkKeys bounds the matches materialized per stream chunk,
// and localChunkVisits the node visits per lock hold of a resumed
// walk.
const (
	localChunkKeys   = 64
	localChunkVisits = 512
)

// stream is a generator over the mutex-serialized walk: every chunk
// resumes the walker under one lock acquisition and the lock is never
// held between Next calls, so a consumer may interleave other engine
// operations (or simply stop) mid-stream; the walker then never
// touches the rest of the tree.
type stream struct {
	e   *Engine
	w   *core.QueryWalker
	ctx context.Context

	buf  []keys.Key
	pos  int
	done bool
	err  error
}

// Next returns the next matching key; ok == false means the stream is
// exhausted (see Err).
func (s *stream) Next() (string, bool) {
	for {
		if s.pos < len(s.buf) {
			k := s.buf[s.pos]
			s.pos++
			return string(k), true
		}
		if s.done {
			return "", false
		}
		if err := s.ctx.Err(); err != nil {
			s.err, s.done = err, true
			return "", false
		}
		s.e.mu.Lock()
		if s.e.closed {
			s.e.mu.Unlock()
			s.err, s.done = engine.ErrClosed, true
			return "", false
		}
		batch, more := s.w.StepN(s.buf[:0], localChunkKeys, localChunkVisits)
		s.e.mu.Unlock()
		s.buf, s.pos = batch, 0
		if !more {
			s.done = true
		}
	}
}

// Err reports the error that terminated the stream early, nil after a
// normal end of stream.
func (s *stream) Err() error { return s.err }

// Stats returns the traversal counters accumulated so far.
func (s *stream) Stats() engine.QueryStats {
	st := s.w.Stats()
	return engine.QueryStats{
		LogicalHops:  st.LogicalHops,
		PhysicalHops: st.PhysicalHops,
		NodesVisited: st.NodesVisited,
	}
}

// Close halts the walk (nothing is in flight between chunks) and
// discards any buffered keys: Next reports end of stream afterwards.
func (s *stream) Close() error {
	s.done = true
	s.buf, s.pos = nil, 0
	return nil
}

// Query starts a streaming query: a generator over the sequential
// walk. The entry point is drawn eagerly (from the same seeded
// stream the slice path consumes); traversal happens lazily, chunk
// by chunk, as the consumer pulls — so a limit or an early exit
// prunes the walk instead of hiding results.
func (e *Engine) Query(ctx context.Context, q engine.Query) (engine.Stream, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return nil, err
	}
	w := core.NewQueryWalker(e.net, core.QuerySpec{
		Range:  q.Kind == engine.QueryRange,
		Prefix: keys.Key(q.Prefix),
		Lo:     keys.Key(q.Lo),
		Hi:     keys.Key(q.Hi),
		Limit:  q.Limit,
	})
	if !w.Empty() {
		if entry, ok := e.net.RandomNodeKey(e.rng); ok {
			w.Start(entry)
		}
	}
	return &stream{e: e, w: w, ctx: ctx}, nil
}

// Complete resolves automatic completion of a partial search string
// by draining an unlimited Query stream.
func (e *Engine) Complete(ctx context.Context, prefix string) (engine.QueryResult, error) {
	return engine.CollectQuery(ctx, e, engine.Query{Kind: engine.QueryComplete, Prefix: prefix})
}

// Range resolves the lexicographic range query [lo, hi] by draining
// an unlimited Query stream.
func (e *Engine) Range(ctx context.Context, lo, hi string) (engine.QueryResult, error) {
	return engine.CollectQuery(ctx, e, engine.Query{Kind: engine.QueryRange, Lo: lo, Hi: hi})
}

// AddPeer grows the overlay by one peer.
func (e *Engine) AddPeer(ctx context.Context, capacity int) (string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return "", err
	}
	id, err := e.addPeerLocked(capacity)
	if err == nil {
		e.joins++
		e.net.Obs.TopologyEvent("join")
	}
	return string(id), err
}

// RemovePeer removes a peer gracefully, handing its nodes off.
func (e *Engine) RemovePeer(ctx context.Context, id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return err
	}
	if err := e.net.LeavePeer(keys.Key(id)); err != nil {
		return err
	}
	e.leaves++
	e.net.Obs.TopologyEvent("leave")
	return nil
}

// CrashPeer fails a peer abruptly; its node states vanish.
func (e *Engine) CrashPeer(ctx context.Context, id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return err
	}
	if err := e.net.FailPeer(keys.Key(id)); err != nil {
		return err
	}
	e.crashes++
	e.net.Obs.TopologyEvent("crash")
	return nil
}

// Recover restores crashed state from the successor replicas.
func (e *Engine) Recover(ctx context.Context) (engine.RecoveryReport, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return engine.RecoveryReport{}, err
	}
	restored, lost := e.net.Recover()
	e.recoveries++
	e.net.Obs.TopologyEvent("recover")
	return engine.RecoveryReportFrom(restored, lost), nil
}

// Replicate snapshots every tree node to its host's ring successor
// and, on a durable overlay, writes the fsynced on-disk snapshot. The
// write lock covers only the replication tick, the O(1) catalogue
// capture and the journal rotation; encoding and fsync run after the
// lock is released, so registrations never stall behind the disk.
func (e *Engine) Replicate(ctx context.Context) (int, error) {
	e.mu.Lock()
	if err := e.guard(ctx); err != nil {
		e.mu.Unlock()
		return 0, err
	}
	n := e.net.Replicate()
	var pending *persist.PendingSnapshot
	var peers []persist.PeerState
	var cat *core.CatalogueCapture
	var stall time.Duration
	if e.store != nil {
		start := time.Now()
		peers, cat = e.net.CaptureSnapshot()
		var err error
		if pending, err = e.store.BeginSnapshot(); err != nil {
			e.mu.Unlock()
			return n, err
		}
		stall = time.Since(start)
	}
	obs := e.net.Obs
	e.mu.Unlock()
	if pending != nil {
		if _, err := pending.Commit(peers, cat); err != nil {
			return n, err
		}
		obs.MarkSnapshot(stall, pending.Bytes(), cat.Len())
	}
	obs.MarkReplicated()
	return n, nil
}

// Peers lists the live peers in ring order.
func (e *Engine) Peers(ctx context.Context) ([]engine.PeerInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return nil, err
	}
	return engine.PeerInfosFrom(e.net.PeerSummaries()), nil
}

// MembershipStats reports the lifecycle and replication counters.
func (e *Engine) MembershipStats(ctx context.Context) (engine.MembershipStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return engine.MembershipStats{}, err
	}
	return engine.MembershipStats{
		Peers:                   e.net.NumPeers(),
		Joins:                   e.joins,
		Leaves:                  e.leaves,
		Crashes:                 e.crashes,
		Recoveries:              e.recoveries,
		ReplicatedNodes:         e.net.Replication.SnapshotMsgs,
		RestoredNodes:           e.net.Replication.RestoredNodes,
		LostNodes:               e.net.Replication.LostNodes,
		BalanceMoves:            e.balanceMoves,
		ReplicaTransferMsgs:     e.net.Replication.TransferMsgs,
		ReplicaTransferredNodes: e.net.Replication.TransferredNodes,
	}, nil
}

// Tick ends the current load-accounting time unit.
func (e *Engine) Tick(ctx context.Context) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return err
	}
	e.net.ResetUnit()
	return nil
}

// Balance runs one round of the named internal/lb strategy.
func (e *Engine) Balance(ctx context.Context, strategy string) (int, error) {
	strat, err := lb.ByName(strategy)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return 0, err
	}
	moves, err := lb.RunRound(e.net, strat)
	e.balanceMoves += moves
	e.net.Obs.TopologyEvent("balance")
	return moves, err
}

// Snapshot returns a consistent copy of the whole tree.
func (e *Engine) Snapshot(ctx context.Context) (*trie.Tree, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return nil, err
	}
	return e.net.TreeSnapshot(), nil
}

// Validate cross-checks every overlay invariant.
func (e *Engine) Validate(ctx context.Context) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(ctx); err != nil {
		return err
	}
	return e.net.Validate()
}

// NumPeers returns the peer count.
func (e *Engine) NumPeers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.net.NumPeers()
}

// NumNodes returns the tree size.
func (e *Engine) NumNodes() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.net.NumNodes()
}

// Close marks the engine closed. It is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return nil
}

// Compile-time conformance check.
var _ engine.Engine = (*Engine)(nil)
