// Package tcp adapts the socket transport (internal/transport) to the
// engine.Engine contract: every peer owns a loopback TCP listener and
// discoveries hop peer-to-peer as length-prefixed binary frames
// multiplexed over persistent pooled connections. Cancelling a
// discovery context sends CANCEL frames down the in-flight relay
// chain, freeing each stream while the shared connections survive.
package tcp

import (
	"context"
	"errors"
	"sort"

	"dlpt/engine"
	"dlpt/internal/core"
	"dlpt/internal/keys"
	"dlpt/internal/lb"
	itransport "dlpt/internal/transport"
	"dlpt/internal/trie"
)

// Engine wraps a running TCP cluster. The membership half of the
// contract (RemovePeer, CrashPeer, Recover, Replicate, Peers,
// MembershipStats, Tick, Balance) comes from the embedded adapter:
// the cluster closes departed listeners and rewires its address table
// across balancing renames.
type Engine struct {
	*engine.Membership
	cluster *itransport.Cluster
	alpha   *keys.Alphabet
}

// New starts a TCP-backed overlay with one listener per capacity
// entry, bound to cfg.Bind (127.0.0.1 ephemeral ports by default).
func New(cfg engine.Config) (*Engine, error) {
	alpha := cfg.Alphabet
	if alpha == nil {
		alpha = keys.PrintableASCII
	}
	var opts itransport.Options
	if cfg.JoinPlacement != "" {
		strat, err := lb.ByName(cfg.JoinPlacement)
		if err != nil {
			return nil, err
		}
		opts.Placement = strat
	}
	opts.Gate = cfg.GateCapacity
	opts.Persist = cfg.Persist
	opts.Restore = cfg.Restore
	opts.Bind = cfg.Bind
	opts.AdvertiseHost = cfg.AdvertiseHost
	opts.Obs = cfg.Obs
	opts.Trace = cfg.Trace
	c, err := itransport.StartOpts(alpha, cfg.Capacities, cfg.Seed, opts)
	if err != nil {
		return nil, err
	}
	return &Engine{
		Membership: engine.NewMembership(c, mapErr),
		cluster:    c,
		alpha:      alpha,
	}, nil
}

// Factory adapts New to the engine.Factory signature.
func Factory(cfg engine.Config) (engine.Engine, error) { return New(cfg) }

// Name identifies the backend.
func (e *Engine) Name() string { return "tcp" }

// Alphabet returns the overlay's key alphabet.
func (e *Engine) Alphabet() *keys.Alphabet { return e.alpha }

// mapErr normalizes the cluster's stopped error to engine.ErrClosed.
func mapErr(err error) error {
	if errors.Is(err, itransport.ErrStopped) {
		return engine.ErrClosed
	}
	return err
}

// Register declares key with a value.
func (e *Engine) Register(ctx context.Context, key, value string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return mapErr(e.cluster.Register(keys.Key(key), value))
}

// RegisterBatch declares every entry under one write-lock
// acquisition.
func (e *Engine) RegisterBatch(ctx context.Context, entries []engine.Entry) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	kvs := make([]core.KV, len(entries))
	for i, ent := range entries {
		kvs[i] = core.KV{Key: keys.Key(ent.Key), Value: ent.Value}
	}
	return mapErr(e.cluster.RegisterBatch(kvs))
}

// Unregister removes value from key.
func (e *Engine) Unregister(ctx context.Context, key, value string) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if e.cluster.Stopped() {
		return false, engine.ErrClosed
	}
	return e.cluster.Unregister(keys.Key(key), value), nil
}

// Discover routes a discovery over TCP. On a capacity-gated engine a
// saturated peer drops the request and Discover returns ErrSaturated.
func (e *Engine) Discover(ctx context.Context, key string) (engine.Result, error) {
	res, err := e.cluster.DiscoverContext(ctx, keys.Key(key))
	if err != nil {
		return engine.Result{}, mapErr(err)
	}
	out := engine.Result{
		Key:          key,
		Found:        res.Found,
		LogicalHops:  res.LogicalHops,
		PhysicalHops: res.PhysicalHops,
	}
	if res.Dropped {
		return out, engine.ErrSaturated
	}
	if res.Found {
		out.Values = append([]string(nil), res.Values...)
		sort.Strings(out.Values)
	}
	return out, nil
}

// stream adapts the cluster's WireStream to the engine contract.
type stream struct {
	s *itransport.WireStream
}

func (s stream) Next() (string, bool) {
	k, ok := s.s.Next()
	return string(k), ok
}

func (s stream) Err() error { return mapErr(s.s.Err()) }

func (s stream) Stats() engine.QueryStats {
	st := s.s.Stats()
	return engine.QueryStats{
		LogicalHops:  st.LogicalHops,
		PhysicalHops: st.PhysicalHops,
		NodesVisited: st.NodesVisited,
	}
}

func (s stream) Close() error { return s.s.Close() }

// Query starts a streaming query over the wire: the traversal runs at
// the entry node's host and partial result batches flow back as
// STREAM frames multiplexed over the pooled connection; closing the
// stream early sends a CANCEL frame that halts the server-side walk
// while the shared connection survives.
func (e *Engine) Query(ctx context.Context, q engine.Query) (engine.Stream, error) {
	s, err := e.cluster.StreamQuery(ctx, core.QuerySpec{
		Range:  q.Kind == engine.QueryRange,
		Prefix: keys.Key(q.Prefix),
		Lo:     keys.Key(q.Lo),
		Hi:     keys.Key(q.Hi),
		Limit:  q.Limit,
	})
	if err != nil {
		return nil, mapErr(err)
	}
	return stream{s}, nil
}

// Complete resolves automatic completion of a partial search string
// by draining an unlimited Query stream.
func (e *Engine) Complete(ctx context.Context, prefix string) (engine.QueryResult, error) {
	return engine.CollectQuery(ctx, e, engine.Query{Kind: engine.QueryComplete, Prefix: prefix})
}

// Range resolves the lexicographic range query [lo, hi] by draining
// an unlimited Query stream.
func (e *Engine) Range(ctx context.Context, lo, hi string) (engine.QueryResult, error) {
	return engine.CollectQuery(ctx, e, engine.Query{Kind: engine.QueryRange, Lo: lo, Hi: hi})
}

// AddPeer grows the overlay by one peer and listener.
func (e *Engine) AddPeer(ctx context.Context, capacity int) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	id, err := e.cluster.AddPeer(capacity)
	if err == nil {
		e.CountJoin()
	}
	return string(id), mapErr(err)
}

// Snapshot returns a consistent copy of the whole tree.
func (e *Engine) Snapshot(ctx context.Context) (*trie.Tree, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.cluster.Stopped() {
		return nil, engine.ErrClosed
	}
	return e.cluster.Snapshot(), nil
}

// Validate cross-checks every overlay invariant.
func (e *Engine) Validate(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if e.cluster.Stopped() {
		return engine.ErrClosed
	}
	return e.cluster.Validate()
}

// NumPeers returns the peer count.
func (e *Engine) NumPeers() int { return e.cluster.NumPeers() }

// NumNodes returns the tree size.
func (e *Engine) NumNodes() int { return e.cluster.NumNodes() }

// Close shuts every listener down. It is idempotent.
func (e *Engine) Close() error {
	e.cluster.Stop()
	return nil
}

// Cluster exposes the underlying transport for callers needing
// socket-level details (listener addresses).
func (e *Engine) Cluster() *itransport.Cluster { return e.cluster }

// Compile-time conformance check.
var _ engine.Engine = (*Engine)(nil)
