// Package dlpt is a tree-structured peer-to-peer service discovery
// library: a production-shaped implementation of the Distributed
// Lexicographic Placement Table of Caron, Desprez and Tedeschi
// ("Efficiency of Tree-Structured Peer-to-Peer Service Discovery
// Systems", INRIA RR-6557, 2008).
//
// Services are identified by keys (e.g. names of computational
// routines); the overlay maintains a Proper Greatest Common Prefix
// tree of the declared keys directly over a ring of peers — no
// underlying DHT — supporting exact discovery, automatic completion
// of partial search strings, and lexicographic range queries, with
// the paper's MLT load balancing available in the simulation engine
// (internal/sim, internal/lb).
//
// # Execution engines
//
// Every public operation runs over a pluggable execution engine (the
// engine.Engine interface), selected at construction time with
// WithEngine:
//
//	reg, err := dlpt.New(16, dlpt.WithEngine(dlpt.EngineTCP))
//
// Three backends ship with the module: EngineLocal (the sequential
// protocol core behind one mutex, deterministic), EngineLive (one
// goroutine per peer with channel mailboxes — the default), and
// EngineTCP (peers exchange binary-framed discovery hops multiplexed
// over persistent loopback TCP connections). Custom backends plug in
// through WithEngineFactory.
// The three are differentially tested to produce identical results on
// identical workloads.
//
// All operations take a context.Context; cancelling it aborts
// in-flight routed traversals on the concurrent backends and returns
// the context error.
//
// # Streaming queries
//
// Completion and range queries are result streams with limit
// pushdown: CompleteSeq, RangeSeq, ServicesSeq and Directory.FindSeq
// return Go iterators (iter.Seq2[string, error]) that yield matches
// in lexicographic order as the tree traversal discovers them and
// stop traversing once the limit is reached or the consumer breaks
// out of the loop. The slice methods (Complete, Range, Find) are
// thin wrappers draining the same streams. See engine.Query and
// engine.Stream for the contract the backends implement.
//
// # Membership and churn
//
// Peer lifecycle is engine-portable: AddPeerWithCapacity grows the
// ring, RemovePeer departs gracefully (node handoff), CrashPeer and
// Recover implement the paper's fault model over a Replicate snapshot
// tick, and Tick/Balance run the periodic MLT balancing step. The
// churn package drives all of this as a seeded workload over any
// engine. WithJoinPlacement runs a load-balancing strategy's join
// placement (e.g. k-choices) on every engine, and WithCapacityGating
// enforces per-peer capacity on the discovery path (Section 4's
// request model): saturated peers drop requests until the next Tick.
//
// The Registry type below is the service-discovery API and Directory
// (directory.go) the multi-attribute resource-discovery API; both run
// over any engine. The reproduction harness for the paper's figures
// and tables lives in cmd/dlptsim and the repository-level
// benchmarks.
package dlpt

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sort"

	"dlpt/engine"
	enginelive "dlpt/engine/live"
	enginelocal "dlpt/engine/local"
	enginetcp "dlpt/engine/tcp"
	"dlpt/internal/catalog"
	"dlpt/internal/keys"
	"dlpt/internal/obs"
	"dlpt/internal/persist"
	"dlpt/internal/trace"
)

// Engine is the pluggable execution backend every public operation
// routes through. See package dlpt/engine for the contract and the
// shipped implementations.
type Engine = engine.Engine

// EngineKind names one of the shipped execution engines.
type EngineKind string

const (
	// EngineLocal is the sequential protocol core behind one mutex:
	// deterministic, no goroutines, cheapest for tests and tools.
	EngineLocal EngineKind = "local"
	// EngineLive runs one goroutine per peer with channel mailboxes
	// and concurrent hop-by-hop discovery routing. The default.
	EngineLive EngineKind = "live"
	// EngineTCP runs every peer behind a loopback TCP listener;
	// discovery hops travel as binary frames multiplexed over
	// persistent pooled connections.
	EngineTCP EngineKind = "tcp"
)

// Service is a discovered service: the key and the endpoint values
// registered under it.
type Service struct {
	Name      string
	Endpoints []string
	// LogicalHops and PhysicalHops describe the routing cost of the
	// discovery that produced this result (tree edges traversed, and
	// those crossing peers).
	LogicalHops  int
	PhysicalHops int
}

// Registration is one service declaration, the unit of RegisterBatch.
type Registration struct {
	Name     string
	Endpoint string
}

// PeerInfo is a read-only view of one live peer.
type PeerInfo = engine.PeerInfo

// MembershipStats aggregates the overlay's peer-lifecycle and
// replication counters.
type MembershipStats = engine.MembershipStats

// RecoveryReport is the outcome of one Recover pass.
type RecoveryReport = engine.RecoveryReport

// options collects constructor settings.
type options struct {
	alphabet   *keys.Alphabet
	seed       int64
	capacities []int
	factory    engine.Factory
	kind       EngineKind
	placement  string
	gated      bool
	persistDir string
	codecName  string
	bind       string
	advHost    string
	ob         *Observability
}

// Option configures New and NewDirectory.
type Option func(*options)

// WithSeed fixes the seed of the overlay's internal randomness (peer
// identifiers, entry points). The default is 1.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}

// WithAlphabet sets the key alphabet. The default accepts printable
// ASCII. Registering a key outside the alphabet fails.
func WithAlphabet(a *keys.Alphabet) Option {
	return func(o *options) { o.alphabet = a }
}

// WithCapacities sets per-peer capacities explicitly; the number of
// peers becomes len(capacities), overriding New's numPeers argument.
// Capacity only matters to the simulation-grade load statistics; the
// deployment engines do not throttle.
func WithCapacities(caps []int) Option {
	return func(o *options) { o.capacities = append([]int(nil), caps...) }
}

// WithEngine selects the execution engine backing the overlay:
// EngineLocal, EngineLive (the default) or EngineTCP.
func WithEngine(kind EngineKind) Option {
	return func(o *options) { o.kind = kind }
}

// WithEngineFactory plugs in a custom engine constructor, overriding
// WithEngine. The factory receives the resolved Config (alphabet,
// capacities, seed).
func WithEngineFactory(f engine.Factory) Option {
	return func(o *options) { o.factory = f }
}

// WithJoinPlacement names the load-balancing strategy whose join
// placement picks ring identifiers for joining peers ("KC" runs
// k-choices, as in the paper's dynamic scenarios) on every engine —
// the simulator-only placement hook promoted to the deployment
// backends. The default draws uniformly random identifiers.
func WithJoinPlacement(strategy string) Option {
	return func(o *options) { o.placement = strategy }
}

// WithCapacityGating enforces per-peer capacity on the discovery
// path: every discovery visit consumes capacity and a saturated peer
// drops the request — Discover then returns ErrSaturated until Tick
// starts the next time unit. This is Section 4's request model,
// available on every engine; the default leaves discoveries ungated.
func WithCapacityGating() Option {
	return func(o *options) { o.gated = true }
}

// WithPersistence makes the overlay durable: every Replicate tick
// writes an fsynced, versioned snapshot of the replica state into
// dir, and every registration or unregistration appends to the
// epoch's journal — so a cold restart after every peer dies
// (including the last) can rebuild the overlay with Restart. The
// directory is created if needed; reusing a previous run's directory
// continues its epoch sequence.
func WithPersistence(dir string) Option {
	return func(o *options) { o.persistDir = dir }
}

// WithSnapshotCodec forces the catalogue codec new snapshots are
// written with: "louds" (the succinct default) or "legacy" (the
// verbose version-0 format). Decoding always accepts every versioned
// format regardless of this setting, so the option is a migration
// escape hatch — a fleet can be rolled back to legacy snapshots, or a
// directory written by an old build restarted under the new default,
// without any conversion step. Only meaningful with WithPersistence.
func WithSnapshotCodec(name string) Option {
	return func(o *options) { o.codecName = name }
}

// WithBindAddress sets where the socket-backed engine (EngineTCP)
// binds its listeners: "host", "host:port" or "host:0". advertiseHost
// optionally overrides the host other processes dial (useful when
// binding 0.0.0.0). The default keeps the historical loopback
// ephemeral ports; in-process engines ignore both.
func WithBindAddress(bind, advertiseHost string) Option {
	return func(o *options) { o.bind, o.advHost = bind, advertiseHost }
}

// Observability bundles the instrumentation surface of one overlay: a
// metrics registry (Prometheus text format via Registry.WriteText or
// obs.Handler), the pre-registered series the engines feed, and a
// bounded in-memory recorder of per-hop trace spans. Construct one
// with NewObservability, pass it to New or NewDirectory via
// WithObservability, and read it while the overlay runs; the same
// bundle can be mounted on an HTTP listener with obs.Handler.
type Observability struct {
	// Registry holds every metric series and renders the Prometheus
	// exposition text.
	Registry *obs.Registry
	// Metrics are the overlay series (visits, per-phase hop latency,
	// replication lag, ...) registered on Registry.
	Metrics *obs.Metrics
	// Trace records recent spans in a fixed-size ring; Trace.Trees
	// reassembles them into per-discovery span trees.
	Trace *trace.Recorder
}

// NewObservability builds an instrumentation bundle with the default
// span-ring capacity.
func NewObservability() *Observability {
	reg := obs.NewRegistry()
	return &Observability{
		Registry: reg,
		Metrics:  obs.NewMetrics(reg),
		Trace:    trace.NewRecorder(trace.DefaultCapacity),
	}
}

// WithObservability instruments the overlay: the engines count visits,
// drops, per-phase hop latencies and replication progress into
// ob.Metrics and record per-hop spans into ob.Trace. The zero cost of
// the default (no bundle) is preserved: engines skip all
// instrumentation when none is configured. Passing nil is a no-op.
func WithObservability(ob *Observability) Option {
	return func(o *options) { o.ob = ob }
}

// ErrClosed is returned by operations on a closed Registry or
// Directory.
var ErrClosed = engine.ErrClosed

// ErrSaturated is returned by Discover on a capacity-gated overlay
// (WithCapacityGating) when a peer on the routing path has exhausted
// its per-time-unit capacity; compare with errors.Is.
var ErrSaturated = engine.ErrSaturated

// buildEngine resolves options into a running engine (plus the
// persistence store it owns, when WithPersistence is set). restore
// rebuilds the overlay from the store instead of starting fresh.
func buildEngine(numPeers int, opts []Option, restore bool) (engine.Engine, *keys.Alphabet, *persist.Store, *Observability, error) {
	o := options{alphabet: keys.PrintableASCII, seed: 1, kind: EngineLive}
	for _, opt := range opts {
		opt(&o)
	}
	caps := o.capacities
	if caps == nil && !restore {
		if numPeers < 1 {
			return nil, nil, nil, nil, fmt.Errorf("dlpt: numPeers = %d", numPeers)
		}
		caps = make([]int, numPeers)
		for i := range caps {
			caps[i] = 1 << 20
		}
	}
	var store *persist.Store
	if o.persistDir != "" {
		var err error
		if store, err = persist.Open(o.persistDir); err != nil {
			return nil, nil, nil, nil, err
		}
		if o.codecName != "" {
			c, ok := catalog.ByName(o.codecName)
			if !ok {
				store.Close()
				return nil, nil, nil, nil, fmt.Errorf("dlpt: unknown snapshot codec %q", o.codecName)
			}
			store.SetCodec(c)
		}
	} else if restore {
		return nil, nil, nil, nil, errors.New("dlpt: restart without a persistence directory")
	}
	factory := o.factory
	if factory == nil {
		switch o.kind {
		case EngineLocal:
			factory = enginelocal.Factory
		case EngineLive, "":
			factory = enginelive.Factory
		case EngineTCP:
			factory = enginetcp.Factory
		default:
			return nil, nil, nil, nil, fmt.Errorf("dlpt: unknown engine %q", o.kind)
		}
	}
	cfg := engine.Config{
		Alphabet:      o.alphabet,
		Capacities:    caps,
		Seed:          o.seed,
		JoinPlacement: o.placement,
		GateCapacity:  o.gated,
		Persist:       store,
		Restore:       restore,
		Bind:          o.bind,
		AdvertiseHost: o.advHost,
	}
	if o.ob != nil {
		cfg.Obs = o.ob.Metrics
		cfg.Trace = o.ob.Trace
	}
	eng, err := factory(cfg)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return nil, nil, nil, nil, err
	}
	if store != nil && !restore {
		// A fresh overlay must own its persistence epoch from the
		// start: without this tick, its journal records would land in
		// a previous run's epoch, and a crash before the first
		// explicit Replicate would restore a chimera of the old
		// snapshot plus the new overlay's mutations. The initial tick
		// snapshots the fresh ring (and nothing else), so Restart is
		// meaningful from construction onwards.
		if _, err := eng.Replicate(context.Background()); err != nil {
			eng.Close()
			store.Close()
			return nil, nil, nil, nil, err
		}
	}
	return eng, o.alphabet, store, o.ob, nil
}

// Registry is a running service-discovery overlay. All methods are
// safe for concurrent use. Close releases the engine's resources.
type Registry struct {
	eng   engine.Engine
	alpha *keys.Alphabet
	store *persist.Store // owned persistence store; nil without WithPersistence
	ob    *Observability // nil without WithObservability
}

// New starts an overlay of numPeers peers over the selected engine
// (EngineLive unless WithEngine says otherwise).
func New(numPeers int, opts ...Option) (*Registry, error) {
	eng, alpha, store, ob, err := buildEngine(numPeers, opts, false)
	if err != nil {
		return nil, err
	}
	return &Registry{eng: eng, alpha: alpha, store: store, ob: ob}, nil
}

// Restart rebuilds an overlay from a persistence directory after
// every peer died — the cold-restart path of the fault-tolerance
// subsystem, including the last-peer case. The persisted ring (peer
// ids and capacities) is recreated, the newest valid snapshot's
// replica state is reinstalled through the canonical anti-entropy
// rebuild, and the journal replays the mutations recorded after that
// snapshot; the restored overlay passes the full invariant set.
// Engine choice and other options apply as in New; peer counts and
// capacities come from disk. Durability requires at least one
// Replicate tick to have run before the crash — Restart fails when no
// valid snapshot exists.
func Restart(dir string, opts ...Option) (*Registry, error) {
	opts = append(append([]Option(nil), opts...), WithPersistence(dir))
	eng, alpha, store, ob, err := buildEngine(0, opts, true)
	if err != nil {
		return nil, err
	}
	return &Registry{eng: eng, alpha: alpha, store: store, ob: ob}, nil
}

// NewWithEngine wraps an already-running engine in a Registry. The
// Registry takes ownership: Close closes the engine.
func NewWithEngine(eng engine.Engine) *Registry {
	return &Registry{eng: eng, alpha: eng.Alphabet()}
}

// Engine exposes the backing execution engine.
func (r *Registry) Engine() engine.Engine { return r.eng }

// Observability returns the instrumentation bundle configured with
// WithObservability, nil when the overlay is uninstrumented.
func (r *Registry) Observability() *Observability { return r.ob }

// ObsSnapshot returns a point-in-time copy of every metric series as a
// map keyed `name{labels}`. On an uninstrumented overlay it returns an
// empty snapshot, so callers can diff metrics without checking for
// WithObservability first.
func (r *Registry) ObsSnapshot() obs.Snapshot {
	if r.ob == nil {
		return obs.Snapshot{}
	}
	return r.ob.Registry.Snapshot()
}

// Close shuts the overlay down (and, on a durable overlay, the
// persistence store's journal — the on-disk state stays, ready for
// Restart). It is idempotent.
func (r *Registry) Close() error {
	err := r.eng.Close()
	if r.store != nil {
		if serr := r.store.Close(); err == nil {
			err = serr
		}
	}
	return err
}

// checkName validates a service name against the overlay alphabet.
func (r *Registry) checkName(name string) error {
	if name == "" {
		return errors.New("dlpt: empty service name")
	}
	if !r.alpha.Valid(keys.Key(name)) {
		return fmt.Errorf("dlpt: service name %q outside alphabet", name)
	}
	return nil
}

// Register declares that endpoint provides the service named name.
func (r *Registry) Register(ctx context.Context, name, endpoint string) error {
	if err := r.checkName(name); err != nil {
		return err
	}
	return r.eng.Register(ctx, name, endpoint)
}

// RegisterBatch declares every registration in one engine call,
// holding the engine's write side once where the backend permits. It
// stops at the first failing entry.
func (r *Registry) RegisterBatch(ctx context.Context, regs []Registration) error {
	entries := make([]engine.Entry, len(regs))
	for i, reg := range regs {
		if err := r.checkName(reg.Name); err != nil {
			return err
		}
		entries[i] = engine.Entry{Key: reg.Name, Value: reg.Endpoint}
	}
	return r.eng.RegisterBatch(ctx, entries)
}

// Unregister withdraws endpoint from the service named name,
// reporting whether it was registered.
func (r *Registry) Unregister(ctx context.Context, name, endpoint string) (bool, error) {
	return r.eng.Unregister(ctx, name, endpoint)
}

// Discover routes a discovery request through the overlay and returns
// the service, if declared.
func (r *Registry) Discover(ctx context.Context, name string) (Service, bool, error) {
	res, err := r.eng.Discover(ctx, name)
	if err != nil {
		return Service{}, false, err
	}
	if !res.Found {
		return Service{}, false, nil
	}
	return Service{
		Name:         name,
		Endpoints:    res.Values,
		LogicalHops:  res.LogicalHops,
		PhysicalHops: res.PhysicalHops,
	}, true, nil
}

// seq adapts an engine query to a Go iterator: the stream is opened
// lazily on first iteration and closed on every exit path, so
// breaking out of the loop halts the underlying traversal.
func seq(ctx context.Context, eng engine.Engine, q engine.Query) iter.Seq2[string, error] {
	return func(yield func(string, error) bool) {
		s, err := eng.Query(ctx, q)
		if err != nil {
			yield("", err)
			return
		}
		defer s.Close()
		for {
			k, ok := s.Next()
			if !ok {
				if err := s.Err(); err != nil {
					yield("", err)
				}
				return
			}
			if !yield(k, nil) {
				return
			}
		}
	}
}

// drain collects an engine query into a slice — the slice methods
// below are thin wrappers over the same streams the Seq methods
// expose, so both paths cannot diverge.
func drain(ctx context.Context, eng engine.Engine, q engine.Query) ([]string, error) {
	res, err := engine.CollectQuery(ctx, eng, q)
	if err != nil {
		return nil, err
	}
	return res.Keys, nil
}

// Complete returns up to limit declared service names extending the
// given prefix, in lexicographic order (the paper's automatic
// completion of partial search strings), resolved by a routed subtree
// traversal. limit <= 0 means no limit. It is a thin wrapper draining
// CompleteSeq's stream.
func (r *Registry) Complete(ctx context.Context, prefix string, limit int) ([]string, error) {
	return drain(ctx, r.eng, engine.Query{Kind: engine.QueryComplete, Prefix: prefix, Limit: limit})
}

// CompleteSeq streams the declared service names extending prefix in
// lexicographic order as the routed subtree traversal discovers them.
// The traversal stops as soon as limit results have been yielded
// (limit <= 0 streams every match) or the consumer breaks out of the
// loop — it never materializes the full match set first, so a
// limit-10 completion over millions of keys pays for ten results, not
// millions.
func (r *Registry) CompleteSeq(ctx context.Context, prefix string, limit int) iter.Seq2[string, error] {
	return seq(ctx, r.eng, engine.Query{Kind: engine.QueryComplete, Prefix: prefix, Limit: limit})
}

// Range returns up to limit declared service names in [lo, hi], in
// lexicographic order, resolved by a routed subtree traversal.
// limit <= 0 means no limit. It is a thin wrapper draining RangeSeq's
// stream.
func (r *Registry) Range(ctx context.Context, lo, hi string, limit int) ([]string, error) {
	return drain(ctx, r.eng, engine.Query{Kind: engine.QueryRange, Lo: lo, Hi: hi, Limit: limit})
}

// RangeSeq streams the declared service names in [lo, hi] in
// lexicographic order as the routed subtree traversal discovers them,
// with the same early-termination contract as CompleteSeq.
func (r *Registry) RangeSeq(ctx context.Context, lo, hi string, limit int) iter.Seq2[string, error] {
	return seq(ctx, r.eng, engine.Query{Kind: engine.QueryRange, Lo: lo, Hi: hi, Limit: limit})
}

// Endpoints returns the endpoints registered under name via a
// consistent snapshot (no routing cost).
func (r *Registry) Endpoints(ctx context.Context, name string) ([]string, error) {
	snap, err := r.eng.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	n, ok := snap.Lookup(keys.Key(name))
	if !ok || !n.HasData() {
		return nil, nil
	}
	var out []string
	for v := range n.Data {
		out = append(out, v)
	}
	sort.Strings(out)
	return out, nil
}

// Services returns every declared service name in order, via a
// consistent snapshot (no routing cost).
func (r *Registry) Services(ctx context.Context) ([]string, error) {
	snap, err := r.eng.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	ks := snap.Keys()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = string(k)
	}
	return out, nil
}

// ServicesSeq streams every declared service name in lexicographic
// order through a routed traversal of the whole tree. Unlike
// Services (a whole-catalogue snapshot read) the stream is
// incremental: breaking out of the loop halts the traversal, so
// paging through the first screen of a huge catalogue does not walk
// all of it.
func (r *Registry) ServicesSeq(ctx context.Context) iter.Seq2[string, error] {
	return seq(ctx, r.eng, engine.Query{Kind: engine.QueryComplete})
}

// AddPeer grows the overlay by one peer of effectively unbounded
// capacity. Use AddPeerWithCapacity for heterogeneous deployments.
func (r *Registry) AddPeer(ctx context.Context) error {
	_, err := r.eng.AddPeer(ctx, 1<<20)
	return err
}

// AddPeerWithCapacity grows the overlay by one peer of the given
// per-time-unit capacity and returns its identifier — the handle for
// RemovePeer/CrashPeer and the id heterogeneous-capacity balancing
// scenarios schedule against.
func (r *Registry) AddPeerWithCapacity(ctx context.Context, capacity int) (string, error) {
	return r.eng.AddPeer(ctx, capacity)
}

// RemovePeer removes the peer with the given id gracefully: its tree
// nodes hand off and the catalogue is unchanged.
func (r *Registry) RemovePeer(ctx context.Context, id string) error {
	return r.eng.RemovePeer(ctx, id)
}

// CrashPeer fails the peer abruptly, per the paper's fault model: its
// node states vanish without transfer. Until Recover runs the tree is
// degraded — discoveries may miss keys and mutations must not be
// issued.
func (r *Registry) CrashPeer(ctx context.Context, id string) error {
	return r.eng.CrashPeer(ctx, id)
}

// Recover restores crashed node state from the replica store and
// rebuilds the canonical tree structure; afterwards Validate holds
// again. Keys declared after the last Replicate on a crashed peer are
// counted lost.
func (r *Registry) Recover(ctx context.Context) (RecoveryReport, error) {
	return r.eng.Recover(ctx)
}

// Replicate snapshots every tree node to the replica store — the
// periodic replication tick that backs crash recovery. It returns the
// number of nodes replicated.
func (r *Registry) Replicate(ctx context.Context) (int, error) {
	return r.eng.Replicate(ctx)
}

// Peers lists the live peers in ascending id (ring) order.
func (r *Registry) Peers(ctx context.Context) ([]PeerInfo, error) {
	return r.eng.Peers(ctx)
}

// MembershipStats reports the overlay's peer-lifecycle and
// replication counters.
func (r *Registry) MembershipStats(ctx context.Context) (MembershipStats, error) {
	return r.eng.MembershipStats(ctx)
}

// Tick ends the current load-accounting time unit: node loads roll
// into the history the balancing strategies consume.
func (r *Registry) Tick(ctx context.Context) error { return r.eng.Tick(ctx) }

// Balance runs one periodic balancing round of the named strategy
// ("MLT", "KC", "EqualLoad", "Directory", "NoLB") and returns the
// number of boundary moves applied. Peer identifiers may change.
func (r *Registry) Balance(ctx context.Context, strategy string) (int, error) {
	return r.eng.Balance(ctx, strategy)
}

// NumPeers returns the current number of peers.
func (r *Registry) NumPeers() int { return r.eng.NumPeers() }

// NumNodes returns the number of tree nodes (declared keys plus
// structural prefix nodes).
func (r *Registry) NumNodes() int { return r.eng.NumNodes() }

// Validate cross-checks every overlay invariant (ring order, mapping
// rule, PGCP tree structure); it is exposed for operational
// diagnostics and tests.
func (r *Registry) Validate(ctx context.Context) error { return r.eng.Validate(ctx) }
