// Package dlpt is a tree-structured peer-to-peer service discovery
// library: a production-shaped implementation of the Distributed
// Lexicographic Placement Table of Caron, Desprez and Tedeschi
// ("Efficiency of Tree-Structured Peer-to-Peer Service Discovery
// Systems", INRIA RR-6557, 2008).
//
// Services are identified by keys (e.g. names of computational
// routines); the overlay maintains a Proper Greatest Common Prefix
// tree of the declared keys directly over a ring of peers — no
// underlying DHT — supporting exact discovery, automatic completion
// of partial search strings, and lexicographic range queries, with
// the paper's MLT load balancing available in the simulation engine
// (internal/sim, internal/lb).
//
// The Registry type below is the deployment-facing API, backed by the
// concurrent goroutine-per-peer runtime. The reproduction harness for
// the paper's figures and tables lives in cmd/dlptsim and the
// repository-level benchmarks.
package dlpt

import (
	"errors"
	"fmt"
	"sort"

	"dlpt/internal/keys"
	"dlpt/internal/live"
)

// Service is a discovered service: the key and the endpoint values
// registered under it.
type Service struct {
	Name      string
	Endpoints []string
	// LogicalHops and PhysicalHops describe the routing cost of the
	// discovery that produced this result (tree edges traversed, and
	// those crossing peers).
	LogicalHops  int
	PhysicalHops int
}

// options collects constructor settings.
type options struct {
	alphabet   *keys.Alphabet
	seed       int64
	capacities []int
}

// Option configures New.
type Option func(*options)

// WithSeed fixes the seed of the overlay's internal randomness (peer
// identifiers, entry points). The default is 1.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}

// WithAlphabet sets the key alphabet. The default accepts printable
// ASCII. Registering a key outside the alphabet fails.
func WithAlphabet(a *keys.Alphabet) Option {
	return func(o *options) { o.alphabet = a }
}

// WithCapacities sets per-peer capacities explicitly; the number of
// peers becomes len(capacities), overriding New's numPeers argument.
// Capacity only matters to the simulation-grade load statistics; the
// live runtime does not throttle.
func WithCapacities(caps []int) Option {
	return func(o *options) { o.capacities = append([]int(nil), caps...) }
}

// Registry is a running service-discovery overlay. All methods are
// safe for concurrent use. Close releases the peer goroutines.
type Registry struct {
	cluster *live.Cluster
	alpha   *keys.Alphabet
}

// ErrClosed is returned by operations on a closed Registry.
var ErrClosed = live.ErrStopped

// New starts an overlay of numPeers peers.
func New(numPeers int, opts ...Option) (*Registry, error) {
	o := options{alphabet: keys.PrintableASCII, seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	caps := o.capacities
	if caps == nil {
		if numPeers < 1 {
			return nil, fmt.Errorf("dlpt: numPeers = %d", numPeers)
		}
		caps = make([]int, numPeers)
		for i := range caps {
			caps[i] = 1 << 20
		}
	}
	c, err := live.Start(o.alphabet, caps, o.seed)
	if err != nil {
		return nil, err
	}
	return &Registry{cluster: c, alpha: o.alphabet}, nil
}

// Close shuts the overlay down. It is idempotent.
func (r *Registry) Close() { r.cluster.Stop() }

// Register declares that endpoint provides the service named name.
func (r *Registry) Register(name, endpoint string) error {
	if name == "" {
		return errors.New("dlpt: empty service name")
	}
	if !r.alpha.Valid(keys.Key(name)) {
		return fmt.Errorf("dlpt: service name %q outside alphabet", name)
	}
	return r.cluster.Register(keys.Key(name), endpoint)
}

// Unregister withdraws endpoint from the service named name,
// reporting whether it was registered.
func (r *Registry) Unregister(name, endpoint string) bool {
	return r.cluster.Unregister(keys.Key(name), endpoint)
}

// Discover routes a discovery request through the overlay and returns
// the service, if declared.
func (r *Registry) Discover(name string) (Service, bool, error) {
	res, err := r.cluster.Discover(keys.Key(name))
	if err != nil {
		return Service{}, false, err
	}
	if !res.Found {
		return Service{}, false, nil
	}
	eps := append([]string(nil), res.Values...)
	sort.Strings(eps)
	return Service{
		Name:         name,
		Endpoints:    eps,
		LogicalHops:  res.LogicalHops,
		PhysicalHops: res.PhysicalHops,
	}, true, nil
}

// Complete returns up to limit declared service names extending the
// given prefix, in lexicographic order (the paper's automatic
// completion of partial search strings), resolved by a routed subtree
// traversal. limit <= 0 means no limit.
func (r *Registry) Complete(prefix string, limit int) []string {
	res, err := r.cluster.Complete(keys.Key(prefix))
	if err != nil {
		return nil
	}
	ks := res.Keys
	if limit > 0 && len(ks) > limit {
		ks = ks[:limit]
	}
	return keysToStrings(ks)
}

// Range returns up to limit declared service names in [lo, hi], in
// lexicographic order, resolved by a routed subtree traversal.
// limit <= 0 means no limit.
func (r *Registry) Range(lo, hi string, limit int) []string {
	res, err := r.cluster.RangeQuery(keys.Key(lo), keys.Key(hi))
	if err != nil {
		return nil
	}
	ks := res.Keys
	if limit > 0 && len(ks) > limit {
		ks = ks[:limit]
	}
	return keysToStrings(ks)
}

// Endpoints returns the endpoints registered under name via a
// consistent snapshot (no routing cost).
func (r *Registry) Endpoints(name string) []string {
	n, ok := r.cluster.Snapshot().Lookup(keys.Key(name))
	if !ok || !n.HasData() {
		return nil
	}
	var out []string
	for v := range n.Data {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Services returns every declared service name in order.
func (r *Registry) Services() []string {
	return keysToStrings(r.cluster.Snapshot().Keys())
}

// AddPeer grows the overlay by one peer.
func (r *Registry) AddPeer() error {
	_, err := r.cluster.AddPeer(1 << 20)
	return err
}

// NumPeers returns the current number of peers.
func (r *Registry) NumPeers() int { return r.cluster.NumPeers() }

// NumNodes returns the number of tree nodes (declared keys plus
// structural prefix nodes).
func (r *Registry) NumNodes() int { return r.cluster.NumNodes() }

// Validate cross-checks every overlay invariant (ring order, mapping
// rule, PGCP tree structure); it is exposed for operational
// diagnostics and tests.
func (r *Registry) Validate() error { return r.cluster.Validate() }

func keysToStrings(ks []keys.Key) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = string(k)
	}
	return out
}
