package dlpt

import (
	"testing"

	"dlpt/internal/leakcheck"
)

// TestMain fails the binary if engine goroutines (live peer procs,
// tcp servers, pool demuxers) outlive the tests: every engine's Close
// must join everything it started.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
