package churn

import (
	"context"
	"fmt"
	"sort"
	"time"

	"dlpt"
)

// ColdRestartConfig parameterizes the crash-all + cold-restart
// scenario: a durable overlay soaks under churn, every peer is then
// killed — the removable ones by explicit crashes, the rest
// (including the last peer) by abrupt process death — and the overlay
// restarts from the persistence directory alone.
type ColdRestartConfig struct {
	// Dir is the persistence directory (required).
	Dir string
	// Engine selects the execution backend (default EngineLive).
	Engine dlpt.EngineKind
	// Peers is the initial overlay size (default 8).
	Peers int
	// Capacity is the per-peer capacity of the initial overlay
	// (default 1<<20, effectively unbounded).
	Capacity int
	// Seed fixes the overlay and driver randomness.
	Seed int64
	// Preload registers the whole key corpus before the soak — the
	// scale scenario, where the catalogue that must survive the kill
	// is the full corpus rather than whatever the churn steps happened
	// to register.
	Preload bool
	// Churn is the soak run before the kill; Churn.Keys is required.
	Churn Config
}

// ColdRestartStats reports what the scenario did.
type ColdRestartStats struct {
	// Soak is the churn run that preceded the kill.
	Soak Stats
	// Declared is the number of service keys declared at the final
	// replication tick, and Recovered the number present after the
	// cold restart; the scenario fails unless they match exactly.
	Declared, Recovered int
	// CrashedBeforeKill counts the peers crashed explicitly before
	// the final abrupt death of the remainder.
	CrashedBeforeKill int
	// SoakWall, KillWall and RestartWall break the scenario's wall
	// time into its phases: preload + churn + final replication tick,
	// the crash-everyone loop, and dlpt.Restart + validation. At the
	// 1M-key scale the split says which side of the durability path
	// regressed.
	SoakWall, KillWall, RestartWall time.Duration
}

// RunColdRestart drives the full crash-all scenario: churn soak on a
// durable overlay, a final Replicate, explicit crashes of every
// removable peer (no recovery — their state survives only as
// successor replicas and on disk), abrupt death of the rest by
// closing the engine, then dlpt.Restart from the directory. It
// validates the restored overlay's invariants and requires the
// post-restart catalogue to equal the catalogue declared at the final
// replication tick, byte for byte.
func RunColdRestart(ctx context.Context, cfg ColdRestartConfig) (ColdRestartStats, error) {
	var st ColdRestartStats
	if cfg.Dir == "" {
		return st, fmt.Errorf("churn: cold restart needs a persistence directory")
	}
	kind := cfg.Engine
	if kind == "" {
		kind = dlpt.EngineLive
	}
	peers := cfg.Peers
	if peers <= 0 {
		peers = 8
	}
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 1 << 20
	}
	caps := make([]int, peers)
	for i := range caps {
		caps[i] = capacity
	}
	reg, err := dlpt.New(peers,
		dlpt.WithSeed(cfg.Seed),
		dlpt.WithEngine(kind),
		dlpt.WithCapacities(caps),
		dlpt.WithPersistence(cfg.Dir))
	if err != nil {
		return st, err
	}
	defer reg.Close()

	soak := cfg.Churn
	if soak.Seed == 0 {
		soak.Seed = cfg.Seed
	}
	phase := time.Now()
	if cfg.Preload {
		batch := make([]dlpt.Registration, len(soak.Keys))
		for i, k := range soak.Keys {
			batch[i] = dlpt.Registration{Name: k, Endpoint: "ep://" + k}
		}
		if err := reg.RegisterBatch(ctx, batch); err != nil {
			return st, err
		}
	}
	if st.Soak, err = Run(ctx, reg.Engine(), soak); err != nil {
		return st, err
	}
	// The final replication tick: everything declared up to here must
	// survive the cold restart.
	if _, err := reg.Replicate(ctx); err != nil {
		return st, err
	}
	declared, err := reg.Services(ctx)
	if err != nil {
		return st, err
	}
	st.Declared = len(declared)
	st.SoakWall = time.Since(phase)
	phase = time.Now()

	// Kill every peer: crash all the removable ones (the engine
	// refuses to crash the last), then die abruptly — Close without
	// any graceful handoff takes the survivors down too.
	for reg.NumPeers() > 1 {
		infos, err := reg.Peers(ctx)
		if err != nil {
			return st, err
		}
		if err := reg.CrashPeer(ctx, infos[0].ID); err != nil {
			return st, err
		}
		st.CrashedBeforeKill++
	}
	if err := reg.Close(); err != nil {
		return st, err
	}
	st.KillWall = time.Since(phase)
	phase = time.Now()

	// Cold restart: nothing is left but the persistence directory.
	restarted, err := dlpt.Restart(cfg.Dir,
		dlpt.WithSeed(cfg.Seed),
		dlpt.WithEngine(kind))
	if err != nil {
		return st, err
	}
	defer restarted.Close()
	if err := restarted.Validate(ctx); err != nil {
		return st, fmt.Errorf("churn: restored overlay invalid: %w", err)
	}
	recovered, err := restarted.Services(ctx)
	if err != nil {
		return st, err
	}
	st.Recovered = len(recovered)
	st.RestartWall = time.Since(phase)
	sort.Strings(declared)
	sort.Strings(recovered)
	if len(declared) != len(recovered) {
		return st, fmt.Errorf("churn: cold restart recovered %d of %d keys",
			len(recovered), len(declared))
	}
	for i := range declared {
		if declared[i] != recovered[i] {
			return st, fmt.Errorf("churn: cold restart catalogue diverges at %q vs %q",
				declared[i], recovered[i])
		}
	}
	return st, nil
}
