// Package churn drives a DLPT overlay through sustained membership
// churn — peer joins, graceful leaves, crashes and replication-backed
// recoveries — interleaved with a register/discover/unregister data
// workload and a periodic load-balancing step, over any execution
// engine. It is the operational counterpart of the paper's dynamic
// experiments (RR-6557 Section 4): the tree must survive and stay
// balanced on a changing ring of peers, not just on the frozen
// memberships the deployment engines started with.
//
// The driver is deterministic given a seed: identical configurations
// replay identical operation sequences, which the differential tests
// exploit to require identical surviving catalogues across engines.
package churn

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"dlpt/engine"
)

// Balancer is the pluggable periodic balancing hook: called at the
// end of each load-accounting time unit with the engine, it returns
// the number of balancing moves applied. StrategyBalancer adapts the
// internal strategy set; custom policies (e.g. an external placement
// service) plug in the same way.
type Balancer func(ctx context.Context, eng engine.Engine) (int, error)

// StrategyBalancer returns a Balancer running one round of the named
// internal strategy ("MLT", "KC", "EqualLoad", "Directory", "NoLB")
// through the engine's Balance method.
func StrategyBalancer(strategy string) Balancer {
	return func(ctx context.Context, eng engine.Engine) (int, error) {
		return eng.Balance(ctx, strategy)
	}
}

// Config parameterizes one churn run.
type Config struct {
	// Seed fixes the driver's randomness (operation mix, victims,
	// key choice).
	Seed int64
	// Ops is the number of workload steps to run.
	Ops int

	// JoinRate, LeaveRate, CrashRate and RecoverRate are per-step
	// probabilities of the corresponding membership event; the
	// remainder of the probability mass is data operations.
	// Recoveries also happen implicitly: the driver repairs the tree
	// before any mutation, since inserting into a degraded tree is
	// undefined (see engine.Engine.CrashPeer).
	JoinRate, LeaveRate, CrashRate, RecoverRate float64

	// JoinCapacity is the capacity of joining peers (default 1<<20).
	JoinCapacity int
	// MinPeers floors the overlay size: leaves and crashes are
	// skipped at or below it (default 2, the smallest crashable
	// overlay).
	MinPeers int

	// ReplicateEvery triggers a replication tick every that many
	// steps (default 64; <0 disables).
	ReplicateEvery int
	// BalanceEvery ends a time unit and runs the Balancer every that
	// many steps (default 32; <0 disables).
	BalanceEvery int
	// Strategy names the balancing strategy used when Balancer is
	// nil (default "MLT").
	Strategy string
	// Balancer overrides the strategy-based balancing hook.
	Balancer Balancer

	// Keys is the service-key corpus data operations draw from. It
	// must be non-empty.
	Keys []string
}

// Stats reports what one churn run did.
type Stats struct {
	Ops         int
	Registers   int
	Unregisters int
	Discoveries int
	// Found counts discoveries that returned the key. Degraded
	// phases (crash before recovery) legitimately miss keys.
	Found int

	Joins      int
	Leaves     int
	Crashes    int
	Recoveries int

	Replications    int
	ReplicatedNodes int
	RestoredNodes   int
	LostNodes       int

	BalanceRounds int
	BalanceMoves  int

	// FinalPeers and FinalKeys describe the overlay after the run
	// (post final recovery and validation).
	FinalPeers int
	FinalKeys  int
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Ops <= 0 {
		return out, errors.New("churn: Ops must be positive")
	}
	if len(out.Keys) == 0 {
		return out, errors.New("churn: empty key corpus")
	}
	if out.JoinCapacity == 0 {
		out.JoinCapacity = 1 << 20
	}
	if out.MinPeers < 2 {
		out.MinPeers = 2
	}
	if out.ReplicateEvery == 0 {
		out.ReplicateEvery = 64
	}
	if out.BalanceEvery == 0 {
		out.BalanceEvery = 32
	}
	if out.Strategy == "" {
		out.Strategy = "MLT"
	}
	if out.Balancer == nil {
		out.Balancer = StrategyBalancer(out.Strategy)
	}
	if r := out.JoinRate + out.LeaveRate + out.CrashRate + out.RecoverRate; r > 1 {
		return out, fmt.Errorf("churn: membership rates sum to %v > 1", r)
	}
	return out, nil
}

// Run drives the engine through cfg.Ops workload steps and returns
// the run's statistics. The engine is left repaired and validated: a
// final Recover (if a crash is outstanding) and Validate close the
// run.
func Run(ctx context.Context, eng engine.Engine, cfg Config) (Stats, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Stats{}, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	var st Stats

	infos, err := eng.Peers(ctx)
	if err != nil {
		return st, err
	}
	ids := make([]string, len(infos))
	for i, p := range infos {
		ids[i] = p.ID
	}

	degraded := false
	recoverNow := func() error {
		rep, err := eng.Recover(ctx)
		if err != nil {
			return err
		}
		st.Recoveries++
		st.RestoredNodes += rep.Restored
		st.LostNodes += rep.Lost
		degraded = false
		return nil
	}
	// repair runs before operations that are undefined on a degraded
	// tree (mutations, replication ticks, balancing).
	repair := func() error {
		if !degraded {
			return nil
		}
		return recoverNow()
	}
	// refreshIDs re-reads the peer listing after balancing renames.
	refreshIDs := func() error {
		infos, err := eng.Peers(ctx)
		if err != nil {
			return err
		}
		ids = ids[:0]
		for _, p := range infos {
			ids = append(ids, p.ID)
		}
		return nil
	}

	for i := 0; i < cfg.Ops; i++ {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		st.Ops++
		if cfg.ReplicateEvery > 0 && i%cfg.ReplicateEvery == cfg.ReplicateEvery-1 {
			if err := repair(); err != nil {
				return st, err
			}
			n, err := eng.Replicate(ctx)
			if err != nil {
				return st, err
			}
			st.Replications++
			st.ReplicatedNodes += n
		}
		if cfg.BalanceEvery > 0 && i%cfg.BalanceEvery == cfg.BalanceEvery-1 {
			if err := repair(); err != nil {
				return st, err
			}
			if err := eng.Tick(ctx); err != nil {
				return st, err
			}
			moves, err := cfg.Balancer(ctx, eng)
			if err != nil {
				return st, err
			}
			st.BalanceRounds++
			st.BalanceMoves += moves
			if err := refreshIDs(); err != nil {
				return st, err
			}
		}

		roll := r.Float64()
		switch {
		case roll < cfg.JoinRate:
			// A join routes through the tree (Algorithm 1), so it is
			// a mutation too: repair first.
			if err := repair(); err != nil {
				return st, err
			}
			id, err := eng.AddPeer(ctx, cfg.JoinCapacity)
			if err != nil {
				return st, err
			}
			ids = append(ids, id)
			st.Joins++
		case roll < cfg.JoinRate+cfg.LeaveRate:
			if len(ids) <= cfg.MinPeers {
				continue
			}
			v := r.Intn(len(ids))
			if err := eng.RemovePeer(ctx, ids[v]); err != nil {
				return st, err
			}
			ids = append(ids[:v], ids[v+1:]...)
			st.Leaves++
		case roll < cfg.JoinRate+cfg.LeaveRate+cfg.CrashRate:
			if len(ids) <= cfg.MinPeers {
				continue
			}
			v := r.Intn(len(ids))
			if err := eng.CrashPeer(ctx, ids[v]); err != nil {
				return st, err
			}
			ids = append(ids[:v], ids[v+1:]...)
			st.Crashes++
			degraded = true
		case roll < cfg.JoinRate+cfg.LeaveRate+cfg.CrashRate+cfg.RecoverRate:
			if !degraded {
				continue
			}
			if err := recoverNow(); err != nil {
				return st, err
			}
		default:
			key := cfg.Keys[r.Intn(len(cfg.Keys))]
			switch i % 4 {
			case 0: // mutate: (re-)register the key
				if err := repair(); err != nil {
					return st, err
				}
				if err := eng.Register(ctx, key, "ep://"+key); err != nil {
					return st, err
				}
				st.Registers++
			case 2: // mutate: withdraw one endpoint
				if err := repair(); err != nil {
					return st, err
				}
				if _, err := eng.Unregister(ctx, key, "ep://"+key); err != nil {
					return st, err
				}
				st.Unregisters++
			default: // read: routed discovery, allowed degraded
				res, err := eng.Discover(ctx, key)
				if err != nil {
					return st, err
				}
				st.Discoveries++
				if res.Found {
					st.Found++
				}
			}
		}
	}

	if err := repair(); err != nil {
		return st, err
	}
	if err := eng.Validate(ctx); err != nil {
		return st, fmt.Errorf("churn: post-run validation: %w", err)
	}
	snap, err := eng.Snapshot(ctx)
	if err != nil {
		return st, err
	}
	st.FinalKeys = len(snap.Keys())
	st.FinalPeers = eng.NumPeers()
	return st, nil
}
