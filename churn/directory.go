package churn

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"dlpt"
)

// DirectoryConfig parameterizes an attribute-level churn run: the
// workload drives Directory resources (multi-attribute registrations
// and conjunctive queries over the attribute sub-trees) instead of
// bare Registry keys, interleaved with the same membership events.
type DirectoryConfig struct {
	// Seed fixes the driver's randomness.
	Seed int64
	// Ops is the number of workload steps to run.
	Ops int

	// JoinRate, LeaveRate, CrashRate and RecoverRate are per-step
	// probabilities of the corresponding membership event; the
	// remainder of the probability mass is resource operations.
	JoinRate, LeaveRate, CrashRate, RecoverRate float64

	// JoinCapacity is the capacity of joining peers (default 1<<20).
	JoinCapacity int
	// MinPeers floors the overlay size (default 2).
	MinPeers int
	// ReplicateEvery triggers a replication tick every that many
	// steps (default 64; <0 disables).
	ReplicateEvery int

	// Resources is the size of the resource-id pool the workload
	// registers and withdraws (default 64).
	Resources int
}

// DirectoryStats reports what one attribute-level churn run did.
type DirectoryStats struct {
	Ops         int
	Registers   int
	Unregisters int
	Finds       int
	// Matches counts resource ids returned across all Find calls.
	Matches int

	Joins      int
	Leaves     int
	Crashes    int
	Recoveries int

	Replications int

	// FinalResources is the registered-resource count after the run
	// (post final recovery and validation).
	FinalResources int
}

// directory attribute corpus: every registration declares one value
// per attribute, so each attribute sub-tree ("cpu=", "mem=", "site=")
// sees its own churn as resources come and go.
var (
	dirCPUs  = []string{"x86_64", "arm64", "riscv64", "ppc64"}
	dirMems  = []string{"016", "032", "064", "128", "256"}
	dirSites = []string{"lyon", "nancy", "rennes", "sophia", "toulouse"}
)

func dirResource(id int, r *rand.Rand) dlpt.Resource {
	return dlpt.Resource{
		ID: fmt.Sprintf("res%04d", id),
		Attributes: map[string]string{
			"cpu":  dirCPUs[r.Intn(len(dirCPUs))],
			"mem":  dirMems[r.Intn(len(dirMems))],
			"site": dirSites[r.Intn(len(dirSites))],
		},
	}
}

// RunDirectory drives a Directory through cfg.Ops steps of resource
// churn — register/unregister of multi-attribute resources and
// conjunctive queries (exact, prefix and range predicates) — mixed
// with membership churn, under the same repair-before-mutation
// discipline as Run. The directory is left repaired and validated.
func RunDirectory(ctx context.Context, dir *dlpt.Directory, cfg DirectoryConfig) (DirectoryStats, error) {
	var st DirectoryStats
	if cfg.Ops <= 0 {
		return st, errors.New("churn: Ops must be positive")
	}
	if cfg.JoinCapacity == 0 {
		cfg.JoinCapacity = 1 << 20
	}
	if cfg.MinPeers < 2 {
		cfg.MinPeers = 2
	}
	if cfg.ReplicateEvery == 0 {
		cfg.ReplicateEvery = 64
	}
	if cfg.Resources <= 0 {
		cfg.Resources = 64
	}
	if sum := cfg.JoinRate + cfg.LeaveRate + cfg.CrashRate + cfg.RecoverRate; sum > 1 {
		return st, fmt.Errorf("churn: membership rates sum to %v > 1", sum)
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	infos, err := dir.Peers(ctx)
	if err != nil {
		return st, err
	}
	ids := make([]string, len(infos))
	for i, p := range infos {
		ids[i] = p.ID
	}

	// live tracks the registered resource ids the driver owns.
	live := make(map[int]bool)
	degraded := false
	recoverNow := func() error {
		rep, err := dir.Recover(ctx)
		if err != nil {
			return err
		}
		st.Recoveries++
		degraded = false
		// Reconcile the directory bookkeeping against what the crash
		// actually destroyed. The precise lost-key set names the
		// "attr=value" nodes that vanished outright; a recovered node
		// can additionally have dropped the ids declared under it
		// after the last replication tick (its replica predates them),
		// so resources touching a lost key are withdrawn immediately
		// and the rest of the live set is swept for value-level loss.
		lost := make(map[string]bool, len(rep.LostKeys))
		for _, k := range rep.LostKeys {
			lost[k] = true
		}
		eng := dir.Engine()
		for id := range live {
			name := fmt.Sprintf("res%04d", id)
			attrs, ok := dir.Describe(name)
			if !ok {
				delete(live, id)
				continue
			}
			gone := false
			for a, v := range attrs {
				if lost[a+"="+v] {
					gone = true
					break
				}
				res, err := eng.Discover(ctx, a+"="+v)
				if err != nil {
					return err
				}
				found := false
				for _, got := range res.Values {
					if got == name {
						found = true
						break
					}
				}
				if !found {
					gone = true
					break
				}
			}
			if gone {
				if _, err := dir.UnregisterResource(ctx, name); err != nil {
					return err
				}
				delete(live, id)
			}
		}
		return nil
	}
	repair := func() error {
		if !degraded {
			return nil
		}
		return recoverNow()
	}

	for i := 0; i < cfg.Ops; i++ {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		st.Ops++
		if cfg.ReplicateEvery > 0 && i%cfg.ReplicateEvery == cfg.ReplicateEvery-1 {
			if err := repair(); err != nil {
				return st, err
			}
			if _, err := dir.Replicate(ctx); err != nil {
				return st, err
			}
			st.Replications++
		}

		roll := r.Float64()
		switch {
		case roll < cfg.JoinRate:
			if err := repair(); err != nil {
				return st, err
			}
			id, err := dir.AddPeerWithCapacity(ctx, cfg.JoinCapacity)
			if err != nil {
				return st, err
			}
			ids = append(ids, id)
			st.Joins++
		case roll < cfg.JoinRate+cfg.LeaveRate:
			if len(ids) <= cfg.MinPeers {
				continue
			}
			v := r.Intn(len(ids))
			if err := dir.RemovePeer(ctx, ids[v]); err != nil {
				return st, err
			}
			ids = append(ids[:v], ids[v+1:]...)
			st.Leaves++
		case roll < cfg.JoinRate+cfg.LeaveRate+cfg.CrashRate:
			if len(ids) <= cfg.MinPeers {
				continue
			}
			v := r.Intn(len(ids))
			if err := dir.CrashPeer(ctx, ids[v]); err != nil {
				return st, err
			}
			ids = append(ids[:v], ids[v+1:]...)
			st.Crashes++
			degraded = true
		case roll < cfg.JoinRate+cfg.LeaveRate+cfg.CrashRate+cfg.RecoverRate:
			if !degraded {
				continue
			}
			if err := recoverNow(); err != nil {
				return st, err
			}
		default:
			id := r.Intn(cfg.Resources)
			switch i % 4 {
			case 0: // mutate: (re-)register a resource, re-rolling its
				// attributes — each attribute sub-tree sees churn.
				if err := repair(); err != nil {
					return st, err
				}
				if live[id] {
					if _, err := dir.UnregisterResource(ctx, fmt.Sprintf("res%04d", id)); err != nil {
						return st, err
					}
				}
				if err := dir.RegisterResource(ctx, dirResource(id, r)); err != nil {
					return st, err
				}
				live[id] = true
				st.Registers++
			case 2: // mutate: withdraw a resource
				if !live[id] {
					continue
				}
				if err := repair(); err != nil {
					return st, err
				}
				if _, err := dir.UnregisterResource(ctx, fmt.Sprintf("res%04d", id)); err != nil {
					return st, err
				}
				delete(live, id)
				st.Unregisters++
			default: // read: a conjunctive attribute query. Queries
				// traverse the attribute sub-trees, so they too need a
				// repaired tree.
				if err := repair(); err != nil {
					return st, err
				}
				var preds []dlpt.Where
				switch i % 3 {
				case 0:
					preds = []dlpt.Where{
						{Attr: "cpu", Equals: dirCPUs[r.Intn(len(dirCPUs))]},
					}
				case 1:
					preds = []dlpt.Where{
						{Attr: "site", HasPrefix: dirSites[r.Intn(len(dirSites))][:2]},
						{Attr: "cpu", Equals: dirCPUs[r.Intn(len(dirCPUs))]},
					}
				default:
					preds = []dlpt.Where{
						{Attr: "mem", Min: "032", Max: "128"},
					}
				}
				matches, _, err := dir.Find(ctx, preds...)
				if err != nil {
					return st, err
				}
				st.Finds++
				st.Matches += len(matches)
			}
		}
	}

	if err := repair(); err != nil {
		return st, err
	}
	if err := dir.Validate(ctx); err != nil {
		return st, fmt.Errorf("churn: post-run directory validation: %w", err)
	}
	st.FinalResources = dir.NumResources()
	return st, nil
}
