package churn

import (
	"context"
	"testing"

	"dlpt"
	"dlpt/engine"
	enginelive "dlpt/engine/live"
	enginelocal "dlpt/engine/local"
	enginetcp "dlpt/engine/tcp"
	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

func corpus(n int) []string {
	ks := workload.GridCorpus(n)
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = string(k)
	}
	return out
}

func startEngine(t *testing.T, f engine.Factory, peers int) engine.Engine {
	t.Helper()
	caps := make([]int, peers)
	for i := range caps {
		caps[i] = 200
	}
	eng, err := f(engine.Config{Alphabet: keys.LowerAlnum, Capacities: caps, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

var factories = map[string]engine.Factory{
	"local": enginelocal.Factory,
	"live":  enginelive.Factory,
	"tcp":   enginetcp.Factory,
}

// TestRunAllEngines drives a churn mix with joins, leaves, crashes,
// recoveries and balancing over every engine; Run validates the
// overlay internally at the end. EqualLoad is capacity-blind and
// reliably applies boundary moves, so the balancing renames exercise
// the live engine's mailbox rewiring and the tcp engine's
// address-table rewiring.
func TestRunAllEngines(t *testing.T) {
	for name, f := range factories {
		t.Run(name, func(t *testing.T) {
			eng := startEngine(t, f, 8)
			ctx := context.Background()
			st, err := Run(ctx, eng, Config{
				Seed:      3,
				Ops:       400,
				JoinRate:  0.05,
				LeaveRate: 0.03,
				CrashRate: 0.02,
				Strategy:  "EqualLoad",
				Keys:      corpus(80),
			})
			if err != nil {
				t.Fatalf("%s: %v (stats %+v)", name, err, st)
			}
			if st.Ops != 400 {
				t.Fatalf("ran %d ops, want 400", st.Ops)
			}
			if st.Registers == 0 || st.Discoveries == 0 {
				t.Fatalf("no data workload ran: %+v", st)
			}
			if st.BalanceMoves == 0 {
				t.Fatalf("EqualLoad applied no moves — rename/rewire path untested: %+v", st)
			}
			if st.Crashes > 0 && st.Recoveries == 0 {
				t.Fatalf("crashed without recovering: %+v", st)
			}
			if st.FinalPeers != eng.NumPeers() {
				t.Fatalf("FinalPeers=%d, engine says %d", st.FinalPeers, eng.NumPeers())
			}
			ms, err := eng.MembershipStats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if ms.Joins != st.Joins || ms.Leaves != st.Leaves || ms.Crashes != st.Crashes {
				t.Fatalf("engine stats %+v disagree with driver stats %+v", ms, st)
			}
		})
	}
}

// TestRunDeterministic requires identical stats for identical seeds
// on the sequential engine.
func TestRunDeterministic(t *testing.T) {
	cfg := Config{
		Seed:      11,
		Ops:       300,
		JoinRate:  0.04,
		LeaveRate: 0.03,
		CrashRate: 0.02,
		Keys:      corpus(60),
	}
	run := func() Stats {
		eng := startEngine(t, enginelocal.Factory, 6)
		st, err := Run(context.Background(), eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n  %+v\n  %+v", a, b)
	}
}

// TestBalancerHook verifies the pluggable hook is invoked once per
// balancing round.
func TestBalancerHook(t *testing.T) {
	eng := startEngine(t, enginelocal.Factory, 6)
	calls := 0
	st, err := Run(context.Background(), eng, Config{
		Seed:         5,
		Ops:          128,
		BalanceEvery: 16,
		Keys:         corpus(40),
		Balancer: func(ctx context.Context, e engine.Engine) (int, error) {
			calls++
			return e.Balance(ctx, "EqualLoad")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 128/16 {
		t.Fatalf("hook called %d times, want %d", calls, 128/16)
	}
	if st.BalanceRounds != calls {
		t.Fatalf("BalanceRounds=%d, hook calls=%d", st.BalanceRounds, calls)
	}
}

// TestConfigValidation rejects nonsense configurations.
func TestConfigValidation(t *testing.T) {
	eng := startEngine(t, enginelocal.Factory, 3)
	ctx := context.Background()
	if _, err := Run(ctx, eng, Config{Ops: 10}); err == nil {
		t.Fatal("empty corpus accepted")
	}
	if _, err := Run(ctx, eng, Config{Keys: corpus(4)}); err == nil {
		t.Fatal("zero ops accepted")
	}
	if _, err := Run(ctx, eng, Config{Ops: 10, Keys: corpus(4),
		JoinRate: 0.6, LeaveRate: 0.6}); err == nil {
		t.Fatal("rates > 1 accepted")
	}
}

// TestRunDirectoryAllEngines drives the attribute-level churn
// workload over every engine: multi-attribute resources come and go
// under membership churn, so the attribute sub-trees ("cpu=", "mem=",
// "site=") see churn too, and conjunctive queries run throughout.
func TestRunDirectoryAllEngines(t *testing.T) {
	for name := range factories {
		t.Run(name, func(t *testing.T) {
			dir, err := dlpt.NewDirectory(6,
				dlpt.WithSeed(9),
				dlpt.WithEngine(dlpt.EngineKind(name)))
			if err != nil {
				t.Fatal(err)
			}
			defer dir.Close()
			st, err := RunDirectory(context.Background(), dir, DirectoryConfig{
				Seed:      13,
				Ops:       300,
				JoinRate:  0.04,
				LeaveRate: 0.03,
				CrashRate: 0.02,
				Resources: 48,
			})
			if err != nil {
				t.Fatalf("%s: %v (stats %+v)", name, err, st)
			}
			if st.Registers == 0 || st.Finds == 0 {
				t.Fatalf("no resource workload ran: %+v", st)
			}
			if st.Matches == 0 {
				t.Fatalf("no query ever matched: %+v", st)
			}
			if st.Crashes > 0 && st.Recoveries == 0 {
				t.Fatalf("crashed without recovering: %+v", st)
			}
			if st.FinalResources != dir.NumResources() {
				t.Fatalf("FinalResources=%d, directory says %d",
					st.FinalResources, dir.NumResources())
			}
		})
	}
}

// TestRunDirectoryDeterministic requires identical stats for
// identical seeds on the sequential engine.
func TestRunDirectoryDeterministic(t *testing.T) {
	run := func() DirectoryStats {
		dir, err := dlpt.NewDirectory(5,
			dlpt.WithSeed(21), dlpt.WithEngine(dlpt.EngineLocal))
		if err != nil {
			t.Fatal(err)
		}
		defer dir.Close()
		st, err := RunDirectory(context.Background(), dir, DirectoryConfig{
			Seed: 23, Ops: 200, JoinRate: 0.03, LeaveRate: 0.02, CrashRate: 0.02,
			Resources: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n  %+v\n  %+v", a, b)
	}
}

// TestRunColdRestartAllEngines kills every peer of a durable overlay
// after a churn soak and restarts it from the persistence directory
// on each engine; the helper itself asserts the restored catalogue
// equals the one declared at the final replication tick.
func TestRunColdRestartAllEngines(t *testing.T) {
	for name := range factories {
		t.Run(name, func(t *testing.T) {
			st, err := RunColdRestart(context.Background(), ColdRestartConfig{
				Dir:    t.TempDir(),
				Engine: dlpt.EngineKind(name),
				Peers:  6,
				Seed:   17,
				Churn: Config{
					Ops:       250,
					JoinRate:  0.04,
					LeaveRate: 0.03,
					CrashRate: 0.02,
					Keys:      corpus(60),
				},
			})
			if err != nil {
				t.Fatalf("%s: %v (stats %+v)", name, err, st)
			}
			if st.Declared == 0 || st.Recovered != st.Declared {
				t.Fatalf("recovered %d of %d declared keys", st.Recovered, st.Declared)
			}
			if st.CrashedBeforeKill == 0 {
				t.Fatalf("no peer was crashed before the kill: %+v", st)
			}
		})
	}
}
