module dlpt

go 1.24
