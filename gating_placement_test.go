package dlpt

// Capacity gating and join placement on the deployment engines: with
// WithCapacityGating a saturated peer drops discoveries (typed
// ErrSaturated) until Tick starts a fresh time unit, and with
// WithJoinPlacement the named lb strategy chooses join identifiers on
// every engine — two simulator-only behaviours promoted to the
// engine contract.

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"dlpt/internal/keys"
)

// TestCapacityGatingSaturates drives discoveries into a single
// low-capacity peer until it saturates, on every engine, and checks
// Tick clears the saturation.
func TestCapacityGatingSaturates(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		reg := newRegistry(t, 1,
			WithCapacities([]int{10}),
			WithCapacityGating(),
			WithSeed(5),
			WithAlphabet(keys.LowerAlnum),
			WithEngine(kind))
		for _, name := range []string{"aa", "ab", "ba"} {
			if err := reg.Register(ctx, name, "ep"); err != nil {
				t.Fatal(err)
			}
		}
		saturatedAt := -1
		for i := 0; i < 100; i++ {
			_, _, err := reg.Discover(ctx, "aa")
			if err == nil {
				continue
			}
			if !errors.Is(err, ErrSaturated) {
				t.Fatalf("discover %d: %v, want ErrSaturated", i, err)
			}
			saturatedAt = i
			break
		}
		if saturatedAt < 0 {
			t.Fatal("capacity 10 never saturated over 100 discoveries")
		}
		// Saturation persists within the unit...
		if _, _, err := reg.Discover(ctx, "aa"); !errors.Is(err, ErrSaturated) {
			t.Fatalf("saturated peer served a request: %v", err)
		}
		// ...and Tick starts a fresh unit.
		if err := reg.Tick(ctx); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := reg.Discover(ctx, "aa"); err != nil || !ok {
			t.Fatalf("post-Tick discover: ok=%v err=%v", ok, err)
		}
	})
}

// TestUngatedNeverSaturates pins the default: without
// WithCapacityGating the same workload never drops.
func TestUngatedNeverSaturates(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		reg := newRegistry(t, 1,
			WithCapacities([]int{10}),
			WithSeed(5),
			WithAlphabet(keys.LowerAlnum),
			WithEngine(kind))
		if err := reg.Register(ctx, "aa", "ep"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if _, ok, err := reg.Discover(ctx, "aa"); err != nil || !ok {
				t.Fatalf("ungated discover %d: ok=%v err=%v", i, ok, err)
			}
		}
	})
}

// TestJoinPlacementThroughEngines exercises the placement hook on
// every engine: k-choices placement constructs valid overlays, grows
// them through AddPeer, and an unknown strategy fails construction.
func TestJoinPlacementThroughEngines(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		if _, err := New(3, WithJoinPlacement("warp"), WithEngine(kind)); err == nil {
			t.Fatal("unknown placement strategy must fail construction")
		}
		reg := newRegistry(t, 4,
			WithJoinPlacement("KC"),
			WithSeed(7),
			WithAlphabet(keys.LowerAlnum),
			WithEngine(kind))
		for _, name := range []string{"dgemm", "sgemm", "saxpy"} {
			if err := reg.Register(ctx, name, "ep"); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3; i++ {
			if _, err := reg.AddPeerWithCapacity(ctx, 64); err != nil {
				t.Fatalf("KC join %d on %s: %v", i, kind, err)
			}
		}
		if reg.NumPeers() != 7 {
			t.Fatalf("NumPeers = %d, want 7", reg.NumPeers())
		}
		if err := reg.Validate(ctx); err != nil {
			t.Fatalf("validate after KC joins: %v", err)
		}
		if _, ok, err := reg.Discover(ctx, "dgemm"); err != nil || !ok {
			t.Fatalf("discover after KC joins: ok=%v err=%v", ok, err)
		}
	})
}

// TestJoinPlacementChangesIdentifiers pins that the hook is actually
// wired: with a fixed seed, k-choices placement draws different ring
// identifiers than the default uniform placement, and is itself
// deterministic.
func TestJoinPlacementChangesIdentifiers(t *testing.T) {
	ctx := context.Background()
	ids := func(opts ...Option) []string {
		reg := newRegistry(t, 4, append([]Option{
			WithSeed(7), WithAlphabet(keys.LowerAlnum), WithEngine(EngineLocal)}, opts...)...)
		infos, err := reg.Peers(ctx)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(infos))
		for i, p := range infos {
			out[i] = p.ID
		}
		return out
	}
	uniform := ids()
	kc := ids(WithJoinPlacement("KC"))
	kc2 := ids(WithJoinPlacement("KC"))
	if !reflect.DeepEqual(kc, kc2) {
		t.Fatalf("KC placement not deterministic: %v vs %v", kc, kc2)
	}
	if reflect.DeepEqual(uniform, kc) {
		t.Fatalf("KC placement identical to uniform placement: %v", kc)
	}
}
