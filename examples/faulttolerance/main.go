// Faulttolerance: crash-failure injection with successor replication
// — peers crash without warning, the replica store restores their
// tree nodes, and the anti-entropy sweep rebuilds the canonical PGCP
// structure. Data declared after the last snapshot on a crashed peer
// is the only thing at risk.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dlpt/internal/core"
	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	net := core.NewNetwork(keys.LowerAlnum, core.PlacementLexicographic)
	for i := 0; i < 20; i++ {
		if err := net.JoinPeer(keys.LowerAlnum.RandomKey(rng, 12, 12), 1<<20, rng); err != nil {
			log.Fatal(err)
		}
	}
	corpus := workload.GridCorpus(400)
	for _, k := range corpus {
		if err := net.InsertKey(k, rng); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("overlay: %d peers, %d services, %d tree nodes\n",
		net.NumPeers(), len(corpus), net.NumNodes())

	available := func() int {
		found := 0
		for _, k := range corpus {
			if res := net.DiscoverRandom(k, false, rng); res.Satisfied {
				found++
			}
		}
		return found
	}

	// Snapshot everything, then crash a quarter of the peers at once.
	n := net.Replicate()
	fmt.Printf("replicated %d node snapshots\n\n", n)
	for i := 0; i < 5; i++ {
		ids := net.PeerIDs()
		victim := ids[rng.Intn(len(ids))]
		p, _ := net.Peer(victim)
		fmt.Printf("CRASH peer %s (hosted %d tree nodes)\n", victim, p.NumNodes())
		if err := net.FailPeer(victim); err != nil {
			log.Fatal(err)
		}
	}
	restored, lost := net.Recover()
	fmt.Printf("\nrecovery: %d nodes restored from snapshots, %d lost\n", restored, len(lost))
	fmt.Printf("services still discoverable: %d/%d\n", available(), len(corpus))
	if err := net.Validate(); err != nil {
		log.Fatalf("invariants after recovery: %v", err)
	}
	fmt.Println("overlay invariants: OK")

	// Second scenario: data declared after the snapshot is at risk.
	fresh := []keys.Key{"zz_new_service_1", "zz_new_service_2", "zz_new_service_3"}
	for _, k := range fresh {
		if err := net.InsertKey(k, rng); err != nil {
			log.Fatal(err)
		}
	}
	host, _ := net.HostOf("zz_new_service_1")
	fmt.Printf("\nCRASH peer %s before the next replication round\n", host)
	if err := net.FailPeer(host); err != nil {
		log.Fatal(err)
	}
	_, lost = net.Recover()
	fmt.Printf("unreplicated nodes lost: %v — re-declaring them\n", lost)
	for _, k := range fresh {
		if res := net.DiscoverRandom(k, false, rng); !res.Satisfied {
			if err := net.InsertKey(k, rng); err != nil {
				log.Fatal(err)
			}
		}
	}
	for _, k := range fresh {
		if res := net.DiscoverRandom(k, false, rng); !res.Satisfied {
			log.Fatalf("%q still missing after re-declaration", k)
		}
	}
	if err := net.Validate(); err != nil {
		log.Fatalf("invariants: %v", err)
	}
	fmt.Println("all services restored; overlay invariants: OK")
}
