// Quickstart: start a DLPT overlay, register services, discover them,
// and use prefix completion — the minimal tour of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"dlpt"
)

func main() {
	ctx := context.Background()

	// Start a 8-peer overlay on the default engine: peers are
	// simulated in-process, one goroutine each, speaking the paper's
	// self-contained protocol. Swap dlpt.WithEngine(dlpt.EngineLocal)
	// or dlpt.EngineTCP in to change the deployment shape without
	// touching any other line.
	reg, err := dlpt.New(8, dlpt.WithSeed(42), dlpt.WithEngine(dlpt.EngineLive))
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()

	// Declare some computational services in one batch, as a grid
	// middleware would: the key is the routine name, the value its
	// provider.
	batch := []dlpt.Registration{
		{Name: "DGEMM", Endpoint: "cluster-a:9000"},
		{Name: "DGEMM", Endpoint: "cluster-b:9000"},
		{Name: "DGEMV", Endpoint: "cluster-a:9000"},
		{Name: "DTRSM", Endpoint: "cluster-c:9000"},
		{Name: "SGEMM", Endpoint: "cluster-b:9000"},
	}
	if err := reg.RegisterBatch(ctx, batch); err != nil {
		log.Fatal(err)
	}

	// Exact discovery routes a request through the prefix tree.
	svc, ok, err := reg.Discover(ctx, "DGEMM")
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatal("DGEMM not found")
	}
	fmt.Printf("DGEMM providers: %v (%d tree hops, %d peer-to-peer)\n",
		svc.Endpoints, svc.LogicalHops, svc.PhysicalHops)

	// Automatic completion of partial search strings.
	completions, err := reg.Complete(ctx, "DGE", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("services starting with DGE: %v\n", completions)

	// Lexicographic range query.
	inRange, err := reg.Range(ctx, "DGEMM", "DTRSM", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("services in [DGEMM, DTRSM]: %v\n", inRange)

	// The overlay grows with the platform.
	if err := reg.AddPeer(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay: %d peers, %d tree nodes, invariants: %v\n",
		reg.NumPeers(), reg.NumNodes(), reg.Validate(ctx) == nil)
}
