// Quickstart: start a DLPT overlay, register services, discover them,
// and use prefix completion — the minimal tour of the public API.
package main

import (
	"fmt"
	"log"

	"dlpt"
)

func main() {
	// Start a 8-peer overlay. Peers are simulated in-process, one
	// goroutine each, speaking the paper's self-contained protocol.
	reg, err := dlpt.New(8, dlpt.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()

	// Declare some computational services, as a grid middleware
	// would: the key is the routine name, the value its provider.
	services := map[string][]string{
		"DGEMM": {"cluster-a:9000", "cluster-b:9000"},
		"DGEMV": {"cluster-a:9000"},
		"DTRSM": {"cluster-c:9000"},
		"SGEMM": {"cluster-b:9000"},
	}
	for name, endpoints := range services {
		for _, ep := range endpoints {
			if err := reg.Register(name, ep); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Exact discovery routes a request through the prefix tree.
	svc, ok, err := reg.Discover("DGEMM")
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatal("DGEMM not found")
	}
	fmt.Printf("DGEMM providers: %v (%d tree hops, %d peer-to-peer)\n",
		svc.Endpoints, svc.LogicalHops, svc.PhysicalHops)

	// Automatic completion of partial search strings.
	fmt.Printf("services starting with DGE: %v\n", reg.Complete("DGE", 0))

	// Lexicographic range query.
	fmt.Printf("services in [DGEMM, DTRSM]: %v\n", reg.Range("DGEMM", "DTRSM", 0))

	// The overlay grows with the platform.
	if err := reg.AddPeer(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay: %d peers, %d tree nodes, invariants: %v\n",
		reg.NumPeers(), reg.NumNodes(), reg.Validate() == nil)
}
