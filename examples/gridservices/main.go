// Gridservices: the workload the paper's introduction motivates — a
// grid middleware publishing the BLAS / LAPACK / ScaLAPACK / S3L
// routine catalogues and resolving flexible queries: exact discovery,
// completion of partial names, and range queries across libraries.
// The -engine flag switches the deployment shape (local, live, tcp)
// without changing the workload.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"dlpt"
	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

func main() {
	engineKind := flag.String("engine", "live", "execution engine: local, live or tcp")
	flag.Parse()
	ctx := context.Background()

	reg, err := dlpt.New(24, dlpt.WithSeed(7), dlpt.WithAlphabet(keys.LowerAlnum),
		dlpt.WithEngine(dlpt.EngineKind(*engineKind)))
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()

	// Publish the full grid catalogue (the paper's ~1000-key trees)
	// as one batch registration.
	catalogue := workload.GridCorpus(1000)
	batch := make([]dlpt.Registration, len(catalogue))
	for i, name := range catalogue {
		batch[i] = dlpt.Registration{
			Name:     string(name),
			Endpoint: fmt.Sprintf("site-%02d.grid5000.example:%d", i%16, 7000+i%16),
		}
	}
	if err := reg.RegisterBatch(ctx, batch); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %d services on %d peers (%d tree nodes, %s engine)\n",
		len(catalogue), reg.NumPeers(), reg.NumNodes(), reg.Engine().Name())

	// A user knows the routine name exactly.
	svc, ok, err := reg.Discover(ctx, "pdgesv")
	if err != nil || !ok {
		log.Fatalf("pdgesv: ok=%v err=%v", ok, err)
	}
	fmt.Printf("pdgesv served by %s (%d hops)\n", svc.Endpoints[0], svc.LogicalHops)

	// A user remembers only the beginning of the name: automatic
	// completion of partial search strings.
	mustComplete := func(prefix string, limit int) []string {
		ks, err := reg.Complete(ctx, prefix, limit)
		if err != nil {
			log.Fatal(err)
		}
		return ks
	}
	fmt.Printf("completions of \"s3l_lu\": %v\n", mustComplete("s3l_lu", 0))
	fmt.Printf("completions of \"dge\":    %v\n", mustComplete("dge", 6))

	// Range query: every double-precision ScaLAPACK solver between
	// pdgesv and pdpotrs.
	solvers, err := reg.Range(ctx, "pdgesv", "pdpotrs", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range [pdgesv, pdpotrs]: %v\n", solvers)

	// Multi-attribute-style search by structured prefixes: the trie
	// makes "all S3L FFT variants" a prefix query.
	fmt.Printf("S3L FFT family: %v\n", mustComplete("s3l_fft", 0))

	if err := reg.Validate(ctx); err != nil {
		log.Fatalf("overlay invariants: %v", err)
	}
	fmt.Println("overlay invariants: OK")
}
