// Gridservices: the workload the paper's introduction motivates — a
// grid middleware publishing the BLAS / LAPACK / ScaLAPACK / S3L
// routine catalogues and resolving flexible queries: exact discovery,
// completion of partial names, and range queries across libraries.
package main

import (
	"fmt"
	"log"

	"dlpt"
	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

func main() {
	reg, err := dlpt.New(24, dlpt.WithSeed(7), dlpt.WithAlphabet(keys.LowerAlnum))
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()

	// Publish the full grid catalogue (the paper's ~1000-key trees).
	catalogue := workload.GridCorpus(1000)
	for i, name := range catalogue {
		endpoint := fmt.Sprintf("site-%02d.grid5000.example:%d", i%16, 7000+i%16)
		if err := reg.Register(string(name), endpoint); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("published %d services on %d peers (%d tree nodes)\n",
		len(catalogue), reg.NumPeers(), reg.NumNodes())

	// A user knows the routine name exactly.
	svc, ok, err := reg.Discover("pdgesv")
	if err != nil || !ok {
		log.Fatalf("pdgesv: ok=%v err=%v", ok, err)
	}
	fmt.Printf("pdgesv served by %s (%d hops)\n", svc.Endpoints[0], svc.LogicalHops)

	// A user remembers only the beginning of the name: automatic
	// completion of partial search strings.
	fmt.Printf("completions of \"s3l_lu\": %v\n", reg.Complete("s3l_lu", 0))
	fmt.Printf("completions of \"dge\":    %v\n", reg.Complete("dge", 6))

	// Range query: every double-precision ScaLAPACK solver between
	// pdgesv and pdpotrs.
	fmt.Printf("range [pdgesv, pdpotrs]: %v\n", reg.Range("pdgesv", "pdpotrs", 0))

	// Multi-attribute-style search by structured prefixes: the trie
	// makes "all S3L FFT variants" a prefix query.
	fmt.Printf("S3L FFT family: %v\n", reg.Complete("s3l_fft", 0))

	if err := reg.Validate(); err != nil {
		log.Fatalf("overlay invariants: %v", err)
	}
	fmt.Println("overlay invariants: OK")
}
