// Churn: the paper's dynamic-network scenario — 10% of the peers are
// replaced every time unit — comparing k-choices placement (KC),
// which balances at join time and therefore shines under churn, with
// MLT and no balancing.
package main

import (
	"fmt"
	"log"

	"dlpt/internal/sim"
)

func main() {
	base := sim.DefaultConfig()
	base.Runs = 5
	base.NumPeers = 40
	base.NumKeys = 400
	base.GrowUnits = 5
	base.TimeUnits = 40
	base.LoadFraction = 0.4
	base.JoinFraction = 0.10
	base.LeaveFraction = 0.10

	fmt.Println("dynamic network: 10% of peers replaced per time unit, 40% load")
	fmt.Printf("%-6s  %-24s  %-18s\n", "LB", "steady-state satisfied", "maintenance msgs/unit")
	for _, strategy := range []string{"MLT", "KC", "NoLB"} {
		cfg := base
		cfg.Strategy = strategy
		res, err := sim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		maint := 0.0
		for _, v := range res.Maintenance.Means() {
			maint += v
		}
		maint /= float64(cfg.TimeUnits)
		fmt.Printf("%-6s  %21.1f%%  %18.0f\n",
			strategy, res.SteadyStateSatisfaction(), maint)
	}
	fmt.Println("\nKC balances at join time, so a churning network keeps it")
	fmt.Println("effective without periodic balancing traffic (paper Figs. 6-7).")
}
