// Comparison: the Table 2 and Section 5 comparison run live — DLPT
// against PHT-over-Chord and P-Grid on the same key corpus, measuring
// routing cost, per-peer state and maintenance traffic.
package main

import (
	"fmt"
	"log"
	"os"

	"dlpt/internal/experiments"
)

func main() {
	fmt.Println("Comparing trie-structured discovery overlays (quick scale).")
	fmt.Println()
	tb, err := experiments.Table2(true)
	if err != nil {
		log.Fatal(err)
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	ab, err := experiments.AblationMaintenance(true)
	if err != nil {
		log.Fatal(err)
	}
	if err := ab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Reading the tables: P-Grid routes in O(log |Pi|) partitions but")
	fmt.Println("fixes its partition structure; PHT pays one DHT lookup (O(log P)")
	fmt.Println("hops) per trie level; the self-contained DLPT routes in O(D) tree")
	fmt.Println("hops and keeps maintenance off the DHT entirely (paper Section 5).")
}
