// Multiattr: multi-attribute resource discovery over the DLPT — the
// extension the paper names in its introduction. Each attribute pair
// of a resource is declared as an "attr=value" key in the same prefix
// tree; conjunctive queries combine exact, prefix and range
// predicates resolved in parallel branches of the tree.
//
// The directory runs over the pluggable engine API: the same queries
// resolve over the in-process runtime and over real TCP sockets
// (-engine tcp), where every per-predicate discovery is a wire
// round-trip.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"dlpt"
)

func main() {
	engineKind := flag.String("engine", "live", "execution engine: local, live or tcp")
	flag.Parse()
	ctx := context.Background()

	dir, err := dlpt.NewDirectory(16, dlpt.WithSeed(11),
		dlpt.WithEngine(dlpt.EngineKind(*engineKind)))
	if err != nil {
		log.Fatal(err)
	}
	defer dir.Close()

	// Describe a small computational grid.
	sites := []dlpt.Resource{
		{ID: "lyon-01", Attributes: map[string]string{"cpu": "x86_64", "cores": "064", "mem": "256", "os": "linux"}},
		{ID: "lyon-02", Attributes: map[string]string{"cpu": "x86_64", "cores": "032", "mem": "128", "os": "linux"}},
		{ID: "nancy-01", Attributes: map[string]string{"cpu": "arm64", "cores": "096", "mem": "512", "os": "linux"}},
		{ID: "rennes-01", Attributes: map[string]string{"cpu": "x86_64", "cores": "128", "mem": "512", "os": "solaris"}},
		{ID: "nice-01", Attributes: map[string]string{"cpu": "sparc", "cores": "016", "mem": "064", "os": "solaris"}},
	}
	for _, s := range sites {
		if err := dir.RegisterResource(ctx, s); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("registered %d resources on the %s engine (%d tree nodes, %d peers)\n\n",
		dir.NumResources(), dir.Engine().Name(),
		dir.Engine().NumNodes(), dir.Engine().NumPeers())

	show := func(label string, preds ...dlpt.Where) {
		ids, stats, err := dir.Find(ctx, preds...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-52s -> %v  (%d tree hops, %d cross-peer)\n",
			label, ids, stats.TreeHops, stats.CrossPeerOps)
	}

	show("cpu = x86_64",
		dlpt.Where{Attr: "cpu", Equals: "x86_64"})
	show("cpu = x86_64 AND os = linux",
		dlpt.Where{Attr: "cpu", Equals: "x86_64"},
		dlpt.Where{Attr: "os", Equals: "linux"})
	show("cores in [064, 128] AND mem in [256, 512]",
		dlpt.Where{Attr: "cores", Min: "064", Max: "128"},
		dlpt.Where{Attr: "mem", Min: "256", Max: "512"})
	show("cpu prefix \"x\" (completion predicate)",
		dlpt.Where{Attr: "cpu", HasPrefix: "x"})

	if err := dir.Validate(ctx); err != nil {
		log.Fatalf("directory invariants: %v", err)
	}
	fmt.Println("\ndirectory + overlay invariants: OK")
}
