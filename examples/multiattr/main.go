// Multiattr: multi-attribute resource discovery over the DLPT — the
// extension the paper names in its introduction. Each attribute pair
// of a resource is declared as an "attr=value" key in the same prefix
// tree; conjunctive queries combine exact, prefix and range
// predicates resolved in parallel branches of the tree.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dlpt/internal/attrs"
	"dlpt/internal/core"
	"dlpt/internal/keys"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	net := core.NewNetwork(keys.PrintableASCII, core.PlacementLexicographic)
	for i := 0; i < 16; i++ {
		if err := net.JoinPeer(keys.LowerAlnum.RandomKey(rng, 12, 12), 1<<20, rng); err != nil {
			log.Fatal(err)
		}
	}
	dir := attrs.NewDirectory(net, rng)

	// Describe a small computational grid.
	sites := []attrs.Service{
		{ID: "lyon-01", Attributes: map[string]string{"cpu": "x86_64", "cores": "064", "mem": "256", "os": "linux"}},
		{ID: "lyon-02", Attributes: map[string]string{"cpu": "x86_64", "cores": "032", "mem": "128", "os": "linux"}},
		{ID: "nancy-01", Attributes: map[string]string{"cpu": "arm64", "cores": "096", "mem": "512", "os": "linux"}},
		{ID: "rennes-01", Attributes: map[string]string{"cpu": "x86_64", "cores": "128", "mem": "512", "os": "solaris"}},
		{ID: "nice-01", Attributes: map[string]string{"cpu": "sparc", "cores": "016", "mem": "064", "os": "solaris"}},
	}
	for _, s := range sites {
		if err := dir.Register(s); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("registered %d resources as %d tree nodes on %d peers\n\n",
		dir.NumServices(), net.NumNodes(), net.NumPeers())

	show := func(label string, preds ...attrs.Predicate) {
		ids, cost, err := dir.Query(preds...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-52s -> %v  (%d tree hops, %d cross-peer)\n",
			label, ids, cost.LogicalHops, cost.PhysicalHops)
	}

	show("cpu = x86_64",
		attrs.Predicate{Attr: "cpu", Exact: "x86_64"})
	show("cpu = x86_64 AND os = linux",
		attrs.Predicate{Attr: "cpu", Exact: "x86_64"},
		attrs.Predicate{Attr: "os", Exact: "linux"})
	show("cores in [064, 128] AND mem in [256, 512]",
		attrs.Predicate{Attr: "cores", Lo: "064", Hi: "128"},
		attrs.Predicate{Attr: "mem", Lo: "256", Hi: "512"})
	show("cpu prefix \"x\" (completion predicate)",
		attrs.Predicate{Attr: "cpu", Prefix: "x"})

	if err := dir.Validate(); err != nil {
		log.Fatalf("directory invariants: %v", err)
	}
	fmt.Println("\ndirectory + overlay invariants: OK")
}
