// Hotspot: a small-scale rendition of the paper's Figure 8 — a burst
// of requests concentrates on one subtree (the S3L library, then
// ScaLAPACK), and the MLT load balancer re-spreads the hot nodes over
// peers, recovering the satisfaction ratio. Run it to watch the
// adaptation unit by unit.
package main

import (
	"fmt"
	"log"

	"dlpt/internal/sim"
	"dlpt/internal/workload"
)

func main() {
	base := sim.DefaultConfig()
	base.Runs = 5
	base.NumPeers = 40
	base.NumKeys = 400
	base.GrowUnits = 5
	base.TimeUnits = 60
	base.LoadFraction = 0.4
	base.Picker = &workload.HotSpot{Phases: []workload.Phase{
		{From: 15, To: 30, Prefix: "s3l", Bias: 0.9},
		{From: 30, To: 45, Prefix: "p", Bias: 0.9},
	}}

	run := func(strategy string) *sim.Result {
		cfg := base
		cfg.Strategy = strategy
		res, err := sim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	mlt := run("MLT")
	nolb := run("NoLB")

	fmt.Println("satisfied requests (%) per time unit — hot spots at t=15 (S3L) and t=30 (ScaLAPACK):")
	fmt.Printf("%4s  %8s  %8s\n", "t", "MLT", "NoLB")
	m, n := mlt.Satisfaction.Means(), nolb.Satisfaction.Means()
	for t := 5; t < base.TimeUnits; t += 2 {
		marker := ""
		switch t {
		case 15:
			marker = "  <- S3L hot spot begins"
		case 31:
			marker = "  <- ScaLAPACK hot spot begins"
		case 45:
			marker = "  <- uniform again"
		}
		fmt.Printf("%4d  %7.1f%%  %7.1f%%%s\n", t, m[t], n[t], marker)
	}
	fmt.Printf("\nsteady-state mean: MLT %.1f%%  NoLB %.1f%%\n",
		mlt.SteadyStateSatisfaction(), nolb.SteadyStateSatisfaction())
	moves := 0.0
	for _, v := range mlt.LBMoves.Means() {
		moves += v
	}
	fmt.Printf("MLT boundary moves per run: %.0f\n", moves)
}
