package dlpt

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dlpt/internal/obs"
)

// scrapeMetrics GETs the exposition endpoint and returns the body.
func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// parseExposition checks Prometheus text-format shape and returns the
// series map. Every non-comment line must be "name{labels} value".
func parseExposition(t *testing.T, text string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		out[line[:i]] = line[i+1:]
	}
	return out
}

// TestMetricsEndpointChurnSoak scrapes /metrics while the overlay
// churns: counters stay monotonic through crash/recover, and balance
// renames never leave stale per-peer visit-load series behind.
func TestMetricsEndpointChurnSoak(t *testing.T) {
	ctx := context.Background()
	ob := NewObservability()
	reg := newRegistry(t, 8, WithEngine(EngineTCP), WithObservability(ob))
	srv := httptest.NewServer(obs.Handler(ob.Registry, ob.Trace))
	defer srv.Close()

	var regs []Registration
	for i := 0; i < 60; i++ {
		name := fmt.Sprintf("svc%02d", i)
		regs = append(regs, Registration{Name: name, Endpoint: "ep:" + name})
	}
	if err := reg.RegisterBatch(ctx, regs); err != nil {
		t.Fatal(err)
	}

	monotonic := []string{
		obs.SeriesVisits,
		obs.SeriesHops + `{phase="relay"}`,
		obs.SeriesPoolDials,
		obs.SeriesTopologyEvents + `{event="join"}`,
	}
	prev := make(map[string]float64)
	checkScrape := func(round string) map[string]string {
		t.Helper()
		series := parseExposition(t, scrapeMetrics(t, srv.URL))
		for _, name := range monotonic {
			raw, ok := series[name]
			if !ok {
				t.Fatalf("%s: series %s missing from exposition", round, name)
			}
			var v float64
			if _, err := fmt.Sscanf(raw, "%g", &v); err != nil {
				t.Fatalf("%s: %s value %q: %v", round, name, raw, err)
			}
			if v < prev[name] {
				t.Fatalf("%s: counter %s went backwards: %g -> %g", round, name, prev[name], v)
			}
			prev[name] = v
		}
		return series
	}

	for round := 0; round < 3; round++ {
		for i := 0; i < 20; i++ {
			name := fmt.Sprintf("svc%02d", (round*17+i)%60)
			if _, found, err := reg.Discover(ctx, name); err != nil || !found {
				t.Fatalf("discover %s: %v found=%v", name, err, found)
			}
		}
		if _, err := reg.Replicate(ctx); err != nil {
			t.Fatal(err)
		}
		checkScrape(fmt.Sprintf("round %d pre-churn", round))

		// Crash a peer mid-soak and recover from replicas.
		infos, err := reg.Peers(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.CrashPeer(ctx, infos[len(infos)-1].ID); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Recover(ctx); err != nil {
			t.Fatal(err)
		}
		checkScrape(fmt.Sprintf("round %d post-recover", round))

		// Balance renames peers; visit-load series must follow the new
		// names rather than accumulating stale ones.
		if _, err := reg.Balance(ctx, "MLT"); err != nil {
			t.Fatal(err)
		}
		series := checkScrape(fmt.Sprintf("round %d post-balance", round))
		// Label values arrive escaped in the exposition; escape the live
		// ids the same way before comparing.
		escape := func(v string) string {
			v = strings.ReplaceAll(v, `\`, `\\`)
			v = strings.ReplaceAll(v, "\n", `\n`)
			return strings.ReplaceAll(v, `"`, `\"`)
		}
		livePeers := make(map[string]bool)
		infos, err = reg.Peers(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, pi := range infos {
			livePeers[escape(pi.ID)] = true
		}
		loadSeries := 0
		prefix := obs.SeriesVisitLoad + `{peer="`
		for name := range series {
			if !strings.HasPrefix(name, prefix) {
				continue
			}
			loadSeries++
			peer := strings.TrimSuffix(name[len(prefix):], `"}`)
			if !livePeers[peer] {
				t.Fatalf("stale visit-load series for departed peer %q after balance", peer)
			}
		}
		if loadSeries == 0 {
			t.Fatal("no per-peer visit-load series exported")
		}
	}

	// The soak must have produced the tentpole series with live data.
	final := parseExposition(t, scrapeMetrics(t, srv.URL))
	for _, name := range []string{
		obs.SeriesHopLatency + `_count{phase="relay"}`,
		obs.SeriesQueryLatency + "_count",
		obs.SeriesReplicationLag,
		obs.SeriesReplicaTransfers,
		obs.SeriesPeerNodes,
	} {
		if _, ok := final[name]; ok {
			continue
		}
		// Some series are label-variadic; accept any series of the family.
		fam := name
		if i := strings.IndexByte(fam, '{'); i >= 0 {
			fam = fam[:i]
		}
		found := false
		for k := range final {
			if k == fam || strings.HasPrefix(k, fam+"{") {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("series family %s missing from final scrape", fam)
		}
	}

	// /debug/trace serves the recorded span forest as JSON.
	resp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.HasPrefix(string(body), "[") {
		t.Fatalf("/debug/trace is not a JSON list: %.80s", body)
	}
	if !strings.Contains(string(body), `"phase"`) {
		t.Fatal("no spans recorded during the soak")
	}
}

// TestObsSnapshotWithoutObservability pins the opt-out: a registry
// built without WithObservability reports an empty snapshot and nil
// bundle rather than failing.
func TestObsSnapshotWithoutObservability(t *testing.T) {
	reg := newRegistry(t, 4, WithEngine(EngineLocal))
	if reg.Observability() != nil {
		t.Fatal("unexpected observability bundle")
	}
	if snap := reg.ObsSnapshot(); len(snap) != 0 {
		t.Fatalf("snapshot has %d series without observability", len(snap))
	}
	ctx := context.Background()
	if err := reg.Register(ctx, "svc", "ep"); err != nil {
		t.Fatal(err)
	}
	if _, found, err := reg.Discover(ctx, "svc"); err != nil || !found {
		t.Fatalf("discover uninstrumented: %v %v", err, found)
	}
}
