package dlpt

import (
	"math/rand"
	"sync"

	"dlpt/internal/attrs"
	"dlpt/internal/core"
	"dlpt/internal/keys"
)

// Resource describes a service registered in a Directory: an
// identifier plus attribute pairs ("cpu" -> "x86_64").
type Resource struct {
	ID         string
	Attributes map[string]string
}

// Where is one conjunct of a multi-attribute query. Set exactly one
// of Equals / HasPrefix / the Min+Max pair; an empty predicate tests
// attribute presence.
type Where struct {
	Attr      string
	Equals    string
	HasPrefix string
	Min, Max  string
}

// QueryStats reports the routing cost of a directory query.
type QueryStats struct {
	TreeHops     int
	CrossPeerOps int
}

// Directory is a multi-attribute resource-discovery overlay: each
// attribute pair is declared as an "attr=value" key in a DLPT prefix
// tree, and conjunctive queries intersect per-predicate matches, each
// resolved by routed tree traversal (exact, prefix or range). Safe
// for concurrent use.
type Directory struct {
	mu    sync.Mutex
	inner *attrs.Directory
}

// NewDirectory starts a directory over a fresh overlay of numPeers
// peers.
func NewDirectory(numPeers int, opts ...Option) (*Directory, error) {
	o := options{alphabet: keys.PrintableASCII, seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	n := numPeers
	if o.capacities != nil {
		n = len(o.capacities)
	}
	rng := rand.New(rand.NewSource(o.seed))
	net := core.NewNetwork(o.alphabet, core.PlacementLexicographic)
	for i := 0; i < n; i++ {
		id := o.alphabet.RandomKey(rng, 12, 12)
		capacity := 1 << 20
		if o.capacities != nil {
			capacity = o.capacities[i]
		}
		if err := net.JoinPeer(id, capacity, rng); err != nil {
			return nil, err
		}
	}
	return &Directory{inner: attrs.NewDirectory(net, rng)}, nil
}

// RegisterResource declares a resource with its attributes.
func (d *Directory) RegisterResource(res Resource) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.Register(attrs.Service{ID: res.ID, Attributes: res.Attributes})
}

// UnregisterResource withdraws a resource, reporting whether it was
// registered.
func (d *Directory) UnregisterResource(id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.Unregister(id)
}

// Find returns the ids of resources matching every predicate, in
// order, with the aggregate routing cost.
func (d *Directory) Find(preds ...Where) ([]string, QueryStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ps := make([]attrs.Predicate, len(preds))
	for i, p := range preds {
		ps[i] = attrs.Predicate{
			Attr: p.Attr, Exact: p.Equals, Prefix: p.HasPrefix,
			Lo: p.Min, Hi: p.Max,
		}
	}
	ids, cost, err := d.inner.Query(ps...)
	return ids, QueryStats{TreeHops: cost.LogicalHops, CrossPeerOps: cost.PhysicalHops}, err
}

// Describe returns the registered attributes of a resource.
func (d *Directory) Describe(id string) (map[string]string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.Describe(id)
}

// NumResources returns the number of registered resources.
func (d *Directory) NumResources() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.NumServices()
}

// Validate cross-checks the directory and overlay invariants.
func (d *Directory) Validate() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.Validate()
}
