package dlpt

import (
	"context"
	"iter"

	"dlpt/internal/attrs"
	"dlpt/internal/persist"
)

// Resource describes a service registered in a Directory: an
// identifier plus attribute pairs ("cpu" -> "x86_64").
type Resource struct {
	ID         string
	Attributes map[string]string
}

// Where is one conjunct of a multi-attribute query. Set exactly one
// of Equals / HasPrefix / the Min+Max pair; an empty predicate tests
// attribute presence.
type Where struct {
	Attr      string
	Equals    string
	HasPrefix string
	Min, Max  string
}

// QueryStats reports the routing cost of a directory query.
type QueryStats struct {
	TreeHops     int
	CrossPeerOps int
}

// Directory is a multi-attribute resource-discovery overlay: each
// attribute pair is declared as an "attr=value" key in a DLPT prefix
// tree, and conjunctive queries intersect per-predicate matches, each
// resolved by routed tree traversal (exact, prefix or range) through
// the configured execution engine. Safe for concurrent use: queries
// run concurrently on the engine's read side instead of serializing
// behind a directory-wide lock. Close releases the engine.
type Directory struct {
	eng   Engine
	inner *attrs.Directory
	store *persist.Store // owned persistence store; nil without WithPersistence
}

// NewDirectory starts a directory over a fresh overlay of numPeers
// peers, backed by the selected engine (EngineLive unless WithEngine
// says otherwise).
func NewDirectory(numPeers int, opts ...Option) (*Directory, error) {
	eng, _, store, _, err := buildEngine(numPeers, opts, false)
	if err != nil {
		return nil, err
	}
	return &Directory{eng: eng, inner: attrs.NewDirectory(eng), store: store}, nil
}

// NewDirectoryWithEngine wraps an already-running engine in a
// Directory. The Directory takes ownership: Close closes the engine.
func NewDirectoryWithEngine(eng Engine) *Directory {
	return &Directory{eng: eng, inner: attrs.NewDirectory(eng)}
}

// RestartDirectory rebuilds a durable directory from its persistence
// directory after every peer died — the Directory counterpart of
// Restart. The overlay restores exactly as Restart does, and the
// per-resource attribute descriptions (backing Describe,
// UnregisterResource and Validate) are rehydrated from the restored
// attribute tree: every "attr=value" key's ids fold back into their
// resource maps.
func RestartDirectory(dir string, opts ...Option) (*Directory, error) {
	opts = append(append([]Option(nil), opts...), WithPersistence(dir))
	eng, _, store, _, err := buildEngine(0, opts, true)
	if err != nil {
		return nil, err
	}
	d := &Directory{eng: eng, inner: attrs.NewDirectory(eng), store: store}
	if err := d.inner.Rehydrate(context.Background()); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

// Engine exposes the backing execution engine.
func (d *Directory) Engine() Engine { return d.eng }

// Close shuts the directory's overlay down (and, on a durable
// overlay, the persistence store's journal). It is idempotent.
func (d *Directory) Close() error {
	err := d.eng.Close()
	if d.store != nil {
		if serr := d.store.Close(); err == nil {
			err = serr
		}
	}
	return err
}

// RegisterResource declares a resource with its attributes.
func (d *Directory) RegisterResource(ctx context.Context, res Resource) error {
	return d.inner.Register(ctx, attrs.Service{ID: res.ID, Attributes: res.Attributes})
}

// UnregisterResource withdraws a resource, reporting whether it was
// registered.
func (d *Directory) UnregisterResource(ctx context.Context, id string) (bool, error) {
	return d.inner.Unregister(ctx, id)
}

// Find returns the ids of resources matching every predicate, in
// order, with the aggregate routing cost. It is a thin wrapper
// draining the same incremental evaluation FindSeq streams.
func (d *Directory) Find(ctx context.Context, preds ...Where) ([]string, QueryStats, error) {
	ids, cost, err := d.inner.Query(ctx, toPredicates(preds)...)
	return ids, QueryStats{TreeHops: cost.LogicalHops, CrossPeerOps: cost.PhysicalHops}, err
}

// FindSeq streams the ids of resources matching every predicate in
// ascending order. The conjunction evaluates as a sorted merge across
// per-predicate id streams: predicates materialize fewest-candidates
// first (each one's attribute keys discovered concurrently, every key
// exactly once), and a running intersection that empties
// short-circuits the remaining predicates before they issue any
// discovery.
func (d *Directory) FindSeq(ctx context.Context, preds ...Where) iter.Seq2[string, error] {
	return iter.Seq2[string, error](d.inner.QuerySeq(ctx, toPredicates(preds)...))
}

func toPredicates(preds []Where) []attrs.Predicate {
	ps := make([]attrs.Predicate, len(preds))
	for i, p := range preds {
		ps[i] = attrs.Predicate{
			Attr: p.Attr, Exact: p.Equals, Prefix: p.HasPrefix,
			Lo: p.Min, Hi: p.Max,
		}
	}
	return ps
}

// Describe returns the registered attributes of a resource.
func (d *Directory) Describe(id string) (map[string]string, bool) {
	return d.inner.Describe(id)
}

// NumResources returns the number of registered resources.
func (d *Directory) NumResources() int {
	return d.inner.NumServices()
}

// Validate cross-checks the directory and overlay invariants.
func (d *Directory) Validate(ctx context.Context) error {
	return d.inner.Validate(ctx)
}

// AddPeerWithCapacity grows the directory's overlay by one peer of
// the given capacity and returns its identifier.
func (d *Directory) AddPeerWithCapacity(ctx context.Context, capacity int) (string, error) {
	return d.eng.AddPeer(ctx, capacity)
}

// RemovePeer removes a peer gracefully; the resource catalogue is
// unchanged.
func (d *Directory) RemovePeer(ctx context.Context, id string) error {
	return d.eng.RemovePeer(ctx, id)
}

// CrashPeer fails a peer abruptly. Until Recover runs, queries may
// miss resources and registrations must not be issued.
func (d *Directory) CrashPeer(ctx context.Context, id string) error {
	return d.eng.CrashPeer(ctx, id)
}

// Recover restores crashed attribute-tree state from the replica
// store.
func (d *Directory) Recover(ctx context.Context) (RecoveryReport, error) {
	return d.eng.Recover(ctx)
}

// Replicate snapshots the attribute tree to the replica store.
func (d *Directory) Replicate(ctx context.Context) (int, error) {
	return d.eng.Replicate(ctx)
}

// Peers lists the live peers in ring order.
func (d *Directory) Peers(ctx context.Context) ([]PeerInfo, error) {
	return d.eng.Peers(ctx)
}

// MembershipStats reports the overlay's peer-lifecycle and
// replication counters.
func (d *Directory) MembershipStats(ctx context.Context) (MembershipStats, error) {
	return d.eng.MembershipStats(ctx)
}
