package dlpt

import (
	"reflect"
	"sync"
	"testing"

	"dlpt/internal/keys"
)

func newRegistry(t *testing.T, peers int, opts ...Option) *Registry {
	t.Helper()
	r, err := New(peers, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatalf("numPeers=0 must fail")
	}
	r := newRegistry(t, 1, WithCapacities([]int{5, 5, 5}))
	if r.NumPeers() != 3 {
		t.Fatalf("WithCapacities must override peer count: %d", r.NumPeers())
	}
}

func TestRegisterDiscover(t *testing.T) {
	r := newRegistry(t, 5, WithSeed(7))
	if err := r.Register("DGEMM", "node-a:9000"); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("DGEMM", "node-b:9000"); err != nil {
		t.Fatal(err)
	}
	svc, ok, err := r.Discover("DGEMM")
	if err != nil || !ok {
		t.Fatalf("Discover: %v %v", ok, err)
	}
	want := []string{"node-a:9000", "node-b:9000"}
	if !reflect.DeepEqual(svc.Endpoints, want) {
		t.Fatalf("Endpoints = %v", svc.Endpoints)
	}
	if svc.Name != "DGEMM" {
		t.Fatalf("Name = %q", svc.Name)
	}
	if _, ok, _ := r.Discover("SGEMM"); ok {
		t.Fatalf("undeclared service found")
	}
}

func TestRegisterValidation(t *testing.T) {
	r := newRegistry(t, 2)
	if err := r.Register("", "x"); err == nil {
		t.Fatalf("empty name must fail")
	}
	if err := r.Register("tab\tname", "x"); err == nil {
		t.Fatalf("name outside alphabet must fail")
	}
}

func TestUnregister(t *testing.T) {
	r := newRegistry(t, 3)
	_ = r.Register("saxpy", "e1")
	if !r.Unregister("saxpy", "e1") {
		t.Fatalf("unregister failed")
	}
	if r.Unregister("saxpy", "e1") {
		t.Fatalf("double unregister must report false")
	}
	if _, ok, _ := r.Discover("saxpy"); ok {
		t.Fatalf("service still discoverable")
	}
}

func TestCompleteAndRange(t *testing.T) {
	r := newRegistry(t, 4)
	for _, s := range []string{"sgemm", "sgemv", "strsm", "dgemm", "dgemv"} {
		if err := r.Register(s, "ep"); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Complete("sge", 0); !reflect.DeepEqual(got, []string{"sgemm", "sgemv"}) {
		t.Fatalf("Complete = %v", got)
	}
	if got := r.Complete("sge", 1); len(got) != 1 {
		t.Fatalf("limit ignored: %v", got)
	}
	if got := r.Range("d", "e", 0); !reflect.DeepEqual(got, []string{"dgemm", "dgemv"}) {
		t.Fatalf("Range = %v", got)
	}
	if got := r.Services(); len(got) != 5 {
		t.Fatalf("Services = %v", got)
	}
}

func TestEndpoints(t *testing.T) {
	r := newRegistry(t, 3)
	_ = r.Register("fft", "h2")
	_ = r.Register("fft", "h1")
	if got := r.Endpoints("fft"); !reflect.DeepEqual(got, []string{"h1", "h2"}) {
		t.Fatalf("Endpoints = %v", got)
	}
	if got := r.Endpoints("missing"); got != nil {
		t.Fatalf("missing service endpoints = %v", got)
	}
}

func TestAddPeerAndValidate(t *testing.T) {
	r := newRegistry(t, 3)
	for _, s := range []string{"a1", "a2", "b1", "b2"} {
		if err := r.Register(s, "ep"); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.AddPeer(); err != nil {
		t.Fatal(err)
	}
	if r.NumPeers() != 4 {
		t.Fatalf("NumPeers = %d", r.NumPeers())
	}
	if r.NumNodes() == 0 {
		t.Fatalf("NumNodes = 0")
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithAlphabet(t *testing.T) {
	r := newRegistry(t, 2, WithAlphabet(keys.LowerAlnum))
	if err := r.Register("ok_name", "e"); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("Bad", "e"); err == nil {
		t.Fatalf("uppercase outside LowerAlnum must fail")
	}
}

func TestCloseRejectsOperations(t *testing.T) {
	r, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	_ = r.Register("x1", "e")
	r.Close()
	r.Close() // idempotent
	if err := r.Register("x2", "e"); err != ErrClosed {
		t.Fatalf("Register after close = %v", err)
	}
	if _, _, err := r.Discover("x1"); err != ErrClosed {
		t.Fatalf("Discover after close = %v", err)
	}
}

func TestConcurrentAPI(t *testing.T) {
	r := newRegistry(t, 6)
	names := []string{"dgemm", "dgemv", "sgemm", "sgemv", "saxpy", "daxpy"}
	for _, n := range names {
		if err := r.Register(n, "seed"); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				n := names[(w+i)%len(names)]
				if _, ok, err := r.Discover(n); err != nil || !ok {
					t.Errorf("discover %q: %v %v", n, ok, err)
					return
				}
				if i%10 == 0 {
					_ = r.Complete("s", 0)
				}
			}
		}(w)
	}
	wg.Wait()
}
