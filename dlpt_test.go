package dlpt

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"dlpt/engine"
	enginelocal "dlpt/engine/local"
	"dlpt/internal/keys"
)

// engineKinds are the shipped backends; API tests run over each.
var engineKinds = []EngineKind{EngineLocal, EngineLive, EngineTCP}

func newRegistry(t *testing.T, peers int, opts ...Option) *Registry {
	t.Helper()
	r, err := New(peers, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// forEachEngine runs fn once per engine kind as a subtest.
func forEachEngine(t *testing.T, fn func(t *testing.T, kind EngineKind)) {
	for _, kind := range engineKinds {
		t.Run(string(kind), func(t *testing.T) { fn(t, kind) })
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatalf("numPeers=0 must fail")
	}
	if _, err := New(2, WithEngine("warp")); err == nil {
		t.Fatalf("unknown engine must fail")
	}
	r := newRegistry(t, 1, WithCapacities([]int{5, 5, 5}))
	if r.NumPeers() != 3 {
		t.Fatalf("WithCapacities must override peer count: %d", r.NumPeers())
	}
}

func TestRegisterDiscover(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		r := newRegistry(t, 5, WithSeed(7), WithEngine(kind))
		if r.Engine().Name() != string(kind) {
			t.Fatalf("engine name = %q, want %q", r.Engine().Name(), kind)
		}
		if err := r.Register(ctx, "DGEMM", "node-a:9000"); err != nil {
			t.Fatal(err)
		}
		if err := r.Register(ctx, "DGEMM", "node-b:9000"); err != nil {
			t.Fatal(err)
		}
		svc, ok, err := r.Discover(ctx, "DGEMM")
		if err != nil || !ok {
			t.Fatalf("Discover: %v %v", ok, err)
		}
		want := []string{"node-a:9000", "node-b:9000"}
		if !reflect.DeepEqual(svc.Endpoints, want) {
			t.Fatalf("Endpoints = %v", svc.Endpoints)
		}
		if svc.Name != "DGEMM" {
			t.Fatalf("Name = %q", svc.Name)
		}
		if _, ok, _ := r.Discover(ctx, "SGEMM"); ok {
			t.Fatalf("undeclared service found")
		}
	})
}

func TestRegisterBatch(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		r := newRegistry(t, 4, WithEngine(kind))
		batch := []Registration{
			{Name: "sgemm", Endpoint: "e1"},
			{Name: "sgemv", Endpoint: "e2"},
			{Name: "dgemm", Endpoint: "e3"},
		}
		if err := r.RegisterBatch(ctx, batch); err != nil {
			t.Fatal(err)
		}
		svcs, err := r.Services(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(svcs, []string{"dgemm", "sgemm", "sgemv"}) {
			t.Fatalf("Services = %v", svcs)
		}
		if err := r.RegisterBatch(ctx, []Registration{{Name: "", Endpoint: "x"}}); err == nil {
			t.Fatalf("batch with empty name must fail")
		}
	})
}

func TestRegisterValidation(t *testing.T) {
	ctx := context.Background()
	r := newRegistry(t, 2)
	if err := r.Register(ctx, "", "x"); err == nil {
		t.Fatalf("empty name must fail")
	}
	if err := r.Register(ctx, "tab\tname", "x"); err == nil {
		t.Fatalf("name outside alphabet must fail")
	}
}

func TestUnregister(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		r := newRegistry(t, 3, WithEngine(kind))
		_ = r.Register(ctx, "saxpy", "e1")
		was, err := r.Unregister(ctx, "saxpy", "e1")
		if err != nil || !was {
			t.Fatalf("unregister = %v, %v", was, err)
		}
		if was, _ := r.Unregister(ctx, "saxpy", "e1"); was {
			t.Fatalf("double unregister must report false")
		}
		if _, ok, _ := r.Discover(ctx, "saxpy"); ok {
			t.Fatalf("service still discoverable")
		}
	})
}

func TestCompleteAndRange(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		r := newRegistry(t, 4, WithEngine(kind))
		for _, s := range []string{"sgemm", "sgemv", "strsm", "dgemm", "dgemv"} {
			if err := r.Register(ctx, s, "ep"); err != nil {
				t.Fatal(err)
			}
		}
		got, err := r.Complete(ctx, "sge", 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, []string{"sgemm", "sgemv"}) {
			t.Fatalf("Complete = %v", got)
		}
		if got, _ := r.Complete(ctx, "sge", 1); len(got) != 1 {
			t.Fatalf("limit ignored: %v", got)
		}
		got, err = r.Range(ctx, "d", "e", 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, []string{"dgemm", "dgemv"}) {
			t.Fatalf("Range = %v", got)
		}
		if got, _ := r.Services(ctx); len(got) != 5 {
			t.Fatalf("Services = %v", got)
		}
	})
}

func TestEndpoints(t *testing.T) {
	ctx := context.Background()
	r := newRegistry(t, 3)
	_ = r.Register(ctx, "fft", "h2")
	_ = r.Register(ctx, "fft", "h1")
	got, err := r.Endpoints(ctx, "fft")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"h1", "h2"}) {
		t.Fatalf("Endpoints = %v", got)
	}
	if got, _ := r.Endpoints(ctx, "missing"); got != nil {
		t.Fatalf("missing service endpoints = %v", got)
	}
}

func TestAddPeerAndValidate(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		r := newRegistry(t, 3, WithEngine(kind))
		for _, s := range []string{"a1", "a2", "b1", "b2"} {
			if err := r.Register(ctx, s, "ep"); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.AddPeer(ctx); err != nil {
			t.Fatal(err)
		}
		if r.NumPeers() != 4 {
			t.Fatalf("NumPeers = %d", r.NumPeers())
		}
		if r.NumNodes() == 0 {
			t.Fatalf("NumNodes = 0")
		}
		if err := r.Validate(ctx); err != nil {
			t.Fatal(err)
		}
	})
}

func TestWithAlphabet(t *testing.T) {
	ctx := context.Background()
	r := newRegistry(t, 2, WithAlphabet(keys.LowerAlnum))
	if err := r.Register(ctx, "ok_name", "e"); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(ctx, "Bad", "e"); err == nil {
		t.Fatalf("uppercase outside LowerAlnum must fail")
	}
}

func TestCloseRejectsOperations(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		r, err := New(2, WithEngine(kind))
		if err != nil {
			t.Fatal(err)
		}
		_ = r.Register(ctx, "x1", "e")
		r.Close()
		r.Close() // idempotent
		if err := r.Register(ctx, "x2", "e"); !errors.Is(err, ErrClosed) {
			t.Fatalf("Register after close = %v", err)
		}
		if _, _, err := r.Discover(ctx, "x1"); !errors.Is(err, ErrClosed) {
			t.Fatalf("Discover after close = %v", err)
		}
		if _, err := r.Unregister(ctx, "x1", "e"); !errors.Is(err, ErrClosed) {
			t.Fatalf("Unregister after close = %v", err)
		}
		if _, err := r.Services(ctx); !errors.Is(err, ErrClosed) {
			t.Fatalf("Services after close = %v", err)
		}
		if err := r.Validate(ctx); !errors.Is(err, ErrClosed) {
			t.Fatalf("Validate after close = %v", err)
		}
	})
}

func TestContextCancelledUpFront(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		r := newRegistry(t, 3, WithEngine(kind))
		_ = r.Register(context.Background(), "k1", "e")
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, _, err := r.Discover(ctx, "k1"); !errors.Is(err, context.Canceled) {
			t.Fatalf("Discover with cancelled ctx = %v", err)
		}
		if err := r.Register(ctx, "k2", "e"); !errors.Is(err, context.Canceled) {
			t.Fatalf("Register with cancelled ctx = %v", err)
		}
		if _, err := r.Complete(ctx, "k", 0); !errors.Is(err, context.Canceled) {
			t.Fatalf("Complete with cancelled ctx = %v", err)
		}
		if _, err := r.Range(ctx, "a", "z", 0); !errors.Is(err, context.Canceled) {
			t.Fatalf("Range with cancelled ctx = %v", err)
		}
	})
}

func TestWithEngineFactory(t *testing.T) {
	called := false
	r, err := New(2, WithEngineFactory(func(cfg engine.Config) (Engine, error) {
		called = true
		return enginelocal.Factory(cfg)
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !called {
		t.Fatalf("custom factory not invoked")
	}
	ctx := context.Background()
	if err := r.Register(ctx, "k", "v"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := r.Discover(ctx, "k"); err != nil || !ok {
		t.Fatalf("Discover over custom factory: %v %v", ok, err)
	}
}

func TestConcurrentAPI(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		r := newRegistry(t, 6, WithEngine(kind))
		names := []string{"dgemm", "dgemv", "sgemm", "sgemv", "saxpy", "daxpy"}
		for _, n := range names {
			if err := r.Register(ctx, n, "seed"); err != nil {
				t.Fatal(err)
			}
		}
		iters := 60
		if kind == EngineTCP {
			iters = 20 // each discovery is a chain of real TCP dials
		}
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					n := names[(w+i)%len(names)]
					if _, ok, err := r.Discover(ctx, n); err != nil || !ok {
						t.Errorf("discover %q: %v %v", n, ok, err)
						return
					}
					if i%10 == 0 {
						if _, err := r.Complete(ctx, "s", 0); err != nil {
							t.Errorf("complete: %v", err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
	})
}
