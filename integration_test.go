package dlpt

// Integration tests spanning the module: protocol core + load
// balancing + simulation + replication + comparators working
// together, at small scale with full invariant validation.
import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dlpt/engine/local"
	"dlpt/internal/attrs"
	"dlpt/internal/core"
	"dlpt/internal/dht"
	"dlpt/internal/experiments"
	"dlpt/internal/keys"
	"dlpt/internal/lb"
	"dlpt/internal/pht"
	"dlpt/internal/sim"
	"dlpt/internal/transport"
	"dlpt/internal/workload"
)

// TestIntegrationLifecycles drives one overlay through its whole
// life: bootstrap, growth, balancing, churn, crash, recovery,
// queries — validating invariants at every phase boundary.
func TestIntegrationLifecycle(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	net := core.NewNetwork(keys.LowerAlnum, core.PlacementLexicographic)

	// Phase 1: bootstrap 30 peers with heterogeneous capacities.
	caps := workload.Capacities(r, 30, 10, 4)
	for _, cp := range caps {
		if err := net.JoinPeer(keys.LowerAlnum.RandomKey(r, 12, 12), cp, r); err != nil {
			t.Fatal(err)
		}
	}
	// Phase 2: declare the grid catalogue.
	corpus := workload.GridCorpus(450)
	for _, k := range corpus {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Validate(); err != nil {
		t.Fatalf("after growth: %v", err)
	}

	// Phase 3: traffic + MLT balancing rounds.
	picker := workload.Figure8Schedule()
	for unit := 0; unit < 8; unit++ {
		net.ResetUnit()
		for i := 0; i < 400; i++ {
			net.DiscoverRandom(picker.Pick(r, corpus, unit*10), true, r)
		}
		for _, id := range net.PeerIDs() {
			if _, err := (lb.MLT{}).Periodic(net, id); err != nil {
				t.Fatal(err)
			}
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("after balancing round %d: %v", unit, err)
		}
	}

	// Phase 4: churn with KC placement.
	kc := lb.KChoices{K: 4}
	for i := 0; i < 10; i++ {
		id := kc.PlaceJoin(net, r, 20)
		if err := net.JoinPeer(id, 20, r); err != nil {
			t.Fatal(err)
		}
		ids := net.PeerIDs()
		if err := net.LeavePeer(ids[r.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Validate(); err != nil {
		t.Fatalf("after churn: %v", err)
	}

	// Phase 5: crash two peers and recover from the successor
	// replicas, running the replication tick before each failure: a
	// crash also destroys the replica set the victim held for its
	// predecessor, so single-replica tolerance is one failure per
	// replication window.
	for i := 0; i < 2; i++ {
		net.Replicate()
		ids := net.PeerIDs()
		if err := net.FailPeer(ids[r.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
		if _, lost := net.Recover(); len(lost) != 0 {
			t.Fatalf("crash %d lost replicated nodes %v", i, lost)
		}
	}
	if err := net.Validate(); err != nil {
		t.Fatalf("after recovery: %v", err)
	}

	// Phase 6: every service still fully queryable, by all paths.
	for _, k := range corpus {
		if res := net.DiscoverRandom(k, false, r); !res.Satisfied {
			t.Fatalf("key %q lost", k)
		}
	}
	rangeRes := net.RangeQuery("s3l_", "s3l_zzzz", r)
	if len(rangeRes.Keys) == 0 {
		t.Fatalf("S3L range empty")
	}
	for _, k := range rangeRes.Keys {
		if !keys.IsPrefix("s3l_", k) {
			t.Fatalf("stray key %q in S3L range", k)
		}
	}
}

// TestIntegrationSimAgainstDirectDrive cross-checks the simulation
// engine's satisfaction accounting against a hand-driven overlay with
// the same structure of operations.
func TestIntegrationSimMatchesShape(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Runs = 2
	cfg.TimeUnits = 14
	cfg.NumPeers = 24
	cfg.NumKeys = 150
	cfg.GrowUnits = 4
	cfg.Validate = true
	for _, placement := range []core.Placement{core.PlacementLexicographic, core.PlacementHashed} {
		for _, strategy := range []string{"NoLB", "MLT", "KC", "EqualLoad"} {
			if placement == core.PlacementHashed && strategy != "NoLB" {
				continue
			}
			c := cfg
			c.Placement = placement
			c.Strategy = strategy
			res, err := sim.Run(c)
			if err != nil {
				t.Fatalf("%v/%s: %v", placement, strategy, err)
			}
			if res.TotalSatisfied == 0 {
				t.Fatalf("%v/%s satisfied nothing", placement, strategy)
			}
		}
	}
}

// TestIntegrationAttrsOverChurningOverlay keeps the multi-attribute
// directory consistent while the overlay churns underneath it.
func TestIntegrationAttrsOverChurn(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(103))
	net := core.NewNetwork(keys.PrintableASCII, core.PlacementLexicographic)
	for i := 0; i < 12; i++ {
		if err := net.JoinPeer(keys.LowerAlnum.RandomKey(r, 12, 12), 1<<20, r); err != nil {
			t.Fatal(err)
		}
	}
	// The directory queries through the engine facade while the test
	// churns the shared overlay directly underneath it.
	dir := attrs.NewDirectory(local.Wrap(net, 103))
	for i := 0; i < 40; i++ {
		svc := attrs.Service{
			ID: fmt.Sprintf("svc-%02d", i),
			Attributes: map[string]string{
				"cpu": []string{"x86_64", "arm64"}[i%2],
				"mem": fmt.Sprintf("%03d", 32*(1+i%8)),
			},
		}
		if err := dir.Register(ctx, svc); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			if err := net.JoinPeer(keys.LowerAlnum.RandomKey(r, 12, 12), 1<<20, r); err != nil {
				t.Fatal(err)
			}
		}
		if i%7 == 0 && net.NumPeers() > 4 {
			ids := net.PeerIDs()
			if err := net.LeavePeer(ids[r.Intn(len(ids))]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := dir.Validate(ctx); err != nil {
		t.Fatal(err)
	}
	ids, _, err := dir.Query(ctx,
		attrs.Predicate{Attr: "cpu", Exact: "x86_64"},
		attrs.Predicate{Attr: "mem", Lo: "064", Hi: "128"},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		a, _ := dir.Describe(id)
		if a["cpu"] != "x86_64" || a["mem"] < "064" || a["mem"] > "128" {
			t.Fatalf("query returned non-matching %q: %v", id, a)
		}
	}
}

// TestIntegrationComparatorsShareCorpus runs the three overlays on
// the identical key corpus and confirms all answer identically.
func TestIntegrationComparatorsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(104))
	corpus := workload.GridCorpus(120)
	absent := []keys.Key{"zz1", "zz2_routine", "aa"}

	// DLPT.
	net := core.NewNetwork(keys.LowerAlnum, core.PlacementLexicographic)
	for i := 0; i < 10; i++ {
		if err := net.JoinPeer(keys.LowerAlnum.RandomKey(r, 12, 12), 1<<20, r); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range corpus {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	// PHT.
	ring := dht.New()
	for i := 0; i < 10; i++ {
		if _, err := ring.Join(fmt.Sprintf("n-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	ph, err := pht.New(ring, 64, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range corpus {
		if err := ph.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range corpus {
		if res := net.DiscoverRandom(k, false, r); !res.Satisfied {
			t.Fatalf("DLPT misses %q", k)
		}
		if found, _ := ph.Lookup(k); !found {
			t.Fatalf("PHT misses %q", k)
		}
	}
	for _, k := range absent {
		if res := net.DiscoverRandom(k, false, r); res.Satisfied {
			t.Fatalf("DLPT phantom %q", k)
		}
		if found, _ := ph.Lookup(k); found {
			t.Fatalf("PHT phantom %q", k)
		}
	}
}

// TestIntegrationTCPAndFigures ties the wire transport to the
// experiment harness: a TCP overlay answers the same catalogue the
// quick Figure 4 experiment simulates.
func TestIntegrationTCPRuntime(t *testing.T) {
	c, err := transport.Start(keys.LowerAlnum, []int{1 << 20, 1 << 20, 1 << 20, 1 << 20}, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	spec := experiments.Figure4(true)
	corpus := workload.GridCorpus(spec.Base.NumKeys)[:60]
	for _, k := range corpus {
		if err := c.Register(k, string(k)); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range corpus[:15] {
		res, err := c.Discover(k)
		if err != nil || !res.Found {
			t.Fatalf("TCP discover %q: %v %v", k, res.Found, err)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
