package dlpt

// Limit semantics of Complete/Range and their streaming counterparts
// on the Registry: limit <= 0 means no limit, a limit beyond the
// match count returns every match, and a positive limit clips in
// lexicographic order — identically on every engine, with the slice
// methods pinned byte-identical to their streams. The streaming
// tests additionally pin limit pushdown (a limited stream visits a
// fraction of the nodes the full walk does), mid-stream cancellation,
// and that early consumer exit halts the TCP-side traversal.

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"dlpt/engine"
	enginetcp "dlpt/engine/tcp"
	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

func TestCompleteRangeLimits(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		reg := newRegistry(t, 4, WithSeed(9), WithEngine(kind))
		for _, name := range []string{"app1", "app2", "app3", "base", "apricot"} {
			if err := reg.Register(ctx, name, "ep://"+name); err != nil {
				t.Fatal(err)
			}
		}

		completes := []struct {
			prefix string
			limit  int
			want   []string
		}{
			{"app", 0, []string{"app1", "app2", "app3"}},
			{"app", -1, []string{"app1", "app2", "app3"}},
			{"app", 99, []string{"app1", "app2", "app3"}},
			{"app", 2, []string{"app1", "app2"}},
			{"app", 3, []string{"app1", "app2", "app3"}},
			{"ap", 1, []string{"app1"}},
			{"zzz", 0, nil},
			{"zzz", 5, nil},
		}
		for _, tc := range completes {
			got, err := reg.Complete(ctx, tc.prefix, tc.limit)
			if err != nil {
				t.Fatalf("complete(%q, %d): %v", tc.prefix, tc.limit, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("complete(%q, %d) = %v, want %v", tc.prefix, tc.limit, got, tc.want)
			}
		}

		ranges := []struct {
			lo, hi string
			limit  int
			want   []string
		}{
			{"app1", "app3", 0, []string{"app1", "app2", "app3"}},
			{"app1", "app3", -3, []string{"app1", "app2", "app3"}},
			{"app1", "app3", 100, []string{"app1", "app2", "app3"}},
			{"app1", "app3", 1, []string{"app1"}},
			{"a", "b", 2, []string{"app1", "app2"}},
			{"x", "z", 0, nil},
			{"x", "a", 4, nil}, // inverted bounds: empty
		}
		for _, tc := range ranges {
			got, err := reg.Range(ctx, tc.lo, tc.hi, tc.limit)
			if err != nil {
				t.Fatalf("range(%q, %q, %d): %v", tc.lo, tc.hi, tc.limit, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("range(%q, %q, %d) = %v, want %v", tc.lo, tc.hi, tc.limit, got, tc.want)
			}
		}
	})
}

// collectSeq drains an iterator into a slice, failing on any yielded
// error.
func collectSeq(t *testing.T, it func(func(string, error) bool)) []string {
	t.Helper()
	var out []string
	for k, err := range it {
		if err != nil {
			t.Fatalf("seq error after %d keys: %v", len(out), err)
		}
		out = append(out, k)
	}
	return out
}

// TestSeqMatchesSlice pins the streaming API byte-identical to the
// slice wrappers for every limit shape (0, negative, over-matches,
// exact, clipping) on every engine.
func TestSeqMatchesSlice(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		reg := newRegistry(t, 4, WithSeed(9), WithEngine(kind))
		for _, name := range []string{"app1", "app2", "app3", "base", "apricot"} {
			if err := reg.Register(ctx, name, "ep://"+name); err != nil {
				t.Fatal(err)
			}
		}
		for _, limit := range []int{0, -1, 1, 2, 3, 99} {
			for _, prefix := range []string{"app", "ap", "", "zzz"} {
				want, err := reg.Complete(ctx, prefix, limit)
				if err != nil {
					t.Fatal(err)
				}
				got := collectSeq(t, reg.CompleteSeq(ctx, prefix, limit))
				if !reflect.DeepEqual(got, want) {
					t.Errorf("CompleteSeq(%q, %d) = %v, slice = %v", prefix, limit, got, want)
				}
			}
			for _, r := range [][2]string{{"app1", "app3"}, {"a", "b"}, {"x", "z"}, {"x", "a"}} {
				want, err := reg.Range(ctx, r[0], r[1], limit)
				if err != nil {
					t.Fatal(err)
				}
				got := collectSeq(t, reg.RangeSeq(ctx, r[0], r[1], limit))
				if !reflect.DeepEqual(got, want) {
					t.Errorf("RangeSeq(%v, %d) = %v, slice = %v", r, limit, got, want)
				}
			}
		}
		want, err := reg.Services(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got := collectSeq(t, reg.ServicesSeq(ctx)); !reflect.DeepEqual(got, want) {
			t.Errorf("ServicesSeq = %v, Services = %v", got, want)
		}
	})
}

// TestSeqEarlyBreak stops consuming mid-stream on every engine: the
// iteration must terminate cleanly and the overlay must keep serving.
func TestSeqEarlyBreak(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		reg := newRegistry(t, 4, WithSeed(21), WithAlphabet(keys.LowerAlnum), WithEngine(kind))
		corpus := workload.GridCorpus(120)
		batch := make([]Registration, len(corpus))
		for i, k := range corpus {
			batch[i] = Registration{Name: string(k), Endpoint: "ep"}
		}
		if err := reg.RegisterBatch(ctx, batch); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			var got []string
			for k, err := range reg.CompleteSeq(ctx, "", 0) {
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, k)
				if len(got) == 2 {
					break
				}
			}
			if len(got) != 2 || got[0] >= got[1] {
				t.Fatalf("early break yielded %v", got)
			}
		}
		// The overlay must be fully functional after abandoned streams.
		if _, ok, err := reg.Discover(ctx, string(corpus[0])); err != nil || !ok {
			t.Fatalf("discover after early break: ok=%v err=%v", ok, err)
		}
		if err := reg.Validate(ctx); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSeqContextCancelMidStream cancels the query context while the
// stream is being consumed and requires the iterator to surface
// context.Canceled promptly — on every engine (the sequential
// generator checks the context at chunk boundaries).
func TestSeqContextCancelMidStream(t *testing.T) {
	for _, kind := range []EngineKind{EngineLocal, EngineLive, EngineTCP} {
		t.Run(string(kind), func(t *testing.T) {
			ctx := context.Background()
			reg := newRegistry(t, 4, WithSeed(23), WithAlphabet(keys.LowerAlnum), WithEngine(kind))
			corpus := workload.GridCorpus(3000)
			batch := make([]Registration, len(corpus))
			for i, k := range corpus {
				batch[i] = Registration{Name: string(k), Endpoint: "ep"}
			}
			if err := reg.RegisterBatch(ctx, batch); err != nil {
				t.Fatal(err)
			}
			cctx, cancel := context.WithCancel(ctx)
			defer cancel()
			var seen int
			var seqErr error
			for k, err := range reg.CompleteSeq(cctx, "", 0) {
				if err != nil {
					seqErr = err
					break
				}
				_ = k
				seen++
				if seen == 3 {
					cancel()
				}
				if seen > len(corpus) {
					t.Fatal("stream outlived its catalogue")
				}
			}
			if !errors.Is(seqErr, context.Canceled) {
				t.Fatalf("after cancel: err=%v (saw %d keys)", seqErr, seen)
			}
			// A fresh context must work; the engine survived.
			if _, ok, err := reg.Discover(ctx, string(corpus[0])); err != nil || !ok {
				t.Fatalf("discover after cancel: ok=%v err=%v", ok, err)
			}
		})
	}
}

// registerLargeCorpus registers n keys and returns the corpus.
func registerLargeCorpus(t *testing.T, reg *Registry, n int) []keys.Key {
	t.Helper()
	corpus := workload.GridCorpus(n)
	batch := make([]Registration, len(corpus))
	for i, k := range corpus {
		batch[i] = Registration{Name: string(k), Endpoint: "ep"}
	}
	if err := reg.RegisterBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	return corpus
}

// TestLimitPushdownVisitsFewerNodes is the acceptance check of the
// streaming redesign: on a 10k-key workload, a limit-10 completion
// visits asymptotically fewer tree nodes and hops than the full walk
// — on every engine, asserted through the stream's hop stats.
func TestLimitPushdownVisitsFewerNodes(t *testing.T) {
	const nkeys = 10000
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		reg := newRegistry(t, 16, WithSeed(31), WithAlphabet(keys.LowerAlnum), WithEngine(kind))
		registerLargeCorpus(t, reg, nkeys)
		eng := reg.Engine()

		drainStats := func(q engine.Query) ([]string, engine.QueryStats) {
			s, err := eng.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			var ks []string
			for {
				k, ok := s.Next()
				if !ok {
					break
				}
				ks = append(ks, k)
			}
			if err := s.Err(); err != nil {
				t.Fatal(err)
			}
			return ks, s.Stats()
		}

		fullKeys, fullStats := drainStats(engine.Query{Kind: engine.QueryComplete})
		if len(fullKeys) != nkeys {
			t.Fatalf("full walk yielded %d keys, want %d", len(fullKeys), nkeys)
		}
		if fullStats.NodesVisited < nkeys {
			t.Fatalf("full walk visited %d nodes over %d keys", fullStats.NodesVisited, nkeys)
		}
		limKeys, limStats := drainStats(engine.Query{Kind: engine.QueryComplete, Limit: 10})
		if !reflect.DeepEqual(limKeys, fullKeys[:10]) {
			t.Fatalf("limited walk = %v, want %v", limKeys, fullKeys[:10])
		}
		if limStats.NodesVisited == 0 {
			t.Fatal("limited walk reported no visits")
		}
		if limStats.NodesVisited*20 > fullStats.NodesVisited {
			t.Fatalf("limit pushdown missing: limited visited %d of %d nodes",
				limStats.NodesVisited, fullStats.NodesVisited)
		}
		if limStats.LogicalHops*20 > fullStats.LogicalHops {
			t.Fatalf("limit pushdown missing: limited hops %d of %d",
				limStats.LogicalHops, fullStats.LogicalHops)
		}
	})
}

// TestTCPEarlyExitHaltsTraversal pins the wire contract of streaming
// queries: cancelling a consumer mid-stream (a) halts the server-side
// traversal — the query visit counter stops growing far below the
// full-walk total — and (b) frees the stream while the pooled
// connection survives without a single new dial.
func TestTCPEarlyExitHaltsTraversal(t *testing.T) {
	const nkeys = 10000
	ctx := context.Background()
	reg := newRegistry(t, 8, WithSeed(41), WithAlphabet(keys.LowerAlnum), WithEngine(EngineTCP))
	corpus := registerLargeCorpus(t, reg, nkeys)
	eng, ok := reg.Engine().(*enginetcp.Engine)
	if !ok {
		t.Fatalf("engine is %T", reg.Engine())
	}
	cluster := eng.Cluster()

	// Reference: the visit cost of one full walk.
	full, err := reg.Complete(ctx, "", 0)
	if err != nil || len(full) != nkeys {
		t.Fatalf("full complete: %d keys, err=%v", len(full), err)
	}
	fullVisits := cluster.QueryVisits()
	if fullVisits < int64(nkeys) {
		t.Fatalf("full walk recorded only %d visits", fullVisits)
	}

	// Warm the pool: touch every peer so later traffic cannot add
	// legitimate first dials that would mask a closed connection.
	for i := 0; i < 100; i++ {
		if _, ok, err := reg.Discover(ctx, string(corpus[i])); err != nil || !ok {
			t.Fatalf("warmup discover: ok=%v err=%v", ok, err)
		}
	}

	v0 := cluster.QueryVisits()
	_, dials0 := cluster.PoolStats()
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	seen, gotErr := 0, error(nil)
	for _, err := range reg.CompleteSeq(cctx, "", 0) {
		if err != nil {
			gotErr = err
			break
		}
		seen++
		if seen == 3 {
			cancel() // mid-stream: the traversal has barely started
		}
	}
	if !errors.Is(gotErr, context.Canceled) {
		t.Fatalf("cancelled stream returned %v after %d keys", gotErr, seen)
	}

	// The server-side walk must stop: the visit counter plateaus...
	deadline := time.Now().Add(2 * time.Second)
	var v1, v2 int64
	for {
		v1 = cluster.QueryVisits()
		time.Sleep(50 * time.Millisecond)
		v2 = cluster.QueryVisits()
		if v1 == v2 || time.Now().After(deadline) {
			break
		}
	}
	if v1 != v2 {
		t.Fatalf("traversal still running after cancel: %d -> %d", v1, v2)
	}
	// ...far below the full-walk cost (the flow-control window bounds
	// the overrun).
	if halted := v2 - v0; halted*4 > fullVisits {
		t.Fatalf("cancelled walk visited %d nodes, full walk costs %d", halted, fullVisits)
	}

	// The pooled connection survived: later traffic reuses it without
	// one new dial, and the overlay serves normally.
	for i := 0; i < 20; i++ {
		if _, ok, err := reg.Discover(ctx, string(corpus[i])); err != nil || !ok {
			t.Fatalf("discover after cancel: ok=%v err=%v", ok, err)
		}
	}
	if again, err := reg.Complete(ctx, "", 0); err != nil || len(again) != nkeys {
		t.Fatalf("full complete after cancel: %d keys, err=%v", len(again), err)
	}
	if _, dials1 := cluster.PoolStats(); dials1 != dials0 {
		t.Fatalf("cancel closed the pooled connection: dials %d -> %d", dials0, dials1)
	}
}

// TestStreamStatsReported sanity-checks the per-stream hop counters
// the acceptance benchmarks surface.
func TestStreamStatsReported(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		reg := newRegistry(t, 4, WithSeed(13), WithAlphabet(keys.LowerAlnum), WithEngine(kind))
		registerLargeCorpus(t, reg, 200)
		s, err := reg.Engine().Query(ctx, engine.Query{Kind: engine.QueryRange, Lo: "a", Hi: "zz"})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		n := 0
		for {
			if _, ok := s.Next(); !ok {
				break
			}
			n++
		}
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if n == 0 || st.NodesVisited < n || st.LogicalHops == 0 {
			t.Fatalf("stats %+v for %d keys", st, n)
		}
		if st.PhysicalHops > st.LogicalHops {
			t.Fatalf("physical %d > logical %d", st.PhysicalHops, st.LogicalHops)
		}

		// Stats are live mid-stream on every engine (the TCP stream
		// carries running counters in each batch), and Next reports
		// end of stream after Close even with keys still buffered.
		s2, err := reg.Engine().Query(ctx, engine.Query{Kind: engine.QueryComplete})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := s2.Next(); !ok {
			t.Fatal("no first key")
		}
		if mid := s2.Stats(); mid.NodesVisited == 0 {
			t.Fatalf("mid-stream stats empty on %s", kind)
		}
		s2.Close()
		if _, ok := s2.Next(); ok {
			t.Fatalf("Next returned a key after Close on %s", kind)
		}
	})
}
