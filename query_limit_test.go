package dlpt

// Limit semantics of Complete and Range on the Registry: limit <= 0
// means no limit, a limit beyond the match count returns every match,
// and a positive limit clips in lexicographic order — identically on
// every engine.

import (
	"context"
	"reflect"
	"testing"
)

func TestCompleteRangeLimits(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		reg := newRegistry(t, 4, WithSeed(9), WithEngine(kind))
		for _, name := range []string{"app1", "app2", "app3", "base", "apricot"} {
			if err := reg.Register(ctx, name, "ep://"+name); err != nil {
				t.Fatal(err)
			}
		}

		completes := []struct {
			prefix string
			limit  int
			want   []string
		}{
			{"app", 0, []string{"app1", "app2", "app3"}},
			{"app", -1, []string{"app1", "app2", "app3"}},
			{"app", 99, []string{"app1", "app2", "app3"}},
			{"app", 2, []string{"app1", "app2"}},
			{"app", 3, []string{"app1", "app2", "app3"}},
			{"ap", 1, []string{"app1"}},
			{"zzz", 0, nil},
			{"zzz", 5, nil},
		}
		for _, tc := range completes {
			got, err := reg.Complete(ctx, tc.prefix, tc.limit)
			if err != nil {
				t.Fatalf("complete(%q, %d): %v", tc.prefix, tc.limit, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("complete(%q, %d) = %v, want %v", tc.prefix, tc.limit, got, tc.want)
			}
		}

		ranges := []struct {
			lo, hi string
			limit  int
			want   []string
		}{
			{"app1", "app3", 0, []string{"app1", "app2", "app3"}},
			{"app1", "app3", -3, []string{"app1", "app2", "app3"}},
			{"app1", "app3", 100, []string{"app1", "app2", "app3"}},
			{"app1", "app3", 1, []string{"app1"}},
			{"a", "b", 2, []string{"app1", "app2"}},
			{"x", "z", 0, nil},
			{"x", "a", 4, nil}, // inverted bounds: empty
		}
		for _, tc := range ranges {
			got, err := reg.Range(ctx, tc.lo, tc.hi, tc.limit)
			if err != nil {
				t.Fatalf("range(%q, %q, %d): %v", tc.lo, tc.hi, tc.limit, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("range(%q, %q, %d) = %v, want %v", tc.lo, tc.hi, tc.limit, got, tc.want)
			}
		}
	})
}
