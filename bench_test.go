package dlpt

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper (quick scale — the full paper scale runs through
// cmd/dlptsim), plus micro-benchmarks of the primitives the protocol
// is built from. Run with:
//
//	go test -bench=. -benchmem
import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dlpt/engine"
	"dlpt/engine/local"
	"dlpt/internal/attrs"
	"dlpt/internal/core"
	"dlpt/internal/dht"
	"dlpt/internal/experiments"
	"dlpt/internal/keys"
	"dlpt/internal/lb"
	"dlpt/internal/pgrid"
	"dlpt/internal/pht"
	"dlpt/internal/sim"
	"dlpt/internal/transport"
	"dlpt/internal/trie"
	"dlpt/internal/workload"
)

// --- figure/table reproductions (quick scale) -------------------------------

func benchSpec(b *testing.B, spec experiments.Spec) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		spec.Base.Seed = int64(i + 1)
		if _, err := experiments.RunSpec(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4 (stable network, low load).
func BenchmarkFigure4(b *testing.B) { benchSpec(b, experiments.Figure4(true)) }

// BenchmarkFigure5 regenerates Figure 5 (stable network, overload).
func BenchmarkFigure5(b *testing.B) { benchSpec(b, experiments.Figure5(true)) }

// BenchmarkFigure6 regenerates Figure 6 (dynamic network, low load).
func BenchmarkFigure6(b *testing.B) { benchSpec(b, experiments.Figure6(true)) }

// BenchmarkFigure7 regenerates Figure 7 (dynamic network, overload).
func BenchmarkFigure7(b *testing.B) { benchSpec(b, experiments.Figure7(true)) }

// BenchmarkFigure8 regenerates Figure 8 (hot spots).
func BenchmarkFigure8(b *testing.B) { benchSpec(b, experiments.Figure8(true)) }

// BenchmarkFigure9 regenerates Figure 9 (communication gain of the
// lexicographic mapping).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure9(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the Table 1 gain summary.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates the Table 2 complexity comparison.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMaintenance regenerates the DHT-avoidance
// maintenance-cost ablation.
func BenchmarkAblationMaintenance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMaintenance(true); err != nil {
			b.Fatal(err)
		}
	}
}

// --- protocol micro-benchmarks ----------------------------------------------

// BenchmarkGCP measures the greatest-common-prefix primitive.
func BenchmarkGCP(b *testing.B) {
	a := keys.Key("pdgesv_variant_long_key_name")
	c := keys.Key("pdgesv_variant_other_key")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = keys.GCP(a, c)
	}
}

// BenchmarkTrieInsert measures reference PGCP-tree insertion.
func BenchmarkTrieInsert(b *testing.B) {
	corpus := workload.GridCorpus(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := trie.New()
		for _, k := range corpus {
			t.InsertKey(k)
		}
	}
}

// BenchmarkTrieLookup measures reference tree lookup.
func BenchmarkTrieLookup(b *testing.B) {
	corpus := workload.GridCorpus(1000)
	t := trie.New()
	for _, k := range corpus {
		t.InsertKey(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Lookup(corpus[i%len(corpus)]); !ok {
			b.Fatal("lost key")
		}
	}
}

// buildOverlay constructs a populated DLPT overlay for benchmarks.
func buildOverlay(b *testing.B, peers, nkeys int) (*core.Network, []keys.Key, *rand.Rand) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	net := core.NewNetwork(keys.LowerAlnum, core.PlacementLexicographic)
	for i := 0; i < peers; i++ {
		if err := net.JoinPeer(keys.LowerAlnum.RandomKey(rng, 12, 12), 1<<30, rng); err != nil {
			b.Fatal(err)
		}
	}
	corpus := workload.GridCorpus(nkeys)
	for _, k := range corpus {
		if err := net.InsertKey(k, rng); err != nil {
			b.Fatal(err)
		}
	}
	return net, corpus, rng
}

// BenchmarkOverlayInsert measures Algorithm 3 (distributed data
// insertion) end to end.
func BenchmarkOverlayInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := core.NewNetwork(keys.LowerAlnum, core.PlacementLexicographic)
	for i := 0; i < 100; i++ {
		if err := net.JoinPeer(keys.LowerAlnum.RandomKey(rng, 12, 12), 1<<30, rng); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys.Key(fmt.Sprintf("bench_key_%d", i))
		if err := net.InsertKey(k, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverlayDiscover measures DLPT discovery routing (the O(D)
// row of Table 2).
func BenchmarkOverlayDiscover(b *testing.B) {
	net, corpus, rng := buildOverlay(b, 100, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := net.DiscoverRandom(corpus[i%len(corpus)], false, rng)
		if !res.Satisfied {
			b.Fatal("lost key")
		}
	}
}

// BenchmarkOverlayPeerJoin measures Algorithms 1-2 (tree-routed peer
// insertion).
func BenchmarkOverlayPeerJoin(b *testing.B) {
	net, _, rng := buildOverlay(b, 100, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := keys.LowerAlnum.RandomKey(rng, 14, 14)
		if err := net.JoinPeer(id, 1<<30, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMLTStep measures one MLT balancing pass over a loaded pair
// (the O(|nu_S u nu_P|) scan of Section 3.3; ablation A2).
func BenchmarkMLTStep(b *testing.B) {
	net, corpus, rng := buildOverlay(b, 100, 1000)
	net.ResetUnit()
	for i := 0; i < 5000; i++ {
		net.DiscoverRandom(corpus[rng.Intn(len(corpus))], true, rng)
	}
	net.ResetUnit()
	ids := net.PeerIDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (lb.MLT{}).Periodic(net, ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKChoicesPlace measures k-choices join placement (k=4).
func BenchmarkKChoicesPlace(b *testing.B) {
	net, _, rng := buildOverlay(b, 100, 1000)
	kc := lb.KChoices{K: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = kc.PlaceJoin(net, rng, 25)
	}
}

// BenchmarkDHTLookup measures Chord lookup (the substrate cost PHT
// pays per trie level).
func BenchmarkDHTLookup(b *testing.B) {
	ring := dht.New()
	for i := 0; i < 128; i++ {
		if _, err := ring.Join(fmt.Sprintf("node-%04d", i)); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ring.Lookup(fmt.Sprintf("key-%d", i), rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPHTLookup measures a PHT lookup (linear descent).
func BenchmarkPHTLookup(b *testing.B) {
	ring := dht.New()
	for i := 0; i < 64; i++ {
		if _, err := ring.Join(fmt.Sprintf("node-%04d", i)); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	ph, err := pht.New(ring, 64, 8, rng)
	if err != nil {
		b.Fatal(err)
	}
	corpus := workload.GridCorpus(500)
	for _, k := range corpus {
		if err := ph.Insert(k); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found, err := ph.Lookup(corpus[i%len(corpus)])
		if err != nil || !found {
			b.Fatal("lost key")
		}
	}
}

// BenchmarkPGridLookup measures a P-Grid lookup (O(log |Pi|)).
func BenchmarkPGridLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var names []string
	for i := 0; i < 128; i++ {
		names = append(names, fmt.Sprintf("peer-%04d", i))
	}
	corpus := workload.GridCorpus(1000)
	g, err := pgrid.Build(pgrid.Config{D: 64, MaxKeysPerLeaf: 16, RefsPerLevel: 2},
		names, corpus, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found, _, err := g.Lookup(corpus[i%len(corpus)])
		if err != nil || !found {
			b.Fatal("lost key")
		}
	}
}

// BenchmarkSimUnit measures one full simulation time unit at paper
// scale (100 peers, 1000 keys) with MLT enabled.
func BenchmarkSimUnit(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Runs = 1
	cfg.Strategy = "MLT"
	cfg.LoadFraction = 0.4
	// Amortize: each iteration simulates TimeUnits units.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkZipf regenerates the Zipf-popularity extension experiment.
func BenchmarkZipf(b *testing.B) { benchSpec(b, experiments.Zipf(true)) }

// BenchmarkAblationObjective regenerates the MLT-objective ablation.
func BenchmarkAblationObjective(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationObjective(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeQuery measures a routed range query over the overlay.
func BenchmarkRangeQuery(b *testing.B) {
	net, _, rng := buildOverlay(b, 100, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := net.RangeQuery("pd", "pz", rng)
		if len(res.Keys) == 0 {
			b.Fatal("empty range")
		}
	}
}

// BenchmarkComplete measures routed prefix completion.
func BenchmarkComplete(b *testing.B) {
	net, _, rng := buildOverlay(b, 100, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := net.Complete("s3l_", rng)
		if len(res.Keys) == 0 {
			b.Fatal("empty completion")
		}
	}
}

// BenchmarkReplicateRecover measures a full snapshot round plus crash
// recovery of one peer.
func BenchmarkReplicateRecover(b *testing.B) {
	net, _, rng := buildOverlay(b, 50, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Replicate()
		ids := net.PeerIDs()
		if err := net.FailPeer(ids[rng.Intn(len(ids))]); err != nil {
			b.Fatal(err)
		}
		if _, lost := net.Recover(); len(lost) != 0 {
			b.Fatal("lost nodes")
		}
		if err := net.JoinPeer(keys.LowerAlnum.RandomKey(rng, 12, 12), 1<<30, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAttrsQuery measures a conjunctive multi-attribute query
// through the engine facade.
func BenchmarkAttrsQuery(b *testing.B) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	net := core.NewNetwork(keys.PrintableASCII, core.PlacementLexicographic)
	for i := 0; i < 32; i++ {
		if err := net.JoinPeer(keys.LowerAlnum.RandomKey(rng, 12, 12), 1<<30, rng); err != nil {
			b.Fatal(err)
		}
	}
	dir := attrs.NewDirectory(local.Wrap(net, 1))
	for i := 0; i < 200; i++ {
		svc := attrs.Service{
			ID: fmt.Sprintf("svc-%03d", i),
			Attributes: map[string]string{
				"cpu": []string{"x86_64", "arm64", "sparc"}[i%3],
				"mem": fmt.Sprintf("%03d", 32*(1+i%8)),
			},
		}
		if err := dir.Register(ctx, svc); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, _, err := dir.Query(ctx,
			attrs.Predicate{Attr: "cpu", Exact: "x86_64"},
			attrs.Predicate{Attr: "mem", Lo: "064", Hi: "192"},
		)
		if err != nil || len(ids) == 0 {
			b.Fatal("query failed")
		}
	}
}

// BenchmarkTransportDiscover measures discovery over real TCP
// loopback connections.
func BenchmarkTransportDiscover(b *testing.B) {
	caps := make([]int, 8)
	for i := range caps {
		caps[i] = 1 << 20
	}
	c, err := transport.Start(keys.LowerAlnum, caps, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	corpus := workload.GridCorpus(200)
	for _, k := range corpus {
		if err := c.Register(k, "ep"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Discover(corpus[i%len(corpus)])
		if err != nil || !res.Found {
			b.Fatal("lost key over TCP")
		}
	}
}

// BenchmarkRegistryDiscover measures the public API end to end over
// the default concurrent runtime.
func BenchmarkRegistryDiscover(b *testing.B) {
	ctx := context.Background()
	reg, err := New(16, WithSeed(1), WithAlphabet(keys.LowerAlnum))
	if err != nil {
		b.Fatal(err)
	}
	defer reg.Close()
	corpus := workload.GridCorpus(300)
	for _, k := range corpus {
		if err := reg.Register(ctx, string(k), "ep"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := reg.Discover(ctx, string(corpus[i%len(corpus)])); err != nil || !ok {
			b.Fatal("lost service")
		}
	}
}

// --- engine comparison benchmarks -------------------------------------------
//
// The same workload through every execution engine: the perf
// trajectory baseline for the deployment shapes (sequential core,
// goroutine runtime, TCP sockets).

// benchEngineRegistry builds a populated Registry on one engine.
func benchEngineRegistry(b *testing.B, kind EngineKind, peers, nkeys int) (*Registry, []keys.Key) {
	b.Helper()
	ctx := context.Background()
	reg, err := New(peers, WithSeed(1), WithAlphabet(keys.LowerAlnum), WithEngine(kind))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { reg.Close() })
	corpus := workload.GridCorpus(nkeys)
	batch := make([]Registration, len(corpus))
	for i, k := range corpus {
		batch[i] = Registration{Name: string(k), Endpoint: "ep"}
	}
	if err := reg.RegisterBatch(ctx, batch); err != nil {
		b.Fatal(err)
	}
	return reg, corpus
}

// BenchmarkEngineDiscover measures exact discovery latency on every
// engine.
func BenchmarkEngineDiscover(b *testing.B) {
	ctx := context.Background()
	for _, kind := range []EngineKind{EngineLocal, EngineLive, EngineTCP} {
		b.Run(string(kind), func(b *testing.B) {
			reg, corpus := benchEngineRegistry(b, kind, 16, 300)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok, err := reg.Discover(ctx, string(corpus[i%len(corpus)])); err != nil || !ok {
					b.Fatalf("lost service on %s", kind)
				}
			}
		})
	}
}

// BenchmarkEngineRange measures routed range-query latency on every
// engine.
func BenchmarkEngineRange(b *testing.B) {
	ctx := context.Background()
	for _, kind := range []EngineKind{EngineLocal, EngineLive, EngineTCP} {
		b.Run(string(kind), func(b *testing.B) {
			reg, _ := benchEngineRegistry(b, kind, 16, 300)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ks, err := reg.Range(ctx, "pd", "pz", 0)
				if err != nil || len(ks) == 0 {
					b.Fatalf("empty range on %s", kind)
				}
			}
		})
	}
}

// BenchmarkEngineFirstResult measures time-to-first-key of an
// unlimited streaming completion on every engine: the stream is
// closed after one result, cancelling the traversal behind it.
func BenchmarkEngineFirstResult(b *testing.B) {
	ctx := context.Background()
	for _, kind := range []EngineKind{EngineLocal, EngineLive, EngineTCP} {
		b.Run(string(kind), func(b *testing.B) {
			reg, _ := benchEngineRegistry(b, kind, 16, 2000)
			eng := reg.Engine()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := eng.Query(ctx, engine.Query{Kind: engine.QueryComplete})
				if err != nil {
					b.Fatal(err)
				}
				if _, ok := s.Next(); !ok {
					b.Fatalf("no first result on %s", kind)
				}
				s.Close()
			}
		})
	}
}

// BenchmarkEngineCompleteLimit10 measures a limit-10 streaming
// completion over a large keyspace on every engine — the pushdown
// path that stops the traversal after ten matches instead of
// materializing thousands.
func BenchmarkEngineCompleteLimit10(b *testing.B) {
	ctx := context.Background()
	for _, kind := range []EngineKind{EngineLocal, EngineLive, EngineTCP} {
		b.Run(string(kind), func(b *testing.B) {
			reg, _ := benchEngineRegistry(b, kind, 16, 5000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				for _, err := range reg.CompleteSeq(ctx, "", 10) {
					if err != nil {
						b.Fatal(err)
					}
					n++
				}
				if n != 10 {
					b.Fatalf("limit-10 completion yielded %d keys on %s", n, kind)
				}
			}
		})
	}
}

// BenchmarkEngineRegisterBatch measures bulk catalogue publication on
// every engine.
func BenchmarkEngineRegisterBatch(b *testing.B) {
	ctx := context.Background()
	corpus := workload.GridCorpus(200)
	batch := make([]Registration, len(corpus))
	for i, k := range corpus {
		batch[i] = Registration{Name: string(k), Endpoint: "ep"}
	}
	for _, kind := range []EngineKind{EngineLocal, EngineLive, EngineTCP} {
		b.Run(string(kind), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				reg, err := New(8, WithSeed(int64(i+1)), WithAlphabet(keys.LowerAlnum), WithEngine(kind))
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := reg.RegisterBatch(ctx, batch); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				reg.Close()
				b.StartTimer()
			}
		})
	}
}
