package dlpt_test

import (
	"context"
	"fmt"
	"log"

	"dlpt"
)

// ExampleRegistry shows the basic register/discover cycle.
func ExampleRegistry() {
	ctx := context.Background()
	reg, err := dlpt.New(4, dlpt.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()

	_ = reg.Register(ctx, "DGEMM", "cluster-a:9000")
	_ = reg.Register(ctx, "DGEMM", "cluster-b:9000")

	svc, ok, _ := reg.Discover(ctx, "DGEMM")
	fmt.Println(ok, svc.Endpoints)
	// Output: true [cluster-a:9000 cluster-b:9000]
}

// ExampleRegistry_Complete demonstrates automatic completion of
// partial search strings.
func ExampleRegistry_Complete() {
	ctx := context.Background()
	reg, _ := dlpt.New(4, dlpt.WithSeed(1))
	defer reg.Close()
	for _, s := range []string{"sgemm", "sgemv", "strsm", "dgemm"} {
		_ = reg.Register(ctx, s, "ep")
	}
	names, _ := reg.Complete(ctx, "sge", 0)
	fmt.Println(names)
	// Output: [sgemm sgemv]
}

// ExampleRegistry_Range demonstrates lexicographic range queries.
func ExampleRegistry_Range() {
	ctx := context.Background()
	reg, _ := dlpt.New(4, dlpt.WithSeed(1))
	defer reg.Close()
	for _, s := range []string{"dgemm", "dgemv", "saxpy", "sgemm"} {
		_ = reg.Register(ctx, s, "ep")
	}
	names, _ := reg.Range(ctx, "d", "e", 0)
	fmt.Println(names)
	// Output: [dgemm dgemv]
}

// ExampleWithEngine runs the same workload over the TCP engine: every
// discovery hop is a real loopback socket round-trip.
func ExampleWithEngine() {
	ctx := context.Background()
	reg, err := dlpt.New(4, dlpt.WithSeed(1), dlpt.WithEngine(dlpt.EngineTCP))
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()

	_ = reg.RegisterBatch(ctx, []dlpt.Registration{
		{Name: "sgemm", Endpoint: "ep-1"},
		{Name: "sgemv", Endpoint: "ep-2"},
	})
	svc, ok, _ := reg.Discover(ctx, "sgemm")
	fmt.Println(reg.Engine().Name(), ok, svc.Endpoints)
	// Output: tcp true [ep-1]
}

// ExampleDirectory shows conjunctive multi-attribute discovery.
func ExampleDirectory() {
	ctx := context.Background()
	dir, _ := dlpt.NewDirectory(4, dlpt.WithSeed(1))
	defer dir.Close()
	_ = dir.RegisterResource(ctx, dlpt.Resource{
		ID:         "lyon-01",
		Attributes: map[string]string{"cpu": "x86_64", "mem": "256"},
	})
	_ = dir.RegisterResource(ctx, dlpt.Resource{
		ID:         "nice-01",
		Attributes: map[string]string{"cpu": "sparc", "mem": "064"},
	})
	ids, _, _ := dir.Find(ctx,
		dlpt.Where{Attr: "cpu", Equals: "x86_64"},
		dlpt.Where{Attr: "mem", Min: "128", Max: "512"},
	)
	fmt.Println(ids)
	// Output: [lyon-01]
}
