package dlpt_test

import (
	"fmt"
	"log"

	"dlpt"
)

// ExampleRegistry shows the basic register/discover cycle.
func ExampleRegistry() {
	reg, err := dlpt.New(4, dlpt.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()

	_ = reg.Register("DGEMM", "cluster-a:9000")
	_ = reg.Register("DGEMM", "cluster-b:9000")

	svc, ok, _ := reg.Discover("DGEMM")
	fmt.Println(ok, svc.Endpoints)
	// Output: true [cluster-a:9000 cluster-b:9000]
}

// ExampleRegistry_Complete demonstrates automatic completion of
// partial search strings.
func ExampleRegistry_Complete() {
	reg, _ := dlpt.New(4, dlpt.WithSeed(1))
	defer reg.Close()
	for _, s := range []string{"sgemm", "sgemv", "strsm", "dgemm"} {
		_ = reg.Register(s, "ep")
	}
	fmt.Println(reg.Complete("sge", 0))
	// Output: [sgemm sgemv]
}

// ExampleRegistry_Range demonstrates lexicographic range queries.
func ExampleRegistry_Range() {
	reg, _ := dlpt.New(4, dlpt.WithSeed(1))
	defer reg.Close()
	for _, s := range []string{"dgemm", "dgemv", "saxpy", "sgemm"} {
		_ = reg.Register(s, "ep")
	}
	fmt.Println(reg.Range("d", "e", 0))
	// Output: [dgemm dgemv]
}

// ExampleDirectory shows conjunctive multi-attribute discovery.
func ExampleDirectory() {
	dir, _ := dlpt.NewDirectory(4, dlpt.WithSeed(1))
	_ = dir.RegisterResource(dlpt.Resource{
		ID:         "lyon-01",
		Attributes: map[string]string{"cpu": "x86_64", "mem": "256"},
	})
	_ = dir.RegisterResource(dlpt.Resource{
		ID:         "nice-01",
		Attributes: map[string]string{"cpu": "sparc", "mem": "064"},
	})
	ids, _, _ := dir.Find(
		dlpt.Where{Attr: "cpu", Equals: "x86_64"},
		dlpt.Where{Attr: "mem", Min: "128", Max: "512"},
	)
	fmt.Println(ids)
	// Output: [lyon-01]
}
