package dlpt

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func newTestDirectory(t *testing.T, opts ...Option) *Directory {
	t.Helper()
	d, err := NewDirectory(8, append([]Option{WithSeed(5)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		res := Resource{
			ID: fmt.Sprintf("node-%02d", i),
			Attributes: map[string]string{
				"cpu":   []string{"x86_64", "arm64", "sparc"}[i%3],
				"mem":   fmt.Sprintf("%03d", 64*(1+i%4)),
				"state": "free",
			},
		}
		if err := d.RegisterResource(ctx, res); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestDirectoryFindEquals(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		d := newTestDirectory(t, WithEngine(kind))
		ids, stats, err := d.Find(context.Background(), Where{Attr: "cpu", Equals: "x86_64"})
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"node-00", "node-03", "node-06", "node-09"}
		if !reflect.DeepEqual(ids, want) {
			t.Fatalf("Find = %v", ids)
		}
		_ = stats // an exact hit entering at the target node can cost 0 hops
		// A range predicate traverses a subtree and collects per-key,
		// so it must report routing cost.
		_, rangeStats, err := d.Find(context.Background(), Where{Attr: "mem", Min: "064", Max: "256"})
		if err != nil {
			t.Fatal(err)
		}
		if rangeStats.TreeHops == 0 {
			t.Fatalf("range query must report routing cost")
		}
	})
}

func TestDirectoryFindConjunction(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		d := newTestDirectory(t, WithEngine(kind))
		ids, _, err := d.Find(context.Background(),
			Where{Attr: "cpu", Equals: "x86_64"},
			Where{Attr: "mem", Min: "128", Max: "256"},
		)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			a, ok := d.Describe(id)
			if !ok || a["cpu"] != "x86_64" || a["mem"] < "128" || a["mem"] > "256" {
				t.Fatalf("non-matching %q: %v", id, a)
			}
		}
		if len(ids) == 0 {
			t.Fatalf("conjunction found nothing")
		}
	})
}

func TestDirectoryPrefixAndPresence(t *testing.T) {
	ctx := context.Background()
	d := newTestDirectory(t)
	ids, _, err := d.Find(ctx, Where{Attr: "cpu", HasPrefix: "s"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		a, _ := d.Describe(id)
		if a["cpu"] != "sparc" {
			t.Fatalf("prefix query returned %v", a)
		}
	}
	all, _, err := d.Find(ctx, Where{Attr: "state"})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != d.NumResources() {
		t.Fatalf("presence query = %d of %d", len(all), d.NumResources())
	}
}

func TestDirectoryUnregister(t *testing.T) {
	ctx := context.Background()
	d := newTestDirectory(t)
	was, err := d.UnregisterResource(ctx, "node-00")
	if err != nil || !was {
		t.Fatalf("unregister = %v, %v", was, err)
	}
	if was, _ := d.UnregisterResource(ctx, "node-00"); was {
		t.Fatalf("double unregister must fail")
	}
	ids, _, _ := d.Find(ctx, Where{Attr: "cpu", Equals: "x86_64"})
	for _, id := range ids {
		if id == "node-00" {
			t.Fatalf("unregistered resource still returned")
		}
	}
	if err := d.Validate(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryConcurrent(t *testing.T) {
	ctx := context.Background()
	d := newTestDirectory(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, _, err := d.Find(ctx, Where{Attr: "cpu", Equals: "arm64"}); err != nil {
					t.Errorf("find: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestDirectoryWithCapacities(t *testing.T) {
	ctx := context.Background()
	d, err := NewDirectory(0, WithCapacities([]int{5, 5}))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.RegisterResource(ctx, Resource{ID: "x", Attributes: map[string]string{"a": "1"}}); err != nil {
		t.Fatal(err)
	}
	if d.NumResources() != 1 {
		t.Fatalf("NumResources = %d", d.NumResources())
	}
}

func TestDirectoryDuplicateRegistration(t *testing.T) {
	ctx := context.Background()
	d := newTestDirectory(t)
	err := d.RegisterResource(ctx, Resource{ID: "node-00", Attributes: map[string]string{"a": "1"}})
	if err == nil {
		t.Fatalf("duplicate id must fail")
	}
}
