package dlpt

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func newTestDirectory(t *testing.T) *Directory {
	t.Helper()
	d, err := NewDirectory(8, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		res := Resource{
			ID: fmt.Sprintf("node-%02d", i),
			Attributes: map[string]string{
				"cpu":   []string{"x86_64", "arm64", "sparc"}[i%3],
				"mem":   fmt.Sprintf("%03d", 64*(1+i%4)),
				"state": "free",
			},
		}
		if err := d.RegisterResource(res); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestDirectoryFindEquals(t *testing.T) {
	d := newTestDirectory(t)
	ids, stats, err := d.Find(Where{Attr: "cpu", Equals: "x86_64"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"node-00", "node-03", "node-06", "node-09"}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("Find = %v", ids)
	}
	if stats.TreeHops == 0 {
		t.Fatalf("query must report routing cost")
	}
}

func TestDirectoryFindConjunction(t *testing.T) {
	d := newTestDirectory(t)
	ids, _, err := d.Find(
		Where{Attr: "cpu", Equals: "x86_64"},
		Where{Attr: "mem", Min: "128", Max: "256"},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		a, ok := d.Describe(id)
		if !ok || a["cpu"] != "x86_64" || a["mem"] < "128" || a["mem"] > "256" {
			t.Fatalf("non-matching %q: %v", id, a)
		}
	}
	if len(ids) == 0 {
		t.Fatalf("conjunction found nothing")
	}
}

func TestDirectoryPrefixAndPresence(t *testing.T) {
	d := newTestDirectory(t)
	ids, _, err := d.Find(Where{Attr: "cpu", HasPrefix: "s"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		a, _ := d.Describe(id)
		if a["cpu"] != "sparc" {
			t.Fatalf("prefix query returned %v", a)
		}
	}
	all, _, err := d.Find(Where{Attr: "state"})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != d.NumResources() {
		t.Fatalf("presence query = %d of %d", len(all), d.NumResources())
	}
}

func TestDirectoryUnregister(t *testing.T) {
	d := newTestDirectory(t)
	if !d.UnregisterResource("node-00") {
		t.Fatalf("unregister failed")
	}
	if d.UnregisterResource("node-00") {
		t.Fatalf("double unregister must fail")
	}
	ids, _, _ := d.Find(Where{Attr: "cpu", Equals: "x86_64"})
	for _, id := range ids {
		if id == "node-00" {
			t.Fatalf("unregistered resource still returned")
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryConcurrent(t *testing.T) {
	d := newTestDirectory(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, _, err := d.Find(Where{Attr: "cpu", Equals: "arm64"}); err != nil {
					t.Errorf("find: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestDirectoryWithCapacities(t *testing.T) {
	d, err := NewDirectory(0, WithCapacities([]int{5, 5}))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterResource(Resource{ID: "x", Attributes: map[string]string{"a": "1"}}); err != nil {
		t.Fatal(err)
	}
	if d.NumResources() != 1 {
		t.Fatalf("NumResources = %d", d.NumResources())
	}
}
