package dlpt

// Differential and cancellation tests of the execution engines: the
// same seeded workload must produce byte-identical results on the
// sequential core, the goroutine runtime and the TCP transport, and
// cancelling a discovery context must abort promptly on the
// concurrent backends.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

// runDifferentialWorkload drives one fixed register / discover /
// complete / range / unregister / churn workload against a registry
// and serializes every observable result (found flags, value sets,
// key sets, catalogue, peer-independent invariants) into a
// transcript. Hop counts are excluded: they depend on random entry
// points, the results must not.
func runDifferentialWorkload(t *testing.T, kind EngineKind) string {
	t.Helper()
	ctx := context.Background()
	reg := newRegistry(t, 6, WithSeed(11), WithAlphabet(keys.LowerAlnum), WithEngine(kind))

	var b strings.Builder
	corpus := workload.GridCorpus(60)

	// Phase 1: batch-register two thirds, single-register the rest
	// with a second endpoint for every fourth key.
	batch := make([]Registration, 0, len(corpus))
	for _, k := range corpus[:40] {
		batch = append(batch, Registration{Name: string(k), Endpoint: "ep://" + string(k)})
	}
	if err := reg.RegisterBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	for i, k := range corpus[40:] {
		if err := reg.Register(ctx, string(k), "ep://"+string(k)); err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			if err := reg.Register(ctx, string(k), "alt://"+string(k)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase 2: churn — grow the overlay mid-workload.
	for i := 0; i < 3; i++ {
		if err := reg.AddPeer(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 3: unregister a deterministic subset.
	for i, k := range corpus {
		if i%9 == 0 {
			was, err := reg.Unregister(ctx, string(k), "ep://"+string(k))
			fmt.Fprintf(&b, "unregister %s -> %v %v\n", k, was, err)
		}
	}

	// Phase 4: discovery over every key plus some absent ones.
	probes := append([]keys.Key{}, corpus...)
	probes = append(probes, "zz_missing", "aa", "sgemm_nope")
	for _, k := range probes {
		svc, ok, err := reg.Discover(ctx, string(k))
		if err != nil {
			t.Fatalf("%s: discover %q: %v", kind, k, err)
		}
		fmt.Fprintf(&b, "discover %s -> %v %v\n", k, ok, svc.Endpoints)
	}

	// Phase 5: completions and range queries.
	for _, prefix := range []string{"sge", "s3l_", "dge", "pd", "zz", ""} {
		ks, err := reg.Complete(ctx, prefix, 0)
		if err != nil {
			t.Fatalf("%s: complete %q: %v", kind, prefix, err)
		}
		fmt.Fprintf(&b, "complete %q -> %v\n", prefix, ks)
	}
	for _, r := range [][2]string{{"d", "e"}, {"pd", "pz"}, {"a", "zzzz"}, {"x", "a"}} {
		ks, err := reg.Range(ctx, r[0], r[1], 0)
		if err != nil {
			t.Fatalf("%s: range %v: %v", kind, r, err)
		}
		fmt.Fprintf(&b, "range %v -> %v\n", r, ks)
	}

	// Phase 6: whole-catalogue reads and invariants.
	svcs, err := reg.Services(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "services -> %v\n", svcs)
	fmt.Fprintf(&b, "numnodes -> %d\n", reg.NumNodes())
	if err := reg.Validate(ctx); err != nil {
		t.Fatalf("%s: validate: %v", kind, err)
	}
	return b.String()
}

// TestEnginesDifferential requires the three engines to answer the
// identical seeded workload byte-identically.
func TestEnginesDifferential(t *testing.T) {
	transcripts := make(map[EngineKind]string, len(engineKinds))
	for _, kind := range engineKinds {
		transcripts[kind] = runDifferentialWorkload(t, kind)
	}
	ref := transcripts[EngineLocal]
	if ref == "" {
		t.Fatal("empty reference transcript")
	}
	for _, kind := range engineKinds[1:] {
		if transcripts[kind] != ref {
			t.Errorf("engine %s diverges from local:\n%s", kind,
				firstDiff(ref, transcripts[kind]))
		}
	}
}

// firstDiff returns the first differing line pair for a readable
// failure message.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  local: %s\n  other: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("transcript lengths differ: %d vs %d lines", len(al), len(bl))
}

// TestDiscoverCancelInFlight cancels a context while discoveries are
// streaming through the concurrent engines and requires a prompt
// context.Canceled.
func TestDiscoverCancelInFlight(t *testing.T) {
	for _, kind := range []EngineKind{EngineLive, EngineTCP} {
		t.Run(string(kind), func(t *testing.T) {
			ctx := context.Background()
			reg := newRegistry(t, 5, WithSeed(3), WithAlphabet(keys.LowerAlnum), WithEngine(kind))
			corpus := workload.GridCorpus(50)
			for _, k := range corpus {
				if err := reg.Register(ctx, string(k), "ep"); err != nil {
					t.Fatal(err)
				}
			}
			cctx, cancel := context.WithCancel(ctx)
			done := make(chan error, 1)
			go func() {
				for i := 0; ; i++ {
					if _, _, err := reg.Discover(cctx, string(corpus[i%len(corpus)])); err != nil {
						done <- err
						return
					}
				}
			}()
			time.Sleep(5 * time.Millisecond)
			start := time.Now()
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("got %v, want context.Canceled", err)
				}
				if d := time.Since(start); d > time.Second {
					t.Fatalf("cancellation took %v", d)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("discovery did not return after cancel")
			}
		})
	}
}

// TestDiscoverDeadline exercises the context deadline path.
func TestDiscoverDeadline(t *testing.T) {
	reg := newRegistry(t, 4, WithSeed(2))
	ctx := context.Background()
	if err := reg.Register(ctx, "key", "ep"); err != nil {
		t.Fatal(err)
	}
	dctx, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := reg.Discover(dctx, "key"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline = %v", err)
	}
}
