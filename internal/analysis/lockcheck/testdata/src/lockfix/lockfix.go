// Package lockfix exercises the lockcheck contract: guarded-field
// accesses with and without lock evidence, the *Locked naming
// convention, the held/exclusive directives, closure inheritance, and
// the PR 8 stderr-capture race shape.
package lockfix

import (
	"bytes"
	"sync"
)

type counterSet struct {
	mu     sync.Mutex
	hits   int             // guarded by mu
	misses int             // guarded by mu
	seen   map[string]bool // guarded by mu
	label  string          // immutable after construction; unguarded
}

// Inc holds the lock: every guarded access below is fine.
func (c *counterSet) Inc(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen[key] {
		c.hits++
	} else {
		c.misses++
	}
	c.seen[key] = true
}

// Snapshot reads guarded state bare: each access is a finding.
func (c *counterSet) Snapshot() (int, int) {
	a := c.hits   // want `field c.hits is guarded by "mu"`
	b := c.misses // want `field c.misses is guarded by "mu"`
	return a, b
}

// Label reads only unguarded state.
func (c *counterSet) Label() string {
	return c.label
}

// resetLocked follows the naming convention: callers hold c.mu.
func (c *counterSet) resetLocked() {
	c.hits = 0
	c.misses = 0
	c.seen = make(map[string]bool)
}

// drain is documented lock-free by directive.
//
// dlptlint:held mu — called only from Inc-side paths with the lock.
func (c *counterSet) drain() int {
	return c.hits + c.misses
}

// newCounterSet builds the value before it escapes.
//
// dlptlint:exclusive — construction; no other goroutine can hold a
// reference yet.
func newCounterSet(label string) *counterSet {
	c := &counterSet{label: label, seen: make(map[string]bool)}
	c.hits = 0
	return c
}

// closureInherit shows a literal created under the lock inheriting
// the enclosing function's evidence.
func (c *counterSet) closureInherit() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int { return c.hits }
}

// wrongBase locks a different instance: no evidence for other.
func (c *counterSet) wrongBase(other *counterSet) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return other.hits // want `field other.hits is guarded by "mu"`
}

// suppressed shows the escape hatch silencing a finding.
func (c *counterSet) suppressed() int {
	//dlptlint:ignore lockcheck demonstration of the suppression directive
	return c.hits
}

// pipeBuffer is the PR 8 stderr-capture race shape: an exec pipe
// copier goroutine writes the buffer while the test reads it. The
// unguarded read below is exactly the bug that PR shipped a fix for.
type pipeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer // guarded by mu (written by the pipe copier goroutine)
}

func (b *pipeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *pipeBuffer) String() string {
	return b.buf.String() // want `field b.buf is guarded by "mu"`
}

func (b *pipeBuffer) StringFixed() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
