package lockcheck_test

import (
	"testing"

	"dlpt/internal/analysis/analysistest"
	"dlpt/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, ".", "lockfix", lockcheck.Analyzer)
}
