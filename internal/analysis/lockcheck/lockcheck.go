// Package lockcheck enforces the repo's mutex annotations: a struct
// field carrying a
//
//	// guarded by <mu>
//
// comment (doc or line comment; anything after the guard name is
// free-form, e.g. "guarded by mu (writers only)") may only be
// accessed in functions that visibly participate in the lock
// discipline. An access is accepted when, walking from the innermost
// enclosing function literal out to the declaration, one of the
// scopes
//
//   - acquires the guard on the same base value (`d.mu.Lock()`,
//     `d.mu.RLock()` for an access to `d.field`),
//   - is a function whose name ends in "Locked" (the repo's
//     caller-holds-the-lock naming convention), or
//   - carries a `dlptlint:held <mu>` directive (callers hold the
//     lock but the name predates the convention) or a
//     `dlptlint:exclusive` directive (single-threaded phase:
//     construction before the value escapes, teardown after the
//     last goroutine exited).
//
// The check is deliberately flow-insensitive: it proves that every
// call site THOUGHT about the lock, not that the lock is held at the
// exact instruction — that is what `go test -race` is for. The two
// tools fail in opposite directions (the race detector only sees
// schedules that actually happened; lockcheck sees every call site
// but trusts function-level evidence), which is why CI runs both.
//
// This invariant dates to PR 2 (atomic visit counters, mutex-guarded
// cluster state) and PR 8, which shipped a fix for exactly the bug
// shape this analyzer catches: a test helper's bytes.Buffer written
// by an exec pipe goroutine and read bare by the test.
package lockcheck

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"dlpt/internal/analysis"
)

// Analyzer is the guarded-field access checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "struct fields annotated `// guarded by <mu>` must be accessed with the named mutex held",
	Run:  run,
}

var guardedRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)
var heldRE = regexp.MustCompile(`dlptlint:held ([A-Za-z_][A-Za-z0-9_]*)`)

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		checkFile(pass, f, guards)
	}
	return nil
}

// collectGuards maps annotated field objects to their guard names.
func collectGuards(pass *analysis.Pass) map[*types.Var]string {
	guards := make(map[*types.Var]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, fld := range st.Fields.List {
				guard := guardAnnotation(fld)
				if guard == "" {
					continue
				}
				for _, name := range fld.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						guards[v] = guard
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// funcScope is one nesting level: a declaration or a literal.
type funcScope struct {
	name string // declaration name, "" for literals
	doc  string // declaration doc text, "" for literals
	body *ast.BlockStmt
}

func checkFile(pass *analysis.Pass, f *ast.File, guards map[*types.Var]string) {
	var stack []funcScope
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body == nil {
				return false
			}
			stack = append(stack, funcScope{name: n.Name.Name, doc: n.Doc.Text(), body: n.Body})
			for _, stmt := range n.Body.List {
				ast.Inspect(stmt, visit)
			}
			stack = stack[:len(stack)-1]
			return false
		case *ast.FuncLit:
			stack = append(stack, funcScope{body: n.Body})
			for _, stmt := range n.Body.List {
				ast.Inspect(stmt, visit)
			}
			stack = stack[:len(stack)-1]
			return false
		case *ast.SelectorExpr:
			sel, ok := pass.Info.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			v, ok := sel.Obj().(*types.Var)
			if !ok {
				return true
			}
			guard, guarded := guards[v]
			if !guarded {
				return true
			}
			if !accessAllowed(stack, analysis.ExprString(n.X), guard) {
				pass.Reportf(n.Sel.Pos(),
					"field %s.%s is guarded by %q but accessed without evidence the lock is held (acquire %s.%s, use a *Locked function, or annotate dlptlint:held/exclusive)",
					analysis.ExprString(n.X), v.Name(), guard, analysis.ExprString(n.X), guard)
			}
			return true
		}
		return true
	}
	ast.Inspect(f, visit)
}

// accessAllowed walks the function stack innermost-out looking for
// lock evidence. Outer scopes count: a closure created while the
// lock is held (sync'd callbacks, deferred unlock blocks) inherits
// its declaration's discipline.
func accessAllowed(stack []funcScope, base, guard string) bool {
	if len(stack) == 0 {
		return false // package-scope initializer touching guarded state
	}
	for i := len(stack) - 1; i >= 0; i-- {
		sc := stack[i]
		if strings.HasSuffix(sc.name, "Locked") {
			return true
		}
		if sc.doc != "" {
			if strings.Contains(sc.doc, "dlptlint:exclusive") {
				return true
			}
			if m := heldRE.FindStringSubmatch(sc.doc); m != nil && m[1] == guard {
				return true
			}
		}
		if acquiresGuard(sc.body, base, guard) {
			return true
		}
	}
	return false
}

// acquiresGuard reports whether body contains base.guard.Lock / RLock
// / TryLock / TryRLock — the flow-insensitive evidence that this
// function participates in the guard's discipline.
func acquiresGuard(body *ast.BlockStmt, base, guard string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch method.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
		default:
			return true
		}
		muSel, ok := method.X.(*ast.SelectorExpr)
		if !ok || muSel.Sel.Name != guard {
			return true
		}
		if analysis.ExprString(muSel.X) == base {
			found = true
			return false
		}
		return true
	})
	return found
}
