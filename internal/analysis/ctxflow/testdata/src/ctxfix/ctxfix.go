// Package ctxfix exercises the ctxflow contract: fresh context roots
// below ctx-taking functions, unused ctx parameters and nil contexts
// are findings; threading, deliberate detach and ctx-free mainloops
// are not.
package ctxfix

import "context"

type store struct{}

func (s *store) get(ctx context.Context, k string) (string, error) { return k, ctx.Err() }

// threaded passes its ctx down: fine.
func threaded(ctx context.Context, s *store) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return s.get(ctx, "k")
}

// freshRoot mints a new root below an entry point.
func freshRoot(ctx context.Context, s *store) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return s.get(context.Background(), "k") // want `context.Background below a ctx-taking function`
}

// todoRoot is the same bug spelled TODO.
func todoRoot(ctx context.Context, s *store) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return s.get(context.TODO(), "k") // want `context.TODO below a ctx-taking function`
}

// detached uses the sanctioned detach: rollback must run even after
// the caller gave up.
func detached(ctx context.Context, s *store) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return s.get(context.WithoutCancel(ctx), "k")
}

// dropped never touches its ctx.
func dropped(ctx context.Context, s *store) (string, error) { // want `dropped takes context parameter "ctx" but never uses it`
	v, err := s.get(context.TODO(), "k") // want `context.TODO below a ctx-taking function`
	if err != nil {
		return "", err
	}
	return v, nil
}

// stub is a one-statement delegation: tolerated.
func stub(ctx context.Context) error { return nil }

// nilCtx passes the lazy nil.
func nilCtx(ctx context.Context, s *store) {
	_, _ = s.get(nil, "k") // want `nil passed as context.Context`
	_ = ctx
}

// mainloop owns a fresh root legitimately: it has no ctx parameter.
func mainloop(s *store) {
	ctx := context.Background()
	_, _ = s.get(ctx, "k")
}
