package ctxflow_test

import (
	"testing"

	"dlpt/internal/analysis/analysistest"
	"dlpt/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, ".", "ctxfix", ctxflow.Analyzer)
}
