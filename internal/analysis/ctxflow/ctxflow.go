// Package ctxflow enforces context threading on the engine path. The
// public dlpt.* API is context-first (every blocking call accepts a
// ctx and honors cancellation); that promise only holds if the layers
// underneath actually thread the caller's context instead of minting
// fresh roots. Inside any function that takes a context.Context, the
// analyzer flags:
//
//   - context.Background() / context.TODO(): a fresh root below an
//     entry point detaches the subtree from the caller's deadline and
//     cancellation. Detaching deliberately (rollback paths that must
//     run even when the caller gave up) is spelled
//     context.WithoutCancel(ctx), which keeps values and is visibly
//     intentional.
//   - a ctx parameter that the body never mentions: the function
//     promises cancellation it cannot deliver. (Interface-conformance
//     stubs with trivial bodies pass.)
//   - nil passed where the callee's parameter is a context: the
//     lazy detach that panics the moment the callee derives from it.
//
// Functions without a ctx parameter are exempt: daemon mainloops and
// process-lifetime servers legitimately own fresh roots.
package ctxflow

import (
	"go/ast"
	"go/types"

	"dlpt/internal/analysis"
)

// Analyzer is the context-threading checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "functions taking a context.Context must thread it: no fresh context roots, unused ctx params, or nil contexts below entry points",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	analysis.EnclosingFuncs(pass.Files, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		ctxNames := contextParams(pass, decl)
		if len(ctxNames) == 0 {
			return
		}
		checkUnused(pass, decl, body, ctxNames)
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := analysis.IsPkgCall(pass.Info, call, "context"); ok {
				switch name {
				case "Background", "TODO":
					pass.Reportf(call.Pos(),
						"context.%s below a ctx-taking function: thread the caller's ctx (or context.WithoutCancel(ctx) to detach deliberately)", name)
				}
			}
			checkNilCtxArg(pass, call)
			return true
		})
	})
	return nil
}

// contextParams returns the names of decl's context.Context parameters
// (usually just "ctx"; "_" is deliberate discard and not returned).
func contextParams(pass *analysis.Pass, decl *ast.FuncDecl) []string {
	var names []string
	if decl.Type.Params == nil {
		return nil
	}
	for _, fld := range decl.Type.Params.List {
		tv, ok := pass.Info.Types[fld.Type]
		if !ok || !isContext(tv.Type) {
			continue
		}
		for _, name := range fld.Names {
			if name.Name != "_" {
				names = append(names, name.Name)
			}
		}
	}
	return names
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkUnused flags a named ctx parameter the body never references.
// One-statement bodies (interface stubs, pure delegations that
// genuinely need no ctx) are tolerated; anything larger that ignores
// its ctx is promising cancellation it cannot deliver.
func checkUnused(pass *analysis.Pass, decl *ast.FuncDecl, body *ast.BlockStmt, ctxNames []string) {
	if len(body.List) <= 1 {
		return
	}
	for _, name := range ctxNames {
		if !analysis.HasIdent(body, name) {
			pass.Reportf(decl.Name.Pos(),
				"%s takes context parameter %q but never uses it: thread it into blocking calls or rename it _", decl.Name.Name, name)
		}
	}
}

// checkNilCtxArg flags passing a nil literal where the callee expects
// a context.Context.
func checkNilCtxArg(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok || id.Name != "nil" {
			continue
		}
		if i >= sig.Params().Len() {
			break // variadic tail; contexts never live there in this repo
		}
		if isContext(sig.Params().At(i).Type()) {
			pass.Reportf(arg.Pos(), "nil passed as context.Context: pass the caller's ctx")
		}
	}
}
