// Package load type-checks the module's packages for the dlptlint
// analyzers without depending on golang.org/x/tools/go/packages: it
// drives `go list` for package discovery and export data, parses the
// module's own sources with comments (annotations like "guarded by"
// live in comments, so export data is not enough for the packages
// under analysis), and resolves out-of-module imports — the standard
// library — through the compiler's export files via go/importer.
//
// Module packages are loaded twice when they have in-package test
// files: once without them (the unit other packages import, so the
// type graph matches what the compiler builds) and once with them
// (the unit handed to the analyzers, so test-only code such as the
// PR 8 stderr-capture harness is checked too). External test packages
// (package foo_test) are skipped: they hold no exported invariants
// and would drag test-only import cycles into the loader.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath  string
	Dir         string
	Standard    bool
	Export      string
	GoFiles     []string
	TestGoFiles []string
	Imports     []string
	TestImports []string
	Error       *struct{ Err string }
}

// Program is a loaded module: every matched package plus the shared
// FileSet their positions resolve against.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
}

// Dir loads the packages matched by patterns (default "./...")
// rooted at root.
func Dir(root string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	mod, err := goList(root, append([]string{"-json"}, patterns...))
	if err != nil {
		return nil, err
	}
	// One -deps -test -export sweep compiles every dependency
	// (standard library included) into the build cache and reports the
	// export file per import path; -e tolerates the test variants that
	// cannot build in isolation.
	deps, err := goList(root, append([]string{"-e", "-json", "-export", "-deps", "-test"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range deps {
		// Test variants list as "path [other.test]"; fold them onto the
		// plain path so a test-only stdlib dependency still resolves.
		path := p.ImportPath
		if i := strings.IndexByte(path, ' '); i >= 0 {
			path = path[:i]
		}
		if p.Export != "" && exports[path] == "" {
			exports[path] = p.Export
		}
	}

	ld := &loader{
		fset:    token.NewFileSet(),
		mod:     make(map[string]*listPkg),
		exports: exports,
		cache:   make(map[string]*types.Package),
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", ld.lookup)
	order := make([]string, 0, len(mod))
	for _, p := range mod {
		if p.Error != nil {
			return nil, fmt.Errorf("load %s: %s", p.ImportPath, p.Error.Err)
		}
		pp := p
		ld.mod[p.ImportPath] = &pp
		order = append(order, p.ImportPath)
	}
	sort.Strings(order)

	prog := &Program{Fset: ld.fset}
	for _, path := range order {
		if _, err := ld.load(path); err != nil {
			return nil, err
		}
	}
	// The analysis unit includes in-package test files; build it after
	// every import-graph unit exists.
	for _, path := range order {
		p := ld.mod[path]
		unit, err := ld.check(p, true)
		if err != nil {
			// Test files can import packages that (indirectly) import
			// this one; the compiler builds those against the no-test
			// unit, but a single-universe loader cannot. Fall back to
			// analyzing the no-test unit rather than failing the load.
			unit, err = ld.check(p, false)
			if err != nil {
				return nil, err
			}
		}
		prog.Packages = append(prog.Packages, unit)
	}
	return prog, nil
}

type loader struct {
	fset    *token.FileSet
	mod     map[string]*listPkg
	exports map[string]string
	cache   map[string]*types.Package
	gc      types.Importer
	loading []string
}

// lookup feeds export data files discovered by `go list -export` to
// the gc importer.
func (ld *loader) lookup(path string) (io.ReadCloser, error) {
	f := ld.exports[path]
	if f == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

// Import implements types.Importer over the hybrid universe: module
// packages come from source, everything else from export data.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := ld.mod[path]; ok {
		return ld.load(path)
	}
	return ld.gc.Import(path)
}

// load type-checks one module package (without test files) on first
// use, memoized for the whole program.
func (ld *loader) load(path string) (*types.Package, error) {
	if pkg, ok := ld.cache[path]; ok {
		return pkg, nil
	}
	for _, in := range ld.loading {
		if in == path {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
	}
	ld.loading = append(ld.loading, path)
	defer func() { ld.loading = ld.loading[:len(ld.loading)-1] }()
	unit, err := ld.check(ld.mod[path], false)
	if err != nil {
		return nil, err
	}
	ld.cache[path] = unit.Types
	return unit.Types, nil
}

// check parses and type-checks one module package, optionally with
// its in-package test files.
func (ld *loader) check(p *listPkg, withTests bool) (*Package, error) {
	names := append([]string(nil), p.GoFiles...)
	if withTests {
		names = append(names, p.TestGoFiles...)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{Importer: ld}
	pkg, err := cfg.Check(p.ImportPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
	}
	return &Package{Path: p.ImportPath, Dir: p.Dir, Files: files, Types: pkg, Info: info}, nil
}

// goList runs `go list` with args under dir and decodes its JSON
// object stream.
func goList(dir string, args []string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
