// Package analysistest runs a dlptlint analyzer over a fixture
// directory and checks its findings against `// want` comments — the
// same contract as golang.org/x/tools/go/analysis/analysistest,
// reimplemented on the standard library.
//
// A fixture is one package per directory under testdata/src/<name>;
// the directory's base name becomes the package path, so analyzers
// scoped by package (determinism's deterministic-package list,
// epochfence's daemon scope) are exercised by naming the fixture
// directory accordingly. Expectations are written on the offending
// line:
//
//	rand.Int() // want `unseeded global math/rand`
//
// The backquoted pattern is a regexp matched against the diagnostic
// message; several patterns on one line demand several diagnostics.
// Fixture imports resolve from source (GOROOT), so fixtures may use
// any standard library package but nothing module-internal — which
// keeps each analyzer's contract self-contained and documented by its
// own testdata.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"dlpt/internal/analysis"
)

var wantRE = regexp.MustCompile("// want (.*)$")

// expectation is one `// want` pattern with its location.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run analyzes testdata/src/<pkg> under dir and reports mismatches
// between diagnostics and want comments on t.
func Run(t *testing.T, dir, pkg string, a *analysis.Analyzer) {
	t.Helper()
	fixture := filepath.Join(dir, "testdata", "src", pkg)
	entries, err := os.ReadDir(fixture)
	if err != nil {
		t.Fatalf("fixture %s: %v", fixture, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(fixture, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s holds no Go files", fixture)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := cfg.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck fixture: %v", err)
	}

	diags, err := analysis.RunPackage(a, fset, files, tpkg, info, pkg)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if w := match(wants, pos, d.Message); w == nil {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func match(wants []*expectation, pos token.Position, msg string) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(msg) {
			w.matched = true
			return w
		}
	}
	return nil
}

// collectWants parses the `// want` comments into expectations.
// Patterns are backquoted regexps, several per comment allowed.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitPatterns(m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// splitPatterns extracts the backquoted segments of a want comment.
func splitPatterns(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '`')
		if i < 0 {
			break
		}
		s = s[i+1:]
		j := strings.IndexByte(s, '`')
		if j < 0 {
			break
		}
		out = append(out, s[:j])
		s = s[j+1:]
	}
	return out
}
