// Package epochfence enforces the two failure-handling contracts the
// steward-failover work (PR 8) depends on:
//
// Epoch fencing: every internal/daemon control-frame handler
// (handle*) that decodes a payload carrying an Epoch and then mutates
// member state must compare that epoch against the daemon's current
// epoch (or the promised epoch during an election) before the
// mutation. A handler that skips the fence will happily apply a
// deposed steward's stale frames — the exact split-brain the fencing
// protocol exists to prevent. The check is structural: a handle*
// method that (a) declares a local of a struct type with an exported
// Epoch field and (b) assigns receiver state, deletes from a receiver
// map, or calls a receiver *Locked mutator, must also contain a
// comparison whose one side selects .Epoch and whose other side
// mentions the daemon's epoch or promised state.
//
// Sentinel comparisons: the repo's typed sentinels (engine.ErrClosed,
// dlpt.ErrSaturated, daemon.ErrNoSteward, live.ErrStopped, ...) cross
// wrap boundaries — the transport wraps engine errors, the daemon
// wraps transport errors — so comparing them with == silently stops
// matching the moment anyone adds a %w. Any ==/!= whose operand is a
// package-level error variable named Err* is flagged; use errors.Is.
// This applies in every package, not just internal/daemon.
package epochfence

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dlpt/internal/analysis"
)

// Analyzer is the epoch-fence and sentinel-comparison checker.
var Analyzer = &analysis.Analyzer{
	Name: "epochfence",
	Doc:  "daemon control handlers must fence on frame epoch before mutating member state; sentinel errors must be compared with errors.Is",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	checkSentinels(pass)
	if analysis.PkgBase(pass.PkgPath) == "daemon" {
		checkHandlers(pass)
	}
	return nil
}

// checkSentinels flags ==/!= against package-level Err* variables of
// type error.
func checkSentinels(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			for _, op := range []ast.Expr{be.X, be.Y} {
				if name := sentinelName(pass, op); name != "" {
					pass.Reportf(be.OpPos,
						"sentinel error %s compared with %s: use errors.Is so wrapped errors still match", name, be.Op)
					break
				}
			}
			return true
		})
	}
}

// sentinelName reports the name of op when it resolves to a
// package-level variable named Err*/err* with error type.
func sentinelName(pass *analysis.Pass, op ast.Expr) string {
	var id *ast.Ident
	switch e := op.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return ""
	}
	// Package-level: parent scope is the package scope.
	if v.Parent() != v.Pkg().Scope() {
		return ""
	}
	lower := strings.ToLower(v.Name())
	if !strings.HasPrefix(lower, "err") {
		return ""
	}
	named, ok := v.Type().(*types.Named)
	if !ok || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
		return ""
	}
	return analysis.ExprString(op)
}

// checkHandlers applies the structural epoch-fence rule to handle*
// methods.
func checkHandlers(pass *analysis.Pass) {
	analysis.EnclosingFuncs(pass.Files, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		if !strings.HasPrefix(decl.Name.Name, "handle") || decl.Recv == nil {
			return
		}
		recv := receiverName(decl)
		if recv == "" {
			return
		}
		if !declaresEpochPayload(pass, body) {
			return // no epoch reaches this handler; nothing to fence on
		}
		if !mutatesReceiverState(pass, body, recv) {
			return // read-only handler; stale frames can't corrupt state
		}
		if !containsEpochFence(body) {
			pass.Reportf(decl.Name.Pos(),
				"%s decodes an epoch-bearing payload and mutates daemon state without comparing the frame epoch against the current/promised epoch", decl.Name.Name)
		}
	})
}

func receiverName(decl *ast.FuncDecl) string {
	if len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return ""
	}
	return decl.Recv.List[0].Names[0].Name
}

// declaresEpochPayload reports whether the body declares a local whose
// struct type carries an exported Epoch field — the decoded control
// payload.
func declaresEpochPayload(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if def := pass.Info.Defs[id]; def != nil && hasEpochField(def.Type()) {
						found = true
						return false
					}
				}
			}
			return true
		case *ast.ValueSpec:
			for _, name := range n.Names {
				if def := pass.Info.Defs[name]; def != nil && hasEpochField(def.Type()) {
					found = true
					return false
				}
			}
			return true
		}
		return true
	})
	return found
}

func hasEpochField(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Epoch" {
			return true
		}
	}
	return false
}

// mutatesReceiverState reports whether the body assigns to a receiver
// field (including indexed map/slice elements), deletes from a
// receiver map, or calls a receiver *Locked mutator.
func mutatesReceiverState(pass *analysis.Pass, body *ast.BlockStmt, recv string) bool {
	found := false
	onRecv := func(e ast.Expr) bool {
		for {
			switch x := e.(type) {
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.Ident:
				return x.Name == recv
			default:
				return false
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if _, isIdent := lhs.(*ast.Ident); isIdent {
					continue // plain local
				}
				if onRecv(lhs) {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 && onRecv(n.Args[0]) {
				found = true
				return false
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && strings.HasSuffix(sel.Sel.Name, "Locked") && onRecv(sel.X) {
				found = true
				return false
			}
		case *ast.IncDecStmt:
			if onRecv(n.X) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// containsEpochFence reports whether the body compares a .Epoch
// selector against an expression mentioning the daemon's epoch or
// promised-epoch state.
func containsEpochFence(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		for _, pair := range [][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			sel, ok := pair[0].(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Epoch" {
				continue
			}
			if analysis.HasIdent(pair[1], "epoch", "promised", "promisedTo") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
