package epochfence_test

import (
	"testing"

	"dlpt/internal/analysis/analysistest"
	"dlpt/internal/analysis/epochfence"
)

func TestEpochfence(t *testing.T) {
	analysistest.Run(t, ".", "daemon", epochfence.Analyzer)
}
