// Package daemon (fixture) exercises the epochfence contract: a
// handle* method that decodes an epoch-bearing payload and mutates
// daemon state must fence on the frame epoch first, and sentinel
// errors must be compared with errors.Is.
package daemon

import (
	"errors"
	"sync"
)

// ErrNoSteward mirrors the repo's sentinel shape.
var ErrNoSteward = errors.New("daemon: no steward")

type applyRecord struct {
	Epoch uint64
	Seq   uint64
	Op    string
}

type statusReq struct {
	Addr string
}

type daemon struct {
	mu      sync.Mutex
	epoch   uint64
	seq     uint64
	members map[string]bool
	log     []applyRecord
}

// handleApplyFenced validates the frame epoch before mutating: fine.
func (d *daemon) handleApplyFenced(payload []byte) error {
	rec := decodeApply(payload)
	d.mu.Lock()
	defer d.mu.Unlock()
	if rec.Epoch < d.epoch {
		return ErrNoSteward
	}
	d.seq = rec.Seq
	d.log = append(d.log, rec)
	return nil
}

// handleApplyUnfenced applies the record blind: a deposed steward's
// stale frames corrupt the mirror.
func (d *daemon) handleApplyUnfenced(payload []byte) error { // want `handleApplyUnfenced decodes an epoch-bearing payload and mutates daemon state`
	rec := decodeApply(payload)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq = rec.Seq
	d.log = append(d.log, rec)
	return nil
}

// handleStatus decodes no epoch: exempt.
func (d *daemon) handleStatus(payload []byte) error {
	req := decodeStatus(payload)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.members[req.Addr] = true
	return nil
}

// handleProbe decodes an epoch but only reads: exempt.
func (d *daemon) handleProbe(payload []byte) (uint64, error) {
	rec := decodeApply(payload)
	d.mu.Lock()
	defer d.mu.Unlock()
	if rec.Epoch < d.epoch {
		return d.epoch, ErrNoSteward
	}
	return d.seq, nil
}

// compare demonstrates the sentinel rule.
func compare(err error) (bool, bool) {
	bad := err == ErrNoSteward // want `sentinel error ErrNoSteward compared with ==`
	good := errors.Is(err, ErrNoSteward)
	return bad, good
}

func notEqual(err error) bool {
	return err != ErrNoSteward // want `sentinel error ErrNoSteward compared with !=`
}

func decodeApply(payload []byte) applyRecord { return applyRecord{} }
func decodeStatus(payload []byte) statusReq  { return statusReq{} }
