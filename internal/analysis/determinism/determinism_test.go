package determinism_test

import (
	"testing"

	"dlpt/internal/analysis/analysistest"
	"dlpt/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, ".", "core", determinism.Analyzer)
}
