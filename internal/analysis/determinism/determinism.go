// Package determinism guards the property the differential tests are
// built on: every engine produces byte-identical answers for the same
// logical state. The packages that compute wire values — the prefix
// trie and placement logic (internal/core, internal/pht,
// internal/pgrid, internal/trie, internal/keys), the attribute
// directory (internal/attrs), the catalogue codec
// (internal/catalog), and the transport frame codec — must
// not let any of Go's deliberate nondeterminism reach their output:
//
//   - map iteration order: ranging over a map is flagged unless the
//     collected result is sorted in the same function (sort.*,
//     slices.Sort*, or the repo's keys.SortKeys helpers). Sending map
//     elements to a channel is always flagged — ordering after the
//     fact cannot unscramble interleaved consumers.
//   - wall-clock time: time.Now/Since/Until make output depend on when
//     a node computed it, not what it knew.
//   - the global math/rand source: package-level rand.* calls draw
//     from a process-wide seed outside the test's control. Seeded
//     *rand.Rand values (the simnet's reproducible randomness) are
//     fine and do not match.
//   - goroutine scheduling: a `go` statement inside a deterministic
//     package means result order depends on the scheduler.
//
// Exemptions use //dlptlint:ignore determinism <reason> — metrics and
// logging legitimately read the clock; the reason documents why the
// value cannot reach the wire.
package determinism

import (
	"go/ast"
	"go/types"

	"dlpt/internal/analysis"
)

// Analyzer is the nondeterminism-source checker for wire-value
// packages.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "wire-value packages must not depend on map order, wall-clock, global math/rand, or goroutine scheduling",
	Run:  run,
}

// deterministicPkgs are the package base names whose outputs feed the
// wire or the cross-engine differential tests.
var deterministicPkgs = map[string]bool{
	"core":    true,
	"attrs":   true,
	"catalog": true,
	"pht":     true,
	"pgrid":   true,
	"trie":    true,
	"keys":    true,
}

// transportFiles are the codec files checked inside internal/transport
// (the rest of the package — dialing, pooling, timeouts — is
// legitimately time-dependent).
var transportFiles = map[string]bool{
	"frame.go":     true,
	"handshake.go": true,
}

func run(pass *analysis.Pass) error {
	base := analysis.PkgBase(pass.PkgPath)
	whole := deterministicPkgs[base]
	if !whole && base != "transport" {
		return nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if !whole && !transportFiles[filepathBase(name)] {
			continue
		}
		checkFile(pass, f)
	}
	return nil
}

func filepathBase(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' || name[i] == '\\' {
			return name[i+1:]
		}
	}
	return name
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	analysis.EnclosingFuncs([]*ast.File{f}, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in deterministic package: result order must not depend on goroutine scheduling")
			case *ast.RangeStmt:
				checkMapRange(pass, n, body)
			}
			return true
		})
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if name, ok := analysis.IsPkgCall(pass.Info, call, "time"); ok {
		switch name {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "time.%s in deterministic package: wire values must not depend on wall-clock time", name)
		}
		return
	}
	if name, ok := analysis.IsPkgCall(pass.Info, call, "math/rand"); ok {
		// Constructing an explicitly-seeded source is the sanctioned
		// path; drawing from the global source is not.
		switch name {
		case "New", "NewSource":
		default:
			pass.Reportf(call.Pos(), "global math/rand.%s in deterministic package: use an explicitly seeded *rand.Rand", name)
		}
	}
}

// checkMapRange flags ranging over a map when the iteration feeds
// ordered output: appends whose destination is never sorted in the
// same function, or channel sends (unsortable after the fact).
// Iterations that only aggregate (counting, summing, set membership)
// are order-insensitive and pass.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok || !isMap(tv.Type) {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "map iteration feeds a channel send: receiver observes nondeterministic order")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				dest := analysis.ExprString(n.Lhs[i])
				if dest == "" || dest == "_" {
					continue
				}
				if !sortedLater(pass, fnBody, dest) {
					pass.Reportf(n.Pos(), "append inside map iteration builds %s in nondeterministic order; sort it before use or iterate sorted keys", dest)
				}
			}
		}
		return true
	})
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, builtin := pass.Info.Uses[id].(*types.Builtin)
	return builtin
}

// sortedLater reports whether the function body contains a sort call
// (sort.*, slices.Sort*, or the repo's keys.SortKeys) that mentions
// dest in its arguments — the evidence that the nondeterministically
// built slice is canonicalized before anything observes it.
func sortedLater(pass *analysis.Pass, body *ast.BlockStmt, dest string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		sorting := false
		switch pkg.Name {
		case "sort":
			sorting = true
		case "slices":
			sorting = len(sel.Sel.Name) >= 4 && sel.Sel.Name[:4] == "Sort"
		case "keys":
			sorting = sel.Sel.Name == "SortKeys" || sel.Sel.Name == "SortIDs"
		}
		if !sorting {
			return true
		}
		for _, arg := range call.Args {
			if analysis.HasIdent(arg, rootIdent(dest)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// rootIdent reduces "out.items" / "r.keys" to the leading identifier
// so HasIdent can find it inside sort arguments.
func rootIdent(expr string) string {
	for i := 0; i < len(expr); i++ {
		if expr[i] == '.' || expr[i] == '[' {
			return expr[:i]
		}
	}
	return expr
}
