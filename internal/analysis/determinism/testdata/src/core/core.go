// Package core (fixture) exercises the determinism contract in a
// wire-value package: wall-clock reads, the global math/rand source,
// map-order-dependent output and goroutine spawns are findings;
// seeded rand, sorted collection and order-insensitive aggregation
// are not.
package core

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want `time.Now in deterministic package`
	return t.Unix()
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `time.Since in deterministic package`
}

func suppressedClock() time.Time {
	//dlptlint:ignore determinism metrics-only timestamp for the fixture
	return time.Now()
}

func globalRand() int {
	return rand.Int() // want `global math/rand.Int in deterministic package`
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Int() // methods on a seeded *rand.Rand are fine
}

func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append inside map iteration builds out in nondeterministic order`
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // order-insensitive: fine
	}
	return total
}

func channelFanout(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `map iteration feeds a channel send`
	}
}

func spawn(done chan struct{}) {
	go func() { // want `go statement in deterministic package`
		close(done)
	}()
}
