package analysis

// Suite is the registered analyzer list, populated by the analyzer
// packages' init via Register (the framework package cannot import
// them without a cycle). cmd/dlptlint and the whole-repo test both
// run exactly this list, so a newly registered analyzer is
// automatically enforced everywhere.
var Suite []*Analyzer

// Register appends an analyzer to the suite. Called from analyzer
// package init functions via the dlpt/internal/analysis/suite
// aggregator.
func Register(a *Analyzer) {
	Suite = append(Suite, a)
}

// Lookup returns the registered analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range Suite {
		if a.Name == name {
			return a
		}
	}
	return nil
}
