package suite_test

import (
	"path/filepath"
	"testing"

	"dlpt/internal/analysis"
	"dlpt/internal/analysis/load"
	"dlpt/internal/analysis/suite"
)

// TestSuiteCleanOverRepo is the in-tree twin of the CI dlptlint step:
// the whole module must lint clean. A finding here means new code
// broke an invariant (fix it) or needs a documented annotation or
// //dlptlint:ignore (add one).
func TestSuiteCleanOverRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := load.Dir(root, "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, pkg := range prog.Packages {
		for _, a := range suite.All() {
			diags, err := analysis.RunPackage(a, prog.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.Path)
			if err != nil {
				t.Fatalf("%s over %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s: %s", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
			}
		}
	}
}

// TestRegistry pins the suite contents: dropping an analyzer from the
// registry would silently stop enforcing its invariant.
func TestRegistry(t *testing.T) {
	want := []string{"lockcheck", "determinism", "ctxflow", "epochfence"}
	got := suite.All()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Errorf("suite[%d] = %s, want %s", i, got[i].Name, name)
		}
		if analysis.Lookup(name) == nil {
			t.Errorf("Lookup(%q) = nil", name)
		}
	}
}
