// Package suite aggregates the project's analyzers into the list that
// cmd/dlptlint and the whole-repo conformance test share. Importing
// this package is the single point where an analyzer joins the
// enforced set.
package suite

import (
	"dlpt/internal/analysis"
	"dlpt/internal/analysis/ctxflow"
	"dlpt/internal/analysis/determinism"
	"dlpt/internal/analysis/epochfence"
	"dlpt/internal/analysis/lockcheck"
)

func init() {
	analysis.Register(lockcheck.Analyzer)
	analysis.Register(determinism.Analyzer)
	analysis.Register(ctxflow.Analyzer)
	analysis.Register(epochfence.Analyzer)
}

// All returns the registered analyzers.
func All() []*analysis.Analyzer {
	return analysis.Suite
}
