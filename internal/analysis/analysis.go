// Package analysis is the project's static-analysis framework: a
// deliberately small, dependency-free mirror of the
// golang.org/x/tools/go/analysis API built on the standard library's
// go/ast and go/types. The repo's invariants — lock discipline,
// byte-determinism of everything that reaches the wire, context
// threading, epoch fencing — live as conventions in code review
// otherwise; the analyzers under this package turn them into
// compiler-grade contracts that cmd/dlptlint enforces over the whole
// module in CI.
//
// The framework intentionally keeps the x/tools shape (Analyzer with
// a Run func over a Pass) so that, should the dependency become
// available, migrating the analyzers onto the real multichecker is a
// mechanical import swap.
//
// # Suppression
//
// A finding can be silenced at the exact line it occurs (or the line
// directly above it) with
//
//	//dlptlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory by convention: an unexplained suppression
// is a review smell. Function-level escape hatches specific to
// individual analyzers (lockcheck's "held"/"exclusive" directives)
// are documented in those packages.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding reported by an analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees, parsed with comments.
	Files []*ast.File
	// Pkg is the type-checked package and Info its fact tables
	// (Defs/Uses/Selections/Types all populated).
	Pkg  *types.Package
	Info *types.Info
	// PkgPath is the package's import path ("dlpt/internal/daemon" in
	// a module load, the fixture directory's base name under
	// analysistest).
	PkgPath string

	diags []Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the identifier used by -run, want comments and
	// suppression directives.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run inspects one package and reports findings on the pass.
	Run func(*Pass) error
}

// RunPackage applies one analyzer to one package, returning the
// findings that survive //dlptlint:ignore suppression, sorted by
// position.
func RunPackage(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, path string) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Pkg:      pkg,
		Info:     info,
		PkgPath:  path,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sup := collectSuppressions(fset, files)
	out := pass.diags[:0]
	for _, d := range pass.diags {
		if !sup.covers(fset.Position(d.Pos), a.Name) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// ignoreRE matches the suppression directive. The directive must name
// the analyzers it silences; a bare ignore silences nothing.
var ignoreRE = regexp.MustCompile(`dlptlint:ignore\s+([\w,-]+)`)

// suppressions maps file name -> line -> set of silenced analyzers.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) covers(pos token.Position, analyzer string) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	// The directive suppresses its own line and the line below it
	// (comment-above style), so check the diagnostic's line and the
	// one preceding it.
	for _, ln := range []int{pos.Line, pos.Line - 1} {
		if lines[ln][analyzer] || lines[ln]["all"] {
			return true
		}
	}
	return false
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := sup[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					sup[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[pos.Line] = set
				}
				for _, name := range strings.Split(m[1], ",") {
					set[strings.TrimSpace(name)] = true
				}
			}
		}
	}
	return sup
}

// PkgBase returns the last path element of an import path — the unit
// analyzers use to scope themselves ("dlpt/internal/daemon" and an
// analysistest fixture loaded as "daemon" match the same rule).
func PkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// ExprString renders a (small) expression for base matching and
// messages; it mirrors types.ExprString but is tolerant of nil.
func ExprString(e ast.Expr) string {
	if e == nil {
		return ""
	}
	return types.ExprString(e)
}

// EnclosingFuncs walks the files and calls fn for every function body
// with the enclosing function declaration (nil for file-scope code):
// the common walking shape the analyzers share. For function literals
// fn receives the literal's body with the nearest enclosing FuncDecl,
// so flow-insensitive checks can fall back to the declaration's
// context.
func EnclosingFuncs(files []*ast.File, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(fd, fd.Body)
		}
	}
}

// HasIdent reports whether the expression subtree contains an
// identifier with one of the given names.
func HasIdent(e ast.Node, names ...string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			for _, name := range names {
				if id.Name == name {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// IsPkgCall reports whether call invokes pkgPath.sel (for example
// "time".Now) and returns the selector name when it does. The
// receiver must be a plain package qualifier, so seeded *rand.Rand
// method calls do not match "math/rand" functions.
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}
