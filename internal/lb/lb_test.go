package lb

import (
	"math/rand"
	"reflect"
	"testing"

	"dlpt/internal/core"
	"dlpt/internal/keys"
)

// buildLoaded creates a network with the given peer capacities,
// inserts keys, and drives one unit of gated traffic so LoadPrev is
// populated.
func buildLoaded(t *testing.T, seed int64, capacities []int, nkeys, requests int) (*core.Network, *rand.Rand, []keys.Key) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	net := core.NewNetwork(keys.LowerAlnum, core.PlacementLexicographic)
	for _, c := range capacities {
		if err := net.JoinPeer(keys.LowerAlnum.RandomKey(r, 12, 12), c, r); err != nil {
			t.Fatal(err)
		}
	}
	var ks []keys.Key
	for i := 0; i < nkeys; i++ {
		k := keys.LowerAlnum.RandomKey(r, 2, 8)
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
		ks = append(ks, k)
	}
	net.ResetUnit()
	for i := 0; i < requests; i++ {
		net.DiscoverRandom(ks[r.Intn(len(ks))], true, r)
	}
	net.ResetUnit() // LoadCur -> LoadPrev
	return net, r, ks
}

func TestByName(t *testing.T) {
	for _, name := range []string{"MLT", "KC", "EqualLoad", "NoLB", "none", ""} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatalf("unknown strategy must error")
	}
	s, _ := ByName("mlt")
	if s.Name() != "MLT" {
		t.Fatalf("Name = %q", s.Name())
	}
	s, _ = ByName("kc")
	if s.Name() != "KC" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestNoLB(t *testing.T) {
	net, r, _ := buildLoaded(t, 1, []int{10, 10, 10}, 40, 100)
	moved, err := NoLB{}.Periodic(net, net.PeerIDs()[0])
	if err != nil || moved {
		t.Fatalf("NoLB must never move: %v %v", moved, err)
	}
	id := NoLB{}.PlaceJoin(net, r, 10)
	if _, exists := net.Peer(id); exists {
		t.Fatalf("PlaceJoin returned an existing peer id")
	}
}

func TestCircularSort(t *testing.T) {
	ks := []keys.Key{"a", "d", "m", "x"}
	circularSort(ks, "f")
	want := []keys.Key{"m", "x", "a", "d"}
	if !reflect.DeepEqual(ks, want) {
		t.Fatalf("circularSort = %v, want %v", ks, want)
	}
	ks2 := []keys.Key{"a", "b"}
	circularSort(ks2, "z")
	if !reflect.DeepEqual(ks2, []keys.Key{"a", "b"}) {
		t.Fatalf("wrap-only sort = %v", ks2)
	}
}

func TestMLTImprovesPairThroughput(t *testing.T) {
	// Heterogeneous capacities: strong and weak peers.
	net, _, _ := buildLoaded(t, 2, []int{40, 10, 40, 10, 40, 10}, 80, 600)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	predicted := func() int {
		total := 0
		for _, id := range net.PeerIDs() {
			p, _ := net.Peer(id)
			l := p.LoadPrev()
			if l > p.Capacity {
				l = p.Capacity
			}
			total += l
		}
		return total
	}
	before := predicted()
	movedAny := false
	for _, id := range net.PeerIDs() {
		moved, err := (MLT{}).Periodic(net, id)
		if err != nil {
			t.Fatalf("MLT periodic: %v", err)
		}
		movedAny = movedAny || moved
		if err := net.Validate(); err != nil {
			t.Fatalf("after MLT on %q: %v", id, err)
		}
	}
	after := predicted()
	if movedAny && after < before {
		t.Fatalf("MLT reduced predicted throughput: %d -> %d", before, after)
	}
	if !movedAny {
		t.Logf("note: no move applied (already balanced)")
	}
}

// TestMLTBoundaryOptimality cross-checks the boundary scan against a
// brute-force search on a constructed pair.
func TestMLTBoundaryOptimality(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		m := 2 + r.Intn(10)
		loads := make([]int, m)
		for i := range loads {
			loads[i] = r.Intn(20)
		}
		cp, cs := 1+r.Intn(30), 1+r.Intn(30)
		// brute force best throughput over j in [1, m-1]
		best := -1
		for j := 1; j <= m-1; j++ {
			lp := 0
			for _, l := range loads[:j] {
				lp += l
			}
			ls := 0
			for _, l := range loads[j:] {
				ls += l
			}
			tp := lp
			if cp < tp {
				tp = cp
			}
			ts := ls
			if cs < ts {
				ts = cs
			}
			if tp+ts > best {
				best = tp + ts
			}
		}
		// pairState computation must agree.
		st := &pairState{
			p: &core.Peer{Capacity: cp},
			s: &core.Peer{Capacity: cs},
		}
		st.loads = loads
		st.nodes = make([]keys.Key, m)
		st.prefix = make([]int, m+1)
		for i, l := range loads {
			st.prefix[i+1] = st.prefix[i] + l
		}
		got := -1
		for j := 1; j <= m-1; j++ {
			if thr := st.throughputAt(j); thr > got {
				got = thr
			}
		}
		if got != best {
			t.Fatalf("trial %d: scan best %d != brute force %d", trial, got, best)
		}
	}
}

func TestMLTSinglePeerAndTinyTrees(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	net := core.NewNetwork(keys.LowerAlnum, core.PlacementLexicographic)
	if err := net.JoinPeer("solo_peer_id", 10, r); err != nil {
		t.Fatal(err)
	}
	moved, err := (MLT{}).Periodic(net, "solo_peer_id")
	if err != nil || moved {
		t.Fatalf("single peer must be a no-op: %v %v", moved, err)
	}
	// Two peers, one node: still degenerate.
	if err := net.JoinPeer("zzz_peer_idab", 10, r); err != nil {
		t.Fatal(err)
	}
	if err := net.InsertKey("abc", r); err != nil {
		t.Fatal(err)
	}
	for _, id := range net.PeerIDs() {
		moved, err := (MLT{}).Periodic(net, id)
		if err != nil {
			t.Fatal(err)
		}
		if moved {
			t.Fatalf("one shared node cannot be rebalanced")
		}
	}
}

func TestMLTUnknownPeerIsNoop(t *testing.T) {
	// A peer renamed earlier in the same balancing round disappears
	// from id snapshots; Periodic must treat that as a no-op.
	net, _, _ := buildLoaded(t, 5, []int{10, 10}, 10, 20)
	moved, err := (MLT{}).Periodic(net, "missing_peer")
	if err != nil || moved {
		t.Fatalf("unknown peer must be a graceful no-op: %v %v", moved, err)
	}
}

func TestMLTRepeatedConverges(t *testing.T) {
	net, _, ks := buildLoaded(t, 6, []int{40, 10, 20, 30}, 60, 400)
	r := rand.New(rand.NewSource(60))
	// Iterating MLT with a fixed load history must stop moving.
	for round := 0; round < 20; round++ {
		anyMoved := false
		for _, id := range net.PeerIDs() {
			moved, err := (MLT{}).Periodic(net, id)
			if err != nil {
				t.Fatal(err)
			}
			anyMoved = anyMoved || moved
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !anyMoved {
			break
		}
		if round == 19 {
			t.Fatalf("MLT oscillates with fixed history")
		}
	}
	// Keys stay reachable after all the boundary moves.
	for _, k := range ks[:10] {
		if res := net.DiscoverRandom(k, false, r); !res.Satisfied {
			t.Fatalf("key %q lost after balancing", k)
		}
	}
}

func TestEqualLoadMoves(t *testing.T) {
	net, _, _ := buildLoaded(t, 7, []int{40, 10, 40, 10}, 60, 500)
	movedAny := false
	for _, id := range net.PeerIDs() {
		moved, err := (EqualLoad{}).Periodic(net, id)
		if err != nil {
			t.Fatal(err)
		}
		movedAny = movedAny || moved
		if err := net.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if !movedAny {
		t.Logf("note: EqualLoad applied no move on this seed")
	}
}

func TestKChoicesPlacesAtBestCandidate(t *testing.T) {
	net, r, _ := buildLoaded(t, 8, []int{40, 10, 40, 10}, 60, 500)
	kc := KChoices{K: 4}
	id := kc.PlaceJoin(net, r, 25)
	if _, exists := net.Peer(id); exists {
		t.Fatalf("candidate id collides with existing peer")
	}
	if err := net.JoinPeer(id, 25, r); err != nil {
		t.Fatalf("join at chosen position: %v", err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKChoicesDefaultK(t *testing.T) {
	net, r, _ := buildLoaded(t, 9, []int{10, 10}, 20, 50)
	kc := KChoices{} // K unset -> default 4
	id := kc.PlaceJoin(net, r, 10)
	if id == keys.Epsilon {
		t.Fatalf("PlaceJoin returned empty id")
	}
}

// TestKChoicesBeatsRandomOnAverage verifies the KC premise: the
// predicted pair throughput of the chosen position is at least that
// of a random single candidate (statistically).
func TestKChoicesBeatsRandomOnAverage(t *testing.T) {
	net, r, _ := buildLoaded(t, 10, []int{40, 10, 40, 10, 40, 10}, 80, 800)
	kc := KChoices{K: 4}
	sumBest, sumRand := 0, 0
	for i := 0; i < 60; i++ {
		idBest := kc.PlaceJoin(net, r, 25)
		idRand := randomID(net, r)
		sumBest += kc.score(net, idBest, 25)
		sumRand += kc.score(net, idRand, 25)
	}
	if sumBest < sumRand {
		t.Fatalf("k-choices scored %d below random %d", sumBest, sumRand)
	}
}

func TestDirectoryOnlyDirectorActs(t *testing.T) {
	net, _, _ := buildLoaded(t, 12, []int{40, 10, 40, 10}, 60, 500)
	dir := Directory{}
	ids := net.PeerIDs()
	// Non-director peers are no-ops.
	for _, id := range ids[1:] {
		moved, err := dir.Periodic(net, id)
		if err != nil || moved {
			t.Fatalf("non-director %q acted: %v %v", id, moved, err)
		}
	}
	// The director may trigger moves; the overlay must stay valid.
	if _, err := dir.Periodic(net, ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryFewerMovesThanMLT(t *testing.T) {
	countMoves := func(strategy Strategy, seed int64) int {
		net, _, _ := buildLoaded(t, seed, []int{40, 10, 40, 10, 40, 10, 40, 10}, 80, 600)
		moves := 0
		for _, id := range net.PeerIDs() {
			moved, err := strategy.Periodic(net, id)
			if err != nil {
				t.Fatal(err)
			}
			if moved {
				moves++
			}
		}
		return moves
	}
	mlt := countMoves(MLT{}, 13)
	dir := countMoves(Directory{Stride: 2, Moves: 2}, 13)
	t.Logf("boundary-move rounds: MLT=%d Directory=%d", mlt, dir)
	if dir > mlt && mlt > 0 {
		t.Fatalf("semi-centralized scheduling should not move more than MLT everywhere")
	}
}

func TestDirectoryPlaceJoinAndName(t *testing.T) {
	net, r, _ := buildLoaded(t, 14, []int{10, 10}, 20, 50)
	d := Directory{}
	if d.Name() != "Directory" {
		t.Fatalf("Name = %q", d.Name())
	}
	id := d.PlaceJoin(net, r, 10)
	if _, exists := net.Peer(id); exists {
		t.Fatalf("PlaceJoin returned existing id")
	}
}

func TestMLTWithWrappedRange(t *testing.T) {
	// Force the minimum peer to host wrapped keys (keys above the
	// maximum peer id) and check MLT still produces a valid state.
	r := rand.New(rand.NewSource(11))
	net := core.NewNetwork(keys.LowerAlnum, core.PlacementLexicographic)
	// Two peers with low ids: every key above "b..." wraps to the min.
	for _, id := range []keys.Key{"aaaaaaaaaaaa", "bbbbbbbbbbbb"} {
		if err := net.JoinPeer(id, 10, r); err != nil {
			t.Fatal(err)
		}
	}
	var ks []keys.Key
	for i := 0; i < 30; i++ {
		k := keys.LowerAlnum.RandomKey(r, 2, 6)
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
		ks = append(ks, k)
	}
	net.ResetUnit()
	for i := 0; i < 200; i++ {
		net.DiscoverRandom(ks[r.Intn(len(ks))], true, r)
	}
	net.ResetUnit()
	for _, id := range net.PeerIDs() {
		if _, err := (MLT{}).Periodic(net, id); err != nil {
			t.Fatalf("MLT on wrapped range: %v", err)
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("invalid after wrapped MLT: %v", err)
		}
	}
	for _, k := range ks {
		if res := net.DiscoverRandom(k, false, r); !res.Satisfied {
			t.Fatalf("key %q lost", k)
		}
	}
}
