// Package lb implements the load-balancing strategies of RR-6557
// Section 3.3 and Section 4:
//
//   - MLT (Max Local Throughput), the paper's contribution: at the end
//     of each time unit a peer S and its predecessor P redistribute
//     the tree nodes they host by moving P along the ring so that the
//     pairwise throughput min(L_S,C_S)+min(L_P,C_P) predicted from the
//     last unit's per-node loads is maximised.
//   - KC, the adaptation of Ledlie & Seltzer's k-choices: a joining
//     peer evaluates k candidate ring positions and takes the one
//     yielding the best local balance.
//   - EqualLoad, an ablation in the spirit of Karger & Ruhl's item
//     balancing: the same boundary move as MLT but equalising loads
//     while ignoring the heterogeneous capacities.
//   - NoLB, the baseline.
package lb

import (
	"fmt"
	"math/rand"
	"sort"

	"dlpt/internal/core"
	"dlpt/internal/keys"
)

// Strategy is a load-balancing policy plugged into the simulation.
type Strategy interface {
	// Name identifies the strategy in reports ("MLT", "KC", ...).
	Name() string
	// Periodic runs the end-of-unit balancing step for peer s (paired
	// with its predecessor). It reports whether a boundary move was
	// applied.
	Periodic(net *core.Network, s keys.Key) (bool, error)
	// PlaceJoin chooses the ring identifier for a peer about to join
	// with the given capacity.
	PlaceJoin(net *core.Network, r *rand.Rand, capacity int) keys.Key
}

// randomID draws a fresh peer identifier not colliding with existing
// peers or tree nodes.
func randomID(net *core.Network, r *rand.Rand) keys.Key {
	for {
		id := net.Alphabet.RandomKey(r, 12, 12)
		if _, exists := net.Peer(id); !exists && !net.HasNode(id) {
			return id
		}
	}
}

// --- NoLB --------------------------------------------------------------------

// NoLB is the no-load-balancing baseline.
type NoLB struct{}

// Name implements Strategy.
func (NoLB) Name() string { return "NoLB" }

// Periodic implements Strategy (no-op).
func (NoLB) Periodic(*core.Network, keys.Key) (bool, error) { return false, nil }

// PlaceJoin implements Strategy with a uniformly random identifier.
func (NoLB) PlaceJoin(net *core.Network, r *rand.Rand, _ int) keys.Key {
	return randomID(net, r)
}

// --- boundary scan shared by MLT and EqualLoad --------------------------------

// pairState captures the joint node population of a predecessor/
// successor peer pair in circular order.
type pairState struct {
	p, s   *core.Peer
	nodes  []keys.Key // circular order starting after pred(P)
	loads  []int      // previous-unit load of each node
	prefix []int      // prefix[i] = sum of loads[0:i]
	split  int        // current boundary: first split nodes are on P
}

// circularSort orders ks ascending starting just after anchor on the
// circular key space: keys above anchor first, then wrapped keys.
func circularSort(ks []keys.Key, anchor keys.Key) {
	keys.SortKeys(ks)
	// Rotate: find the first key > anchor.
	i := 0
	for i < len(ks) && ks[i] <= anchor {
		i++
	}
	rotated := make([]keys.Key, 0, len(ks))
	rotated = append(rotated, ks[i:]...)
	rotated = append(rotated, ks[:i]...)
	copy(ks, rotated)
}

// gatherPair collects the pair (pred(S), S) node population. It
// returns false when the pair is degenerate (fewer than two peers or
// fewer than two nodes) or when sID no longer names a peer — a
// balancing move earlier in the same round may have renamed it, which
// callers iterating a snapshot of peer ids must tolerate.
func gatherPair(net *core.Network, sID keys.Key) (*pairState, bool, error) {
	s, ok := net.Peer(sID)
	if !ok {
		return nil, false, nil
	}
	if s.Pred == s.ID {
		return nil, false, nil // single peer
	}
	p, ok := net.Peer(s.Pred)
	if !ok {
		return nil, false, fmt.Errorf("lb: broken pred link %q -> %q", sID, s.Pred)
	}
	st := &pairState{p: p, s: s}
	st.nodes = append(st.nodes, p.NodeKeys()...)
	st.nodes = append(st.nodes, s.NodeKeys()...)
	if len(st.nodes) < 2 {
		return nil, false, nil
	}
	circularSort(st.nodes, p.Pred)
	st.split = p.NumNodes()
	st.loads = make([]int, len(st.nodes))
	st.prefix = make([]int, len(st.nodes)+1)
	for i, k := range st.nodes {
		var n *core.Node
		if v, ok := p.Nodes[k]; ok {
			n = v
		} else if v, ok := s.Nodes[k]; ok {
			n = v
		} else {
			return nil, false, fmt.Errorf("lb: node %q vanished from pair", k)
		}
		st.loads[i] = n.LoadPrev
		st.prefix[i+1] = st.prefix[i] + n.LoadPrev
	}
	return st, true, nil
}

// throughputAt returns the predicted pair throughput for boundary j
// (P hosting the first j nodes): min(L_P,C_P) + min(L_S,C_S).
func (st *pairState) throughputAt(j int) int {
	lp := st.prefix[j]
	ls := st.prefix[len(st.nodes)] - lp
	tp := lp
	if st.p.Capacity < tp {
		tp = st.p.Capacity
	}
	ts := ls
	if st.s.Capacity < ts {
		ts = st.s.Capacity
	}
	return tp + ts
}

// imbalanceAt returns |L_P - L_S| for boundary j (the EqualLoad
// objective, capacity-blind).
func (st *pairState) imbalanceAt(j int) int {
	lp := st.prefix[j]
	ls := st.prefix[len(st.nodes)] - lp
	if lp > ls {
		return lp - ls
	}
	return ls - lp
}

// apply moves the boundary to j: nodes change peers and P takes the
// identifier of the last node it keeps (preserving the mapping rule
// host(n) = lowest peer >= n). j must be in [1, len(nodes)-1].
func (st *pairState) apply(net *core.Network, j int) error {
	if j == st.split {
		return nil
	}
	if j < 1 || j > len(st.nodes)-1 {
		return fmt.Errorf("lb: boundary %d out of range", j)
	}
	newID := st.nodes[j-1]
	if _, exists := net.Peer(newID); exists && newID != st.p.ID {
		// The boundary node key collides with an existing peer id
		// (only possible with adversarial identifiers): skip the move
		// rather than break the mapping rule.
		return nil
	}
	if j > st.split {
		for _, k := range st.nodes[st.split:j] {
			if err := net.MoveNode(k, st.s.ID, st.p.ID); err != nil {
				return err
			}
		}
	} else {
		for _, k := range st.nodes[j:st.split] {
			if err := net.MoveNode(k, st.p.ID, st.s.ID); err != nil {
				return err
			}
		}
	}
	return net.RenamePeer(st.p.ID, newID)
}

// --- MLT ----------------------------------------------------------------------

// MLT is the paper's Max Local Throughput heuristic (Section 3.3).
type MLT struct{}

// Name implements Strategy.
func (MLT) Name() string { return "MLT" }

// PlaceJoin implements Strategy with a uniformly random identifier
// (MLT balances periodically, not at join time).
func (MLT) PlaceJoin(net *core.Network, r *rand.Rand, _ int) keys.Key {
	return randomID(net, r)
}

// Periodic implements Strategy: scan the |ν_S ∪ ν_P|-1 candidate
// boundaries and apply the throughput-maximising one. The scan is
// O(|ν_S ∪ ν_P|) as stated in the paper.
func (MLT) Periodic(net *core.Network, sID keys.Key) (bool, error) {
	st, ok, err := gatherPair(net, sID)
	if err != nil || !ok {
		return false, err
	}
	best, bestThr := st.split, st.throughputAt(st.split)
	for j := 1; j <= len(st.nodes)-1; j++ {
		if thr := st.throughputAt(j); thr > bestThr {
			best, bestThr = j, thr
		}
	}
	if best == st.split {
		return false, nil
	}
	return true, st.apply(net, best)
}

// --- EqualLoad (ablation) ------------------------------------------------------

// EqualLoad performs the same boundary move as MLT but minimises
// |L_P - L_S|, ignoring peer capacities — the behaviour of classic
// DHT item balancing under heterogeneous peers. It exists to quantify
// the value of MLT's throughput objective (ablation A2 of DESIGN.md).
type EqualLoad struct{}

// Name implements Strategy.
func (EqualLoad) Name() string { return "EqualLoad" }

// PlaceJoin implements Strategy with a uniformly random identifier.
func (EqualLoad) PlaceJoin(net *core.Network, r *rand.Rand, _ int) keys.Key {
	return randomID(net, r)
}

// Periodic implements Strategy.
func (EqualLoad) Periodic(net *core.Network, sID keys.Key) (bool, error) {
	st, ok, err := gatherPair(net, sID)
	if err != nil || !ok {
		return false, err
	}
	best, bestImb := st.split, st.imbalanceAt(st.split)
	for j := 1; j <= len(st.nodes)-1; j++ {
		if imb := st.imbalanceAt(j); imb < bestImb {
			best, bestImb = j, imb
		}
	}
	if best == st.split {
		return false, nil
	}
	return true, st.apply(net, best)
}

// --- KC (k-choices) -------------------------------------------------------------

// KChoices adapts Ledlie & Seltzer's k-choices algorithm: each
// joining peer draws K candidate identifiers, predicts the local
// pairwise throughput obtained by joining at each, and picks the
// best. Balancing happens only at join time (hence its strength on
// dynamic networks, Section 4).
type KChoices struct {
	// K is the number of candidate positions (the paper uses k = 4).
	K int
}

// Name implements Strategy.
func (kc KChoices) Name() string { return "KC" }

// Periodic implements Strategy (KC acts at joins only).
func (KChoices) Periodic(*core.Network, keys.Key) (bool, error) { return false, nil }

// PlaceJoin implements Strategy: evaluate K random positions.
func (kc KChoices) PlaceJoin(net *core.Network, r *rand.Rand, capacity int) keys.Key {
	k := kc.K
	if k < 1 {
		k = 4
	}
	var bestID keys.Key
	bestThr := -1
	for i := 0; i < k; i++ {
		id := randomID(net, r)
		thr := kc.score(net, id, capacity)
		if thr > bestThr {
			bestID, bestThr = id, thr
		}
	}
	return bestID
}

// score predicts the pairwise throughput of the would-be split: the
// candidate takes over the nodes of its successor Q lying at or below
// the candidate position.
func (kc KChoices) score(net *core.Network, id keys.Key, capacity int) int {
	qid, ok := net.Ring().HostOf(id)
	if !ok {
		return 0
	}
	q, ok := net.Peer(qid)
	if !ok {
		return 0
	}
	lNew, lQ := 0, 0
	for k, n := range q.Nodes {
		if keys.BetweenRightIncl(k, q.Pred, id) {
			lNew += n.LoadPrev
		} else {
			lQ += n.LoadPrev
		}
	}
	tNew := lNew
	if capacity < tNew {
		tNew = capacity
	}
	tQ := lQ
	if q.Capacity < tQ {
		tQ = q.Capacity
	}
	return tNew + tQ
}

// --- Directory (semi-centralized, Godfrey et al.) -----------------------------

// Directory adapts the semi-centralized scheme of Godfrey et al.
// (INFOCOM 2004) that Section 5 discusses: an elected directory peer
// gathers (load, capacity) reports from a sample of the peers and
// schedules local boundary moves only where they matter most. Here
// the lowest-id peer is the director; each round it samples every
// Stride-th peer (partial knowledge) and triggers the MLT boundary
// move on the Moves most-overloaded sampled peers. The paper's
// critique — the semi-centralized fashion — shows up as the director
// being a single coordination point; the benefit is far fewer
// balancing actions per unit (measured by the ablation benches).
type Directory struct {
	// Stride samples every Stride-th peer (default 2).
	Stride int
	// Moves bounds the boundary moves triggered per round (default 4).
	Moves int
}

// Name implements Strategy.
func (Directory) Name() string { return "Directory" }

// PlaceJoin implements Strategy with a uniformly random identifier.
func (Directory) PlaceJoin(net *core.Network, r *rand.Rand, _ int) keys.Key {
	return randomID(net, r)
}

// Periodic implements Strategy: only the elected (lowest-id) peer
// acts; it ranks the sampled peers by overload and dispatches MLT
// steps to the worst ones.
func (d Directory) Periodic(net *core.Network, s keys.Key) (bool, error) {
	ids := net.Ring().IDs()
	if len(ids) == 0 || ids[0] != s {
		return false, nil // not the director (or director renamed)
	}
	stride := d.Stride
	if stride < 1 {
		stride = 2
	}
	moves := d.Moves
	if moves < 1 {
		moves = 4
	}
	type report struct {
		id       keys.Key
		overload float64
	}
	var reports []report
	for i := 0; i < len(ids); i += stride {
		p, ok := net.Peer(ids[i])
		if !ok {
			continue
		}
		reports = append(reports, report{
			id:       ids[i],
			overload: float64(p.LoadPrev()) / float64(p.Capacity),
		})
	}
	sort.Slice(reports, func(a, b int) bool { return reports[a].overload > reports[b].overload })
	movedAny := false
	for i := 0; i < len(reports) && i < moves; i++ {
		moved, err := (MLT{}).Periodic(net, reports[i].id)
		if err != nil {
			return movedAny, err
		}
		movedAny = movedAny || moved
	}
	return movedAny, nil
}

// RunRound runs one end-of-unit balancing round: Periodic for every
// peer of a snapshot of the ring, in ring order, counting the applied
// boundary moves. Peers renamed by earlier moves in the same round
// are skipped (gatherPair tolerates vanished ids). It is the
// engine-portable balancing step of the membership subsystem.
func RunRound(net *core.Network, s Strategy) (int, error) {
	moves := 0
	for _, id := range net.PeerIDs() {
		moved, err := s.Periodic(net, id)
		if err != nil {
			return moves, err
		}
		if moved {
			moves++
		}
	}
	// Boundary moves and renames changed node hosting: the affected
	// replica sets follow their hosts' new successors, paid as
	// replication transfer traffic.
	net.RehomeReplicas()
	return moves, nil
}

// ByName returns the strategy with the given name ("MLT", "KC",
// "EqualLoad", "Directory", "NoLB"); the KC variant uses k=4 as in
// the paper.
func ByName(name string) (Strategy, error) {
	switch name {
	case "MLT", "mlt":
		return MLT{}, nil
	case "KC", "kc":
		return KChoices{K: 4}, nil
	case "EqualLoad", "equalload":
		return EqualLoad{}, nil
	case "Directory", "directory":
		return Directory{}, nil
	case "NoLB", "nolb", "none", "":
		return NoLB{}, nil
	}
	return nil, fmt.Errorf("lb: unknown strategy %q", name)
}
