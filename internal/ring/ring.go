// Package ring maintains the bidirectional ring of peer identifiers
// of the DLPT (Section 3 of RR-6557). Peers are ordered
// lexicographically; each peer knows its immediate predecessor and
// successor, and the mapping rule assigns a tree node n to the peer
// with the lowest identifier >= n, wrapping to the minimum peer when
// n exceeds the maximum peer identifier.
package ring

import (
	"fmt"
	"sort"

	"dlpt/internal/keys"
)

// Ring is an ordered set of peer identifiers with circular
// successor/predecessor structure. The zero value is an empty ring.
// Ring is a bookkeeping structure of the simulator and of the load
// balancer — the protocol itself only relies on the per-peer
// pred/succ links that internal/core maintains; invariants between
// the two are cross-checked in tests.
type Ring struct {
	ids []keys.Key // sorted ascending, unique
}

// New returns an empty ring.
func New() *Ring { return &Ring{} }

// Len returns the number of peers.
func (r *Ring) Len() int { return len(r.ids) }

// IDs returns a copy of the peer identifiers in ascending order.
func (r *Ring) IDs() []keys.Key {
	out := make([]keys.Key, len(r.ids))
	copy(out, r.ids)
	return out
}

// Contains reports whether id is a member.
func (r *Ring) Contains(id keys.Key) bool {
	i := r.search(id)
	return i < len(r.ids) && r.ids[i] == id
}

// search returns the insertion index of id.
func (r *Ring) search(id keys.Key) int {
	return sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= id })
}

// Insert adds id to the ring. It reports whether the id was new.
func (r *Ring) Insert(id keys.Key) bool {
	i := r.search(id)
	if i < len(r.ids) && r.ids[i] == id {
		return false
	}
	r.ids = append(r.ids, "")
	copy(r.ids[i+1:], r.ids[i:])
	r.ids[i] = id
	return true
}

// Remove deletes id from the ring. It reports whether it was present.
func (r *Ring) Remove(id keys.Key) bool {
	i := r.search(id)
	if i >= len(r.ids) || r.ids[i] != id {
		return false
	}
	copy(r.ids[i:], r.ids[i+1:])
	r.ids = r.ids[:len(r.ids)-1]
	return true
}

// Min returns the lowest peer identifier (P_min).
func (r *Ring) Min() (keys.Key, bool) {
	if len(r.ids) == 0 {
		return keys.Epsilon, false
	}
	return r.ids[0], true
}

// Max returns the highest peer identifier (P_max).
func (r *Ring) Max() (keys.Key, bool) {
	if len(r.ids) == 0 {
		return keys.Epsilon, false
	}
	return r.ids[len(r.ids)-1], true
}

// HostOf returns the peer responsible for node identifier n: the peer
// with the lowest identifier >= n, or the minimum peer when n exceeds
// every peer (Section 3's mapping rule).
func (r *Ring) HostOf(n keys.Key) (keys.Key, bool) {
	if len(r.ids) == 0 {
		return keys.Epsilon, false
	}
	i := r.search(n)
	if i == len(r.ids) {
		return r.ids[0], true
	}
	return r.ids[i], true
}

// Successor returns the peer immediately after id on the ring
// (the lowest identifier strictly greater, wrapping to the minimum).
// id need not be a member.
func (r *Ring) Successor(id keys.Key) (keys.Key, bool) {
	if len(r.ids) == 0 {
		return keys.Epsilon, false
	}
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] > id })
	if i == len(r.ids) {
		return r.ids[0], true
	}
	return r.ids[i], true
}

// Predecessor returns the peer immediately before id on the ring
// (the highest identifier strictly lower, wrapping to the maximum).
// id need not be a member.
func (r *Ring) Predecessor(id keys.Key) (keys.Key, bool) {
	if len(r.ids) == 0 {
		return keys.Epsilon, false
	}
	i := r.search(id)
	if i == 0 {
		return r.ids[len(r.ids)-1], true
	}
	return r.ids[i-1], true
}

// Replace atomically substitutes oldID with newID, preserving ring
// membership. This is the primitive used by the MLT load balancer
// when it moves a peer along the ring. It fails when oldID is absent,
// when newID is already a member, or when the move would reorder the
// ring (newID must keep the same neighbours).
func (r *Ring) Replace(oldID, newID keys.Key) error {
	if oldID == newID {
		return nil
	}
	i := r.search(oldID)
	if i >= len(r.ids) || r.ids[i] != oldID {
		return fmt.Errorf("ring: replace of absent peer %q", oldID)
	}
	if r.Contains(newID) {
		return fmt.Errorf("ring: replacement id %q already present", newID)
	}
	if len(r.ids) > 1 {
		// The new id must stay strictly between the current
		// neighbours so that the circular order is unchanged.
		pred := r.ids[(i-1+len(r.ids))%len(r.ids)]
		succ := r.ids[(i+1)%len(r.ids)]
		if pred != oldID && succ != oldID { // more than 2 peers
			if !keys.Between(newID, pred, succ) {
				return fmt.Errorf("ring: replacement %q leaves interval (%q,%q)",
					newID, pred, succ)
			}
		}
	}
	r.ids[i] = newID
	// With 1 or 2 peers any position is order-equivalent, but keep
	// the slice sorted.
	sort.Slice(r.ids, func(a, b int) bool { return r.ids[a] < r.ids[b] })
	return nil
}

// Validate checks internal ordering and uniqueness.
func (r *Ring) Validate() error {
	for i := 1; i < len(r.ids); i++ {
		if r.ids[i-1] >= r.ids[i] {
			return fmt.Errorf("ring: ids out of order at %d: %q >= %q",
				i, r.ids[i-1], r.ids[i])
		}
	}
	return nil
}
