package ring

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dlpt/internal/keys"
)

func build(ids ...keys.Key) *Ring {
	r := New()
	for _, id := range ids {
		r.Insert(id)
	}
	return r
}

func TestEmptyRing(t *testing.T) {
	r := New()
	if r.Len() != 0 {
		t.Fatalf("empty ring Len = %d", r.Len())
	}
	if _, ok := r.Min(); ok {
		t.Fatalf("Min on empty must fail")
	}
	if _, ok := r.Max(); ok {
		t.Fatalf("Max on empty must fail")
	}
	if _, ok := r.HostOf("x"); ok {
		t.Fatalf("HostOf on empty must fail")
	}
	if _, ok := r.Successor("x"); ok {
		t.Fatalf("Successor on empty must fail")
	}
	if _, ok := r.Predecessor("x"); ok {
		t.Fatalf("Predecessor on empty must fail")
	}
}

func TestInsertRemoveContains(t *testing.T) {
	r := New()
	if !r.Insert("b") || !r.Insert("a") || !r.Insert("c") {
		t.Fatalf("inserts of new ids must succeed")
	}
	if r.Insert("b") {
		t.Fatalf("duplicate insert must fail")
	}
	if !reflect.DeepEqual(r.IDs(), []keys.Key{"a", "b", "c"}) {
		t.Fatalf("IDs = %v", r.IDs())
	}
	if !r.Contains("b") || r.Contains("x") {
		t.Fatalf("Contains wrong")
	}
	if !r.Remove("b") || r.Remove("b") {
		t.Fatalf("Remove semantics wrong")
	}
	if !reflect.DeepEqual(r.IDs(), []keys.Key{"a", "c"}) {
		t.Fatalf("IDs after remove = %v", r.IDs())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIDsReturnsCopy(t *testing.T) {
	r := build("a", "b")
	ids := r.IDs()
	ids[0] = "z"
	if r.IDs()[0] != keys.Key("a") {
		t.Fatalf("IDs must return a copy")
	}
}

func TestMinMax(t *testing.T) {
	r := build("m", "a", "z")
	if mn, _ := r.Min(); mn != keys.Key("a") {
		t.Fatalf("Min = %q", mn)
	}
	if mx, _ := r.Max(); mx != keys.Key("z") {
		t.Fatalf("Max = %q", mx)
	}
}

// TestHostOfPaperRule checks the Section 3 mapping: the peer chosen to
// run node n is the lowest peer id >= n; when n > Pmax the host is
// Pmin.
func TestHostOfPaperRule(t *testing.T) {
	r := build("d", "m", "t")
	cases := []struct {
		n, want keys.Key
	}{
		{"a", "d"},
		{"d", "d"}, // inclusive
		{"da", "m"},
		{"m", "m"},
		{"p", "t"},
		{"t", "t"},
		{"z", "d"}, // wrap: n > Pmax -> Pmin
		{"", "d"},
	}
	for _, c := range cases {
		got, ok := r.HostOf(c.n)
		if !ok || got != c.want {
			t.Errorf("HostOf(%q) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestSuccessorPredecessor(t *testing.T) {
	r := build("d", "m", "t")
	cases := []struct {
		id, succ, pred keys.Key
	}{
		{"d", "m", "t"}, // wrap pred of min
		{"m", "t", "d"},
		{"t", "d", "m"}, // wrap succ of max
		{"e", "m", "d"}, // non-members fall between
		{"z", "d", "t"},
		{"", "d", "t"},
	}
	for _, c := range cases {
		if got, _ := r.Successor(c.id); got != c.succ {
			t.Errorf("Successor(%q) = %q, want %q", c.id, got, c.succ)
		}
		if got, _ := r.Predecessor(c.id); got != c.pred {
			t.Errorf("Predecessor(%q) = %q, want %q", c.id, got, c.pred)
		}
	}
}

func TestSingletonRing(t *testing.T) {
	r := build("p")
	if s, _ := r.Successor("p"); s != keys.Key("p") {
		t.Fatalf("successor of sole peer must be itself, got %q", s)
	}
	if p, _ := r.Predecessor("p"); p != keys.Key("p") {
		t.Fatalf("predecessor of sole peer must be itself, got %q", p)
	}
	if h, _ := r.HostOf("zzz"); h != keys.Key("p") {
		t.Fatalf("sole peer hosts everything, got %q", h)
	}
}

func TestReplaceBasic(t *testing.T) {
	r := build("d", "m", "t")
	if err := r.Replace("m", "k"); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if !reflect.DeepEqual(r.IDs(), []keys.Key{"d", "k", "t"}) {
		t.Fatalf("IDs = %v", r.IDs())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceNoop(t *testing.T) {
	r := build("a", "b")
	if err := r.Replace("a", "a"); err != nil {
		t.Fatalf("identity replace must succeed: %v", err)
	}
}

func TestReplaceErrors(t *testing.T) {
	r := build("d", "m", "t")
	if err := r.Replace("x", "y"); err == nil {
		t.Fatalf("replacing absent id must fail")
	}
	if err := r.Replace("m", "t"); err == nil {
		t.Fatalf("replacing with existing id must fail")
	}
	if err := r.Replace("m", "a"); err == nil {
		t.Fatalf("reordering replace must fail (a < d)")
	}
	if err := r.Replace("m", "z"); err == nil {
		t.Fatalf("reordering replace must fail (z > t)")
	}
}

func TestReplaceWrapInterval(t *testing.T) {
	// Moving the max peer within the wrapped interval (pred, min).
	r := build("d", "m", "t")
	if err := r.Replace("t", "x"); err != nil {
		t.Fatalf("t -> x stays between m and d (wrapped): %v", err)
	}
	if err := r.Replace("x", "a"); err != nil {
		t.Fatalf("x -> a also lies in wrapped interval (m, d): %v", err)
	}
	if !reflect.DeepEqual(r.IDs(), []keys.Key{"a", "d", "m"}) {
		t.Fatalf("IDs = %v", r.IDs())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceTwoPeers(t *testing.T) {
	r := build("d", "m")
	if err := r.Replace("d", "z"); err != nil {
		t.Fatalf("with two peers any reposition is order-equivalent: %v", err)
	}
	if !reflect.DeepEqual(r.IDs(), []keys.Key{"m", "z"}) {
		t.Fatalf("IDs = %v", r.IDs())
	}
}

func TestReplaceSingleton(t *testing.T) {
	r := build("d")
	if err := r.Replace("d", "q"); err != nil {
		t.Fatalf("singleton replace: %v", err)
	}
	if !r.Contains("q") {
		t.Fatalf("q missing after replace")
	}
}

// --- property tests ---------------------------------------------------------

func randIDs(r *rand.Rand, n int) []keys.Key {
	seen := map[keys.Key]bool{}
	var out []keys.Key
	for len(out) < n {
		l := 1 + r.Intn(8)
		b := make([]byte, l)
		for i := range b {
			b[i] = byte('a' + r.Intn(4))
		}
		k := keys.Key(b)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func TestPropSuccessorPredecessorInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ring := build(randIDs(r, 3+r.Intn(12))...)
		for _, id := range ring.IDs() {
			s, _ := ring.Successor(id)
			p, _ := ring.Predecessor(s)
			if p != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSuccessorCyclesThroughAll(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ring := build(randIDs(r, 2+r.Intn(10))...)
		start, _ := ring.Min()
		cur := start
		seen := map[keys.Key]bool{cur: true}
		for i := 0; i < ring.Len()-1; i++ {
			cur, _ = ring.Successor(cur)
			if seen[cur] {
				return false
			}
			seen[cur] = true
		}
		next, _ := ring.Successor(cur)
		return next == start && len(seen) == ring.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropHostOfIsLowestNotBelow(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ring := build(randIDs(r, 1+r.Intn(10))...)
		n := randIDs(r, 1)[0]
		h, _ := ring.HostOf(n)
		ids := ring.IDs()
		// brute force
		var want keys.Key
		found := false
		for _, id := range ids {
			if id >= n && (!found || id < want) {
				want, found = id, true
			}
		}
		if !found {
			want = ids[0]
		}
		return h == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropInsertRemoveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ids := randIDs(r, 10)
		ring := build(ids...)
		r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids {
			if !ring.Remove(id) {
				return false
			}
			if err := ring.Validate(); err != nil {
				return false
			}
		}
		return ring.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
