// Package pgrid implements P-Grid (Aberer et al.; Datta, Hauswirth,
// John, Schmidt, Aberer, "Range queries in trie-structured overlays",
// P2P 2005), the second trie-structured comparator of Table 2.
//
// P-Grid partitions the binary key space into a prefix-free set of
// paths; each peer is responsible for one path (possibly replicated)
// and keeps, for every bit of its path, references to peers on the
// other side of that split. Queries resolve one bit per hop:
// O(log |Π|) routing with |Π| key-space partitions.
//
// The package constructs the *converged* state of the exchange-based
// P-Grid protocol directly (documented substitution in DESIGN.md):
// the partition trie is built by splitting while partitions overflow
// and peers remain, then peers are assigned and routing tables drawn
// randomly among the correct candidates.
package pgrid

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"dlpt/internal/keys"
)

// Peer is one P-Grid peer.
type Peer struct {
	Name string
	// Path is the binary partition this peer is responsible for.
	Path string
	// Refs[i] holds names of peers whose path agrees with Path on the
	// first i bits and differs at bit i.
	Refs [][]string
	// Keys are the stored keys of the partition (replicated across
	// the partition's peers).
	Keys map[keys.Key]bool
}

// Counters tracks query traffic.
type Counters struct {
	Queries     int
	RoutingHops int
}

// Grid is a converged P-Grid overlay.
type Grid struct {
	Counters Counters

	d      int
	peers  map[string]*Peer
	leaves []string            // sorted partition paths
	byPath map[string][]string // path -> peer names
	rng    *rand.Rand
}

// Config parameterizes construction.
type Config struct {
	// D is the key bit length.
	D int
	// MaxKeysPerLeaf stops splitting once a partition fits.
	MaxKeysPerLeaf int
	// RefsPerLevel is the number of references kept per path bit.
	RefsPerLevel int
}

// Build constructs the converged grid for the given peers and keys.
func Build(cfg Config, peerNames []string, ks []keys.Key, rng *rand.Rand) (*Grid, error) {
	if cfg.D < 1 {
		return nil, fmt.Errorf("pgrid: D = %d", cfg.D)
	}
	if cfg.MaxKeysPerLeaf < 1 {
		cfg.MaxKeysPerLeaf = 1
	}
	if cfg.RefsPerLevel < 1 {
		cfg.RefsPerLevel = 2
	}
	if len(peerNames) == 0 {
		return nil, fmt.Errorf("pgrid: no peers")
	}
	g := &Grid{
		d:      cfg.D,
		peers:  make(map[string]*Peer),
		byPath: make(map[string][]string),
		rng:    rng,
	}
	// Bucket keys by bit encoding.
	enc := make(map[keys.Key]string, len(ks))
	for _, k := range ks {
		enc[k] = keys.Bits(k, cfg.D)
	}
	// Recursive split with a peer budget: both children always exist
	// (the space is fully covered) and each gets at least one peer.
	var split func(prefix string, part []keys.Key, budget int)
	split = func(prefix string, part []keys.Key, budget int) {
		if budget < 2 || len(part) <= cfg.MaxKeysPerLeaf || len(prefix) >= cfg.D {
			g.leaves = append(g.leaves, prefix)
			return
		}
		var zero, one []keys.Key
		for _, k := range part {
			if enc[k][len(prefix)] == '0' {
				zero = append(zero, k)
			} else {
				one = append(one, k)
			}
		}
		b0 := budget * (len(zero) + 1) / (len(part) + 2)
		if b0 < 1 {
			b0 = 1
		}
		if b0 > budget-1 {
			b0 = budget - 1
		}
		split(prefix+"0", zero, b0)
		split(prefix+"1", one, budget-b0)
	}
	split("", ks, len(peerNames))
	sort.Strings(g.leaves)

	// Assign peers to partitions round-robin (extras become replicas).
	for i, name := range peerNames {
		path := g.leaves[i%len(g.leaves)]
		p := &Peer{
			Name: name,
			Path: path,
			Refs: make([][]string, len(path)),
			Keys: make(map[keys.Key]bool),
		}
		if _, dup := g.peers[name]; dup {
			return nil, fmt.Errorf("pgrid: duplicate peer %q", name)
		}
		g.peers[name] = p
		g.byPath[path] = append(g.byPath[path], name)
	}
	// Store keys on their partitions' replicas.
	for _, k := range ks {
		path := g.leafFor(enc[k])
		for _, name := range g.byPath[path] {
			g.peers[name].Keys[k] = true
		}
	}
	// Draw routing references. The peers share one seeded rng, so the
	// draw order must be canonical: iterating the peer map directly
	// would consume rng state in map order and change every peer's
	// references from run to run.
	names := make([]string, 0, len(g.peers))
	for name := range g.peers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := g.peers[name]
		for i := 0; i < len(p.Path); i++ {
			want := p.Path[:i] + flip(p.Path[i])
			var candidates []string
			for _, path := range g.leaves {
				if strings.HasPrefix(path, want) || strings.HasPrefix(want, path) {
					candidates = append(candidates, g.byPath[path]...)
				}
			}
			sort.Strings(candidates)
			rng.Shuffle(len(candidates), func(a, b int) {
				candidates[a], candidates[b] = candidates[b], candidates[a]
			})
			n := cfg.RefsPerLevel
			if n > len(candidates) {
				n = len(candidates)
			}
			p.Refs[i] = append([]string(nil), candidates[:n]...)
		}
	}
	return g, nil
}

func flip(b byte) string {
	if b == '0' {
		return "1"
	}
	return "0"
}

// leafFor returns the partition path covering the given bit string.
func (g *Grid) leafFor(bits string) string {
	for _, path := range g.leaves {
		if strings.HasPrefix(bits, path) {
			return path
		}
	}
	// Total cover guarantees this cannot happen.
	return g.leaves[len(g.leaves)-1]
}

// NumPartitions returns |Π|.
func (g *Grid) NumPartitions() int { return len(g.leaves) }

// NumPeers returns the number of peers.
func (g *Grid) NumPeers() int { return len(g.peers) }

// Peers returns the peers sorted by name.
func (g *Grid) Peers() []*Peer {
	names := make([]string, 0, len(g.peers))
	for n := range g.peers {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Peer, len(names))
	for i, n := range names {
		out[i] = g.peers[n]
	}
	return out
}

// route walks from peer start towards the partition owning bits,
// resolving at least one bit per hop. It returns the final peer and
// the hop count.
func (g *Grid) route(start *Peer, bits string) (*Peer, int, error) {
	cur := start
	hops := 0
	for !strings.HasPrefix(bits, cur.Path) {
		// First bit where the peer's path disagrees with the target.
		i := 0
		for i < len(cur.Path) && cur.Path[i] == bits[i] {
			i++
		}
		if i >= len(cur.Path) {
			// cur.Path prefixes bits: handled by loop condition.
			break
		}
		refs := cur.Refs[i]
		if len(refs) == 0 {
			return nil, hops, fmt.Errorf("pgrid: peer %q has no refs at level %d", cur.Name, i)
		}
		cur = g.peers[refs[g.rng.Intn(len(refs))]]
		hops++
		if hops > 4*g.d+8 {
			return nil, hops, fmt.Errorf("pgrid: routing did not converge for %q", bits)
		}
	}
	return cur, hops, nil
}

// Lookup reports whether key is stored, routing from a random peer.
func (g *Grid) Lookup(key keys.Key) (bool, int, error) {
	names := g.Peers()
	start := names[g.rng.Intn(len(names))]
	return g.LookupFrom(start, key)
}

// LookupFrom routes the query from the given peer.
func (g *Grid) LookupFrom(start *Peer, key keys.Key) (bool, int, error) {
	bits := keys.Bits(key, g.d)
	dst, hops, err := g.route(start, bits)
	g.Counters.Queries++
	g.Counters.RoutingHops += hops
	if err != nil {
		return false, hops, err
	}
	return dst.Keys[key], hops, nil
}

// Insert routes key to its partition and stores it on every replica.
// The converged partition structure is kept fixed (no dynamic split);
// see the package comment.
func (g *Grid) Insert(key keys.Key) (int, error) {
	bits := keys.Bits(key, g.d)
	names := g.Peers()
	start := names[g.rng.Intn(len(names))]
	dst, hops, err := g.route(start, bits)
	g.Counters.RoutingHops += hops
	if err != nil {
		return hops, err
	}
	for _, name := range g.byPath[dst.Path] {
		g.peers[name].Keys[key] = true
	}
	return hops, nil
}

// Range returns stored keys whose encodings lie in [lo, hi], walking
// the partitions in order from the one owning lo (the trie-order leaf
// traversal of the range-query paper). It also returns the number of
// partition hops performed.
func (g *Grid) Range(lo, hi keys.Key, limit int) ([]keys.Key, int, error) {
	loBits, hiBits := keys.Bits(lo, g.d), keys.Bits(hi, g.d)
	if hiBits < loBits {
		return nil, 0, nil
	}
	startIdx := sort.SearchStrings(g.leaves, loBits)
	if startIdx > 0 {
		// The previous partition may still cover loBits (prefix).
		if strings.HasPrefix(loBits, g.leaves[startIdx-1]) {
			startIdx--
		}
	}
	var out []keys.Key
	hops := 0
	for i := startIdx; i < len(g.leaves); i++ {
		path := g.leaves[i]
		// A partition beginning after hiBits cannot intersect.
		if path > hiBits {
			break
		}
		hops++
		reps := g.byPath[path]
		if len(reps) == 0 {
			continue
		}
		p := g.peers[reps[0]]
		for k := range p.Keys {
			kb := keys.Bits(k, g.d)
			if loBits <= kb && kb <= hiBits {
				out = append(out, k)
			}
		}
	}
	g.Counters.RoutingHops += hops
	sort.Slice(out, func(a, b int) bool {
		return keys.Bits(out[a], g.d) < keys.Bits(out[b], g.d)
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, hops, nil
}

// AvgRoutingState returns the mean number of routing references per
// peer (the "Local State" row of Table 2).
func (g *Grid) AvgRoutingState() float64 {
	total := 0
	for _, p := range g.peers {
		for _, refs := range p.Refs {
			total += len(refs)
		}
	}
	return float64(total) / float64(len(g.peers))
}

// MaxPathLen returns the deepest partition depth (log2 |Π| for a
// balanced grid).
func (g *Grid) MaxPathLen() int {
	m := 0
	for _, path := range g.leaves {
		if len(path) > m {
			m = len(path)
		}
	}
	return m
}

// Validate checks that the partitions form a prefix-free total cover
// of the key space, that every peer's keys match its path, and that
// references point to the correct side of each split.
func (g *Grid) Validate() error {
	// Prefix-free total cover: sum of 2^(d-len(path)) must be 2^d.
	var cover float64
	for i, path := range g.leaves {
		if i > 0 && strings.HasPrefix(path, g.leaves[i-1]) && path != g.leaves[i-1] {
			return fmt.Errorf("pgrid: partition %q nested in %q", path, g.leaves[i-1])
		}
		cover += 1 / float64(uint64(1)<<uint(len(path)))
	}
	if cover < 0.999999 || cover > 1.000001 {
		return fmt.Errorf("pgrid: partitions cover %.6f of the space", cover)
	}
	for _, p := range g.peers {
		for k := range p.Keys {
			if !strings.HasPrefix(keys.Bits(k, g.d), p.Path) {
				return fmt.Errorf("pgrid: key %q misfiled on path %q", k, p.Path)
			}
		}
		for i, refs := range p.Refs {
			want := p.Path[:i] + flip(p.Path[i])
			for _, name := range refs {
				q, ok := g.peers[name]
				if !ok {
					return fmt.Errorf("pgrid: dangling ref %q", name)
				}
				if !strings.HasPrefix(q.Path, want) && !strings.HasPrefix(want, q.Path) {
					return fmt.Errorf("pgrid: ref %q (path %q) wrong for level %d of %q",
						name, q.Path, i, p.Path)
				}
			}
		}
	}
	return nil
}
