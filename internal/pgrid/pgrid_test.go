package pgrid

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

func buildGrid(t *testing.T, nPeers, nKeys int, seed int64) (*Grid, []keys.Key) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var names []string
	for i := 0; i < nPeers; i++ {
		names = append(names, fmt.Sprintf("peer-%03d", i))
	}
	ks := workload.GridCorpus(nKeys)
	g, err := Build(Config{D: 64, MaxKeysPerLeaf: 8, RefsPerLevel: 2}, names, ks, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid grid: %v", err)
	}
	return g, ks
}

func TestBuildRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Build(Config{D: 0}, []string{"a"}, nil, rng); err == nil {
		t.Fatalf("D=0 must fail")
	}
	if _, err := Build(Config{D: 8}, nil, nil, rng); err == nil {
		t.Fatalf("no peers must fail")
	}
	if _, err := Build(Config{D: 8}, []string{"a", "a"}, nil, rng); err == nil {
		t.Fatalf("duplicate peers must fail")
	}
}

func TestBuildPartitionsAndAssignsAll(t *testing.T) {
	g, _ := buildGrid(t, 32, 200, 2)
	if g.NumPeers() != 32 {
		t.Fatalf("NumPeers = %d", g.NumPeers())
	}
	if g.NumPartitions() < 2 {
		t.Fatalf("expected multiple partitions, got %d", g.NumPartitions())
	}
	if g.NumPartitions() > 32 {
		t.Fatalf("more partitions than peers: %d", g.NumPartitions())
	}
	for _, p := range g.Peers() {
		if p.Path == "" && g.NumPartitions() > 1 {
			t.Fatalf("peer %q has empty path", p.Name)
		}
	}
}

func TestLookupFindsAllKeys(t *testing.T) {
	g, ks := buildGrid(t, 24, 150, 3)
	for _, k := range ks {
		found, hops, err := g.Lookup(k)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", k, err)
		}
		if !found {
			t.Fatalf("key %q not found", k)
		}
		if hops > g.MaxPathLen()+1 {
			t.Fatalf("lookup took %d hops, max path %d", hops, g.MaxPathLen())
		}
	}
	found, _, err := g.Lookup("zz_missing_key")
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatalf("absent key must miss")
	}
}

func TestInsertThenLookup(t *testing.T) {
	g, _ := buildGrid(t, 16, 60, 4)
	newKey := keys.Key("zznew_routine")
	if _, err := g.Insert(newKey); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	found, _, err := g.Lookup(newKey)
	if err != nil || !found {
		t.Fatalf("inserted key not found: %v %v", found, err)
	}
}

func TestReplicasShareKeys(t *testing.T) {
	// More peers than partitions forces replication.
	g, ks := buildGrid(t, 40, 30, 5)
	byPath := map[string][]*Peer{}
	for _, p := range g.Peers() {
		byPath[p.Path] = append(byPath[p.Path], p)
	}
	replicated := false
	for _, ps := range byPath {
		if len(ps) > 1 {
			replicated = true
			for i := 1; i < len(ps); i++ {
				if len(ps[i].Keys) != len(ps[0].Keys) {
					t.Fatalf("replicas of %q disagree: %d vs %d keys",
						ps[0].Path, len(ps[i].Keys), len(ps[0].Keys))
				}
			}
		}
	}
	if !replicated {
		t.Fatalf("expected replication with 40 peers over %d partitions (keys=%d)",
			g.NumPartitions(), len(ks))
	}
}

func TestRangeMatchesFilter(t *testing.T) {
	g, ks := buildGrid(t, 24, 150, 6)
	lo, hi := keys.Key("pd"), keys.Key("pz")
	got, hops, err := g.Range(lo, hi, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hops <= 0 {
		t.Fatalf("range must walk partitions")
	}
	want := map[keys.Key]bool{}
	loB, hiB := keys.Bits(lo, 64), keys.Bits(hi, 64)
	for _, k := range ks {
		kb := keys.Bits(k, 64)
		if loB <= kb && kb <= hiB {
			want[k] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Range returned %d keys, want %d", len(got), len(want))
	}
	for _, k := range got {
		if !want[k] {
			t.Fatalf("unexpected key %q", k)
		}
	}
	if out, _, _ := g.Range("z", "a", 0); out != nil {
		t.Fatalf("inverted range must be empty")
	}
	if out, _, _ := g.Range("a", "z", 5); len(out) != 5 {
		t.Fatalf("limit ignored: %d", len(out))
	}
}

// TestRoutingLogarithmic checks the O(log |Π|) claim of Table 2.
func TestRoutingLogarithmic(t *testing.T) {
	g, ks := buildGrid(t, 128, 1000, 7)
	total := 0
	n := 300
	for i := 0; i < n; i++ {
		_, hops, err := g.Lookup(ks[i%len(ks)])
		if err != nil {
			t.Fatal(err)
		}
		total += hops
	}
	mean := float64(total) / float64(n)
	bound := 2 * math.Log2(float64(g.NumPartitions())+1)
	t.Logf("mean hops %.2f over %d partitions (2log2 = %.2f)", mean, g.NumPartitions(), bound)
	if mean > bound+2 {
		t.Fatalf("mean hops %.2f exceed logarithmic bound %.2f", mean, bound)
	}
}

func TestAvgRoutingState(t *testing.T) {
	g, _ := buildGrid(t, 64, 500, 8)
	s := g.AvgRoutingState()
	if s <= 0 {
		t.Fatalf("AvgRoutingState = %v", s)
	}
	// O(log |Π|) with 2 refs per level.
	bound := 2.0 * (math.Log2(float64(g.NumPartitions())) + 3)
	if s > bound {
		t.Fatalf("routing state %v exceeds %v", s, bound)
	}
}

func TestCounters(t *testing.T) {
	g, ks := buildGrid(t, 16, 80, 9)
	before := g.Counters.Queries
	_, _, _ = g.Lookup(ks[0])
	if g.Counters.Queries != before+1 {
		t.Fatalf("query counter stuck")
	}
}

func TestSinglePeerGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ks := workload.GridCorpus(20)
	g, err := Build(Config{D: 16, MaxKeysPerLeaf: 4, RefsPerLevel: 2}, []string{"only"}, ks, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumPartitions() != 1 {
		t.Fatalf("single peer must keep one partition, got %d", g.NumPartitions())
	}
	found, hops, err := g.Lookup(ks[0])
	if err != nil || !found || hops != 0 {
		t.Fatalf("single-peer lookup: %v %d %v", found, hops, err)
	}
}

func TestDeterministicBuild(t *testing.T) {
	build := func() []string {
		rng := rand.New(rand.NewSource(42))
		var names []string
		for i := 0; i < 16; i++ {
			names = append(names, fmt.Sprintf("p%d", i))
		}
		g, err := Build(Config{D: 32, MaxKeysPerLeaf: 6, RefsPerLevel: 2},
			names, workload.GridCorpus(100), rng)
		if err != nil {
			t.Fatal(err)
		}
		var paths []string
		for _, p := range g.Peers() {
			paths = append(paths, p.Path)
		}
		return paths
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic build at %d", i)
		}
	}
}
