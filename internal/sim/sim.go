// Package sim is the discrete-time simulation engine of the paper's
// evaluation (RR-6557 Section 4). Each time unit performs the five
// steps the paper describes: (1) a fraction of the peers executes the
// periodic load balancing, (2) a fraction of peers joins (placed by
// the strategy, e.g. k-choices), (3) a fraction of peers leaves,
// (4) new services are declared in the tree, and (5) discovery
// requests are sent and satisfaction statistics collected.
//
// Simulations are deterministic given Config.Seed; multi-run results
// aggregate per-unit statistics across runs seeded Seed, Seed+1, ...
package sim

import (
	"fmt"
	"math/rand"

	"dlpt/internal/core"
	"dlpt/internal/keys"
	"dlpt/internal/lb"
	"dlpt/internal/stats"
	"dlpt/internal/workload"
)

// Config parameterizes one experiment. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	Seed      int64
	Runs      int
	TimeUnits int

	// NumPeers is the initial ring size (the paper uses ~100).
	NumPeers int
	// NumKeys is the number of services declared (the paper's trees
	// hold ~1000 nodes); they are inserted during the first GrowUnits
	// units ("the first 10 units correspond to the period where the
	// prefix tree is growing").
	NumKeys   int
	GrowUnits int

	// CapacityBase and CapacityRatio define peer heterogeneity:
	// capacities are uniform in [base, base*ratio] (paper: ratio 4).
	CapacityBase  int
	CapacityRatio int

	// LoadFraction is the ratio between the processing demand of the
	// requests sent per unit and the aggregated capacity of all peers
	// (the left column of Table 1: 5%..80%). A discovery request
	// consumes one capacity unit per node visit, so the engine sends
	// LoadFraction * capacity / visitsPerRequest requests, tracking
	// the measured visit count of the previous unit. Values above 1
	// stress the system beyond its total capacity (Figure 5).
	LoadFraction float64

	// Strategy names the load-balancing heuristic (lb.ByName).
	Strategy string
	// LBFraction is the fraction of peers running the periodic
	// balancing each unit (step 1).
	LBFraction float64

	// JoinFraction / LeaveFraction are the per-unit churn rates
	// (step 2 and 3); the paper's dynamic scenario replaces ~10% of
	// the peers per unit.
	JoinFraction  float64
	LeaveFraction float64

	// Picker selects requested services (nil = uniform).
	Picker workload.Picker
	// Corpus is the service key population (nil = GridCorpus(NumKeys)).
	Corpus []keys.Key

	// Placement selects the tree-to-peer mapping.
	Placement core.Placement

	// Validate runs the full overlay invariant check after every time
	// unit (slow; used by tests).
	Validate bool
}

// DefaultConfig returns the paper's baseline parameters: 100 peers,
// 1000 keys grown over 10 units, 50 units, capacity ratio 4, uniform
// requests, stable network, no load balancing.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		Runs:          1,
		TimeUnits:     50,
		NumPeers:      100,
		NumKeys:       1000,
		GrowUnits:     10,
		CapacityBase:  10,
		CapacityRatio: 4,
		LoadFraction:  0.10,
		Strategy:      "NoLB",
		LBFraction:    1.0,
		JoinFraction:  0,
		LeaveFraction: 0,
		Placement:     core.PlacementLexicographic,
	}
}

// UnitStats are the per-time-unit observations of one run.
type UnitStats struct {
	Time      int
	Sent      int
	Satisfied int
	Dropped   int
	NotFound  int
	// Hop sums over satisfied requests.
	LogicalHops  int
	PhysicalHops int
	Peers        int
	Nodes        int
	// MaintenanceMsgs is the delta of protocol traffic during this
	// unit (joins, leaves, inserts, balancing transfers).
	MaintenanceMsgs int
	LBMoves         int
	// LoadGini is the Gini coefficient of per-peer utilization
	// (requests received / capacity) at the end of the unit: 0 means
	// perfectly proportional load, values near 1 mean the load
	// concentrates on few peers.
	LoadGini float64
}

// SatisfiedPct returns the unit's satisfaction percentage.
func (u UnitStats) SatisfiedPct() float64 {
	if u.Sent == 0 {
		return 0
	}
	return 100 * float64(u.Satisfied) / float64(u.Sent)
}

// AvgLogicalHops returns mean tree hops per satisfied request.
func (u UnitStats) AvgLogicalHops() float64 {
	if u.Satisfied == 0 {
		return 0
	}
	return float64(u.LogicalHops) / float64(u.Satisfied)
}

// AvgPhysicalHops returns mean cross-peer hops per satisfied request.
func (u UnitStats) AvgPhysicalHops() float64 {
	if u.Satisfied == 0 {
		return 0
	}
	return float64(u.PhysicalHops) / float64(u.Satisfied)
}

// Result aggregates per-unit series over all runs.
type Result struct {
	Config Config
	// Satisfaction is the per-unit satisfied-request percentage.
	Satisfaction *stats.Series
	// Logical / Physical are per-unit mean hops per satisfied request.
	Logical  *stats.Series
	Physical *stats.Series
	// Maintenance is the per-unit maintenance message count.
	Maintenance *stats.Series
	// LBMoves is the per-unit number of applied balancing moves.
	LBMoves *stats.Series
	// LoadGini is the per-unit Gini coefficient of peer utilization.
	LoadGini *stats.Series
	// TotalSent / TotalSatisfied accumulate over all runs and units.
	TotalSent      int
	TotalSatisfied int
}

// SteadyStateSatisfaction averages satisfaction over the units after
// the growth phase.
func (res *Result) SteadyStateSatisfaction() float64 {
	return res.Satisfaction.OverallMean(res.Config.GrowUnits, res.Satisfaction.Len())
}

// Run executes cfg.Runs independent runs and aggregates them.
func Run(cfg Config) (*Result, error) {
	if cfg.Runs < 1 {
		return nil, fmt.Errorf("sim: Runs = %d", cfg.Runs)
	}
	if cfg.TimeUnits < 1 {
		return nil, fmt.Errorf("sim: TimeUnits = %d", cfg.TimeUnits)
	}
	if cfg.NumPeers < 2 {
		return nil, fmt.Errorf("sim: NumPeers = %d (need >= 2)", cfg.NumPeers)
	}
	res := &Result{
		Config:       cfg,
		Satisfaction: stats.NewSeries(cfg.TimeUnits),
		Logical:      stats.NewSeries(cfg.TimeUnits),
		Physical:     stats.NewSeries(cfg.TimeUnits),
		Maintenance:  stats.NewSeries(cfg.TimeUnits),
		LBMoves:      stats.NewSeries(cfg.TimeUnits),
		LoadGini:     stats.NewSeries(cfg.TimeUnits),
	}
	for i := 0; i < cfg.Runs; i++ {
		units, err := runOnce(cfg, cfg.Seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("sim: run %d: %w", i, err)
		}
		sat := make([]float64, len(units))
		logi := make([]float64, len(units))
		phys := make([]float64, len(units))
		maint := make([]float64, len(units))
		moves := make([]float64, len(units))
		gini := make([]float64, len(units))
		for t, u := range units {
			sat[t] = u.SatisfiedPct()
			logi[t] = u.AvgLogicalHops()
			phys[t] = u.AvgPhysicalHops()
			maint[t] = float64(u.MaintenanceMsgs)
			moves[t] = float64(u.LBMoves)
			gini[t] = u.LoadGini
			res.TotalSent += u.Sent
			res.TotalSatisfied += u.Satisfied
		}
		for _, add := range []error{
			res.Satisfaction.Add(sat), res.Logical.Add(logi),
			res.Physical.Add(phys), res.Maintenance.Add(maint),
			res.LBMoves.Add(moves), res.LoadGini.Add(gini),
		} {
			if add != nil {
				return nil, add
			}
		}
	}
	return res, nil
}

// runOnce executes a single seeded run and returns per-unit stats.
func runOnce(cfg Config, seed int64) ([]UnitStats, error) {
	r := rand.New(rand.NewSource(seed))
	strategy, err := lb.ByName(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	picker := cfg.Picker
	if picker == nil {
		picker = workload.Uniform{}
	}
	corpus := cfg.Corpus
	if corpus == nil {
		corpus = workload.GridCorpus(cfg.NumKeys)
	}
	// Shuffle a copy of the corpus for insertion order.
	pending := append([]keys.Key(nil), corpus...)
	r.Shuffle(len(pending), func(i, j int) { pending[i], pending[j] = pending[j], pending[i] })
	if cfg.NumKeys > 0 && cfg.NumKeys < len(pending) {
		pending = pending[:cfg.NumKeys]
	}

	net := core.NewNetwork(keys.LowerAlnum, cfg.Placement)
	newCapacity := func() int {
		base, ratio := cfg.CapacityBase, cfg.CapacityRatio
		if base < 1 {
			base = 1
		}
		if ratio < 1 {
			ratio = 1
		}
		return base + r.Intn(base*(ratio-1)+1)
	}
	for i := 0; i < cfg.NumPeers; i++ {
		id := strategy.PlaceJoin(net, r, 0)
		if err := net.JoinPeer(id, newCapacity(), r); err != nil {
			return nil, err
		}
	}

	growUnits := cfg.GrowUnits
	if growUnits < 1 {
		growUnits = 1
	}
	var available []keys.Key
	units := make([]UnitStats, cfg.TimeUnits)
	// visitEst estimates node visits per request (logical hops + the
	// destination visit) from the previous unit, so that LoadFraction
	// expresses demand relative to aggregate capacity.
	visitEst := 5.0
	for t := 0; t < cfg.TimeUnits; t++ {
		maintBefore := net.Counters.MaintenanceMsgs
		net.ResetUnit() // LoadCur of unit t-1 becomes LoadPrev
		u := &units[t]
		u.Time = t

		// Step 1: periodic load balancing on a fraction of the peers.
		if cfg.LBFraction > 0 {
			ids := net.PeerIDs()
			n := int(cfg.LBFraction * float64(len(ids)))
			perm := r.Perm(len(ids))
			for _, idx := range perm[:n] {
				moved, err := strategy.Periodic(net, ids[idx])
				if err != nil {
					return nil, err
				}
				if moved {
					u.LBMoves++
				}
			}
		}

		// Step 2: peer joins.
		nJoin := int(cfg.JoinFraction * float64(net.NumPeers()))
		for i := 0; i < nJoin; i++ {
			capacity := newCapacity()
			id := strategy.PlaceJoin(net, r, capacity)
			if err := net.JoinPeer(id, capacity, r); err != nil {
				return nil, err
			}
		}

		// Step 3: peer leaves (never below 2 peers).
		nLeave := int(cfg.LeaveFraction * float64(net.NumPeers()))
		for i := 0; i < nLeave && net.NumPeers() > 2; i++ {
			ids := net.PeerIDs()
			if err := net.LeavePeer(ids[r.Intn(len(ids))]); err != nil {
				return nil, err
			}
		}

		// Step 4: declare new services during the growth phase.
		if t < growUnits && len(pending) > 0 {
			per := (len(pending) + growUnits - t - 1) / (growUnits - t)
			for i := 0; i < per && len(pending) > 0; i++ {
				k := pending[0]
				pending = pending[1:]
				if err := net.InsertKey(k, r); err != nil {
					return nil, err
				}
				available = append(available, k)
			}
		}

		// Step 5: discovery requests.
		if len(available) > 0 {
			nReq := int(cfg.LoadFraction * float64(net.AggregateCapacity()) / visitEst)
			if nReq < 1 {
				nReq = 1
			}
			for i := 0; i < nReq; i++ {
				k := picker.Pick(r, available, t)
				rr := net.DiscoverRandom(k, true, r)
				u.Sent++
				switch {
				case rr.Satisfied:
					u.Satisfied++
					u.LogicalHops += rr.LogicalHops
					u.PhysicalHops += rr.PhysicalHops
				case rr.Dropped:
					u.Dropped++
				default:
					u.NotFound++
				}
			}
		}

		if u.Satisfied > 0 {
			visitEst = float64(u.LogicalHops)/float64(u.Satisfied) + 1
			if visitEst < 1 {
				visitEst = 1
			}
		}
		util := make([]float64, 0, net.NumPeers())
		for _, id := range net.PeerIDs() {
			p, _ := net.Peer(id)
			util = append(util, float64(p.LoadCur())/float64(p.Capacity))
		}
		u.LoadGini = stats.Gini(util)
		u.Peers = net.NumPeers()
		u.Nodes = net.NumNodes()
		u.MaintenanceMsgs = net.Counters.MaintenanceMsgs - maintBefore
		if cfg.Validate {
			if err := net.Validate(); err != nil {
				return nil, fmt.Errorf("unit %d: %w", t, err)
			}
		}
	}
	return units, nil
}
