package sim

import (
	"testing"

	"dlpt/internal/core"
	"dlpt/internal/workload"
)

// smallConfig returns a fast, validated configuration for tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Runs = 2
	cfg.TimeUnits = 12
	cfg.NumPeers = 20
	cfg.NumKeys = 120
	cfg.GrowUnits = 4
	cfg.LoadFraction = 0.2
	cfg.Validate = true
	return cfg
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Runs = 0
	if _, err := Run(cfg); err == nil {
		t.Fatalf("Runs=0 must fail")
	}
	cfg = smallConfig()
	cfg.TimeUnits = 0
	if _, err := Run(cfg); err == nil {
		t.Fatalf("TimeUnits=0 must fail")
	}
	cfg = smallConfig()
	cfg.NumPeers = 1
	if _, err := Run(cfg); err == nil {
		t.Fatalf("NumPeers=1 must fail")
	}
	cfg = smallConfig()
	cfg.Strategy = "bogus"
	if _, err := Run(cfg); err == nil {
		t.Fatalf("unknown strategy must fail")
	}
}

func TestStableRunBaseline(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfaction.Len() != 12 {
		t.Fatalf("series length = %d", res.Satisfaction.Len())
	}
	if res.TotalSent == 0 || res.TotalSatisfied == 0 {
		t.Fatalf("no traffic simulated: sent=%d sat=%d", res.TotalSent, res.TotalSatisfied)
	}
	if res.TotalSatisfied > res.TotalSent {
		t.Fatalf("satisfied %d > sent %d", res.TotalSatisfied, res.TotalSent)
	}
	ss := res.SteadyStateSatisfaction()
	if ss <= 0 || ss > 100 {
		t.Fatalf("steady-state satisfaction = %v", ss)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := smallConfig()
	cfg.Runs = 1
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	am, bm := a.Satisfaction.Means(), b.Satisfaction.Means()
	for i := range am {
		if am[i] != bm[i] {
			t.Fatalf("non-deterministic at unit %d: %v vs %v", i, am[i], bm[i])
		}
	}
	if a.TotalSent != b.TotalSent {
		t.Fatalf("TotalSent differs: %d vs %d", a.TotalSent, b.TotalSent)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := smallConfig()
	cfg.Runs = 1
	a, _ := Run(cfg)
	cfg.Seed = 999
	b, _ := Run(cfg)
	if a.TotalSent == b.TotalSent && a.TotalSatisfied == b.TotalSatisfied {
		t.Logf("note: different seeds produced identical totals (possible but unlikely)")
	}
}

func TestAllStrategiesRunClean(t *testing.T) {
	for _, s := range []string{"NoLB", "MLT", "KC", "EqualLoad"} {
		cfg := smallConfig()
		cfg.Strategy = s
		cfg.JoinFraction = 0.05
		cfg.LeaveFraction = 0.05
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("strategy %s: %v", s, err)
		}
		if res.TotalSent == 0 {
			t.Fatalf("strategy %s sent nothing", s)
		}
	}
}

func TestMLTBeatsNoLBUnderOverload(t *testing.T) {
	base := smallConfig()
	base.Runs = 3
	base.TimeUnits = 20
	base.LoadFraction = 1.5 // demand beyond aggregate capacity
	base.Validate = false

	run := func(strategy string) float64 {
		cfg := base
		cfg.Strategy = strategy
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.SteadyStateSatisfaction()
	}
	nolb := run("NoLB")
	mlt := run("MLT")
	t.Logf("steady-state satisfaction: NoLB=%.1f%% MLT=%.1f%%", nolb, mlt)
	if mlt <= nolb {
		t.Fatalf("MLT (%.2f%%) must beat NoLB (%.2f%%) under overload", mlt, nolb)
	}
}

func TestChurnKeepsRunning(t *testing.T) {
	cfg := smallConfig()
	cfg.JoinFraction = 0.1
	cfg.LeaveFraction = 0.1
	cfg.Strategy = "KC"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSent == 0 {
		t.Fatalf("no traffic under churn")
	}
}

func TestHotSpotPicker(t *testing.T) {
	cfg := smallConfig()
	cfg.TimeUnits = 20
	cfg.Picker = &workload.HotSpot{Phases: []workload.Phase{
		{From: 8, To: 16, Prefix: "s3l", Bias: 0.9},
	}}
	cfg.Strategy = "MLT"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSent == 0 {
		t.Fatalf("no traffic")
	}
}

func TestHashedPlacementRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.Placement = core.PlacementHashed
	cfg.JoinFraction = 0.05
	cfg.LeaveFraction = 0.05
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Hashed mapping destroys locality: physical hops should be close
	// to logical hops on average.
	lg := res.Logical.OverallMean(4, 12)
	ph := res.Physical.OverallMean(4, 12)
	if lg == 0 {
		t.Fatalf("no hops recorded")
	}
	if ph < 0.5*lg {
		t.Fatalf("hashed mapping physical hops %v suspiciously low vs logical %v", ph, lg)
	}
}

func TestLexicographicLocalityInSim(t *testing.T) {
	cfg := smallConfig()
	cfg.Strategy = "MLT"
	lex, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Placement = core.PlacementHashed
	cfg2.Strategy = "NoLB"
	hsh, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	lexPhys := lex.Physical.OverallMean(4, 12)
	hshPhys := hsh.Physical.OverallMean(4, 12)
	t.Logf("physical hops: lexico+MLT=%.2f hashed=%.2f", lexPhys, hshPhys)
	if lexPhys >= hshPhys {
		t.Fatalf("lexicographic mapping must reduce physical hops (%.2f vs %.2f)",
			lexPhys, hshPhys)
	}
}

func TestMaintenanceAccounting(t *testing.T) {
	cfg := smallConfig()
	cfg.JoinFraction = 0.1
	cfg.LeaveFraction = 0.1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, m := range res.Maintenance.Means() {
		total += m
	}
	if total == 0 {
		t.Fatalf("churn must produce maintenance traffic")
	}
}

func TestUnitStatsHelpers(t *testing.T) {
	u := UnitStats{Sent: 200, Satisfied: 50, LogicalHops: 250, PhysicalHops: 100}
	if u.SatisfiedPct() != 25 {
		t.Fatalf("SatisfiedPct = %v", u.SatisfiedPct())
	}
	if u.AvgLogicalHops() != 5 {
		t.Fatalf("AvgLogicalHops = %v", u.AvgLogicalHops())
	}
	if u.AvgPhysicalHops() != 2 {
		t.Fatalf("AvgPhysicalHops = %v", u.AvgPhysicalHops())
	}
	var zero UnitStats
	if zero.SatisfiedPct() != 0 || zero.AvgLogicalHops() != 0 || zero.AvgPhysicalHops() != 0 {
		t.Fatalf("zero-value helpers must return 0")
	}
}

func TestGrowthPhasePopulatesAllKeys(t *testing.T) {
	cfg := smallConfig()
	cfg.Runs = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After the growth phase the tree holds at least NumKeys nodes
	// (plus structural nodes); satisfaction series is defined.
	if res.Satisfaction.At(cfg.TimeUnits-1).N() != 1 {
		t.Fatalf("per-unit accumulator should have 1 observation")
	}
}
