package dht

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func buildRing(t *testing.T, n int) *Ring {
	t.Helper()
	r := New()
	for i := 0; i < n; i++ {
		if _, err := r.Join(fmt.Sprintf("node-%04d", i)); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("invalid ring: %v", err)
	}
	return r
}

func TestEmptyRing(t *testing.T) {
	r := New()
	if r.Len() != 0 {
		t.Fatalf("Len = %d", r.Len())
	}
	rng := rand.New(rand.NewSource(1))
	if _, _, err := r.Lookup("k", rng); err == nil {
		t.Fatalf("lookup on empty ring must fail")
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("empty ring must validate: %v", err)
	}
}

func TestJoinDuplicate(t *testing.T) {
	r := buildRing(t, 3)
	if _, err := r.Join("node-0001"); err == nil {
		t.Fatalf("duplicate join must fail")
	}
}

func TestHashDeterministic(t *testing.T) {
	if Hash("abc") != Hash("abc") {
		t.Fatalf("hash must be deterministic")
	}
	if Hash("abc") == Hash("abd") {
		t.Fatalf("distinct keys should hash apart")
	}
}

func TestPutGetDelete(t *testing.T) {
	r := buildRing(t, 20)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		k, v := fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)
		if _, err := r.Put(k, v, rng); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		v, _, ok, err := r.Get(k, rng)
		if err != nil || !ok || v != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(%q) = %q, %v, %v", k, v, ok, err)
		}
	}
	if _, _, ok, _ := r.Get("absent", rng); ok {
		t.Fatalf("absent key must miss")
	}
	if _, err := r.Delete("key-5", rng); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := r.Get("key-5", rng); ok {
		t.Fatalf("deleted key must miss")
	}
}

func TestPutOverwrites(t *testing.T) {
	r := buildRing(t, 5)
	rng := rand.New(rand.NewSource(3))
	_, _ = r.Put("k", "v1", rng)
	_, _ = r.Put("k", "v2", rng)
	v, _, ok, _ := r.Get("k", rng)
	if !ok || v != "v2" {
		t.Fatalf("overwrite failed: %q %v", v, ok)
	}
}

func TestKeysSurviveChurn(t *testing.T) {
	r := buildRing(t, 20)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 60; i++ {
		_, _ = r.Put(fmt.Sprintf("key-%d", i), "v", rng)
	}
	// Churn: joins and leaves.
	for i := 0; i < 15; i++ {
		if _, err := r.Join(fmt.Sprintf("late-%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := r.Leave(fmt.Sprintf("node-%04d", i)); err != nil {
			t.Fatal(err)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("churn step %d: %v", i, err)
		}
	}
	for i := 0; i < 60; i++ {
		if _, _, ok, _ := r.Get(fmt.Sprintf("key-%d", i), rng); !ok {
			t.Fatalf("key-%d lost in churn", i)
		}
	}
	if r.Counters.KeysMoved == 0 {
		t.Fatalf("churn must move keys")
	}
}

func TestLeaveUnknown(t *testing.T) {
	r := buildRing(t, 2)
	if err := r.Leave("ghost"); err == nil {
		t.Fatalf("leaving unknown node must fail")
	}
}

func TestLeaveAll(t *testing.T) {
	r := buildRing(t, 5)
	for i := 0; i < 5; i++ {
		if err := r.Leave(fmt.Sprintf("node-%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after removing all", r.Len())
	}
}

// TestLookupHopsLogarithmic checks Chord's O(log N) routing: the mean
// hop count at N=256 must be well below N/4 and within a small factor
// of log2(N).
func TestLookupHopsLogarithmic(t *testing.T) {
	r := buildRing(t, 256)
	rng := rand.New(rand.NewSource(5))
	total := 0
	const lookups = 400
	for i := 0; i < lookups; i++ {
		_, hops, err := r.Lookup(fmt.Sprintf("key-%d", i), rng)
		if err != nil {
			t.Fatal(err)
		}
		total += hops
	}
	mean := float64(total) / lookups
	logN := math.Log2(256)
	t.Logf("mean hops at N=256: %.2f (log2 N = %.1f)", mean, logN)
	if mean > 2*logN {
		t.Fatalf("mean hops %.2f exceed 2*log2(N) = %.2f", mean, 2*logN)
	}
	if mean < 0.5 {
		t.Fatalf("mean hops %.2f suspiciously low", mean)
	}
}

func TestLookupHopsGrowSlowly(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	meanHops := func(n int) float64 {
		r := buildRing(t, n)
		total := 0
		for i := 0; i < 200; i++ {
			_, hops, _ := r.Lookup(fmt.Sprintf("key-%d", i), rng)
			total += hops
		}
		return float64(total) / 200
	}
	h64, h512 := meanHops(64), meanHops(512)
	t.Logf("mean hops: N=64 %.2f, N=512 %.2f", h64, h512)
	// 8x more nodes must cost far less than 8x more hops.
	if h512 > 4*h64 {
		t.Fatalf("hops scale badly: %.2f -> %.2f", h64, h512)
	}
}

func TestCountersAdvance(t *testing.T) {
	r := buildRing(t, 10)
	rng := rand.New(rand.NewSource(7))
	if r.Counters.MaintenanceMsgs == 0 {
		t.Fatalf("joins must cost maintenance")
	}
	before := r.Counters.Lookups
	_, _, _ = r.Lookup("x", rng)
	if r.Counters.Lookups != before+1 {
		t.Fatalf("lookup counter stuck")
	}
}

func TestNodeByNameAndNodes(t *testing.T) {
	r := buildRing(t, 4)
	if _, ok := r.NodeByName("node-0002"); !ok {
		t.Fatalf("NodeByName failed")
	}
	if _, ok := r.NodeByName("nope"); ok {
		t.Fatalf("absent name must fail")
	}
	ns := r.Nodes()
	if len(ns) != 4 {
		t.Fatalf("Nodes len = %d", len(ns))
	}
	for i := 1; i < len(ns); i++ {
		if ns[i-1].ID >= ns[i].ID {
			t.Fatalf("Nodes not sorted")
		}
	}
}

func TestSingleNodeRingOwnsEverything(t *testing.T) {
	r := buildRing(t, 1)
	rng := rand.New(rand.NewSource(8))
	if _, err := r.Put("any", "v", rng); err != nil {
		t.Fatal(err)
	}
	v, hops, ok, _ := r.Get("any", rng)
	if !ok || v != "v" {
		t.Fatalf("single node must own all keys")
	}
	if hops != 0 {
		t.Fatalf("single-node lookup hops = %d", hops)
	}
}
