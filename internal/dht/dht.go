// Package dht implements a simulated Chord distributed hash table
// (Stoica et al., SIGCOMM 2001) — the substrate the original DLPT [5]
// mapped its tree onto, the "random mapping" reference of Figure 9,
// and the storage layer of the PHT comparator (Table 2).
//
// The simulation keeps every node's finger table globally consistent
// after each join/leave, so lookup hop counts are those of a
// converged Chord ring: O(log N) per lookup. Maintenance cost is
// accounted per event: the join lookup's measured hops plus one
// update message per finger-table entry repaired.
package dht

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
)

// M is the identifier-space width in bits.
const M = 64

// Hash maps a string key onto the identifier circle.
func Hash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// Node is one DHT node.
type Node struct {
	Name string
	ID   uint64
	// fingers[i] is the id of successor(ID + 2^i).
	fingers [M]uint64
	// Data holds the key/value pairs this node is responsible for.
	Data map[string]string
}

// Counters tracks DHT traffic.
type Counters struct {
	// LookupHops counts routing hops of all lookups.
	LookupHops int
	// Lookups counts lookup operations.
	Lookups int
	// MaintenanceMsgs counts join/leave repair traffic.
	MaintenanceMsgs int
	// KeysMoved counts key transfers due to churn.
	KeysMoved int
}

// Ring is the complete simulated DHT.
type Ring struct {
	Counters Counters

	ids   []uint64 // sorted node ids
	byID  map[uint64]*Node
	names map[string]uint64
}

// New returns an empty ring.
func New() *Ring {
	return &Ring{
		byID:  make(map[uint64]*Node),
		names: make(map[string]uint64),
	}
}

// Len returns the number of nodes.
func (r *Ring) Len() int { return len(r.ids) }

// NodeByName returns the node with the given name.
func (r *Ring) NodeByName(name string) (*Node, bool) {
	id, ok := r.names[name]
	if !ok {
		return nil, false
	}
	return r.byID[id], true
}

// Nodes returns all nodes in id order.
func (r *Ring) Nodes() []*Node {
	out := make([]*Node, 0, len(r.ids))
	for _, id := range r.ids {
		out = append(out, r.byID[id])
	}
	return out
}

// inInterval reports x in the circular interval (a, b].
func inInterval(x, a, b uint64) bool {
	if a < b {
		return x > a && x <= b
	}
	if a > b {
		return x > a || x <= b
	}
	return true // a == b: whole circle
}

// successorID returns the first node id at or after x (wrapping).
func (r *Ring) successorID(x uint64) (uint64, bool) {
	if len(r.ids) == 0 {
		return 0, false
	}
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= x })
	if i == len(r.ids) {
		i = 0
	}
	return r.ids[i], true
}

// predecessorID returns the last node id strictly before x (wrapping).
func (r *Ring) predecessorID(x uint64) (uint64, bool) {
	if len(r.ids) == 0 {
		return 0, false
	}
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= x })
	if i == 0 {
		return r.ids[len(r.ids)-1], true
	}
	return r.ids[i-1], true
}

// refreshFingers rebuilds the finger table of n from the converged
// global view.
func (r *Ring) refreshFingers(n *Node) {
	for i := 0; i < M; i++ {
		start := n.ID + 1<<uint(i)
		id, _ := r.successorID(start)
		n.fingers[i] = id
	}
}

// refreshAll rebuilds every finger table (after churn), counting one
// repair message per entry that actually changed.
func (r *Ring) refreshAll() {
	for _, n := range r.byID {
		old := n.fingers
		r.refreshFingers(n)
		for i := 0; i < M; i++ {
			if old[i] != n.fingers[i] {
				r.Counters.MaintenanceMsgs++
			}
		}
	}
}

// Join adds a node named name. Duplicate names or (astronomically
// unlikely) id collisions are rejected.
func (r *Ring) Join(name string) (*Node, error) {
	if _, dup := r.names[name]; dup {
		return nil, fmt.Errorf("dht: node %q already present", name)
	}
	id := Hash(name)
	for {
		if _, taken := r.byID[id]; !taken {
			break
		}
		id++
	}
	n := &Node{Name: name, ID: id, Data: make(map[string]string)}
	if len(r.ids) > 0 {
		// The join lookup locates the successor; count its hops.
		start := r.byID[r.ids[0]]
		_, hops := r.lookupFrom(start, id)
		r.Counters.MaintenanceMsgs += hops
	}
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= id })
	r.ids = append(r.ids, 0)
	copy(r.ids[i+1:], r.ids[i:])
	r.ids[i] = id
	r.byID[id] = n
	r.names[name] = id

	// Take over keys from the successor.
	if len(r.ids) > 1 {
		succID, _ := r.successorID(id + 1)
		succ := r.byID[succID]
		predID, _ := r.predecessorID(id)
		for k, v := range succ.Data {
			if inInterval(Hash(k), predID, id) {
				n.Data[k] = v
				delete(succ.Data, k)
				r.Counters.KeysMoved++
			}
		}
	}
	r.refreshAll()
	return n, nil
}

// Leave removes the named node, handing its keys to its successor.
func (r *Ring) Leave(name string) error {
	id, ok := r.names[name]
	if !ok {
		return fmt.Errorf("dht: leave of unknown node %q", name)
	}
	n := r.byID[id]
	delete(r.names, name)
	delete(r.byID, id)
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= id })
	copy(r.ids[i:], r.ids[i+1:])
	r.ids = r.ids[:len(r.ids)-1]
	if len(r.ids) > 0 {
		succID, _ := r.successorID(id)
		succ := r.byID[succID]
		for k, v := range n.Data {
			succ.Data[k] = v
			r.Counters.KeysMoved++
		}
	}
	r.refreshAll()
	return nil
}

// lookupFrom routes from start towards the owner of target id using
// finger tables, returning the owner and the hop count.
func (r *Ring) lookupFrom(start *Node, target uint64) (*Node, int) {
	cur := start
	hops := 0
	for {
		succID, _ := r.successorID(cur.ID + 1)
		if inInterval(target, cur.ID, succID) {
			if succID == cur.ID {
				return cur, hops
			}
			return r.byID[succID], hops + 1
		}
		// Closest preceding finger.
		next := cur
		for i := M - 1; i >= 0; i-- {
			fid := cur.fingers[i]
			if fid != cur.ID && inInterval(fid, cur.ID, target) && fid != target {
				if candidate := r.byID[fid]; candidate != nil {
					next = candidate
					break
				}
			}
		}
		if next == cur {
			// Degenerate: step to immediate successor.
			next = r.byID[succID]
		}
		cur = next
		hops++
		if hops > 4*len(r.ids)+8 {
			// Routing must converge on a consistent ring; this guards
			// test failures from looping forever.
			return cur, hops
		}
	}
}

// Lookup routes to the owner of key from a random start node.
func (r *Ring) Lookup(key string, rng *rand.Rand) (*Node, int, error) {
	if len(r.ids) == 0 {
		return nil, 0, fmt.Errorf("dht: lookup on empty ring")
	}
	start := r.byID[r.ids[rng.Intn(len(r.ids))]]
	owner, hops := r.lookupFrom(start, Hash(key))
	r.Counters.Lookups++
	r.Counters.LookupHops += hops
	return owner, hops, nil
}

// Put stores key=value at the owner, returning the routing hops.
func (r *Ring) Put(key, value string, rng *rand.Rand) (int, error) {
	owner, hops, err := r.Lookup(key, rng)
	if err != nil {
		return 0, err
	}
	owner.Data[key] = value
	return hops, nil
}

// Get fetches the value of key, returning the routing hops.
func (r *Ring) Get(key string, rng *rand.Rand) (string, int, bool, error) {
	owner, hops, err := r.Lookup(key, rng)
	if err != nil {
		return "", 0, false, err
	}
	v, ok := owner.Data[key]
	return v, hops, ok, nil
}

// Delete removes key from its owner, returning the routing hops.
func (r *Ring) Delete(key string, rng *rand.Rand) (int, error) {
	owner, hops, err := r.Lookup(key, rng)
	if err != nil {
		return 0, err
	}
	delete(owner.Data, key)
	return hops, nil
}

// Validate checks ring consistency and ownership of every key.
func (r *Ring) Validate() error {
	for i := 1; i < len(r.ids); i++ {
		if r.ids[i-1] >= r.ids[i] {
			return fmt.Errorf("dht: ids out of order")
		}
	}
	if len(r.ids) != len(r.byID) || len(r.ids) != len(r.names) {
		return fmt.Errorf("dht: index sizes disagree: %d %d %d",
			len(r.ids), len(r.byID), len(r.names))
	}
	for _, n := range r.byID {
		for i := 0; i < M; i++ {
			want, _ := r.successorID(n.ID + 1<<uint(i))
			if n.fingers[i] != want {
				return fmt.Errorf("dht: node %q finger %d stale", n.Name, i)
			}
		}
		predID, _ := r.predecessorID(n.ID)
		for k := range n.Data {
			if len(r.ids) > 1 && !inInterval(Hash(k), predID, n.ID) {
				return fmt.Errorf("dht: key %q misplaced on %q", k, n.Name)
			}
		}
	}
	return nil
}
