package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"reflect"
	"sort"
	"testing"
	"time"

	"dlpt/internal/core"
	"dlpt/internal/keys"
	"dlpt/internal/trace"
)

// fuzzConn adapts an in-memory reader/writer pair to net.Conn for the
// frame layer (which only uses Read, Write and Close).
type fuzzConn struct {
	r io.Reader
	w io.Writer
}

func (c *fuzzConn) Read(p []byte) (int, error) {
	if c.r == nil {
		return 0, io.EOF
	}
	return c.r.Read(p)
}

func (c *fuzzConn) Write(p []byte) (int, error) {
	if c.w == nil {
		return len(p), nil
	}
	return c.w.Write(p)
}

func (c *fuzzConn) Close() error                       { return nil }
func (c *fuzzConn) LocalAddr() net.Addr                { return nil }
func (c *fuzzConn) RemoteAddr() net.Addr               { return nil }
func (c *fuzzConn) SetDeadline(t time.Time) error      { return nil }
func (c *fuzzConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *fuzzConn) SetWriteDeadline(t time.Time) error { return nil }

// FuzzFrameDecode drives arbitrary bytes through every payload
// decoder and through the frame reader itself (header parsing, the
// payload length guard, the 0x80 trace-header extension). The
// decoders own the trust boundary with remote peers: whatever the
// bytes, they must return an error rather than panic or over-allocate.
func FuzzFrameDecode(f *testing.F) {
	// Valid payloads of each shape seed the corpus.
	var req request
	f.Add(appendRequest(nil, &request{Key: "abc", At: "ab", GoingUp: true, Logical: 3, Physical: 2, Redirects: 1}))
	f.Add(appendResponse(nil, &response{Found: true, Values: []string{"v1", "v2"}, Logical: 7, Err: "boom"}))
	f.Add(appendQuery(nil, &queryReq{Range: true, Lo: "a", Hi: "z", Limit: 5, Entry: "m", Walk: true}))
	f.Add(appendQRoute(nil, &qroute{Anchor: "anc", At: "at", Descending: true, Visited: 9}))
	f.Add(appendQRouteResp(nil, &qrouteResp{Found: true, Anchor: "anc", Err: "gone"}))
	f.Add(appendStreamEnd(nil, &streamEnd{Logical: 1, Physical: 2, Visited: 3, Err: "end"}))
	f.Add(appendReplicaBatch(nil, &core.ReplicaBatch{
		From: "p1", To: "p2",
		Infos: []core.NodeInfo{{Key: "k", Father: "f", HasFather: true, Children: []keys.Key{"c1"}, Data: []string{"d"}, LoadCur: 2}},
	}))
	// Frame-level seeds: a whole valid frame, a traced frame, a
	// truncated trace extension, and a hostile length prefix.
	fc := &frameConn{conn: &fuzzConn{}}
	var stream bytes.Buffer
	fc.conn = &fuzzConn{w: &stream}
	if err := fc.writeRaw(frameRequest, 1, appendRequest(nil, &req)); err != nil {
		f.Fatal(err)
	}
	buf := beginTracedFrame(nil, frameRequest, 2, trace.Context{Trace: 7, Span: 9})
	buf = appendRequest(buf, &req)
	if err := fc.finishFrame(buf); err != nil {
		f.Fatal(err)
	}
	f.Add(stream.Bytes())
	truncated := beginTracedFrame(nil, frameRequest, 3, trace.Context{Trace: 7, Span: 9})
	binary.BigEndian.PutUint32(truncated[9:13], 8) // claims 8 < frameTraceSize
	f.Add(append(truncated[:frameHeaderSize], 1, 2, 3, 4, 5, 6, 7, 8))
	hostile := beginFrame(nil, frameResponse, 4)
	binary.BigEndian.PutUint32(hostile[9:13], maxFramePayload+1)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		var req request
		_ = decodeRequest(data, &req)
		var resp response
		_ = decodeResponse(data, &resp)
		var q queryReq
		_ = decodeQuery(data, &q)
		var rq qroute
		_ = decodeQRoute(data, &rq)
		var rr qrouteResp
		_ = decodeQRouteResp(data, &rr)
		var batch core.ReplicaBatch
		_ = decodeReplicaBatch(data, &batch)
		_, _, _ = decodeStreamBatch(data)
		var end streamEnd
		_ = decodeStreamEnd(data, &end)

		// The frame reader over the same bytes as a connection stream:
		// it must terminate with an error or EOF, never panic, and
		// never allocate beyond the payload bound.
		fc := newFrameConn(&fuzzConn{r: bytes.NewReader(data)})
		for i := 0; i < 64; i++ {
			_, _, _, payload, err := fc.readFrame()
			if err != nil {
				break
			}
			if len(payload) > maxFramePayload {
				t.Fatalf("readFrame returned %d-byte payload past the %d bound", len(payload), maxFramePayload)
			}
		}
	})
}

// FuzzFrameRoundTrip encodes wire values built from fuzzed fields,
// decodes them back, and demands equality — the byte-determinism
// contract the cross-engine differential tests rest on — then pushes
// a whole frame (traced and untraced) through write/read.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add("key", "at", true, 3, 2, 1, "v1\x00v2", "err", uint64(7), uint64(9), []byte("payload"))
	f.Add("", "", false, 0, 0, 0, "", "", uint64(0), uint64(0), []byte{})
	f.Add("k\xffe\x00y", "a\nt", true, 1<<20, 42, 4, "x", "boom", uint64(1), uint64(0), []byte{0x80, 0xff})

	f.Fuzz(func(t *testing.T, key, at string, flag bool, n1, n2, n3 int, blob, errStr string, traceID, spanID uint64, payload []byte) {
		if n1 < 0 {
			n1 = -n1
		}
		if n2 < 0 {
			n2 = -n2
		}
		if n3 < 0 {
			n3 = -n3
		}
		values := splitNonEmpty(blob)

		req := request{Key: keys.Key(key), At: keys.Key(at), GoingUp: flag, Logical: n1, Physical: n2, Redirects: n3}
		var gotReq request
		if err := decodeRequest(appendRequest(nil, &req), &gotReq); err != nil {
			t.Fatalf("decodeRequest: %v", err)
		}
		if !reflect.DeepEqual(req, gotReq) {
			t.Fatalf("request round-trip: %+v != %+v", req, gotReq)
		}

		resp := response{Found: flag, Dropped: !flag, Values: values, Logical: n1, Physical: n2, Err: errStr}
		var gotResp response
		if err := decodeResponse(appendResponse(nil, &resp), &gotResp); err != nil {
			t.Fatalf("decodeResponse: %v", err)
		}
		if len(gotResp.Values) == 0 {
			gotResp.Values = nil
		}
		if len(resp.Values) == 0 {
			resp.Values = nil
		}
		if !reflect.DeepEqual(resp, gotResp) {
			t.Fatalf("response round-trip: %+v != %+v", resp, gotResp)
		}

		q := queryReq{Range: flag, Prefix: keys.Key(key), Lo: keys.Key(at), Hi: keys.Key(errStr), Limit: n1, Entry: keys.Key(blob), Walk: !flag, Logical: n2, Physical: n3, Visited: n1}
		var gotQ queryReq
		if err := decodeQuery(appendQuery(nil, &q), &gotQ); err != nil {
			t.Fatalf("decodeQuery: %v", err)
		}
		if !reflect.DeepEqual(q, gotQ) {
			t.Fatalf("query round-trip: %+v != %+v", q, gotQ)
		}

		rq := qroute{Anchor: keys.Key(key), At: keys.Key(at), Descending: flag, Logical: n1, Physical: n2, Visited: n3, Redirects: n1}
		var gotRq qroute
		if err := decodeQRoute(appendQRoute(nil, &rq), &gotRq); err != nil {
			t.Fatalf("decodeQRoute: %v", err)
		}
		if !reflect.DeepEqual(rq, gotRq) {
			t.Fatalf("qroute round-trip: %+v != %+v", rq, gotRq)
		}

		end := streamEnd{Logical: n1, Physical: n2, Visited: n3, Err: errStr}
		var gotEnd streamEnd
		if err := decodeStreamEnd(appendStreamEnd(nil, &end), &gotEnd); err != nil {
			t.Fatalf("decodeStreamEnd: %v", err)
		}
		if !reflect.DeepEqual(end, gotEnd) {
			t.Fatalf("streamEnd round-trip: %+v != %+v", end, gotEnd)
		}

		batch := core.ReplicaBatch{From: keys.Key(key), To: keys.Key(at)}
		for i, v := range values {
			batch.Infos = append(batch.Infos, core.NodeInfo{
				Key: keys.Key(v), Father: keys.Key(key), HasFather: i%2 == 0,
				Children: []keys.Key{keys.Key(at)}, Data: []string{v},
				LoadPrev: n1, LoadCur: n2,
			})
		}
		var gotBatch core.ReplicaBatch
		if err := decodeReplicaBatch(appendReplicaBatch(nil, &batch), &gotBatch); err != nil {
			t.Fatalf("decodeReplicaBatch: %v", err)
		}
		// The catalogue envelope canonicalizes the batch: snapshots
		// arrive sorted by key with duplicates collapsed (later
		// wins), the father of a fatherless node is dropped, and
		// empty child/data slices come back nil.
		sort.SliceStable(batch.Infos, func(i, j int) bool {
			return batch.Infos[i].Key < batch.Infos[j].Key
		})
		dedup := batch.Infos[:0]
		for i, info := range batch.Infos {
			if !info.HasFather {
				info.Father = ""
			}
			if len(info.Children) == 0 {
				info.Children = nil
			}
			if len(info.Data) == 0 {
				info.Data = nil
			}
			if i+1 < len(batch.Infos) && batch.Infos[i+1].Key == info.Key {
				continue
			}
			dedup = append(dedup, info)
		}
		batch.Infos = dedup
		if len(batch.Infos) == 0 {
			batch.Infos = nil
		}
		if len(gotBatch.Infos) == 0 {
			gotBatch.Infos = nil
		}
		if !reflect.DeepEqual(batch, gotBatch) {
			t.Fatalf("replica round-trip: %+v != %+v", batch, gotBatch)
		}

		// Whole-frame round-trip, traced when traceID != 0 (0x80
		// extension) and plain otherwise.
		typ := byte(frameRequest)
		var stream bytes.Buffer
		w := &frameConn{conn: &fuzzConn{w: &stream}}
		tc := trace.Context{Trace: traceID, Span: spanID}
		buf := beginTracedFrame(nil, typ, 11, tc)
		buf = append(buf, payload...)
		if err := w.finishFrame(buf); err != nil {
			if errors.Is(err, errFrameTooLarge) {
				t.Skip("oversized fuzz payload")
			}
			t.Fatalf("finishFrame: %v", err)
		}
		r := newFrameConn(&fuzzConn{r: bytes.NewReader(stream.Bytes())})
		gotTyp, gotID, gotTC, gotPayload, err := r.readFrame()
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if gotTyp != typ || gotID != 11 {
			t.Fatalf("frame round-trip: typ=%d id=%d", gotTyp, gotID)
		}
		if tc.Valid() {
			if gotTC != tc {
				t.Fatalf("trace context round-trip: %+v != %+v", gotTC, tc)
			}
		} else if gotTC.Valid() {
			t.Fatalf("untraced frame decoded a trace context: %+v", gotTC)
		}
		if !bytes.Equal(gotPayload, payload) {
			t.Fatalf("payload round-trip: %x != %x", gotPayload, payload)
		}
	})
}

// splitNonEmpty splits blob at NUL bytes, dropping empty segments
// (the codec encodes value counts, not separators).
func splitNonEmpty(blob string) []string {
	var out []string
	for _, s := range bytes.Split([]byte(blob), []byte{0}) {
		if len(s) > 0 {
			out = append(out, string(s))
		}
	}
	return out
}
