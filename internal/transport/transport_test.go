package transport

import (
	"errors"
	"sync"
	"testing"

	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

func startTCP(t *testing.T, n int) *Cluster {
	t.Helper()
	caps := make([]int, n)
	for i := range caps {
		caps[i] = 1 << 20
	}
	c, err := Start(keys.LowerAlnum, caps, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestStartRejectsEmpty(t *testing.T) {
	if _, err := Start(keys.LowerAlnum, nil, 1); err == nil {
		t.Fatalf("empty cluster must fail")
	}
}

func TestDiscoverOverTCP(t *testing.T) {
	c := startTCP(t, 6)
	corpus := workload.GridCorpus(80)
	for _, k := range corpus {
		if err := c.Register(k, "ep:"+string(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, k := range corpus {
		res, err := c.Discover(k)
		if err != nil {
			t.Fatalf("discover %q: %v", k, err)
		}
		if !res.Found {
			t.Fatalf("%q not found over TCP", k)
		}
		if len(res.Values) != 1 || res.Values[0] != "ep:"+string(k) {
			t.Fatalf("values = %v", res.Values)
		}
		// At least the client-to-entry wire transfer happened.
		if res.PhysicalHops < 1 {
			t.Fatalf("physical hops = %d", res.PhysicalHops)
		}
	}
	res, err := c.Discover("zz_absent")
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("absent key found")
	}
}

func TestDiscoverEmptyTreeTCP(t *testing.T) {
	c := startTCP(t, 3)
	res, err := c.Discover("x")
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("empty tree cannot satisfy")
	}
}

func TestConcurrentTCPDiscovery(t *testing.T) {
	c := startTCP(t, 8)
	corpus := workload.GridCorpus(100)
	for _, k := range corpus {
		if err := c.Register(k, string(k)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := corpus[(w*17+i)%len(corpus)]
				res, err := c.Discover(k)
				if err != nil || !res.Found {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAddPeerWhileServing(t *testing.T) {
	c := startTCP(t, 4)
	corpus := workload.GridCorpus(40)
	for _, k := range corpus {
		if err := c.Register(k, string(k)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AddPeer(1 << 20); err != nil {
		t.Fatal(err)
	}
	if c.NumPeers() != 5 {
		t.Fatalf("NumPeers = %d", c.NumPeers())
	}
	for _, k := range corpus {
		res, err := c.Discover(k)
		if err != nil || !res.Found {
			t.Fatalf("%q lost after join: %v", k, err)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddrsExposed(t *testing.T) {
	c := startTCP(t, 3)
	addrs := c.Addrs()
	if len(addrs) != 3 {
		t.Fatalf("Addrs = %v", addrs)
	}
	for id, addr := range addrs {
		if addr == "" {
			t.Fatalf("peer %q has empty addr", id)
		}
	}
	if c.NumNodes() != 0 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
}

func TestStopRejectsOps(t *testing.T) {
	c := startTCP(t, 2)
	if err := c.Register("k", "v"); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	c.Stop()
	if err := c.Register("k2", "v"); !errors.Is(err, ErrStopped) {
		t.Fatalf("Register after stop = %v", err)
	}
	if _, err := c.Discover("k"); !errors.Is(err, ErrStopped) {
		t.Fatalf("Discover after stop = %v", err)
	}
	if _, err := c.AddPeer(5); !errors.Is(err, ErrStopped) {
		t.Fatalf("AddPeer after stop = %v", err)
	}
}

func TestHopCountsMatchSequentialEngine(t *testing.T) {
	// The TCP path must route the same tree walk as the sequential
	// engine: logical hops per discovery stay within the tree depth
	// bound and physical <= logical + 1 (client entry transfer).
	c := startTCP(t, 6)
	corpus := workload.GridCorpus(60)
	for _, k := range corpus {
		if err := c.Register(k, string(k)); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range corpus[:20] {
		res, err := c.Discover(k)
		if err != nil {
			t.Fatal(err)
		}
		if res.PhysicalHops > res.LogicalHops+1 {
			t.Fatalf("physical %d > logical %d + 1", res.PhysicalHops, res.LogicalHops)
		}
		if res.LogicalHops > 40 {
			t.Fatalf("implausible path length %d", res.LogicalHops)
		}
	}
}
