// The client half of the wire protocol: a pool of persistent,
// multiplexed connections, one per remote listener address. Relays
// borrow the shared connection, tag their request with a fresh id and
// wait for the matching RESPONSE frame; a per-connection demux loop
// routes frames back by id. Cancelling a waiting relay sends a CANCEL
// frame — the stream is freed, the connection survives.
//
// The pool is keyed by listener address, not peer id: balancing
// renames re-key peer ids over the same listeners, so pooled
// connections stay valid across every Balance round by construction.
// Removing or crashing a peer closes its listener and evicts its
// pooled connection, so stale relays fail fast and re-resolve.

package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dlpt/internal/core"
	"dlpt/internal/obs"
	"dlpt/internal/trace"
)

// dialTimeout bounds a pool dial so a hung connect cannot wedge
// eviction or Stop (both wait for an in-flight dial to settle).
const dialTimeout = 5 * time.Second

// connPool owns the client side of every wire conversation.
type connPool struct {
	quit <-chan struct{}
	wg   *sync.WaitGroup // cluster's group; tracks demux loops

	// met, when set, is handed to every dialed frameConn for wire-byte
	// accounting. Nil-safe.
	met *obs.Metrics

	// faults, when set, cuts gets toward partitioned addresses so
	// injected partitions cover every client path (relays, probes,
	// control round-trips) at the single choke point. Nil-safe.
	faults *Faults

	mu     sync.Mutex
	conns  map[string]*poolConn // guarded by mu
	closed bool                 // guarded by mu

	// dials counts TCP dials over the pool's lifetime: the
	// amortization the pool exists for, asserted by tests.
	dials  atomic.Int64
	nextID atomic.Uint64
}

// poolConn is one shared connection plus its in-flight request table.
type poolConn struct {
	addr string

	// ready is closed once the dial finished (fc or dialErr set);
	// concurrent getters wait on it instead of dialing again.
	ready   chan struct{}
	dialErr error
	fc      *frameConn

	mu      sync.Mutex
	pending map[uint64]chan rtResult // guarded by mu
	// streams holds the in-flight streaming queries multiplexed on
	// this connection, keyed by request id like pending.
	streams map[uint64]*clientStream // guarded by mu
	// raw holds the in-flight control-plane round-trips (QROUTE,
	// JOIN, LEAVE, APPLY, STATUS, ADMIN): their replies come back as
	// typed frames the pool does not decode.
	raw map[uint64]chan rawMsg // guarded by mu
	err error                  // terminal transport error; set once under mu; guarded by mu
}

// rawMsg is one demuxed control-plane reply: the reply frame's type
// and a copy of its payload (the demux loop's read buffer is reused,
// so the payload must not alias it), or the transport error that
// broke the connection.
type rawMsg struct {
	typ     byte
	payload []byte
	err     error
}

// streamMsg is one demuxed stream event: a batch of keys (info
// carries the traversal counters so far), the STREAM_END totals, or
// the transport error that broke the connection.
type streamMsg struct {
	batch []string
	end   bool
	info  streamEnd
	err   error
}

// clientStream is the demux-side handle of one streaming query. The
// demux loop delivers into ch with backpressure while the consumer is
// alive; gone (closed by the consumer on early exit) unblocks it so an
// abandoned stream can never wedge the shared connection.
type clientStream struct {
	ch   chan streamMsg
	gone chan struct{}
}

// deliver hands one event to the consumer, dropping it if the
// consumer already left.
func (cs *clientStream) deliver(msg streamMsg) {
	select {
	case cs.ch <- msg:
	case <-cs.gone:
	}
}

// rtResult is one demuxed round-trip outcome: either the decoded
// response or the transport-level error that broke the connection
// (retryable — the request is an idempotent routing step).
type rtResult struct {
	resp response
	err  error
}

func newConnPool(quit <-chan struct{}, wg *sync.WaitGroup) *connPool {
	return &connPool{quit: quit, wg: wg, conns: make(map[string]*poolConn)}
}

// get returns the shared connection to addr, dialing it on first use.
// Concurrent getters for one address share a single dial.
func (p *connPool) get(ctx context.Context, addr string) (*poolConn, error) {
	if p.faults.isPartitioned(addr) {
		return nil, fmt.Errorf("%w: %s", ErrPartitioned, addr)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrStopped
	}
	pc, ok := p.conns[addr]
	if !ok {
		pc = &poolConn{
			addr:    addr,
			ready:   make(chan struct{}),
			pending: make(map[uint64]chan rtResult),
			streams: make(map[uint64]*clientStream),
			raw:     make(map[uint64]chan rawMsg),
		}
		p.conns[addr] = pc
		// The dial is shared by every getter of this address, so it
		// must not be governed by any single getter's context: a
		// cancelled first getter would poison the entry for callers
		// whose contexts are live. dialTimeout bounds it instead.
		p.wg.Add(1)
		go p.dial(pc)
	}
	p.mu.Unlock()
	select {
	case <-pc.ready:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.quit:
		return nil, ErrStopped
	}
	if pc.dialErr != nil {
		return nil, pc.dialErr
	}
	pc.mu.Lock()
	err := pc.err
	pc.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return pc, nil
}

// dial connects pc and starts its demux loop. On failure the entry is
// removed so the next get retries a fresh dial.
func (p *connPool) dial(pc *poolConn) {
	defer p.wg.Done()
	defer close(pc.ready)
	d := net.Dialer{Timeout: dialTimeout}
	conn, err := d.Dial("tcp", pc.addr)
	if err != nil {
		pc.dialErr = err
		p.drop(pc)
		return
	}
	p.mu.Lock()
	if p.closed {
		delete(p.conns, pc.addr)
		p.mu.Unlock()
		_ = conn.Close()
		pc.dialErr = ErrStopped
		return
	}
	p.dials.Add(1)
	pc.fc = newFrameConn(conn)
	pc.fc.met = p.met
	p.wg.Add(1)
	p.mu.Unlock()
	go p.demux(pc)
}

// demux is the per-connection reader: it dispatches RESPONSE frames
// to the waiting round-trips by id. Responses for ids nobody waits
// for (cancelled upstream) are dropped. A read error breaks the
// connection: every in-flight round-trip fails fast and the entry
// leaves the pool.
func (p *connPool) demux(pc *poolConn) {
	defer p.wg.Done()
	for {
		typ, id, _, payload, err := pc.fc.readFrame()
		if err != nil {
			p.fail(pc, err)
			return
		}
		switch typ {
		case frameResponse:
			// A RESPONSE answers either a routing/replica round-trip
			// (pending, decoded here) or a control-plane round-trip
			// acknowledged with an ack (raw, handed over undecoded).
			pc.mu.Lock()
			ch := pc.pending[id]
			delete(pc.pending, id)
			var rch chan rawMsg
			if ch == nil {
				rch = pc.raw[id]
				delete(pc.raw, id)
			}
			pc.mu.Unlock()
			if rch != nil {
				rch <- rawMsg{typ: typ, payload: append([]byte(nil), payload...)}
				continue
			}
			var resp response
			if err := decodeResponse(payload, &resp); err != nil {
				p.fail(pc, err)
				return
			}
			if ch != nil {
				ch <- rtResult{resp: resp}
			}
		case frameQRouteResp, frameHello, frameStatusResp, frameAdminResp,
			frameElectResp, frameEpochOpenResp, frameFetchResp:
			pc.mu.Lock()
			rch := pc.raw[id]
			delete(pc.raw, id)
			pc.mu.Unlock()
			if rch != nil {
				rch <- rawMsg{typ: typ, payload: append([]byte(nil), payload...)}
			}
		case frameStream:
			batch, progress, err := decodeStreamBatch(payload)
			if err != nil {
				p.fail(pc, err)
				return
			}
			pc.mu.Lock()
			cs := pc.streams[id]
			pc.mu.Unlock()
			if cs != nil {
				cs.deliver(streamMsg{batch: batch, info: progress})
			}
		case frameStreamEnd:
			var end streamEnd
			if err := decodeStreamEnd(payload, &end); err != nil {
				p.fail(pc, err)
				return
			}
			pc.mu.Lock()
			cs := pc.streams[id]
			delete(pc.streams, id)
			pc.mu.Unlock()
			if cs != nil {
				cs.deliver(streamMsg{end: true, info: end})
			}
		default:
			// unknown frame type: ignore for forward compat
		}
	}
}

// openStream registers a fresh streaming query on pc and returns its
// id and demux handle. The caller writes the QUERY frame itself.
// The delivery channel holds a full server credit window plus the
// STREAM_END, so the demux loop never blocks on a slow-but-alive
// consumer — only on one that is queryWindow batches behind, which
// the server-side credit pause prevents from ever happening.
func (p *connPool) openStream(pc *poolConn) (uint64, *clientStream, error) {
	id := p.nextID.Add(1)
	cs := &clientStream{ch: make(chan streamMsg, queryWindow+1), gone: make(chan struct{})}
	pc.mu.Lock()
	if pc.err != nil {
		err := pc.err
		pc.mu.Unlock()
		return 0, nil, err
	}
	pc.streams[id] = cs
	pc.mu.Unlock()
	return id, cs, nil
}

// forgetStream removes a streaming query's demux entry (early
// consumer exit); the caller follows up with a CANCEL frame.
func (pc *poolConn) forgetStream(id uint64) {
	pc.mu.Lock()
	delete(pc.streams, id)
	pc.mu.Unlock()
}

// roundTrip sends req on the shared connection and waits for its
// response. Cancellation sends a CANCEL frame and abandons the id;
// the connection keeps serving the other in-flight round-trips.
func (p *connPool) roundTrip(ctx context.Context, pc *poolConn, tc trace.Context, req *request) (response, error) {
	return p.doRoundTrip(ctx, pc, func(id uint64) error {
		return pc.fc.writeRequest(id, tc, req)
	})
}

// doRoundTrip is the shared request/response protocol: register a
// pending id, put the frame on the wire with write, await the demuxed
// RESPONSE. An errFrameTooLarge write leaves the connection good
// (nothing hit the wire — only this request is undeliverable); any
// other write error breaks it. Cancellation sends a CANCEL frame and
// abandons the id; the connection keeps serving the other in-flight
// round-trips.
func (p *connPool) doRoundTrip(ctx context.Context, pc *poolConn, write func(id uint64) error) (response, error) {
	id := p.nextID.Add(1)
	ch := make(chan rtResult, 1)
	pc.mu.Lock()
	if pc.err != nil {
		err := pc.err
		pc.mu.Unlock()
		return response{}, err
	}
	pc.pending[id] = ch
	pc.mu.Unlock()

	if err := write(id); err != nil {
		pc.forget(id)
		if !errors.Is(err, errFrameTooLarge) {
			p.fail(pc, err)
		}
		return response{}, err
	}
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-ctx.Done():
		pc.forget(id)
		_ = pc.fc.writeCancel(id) // best effort: free the remote stream
		return response{}, ctx.Err()
	case <-p.quit:
		pc.forget(id)
		return response{}, ErrStopped
	}
}

// replicaRoundTrip ships one successor replica batch as a REPLICA
// frame and waits for its acknowledging RESPONSE, with the same
// cancellation and failure semantics as roundTrip. A batch too large
// for one frame leaves the connection good; the caller degrades to a
// direct install.
func (p *connPool) replicaRoundTrip(ctx context.Context, pc *poolConn, tc trace.Context, b *core.ReplicaBatch) (response, error) {
	return p.doRoundTrip(ctx, pc, func(id uint64) error {
		return pc.fc.writeReplica(id, tc, b)
	})
}

func (pc *poolConn) forget(id uint64) {
	pc.mu.Lock()
	delete(pc.pending, id)
	pc.mu.Unlock()
}

func (pc *poolConn) forgetRaw(id uint64) {
	pc.mu.Lock()
	delete(pc.raw, id)
	pc.mu.Unlock()
}

// rawRoundTrip is doRoundTrip for the control plane: the reply is a
// typed frame handed back undecoded. Same cancellation and failure
// semantics — an errFrameTooLarge write leaves the connection good,
// any other write error breaks it, and cancellation sends a CANCEL
// frame and abandons the id.
func (p *connPool) rawRoundTrip(ctx context.Context, pc *poolConn, write func(id uint64) error) (rawMsg, error) {
	id := p.nextID.Add(1)
	ch := make(chan rawMsg, 1)
	pc.mu.Lock()
	if pc.err != nil {
		err := pc.err
		pc.mu.Unlock()
		return rawMsg{}, err
	}
	pc.raw[id] = ch
	pc.mu.Unlock()

	if err := write(id); err != nil {
		pc.forgetRaw(id)
		if !errors.Is(err, errFrameTooLarge) {
			p.fail(pc, err)
		}
		return rawMsg{}, err
	}
	select {
	case msg := <-ch:
		return msg, msg.err
	case <-ctx.Done():
		pc.forgetRaw(id)
		_ = pc.fc.writeCancel(id) // best effort: free the remote stream
		return rawMsg{}, ctx.Err()
	case <-p.quit:
		pc.forgetRaw(id)
		return rawMsg{}, ErrStopped
	}
}

// fail marks pc broken, fails every in-flight round-trip, closes the
// socket and drops the pool entry so the next relay redials fresh.
func (p *connPool) fail(pc *poolConn, err error) {
	pc.mu.Lock()
	if pc.err == nil {
		pc.err = err
	}
	drain := pc.pending
	pc.pending = make(map[uint64]chan rtResult)
	drainStreams := pc.streams
	pc.streams = make(map[uint64]*clientStream)
	drainRaw := pc.raw
	pc.raw = make(map[uint64]chan rawMsg)
	pc.mu.Unlock()
	for _, ch := range drain {
		ch <- rtResult{err: err}
	}
	for _, cs := range drainStreams {
		cs.deliver(streamMsg{err: err})
	}
	for _, rch := range drainRaw {
		rch <- rawMsg{err: err}
	}
	_ = pc.fc.Close()
	p.drop(pc)
}

// drop removes pc's pool entry unless a redial already replaced it.
func (p *connPool) drop(pc *poolConn) {
	p.mu.Lock()
	if cur, ok := p.conns[pc.addr]; ok && cur == pc {
		delete(p.conns, pc.addr)
	}
	p.mu.Unlock()
}

// evict closes and forgets the connection to addr, if any. Called
// when the peer behind addr is removed or crashes: in-flight relays
// fail fast (feeding the redirect/retry bounds) instead of waiting on
// a dead socket.
func (p *connPool) evict(addr string) {
	p.mu.Lock()
	pc := p.conns[addr]
	delete(p.conns, addr)
	p.mu.Unlock()
	if pc == nil {
		return
	}
	<-pc.ready // a concurrent first dial finishes before we close
	if pc.fc != nil {
		_ = pc.fc.Close() // demux loop observes the close and drains
	}
}

// closeAll evicts every connection; subsequent gets fail ErrStopped.
// After the cluster's WaitGroup settles the pool is drained: each
// demux loop removes its own entry on the way out.
func (p *connPool) closeAll() {
	p.mu.Lock()
	p.closed = true
	conns := make([]*poolConn, 0, len(p.conns))
	for _, pc := range p.conns {
		conns = append(conns, pc)
	}
	p.mu.Unlock()
	for _, pc := range conns {
		<-pc.ready
		if pc.fc != nil {
			_ = pc.fc.Close()
		}
	}
}

// size reports the live pooled-connection count.
func (p *connPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}
