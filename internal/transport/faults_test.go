package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"dlpt/internal/keys"
)

func TestFaultRuleMatchingAndCounts(t *testing.T) {
	f := NewFaults(1)
	f.Inject(FaultRule{Type: frameApply, Addr: "a:1", Count: 2, Drop: true})

	// Non-matching type and address pass through.
	if _, err := f.onSend(frameStatus, "a:1"); err != nil {
		t.Fatalf("type mismatch must pass: %v", err)
	}
	if _, err := f.onSend(frameApply, "b:2"); err != nil {
		t.Fatalf("addr mismatch must pass: %v", err)
	}
	// Two matches consume the rule, the third passes.
	for i := 0; i < 2; i++ {
		if _, err := f.onSend(frameApply, "a:1"); !errors.Is(err, ErrInjectedDrop) {
			t.Fatalf("match %d: want ErrInjectedDrop, got %v", i, err)
		}
	}
	if _, err := f.onSend(frameApply, "a:1"); err != nil {
		t.Fatalf("expired rule must pass: %v", err)
	}
}

func TestFaultWildcardsAndOrder(t *testing.T) {
	f := NewFaults(1)
	f.Inject(FaultRule{Addr: "a:1", Count: 1, Dup: true})
	f.Inject(FaultRule{Drop: true}) // unlimited wildcard behind it

	act, err := f.onSend(frameApply, "a:1")
	if err != nil || !act.dup {
		t.Fatalf("first rule must win: act=%+v err=%v", act, err)
	}
	// The dup rule expired; the wildcard drop now matches everything.
	if _, err := f.onSend(frameJoin, "anything"); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("wildcard drop must match, got %v", err)
	}
}

func TestFaultDelayJitterDeterministic(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		f := NewFaults(seed)
		f.Inject(FaultRule{Delay: 50 * time.Millisecond, Jitter: 0.5})
		var out []time.Duration
		for i := 0; i < 5; i++ {
			act, err := f.onSend(frameApply, "a:1")
			if err != nil {
				t.Fatal(err)
			}
			lo, hi := 25*time.Millisecond, 75*time.Millisecond
			if act.delay < lo || act.delay > hi {
				t.Fatalf("delay %v outside [%v, %v]", act.delay, lo, hi)
			}
			out = append(out, act.delay)
		}
		return out
	}
	a, b := delays(7), delays(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestFaultPartitionHealClear(t *testing.T) {
	f := NewFaults(1)
	f.Partition("a:1", "b:2")
	if !f.isPartitioned("a:1") || !f.isPartitioned("b:2") {
		t.Fatal("partition not recorded")
	}
	if _, err := f.onSend(frameStatus, "a:1"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("want ErrPartitioned, got %v", err)
	}
	f.Heal("a:1")
	if f.isPartitioned("a:1") || !f.isPartitioned("b:2") {
		t.Fatal("heal must be per-address")
	}
	f.Inject(FaultRule{Drop: true})
	f.Clear()
	if f.isPartitioned("b:2") {
		t.Fatal("clear must lift partitions")
	}
	if _, err := f.onSend(frameApply, "b:2"); err != nil {
		t.Fatalf("clear must drop rules: %v", err)
	}
}

func TestNilFaultsInjectNothing(t *testing.T) {
	var f *Faults
	if f.isPartitioned("a:1") {
		t.Fatal("nil Faults must not partition")
	}
	if act, err := f.onSend(frameApply, "a:1"); err != nil || act.drop || act.dup || act.delay != 0 {
		t.Fatalf("nil Faults must no-op: act=%+v err=%v", act, err)
	}
}

// TestFaultsOnWire drives a real two-process-shaped cluster pair (one
// listener each, like dlptd) and proves drops and duplicates surface
// at the ControlRoundTrip layer: the drop is a send error, and the
// duplicated frame reaches the handler twice while the caller still
// sees exactly one reply.
func TestFaultsOnWire(t *testing.T) {
	faults := NewFaults(3)
	seen := make(chan byte, 8)
	opts := Options{
		Faults: faults,
		Control: func(typ byte, payload []byte) (byte, []byte) {
			seen <- typ
			return FrameAck, EncodeAck("")
		},
	}
	srv, err := StartOpts(keys.LowerAlnum, []int{8}, 1, Options{Control: opts.Control})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	var addr string
	for _, a := range srv.Addrs() {
		addr = a
	}
	cli, err := StartOpts(keys.LowerAlnum, []int{8}, 2, Options{Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Stop)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// A dropped frame is a transport error on the sender.
	faults.Inject(FaultRule{Type: frameApply, Count: 1, Drop: true})
	if _, _, err := cli.ControlRoundTrip(ctx, addr, frameApply, EncodeAck("")); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("want ErrInjectedDrop, got %v", err)
	}

	// A duplicated frame reaches the handler twice; one reply returns.
	faults.Inject(FaultRule{Type: frameApply, Count: 1, Dup: true})
	rtyp, _, err := cli.ControlRoundTrip(ctx, addr, frameApply, EncodeAck(""))
	if err != nil || rtyp != FrameAck {
		t.Fatalf("dup round-trip: rtyp=%d err=%v", rtyp, err)
	}
	for i := 0; i < 2; i++ {
		select {
		case typ := <-seen:
			if typ != frameApply {
				t.Fatalf("handler saw frame %d", typ)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("handler saw the frame %d times, want 2", i)
		}
	}

	// A partition cuts the send before any dial.
	faults.Partition(addr)
	if _, _, err := cli.ControlRoundTrip(ctx, addr, frameStatus, nil); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("want ErrPartitioned, got %v", err)
	}
	faults.Heal(addr)
	if _, _, err := cli.ControlRoundTrip(ctx, addr, frameStatus, nil); err != nil {
		t.Fatalf("healed round-trip: %v", err)
	}
}
