// Package transport runs the DLPT discovery path over real TCP
// connections: every peer owns a loopback listener, and discovery
// requests hop peer-to-peer as length-prefixed binary frames (see
// frame.go) multiplexed over persistent connections (see pool.go) —
// each hop is one request/response round-trip on the shared socket
// to the next peer along the tree route. It demonstrates the overlay
// as a deployable network service (the Grid'5000 prototype the paper
// leaves as future work) and exercises the protocol under real
// sockets in the tests.
//
// Topology and tree state are shared through the embedded protocol
// core exactly as in internal/live; what travels on the wire is the
// routing dialogue: request in, forwarded hop, response out.
package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dlpt/internal/core"
	"dlpt/internal/keys"
	"dlpt/internal/lb"
	"dlpt/internal/obs"
	"dlpt/internal/persist"
	"dlpt/internal/trace"
	"dlpt/internal/trie"
)

// request is one on-the-wire discovery step.
type request struct {
	Key     keys.Key
	At      keys.Key
	GoingUp bool
	Logical int
	// Physical counts TCP hops (every wire transfer is physical).
	Physical int
	// Redirects counts relays for a node the addressed peer does not
	// host (stale routing after churn or balancing). A node lost to
	// an unrecovered crash would relay in a cycle forever, so past
	// maxRedirects the walk reports not found.
	Redirects int
}

// maxRedirects bounds stale-routing relays per request.
const maxRedirects = 8

// response is the on-the-wire result.
type response struct {
	Found bool
	// Dropped reports that a saturated peer ignored the request
	// (capacity gating).
	Dropped  bool
	Values   []string
	Logical  int
	Physical int
	Err      string
}

// queryReq is the on-the-wire form of one streaming subtree query:
// the traversal spec plus the node to run it from. With Walk set,
// Entry is the covering node a hop-by-hop QROUTE phase resolved and
// Logical/Physical/Visited carry the route's counters — the server
// resumes directly in the subtree walk. Without Walk (not produced
// by current clients, kept for protocol completeness) the server
// runs all three phases from Entry. Either way it answers with
// STREAM batches and one STREAM_END carrying the traversal totals.
type queryReq struct {
	Range          bool
	Prefix, Lo, Hi keys.Key
	Limit          int
	Entry          keys.Key
	Walk           bool
	Logical        int
	Physical       int
	Visited        int
}

// qroute is one on-the-wire climb/descend step of a subtree query:
// the anchor the route narrows towards, the current node, and the
// walker counters accumulated so far. It relays between listeners
// exactly like discovery requests do, so the query's first phases
// read only tree state the addressed peer hosts.
type qroute struct {
	Anchor     keys.Key
	At         keys.Key
	Descending bool
	Logical    int
	Physical   int
	Visited    int
	Redirects  int
}

// qrouteResp resolves one routed climb/descend: the covering node to
// open the walk at (Found), or the end of the query when the route
// hit a node lost to churn (!Found — the walk yields nothing, with
// the route's counters as totals, exactly as the walker behaves at a
// vanished node).
type qrouteResp struct {
	Found    bool
	Anchor   keys.Key
	Logical  int
	Physical int
	Visited  int
	Err      string
}

// streamEnd closes one streaming query on the wire.
type streamEnd struct {
	Logical, Physical, Visited int
	Err                        string
}

// Result is the outcome of a TCP-routed discovery.
type Result struct {
	Key          keys.Key
	Found        bool
	Values       []string
	LogicalHops  int
	PhysicalHops int
	// Dropped reports that a saturated peer ignored the request
	// (capacity gating).
	Dropped bool
}

// peerServer is one peer's TCP endpoint. Accepted connections are
// persistent (one per remote client, many in-flight requests) and
// tracked so removing or crashing the peer can close them: a pooled
// client connection to a dead peer must fail fast, not linger.
type peerServer struct {
	id   keys.Key
	addr string
	ln   net.Listener

	cmu    sync.Mutex
	conns  map[net.Conn]struct{} // guarded by cmu
	closed bool                  // guarded by cmu
}

// track registers an accepted connection; it reports false when the
// server already closed (the caller drops the connection).
func (ps *peerServer) track(conn net.Conn) bool {
	ps.cmu.Lock()
	defer ps.cmu.Unlock()
	if ps.closed {
		return false
	}
	ps.conns[conn] = struct{}{}
	return true
}

func (ps *peerServer) untrack(conn net.Conn) {
	ps.cmu.Lock()
	delete(ps.conns, conn)
	ps.cmu.Unlock()
}

// close shuts the listener and every accepted connection down.
func (ps *peerServer) close() {
	ps.cmu.Lock()
	ps.closed = true
	conns := make([]net.Conn, 0, len(ps.conns))
	for conn := range ps.conns {
		conns = append(conns, conn)
	}
	ps.cmu.Unlock()
	_ = ps.ln.Close()
	for _, conn := range conns {
		_ = conn.Close()
	}
}

// Options are the optional cluster construction parameters.
type Options struct {
	// Placement picks ring identifiers for joining peers; nil draws
	// uniformly random identifiers.
	Placement lb.Strategy
	// Gate enforces per-peer capacity on the discovery path: every
	// visit consumes capacity and saturated peers drop requests.
	Gate bool
	// Persist, when non-nil, makes the cluster durable: Replicate
	// writes fsynced snapshots and catalogue mutations append to the
	// journal.
	Persist *persist.Store
	// Restore rebuilds the overlay from Persist instead of starting
	// fresh from the capacities (which are then ignored).
	Restore bool
	// Bind is the listener bind address: "host", "host:port" or
	// "host:0"; empty preserves the historical 127.0.0.1 ephemeral
	// binding. A fixed port only suits clusters with a single local
	// listener (the daemon deployment).
	Bind string
	// AdvertiseHost overrides the host part of the addresses entered
	// in the routing table — what other processes dial when the bind
	// host (0.0.0.0) is not reachable as written.
	AdvertiseHost string
	// AllowEmpty permits starting with zero peers and no restore: a
	// daemon joining an existing overlay starts empty and populates
	// the cluster through InstallMirror.
	AllowEmpty bool
	// Control handles the control-plane frames (JOIN, LEAVE, APPLY,
	// STATUS, ADMIN): it receives the frame type and a copy of the
	// payload and returns the reply frame. Nil rejects control frames
	// with an in-band error.
	Control func(typ byte, payload []byte) (respTyp byte, resp []byte)
	// Obs, when non-nil, instruments the cluster: traversal and wire
	// counters feed this bundle and scrape-time collectors mirror the
	// pool, peer-load and replication state into its registry.
	Obs *obs.Metrics
	// Trace, when non-nil, records per-hop spans for every routed
	// traversal, replica shipment and topology event; trace contexts
	// propagate across hosts in the frame header extension.
	Trace *trace.Recorder
	// Faults, when non-nil, injects deterministic faults into the
	// outbound frame path: partitions cut dials, typed rules drop,
	// delay or duplicate control frames. Test-only; nil costs one nil
	// check per send.
	Faults *Faults
}

// Cluster is an overlay whose peers communicate over TCP.
type Cluster struct {
	mu      sync.RWMutex
	net     *core.Network       // guarded by mu
	rng     *rand.Rand          // guarded by mu (writers only)
	addrs   map[keys.Key]string // guarded by mu
	place   lb.Strategy         // join placement hook; nil = uniform random
	gate    bool                // enforce peer capacity on discoveries
	store   *persist.Store      // durability layer; nil = in-memory only
	bind    string              // listener bind address template
	advHost string              // advertised host override
	control func(typ byte, payload []byte) (byte, []byte)
	met     *obs.Metrics    // nil disables metrics
	rec     *trace.Recorder // nil disables span recording
	faults  *Faults         // nil injects nothing

	// queryVisits counts tree nodes visited by server-side streaming
	// query traversals — the observable the early-exit tests watch to
	// prove a cancelled consumer actually halts the walk.
	queryVisits atomic.Int64

	pool    *connPool
	servers []*peerServer
	wg      sync.WaitGroup
	quit    chan struct{}
	once    sync.Once
}

// ErrStopped is returned by operations on a stopped cluster.
var ErrStopped = errors.New("transport: cluster stopped")

// Start launches a TCP-backed overlay with one listener per capacity
// entry, all bound to 127.0.0.1 ephemeral ports.
func Start(alpha *keys.Alphabet, capacities []int, seed int64) (*Cluster, error) {
	return StartOpts(alpha, capacities, seed, Options{})
}

// StartOpts is Start with explicit Options.
func StartOpts(alpha *keys.Alphabet, capacities []int, seed int64, opts Options) (*Cluster, error) {
	if len(capacities) == 0 && !opts.Restore && !opts.AllowEmpty {
		return nil, fmt.Errorf("transport: no peers")
	}
	c := &Cluster{
		net:     core.NewNetwork(alpha, core.PlacementLexicographic),
		rng:     rand.New(rand.NewSource(seed)),
		addrs:   make(map[keys.Key]string),
		place:   opts.Placement,
		gate:    opts.Gate,
		store:   opts.Persist,
		bind:    opts.Bind,
		advHost: opts.AdvertiseHost,
		control: opts.Control,
		met:     opts.Obs,
		rec:     opts.Trace,
		faults:  opts.Faults,
		quit:    make(chan struct{}),
	}
	// The shared core inherits the instrumentation so every query
	// walker built over this network records phase spans and counters.
	c.net.Obs = c.met
	c.net.Tracer = c.rec
	c.pool = newConnPool(c.quit, &c.wg)
	c.pool.met = c.met
	c.pool.faults = c.faults
	c.registerCollectors()
	if opts.Restore {
		if c.store == nil {
			c.Stop()
			return nil, fmt.Errorf("transport: restore without a persistence store")
		}
		if err := c.net.RestoreFromStore(c.store, c.rng); err != nil {
			c.Stop()
			return nil, err
		}
		c.mu.Lock()
		for _, id := range c.net.PeerIDs() {
			if err := c.startListenerLocked(id); err != nil {
				c.mu.Unlock()
				c.Stop()
				return nil, err
			}
		}
		c.mu.Unlock()
	} else {
		for _, capacity := range capacities {
			if _, err := c.AddPeer(capacity); err != nil {
				c.Stop()
				return nil, err
			}
		}
	}
	// Callers of the mutation paths hold c.mu, serializing appends.
	c.net.AttachJournal(c.store)
	return c, nil
}

// registerCollectors mirrors state the hot paths do not instrument
// directly into the registry at scrape time: pool depth and lifetime
// dials, the per-peer visit load and node gauges (replaced wholesale
// so balance renames never leave stale series), and the core's
// never-reset replication counters (mirrored rather than incremented,
// so a scrape across crash/recover or Balance sees them monotonic).
func (c *Cluster) registerCollectors() {
	if c.met == nil {
		return
	}
	m := c.met
	m.Registry.OnScrape(func() {
		conns, dials := c.PoolStats()
		m.PoolConns.Set(float64(conns))
		m.PoolDials.Set(float64(dials))
		sums := c.PeerSummaries()
		loads := make(map[string]float64, len(sums))
		nodes := make(map[string]float64, len(sums))
		for _, s := range sums {
			loads[string(s.ID)] = float64(s.LoadPrev)
			nodes[string(s.ID)] = float64(s.Nodes)
		}
		m.Registry.ReplaceGauges(obs.SeriesVisitLoad,
			"Discovery visits received per peer in the last load unit.", "peer", loads)
		m.Registry.ReplaceGauges(obs.SeriesPeerNodes,
			"Tree nodes hosted per peer.", "peer", nodes)
		rs := c.ReplicationStats()
		m.ReplicaSnapshotMsgs.Set(float64(rs.SnapshotMsgs))
		m.ReplicaTransferMsgs.Set(float64(rs.TransferMsgs))
		m.ReplicaTransferNodes.Set(float64(rs.TransferredNodes))
	})
}

// NormalizeBind canonicalizes a bind address: empty preserves the
// historical loopback-ephemeral binding, and a bare host gets an
// ephemeral port.
func NormalizeBind(bind string) string {
	if bind == "" {
		return "127.0.0.1:0"
	}
	if _, _, err := net.SplitHostPort(bind); err != nil {
		return net.JoinHostPort(bind, "0")
	}
	return bind
}

// AdvertiseAddr rewrites a listener's bound address into the form
// other processes should dial: an explicit advertise host wins, an
// unspecified bind host (empty, 0.0.0.0, ::) falls back to loopback,
// and the result is JoinHostPort-canonical — the routing table and
// the connection pool key by this string, so one peer must always
// advertise byte-identically.
func AdvertiseAddr(listen, advertiseHost string) string {
	host, port, err := net.SplitHostPort(listen)
	if err != nil {
		return listen
	}
	if advertiseHost != "" {
		host = advertiseHost
	} else if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// startListenerLocked binds a fresh listener for peer id on the
// cluster's bind address (loopback-ephemeral by default) and starts
// serving it. Callers hold c.mu: the address table entry must become
// visible atomically with the peer's ring membership, or a concurrent
// discovery can resolve the peer as host and find no address.
func (c *Cluster) startListenerLocked(id keys.Key) error {
	ln, err := net.Listen("tcp", NormalizeBind(c.bind))
	if err != nil {
		return err
	}
	c.adoptListenerLocked(id, ln)
	return nil
}

// adoptListenerLocked wires an already-bound listener up as peer id's
// endpoint. Callers hold c.mu.
func (c *Cluster) adoptListenerLocked(id keys.Key, ln net.Listener) {
	ps := &peerServer{id: id, addr: AdvertiseAddr(ln.Addr().String(), c.advHost), ln: ln,
		conns: make(map[net.Conn]struct{})}
	c.addrs[id] = ps.addr
	c.servers = append(c.servers, ps)
	c.wg.Add(1)
	go c.serve(ps)
}

// AddPeer joins one peer: a protocol join plus a fresh TCP listener.
func (c *Cluster) AddPeer(capacity int) (keys.Key, error) {
	select {
	case <-c.quit:
		return "", ErrStopped
	default:
	}
	c.mu.Lock()
	var id keys.Key
	if c.place != nil {
		id = c.place.PlaceJoin(c.net, c.rng, capacity)
	} else {
		for {
			id = c.net.Alphabet.RandomKey(c.rng, 12, 12)
			if _, exists := c.net.Peer(id); !exists {
				break
			}
		}
	}
	if err := c.net.JoinPeer(id, capacity, c.rng); err != nil {
		c.mu.Unlock()
		return "", err
	}
	err := c.startListenerLocked(id)
	c.mu.Unlock()
	if err != nil {
		return "", err
	}
	c.met.TopologyEvent("join")
	return id, nil
}

// JoinRemotePeer performs the protocol join for a peer whose listener
// lives in another process: the ring id is drawn exactly as AddPeer
// draws it, but addr — the joining daemon's advertised listener —
// enters the routing table instead of a locally bound one. Every
// relay, replica frame and stream addressed to the peer then crosses
// the process boundary transparently.
func (c *Cluster) JoinRemotePeer(capacity int, addr string) (keys.Key, error) {
	select {
	case <-c.quit:
		return "", ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var id keys.Key
	if c.place != nil {
		id = c.place.PlaceJoin(c.net, c.rng, capacity)
	} else {
		for {
			id = c.net.Alphabet.RandomKey(c.rng, 12, 12)
			if _, exists := c.net.Peer(id); !exists {
				break
			}
		}
	}
	if err := c.net.JoinPeer(id, capacity, c.rng); err != nil {
		return "", err
	}
	c.addrs[id] = addr
	c.met.TopologyEvent("join")
	return id, nil
}

// AddRemotePeerWithID mirrors a join another process already
// serialized: the assigned id and advertised address are given, only
// the deterministic tree-side join runs locally. The daemon's APPLY
// replication uses this to keep member mirrors convergent.
func (c *Cluster) AddRemotePeerWithID(id keys.Key, capacity int, addr string) error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.net.JoinPeer(id, capacity, c.rng); err != nil {
		return err
	}
	c.addrs[id] = addr
	c.met.TopologyEvent("join")
	return nil
}

// InstallMirror populates an empty cluster (Options.AllowEmpty) with
// a full overlay mirror: the peers and nodes of a state snapshot the
// steward captured, the advertised address of every remote member,
// and this process's own peer, which adopts the pre-bound listener ln
// (bound before the join so the JOIN frame could advertise it). The
// snapshot was captured under the steward's apply lock, so no journal
// tail is needed: the mirror is consistent as of the handshake's
// sequence number.
func (c *Cluster) InstallMirror(peers []persist.PeerState, nodes []persist.NodeState,
	members map[keys.Key]string, self keys.Key, ln net.Listener) error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &persist.LoadedState{Snapshot: &persist.Snapshot{Peers: peers, Nodes: nodes}}
	if err := c.net.RestoreFrom(st, c.rng); err != nil {
		return err
	}
	if _, ok := c.net.Peer(self); !ok {
		return fmt.Errorf("transport: mirror state lacks own peer %q", self)
	}
	for id, addr := range members {
		if id != self {
			c.addrs[id] = addr
		}
	}
	c.adoptListenerLocked(self, ln)
	return nil
}

// ResetToMirror replaces a running daemon cluster's overlay state
// wholesale with a fresh mirror: a member too far behind the new
// steward to reconcile by replay, or a deposed steward rejoining
// under a fresh ring id, installs the snapshot exactly like a fresh
// HELLO — but keeps its already-bound listener, which is re-keyed to
// self. Requires the single-local-listener shape of the daemon
// deployment.
func (c *Cluster) ResetToMirror(peers []persist.PeerState, nodes []persist.NodeState,
	members map[keys.Key]string, self keys.Key) error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.servers) != 1 {
		return fmt.Errorf("transport: reset needs exactly one local listener, have %d", len(c.servers))
	}
	fresh := core.NewNetwork(c.net.Alphabet, c.net.Placement)
	fresh.Obs = c.met
	fresh.Tracer = c.rec
	st := &persist.LoadedState{Snapshot: &persist.Snapshot{Peers: peers, Nodes: nodes}}
	if err := fresh.RestoreFrom(st, c.rng); err != nil {
		return err
	}
	if _, ok := fresh.Peer(self); !ok {
		return fmt.Errorf("transport: mirror state lacks own peer %q", self)
	}
	c.net = fresh
	c.net.AttachJournal(c.store)
	ps := c.servers[0]
	c.addrs = make(map[keys.Key]string, len(members)+1)
	for id, addr := range members {
		if id != self {
			c.addrs[id] = addr
		}
	}
	ps.id = self
	c.addrs[self] = ps.addr
	return nil
}

// ReplicateLocal runs one replication tick wholly in-process: plan,
// install, compact, and on a durable cluster the fsynced snapshot
// rotation — the core path engine/local uses. The daemon deployment
// calls this on every process: each holds a full mirror, so shipping
// REPLICA frames to peers that already have identical state would be
// pure overhead.
func (c *Cluster) ReplicateLocal() (int, error) {
	select {
	case <-c.quit:
		return 0, ErrStopped
	default:
	}
	c.mu.Lock()
	n := c.net.Replicate()
	var pending *persist.PendingSnapshot
	var peers []persist.PeerState
	var cat *core.CatalogueCapture
	var stall time.Duration
	if c.store != nil {
		start := time.Now()
		peers, cat = c.net.CaptureSnapshot()
		var err error
		if pending, err = c.store.BeginSnapshot(); err != nil {
			c.mu.Unlock()
			return n, err
		}
		stall = time.Since(start)
	}
	c.mu.Unlock()
	if pending != nil {
		if _, err := pending.Commit(peers, cat); err != nil {
			return n, err
		}
		c.met.MarkSnapshot(stall, pending.Bytes(), cat.Len())
	}
	c.met.MarkReplicated()
	return n, nil
}

// PersistStateView captures the persistable overlay state — the ring
// and the full catalogue — under the read lock. The steward answers
// JOIN with this as the joiner's initial mirror.
func (c *Cluster) PersistStateView() ([]persist.PeerState, []persist.NodeState) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.PersistState()
}

// ControlRoundTrip sends one control frame (JOIN, LEAVE, APPLY,
// STATUS, ADMIN) on the pooled connection to addr and returns the
// reply frame. The persistent connection doubles as the peering
// probe's re-dial path: a broken link evicts from the pool and the
// next round-trip dials fresh.
func (c *Cluster) ControlRoundTrip(ctx context.Context, addr string, typ byte, payload []byte) (byte, []byte, error) {
	select {
	case <-c.quit:
		return 0, nil, ErrStopped
	default:
	}
	act, err := c.faults.onSend(typ, addr)
	if err != nil {
		return 0, nil, err // injected partition or drop
	}
	if act.delay > 0 {
		select {
		case <-time.After(act.delay):
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		case <-c.quit:
			return 0, nil, ErrStopped
		}
	}
	pc, err := c.pool.get(ctx, addr)
	if err != nil {
		return 0, nil, err
	}
	msg, err := c.pool.rawRoundTrip(ctx, pc, func(id uint64) error {
		if err := pc.fc.writeRaw(typ, id, payload); err != nil {
			return err
		}
		if act.dup {
			// Duplicate delivery: the receiver handles the frame twice;
			// the demux keeps the first reply for this id and drops the
			// second.
			return pc.fc.writeRaw(typ, id, payload)
		}
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	return msg.typ, msg.payload, nil
}

// DropEndpointAddr evicts the pooled connection to addr (without
// touching any local listener). The daemon layer uses it when a
// remote member departs or is declared crashed, so stale relays fail
// fast and re-resolve.
func (c *Cluster) DropEndpointAddr(addr string) {
	c.pool.evict(addr)
}

// RemovePeer removes a peer gracefully: its tree nodes hand off, its
// listener closes, and later traffic re-resolves to the new hosts
// (the reconnect cascade is driven by the per-hop HostOf lookups).
func (c *Cluster) RemovePeer(id keys.Key) error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	if err := c.net.LeavePeer(id); err != nil {
		c.mu.Unlock()
		return err
	}
	ps := c.dropServerLocked(id)
	c.mu.Unlock()
	c.dropEndpoint(ps)
	c.met.TopologyEvent("leave")
	return nil
}

// FailPeer crashes a peer: node states vanish without transfer and
// the listener closes. The tree stays degraded until Recover runs.
func (c *Cluster) FailPeer(id keys.Key) error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	if err := c.net.FailPeer(id); err != nil {
		c.mu.Unlock()
		return err
	}
	ps := c.dropServerLocked(id)
	c.mu.Unlock()
	c.dropEndpoint(ps)
	c.met.TopologyEvent("crash")
	return nil
}

// dropServerLocked removes the listener bookkeeping for id and
// returns its server for closing. Callers hold c.mu.
func (c *Cluster) dropServerLocked(id keys.Key) *peerServer {
	delete(c.addrs, id)
	for i, ps := range c.servers {
		if ps.id == id {
			c.servers = append(c.servers[:i], c.servers[i+1:]...)
			return ps
		}
	}
	return nil
}

// dropEndpoint tears a departed peer's endpoint down: listener,
// accepted server connections, and the pooled client connection.
// Relays holding the stale address fail fast and re-resolve through
// the redirect/retry bounds instead of waiting on a dead socket.
func (c *Cluster) dropEndpoint(ps *peerServer) {
	if ps == nil {
		return
	}
	ps.close()
	c.pool.evict(ps.addr)
}

// Recover restores crashed node state from the successor replicas and
// rebuilds the canonical tree structure.
func (c *Cluster) Recover() (restored int, lost []keys.Key, err error) {
	select {
	case <-c.quit:
		return 0, nil, ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	restored, lost = c.net.Recover()
	c.met.TopologyEvent("recover")
	return restored, lost, nil
}

// Replicate snapshots every tree node to its host's ring successor.
// Each successor batch travels the real wire path: a REPLICA frame on
// the pooled connection to the target peer's listener, installed
// server-side under the topology write lock and acknowledged with a
// RESPONSE frame. A batch whose target cannot be reached (departed
// peer, racing listener close) falls back to a direct install, which
// re-routes per entry. On a durable cluster the tick finishes by
// writing the fsynced on-disk snapshot.
func (c *Cluster) Replicate() (int, error) {
	select {
	case <-c.quit:
		return 0, ErrStopped
	default:
	}
	c.mu.Lock()
	plan := c.net.ReplicaPlan()
	addrs := make([]string, len(plan))
	for i, b := range plan {
		addrs[i] = c.addrs[b.To]
	}
	c.mu.Unlock()
	ctx := context.Background()
	tick := c.rec.StartRoot("replicate", "")
	total := 0
	for i, b := range plan {
		n, err := c.shipReplicas(ctx, tick.Context(), addrs[i], b)
		if err != nil {
			// Unreachable target: install directly; AcceptReplicas
			// re-routes entries whose placement changed meanwhile.
			// Delivery is at-least-once — if the connection died after
			// the server installed the batch but before its ack, the
			// retry re-installs idempotently and the snapshot counters
			// count the batch twice (only on ticks with connection
			// failures).
			c.mu.Lock()
			n = c.net.AcceptReplicas(b.From, b.To, b.Infos)
			c.mu.Unlock()
		}
		total += n
	}
	tick.SetAttr("batches", strconv.Itoa(len(plan)))
	tick.SetAttr("snapshots", strconv.Itoa(total))
	tick.End()
	c.met.MarkReplicated()
	c.mu.Lock()
	c.net.CompactReplicas()
	var pending *persist.PendingSnapshot
	var peers []persist.PeerState
	var cat *core.CatalogueCapture
	var stall time.Duration
	if c.store != nil {
		// Capture and journal rotation under c.mu, atomically (see
		// the live cluster's Replicate); encode + fsync off-lock.
		start := time.Now()
		peers, cat = c.net.CaptureSnapshot()
		var err error
		if pending, err = c.store.BeginSnapshot(); err != nil {
			c.mu.Unlock()
			return total, err
		}
		stall = time.Since(start)
	}
	c.mu.Unlock()
	if pending != nil {
		if _, err := pending.Commit(peers, cat); err != nil {
			return total, err
		}
		c.met.MarkSnapshot(stall, pending.Bytes(), cat.Len())
	}
	return total, nil
}

// shipReplicas sends one successor batch as a REPLICA frame over the
// pooled connection to addr and waits for the acknowledging RESPONSE
// (whose Logical field carries the installed count).
func (c *Cluster) shipReplicas(ctx context.Context, tc trace.Context, addr string, b core.ReplicaBatch) (int, error) {
	if addr == "" {
		return 0, fmt.Errorf("transport: no address for replica target %q", b.To)
	}
	pc, err := c.pool.get(ctx, addr)
	if err != nil {
		return 0, err
	}
	span := c.rec.Start(tc, "replica", string(b.To))
	span.SetAttr("snapshots", strconv.Itoa(len(b.Infos)))
	resp, err := c.pool.replicaRoundTrip(ctx, pc, span.Context(), &b)
	span.End()
	if err != nil {
		return 0, err
	}
	if resp.Err != "" {
		return 0, errors.New(resp.Err)
	}
	return resp.Logical, nil
}

// ResetUnit ends the current load-accounting time unit.
func (c *Cluster) ResetUnit() error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.net.ResetUnit()
	return nil
}

// Balance runs one round of the named load-balancing strategy, then
// rewires the listener bookkeeping to the renamed peer ids so relays
// keep resolving.
func (c *Cluster) Balance(strategy string) (int, error) {
	strat, err := lb.ByName(strategy)
	if err != nil {
		return 0, err
	}
	select {
	case <-c.quit:
		return 0, ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	moves, rerr := lb.RunRound(c.net, strat)
	c.rewireServersLocked()
	c.met.TopologyEvent("balance")
	return moves, rerr
}

// rewireServersLocked re-keys the address table and server ids to the
// current peers after balancing renames. Which listener serves which
// id is immaterial — all state lives in the shared network — so
// orphaned servers pair with unclaimed ids in sorted order. Callers
// hold c.mu.
func (c *Cluster) rewireServersLocked() {
	current := make(map[keys.Key]bool, c.net.NumPeers())
	for _, id := range c.net.PeerIDs() {
		current[id] = true
	}
	claimed := make(map[keys.Key]bool, len(c.servers))
	var orphans []*peerServer
	for _, ps := range c.servers {
		if current[ps.id] {
			claimed[ps.id] = true
		} else {
			orphans = append(orphans, ps)
		}
	}
	if len(orphans) == 0 {
		return
	}
	var free []keys.Key
	for id := range current {
		if !claimed[id] {
			free = append(free, id)
		}
	}
	keys.SortKeys(free)
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].id < orphans[j].id })
	for i, ps := range orphans {
		if i >= len(free) {
			break
		}
		delete(c.addrs, ps.id)
		ps.id = free[i]
		c.addrs[ps.id] = ps.addr
	}
}

// PeerSummaries returns one summary per peer in ring order.
func (c *Cluster) PeerSummaries() []core.PeerSummary {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.PeerSummaries()
}

// ReplicationStats returns the replication traffic counters.
func (c *Cluster) ReplicationStats() core.ReplicationCounters {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Replication
}

// serve accepts and handles connections for one peer. Connections
// are persistent: each carries many multiplexed requests over its
// lifetime and closes only when a side goes away.
func (c *Cluster) serve(ps *peerServer) {
	defer c.wg.Done()
	for {
		conn, err := ps.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !ps.track(conn) {
			_ = conn.Close() // peer departed while accepting
			continue
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			defer ps.untrack(conn)
			c.handleConn(ps, conn)
		}()
	}
}

// serverConn is the per-connection server state: the framed socket,
// the table of in-flight requests a CANCEL frame can abort, and the
// per-stream credit channels STREAM_ACK frames feed.
type serverConn struct {
	fc     *frameConn
	amu    sync.Mutex
	active map[uint64]context.CancelFunc
	credit map[uint64]chan struct{}
}

// ackStream feeds one batch credit to the streaming query with the
// given id, if it is still active.
func (sc *serverConn) ackStream(id uint64) {
	sc.amu.Lock()
	ch := sc.credit[id]
	sc.amu.Unlock()
	if ch != nil {
		select {
		case ch <- struct{}{}:
		default: // credit channel full: the walker is far behind anyway
		}
	}
}

// serverReq is one decoded REQUEST frame handed to a worker.
type serverReq struct {
	id     uint64
	self   keys.Key
	req    request
	tc     trace.Context // wire parent from the frame header extension
	ctx    context.Context
	cancel context.CancelFunc
}

// handleConn serves one persistent connection: REQUEST frames start a
// routing step each (concurrently — many relays share the socket),
// RESPONSE frames carry the results back under the request's id, and
// a CANCEL frame aborts the matching in-flight step. Closing the
// connection cancels everything still active, so a crashed client
// still tears its relay chains down hop by hop.
//
// Requests are handed to a persistent per-connection worker whose
// warm stack absorbs the routing recursion (a fresh goroutine per
// request re-pays stack growth on every hop); when the worker is busy
// with an earlier request, a transient goroutine takes the overflow
// so multiplexed requests never queue behind each other.
func (c *Cluster) handleConn(ps *peerServer, conn net.Conn) {
	sc := &serverConn{fc: newFrameConn(conn),
		active: make(map[uint64]context.CancelFunc),
		credit: make(map[uint64]chan struct{})}
	sc.fc.met = c.met
	work := make(chan serverReq)
	defer close(work)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for item := range work {
			c.serveReq(sc, item)
		}
	}()
	defer func() {
		sc.amu.Lock()
		for _, cancel := range sc.active {
			cancel()
		}
		sc.amu.Unlock()
	}()
	for {
		typ, id, tc, payload, err := sc.fc.readFrame()
		if err != nil {
			return // connection closed (client gone, peer dropped, Stop)
		}
		switch typ {
		case frameRequest:
			var req request
			if err := decodeRequest(payload, &req); err != nil {
				return // protocol violation: drop the connection
			}
			ctx, cancel := context.WithCancel(context.Background())
			sc.amu.Lock()
			sc.active[id] = cancel
			sc.amu.Unlock()
			c.mu.RLock()
			self := ps.id // balancing renames write ps.id under the write lock
			c.mu.RUnlock()
			item := serverReq{id: id, self: self, req: req, tc: tc, ctx: ctx, cancel: cancel}
			select {
			case work <- item: // idle worker takes it
			default: // worker busy: overflow goroutine keeps the stream moving
				c.wg.Add(1)
				go func() {
					defer c.wg.Done()
					c.serveReq(sc, item)
				}()
			}
		case frameQuery:
			var q queryReq
			if err := decodeQuery(payload, &q); err != nil {
				return // protocol violation: drop the connection
			}
			ctx, cancel := context.WithCancel(context.Background())
			sc.amu.Lock()
			sc.active[id] = cancel
			sc.credit[id] = make(chan struct{}, queryWindow)
			sc.amu.Unlock()
			// Streams are long-lived relative to routing steps: each
			// gets its own goroutine instead of the shared worker, so
			// a slow stream never queues discovery steps behind it.
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.serveQuery(sc, id, q, tc, ctx, cancel)
			}()
		case frameQRoute:
			var rq qroute
			if err := decodeQRoute(payload, &rq); err != nil {
				return // protocol violation: drop the connection
			}
			ctx, cancel := context.WithCancel(context.Background())
			sc.amu.Lock()
			sc.active[id] = cancel
			sc.amu.Unlock()
			c.mu.RLock()
			self := ps.id
			c.mu.RUnlock()
			// Route steps are one-per-query (not one-per-hop like
			// discovery steps), so a goroutine each is fine.
			c.wg.Add(1)
			go func(id uint64, rq qroute, tc trace.Context) {
				defer c.wg.Done()
				span := c.rec.Start(tc, obs.PhaseQRoute, string(self))
				span.SetAttr("anchor", string(rq.Anchor))
				resp := c.routeStep(ctx, span.Context(), self, rq)
				span.End()
				sc.amu.Lock()
				delete(sc.active, id)
				sc.amu.Unlock()
				cancel()
				_ = sc.fc.writeQRouteResp(id, &resp)
			}(id, rq, tc)
		case frameJoin, frameLeave, frameApply, frameStatus, frameAdmin,
			frameElect, frameEpochOpen, frameResync, frameFetch:
			// Control plane: hand the frame to the daemon layer. The
			// payload aliases the read buffer, so the handler gets a
			// copy; a goroutine per frame keeps the read loop moving
			// (handlers serialize on the daemon's own mutex and may
			// take this cluster's write lock).
			h := c.control
			cp := append([]byte(nil), payload...)
			c.wg.Add(1)
			go func(typ byte, id uint64, cp []byte) {
				defer c.wg.Done()
				if h == nil {
					_ = sc.fc.writeResponse(id, &response{Err: "transport: no control handler"})
					return
				}
				rtyp, rp := h(typ, cp)
				_ = sc.fc.writeRaw(rtyp, id, rp)
			}(typ, id, cp)
		case frameReplica:
			var b core.ReplicaBatch
			if err := decodeReplicaBatch(payload, &b); err != nil {
				return // protocol violation: drop the connection
			}
			// Replica installs take the topology write lock; a
			// goroutine per batch keeps the read loop (and the
			// discovery streams multiplexed on this connection) moving.
			c.wg.Add(1)
			go func(id uint64, b core.ReplicaBatch, tc trace.Context) {
				defer c.wg.Done()
				span := c.rec.Start(tc, "replica-install", string(b.To))
				c.mu.Lock()
				n := c.net.AcceptReplicas(b.From, b.To, b.Infos)
				c.mu.Unlock()
				span.SetAttr("installed", strconv.Itoa(n))
				span.End()
				_ = sc.fc.writeResponse(id, &response{Logical: n})
			}(id, b, tc)
		case frameStreamAck:
			sc.ackStream(id)
		case frameCancel:
			sc.amu.Lock()
			if cancel, ok := sc.active[id]; ok {
				cancel()
			}
			sc.amu.Unlock()
		}
	}
}

// queryBatchKeys bounds the matches per STREAM frame, and
// queryBatchVisits the node visits per read-lock hold of the
// server-side traversal. queryWindow is the credit window: the
// traversal pauses after that many unacknowledged STREAM frames, so
// a consumer that stops pulling halts the walk (flow control the
// kernel's socket buffers cannot provide).
const (
	queryBatchKeys   = 32
	queryBatchVisits = 256
	queryWindow      = 16
)

// serveQuery runs one streaming subtree query server-side: the walker
// advances in bounded read-locked batches, every batch of matches
// leaves as a STREAM frame, and the traversal totals close the stream
// as a STREAM_END frame. The registered cancel (CANCEL frame from the
// consumer, or connection teardown) aborts the traversal at the next
// batch boundary — the limit pushdown and early-exit contract on the
// wire.
func (c *Cluster) serveQuery(sc *serverConn, id uint64, q queryReq,
	tc trace.Context, ctx context.Context, cancel context.CancelFunc) {

	sc.amu.Lock()
	creditCh := sc.credit[id]
	sc.amu.Unlock()
	defer func() {
		sc.amu.Lock()
		delete(sc.active, id)
		delete(sc.credit, id)
		sc.amu.Unlock()
		cancel()
	}()
	w := core.NewQueryWalker(c.net, core.QuerySpec{
		Range:  q.Range,
		Prefix: q.Prefix,
		Lo:     q.Lo,
		Hi:     q.Hi,
		Limit:  q.Limit,
	})
	// The walker's phase spans parent under the wire context, so the
	// server-side walk joins the client's trace; FinishTrace flushes
	// the final phase even when the stream aborts early.
	w.TraceUnder(tc)
	defer w.FinishTrace()
	if !w.Empty() {
		c.mu.RLock()
		if q.Walk {
			// The climb/descend phases ran as hop-by-hop QROUTE
			// relays; resume directly in the subtree walk at the
			// covering node, folding the route's counters in.
			w.ResumeWalk(q.Entry, core.QueryResult{
				LogicalHops:  q.Logical,
				PhysicalHops: q.Physical,
				NodesVisited: q.Visited,
			})
		} else {
			w.Start(q.Entry)
		}
		c.mu.RUnlock()
	}
	var errStr string
	visited, credits := 0, queryWindow
	for !w.Empty() {
		if credits == 0 {
			// Window exhausted: wait for the consumer to pull a batch
			// (or give up) before touching any more of the tree.
			select {
			case <-creditCh:
				credits++
			case <-ctx.Done():
			case <-c.quit:
			}
		}
		// Fold in any further credits that arrived meanwhile.
		for credits < queryWindow {
			select {
			case <-creditCh:
				credits++
				continue
			default:
			}
			break
		}
		if err := ctx.Err(); err != nil {
			errStr = err.Error()
			break
		}
		select {
		case <-c.quit:
			errStr = ErrStopped.Error()
		default:
		}
		if errStr != "" {
			break
		}
		if credits == 0 {
			continue
		}
		c.mu.RLock()
		batch, more := w.StepN(nil, queryBatchKeys, queryBatchVisits)
		c.mu.RUnlock()
		st := w.Stats()
		c.queryVisits.Add(int64(st.NodesVisited - visited))
		visited = st.NodesVisited
		if len(batch) > 0 {
			progress := streamEnd{Logical: st.LogicalHops,
				Physical: st.PhysicalHops, Visited: st.NodesVisited}
			if err := sc.fc.writeStream(id, batch, &progress); err != nil {
				return // connection gone: nothing left to tell
			}
			credits--
		}
		if !more {
			break
		}
	}
	st := w.Stats()
	_ = sc.fc.writeStreamEnd(id, &streamEnd{
		Logical:  st.LogicalHops,
		Physical: st.PhysicalHops,
		Visited:  st.NodesVisited,
		Err:      errStr,
	})
}

// QueryVisits reports the cumulative node visits of server-side
// streaming query traversals (test observable: it stops growing when
// a cancelled consumer halts the walk).
func (c *Cluster) QueryVisits() int64 { return c.queryVisits.Load() }

// serveReq runs one routing step and writes its RESPONSE frame. A
// result too large for one frame degrades to an in-band error so the
// requester fails cleanly instead of timing out on a silent drop.
func (c *Cluster) serveReq(sc *serverConn, item serverReq) {
	span := c.rec.Start(item.tc, obs.PhaseRelay, string(item.self))
	span.SetAttr("key", string(item.req.Key))
	resp := c.step(item.ctx, span.Context(), item.self, item.req)
	span.End()
	sc.amu.Lock()
	delete(sc.active, item.id)
	sc.amu.Unlock()
	item.cancel()
	if err := sc.fc.writeResponse(item.id, &resp); errors.Is(err, errFrameTooLarge) {
		resp = response{Err: errFrameTooLarge.Error(),
			Logical: resp.Logical, Physical: resp.Physical}
		_ = sc.fc.writeResponse(item.id, &resp)
	}
}

// step executes routing at the peer owning the current node, relaying
// over TCP when the walk leaves the peer.
func (c *Cluster) step(ctx context.Context, tc trace.Context, self keys.Key, req request) response {
	for {
		if err := ctx.Err(); err != nil {
			return response{Err: err.Error()}
		}
		c.mu.RLock()
		peer, ok := c.net.Peer(self)
		if !ok {
			c.mu.RUnlock()
			return response{Err: fmt.Sprintf("peer %q gone", self)}
		}
		node, ok := peer.Nodes[req.At]
		if !ok {
			// The node lives elsewhere (stale routing): relay to its
			// current host. A node lost to an unrecovered crash has
			// no host anywhere: bound the relays and report what the
			// walk has (not found).
			host, okh := c.net.HostOf(req.At)
			addr := c.addrs[host]
			c.mu.RUnlock()
			req.Redirects++
			if !okh || req.Redirects > maxRedirects {
				return response{Logical: req.Logical, Physical: req.Physical}
			}
			return c.relay(ctx, tc, addr, req)
		}
		node.RecordVisit()
		if c.met != nil {
			c.met.Visits.Inc()
		}
		if c.gate && !peer.TryProcess() {
			// Section 4's request model: the visit is received (load
			// recorded above) but a saturated peer ignores the
			// request.
			c.mu.RUnlock()
			if c.met != nil {
				c.met.Drops.Inc()
			}
			return response{Dropped: true,
				Logical: req.Logical, Physical: req.Physical}
		}
		var next keys.Key
		done, found := false, false
		var values []string
		if node.Key == req.Key {
			done = true
			if node.HasData() {
				found = true
				for v := range node.Data {
					values = append(values, v)
				}
				// Map iteration order is random: sort so wire
				// responses are deterministic, matching the
				// byte-identical cross-engine contract.
				sort.Strings(values)
			}
		} else {
			if req.GoingUp && keys.IsPrefix(node.Key, req.Key) {
				req.GoingUp = false
			}
			if req.GoingUp {
				if !node.HasFather {
					done = true
				} else {
					next = node.Father
				}
			} else {
				q, okc := node.BestChildFor(req.Key)
				if !okc || !keys.IsPrefix(q, req.Key) {
					done = true
				} else {
					next = q
				}
			}
		}
		if done {
			c.mu.RUnlock()
			return response{Found: found, Values: values,
				Logical: req.Logical, Physical: req.Physical}
		}
		host, _ := c.net.HostOf(next)
		addr := c.addrs[host]
		c.mu.RUnlock()
		req.At = next
		req.Logical++
		if host == self {
			continue // next node is local: no wire transfer
		}
		req.Physical++
		return c.relay(ctx, tc, addr, req)
	}
}

// relay forwards the request over the pooled connection to addr and
// returns the relayed response. Cancelling ctx sends a CANCEL frame
// (freeing the remote stream, keeping the shared connection) and
// returns the context error.
//
// A transport failure — dial refused, write or read on a broken
// socket — means the address was stale: the peer behind it departed,
// crashed, or a Balance round renamed the routing identities while
// the hop was resolving. The pool has already evicted the dead
// connection by then, so relay re-resolves the node's current host
// once and retries on a fresh dial (the routing step is an
// idempotent read, so the retry is safe even if the first attempt
// was partially processed).
func (c *Cluster) relay(ctx context.Context, tc trace.Context, addr string, req request) response {
	resp, err := c.relayOnce(ctx, tc, addr, req)
	if err == nil {
		return resp
	}
	if ctx.Err() != nil || errors.Is(err, ErrStopped) {
		return response{Err: err.Error()}
	}
	select {
	case <-c.quit:
		return response{Err: ErrStopped.Error()}
	default:
	}
	c.mu.RLock()
	host, ok := c.net.HostOf(req.At)
	retryAddr := c.addrs[host]
	c.mu.RUnlock()
	if !ok || retryAddr == "" {
		return response{Err: err.Error()}
	}
	resp, err = c.relayOnce(ctx, tc, retryAddr, req)
	if err != nil {
		return response{Err: err.Error()}
	}
	return resp
}

// relayOnce performs one round-trip on the shared connection to addr.
func (c *Cluster) relayOnce(ctx context.Context, tc trace.Context, addr string, req request) (response, error) {
	pc, err := c.pool.get(ctx, addr)
	if err != nil {
		return response{}, err
	}
	return c.pool.roundTrip(ctx, pc, tc, &req)
}

// routeStep resolves climb/descend transitions of a subtree query at
// the peer hosting the current node, relaying to the next hop's
// listener when the route leaves this peer — the same hop-by-hop
// dialogue discovery steps use, instead of walking tree state the
// addressed peer does not host. The transition logic and counting
// mirror core.QueryWalker exactly, so on a stable tree the streamed
// totals match a walker that ran every phase in one process.
func (c *Cluster) routeStep(ctx context.Context, tc trace.Context, self keys.Key, rq qroute) qrouteResp {
	fail := func(err string) qrouteResp {
		return qrouteResp{Err: err,
			Logical: rq.Logical, Physical: rq.Physical, Visited: rq.Visited}
	}
	ended := func() qrouteResp {
		return qrouteResp{Logical: rq.Logical, Physical: rq.Physical, Visited: rq.Visited}
	}
	for {
		if err := ctx.Err(); err != nil {
			return fail(err.Error())
		}
		c.mu.RLock()
		peer, ok := c.net.Peer(self)
		if !ok {
			c.mu.RUnlock()
			return fail(fmt.Sprintf("peer %q gone", self))
		}
		node, ok := peer.Nodes[rq.At]
		if !ok {
			// Stale routing: relay to the node's current host, bounded
			// like discovery redirects. A node lost to an unrecovered
			// crash ends the walk with what the route has, exactly as
			// the walker does at a vanished node.
			host, okh := c.net.HostOf(rq.At)
			addr := c.addrs[host]
			c.mu.RUnlock()
			rq.Redirects++
			if !okh || rq.Redirects > maxRedirects {
				return ended()
			}
			return c.routeRelay(ctx, tc, addr, rq)
		}
		if rq.Visited == 0 {
			rq.Visited = 1 // the entry node, counted as the walker's Start does
		}
		var next keys.Key
		if !rq.Descending {
			// Climb until the current node's subtree covers the
			// anchor (its label is a prefix of the anchor), or the root.
			if keys.IsPrefix(node.Key, rq.Anchor) || !node.HasFather {
				rq.Descending = true
				c.mu.RUnlock()
				continue
			}
			if !c.net.NodeHosted(node.Father) {
				c.mu.RUnlock()
				return ended()
			}
			next = node.Father
		} else {
			// Descend towards the anchor while a single child still
			// covers the whole query (narrowing the traversal root).
			q, okc := node.BestChildFor(rq.Anchor)
			if !okc || !keys.IsPrefix(q, rq.Anchor) || !c.net.NodeHosted(q) {
				anchored := qrouteResp{Found: true, Anchor: node.Key,
					Logical: rq.Logical, Physical: rq.Physical, Visited: rq.Visited}
				c.mu.RUnlock()
				return anchored
			}
			next = q
		}
		host, _ := c.net.HostOf(next)
		addr := c.addrs[host]
		c.mu.RUnlock()
		rq.At = next
		rq.Logical++
		rq.Visited++
		if host == self {
			continue // next node is local: no wire transfer
		}
		rq.Physical++
		return c.routeRelay(ctx, tc, addr, rq)
	}
}

// routeRelay forwards the route step over the pooled connection to
// addr, with the same single stale-address retry as relay.
func (c *Cluster) routeRelay(ctx context.Context, tc trace.Context, addr string, rq qroute) qrouteResp {
	resp, err := c.routeRelayOnce(ctx, tc, addr, rq)
	if err == nil {
		return resp
	}
	failed := qrouteResp{Err: err.Error(),
		Logical: rq.Logical, Physical: rq.Physical, Visited: rq.Visited}
	if ctx.Err() != nil || errors.Is(err, ErrStopped) {
		return failed
	}
	select {
	case <-c.quit:
		failed.Err = ErrStopped.Error()
		return failed
	default:
	}
	c.mu.RLock()
	host, ok := c.net.HostOf(rq.At)
	retryAddr := c.addrs[host]
	c.mu.RUnlock()
	if !ok || retryAddr == "" {
		return failed
	}
	resp, err = c.routeRelayOnce(ctx, tc, retryAddr, rq)
	if err != nil {
		failed.Err = err.Error()
		return failed
	}
	return resp
}

// routeRelayOnce performs one QROUTE round-trip on the shared
// connection to addr.
func (c *Cluster) routeRelayOnce(ctx context.Context, tc trace.Context, addr string, rq qroute) (qrouteResp, error) {
	pc, err := c.pool.get(ctx, addr)
	if err != nil {
		return qrouteResp{}, err
	}
	msg, err := c.pool.rawRoundTrip(ctx, pc, func(id uint64) error {
		return pc.fc.writeQRoute(id, tc, &rq)
	})
	if err != nil {
		return qrouteResp{}, err
	}
	if msg.typ != frameQRouteResp {
		return qrouteResp{}, fmt.Errorf("transport: unexpected reply frame %d to QROUTE", msg.typ)
	}
	var resp qrouteResp
	if err := decodeQRouteResp(msg.payload, &resp); err != nil {
		return qrouteResp{}, err
	}
	return resp, nil
}

// Register declares a service (topology mutation, serialized).
func (c *Cluster) Register(key keys.Key, value string) error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.InsertData(key, value, c.rng)
}

// RegisterBatch declares every entry under a single acquisition of
// the topology write lock, stopping at the first failure.
func (c *Cluster) RegisterBatch(entries []core.KV) error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.InsertBatch(entries, c.rng)
}

// Unregister removes a value from a key, reporting whether it was
// registered.
func (c *Cluster) Unregister(key keys.Key, value string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.RemoveData(key, value)
}

// Stopped reports whether the cluster has been stopped.
func (c *Cluster) Stopped() bool {
	select {
	case <-c.quit:
		return true
	default:
		return false
	}
}

// Discover routes a discovery over TCP, entering at a random node.
func (c *Cluster) Discover(key keys.Key) (Result, error) {
	return c.DiscoverContext(context.Background(), key)
}

// DiscoverContext is Discover under a caller context: cancelling ctx
// sends CANCEL frames down the in-flight relay chain hop by hop —
// freeing each stream while the pooled connections survive — and
// returns the context error.
func (c *Cluster) DiscoverContext(ctx context.Context, key keys.Key) (Result, error) {
	select {
	case <-c.quit:
		return Result{}, ErrStopped
	default:
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	c.mu.Lock()
	entry, ok := c.net.RandomNodeKey(c.rng)
	var addr string
	var host keys.Key
	if ok {
		host, _ = c.net.HostOf(entry)
		addr = c.addrs[host]
	}
	c.mu.Unlock()
	if !ok {
		return Result{Key: key}, nil
	}
	began := time.Now()
	root := c.rec.StartRoot(obs.PhaseDiscover, string(host))
	root.SetAttr("key", string(key))
	resp := c.relay(ctx, root.Context(), addr, request{Key: key, At: entry, GoingUp: true, Physical: 1})
	root.End()
	if c.met != nil {
		d := time.Since(began)
		c.met.DiscoverLatency.Observe(d.Seconds())
		c.met.RecordPhase(obs.PhaseRelay, resp.Physical, d)
	}
	if resp.Err != "" {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		select {
		case <-c.quit:
			return Result{}, ErrStopped
		default:
		}
		return Result{Key: key}, errors.New(resp.Err)
	}
	return Result{
		Key:          key,
		Found:        resp.Found,
		Values:       resp.Values,
		LogicalHops:  resp.Logical,
		PhysicalHops: resp.Physical,
		Dropped:      resp.Dropped,
	}, nil
}

// Complete resolves automatic completion of a partial search string.
// Subtree queries share the protocol state directly (as in
// internal/live); only unit discoveries travel the wire.
func (c *Cluster) Complete(prefix keys.Key) (core.QueryResult, error) {
	select {
	case <-c.quit:
		return core.QueryResult{}, ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.Complete(prefix, c.rng), nil
}

// RangeQuery resolves the lexicographic range query [lo, hi].
func (c *Cluster) RangeQuery(lo, hi keys.Key) (core.QueryResult, error) {
	select {
	case <-c.quit:
		return core.QueryResult{}, ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.RangeQuery(lo, hi, c.rng), nil
}

// WireStream is the client half of one streaming query: STREAM
// batches arrive multiplexed on the pooled connection and are pulled
// off in lexicographic order; STREAM_END closes the stream with the
// traversal totals. Closing early (or cancelling the query context)
// sends a CANCEL frame that frees the server-side traversal while the
// shared connection survives.
type WireStream struct {
	c   *Cluster
	pc  *poolConn
	id  uint64
	cs  *clientStream
	ctx context.Context

	cur      []string
	pos      int
	ended    bool // no more events will be consumed
	finished bool // STREAM_END received: the server is already done
	stats    core.QueryResult
	err      error

	span  trace.Handle // the query's root span (inactive untraced)
	met   *obs.Metrics // cleared once the end-to-end latency is observed
	began time.Time

	closeOnce sync.Once
}

// finish closes the query's root span and observes its end-to-end
// latency; idempotent across the stream's several end paths.
func (s *WireStream) finish() {
	s.span.End()
	if s.met != nil && !s.began.IsZero() {
		s.met.QueryLatency.Observe(time.Since(s.began).Seconds())
		s.met = nil
	}
}

// StreamQuery starts a streaming subtree query over the wire in two
// phases. The entry node is drawn from the same seeded stream the
// slice queries use; the climb/descend phases then relay hop by hop
// between listeners as QROUTE frames — each step resolved by the
// peer hosting the node, like discovery steps — until the covering
// node is found. The subtree walk opens as a STREAM query at that
// node's host, seeded with the route's counters, and batches stream
// back over the pooled connection.
func (c *Cluster) StreamQuery(ctx context.Context, spec core.QuerySpec) (*WireStream, error) {
	select {
	case <-c.quit:
		return nil, ErrStopped
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if spec.Range && spec.Hi < spec.Lo {
		// Void by construction: no entry draw, no wire traffic,
		// matching the slice path.
		return &WireStream{ended: true, finished: true}, nil
	}
	anchor := spec.Prefix
	if spec.Range {
		anchor = keys.GCP(spec.Lo, spec.Hi)
	}
	c.mu.Lock()
	entry, ok := c.net.RandomNodeKey(c.rng)
	var addr string
	var entryHost keys.Key
	if ok {
		entryHost, _ = c.net.HostOf(entry)
		addr = c.addrs[entryHost]
	}
	c.mu.Unlock()
	if !ok {
		return &WireStream{ended: true, finished: true}, nil
	}
	began := time.Now()
	root := c.rec.StartRoot("query", string(entryHost))
	root.SetAttr("anchor", string(anchor))
	rr := c.routeRelay(ctx, root.Context(), addr, qroute{Anchor: anchor, At: entry})
	if rr.Err != "" {
		root.End()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		select {
		case <-c.quit:
			return nil, ErrStopped
		default:
		}
		return nil, errors.New(rr.Err)
	}
	if c.met != nil {
		c.met.RecordPhase(obs.PhaseQRoute, rr.Physical, time.Since(began))
		// The route's node visits happened hop by hop on the serving
		// peers; the walk phase counts its own from the resumed
		// walker's baseline, so nothing is double counted.
		c.met.Visits.Add(float64(rr.Visited))
	}
	pre := core.QueryResult{LogicalHops: rr.Logical,
		PhysicalHops: rr.Physical, NodesVisited: rr.Visited}
	if !rr.Found {
		// The route hit a node lost to churn: the walk yields nothing,
		// with the route's counters as totals (walker behaviour).
		ws := &WireStream{ended: true, finished: true, stats: pre,
			span: root, met: c.met, began: began}
		ws.finish()
		return ws, nil
	}
	c.mu.RLock()
	host, okh := c.net.HostOf(rr.Anchor)
	addr = c.addrs[host]
	c.mu.RUnlock()
	if !okh || addr == "" {
		ws := &WireStream{ended: true, finished: true, stats: pre,
			span: root, met: c.met, began: began}
		ws.finish()
		return ws, nil
	}
	q := &queryReq{
		Range:    spec.Range,
		Prefix:   spec.Prefix,
		Lo:       spec.Lo,
		Hi:       spec.Hi,
		Limit:    spec.Limit,
		Entry:    rr.Anchor,
		Walk:     true,
		Logical:  rr.Logical,
		Physical: rr.Physical,
		Visited:  rr.Visited,
	}
	pc, id, cs, err := c.openWireQuery(ctx, root.Context(), addr, q)
	if err != nil {
		// The address was stale (departed peer, Balance rename):
		// re-resolve the anchor's current host once and retry on a
		// fresh dial, as relay does for discovery hops.
		if ctx.Err() != nil || errors.Is(err, ErrStopped) {
			root.End()
			return nil, err
		}
		c.mu.RLock()
		host, okh := c.net.HostOf(rr.Anchor)
		retryAddr := c.addrs[host]
		c.mu.RUnlock()
		if !okh || retryAddr == "" {
			root.End()
			return nil, err
		}
		if pc, id, cs, err = c.openWireQuery(ctx, root.Context(), retryAddr, q); err != nil {
			root.End()
			return nil, err
		}
	}
	return &WireStream{c: c, pc: pc, id: id, cs: cs, ctx: ctx, stats: pre,
		span: root, met: c.met, began: began}, nil
}

// openWireQuery registers a stream on the pooled connection to addr
// and puts its QUERY frame on the wire.
func (c *Cluster) openWireQuery(ctx context.Context, tc trace.Context, addr string, q *queryReq) (*poolConn, uint64, *clientStream, error) {
	pc, err := c.pool.get(ctx, addr)
	if err != nil {
		return nil, 0, nil, err
	}
	id, cs, err := c.pool.openStream(pc)
	if err != nil {
		return nil, 0, nil, err
	}
	if err := pc.fc.writeQuery(id, tc, q); err != nil {
		pc.forgetStream(id)
		if !errors.Is(err, errFrameTooLarge) {
			c.pool.fail(pc, err)
		}
		return nil, 0, nil, err
	}
	return pc, id, cs, nil
}

// Next returns the next matching key; ok == false means the stream is
// exhausted (see Err).
func (s *WireStream) Next() (keys.Key, bool) {
	for {
		if s.pos < len(s.cur) {
			k := s.cur[s.pos]
			s.pos++
			return keys.Key(k), true
		}
		if s.ended {
			return keys.Epsilon, false
		}
		select {
		case msg := <-s.cs.ch:
			switch {
			case msg.err != nil:
				s.err, s.ended = msg.err, true
				s.finish()
				return keys.Epsilon, false
			case msg.end:
				s.ended, s.finished = true, true
				s.stats = core.QueryResult{
					LogicalHops:  msg.info.Logical,
					PhysicalHops: msg.info.Physical,
					NodesVisited: msg.info.Visited,
				}
				if msg.info.Err != "" {
					s.err = errors.New(msg.info.Err)
				}
				s.finish()
				return keys.Epsilon, false
			default:
				s.cur, s.pos = msg.batch, 0
				s.stats = core.QueryResult{
					LogicalHops:  msg.info.Logical,
					PhysicalHops: msg.info.Physical,
					NodesVisited: msg.info.Visited,
				}
				// Feed the server's credit window: one ACK per batch
				// pulled keeps the traversal flowing; a consumer that
				// stops pulling starves it into pausing.
				_ = s.pc.fc.writeStreamAck(s.id)
			}
		case <-s.ctx.Done():
			s.err, s.ended = s.ctx.Err(), true
			s.finish()
			return keys.Epsilon, false
		case <-s.c.quit:
			s.err, s.ended = ErrStopped, true
			s.finish()
			return keys.Epsilon, false
		}
	}
}

// Err reports the error that terminated the stream early, nil after a
// normal end of stream.
func (s *WireStream) Err() error { return s.err }

// Stats returns the traversal counters as of the last batch pulled
// (every STREAM frame carries the server's running totals);
// STREAM_END replaces them with the final totals.
func (s *WireStream) Stats() core.QueryResult { return s.stats }

// Close releases the stream. If the server is still traversing, the
// demux entry is dropped and a CANCEL frame frees the server-side
// walk — the pooled connection itself stays open and keeps serving
// the other multiplexed requests. After Close, Next reports end of
// stream even if batches were still buffered.
func (s *WireStream) Close() error {
	s.closeOnce.Do(func() {
		if s.cs != nil {
			if !s.finished {
				s.pc.forgetStream(s.id)
				_ = s.pc.fc.writeCancel(s.id)
			}
			close(s.cs.gone)
		}
		s.ended = true
		s.cur, s.pos = nil, 0
		s.finish()
	})
	return nil
}

// Snapshot returns a consistent copy of the whole tree.
func (c *Cluster) Snapshot() *trie.Tree {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.TreeSnapshot()
}

// NumPeers returns the peer count.
func (c *Cluster) NumPeers() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.NumPeers()
}

// NumNodes returns the tree size.
func (c *Cluster) NumNodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.NumNodes()
}

// Addrs returns the listen addresses by peer id.
func (c *Cluster) Addrs() map[keys.Key]string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[keys.Key]string, len(c.addrs))
	for k, v := range c.addrs {
		out[k] = v
	}
	return out
}

// Validate cross-checks overlay invariants.
func (c *Cluster) Validate() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Validate()
}

// PoolStats reports the client connection pool's live connection and
// lifetime dial counts — the amortization the persistent wire
// protocol exists for (and the leak check: zero connections after
// Stop).
func (c *Cluster) PoolStats() (conns int, dials int64) {
	return c.pool.size(), c.pool.dials.Load()
}

// Stop closes every listener, server connection and pooled client
// connection, then waits for handlers and demux loops to finish; the
// pool drains to zero.
func (c *Cluster) Stop() {
	c.once.Do(func() {
		close(c.quit)
		c.mu.Lock()
		servers := append([]*peerServer(nil), c.servers...)
		c.mu.Unlock()
		for _, ps := range servers {
			ps.close()
		}
		c.pool.closeAll()
	})
	c.wg.Wait()
}
