// Package transport runs the DLPT discovery path over real TCP
// connections: every peer owns a loopback listener, and discovery
// requests hop peer-to-peer as gob-encoded messages, each hop relayed
// as a nested request/response along the tree route. It demonstrates
// the overlay as a deployable network service (the Grid'5000
// prototype the paper leaves as future work) and exercises the
// protocol under real sockets in the tests.
//
// Topology and tree state are shared through the embedded protocol
// core exactly as in internal/live; what travels on the wire is the
// routing dialogue: request in, forwarded hop, response out.
package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"dlpt/internal/core"
	"dlpt/internal/keys"
	"dlpt/internal/lb"
	"dlpt/internal/trie"
)

// request is one on-the-wire discovery step.
type request struct {
	Key     keys.Key
	At      keys.Key
	GoingUp bool
	Logical int
	// Physical counts TCP hops (every wire transfer is physical).
	Physical int
	// Redirects counts relays for a node the addressed peer does not
	// host (stale routing after churn or balancing). A node lost to
	// an unrecovered crash would relay in a cycle forever, so past
	// maxRedirects the walk reports not found.
	Redirects int
}

// maxRedirects bounds stale-routing relays per request.
const maxRedirects = 8

// response is the on-the-wire result.
type response struct {
	Found    bool
	Values   []string
	Logical  int
	Physical int
	Err      string
}

// Result is the outcome of a TCP-routed discovery.
type Result struct {
	Key          keys.Key
	Found        bool
	Values       []string
	LogicalHops  int
	PhysicalHops int
}

// peerServer is one peer's TCP endpoint.
type peerServer struct {
	id   keys.Key
	addr string
	ln   net.Listener
}

// Cluster is an overlay whose peers communicate over TCP.
type Cluster struct {
	mu    sync.RWMutex // guards net + addrs
	net   *core.Network
	rng   *rand.Rand
	addrs map[keys.Key]string

	servers []*peerServer
	wg      sync.WaitGroup
	quit    chan struct{}
	once    sync.Once
}

// ErrStopped is returned by operations on a stopped cluster.
var ErrStopped = errors.New("transport: cluster stopped")

// Start launches a TCP-backed overlay with one listener per capacity
// entry, all bound to 127.0.0.1 ephemeral ports.
func Start(alpha *keys.Alphabet, capacities []int, seed int64) (*Cluster, error) {
	if len(capacities) == 0 {
		return nil, fmt.Errorf("transport: no peers")
	}
	c := &Cluster{
		net:   core.NewNetwork(alpha, core.PlacementLexicographic),
		rng:   rand.New(rand.NewSource(seed)),
		addrs: make(map[keys.Key]string),
		quit:  make(chan struct{}),
	}
	for _, capacity := range capacities {
		if _, err := c.AddPeer(capacity); err != nil {
			c.Stop()
			return nil, err
		}
	}
	return c, nil
}

// AddPeer joins one peer: a protocol join plus a fresh TCP listener.
func (c *Cluster) AddPeer(capacity int) (keys.Key, error) {
	select {
	case <-c.quit:
		return "", ErrStopped
	default:
	}
	c.mu.Lock()
	var id keys.Key
	for {
		id = c.net.Alphabet.RandomKey(c.rng, 12, 12)
		if _, exists := c.net.Peer(id); !exists {
			break
		}
	}
	if err := c.net.JoinPeer(id, capacity, c.rng); err != nil {
		c.mu.Unlock()
		return "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.mu.Unlock()
		return "", err
	}
	ps := &peerServer{id: id, addr: ln.Addr().String(), ln: ln}
	c.addrs[id] = ps.addr
	c.servers = append(c.servers, ps)
	c.mu.Unlock()

	c.wg.Add(1)
	go c.serve(ps)
	return id, nil
}

// RemovePeer removes a peer gracefully: its tree nodes hand off, its
// listener closes, and later traffic re-resolves to the new hosts
// (the reconnect cascade is driven by the per-hop HostOf lookups).
func (c *Cluster) RemovePeer(id keys.Key) error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	if err := c.net.LeavePeer(id); err != nil {
		c.mu.Unlock()
		return err
	}
	ln := c.dropServerLocked(id)
	c.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	return nil
}

// FailPeer crashes a peer: node states vanish without transfer and
// the listener closes. The tree stays degraded until Recover runs.
func (c *Cluster) FailPeer(id keys.Key) error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	if err := c.net.FailPeer(id); err != nil {
		c.mu.Unlock()
		return err
	}
	ln := c.dropServerLocked(id)
	c.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	return nil
}

// dropServerLocked removes the listener bookkeeping for id and
// returns its listener for closing. Callers hold c.mu.
func (c *Cluster) dropServerLocked(id keys.Key) net.Listener {
	delete(c.addrs, id)
	for i, ps := range c.servers {
		if ps.id == id {
			c.servers = append(c.servers[:i], c.servers[i+1:]...)
			return ps.ln
		}
	}
	return nil
}

// Recover restores crashed node state from the replica store and
// rebuilds the canonical tree structure.
func (c *Cluster) Recover() (restored, lost int, err error) {
	select {
	case <-c.quit:
		return 0, 0, ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	restored, lost = c.net.Recover()
	return restored, lost, nil
}

// Replicate snapshots every tree node to the replica store.
func (c *Cluster) Replicate() (int, error) {
	select {
	case <-c.quit:
		return 0, ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.Replicate(), nil
}

// ResetUnit ends the current load-accounting time unit.
func (c *Cluster) ResetUnit() error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.net.ResetUnit()
	return nil
}

// Balance runs one round of the named load-balancing strategy, then
// rewires the listener bookkeeping to the renamed peer ids so relays
// keep resolving.
func (c *Cluster) Balance(strategy string) (int, error) {
	strat, err := lb.ByName(strategy)
	if err != nil {
		return 0, err
	}
	select {
	case <-c.quit:
		return 0, ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	moves, rerr := lb.RunRound(c.net, strat)
	c.rewireServersLocked()
	return moves, rerr
}

// rewireServersLocked re-keys the address table and server ids to the
// current peers after balancing renames. Which listener serves which
// id is immaterial — all state lives in the shared network — so
// orphaned servers pair with unclaimed ids in sorted order. Callers
// hold c.mu.
func (c *Cluster) rewireServersLocked() {
	current := make(map[keys.Key]bool, c.net.NumPeers())
	for _, id := range c.net.PeerIDs() {
		current[id] = true
	}
	claimed := make(map[keys.Key]bool, len(c.servers))
	var orphans []*peerServer
	for _, ps := range c.servers {
		if current[ps.id] {
			claimed[ps.id] = true
		} else {
			orphans = append(orphans, ps)
		}
	}
	if len(orphans) == 0 {
		return
	}
	var free []keys.Key
	for id := range current {
		if !claimed[id] {
			free = append(free, id)
		}
	}
	keys.SortKeys(free)
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].id < orphans[j].id })
	for i, ps := range orphans {
		if i >= len(free) {
			break
		}
		delete(c.addrs, ps.id)
		ps.id = free[i]
		c.addrs[ps.id] = ps.addr
	}
}

// PeerSummaries returns one summary per peer in ring order.
func (c *Cluster) PeerSummaries() []core.PeerSummary {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.PeerSummaries()
}

// ReplicationStats returns the replication traffic counters.
func (c *Cluster) ReplicationStats() core.ReplicationCounters {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Replication
}

// serve accepts and handles connections for one peer.
func (c *Cluster) serve(ps *peerServer) {
	defer c.wg.Done()
	for {
		conn, err := ps.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			c.handle(ps, conn)
		}()
	}
}

// handle processes one request on conn: perform routing steps local
// to this peer, then either answer or relay through the next peer.
//
// After the request is decoded, the requester sends nothing further
// until the response; a pending Read therefore only returns when the
// requester closed the connection (cancellation upstream) — that read
// drives a per-request context, so cancellation cascades hop by hop
// down the whole in-flight relay chain.
func (c *Cluster) handle(ps *peerServer, conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var req request
	if err := dec.Decode(&req); err != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		var buf [1]byte
		_, _ = conn.Read(buf[:]) // unblocks only on close/error
		cancel()
	}()
	c.mu.RLock()
	self := ps.id // balancing renames write ps.id under the write lock
	c.mu.RUnlock()
	resp := c.step(ctx, self, req)
	_ = enc.Encode(resp)
}

// step executes routing at the peer owning the current node, relaying
// over TCP when the walk leaves the peer.
func (c *Cluster) step(ctx context.Context, self keys.Key, req request) response {
	for {
		if err := ctx.Err(); err != nil {
			return response{Err: err.Error()}
		}
		c.mu.RLock()
		peer, ok := c.net.Peer(self)
		if !ok {
			c.mu.RUnlock()
			return response{Err: fmt.Sprintf("peer %q gone", self)}
		}
		node, ok := peer.Nodes[req.At]
		if !ok {
			// The node lives elsewhere (stale routing): relay to its
			// current host. A node lost to an unrecovered crash has
			// no host anywhere: bound the relays and report what the
			// walk has (not found).
			host, okh := c.net.HostOf(req.At)
			addr := c.addrs[host]
			c.mu.RUnlock()
			req.Redirects++
			if !okh || req.Redirects > maxRedirects {
				return response{Logical: req.Logical, Physical: req.Physical}
			}
			return c.relay(ctx, addr, req)
		}
		node.RecordVisit()
		var next keys.Key
		done, found := false, false
		var values []string
		if node.Key == req.Key {
			done = true
			if node.HasData() {
				found = true
				for v := range node.Data {
					values = append(values, v)
				}
			}
		} else {
			if req.GoingUp && keys.IsPrefix(node.Key, req.Key) {
				req.GoingUp = false
			}
			if req.GoingUp {
				if !node.HasFather {
					done = true
				} else {
					next = node.Father
				}
			} else {
				q, okc := node.BestChildFor(req.Key)
				if !okc || !keys.IsPrefix(q, req.Key) {
					done = true
				} else {
					next = q
				}
			}
		}
		if done {
			c.mu.RUnlock()
			return response{Found: found, Values: values,
				Logical: req.Logical, Physical: req.Physical}
		}
		host, _ := c.net.HostOf(next)
		addr := c.addrs[host]
		c.mu.RUnlock()
		req.At = next
		req.Logical++
		if host == self {
			continue // next node is local: no wire transfer
		}
		req.Physical++
		return c.relay(ctx, addr, req)
	}
}

// relay forwards the request to addr and returns the relayed
// response. Cancelling ctx (or stopping the cluster) closes the
// connection, unblocking the pending decode and propagating the
// cancellation to the remote peer's request monitor.
func (c *Cluster) relay(ctx context.Context, addr string, req request) response {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return response{Err: err.Error()}
	}
	defer conn.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-c.quit:
		case <-done:
			return
		}
		_ = conn.SetDeadline(time.Now())
		_ = conn.Close()
	}()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(req); err != nil {
		return response{Err: err.Error()}
	}
	var resp response
	if err := dec.Decode(&resp); err != nil {
		return response{Err: err.Error()}
	}
	return resp
}

// Register declares a service (topology mutation, serialized).
func (c *Cluster) Register(key keys.Key, value string) error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.InsertData(key, value, c.rng)
}

// RegisterBatch declares every entry under a single acquisition of
// the topology write lock, stopping at the first failure.
func (c *Cluster) RegisterBatch(entries []core.KV) error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.InsertBatch(entries, c.rng)
}

// Unregister removes a value from a key, reporting whether it was
// registered.
func (c *Cluster) Unregister(key keys.Key, value string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.RemoveData(key, value)
}

// Stopped reports whether the cluster has been stopped.
func (c *Cluster) Stopped() bool {
	select {
	case <-c.quit:
		return true
	default:
		return false
	}
}

// Discover routes a discovery over TCP, entering at a random node.
func (c *Cluster) Discover(key keys.Key) (Result, error) {
	return c.DiscoverContext(context.Background(), key)
}

// DiscoverContext is Discover under a caller context: cancelling ctx
// closes the in-flight connections hop by hop and returns the context
// error.
func (c *Cluster) DiscoverContext(ctx context.Context, key keys.Key) (Result, error) {
	select {
	case <-c.quit:
		return Result{}, ErrStopped
	default:
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	c.mu.Lock()
	entry, ok := c.net.RandomNodeKey(c.rng)
	var addr string
	if ok {
		host, _ := c.net.HostOf(entry)
		addr = c.addrs[host]
	}
	c.mu.Unlock()
	if !ok {
		return Result{Key: key}, nil
	}
	resp := c.relay(ctx, addr, request{Key: key, At: entry, GoingUp: true, Physical: 1})
	if resp.Err != "" {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		select {
		case <-c.quit:
			return Result{}, ErrStopped
		default:
		}
		return Result{Key: key}, errors.New(resp.Err)
	}
	return Result{
		Key:          key,
		Found:        resp.Found,
		Values:       resp.Values,
		LogicalHops:  resp.Logical,
		PhysicalHops: resp.Physical,
	}, nil
}

// Complete resolves automatic completion of a partial search string.
// Subtree queries share the protocol state directly (as in
// internal/live); only unit discoveries travel the wire.
func (c *Cluster) Complete(prefix keys.Key) (core.QueryResult, error) {
	select {
	case <-c.quit:
		return core.QueryResult{}, ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.Complete(prefix, c.rng), nil
}

// RangeQuery resolves the lexicographic range query [lo, hi].
func (c *Cluster) RangeQuery(lo, hi keys.Key) (core.QueryResult, error) {
	select {
	case <-c.quit:
		return core.QueryResult{}, ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.RangeQuery(lo, hi, c.rng), nil
}

// Snapshot returns a consistent copy of the whole tree.
func (c *Cluster) Snapshot() *trie.Tree {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.TreeSnapshot()
}

// NumPeers returns the peer count.
func (c *Cluster) NumPeers() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.NumPeers()
}

// NumNodes returns the tree size.
func (c *Cluster) NumNodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.NumNodes()
}

// Addrs returns the listen addresses by peer id.
func (c *Cluster) Addrs() map[keys.Key]string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[keys.Key]string, len(c.addrs))
	for k, v := range c.addrs {
		out[k] = v
	}
	return out
}

// Validate cross-checks overlay invariants.
func (c *Cluster) Validate() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Validate()
}

// Stop closes every listener and waits for handlers to finish.
func (c *Cluster) Stop() {
	c.once.Do(func() {
		close(c.quit)
		c.mu.Lock()
		for _, ps := range c.servers {
			_ = ps.ln.Close()
		}
		c.mu.Unlock()
	})
	c.wg.Wait()
}
