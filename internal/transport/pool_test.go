package transport

import (
	"context"
	"encoding/binary"
	"strings"
	"sync"
	"testing"
	"time"

	"dlpt/internal/catalog"
	"dlpt/internal/keys"
	"dlpt/internal/trace"
	"dlpt/internal/workload"
)

// registerCorpus registers n keys and returns them.
func registerCorpus(t *testing.T, c *Cluster, n int) []keys.Key {
	t.Helper()
	corpus := workload.GridCorpus(n)
	for _, k := range corpus {
		if err := c.Register(k, string(k)); err != nil {
			t.Fatal(err)
		}
	}
	return corpus
}

// TestPooledConnectionsShared asserts the point of the pool: many
// concurrent discoveries multiplex over at most one connection per
// listener address instead of dialing per hop.
func TestPooledConnectionsShared(t *testing.T) {
	c := startTCP(t, 8)
	corpus := registerCorpus(t, c, 100)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := corpus[(w*13+i)%len(corpus)]
				res, err := c.Discover(k)
				if err != nil || !res.Found {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	conns, dials := c.PoolStats()
	if int(dials) > c.NumPeers() {
		t.Fatalf("400 discoveries cost %d dials; want at most one per peer (%d)",
			dials, c.NumPeers())
	}
	if conns > c.NumPeers() {
		t.Fatalf("pool holds %d conns for %d peers", conns, c.NumPeers())
	}
	if dials == 0 {
		t.Fatal("no dials recorded; counting is broken")
	}
}

// TestCancelMidRelayKeepsConnection cancels a relay while its routing
// step is blocked server-side and asserts the CANCEL frame frees the
// stream without killing the shared connection: the pending table
// drains and the very same pooled connection serves the next relay
// (no redial).
func TestCancelMidRelayKeepsConnection(t *testing.T) {
	c := startTCP(t, 4)
	corpus := registerCorpus(t, c, 30)
	// Warm the pool and grab a live routing target.
	if res, err := c.Discover(corpus[0]); err != nil || !res.Found {
		t.Fatalf("warm discover: %v", err)
	}
	c.mu.RLock()
	at, ok := c.net.RandomNodeKey(c.rng)
	host, _ := c.net.HostOf(at)
	addr := c.addrs[host]
	c.mu.RUnlock()
	if !ok {
		t.Fatal("no node to route to")
	}
	_, dialsBefore := c.PoolStats()

	// Block every routing step, then cancel the relay mid-flight.
	c.mu.Lock()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan response, 1)
	go func() {
		done <- c.relay(ctx, trace.Context{}, addr, request{Key: corpus[0], At: at, GoingUp: true, Physical: 1})
	}()
	time.Sleep(20 * time.Millisecond) // let the request frame land server-side
	cancel()
	var resp response
	select {
	case resp = <-done:
	case <-time.After(5 * time.Second):
		c.mu.Unlock()
		t.Fatal("cancelled relay did not return while server was blocked")
	}
	c.mu.Unlock()
	if !strings.Contains(resp.Err, context.Canceled.Error()) {
		t.Fatalf("cancelled relay Err = %q", resp.Err)
	}

	// The shared connection must have survived: the next discovery
	// succeeds without a single new dial.
	for _, k := range corpus[:5] {
		res, err := c.Discover(k)
		if err != nil || !res.Found {
			t.Fatalf("discover after cancel: %v", err)
		}
	}
	if _, dialsAfter := c.PoolStats(); dialsAfter != dialsBefore {
		t.Fatalf("cancellation cost %d redials; the pooled conn should survive",
			dialsAfter-dialsBefore)
	}
	// The abandoned stream must not leak a pending entry.
	deadline := time.Now().Add(2 * time.Second)
	for {
		pending := 0
		c.pool.mu.Lock()
		for _, pc := range c.pool.conns {
			pc.mu.Lock()
			pending += len(pc.pending)
			pc.mu.Unlock()
		}
		c.pool.mu.Unlock()
		if pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d pending entries leaked after cancellation", pending)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPoolEvictsDepartedPeers asserts removal and crash both evict
// the departed peer's pooled connection and traffic keeps flowing.
func TestPoolEvictsDepartedPeers(t *testing.T) {
	c := startTCP(t, 6)
	corpus := registerCorpus(t, c, 60)
	// Warm a connection to every peer.
	for _, k := range corpus {
		if res, err := c.Discover(k); err != nil || !res.Found {
			t.Fatalf("warm discover: %v", err)
		}
	}

	c.mu.RLock()
	ids := c.net.PeerIDs()
	removedAddr := c.addrs[ids[0]]
	crashedAddr := c.addrs[ids[1]]
	c.mu.RUnlock()
	// Random routes need not touch every peer: pin both targets.
	for _, addr := range []string{removedAddr, crashedAddr} {
		if _, err := c.pool.get(context.Background(), addr); err != nil {
			t.Fatal(err)
		}
	}

	if err := c.RemovePeer(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, ok := poolHas(c, removedAddr); ok {
		t.Fatal("removed peer's connection still pooled")
	}
	for _, k := range corpus {
		if res, err := c.Discover(k); err != nil || !res.Found {
			t.Fatalf("discover after removal: %v", err)
		}
	}

	if _, err := c.Replicate(); err != nil {
		t.Fatal(err)
	}
	if err := c.FailPeer(ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, ok := poolHas(c, crashedAddr); ok {
		t.Fatal("crashed peer's connection still pooled")
	}
	if _, lost, err := c.Recover(); err != nil || len(lost) != 0 {
		t.Fatalf("recover: lost=%v err=%v", lost, err)
	}
	for _, k := range corpus {
		if res, err := c.Discover(k); err != nil || !res.Found {
			t.Fatalf("discover after crash+recover: %v", err)
		}
	}
}

func poolHas(c *Cluster, addr string) (*poolConn, bool) {
	c.pool.mu.Lock()
	defer c.pool.mu.Unlock()
	pc, ok := c.pool.conns[addr]
	return pc, ok
}

// TestRelayRetriesStaleAddress drives the rename/removal race window
// directly: a relay handed an address whose listener is gone must
// evict, re-resolve the node's current host and succeed on the
// retried dial.
func TestRelayRetriesStaleAddress(t *testing.T) {
	c := startTCP(t, 5)
	corpus := registerCorpus(t, c, 40)
	c.mu.RLock()
	ids := c.net.PeerIDs()
	c.mu.RUnlock()
	staleAddr := func() string {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return c.addrs[ids[0]]
	}()
	if err := c.RemovePeer(ids[0]); err != nil {
		t.Fatal(err)
	}
	// The handed-off nodes now live elsewhere; relaying to the dead
	// address must recover via the one-shot re-resolve.
	c.mu.RLock()
	at, ok := c.net.RandomNodeKey(c.rng)
	c.mu.RUnlock()
	if !ok {
		t.Fatal("no node to route to")
	}
	resp := c.relay(context.Background(), trace.Context{},
		staleAddr, request{Key: corpus[0], At: at, GoingUp: true, Physical: 1})
	if resp.Err != "" {
		t.Fatalf("relay to stale addr did not recover: %s", resp.Err)
	}
}

// TestPoolDrainsOnStop asserts Stop leaves no pooled connections
// behind.
func TestPoolDrainsOnStop(t *testing.T) {
	c := startTCP(t, 6)
	corpus := registerCorpus(t, c, 40)
	for _, k := range corpus {
		if res, err := c.Discover(k); err != nil || !res.Found {
			t.Fatalf("warm discover: %v", err)
		}
	}
	if conns, _ := c.PoolStats(); conns == 0 {
		t.Fatal("pool empty before Stop; nothing to drain")
	}
	c.Stop()
	if conns, _ := c.PoolStats(); conns != 0 {
		t.Fatalf("pool holds %d connections after Stop", conns)
	}
}

// TestWireValuesSorted pins the deterministic wire contract: a key
// with several values comes back sorted regardless of map iteration
// order.
func TestWireValuesSorted(t *testing.T) {
	c := startTCP(t, 4)
	vals := []string{"ep-c", "ep-a", "ep-b", "ep-d"}
	for _, v := range vals {
		if err := c.Register("pdgesv", v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		res, err := c.Discover("pdgesv")
		if err != nil || !res.Found {
			t.Fatalf("discover: %v", err)
		}
		want := []string{"ep-a", "ep-b", "ep-c", "ep-d"}
		if len(res.Values) != len(want) {
			t.Fatalf("values = %v", res.Values)
		}
		for j := range want {
			if res.Values[j] != want[j] {
				t.Fatalf("values not sorted on the wire: %v", res.Values)
			}
		}
	}
}

// TestFrameRoundTrip pins the frame codec: request and response
// survive an encode/decode round-trip byte for byte.
func TestFrameRoundTrip(t *testing.T) {
	req := request{Key: "pdgesv", At: "pd", GoingUp: true,
		Logical: 7, Physical: 3, Redirects: 2}
	buf := appendRequest(nil, &req)
	var got request
	if err := decodeRequest(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Fatalf("request round-trip: got %+v want %+v", got, req)
	}

	resp := response{Found: true, Values: []string{"a", "b"},
		Logical: 9, Physical: 4, Err: "boom"}
	buf = appendResponse(nil, &resp)
	var gotR response
	if err := decodeResponse(buf, &gotR); err != nil {
		t.Fatal(err)
	}
	if gotR.Found != resp.Found || gotR.Logical != resp.Logical ||
		gotR.Physical != resp.Physical || gotR.Err != resp.Err ||
		len(gotR.Values) != 2 || gotR.Values[0] != "a" || gotR.Values[1] != "b" {
		t.Fatalf("response round-trip: got %+v want %+v", gotR, resp)
	}

	var truncated request
	if err := decodeRequest(buf[:1], &truncated); err == nil {
		t.Fatal("truncated payload decoded without error")
	}

	resp = response{Dropped: true}
	buf = appendResponse(buf[:0], &resp)
	gotR = response{}
	if err := decodeResponse(buf, &gotR); err != nil {
		t.Fatal(err)
	}
	if !gotR.Dropped || gotR.Found {
		t.Fatalf("dropped response round-trip: got %+v", gotR)
	}

	q := queryReq{Range: true, Lo: "aa", Hi: "zz", Limit: 10, Entry: "m"}
	buf = appendQuery(nil, &q)
	var gotQ queryReq
	if err := decodeQuery(buf, &gotQ); err != nil {
		t.Fatal(err)
	}
	if gotQ != q {
		t.Fatalf("query round-trip: got %+v want %+v", gotQ, q)
	}
	neg := queryReq{Prefix: "pd", Limit: -5}
	buf = appendQuery(buf[:0], &neg)
	if err := decodeQuery(buf, &gotQ); err != nil {
		t.Fatal(err)
	}
	if gotQ.Limit != 0 {
		t.Fatalf("negative limit must normalize to 0 on the wire, got %d", gotQ.Limit)
	}

	end := streamEnd{Logical: 11, Physical: 5, Visited: 42, Err: "halt"}
	buf = appendStreamEnd(nil, &end)
	var gotE streamEnd
	if err := decodeStreamEnd(buf, &gotE); err != nil {
		t.Fatal(err)
	}
	if gotE != end {
		t.Fatalf("stream-end round-trip: got %+v want %+v", gotE, end)
	}

	batch := []keys.Key{"pdgesv", "pdgetrf", "s3l_fft"}
	progress := streamEnd{Logical: 3, Physical: 1, Visited: 6}
	bbuf := binary.AppendUvarint(nil, uint64(progress.Logical))
	bbuf = binary.AppendUvarint(bbuf, uint64(progress.Physical))
	bbuf = binary.AppendUvarint(bbuf, uint64(progress.Visited))
	ks := make([]string, len(batch))
	for i, k := range batch {
		ks[i] = string(k)
	}
	bbuf = catalog.AppendKeys(bbuf, catalog.Default, ks)
	gotB, gotP, err := decodeStreamBatch(bbuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotB) != 3 || gotB[0] != "pdgesv" || gotB[2] != "s3l_fft" {
		t.Fatalf("stream batch round-trip: %v", gotB)
	}
	if gotP != progress {
		t.Fatalf("stream progress round-trip: got %+v want %+v", gotP, progress)
	}
	corrupt := binary.AppendUvarint(nil, 0)
	corrupt = binary.AppendUvarint(corrupt, 0)
	corrupt = binary.AppendUvarint(corrupt, 0)
	corrupt = binary.AppendUvarint(corrupt, 1<<40)
	if _, _, err := decodeStreamBatch(corrupt); err == nil {
		t.Fatal("implausible stream count decoded without error")
	}
}
