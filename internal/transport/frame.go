// The wire protocol: length-prefixed binary frames multiplexed over
// one long-lived TCP connection per peer pair. Every frame carries a
// request id so many in-flight relays share a socket; cancellation is
// an explicit CANCEL frame rather than a connection teardown.
//
// Frame layout (header is fixed 13 bytes, integers big-endian):
//
//	type(1) | id(8) | payloadLen(4) | payload
//
// Frame types:
//
//	REQUEST  (1) — one routing step; payload is a request
//	RESPONSE (2) — the result for the same id; payload is a response
//	CANCEL   (3) — abandon the request with that id; no payload
//
// Payloads are hand-rolled varint/length-prefixed encodings of the
// two small wire structs — unlike a per-connection gob stream there
// is no per-encoder type-descriptor preamble, and every frame is
// independently decodable, which multiplexing requires. Encode
// buffers are reused through a sync.Pool; each connection's single
// reader goroutine owns a growable decode buffer.

package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"dlpt/internal/catalog"
	"dlpt/internal/core"
	"dlpt/internal/keys"
	"dlpt/internal/obs"
	"dlpt/internal/trace"
)

const (
	frameRequest  = 1
	frameResponse = 2
	frameCancel   = 3
	// frameQuery starts a streaming subtree query (payload: queryReq);
	// the server answers with zero or more STREAM frames carrying
	// partial result batches and exactly one STREAM_END frame carrying
	// the traversal totals. The consumer acknowledges each batch it
	// pulls with a STREAM_ACK (no payload); the server pauses the
	// traversal after queryWindow unacknowledged batches, so a
	// consumer that stops reading halts the walk instead of letting
	// it fill socket buffers. A CANCEL frame for the same id aborts
	// the traversal mid-stream; the connection survives.
	frameQuery     = 4
	frameStream    = 5
	frameStreamEnd = 6
	frameStreamAck = 7
	// frameReplica ships one successor replica batch of a Replicate
	// tick (payload: core.ReplicaBatch — source peer, target peer and
	// the node snapshots). The receiver installs the batch under its
	// topology write lock and acknowledges with a RESPONSE frame whose
	// Logical field carries the installed count.
	frameReplica = 8
	// frameQRoute is one climb/descend routing step of a subtree
	// query (payload: qroute). It relays hop by hop between listeners
	// exactly like discovery REQUEST frames until the covering node is
	// resolved, then a QROUTE_RESP frame carries the anchor and the
	// route's accumulated counters back to the querying client, which
	// opens the STREAM walk at the anchor's host.
	frameQRoute     = 9
	frameQRouteResp = 10
	// The control plane: JOIN negotiates a daemon into the overlay
	// (reply: HELLO with the assigned ring id, the member table and a
	// full state snapshot — or a rejection), LEAVE announces a graceful
	// departure (reply: RESPONSE ack), APPLY replicates one serialized
	// overlay mutation to a member's mirror (reply: RESPONSE ack), and
	// STATUS/ADMIN carry the admin plane's opaque JSON. The transport
	// does not interpret these payloads beyond framing: they dispatch
	// to the Options.Control handler, and internal/daemon owns the
	// protocol (see handshake.go for the payload codecs).
	frameJoin       = 11
	frameHello      = 12
	frameLeave      = 13
	frameApply      = 14
	frameStatus     = 15
	frameStatusResp = 16
	frameAdmin      = 17
	frameAdminResp  = 18
	// The failover control plane: ELECT asks a surviving member to
	// vote for the sender's stewardship under a proposed epoch,
	// EPOCH_OPEN is the winning candidate's barrier (members adopt the
	// new epoch and report their last applied sequence so gaps can be
	// replayed), RESYNC ships a full mirror snapshot to a member too
	// divergent to replay (reply: RESPONSE ack), and FETCH pulls a
	// tail of the apply log from a member that is ahead of the new
	// steward. Like the rest of the control plane, the payloads belong
	// to internal/daemon (see handshake.go).
	frameElect         = 19
	frameElectResp     = 20
	frameEpochOpen     = 21
	frameEpochOpenResp = 22
	frameResync        = 23
	frameFetch         = 24
	frameFetchResp     = 25
)

// frameHeaderSize is type(1) + id(8) + payloadLen(4).
const frameHeaderSize = 13

// frameTraceFlag, set on the type byte, extends the frame with a
// 16-byte trace context (trace id + parent span id, big-endian)
// prefixed to the payload. The extension counts into payloadLen, so a
// receiver that does not understand the flagged type still skips the
// frame correctly — and frames without the flag decode exactly as
// before the extension existed, which keeps untraced peers
// wire-compatible in both directions.
const (
	frameTraceFlag = 0x80
	frameTraceSize = 16
)

// maxFramePayload bounds a decoded payload length so a corrupt or
// hostile length prefix cannot force an arbitrary allocation.
const maxFramePayload = 1 << 24

var errFrameTooLarge = errors.New("transport: frame payload exceeds limit")

// framePool recycles encode buffers: one frame is built contiguously
// (header + payload) and written with a single conn.Write.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// frameConn frames a net.Conn. Writes are serialized by wmu (response
// writers race from per-request goroutines); reads belong to exactly
// one reader goroutine, which owns rbuf.
type frameConn struct {
	conn net.Conn
	br   *bufio.Reader
	wmu  sync.Mutex
	rbuf []byte
	// met, when set, accounts frame bytes in/out (and REPLICA payload
	// bytes) into the wire counters. Nil-safe.
	met *obs.Metrics
}

func newFrameConn(conn net.Conn) *frameConn {
	return &frameConn{conn: conn, br: bufio.NewReaderSize(conn, 4096)}
}

func (fc *frameConn) Close() error { return fc.conn.Close() }

// readFrame returns the next frame, with the trace context decoded
// off the payload prefix when the type byte carries frameTraceFlag
// (zero Context otherwise — an untraced peer's frame). The payload
// slice aliases the connection's reader buffer and is valid only
// until the next call.
func (fc *frameConn) readFrame() (typ byte, id uint64, tc trace.Context, payload []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err = io.ReadFull(fc.br, hdr[:]); err != nil {
		return 0, 0, tc, nil, err
	}
	typ = hdr[0]
	id = binary.BigEndian.Uint64(hdr[1:9])
	n := binary.BigEndian.Uint32(hdr[9:13])
	if n > maxFramePayload {
		return 0, 0, tc, nil, errFrameTooLarge
	}
	if cap(fc.rbuf) < int(n) {
		fc.rbuf = make([]byte, n)
	}
	payload = fc.rbuf[:n]
	if _, err = io.ReadFull(fc.br, payload); err != nil {
		return 0, 0, tc, nil, err
	}
	if fc.met != nil {
		fc.met.WireBytesIn.Add(float64(frameHeaderSize + len(payload)))
	}
	if typ&frameTraceFlag != 0 {
		typ &^= frameTraceFlag
		if len(payload) < frameTraceSize {
			return 0, 0, tc, nil, errors.New("transport: truncated trace context")
		}
		tc.Trace = binary.BigEndian.Uint64(payload[0:8])
		tc.Span = binary.BigEndian.Uint64(payload[8:16])
		payload = payload[frameTraceSize:]
	}
	return typ, id, tc, payload, nil
}

// beginFrame starts a frame in a pooled buffer; finishFrame patches
// the payload length in and writes the whole frame in one call.
func beginFrame(buf []byte, typ byte, id uint64) []byte {
	buf = append(buf[:0], typ)
	buf = binary.BigEndian.AppendUint64(buf, id)
	return append(buf, 0, 0, 0, 0) // payload length placeholder
}

// beginTracedFrame is beginFrame plus the trace-context extension: a
// valid context sets frameTraceFlag on the type byte and prefixes the
// payload with the 16-byte context; an invalid one degrades to a
// plain frame, byte-identical to the pre-extension wire format.
func beginTracedFrame(buf []byte, typ byte, id uint64, tc trace.Context) []byte {
	if !tc.Valid() {
		return beginFrame(buf, typ, id)
	}
	buf = beginFrame(buf, typ|frameTraceFlag, id)
	buf = binary.BigEndian.AppendUint64(buf, tc.Trace)
	return binary.BigEndian.AppendUint64(buf, tc.Span)
}

func (fc *frameConn) finishFrame(buf []byte) error {
	if len(buf)-frameHeaderSize > maxFramePayload {
		// Never put an oversized frame on the wire: the receiver
		// would kill the shared connection (and every multiplexed
		// request on it). Nothing was written; the connection stays
		// consistent and the caller degrades per frame type.
		return errFrameTooLarge
	}
	binary.BigEndian.PutUint32(buf[9:13], uint32(len(buf)-frameHeaderSize))
	fc.wmu.Lock()
	_, err := fc.conn.Write(buf)
	fc.wmu.Unlock()
	if err == nil && fc.met != nil {
		fc.met.WireBytesOut.Add(float64(len(buf)))
	}
	return err
}

func (fc *frameConn) writeRequest(id uint64, tc trace.Context, req *request) error {
	bp := framePool.Get().(*[]byte)
	buf := beginTracedFrame(*bp, frameRequest, id, tc)
	buf = appendRequest(buf, req)
	err := fc.finishFrame(buf)
	*bp = buf
	framePool.Put(bp)
	return err
}

func (fc *frameConn) writeResponse(id uint64, resp *response) error {
	bp := framePool.Get().(*[]byte)
	buf := beginFrame(*bp, frameResponse, id)
	buf = appendResponse(buf, resp)
	err := fc.finishFrame(buf)
	*bp = buf
	framePool.Put(bp)
	return err
}

func (fc *frameConn) writeQuery(id uint64, tc trace.Context, q *queryReq) error {
	bp := framePool.Get().(*[]byte)
	buf := beginTracedFrame(*bp, frameQuery, id, tc)
	buf = appendQuery(buf, q)
	err := fc.finishFrame(buf)
	*bp = buf
	framePool.Put(bp)
	return err
}

// writeStream carries one partial result batch plus the traversal
// counters accumulated so far (progress.Err unused), so the client
// can report live stats mid-stream like the in-process engines do.
// The batch keys ride in a catalogue envelope: walk chunks arrive in
// ascending order, so the succinct codec compresses their shared
// prefixes (an unsorted batch falls back to the order-preserving
// legacy encoding).
func (fc *frameConn) writeStream(id uint64, batch []keys.Key, progress *streamEnd) error {
	bp := framePool.Get().(*[]byte)
	buf := beginFrame(*bp, frameStream, id)
	buf = binary.AppendUvarint(buf, uint64(progress.Logical))
	buf = binary.AppendUvarint(buf, uint64(progress.Physical))
	buf = binary.AppendUvarint(buf, uint64(progress.Visited))
	ks := make([]string, len(batch))
	for i, k := range batch {
		ks[i] = string(k)
	}
	buf = catalog.AppendKeys(buf, catalog.Default, ks)
	err := fc.finishFrame(buf)
	*bp = buf
	framePool.Put(bp)
	return err
}

func (fc *frameConn) writeStreamEnd(id uint64, end *streamEnd) error {
	bp := framePool.Get().(*[]byte)
	buf := beginFrame(*bp, frameStreamEnd, id)
	buf = appendStreamEnd(buf, end)
	err := fc.finishFrame(buf)
	*bp = buf
	framePool.Put(bp)
	return err
}

func (fc *frameConn) writeCancel(id uint64) error {
	bp := framePool.Get().(*[]byte)
	buf := beginFrame(*bp, frameCancel, id)
	err := fc.finishFrame(buf)
	*bp = buf
	framePool.Put(bp)
	return err
}

func (fc *frameConn) writeReplica(id uint64, tc trace.Context, b *core.ReplicaBatch) error {
	bp := framePool.Get().(*[]byte)
	buf := beginTracedFrame(*bp, frameReplica, id, tc)
	buf = appendReplicaBatch(buf, b)
	if fc.met != nil {
		fc.met.ReplicaTransferBytes.Add(float64(len(buf) - frameHeaderSize))
	}
	err := fc.finishFrame(buf)
	*bp = buf
	framePool.Put(bp)
	return err
}

// writeRaw frames an already-encoded payload: the control plane and
// the admin plane build their payloads outside the transport.
func (fc *frameConn) writeRaw(typ byte, id uint64, payload []byte) error {
	bp := framePool.Get().(*[]byte)
	buf := beginFrame(*bp, typ, id)
	buf = append(buf, payload...)
	err := fc.finishFrame(buf)
	*bp = buf
	framePool.Put(bp)
	return err
}

func (fc *frameConn) writeQRoute(id uint64, tc trace.Context, rq *qroute) error {
	bp := framePool.Get().(*[]byte)
	buf := beginTracedFrame(*bp, frameQRoute, id, tc)
	buf = appendQRoute(buf, rq)
	err := fc.finishFrame(buf)
	*bp = buf
	framePool.Put(bp)
	return err
}

func (fc *frameConn) writeQRouteResp(id uint64, resp *qrouteResp) error {
	bp := framePool.Get().(*[]byte)
	buf := beginFrame(*bp, frameQRouteResp, id)
	buf = appendQRouteResp(buf, resp)
	err := fc.finishFrame(buf)
	*bp = buf
	framePool.Put(bp)
	return err
}

func (fc *frameConn) writeStreamAck(id uint64) error {
	bp := framePool.Get().(*[]byte)
	buf := beginFrame(*bp, frameStreamAck, id)
	err := fc.finishFrame(buf)
	*bp = buf
	framePool.Put(bp)
	return err
}

// --- payload encoding --------------------------------------------------------

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func getUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errors.New("transport: truncated varint")
	}
	return v, p[n:], nil
}

func getString(p []byte) (string, []byte, error) {
	n, p, err := getUvarint(p)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(p)) < n {
		return "", nil, errors.New("transport: truncated string")
	}
	return string(p[:n]), p[n:], nil
}

func getBool(p []byte) (bool, []byte, error) {
	if len(p) < 1 {
		return false, nil, errors.New("transport: truncated bool")
	}
	return p[0] != 0, p[1:], nil
}

func appendRequest(b []byte, req *request) []byte {
	b = appendString(b, string(req.Key))
	b = appendString(b, string(req.At))
	b = appendBool(b, req.GoingUp)
	b = binary.AppendUvarint(b, uint64(req.Logical))
	b = binary.AppendUvarint(b, uint64(req.Physical))
	return binary.AppendUvarint(b, uint64(req.Redirects))
}

func decodeRequest(p []byte, req *request) error {
	var err error
	var s string
	var v uint64
	if s, p, err = getString(p); err != nil {
		return fmt.Errorf("request key: %w", err)
	}
	req.Key = keys.Key(s)
	if s, p, err = getString(p); err != nil {
		return fmt.Errorf("request at: %w", err)
	}
	req.At = keys.Key(s)
	if req.GoingUp, p, err = getBool(p); err != nil {
		return fmt.Errorf("request goingUp: %w", err)
	}
	if v, p, err = getUvarint(p); err != nil {
		return fmt.Errorf("request logical: %w", err)
	}
	req.Logical = int(v)
	if v, p, err = getUvarint(p); err != nil {
		return fmt.Errorf("request physical: %w", err)
	}
	req.Physical = int(v)
	if v, _, err = getUvarint(p); err != nil {
		return fmt.Errorf("request redirects: %w", err)
	}
	req.Redirects = int(v)
	return nil
}

func appendResponse(b []byte, resp *response) []byte {
	b = appendBool(b, resp.Found)
	b = appendBool(b, resp.Dropped)
	b = binary.AppendUvarint(b, uint64(len(resp.Values)))
	for _, v := range resp.Values {
		b = appendString(b, v)
	}
	b = binary.AppendUvarint(b, uint64(resp.Logical))
	b = binary.AppendUvarint(b, uint64(resp.Physical))
	return appendString(b, resp.Err)
}

func decodeResponse(p []byte, resp *response) error {
	var err error
	var v uint64
	if resp.Found, p, err = getBool(p); err != nil {
		return fmt.Errorf("response found: %w", err)
	}
	if resp.Dropped, p, err = getBool(p); err != nil {
		return fmt.Errorf("response dropped: %w", err)
	}
	if v, p, err = getUvarint(p); err != nil {
		return fmt.Errorf("response value count: %w", err)
	}
	// Each value costs at least one byte on the wire: a count beyond
	// the remaining payload is corrupt, and pre-allocating from it
	// would let a tiny frame demand an arbitrary allocation.
	if v > uint64(len(p)) {
		return errors.New("transport: implausible value count")
	}
	resp.Values = nil
	if v > 0 {
		resp.Values = make([]string, 0, v)
		for i := uint64(0); i < v; i++ {
			var s string
			if s, p, err = getString(p); err != nil {
				return fmt.Errorf("response value %d: %w", i, err)
			}
			resp.Values = append(resp.Values, s)
		}
	}
	if v, p, err = getUvarint(p); err != nil {
		return fmt.Errorf("response logical: %w", err)
	}
	resp.Logical = int(v)
	if v, p, err = getUvarint(p); err != nil {
		return fmt.Errorf("response physical: %w", err)
	}
	resp.Physical = int(v)
	if resp.Err, _, err = getString(p); err != nil {
		return fmt.Errorf("response err: %w", err)
	}
	return nil
}

func appendQuery(b []byte, q *queryReq) []byte {
	b = appendBool(b, q.Range)
	b = appendString(b, string(q.Prefix))
	b = appendString(b, string(q.Lo))
	b = appendString(b, string(q.Hi))
	limit := q.Limit
	if limit < 0 {
		limit = 0
	}
	b = binary.AppendUvarint(b, uint64(limit))
	b = appendString(b, string(q.Entry))
	b = appendBool(b, q.Walk)
	b = binary.AppendUvarint(b, uint64(q.Logical))
	b = binary.AppendUvarint(b, uint64(q.Physical))
	return binary.AppendUvarint(b, uint64(q.Visited))
}

func decodeQuery(p []byte, q *queryReq) error {
	var err error
	var s string
	var v uint64
	if q.Range, p, err = getBool(p); err != nil {
		return fmt.Errorf("query range: %w", err)
	}
	if s, p, err = getString(p); err != nil {
		return fmt.Errorf("query prefix: %w", err)
	}
	q.Prefix = keys.Key(s)
	if s, p, err = getString(p); err != nil {
		return fmt.Errorf("query lo: %w", err)
	}
	q.Lo = keys.Key(s)
	if s, p, err = getString(p); err != nil {
		return fmt.Errorf("query hi: %w", err)
	}
	q.Hi = keys.Key(s)
	if v, p, err = getUvarint(p); err != nil {
		return fmt.Errorf("query limit: %w", err)
	}
	q.Limit = int(v)
	if s, p, err = getString(p); err != nil {
		return fmt.Errorf("query entry: %w", err)
	}
	q.Entry = keys.Key(s)
	if q.Walk, p, err = getBool(p); err != nil {
		return fmt.Errorf("query walk: %w", err)
	}
	if v, p, err = getUvarint(p); err != nil {
		return fmt.Errorf("query logical: %w", err)
	}
	q.Logical = int(v)
	if v, p, err = getUvarint(p); err != nil {
		return fmt.Errorf("query physical: %w", err)
	}
	q.Physical = int(v)
	if v, _, err = getUvarint(p); err != nil {
		return fmt.Errorf("query visited: %w", err)
	}
	q.Visited = int(v)
	return nil
}

func appendQRoute(b []byte, rq *qroute) []byte {
	b = appendString(b, string(rq.Anchor))
	b = appendString(b, string(rq.At))
	b = appendBool(b, rq.Descending)
	b = binary.AppendUvarint(b, uint64(rq.Logical))
	b = binary.AppendUvarint(b, uint64(rq.Physical))
	b = binary.AppendUvarint(b, uint64(rq.Visited))
	return binary.AppendUvarint(b, uint64(rq.Redirects))
}

func decodeQRoute(p []byte, rq *qroute) error {
	var err error
	var s string
	var v uint64
	if s, p, err = getString(p); err != nil {
		return fmt.Errorf("qroute anchor: %w", err)
	}
	rq.Anchor = keys.Key(s)
	if s, p, err = getString(p); err != nil {
		return fmt.Errorf("qroute at: %w", err)
	}
	rq.At = keys.Key(s)
	if rq.Descending, p, err = getBool(p); err != nil {
		return fmt.Errorf("qroute descending: %w", err)
	}
	if v, p, err = getUvarint(p); err != nil {
		return fmt.Errorf("qroute logical: %w", err)
	}
	rq.Logical = int(v)
	if v, p, err = getUvarint(p); err != nil {
		return fmt.Errorf("qroute physical: %w", err)
	}
	rq.Physical = int(v)
	if v, p, err = getUvarint(p); err != nil {
		return fmt.Errorf("qroute visited: %w", err)
	}
	rq.Visited = int(v)
	if v, _, err = getUvarint(p); err != nil {
		return fmt.Errorf("qroute redirects: %w", err)
	}
	rq.Redirects = int(v)
	return nil
}

func appendQRouteResp(b []byte, resp *qrouteResp) []byte {
	b = appendBool(b, resp.Found)
	b = appendString(b, string(resp.Anchor))
	b = binary.AppendUvarint(b, uint64(resp.Logical))
	b = binary.AppendUvarint(b, uint64(resp.Physical))
	b = binary.AppendUvarint(b, uint64(resp.Visited))
	return appendString(b, resp.Err)
}

func decodeQRouteResp(p []byte, resp *qrouteResp) error {
	var err error
	var s string
	var v uint64
	if resp.Found, p, err = getBool(p); err != nil {
		return fmt.Errorf("qroute-resp found: %w", err)
	}
	if s, p, err = getString(p); err != nil {
		return fmt.Errorf("qroute-resp anchor: %w", err)
	}
	resp.Anchor = keys.Key(s)
	if v, p, err = getUvarint(p); err != nil {
		return fmt.Errorf("qroute-resp logical: %w", err)
	}
	resp.Logical = int(v)
	if v, p, err = getUvarint(p); err != nil {
		return fmt.Errorf("qroute-resp physical: %w", err)
	}
	resp.Physical = int(v)
	if v, p, err = getUvarint(p); err != nil {
		return fmt.Errorf("qroute-resp visited: %w", err)
	}
	resp.Visited = int(v)
	if resp.Err, _, err = getString(p); err != nil {
		return fmt.Errorf("qroute-resp err: %w", err)
	}
	return nil
}

// appendReplicaBatch frames one successor batch: From and To, then
// the node snapshots as a versioned catalogue envelope (all sections
// — structure, values and loads travel with each snapshot). The
// succinct default codec shares the batch's common key prefixes in
// one LOUDS trie instead of repeating every string, and the version
// byte lets mixed-version peers interoperate during a rollout.
func appendReplicaBatch(b []byte, batch *core.ReplicaBatch) []byte {
	b = appendString(b, string(batch.From))
	b = appendString(b, string(batch.To))
	entries := make([]catalog.Entry, len(batch.Infos))
	for i, info := range batch.Infos {
		entries[i] = catalog.Entry{
			Key:       string(info.Key),
			Values:    info.Data,
			Father:    string(info.Father),
			HasFather: info.HasFather,
			Children:  make([]string, len(info.Children)),
			LoadPrev:  info.LoadPrev,
			LoadCur:   info.LoadCur,
		}
		for j, c := range info.Children {
			entries[i].Children[j] = string(c)
		}
	}
	return catalog.Append(b, catalog.Default, entries, catalog.SecAll)
}

func decodeReplicaBatch(p []byte, batch *core.ReplicaBatch) error {
	var err error
	var s string
	if s, p, err = getString(p); err != nil {
		return fmt.Errorf("replica from: %w", err)
	}
	batch.From = keys.Key(s)
	if s, p, err = getString(p); err != nil {
		return fmt.Errorf("replica to: %w", err)
	}
	batch.To = keys.Key(s)
	entries, _, err := catalog.Decode(p)
	if err != nil {
		return fmt.Errorf("replica batch: %w", err)
	}
	batch.Infos = make([]core.NodeInfo, len(entries))
	for i, e := range entries {
		info := core.NodeInfo{
			Key:       keys.Key(e.Key),
			Father:    keys.Key(e.Father),
			HasFather: e.HasFather,
			Data:      e.Values,
			LoadPrev:  e.LoadPrev,
			LoadCur:   e.LoadCur,
		}
		if len(e.Children) > 0 {
			info.Children = make([]keys.Key, len(e.Children))
			for j, c := range e.Children {
				info.Children[j] = keys.Key(c)
			}
		}
		batch.Infos[i] = info
	}
	return nil
}

func decodeStreamBatch(p []byte) ([]string, streamEnd, error) {
	var progress streamEnd
	var v uint64
	var err error
	if v, p, err = getUvarint(p); err != nil {
		return nil, progress, fmt.Errorf("stream logical: %w", err)
	}
	progress.Logical = int(v)
	if v, p, err = getUvarint(p); err != nil {
		return nil, progress, fmt.Errorf("stream physical: %w", err)
	}
	progress.Physical = int(v)
	if v, p, err = getUvarint(p); err != nil {
		return nil, progress, fmt.Errorf("stream visited: %w", err)
	}
	progress.Visited = int(v)
	out, err := catalog.DecodeKeys(p)
	if err != nil {
		return nil, progress, fmt.Errorf("stream batch: %w", err)
	}
	return out, progress, nil
}

func appendStreamEnd(b []byte, end *streamEnd) []byte {
	b = binary.AppendUvarint(b, uint64(end.Logical))
	b = binary.AppendUvarint(b, uint64(end.Physical))
	b = binary.AppendUvarint(b, uint64(end.Visited))
	return appendString(b, end.Err)
}

func decodeStreamEnd(p []byte, end *streamEnd) error {
	var err error
	var v uint64
	if v, p, err = getUvarint(p); err != nil {
		return fmt.Errorf("stream-end logical: %w", err)
	}
	end.Logical = int(v)
	if v, p, err = getUvarint(p); err != nil {
		return fmt.Errorf("stream-end physical: %w", err)
	}
	end.Physical = int(v)
	if v, p, err = getUvarint(p); err != nil {
		return fmt.Errorf("stream-end visited: %w", err)
	}
	end.Visited = int(v)
	if end.Err, _, err = getString(p); err != nil {
		return fmt.Errorf("stream-end err: %w", err)
	}
	return nil
}
