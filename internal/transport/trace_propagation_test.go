package transport

import (
	"context"
	"net"
	"testing"
	"time"

	"dlpt/internal/core"
	"dlpt/internal/keys"
	"dlpt/internal/obs"
	"dlpt/internal/trace"
	"dlpt/internal/workload"
)

// startTracedTCP starts an n-listener cluster whose three hosts share
// one recorder and one metrics bundle, the way dlptd wires a daemon.
func startTracedTCP(t *testing.T, n int) (*Cluster, *trace.Recorder, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	rec := trace.NewRecorder(trace.DefaultCapacity)
	caps := make([]int, n)
	for i := range caps {
		caps[i] = 1 << 20
	}
	c, err := StartOpts(keys.LowerAlnum, caps, 3, Options{
		Obs:   obs.NewMetrics(reg),
		Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c, rec, reg
}

// spansOf returns the retained spans belonging to one trace.
func spansOf(rec *trace.Recorder, tid uint64) []trace.Span {
	var out []trace.Span
	for _, s := range rec.Spans() {
		if s.Trace == tid {
			out = append(out, s)
		}
	}
	return out
}

// TestQueryTraceFormsSingleTree pins the tentpole contract: a limit-10
// streaming query over a 3-listener cluster records exactly one
// connected span tree — every QROUTE leg and every walker phase span,
// on whichever host it ran, carries the client root's trace id and
// parents back to it with no orphans.
func TestQueryTraceFormsSingleTree(t *testing.T) {
	c, rec, _ := startTracedTCP(t, 3)
	corpus := workload.GridCorpus(80)
	for _, k := range corpus {
		if err := c.Register(k, "ep:"+string(k)); err != nil {
			t.Fatal(err)
		}
	}

	began := time.Now()
	ws, err := c.StreamQuery(context.Background(), core.QuerySpec{
		Prefix: corpus[0][:1], Limit: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		if _, ok := ws.Next(); !ok {
			break
		}
		got++
	}
	if err := ws.Err(); err != nil {
		t.Fatal(err)
	}
	ws.Close()
	elapsed := time.Since(began)
	if got == 0 || got > 10 {
		t.Fatalf("limit-10 query yielded %d keys", got)
	}

	// Exactly one root span with phase "query" exists, and it owns the
	// whole trace.
	var roots []trace.Span
	for _, s := range rec.Spans() {
		if s.Phase == "query" && s.Parent == 0 {
			roots = append(roots, s)
		}
	}
	if len(roots) != 1 {
		t.Fatalf("got %d query roots, want 1", len(roots))
	}
	root := roots[0]
	spans := spansOf(rec, root.Trace)
	if len(spans) < 2 {
		t.Fatalf("trace %x retained only %d spans; hops were not traced", root.Trace, len(spans))
	}
	// Every span in the trace parents back to the root: the parent
	// chain never leaves the trace and never dangles.
	byID := make(map[uint64]trace.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	sawWalk := false
	for _, s := range spans {
		if s.Phase == obs.PhaseWalk {
			sawWalk = true
		}
		cur := s
		for hops := 0; cur.Parent != 0; hops++ {
			p, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("span %x (phase %s) has parent %x outside the trace", cur.ID, cur.Phase, cur.Parent)
			}
			if hops > len(spans) {
				t.Fatal("parent cycle in span tree")
			}
			cur = p
		}
		if cur.ID != root.ID {
			t.Fatalf("span %x (phase %s) roots at %x, not the query root", s.ID, s.Phase, cur.ID)
		}
	}
	if !sawWalk {
		t.Fatal("no walk-phase span in the query trace")
	}

	// The reassembled forest agrees: one tree for this trace, no
	// orphan promotion.
	treeRoots := 0
	for _, n := range rec.Trees() {
		if n.Trace != root.Trace {
			continue
		}
		treeRoots++
		if n.Orphan {
			t.Fatalf("query trace root is an orphan: %+v", n.Span)
		}
	}
	if treeRoots != 1 {
		t.Fatalf("trace %x reassembled into %d trees, want 1", root.Trace, treeRoots)
	}

	// The walker's phase spans are disjoint slices of one traversal:
	// their durations sum within the measured query latency.
	var phaseSum time.Duration
	for _, s := range spans {
		switch s.Phase {
		case obs.PhaseClimb, obs.PhaseDescend, obs.PhaseWalk:
			phaseSum += s.Duration
		}
	}
	if phaseSum > elapsed {
		t.Fatalf("phase durations sum to %v, exceeding measured latency %v", phaseSum, elapsed)
	}
	if root.Duration > elapsed {
		t.Fatalf("root span %v longer than wall clock %v", root.Duration, elapsed)
	}
}

// TestDiscoverTraceCrossesHosts pins the discovery half: relay legs
// recorded by the serving listeners join the client root's trace.
func TestDiscoverTraceCrossesHosts(t *testing.T) {
	c, rec, _ := startTracedTCP(t, 3)
	corpus := workload.GridCorpus(60)
	for _, k := range corpus {
		if err := c.Register(k, string(k)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Discover(corpus[7])
	if err != nil || !res.Found {
		t.Fatalf("discover: %v found=%v", err, res.Found)
	}
	var root trace.Span
	for _, s := range rec.Spans() {
		if s.Phase == obs.PhaseDiscover && s.Parent == 0 {
			root = s
		}
	}
	if root.ID == 0 {
		t.Fatal("no discover root span recorded")
	}
	spans := spansOf(rec, root.Trace)
	relays := 0
	for _, s := range spans {
		if s.Phase == obs.PhaseRelay {
			relays++
		}
	}
	if relays < 1 {
		t.Fatalf("discover trace has no relay spans (spans: %d)", len(spans))
	}
	for _, n := range rec.Trees() {
		if n.Trace == root.Trace && n.Orphan {
			t.Fatalf("orphan span in discover trace: %+v", n.Span)
		}
	}
}

// TestUntracedFrameCompat pins wire compatibility in both directions:
// a frame without the trace extension (an untraced peer) decodes
// exactly as before the extension existed, a flagged frame carries its
// context, and an invalid context degrades to the plain format.
func TestUntracedFrameCompat(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	cfc := newFrameConn(client)
	sfc := newFrameConn(server)

	payload := []byte("legacy-payload")
	roundTrip := func(write func() error) (byte, uint64, trace.Context, []byte) {
		t.Helper()
		errc := make(chan error, 1)
		go func() { errc <- write() }()
		typ, id, tc, p, err := sfc.readFrame()
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if err := <-errc; err != nil {
			t.Fatalf("write: %v", err)
		}
		return typ, id, tc, append([]byte(nil), p...)
	}

	// Untraced peer: plain frame, no extension.
	typ, id, tc, p := roundTrip(func() error {
		return cfc.finishFrame(append(beginFrame(nil, frameRequest, 7), payload...))
	})
	if typ != frameRequest || id != 7 || tc.Valid() || string(p) != string(payload) {
		t.Fatalf("plain frame: typ=%d id=%d tc=%+v payload=%q", typ, id, tc, p)
	}

	// Traced frame: flag set on the wire, context recovered, payload
	// intact after the 16-byte prefix is stripped.
	want := trace.Context{Trace: 0xdeadbeef, Span: 0x1234}
	typ, id, tc, p = roundTrip(func() error {
		return cfc.finishFrame(append(beginTracedFrame(nil, frameQRoute, 9, want), payload...))
	})
	if typ != frameQRoute || id != 9 || tc != want || string(p) != string(payload) {
		t.Fatalf("traced frame: typ=%d id=%d tc=%+v payload=%q", typ, id, tc, p)
	}

	// An invalid context degrades to the plain, pre-extension format —
	// byte-identical, so untraced receivers never see the flag.
	plain := append(beginFrame(nil, frameQuery, 3), payload...)
	degraded := append(beginTracedFrame(nil, frameQuery, 3, trace.Context{}), payload...)
	if string(plain) != string(degraded) {
		t.Fatalf("zero-context traced frame differs from plain frame:\n%x\n%x", plain, degraded)
	}

	// A flagged frame that is too short for its context is a protocol
	// violation, not a silent misparse.
	go func() {
		buf := beginFrame(nil, frameRequest|frameTraceFlag, 1)
		buf = append(buf, 1, 2, 3) // 3 bytes < frameTraceSize
		_ = cfc.finishFrame(buf)
	}()
	if _, _, _, _, err := sfc.readFrame(); err == nil {
		t.Fatal("truncated trace context decoded without error")
	}
}
