package transport

import (
	"testing"

	"dlpt/internal/leakcheck"
)

// TestMain fails the binary if transport goroutines (peer servers,
// connection demuxers, pooled dials) outlive the tests: Cluster.Stop
// must join everything it started.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
