// Fault injection for the frame path. Tests hand a *Faults to
// Options.Faults and the cluster consults it on every outbound frame:
// partitions fail every send (and dial) toward an address, and typed
// rules drop, delay or duplicate control frames — the knobs the
// steward-failover suite uses to provoke lost APPLY broadcasts,
// election races and a fenced old steward deterministically, without
// killing processes. All scheduling is countdown-based and any
// randomness draws from the seeded rng, so a given seed replays the
// same fault sequence. A nil *Faults injects nothing and costs one
// nil check per send.

package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjectedDrop is the transport error a sender observes when a
// fault rule drops its frame: from the caller's perspective the frame
// was lost exactly like a broken connection would lose it.
var ErrInjectedDrop = fmt.Errorf("transport: frame dropped by fault injection")

// ErrPartitioned is the transport error for sends toward an address
// the fault plan has partitioned away.
var ErrPartitioned = fmt.Errorf("transport: address partitioned by fault injection")

// FaultRule matches outbound control frames and describes what to do
// with them. Zero match fields are wildcards: Type 0 matches every
// control frame type, empty Addr every destination. Count bounds how
// many frames the rule affects (<= 0 means unlimited); the rule
// expires after its count is consumed.
type FaultRule struct {
	Type  byte   // control frame type to match; 0 = any
	Addr  string // destination address to match; "" = any
	Count int    // matches before the rule expires; <= 0 = unlimited

	Drop   bool          // fail the send with ErrInjectedDrop
	Dup    bool          // write the frame twice (receiver sees it twice)
	Delay  time.Duration // sleep before the send
	Jitter float64       // relative spread on Delay (0.2 = ±20%), seeded
}

// Faults is a deterministic fault plan shared by a cluster's outbound
// frame paths. Safe for concurrent use.
type Faults struct {
	mu          sync.Mutex
	rng         *rand.Rand
	partitioned map[string]bool
	rules       []*FaultRule
}

// NewFaults builds an empty fault plan whose delay jitter draws from
// seed.
func NewFaults(seed int64) *Faults {
	return &Faults{
		rng:         rand.New(rand.NewSource(seed)),
		partitioned: make(map[string]bool),
	}
}

// Inject installs one rule. Rules are matched in insertion order; the
// first match decides the frame's fate.
func (f *Faults) Inject(rule FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := rule
	f.rules = append(f.rules, &r)
}

// Partition cuts every outbound frame and dial toward addrs until
// Heal. (Each side of a link owns its own Faults, so a symmetric
// partition is two Partition calls, one per cluster.)
func (f *Faults) Partition(addrs ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, a := range addrs {
		f.partitioned[a] = true
	}
}

// Heal lifts the partition toward addrs.
func (f *Faults) Heal(addrs ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, a := range addrs {
		delete(f.partitioned, a)
	}
}

// Clear removes every rule and partition.
func (f *Faults) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
	f.partitioned = make(map[string]bool)
}

// isPartitioned reports whether sends toward addr are cut. Nil-safe.
func (f *Faults) isPartitioned(addr string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.partitioned[addr]
}

// faultAction is one matched rule's decision for a frame.
type faultAction struct {
	drop  bool
	dup   bool
	delay time.Duration
}

// onSend decides the fate of one outbound control frame. It consumes
// rule counts, computes the (jittered) delay, and reports partition
// or drop as an error. Nil-safe.
func (f *Faults) onSend(typ byte, addr string) (faultAction, error) {
	var act faultAction
	if f == nil {
		return act, nil
	}
	f.mu.Lock()
	if f.partitioned[addr] {
		f.mu.Unlock()
		return act, fmt.Errorf("%w: %s", ErrPartitioned, addr)
	}
	var hit *FaultRule
	for i, r := range f.rules {
		if (r.Type == 0 || r.Type == typ) && (r.Addr == "" || r.Addr == addr) {
			hit = r
			if r.Count > 0 {
				r.Count--
				if r.Count == 0 {
					f.rules = append(f.rules[:i:i], f.rules[i+1:]...)
				}
			}
			break
		}
	}
	if hit != nil {
		act.drop, act.dup, act.delay = hit.Drop, hit.Dup, hit.Delay
		if act.delay > 0 && hit.Jitter > 0 {
			spread := 1 + hit.Jitter*(2*f.rng.Float64()-1)
			act.delay = time.Duration(float64(act.delay) * spread)
		}
	}
	f.mu.Unlock()
	if act.drop {
		return act, fmt.Errorf("%w: frame %d to %s", ErrInjectedDrop, typ, addr)
	}
	return act, nil
}
