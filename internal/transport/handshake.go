// The daemon handshake payloads: JOIN/HELLO negotiate a remote
// process into the overlay, LEAVE announces a graceful departure, and
// APPLY replicates one serialized overlay mutation to a member's
// full-state mirror. The transport frames and round-trips these
// (Options.Control on the server side, ControlRoundTrip and RawCall
// on the client side) but does not act on them — internal/daemon owns
// the protocol. Payloads use the same hand-rolled varint codecs as
// the routing frames; the handshake is explicitly versioned so
// incompatible daemons reject each other instead of corrupting a
// shared overlay.

package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"dlpt/internal/keys"
	"dlpt/internal/persist"
)

// HandshakeVersion is the JOIN/HELLO protocol revision. A joiner and
// its bootstrap peer must agree exactly: the APPLY mutation stream
// only keeps mirrors convergent when both sides interpret it the
// same way.
const HandshakeVersion = 1

// Exported frame-type aliases for control round-trips: the daemon
// package addresses its frames with these, and a control handler
// returns one of the *Resp/Ack types.
const (
	FrameJoin       = frameJoin
	FrameHello      = frameHello
	FrameLeave      = frameLeave
	FrameApply      = frameApply
	FrameStatus     = frameStatus
	FrameStatusResp = frameStatusResp
	FrameAdmin      = frameAdmin
	FrameAdminResp  = frameAdminResp
	// FrameAck acknowledges a LEAVE or APPLY (a plain RESPONSE frame
	// carrying only an error string; see EncodeAck).
	FrameAck = frameResponse
)

// Overlay mutation opcodes carried by ApplyRecord. Every mutation the
// steward serializes is one of these; members replay them against
// their mirrors in sequence order.
const (
	OpRegister   = byte(1)
	OpUnregister = byte(2)
	OpJoin       = byte(3)
	OpLeave      = byte(4)
	OpCrash      = byte(5)
	OpRecover    = byte(6)
	OpReplicate  = byte(7)
)

// JoinRequest asks a bootstrap daemon to admit the sender into the
// overlay. Addr is the advertised address of the listener the joiner
// has already bound — placement assigns the ring id, the listener
// address is the joiner's to declare.
type JoinRequest struct {
	Version   int
	Alphabet  string // digit string; must match the overlay's exactly
	Placement string // join-placement policy name; must match
	Addr      string
	Capacity  int
}

// Member is one daemon-hosted peer in the overlay's member table.
type Member struct {
	ID       keys.Key
	Addr     string
	Capacity int
}

// HelloInfo answers a JoinRequest. A rejection carries only Err (and
// StewardAddr when the refusing daemon is a member redirecting the
// joiner to the steward). An admission carries the assigned ring id,
// the member table, the mutation sequence number the snapshot is
// consistent with, and the full overlay state the joiner installs as
// its mirror.
type HelloInfo struct {
	Version     int
	Err         string
	StewardAddr string
	Alphabet    string
	Placement   string
	AssignedID  keys.Key
	Seq         uint64
	Members     []Member
	Peers       []persist.PeerState
	Nodes       []persist.NodeState
}

// LeaveNotice announces a graceful departure: the steward hands the
// peer's tree nodes off (RemovePeer) and broadcasts the departure.
type LeaveNotice struct {
	ID   keys.Key
	Addr string
}

// ApplyRecord is one serialized overlay mutation. The steward assigns
// Seq and broadcasts the record to every member; a member receiving a
// record out of sequence must refuse it (its mirror would diverge).
// A record sent by a member to the steward with Seq == 0 is an
// origination request: the steward serializes it, assigns the
// sequence number and broadcasts it back out.
type ApplyRecord struct {
	Seq      uint64
	Op       byte
	Key      keys.Key // Register/Unregister: catalogue key
	Value    string   // Register/Unregister: value
	ID       keys.Key // Join/Leave/Crash: peer ring id
	Capacity int      // Join: peer capacity
	Addr     string   // Join: advertised listener address
}

// EncodeJoin marshals a JoinRequest payload.
func EncodeJoin(jr *JoinRequest) []byte {
	b := binary.AppendUvarint(nil, uint64(jr.Version))
	b = appendString(b, jr.Alphabet)
	b = appendString(b, jr.Placement)
	b = appendString(b, jr.Addr)
	return binary.AppendUvarint(b, uint64(jr.Capacity))
}

// DecodeJoin unmarshals a JoinRequest payload.
func DecodeJoin(p []byte) (*JoinRequest, error) {
	var jr JoinRequest
	var err error
	var v uint64
	if v, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("join version: %w", err)
	}
	jr.Version = int(v)
	if jr.Alphabet, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("join alphabet: %w", err)
	}
	if jr.Placement, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("join placement: %w", err)
	}
	if jr.Addr, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("join addr: %w", err)
	}
	if v, _, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("join capacity: %w", err)
	}
	jr.Capacity = int(v)
	return &jr, nil
}

// EncodeHello marshals a HelloInfo payload.
func EncodeHello(h *HelloInfo) []byte {
	b := binary.AppendUvarint(nil, uint64(h.Version))
	b = appendString(b, h.Err)
	b = appendString(b, h.StewardAddr)
	b = appendString(b, h.Alphabet)
	b = appendString(b, h.Placement)
	b = appendString(b, string(h.AssignedID))
	b = binary.AppendUvarint(b, h.Seq)
	b = binary.AppendUvarint(b, uint64(len(h.Members)))
	for _, m := range h.Members {
		b = appendString(b, string(m.ID))
		b = appendString(b, m.Addr)
		b = binary.AppendUvarint(b, uint64(m.Capacity))
	}
	b = binary.AppendUvarint(b, uint64(len(h.Peers)))
	for _, ps := range h.Peers {
		b = appendString(b, ps.ID)
		b = binary.AppendUvarint(b, uint64(ps.Capacity))
	}
	b = binary.AppendUvarint(b, uint64(len(h.Nodes)))
	for _, ns := range h.Nodes {
		b = appendString(b, ns.Key)
		b = binary.AppendUvarint(b, uint64(len(ns.Values)))
		for _, v := range ns.Values {
			b = appendString(b, v)
		}
	}
	return b
}

// DecodeHello unmarshals a HelloInfo payload.
func DecodeHello(p []byte) (*HelloInfo, error) {
	var h HelloInfo
	var err error
	var s string
	var v uint64
	if v, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("hello version: %w", err)
	}
	h.Version = int(v)
	if h.Err, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("hello err: %w", err)
	}
	if h.StewardAddr, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("hello steward: %w", err)
	}
	if h.Alphabet, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("hello alphabet: %w", err)
	}
	if h.Placement, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("hello placement: %w", err)
	}
	if s, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("hello assigned id: %w", err)
	}
	h.AssignedID = keys.Key(s)
	if h.Seq, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("hello seq: %w", err)
	}
	if v, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("hello member count: %w", err)
	}
	if v > uint64(len(p)) {
		return nil, errors.New("transport: implausible member count")
	}
	h.Members = make([]Member, 0, v)
	for i := uint64(0); i < v; i++ {
		var m Member
		var c uint64
		if s, p, err = getString(p); err != nil {
			return nil, fmt.Errorf("hello member %d id: %w", i, err)
		}
		m.ID = keys.Key(s)
		if m.Addr, p, err = getString(p); err != nil {
			return nil, fmt.Errorf("hello member %d addr: %w", i, err)
		}
		if c, p, err = getUvarint(p); err != nil {
			return nil, fmt.Errorf("hello member %d capacity: %w", i, err)
		}
		m.Capacity = int(c)
		h.Members = append(h.Members, m)
	}
	if v, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("hello peer count: %w", err)
	}
	if v > uint64(len(p)) {
		return nil, errors.New("transport: implausible peer count")
	}
	h.Peers = make([]persist.PeerState, 0, v)
	for i := uint64(0); i < v; i++ {
		var ps persist.PeerState
		var c uint64
		if ps.ID, p, err = getString(p); err != nil {
			return nil, fmt.Errorf("hello peer %d id: %w", i, err)
		}
		if c, p, err = getUvarint(p); err != nil {
			return nil, fmt.Errorf("hello peer %d capacity: %w", i, err)
		}
		ps.Capacity = int(c)
		h.Peers = append(h.Peers, ps)
	}
	if v, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("hello node count: %w", err)
	}
	if v > uint64(len(p)) {
		return nil, errors.New("transport: implausible node count")
	}
	h.Nodes = make([]persist.NodeState, 0, v)
	for i := uint64(0); i < v; i++ {
		var ns persist.NodeState
		var m uint64
		if ns.Key, p, err = getString(p); err != nil {
			return nil, fmt.Errorf("hello node %d key: %w", i, err)
		}
		if m, p, err = getUvarint(p); err != nil {
			return nil, fmt.Errorf("hello node %d value count: %w", i, err)
		}
		if m > uint64(len(p)) {
			return nil, errors.New("transport: implausible value count")
		}
		for j := uint64(0); j < m; j++ {
			if s, p, err = getString(p); err != nil {
				return nil, fmt.Errorf("hello node %d value %d: %w", i, j, err)
			}
			ns.Values = append(ns.Values, s)
		}
		h.Nodes = append(h.Nodes, ns)
	}
	return &h, nil
}

// EncodeLeave marshals a LeaveNotice payload.
func EncodeLeave(ln *LeaveNotice) []byte {
	b := appendString(nil, string(ln.ID))
	return appendString(b, ln.Addr)
}

// DecodeLeave unmarshals a LeaveNotice payload.
func DecodeLeave(p []byte) (*LeaveNotice, error) {
	var ln LeaveNotice
	var err error
	var s string
	if s, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("leave id: %w", err)
	}
	ln.ID = keys.Key(s)
	if ln.Addr, _, err = getString(p); err != nil {
		return nil, fmt.Errorf("leave addr: %w", err)
	}
	return &ln, nil
}

// EncodeApply marshals an ApplyRecord payload.
func EncodeApply(rec *ApplyRecord) []byte {
	b := binary.AppendUvarint(nil, rec.Seq)
	b = append(b, rec.Op)
	b = appendString(b, string(rec.Key))
	b = appendString(b, rec.Value)
	b = appendString(b, string(rec.ID))
	b = binary.AppendUvarint(b, uint64(rec.Capacity))
	return appendString(b, rec.Addr)
}

// DecodeApply unmarshals an ApplyRecord payload.
func DecodeApply(p []byte) (*ApplyRecord, error) {
	var rec ApplyRecord
	var err error
	var s string
	var v uint64
	if rec.Seq, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("apply seq: %w", err)
	}
	if len(p) < 1 {
		return nil, errors.New("apply op: truncated")
	}
	rec.Op, p = p[0], p[1:]
	if s, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("apply key: %w", err)
	}
	rec.Key = keys.Key(s)
	if rec.Value, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("apply value: %w", err)
	}
	if s, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("apply id: %w", err)
	}
	rec.ID = keys.Key(s)
	if v, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("apply capacity: %w", err)
	}
	rec.Capacity = int(v)
	if rec.Addr, _, err = getString(p); err != nil {
		return nil, fmt.Errorf("apply addr: %w", err)
	}
	return &rec, nil
}

// RawCall dials addr, sends one control frame and waits for its
// reply — the connectionless client path for admin tools (dlptd
// status, dlptd op) that have no cluster of their own. The context
// deadline bounds the whole call; without one, a 10s default applies
// so a hung daemon cannot wedge the tool.
func RawCall(ctx context.Context, addr string, typ byte, payload []byte) (byte, []byte, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return 0, nil, err
	}
	defer conn.Close()
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Now().Add(10 * time.Second)
	}
	_ = conn.SetDeadline(deadline)
	fc := newFrameConn(conn)
	const callID = 1
	if err := fc.writeRaw(typ, callID, payload); err != nil {
		return 0, nil, err
	}
	for {
		rtyp, id, _, p, err := fc.readFrame()
		if err != nil {
			return 0, nil, err
		}
		if id != callID {
			continue
		}
		return rtyp, append([]byte(nil), p...), nil
	}
}

// EncodeAck marshals a LEAVE/APPLY acknowledgement (a RESPONSE frame
// carrying only an error string; empty means success).
func EncodeAck(errStr string) []byte {
	resp := response{Err: errStr}
	return appendResponse(nil, &resp)
}

// DecodeAck unmarshals an acknowledgement, returning its in-band
// error string.
func DecodeAck(p []byte) (string, error) {
	var resp response
	if err := decodeResponse(p, &resp); err != nil {
		return "", err
	}
	return resp.Err, nil
}
