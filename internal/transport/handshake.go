// The daemon handshake payloads: JOIN/HELLO negotiate a remote
// process into the overlay, LEAVE announces a graceful departure, and
// APPLY replicates one serialized overlay mutation to a member's
// full-state mirror. The transport frames and round-trips these
// (Options.Control on the server side, ControlRoundTrip and RawCall
// on the client side) but does not act on them — internal/daemon owns
// the protocol. Payloads use the same hand-rolled varint codecs as
// the routing frames; the handshake is explicitly versioned so
// incompatible daemons reject each other instead of corrupting a
// shared overlay.

package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"dlpt/internal/keys"
	"dlpt/internal/persist"
)

// HandshakeVersion is the JOIN/HELLO protocol revision. A joiner and
// its bootstrap peer must agree exactly: the APPLY mutation stream
// only keeps mirrors convergent when both sides interpret it the
// same way. Revision 2 added the steward epoch to HELLO, LEAVE and
// APPLY and the ELECT/EPOCH_OPEN/RESYNC/FETCH failover frames.
const HandshakeVersion = 2

// Exported frame-type aliases for control round-trips: the daemon
// package addresses its frames with these, and a control handler
// returns one of the *Resp/Ack types.
const (
	FrameJoin       = frameJoin
	FrameHello      = frameHello
	FrameLeave      = frameLeave
	FrameApply      = frameApply
	FrameStatus     = frameStatus
	FrameStatusResp = frameStatusResp
	FrameAdmin      = frameAdmin
	FrameAdminResp  = frameAdminResp
	// The failover control plane (see frame.go for semantics).
	FrameElect         = frameElect
	FrameElectResp     = frameElectResp
	FrameEpochOpen     = frameEpochOpen
	FrameEpochOpenResp = frameEpochOpenResp
	FrameResync        = frameResync
	FrameFetch         = frameFetch
	FrameFetchResp     = frameFetchResp
	// FrameAck acknowledges a LEAVE, APPLY or RESYNC (a plain RESPONSE
	// frame carrying only an error string; see EncodeAck).
	FrameAck = frameResponse
)

// Overlay mutation opcodes carried by ApplyRecord. Every mutation the
// steward serializes is one of these; members replay them against
// their mirrors in sequence order.
const (
	OpRegister   = byte(1)
	OpUnregister = byte(2)
	OpJoin       = byte(3)
	OpLeave      = byte(4)
	OpCrash      = byte(5)
	OpRecover    = byte(6)
	OpReplicate  = byte(7)
)

// JoinRequest asks a bootstrap daemon to admit the sender into the
// overlay. Addr is the advertised address of the listener the joiner
// has already bound — placement assigns the ring id, the listener
// address is the joiner's to declare.
type JoinRequest struct {
	Version   int
	Alphabet  string // digit string; must match the overlay's exactly
	Placement string // join-placement policy name; must match
	Addr      string
	Capacity  int
}

// Member is one daemon-hosted peer in the overlay's member table.
type Member struct {
	ID       keys.Key
	Addr     string
	Capacity int
}

// HelloInfo answers a JoinRequest. A rejection carries only Err (and
// StewardAddr when the refusing daemon is a member redirecting the
// joiner to the steward). An admission carries the assigned ring id,
// the member table, the mutation sequence number the snapshot is
// consistent with, and the full overlay state the joiner installs as
// its mirror.
type HelloInfo struct {
	Version     int
	Err         string
	StewardAddr string
	Alphabet    string
	Placement   string
	AssignedID  keys.Key
	Seq         uint64
	Epoch       uint64
	Members     []Member
	Peers       []persist.PeerState
	Nodes       []persist.NodeState
}

// LeaveNotice announces a graceful departure: the steward hands the
// peer's tree nodes off (RemovePeer) and broadcasts the departure.
// Epoch is the epoch the departing member last honored; a steward
// refuses notices fenced behind its own epoch.
type LeaveNotice struct {
	ID    keys.Key
	Addr  string
	Epoch uint64
}

// ApplyRecord is one serialized overlay mutation. The steward assigns
// Seq and broadcasts the record to every member; a member receiving a
// record out of sequence must refuse it (its mirror would diverge).
// A record sent by a member to the steward with Seq == 0 is an
// origination request: the steward serializes it, assigns the
// sequence number and broadcasts it back out. Epoch fences the
// stream: a receiver refuses records stamped with an epoch older
// than the one it honors, so a deposed steward's late broadcasts
// bounce instead of splitting the brain.
type ApplyRecord struct {
	Seq      uint64
	Epoch    uint64
	Op       byte
	Key      keys.Key // Register/Unregister: catalogue key
	Value    string   // Register/Unregister: value
	ID       keys.Key // Join/Leave/Crash: peer ring id
	Capacity int      // Join: peer capacity
	Addr     string   // Join: advertised listener address
}

// EncodeJoin marshals a JoinRequest payload.
func EncodeJoin(jr *JoinRequest) []byte {
	b := binary.AppendUvarint(nil, uint64(jr.Version))
	b = appendString(b, jr.Alphabet)
	b = appendString(b, jr.Placement)
	b = appendString(b, jr.Addr)
	return binary.AppendUvarint(b, uint64(jr.Capacity))
}

// DecodeJoin unmarshals a JoinRequest payload.
func DecodeJoin(p []byte) (*JoinRequest, error) {
	var jr JoinRequest
	var err error
	var v uint64
	if v, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("join version: %w", err)
	}
	jr.Version = int(v)
	if jr.Alphabet, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("join alphabet: %w", err)
	}
	if jr.Placement, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("join placement: %w", err)
	}
	if jr.Addr, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("join addr: %w", err)
	}
	if v, _, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("join capacity: %w", err)
	}
	jr.Capacity = int(v)
	return &jr, nil
}

// EncodeHello marshals a HelloInfo payload.
func EncodeHello(h *HelloInfo) []byte {
	b := binary.AppendUvarint(nil, uint64(h.Version))
	b = appendString(b, h.Err)
	b = appendString(b, h.StewardAddr)
	b = appendString(b, h.Alphabet)
	b = appendString(b, h.Placement)
	b = appendString(b, string(h.AssignedID))
	b = binary.AppendUvarint(b, h.Seq)
	b = binary.AppendUvarint(b, h.Epoch)
	b = appendMembers(b, h.Members)
	b = appendPeerStates(b, h.Peers)
	return appendNodeStates(b, h.Nodes)
}

// appendMembers encodes a count-prefixed member table.
func appendMembers(b []byte, ms []Member) []byte {
	b = binary.AppendUvarint(b, uint64(len(ms)))
	for _, m := range ms {
		b = appendString(b, string(m.ID))
		b = appendString(b, m.Addr)
		b = binary.AppendUvarint(b, uint64(m.Capacity))
	}
	return b
}

// getMembers decodes a count-prefixed member table.
func getMembers(p []byte) ([]Member, []byte, error) {
	v, p, err := getUvarint(p)
	if err != nil {
		return nil, nil, fmt.Errorf("member count: %w", err)
	}
	if v > uint64(len(p)) {
		return nil, nil, errors.New("transport: implausible member count")
	}
	ms := make([]Member, 0, v)
	for i := uint64(0); i < v; i++ {
		var m Member
		var s string
		var c uint64
		if s, p, err = getString(p); err != nil {
			return nil, nil, fmt.Errorf("member %d id: %w", i, err)
		}
		m.ID = keys.Key(s)
		if m.Addr, p, err = getString(p); err != nil {
			return nil, nil, fmt.Errorf("member %d addr: %w", i, err)
		}
		if c, p, err = getUvarint(p); err != nil {
			return nil, nil, fmt.Errorf("member %d capacity: %w", i, err)
		}
		m.Capacity = int(c)
		ms = append(ms, m)
	}
	return ms, p, nil
}

// appendPeerStates encodes a count-prefixed overlay peer list.
func appendPeerStates(b []byte, peers []persist.PeerState) []byte {
	b = binary.AppendUvarint(b, uint64(len(peers)))
	for _, ps := range peers {
		b = appendString(b, ps.ID)
		b = binary.AppendUvarint(b, uint64(ps.Capacity))
	}
	return b
}

// getPeerStates decodes a count-prefixed overlay peer list.
func getPeerStates(p []byte) ([]persist.PeerState, []byte, error) {
	v, p, err := getUvarint(p)
	if err != nil {
		return nil, nil, fmt.Errorf("peer count: %w", err)
	}
	if v > uint64(len(p)) {
		return nil, nil, errors.New("transport: implausible peer count")
	}
	peers := make([]persist.PeerState, 0, v)
	for i := uint64(0); i < v; i++ {
		var ps persist.PeerState
		var c uint64
		if ps.ID, p, err = getString(p); err != nil {
			return nil, nil, fmt.Errorf("peer %d id: %w", i, err)
		}
		if c, p, err = getUvarint(p); err != nil {
			return nil, nil, fmt.Errorf("peer %d capacity: %w", i, err)
		}
		ps.Capacity = int(c)
		peers = append(peers, ps)
	}
	return peers, p, nil
}

// appendNodeStates encodes a count-prefixed catalogue node list.
func appendNodeStates(b []byte, nodes []persist.NodeState) []byte {
	b = binary.AppendUvarint(b, uint64(len(nodes)))
	for _, ns := range nodes {
		b = appendString(b, ns.Key)
		b = binary.AppendUvarint(b, uint64(len(ns.Values)))
		for _, v := range ns.Values {
			b = appendString(b, v)
		}
	}
	return b
}

// getNodeStates decodes a count-prefixed catalogue node list.
func getNodeStates(p []byte) ([]persist.NodeState, []byte, error) {
	v, p, err := getUvarint(p)
	if err != nil {
		return nil, nil, fmt.Errorf("node count: %w", err)
	}
	if v > uint64(len(p)) {
		return nil, nil, errors.New("transport: implausible node count")
	}
	nodes := make([]persist.NodeState, 0, v)
	for i := uint64(0); i < v; i++ {
		var ns persist.NodeState
		var m uint64
		var s string
		if ns.Key, p, err = getString(p); err != nil {
			return nil, nil, fmt.Errorf("node %d key: %w", i, err)
		}
		if m, p, err = getUvarint(p); err != nil {
			return nil, nil, fmt.Errorf("node %d value count: %w", i, err)
		}
		if m > uint64(len(p)) {
			return nil, nil, errors.New("transport: implausible value count")
		}
		for j := uint64(0); j < m; j++ {
			if s, p, err = getString(p); err != nil {
				return nil, nil, fmt.Errorf("node %d value %d: %w", i, j, err)
			}
			ns.Values = append(ns.Values, s)
		}
		nodes = append(nodes, ns)
	}
	return nodes, p, nil
}

// DecodeHello unmarshals a HelloInfo payload.
func DecodeHello(p []byte) (*HelloInfo, error) {
	var h HelloInfo
	var err error
	var s string
	var v uint64
	if v, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("hello version: %w", err)
	}
	h.Version = int(v)
	if h.Err, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("hello err: %w", err)
	}
	if h.StewardAddr, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("hello steward: %w", err)
	}
	if h.Alphabet, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("hello alphabet: %w", err)
	}
	if h.Placement, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("hello placement: %w", err)
	}
	if s, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("hello assigned id: %w", err)
	}
	h.AssignedID = keys.Key(s)
	if h.Seq, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("hello seq: %w", err)
	}
	if h.Epoch, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("hello epoch: %w", err)
	}
	if h.Members, p, err = getMembers(p); err != nil {
		return nil, fmt.Errorf("hello: %w", err)
	}
	if h.Peers, p, err = getPeerStates(p); err != nil {
		return nil, fmt.Errorf("hello: %w", err)
	}
	if h.Nodes, _, err = getNodeStates(p); err != nil {
		return nil, fmt.Errorf("hello: %w", err)
	}
	return &h, nil
}

// EncodeLeave marshals a LeaveNotice payload.
func EncodeLeave(ln *LeaveNotice) []byte {
	b := appendString(nil, string(ln.ID))
	b = appendString(b, ln.Addr)
	return binary.AppendUvarint(b, ln.Epoch)
}

// DecodeLeave unmarshals a LeaveNotice payload.
func DecodeLeave(p []byte) (*LeaveNotice, error) {
	var ln LeaveNotice
	var err error
	var s string
	if s, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("leave id: %w", err)
	}
	ln.ID = keys.Key(s)
	if ln.Addr, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("leave addr: %w", err)
	}
	if ln.Epoch, _, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("leave epoch: %w", err)
	}
	return &ln, nil
}

// EncodeApply marshals an ApplyRecord payload.
func EncodeApply(rec *ApplyRecord) []byte {
	b := binary.AppendUvarint(nil, rec.Seq)
	b = binary.AppendUvarint(b, rec.Epoch)
	b = append(b, rec.Op)
	b = appendString(b, string(rec.Key))
	b = appendString(b, rec.Value)
	b = appendString(b, string(rec.ID))
	b = binary.AppendUvarint(b, uint64(rec.Capacity))
	return appendString(b, rec.Addr)
}

// DecodeApply unmarshals an ApplyRecord payload.
func DecodeApply(p []byte) (*ApplyRecord, error) {
	var rec ApplyRecord
	var err error
	var s string
	var v uint64
	if rec.Seq, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("apply seq: %w", err)
	}
	if rec.Epoch, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("apply epoch: %w", err)
	}
	if len(p) < 1 {
		return nil, errors.New("apply op: truncated")
	}
	rec.Op, p = p[0], p[1:]
	if s, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("apply key: %w", err)
	}
	rec.Key = keys.Key(s)
	if rec.Value, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("apply value: %w", err)
	}
	if s, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("apply id: %w", err)
	}
	rec.ID = keys.Key(s)
	if v, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("apply capacity: %w", err)
	}
	rec.Capacity = int(v)
	if rec.Addr, _, err = getString(p); err != nil {
		return nil, fmt.Errorf("apply addr: %w", err)
	}
	return &rec, nil
}

// ElectRequest asks a surviving member to vote for the sender as the
// next steward under the proposed epoch. Seq is the candidate's last
// applied sequence number; voters use it only for observability — the
// winner instead pulls any records it missed from the most advanced
// voter before opening the epoch.
type ElectRequest struct {
	Epoch uint64   // proposed epoch; must exceed the voter's epoch and promise
	ID    keys.Key // candidate's ring id
	Addr  string   // candidate's advertised listener address
	Seq   uint64   // candidate's last applied sequence number
}

// ElectReply is a voter's answer. A grant promises the voter will
// refuse any epoch at or below the proposed one from other candidates.
// Epoch echoes the voter's fencing floor (its max of honored and
// promised epoch) so a refused candidate can re-propose above it;
// Seq is the voter's last applied sequence number so the winner can
// fetch records it never saw; StewardAddr is set when the voter
// refuses because its steward link is still up.
type ElectReply struct {
	Granted     bool
	Epoch       uint64
	Seq         uint64
	StewardAddr string
	Err         string
}

// EpochOpen is the new steward's barrier message: every member adopts
// the epoch and steward address, reports its last applied sequence
// number, and refuses traffic from older epochs from then on. Seq is
// the new steward's sequence number after catch-up — the stream
// position the epoch opens at.
type EpochOpen struct {
	Epoch       uint64
	StewardID   keys.Key
	StewardAddr string
	Seq         uint64
}

// EpochOpenReply reports the member's last applied sequence number so
// the steward can replay the gap (or fall back to a full RESYNC).
type EpochOpenReply struct {
	Seq uint64
	Err string
}

// ResyncState is a full mirror replacement for a member too far
// behind (or ahead of) the new steward to reconcile by replay: the
// member installs the snapshot wholesale, exactly like a fresh HELLO.
type ResyncState struct {
	Epoch       uint64
	Seq         uint64
	StewardAddr string
	Members     []Member
	Peers       []persist.PeerState
	Nodes       []persist.NodeState
}

// FetchRequest asks a member for its applied records from sequence
// number From onward — the election winner's catch-up pull from the
// most advanced voter.
type FetchRequest struct {
	From uint64
}

// FetchReply carries the fetched records in sequence order. An empty
// Err with fewer records than asked means the sender's log no longer
// covers the range.
type FetchReply struct {
	Records []*ApplyRecord
	Err     string
}

// EncodeElect marshals an ElectRequest payload.
func EncodeElect(er *ElectRequest) []byte {
	b := binary.AppendUvarint(nil, er.Epoch)
	b = appendString(b, string(er.ID))
	b = appendString(b, er.Addr)
	return binary.AppendUvarint(b, er.Seq)
}

// DecodeElect unmarshals an ElectRequest payload.
func DecodeElect(p []byte) (*ElectRequest, error) {
	var er ElectRequest
	var err error
	var s string
	if er.Epoch, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("elect epoch: %w", err)
	}
	if s, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("elect id: %w", err)
	}
	er.ID = keys.Key(s)
	if er.Addr, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("elect addr: %w", err)
	}
	if er.Seq, _, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("elect seq: %w", err)
	}
	return &er, nil
}

// EncodeElectReply marshals an ElectReply payload.
func EncodeElectReply(er *ElectReply) []byte {
	b := appendBool(nil, er.Granted)
	b = binary.AppendUvarint(b, er.Epoch)
	b = binary.AppendUvarint(b, er.Seq)
	b = appendString(b, er.StewardAddr)
	return appendString(b, er.Err)
}

// DecodeElectReply unmarshals an ElectReply payload.
func DecodeElectReply(p []byte) (*ElectReply, error) {
	var er ElectReply
	var err error
	if er.Granted, p, err = getBool(p); err != nil {
		return nil, fmt.Errorf("elect reply granted: %w", err)
	}
	if er.Epoch, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("elect reply epoch: %w", err)
	}
	if er.Seq, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("elect reply seq: %w", err)
	}
	if er.StewardAddr, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("elect reply steward: %w", err)
	}
	if er.Err, _, err = getString(p); err != nil {
		return nil, fmt.Errorf("elect reply err: %w", err)
	}
	return &er, nil
}

// EncodeEpochOpen marshals an EpochOpen payload.
func EncodeEpochOpen(eo *EpochOpen) []byte {
	b := binary.AppendUvarint(nil, eo.Epoch)
	b = appendString(b, string(eo.StewardID))
	b = appendString(b, eo.StewardAddr)
	return binary.AppendUvarint(b, eo.Seq)
}

// DecodeEpochOpen unmarshals an EpochOpen payload.
func DecodeEpochOpen(p []byte) (*EpochOpen, error) {
	var eo EpochOpen
	var err error
	var s string
	if eo.Epoch, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("epoch open epoch: %w", err)
	}
	if s, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("epoch open steward id: %w", err)
	}
	eo.StewardID = keys.Key(s)
	if eo.StewardAddr, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("epoch open steward addr: %w", err)
	}
	if eo.Seq, _, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("epoch open seq: %w", err)
	}
	return &eo, nil
}

// EncodeEpochOpenReply marshals an EpochOpenReply payload.
func EncodeEpochOpenReply(eo *EpochOpenReply) []byte {
	b := binary.AppendUvarint(nil, eo.Seq)
	return appendString(b, eo.Err)
}

// DecodeEpochOpenReply unmarshals an EpochOpenReply payload.
func DecodeEpochOpenReply(p []byte) (*EpochOpenReply, error) {
	var eo EpochOpenReply
	var err error
	if eo.Seq, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("epoch open reply seq: %w", err)
	}
	if eo.Err, _, err = getString(p); err != nil {
		return nil, fmt.Errorf("epoch open reply err: %w", err)
	}
	return &eo, nil
}

// EncodeResync marshals a ResyncState payload.
func EncodeResync(rs *ResyncState) []byte {
	b := binary.AppendUvarint(nil, rs.Epoch)
	b = binary.AppendUvarint(b, rs.Seq)
	b = appendString(b, rs.StewardAddr)
	b = appendMembers(b, rs.Members)
	b = appendPeerStates(b, rs.Peers)
	return appendNodeStates(b, rs.Nodes)
}

// DecodeResync unmarshals a ResyncState payload.
func DecodeResync(p []byte) (*ResyncState, error) {
	var rs ResyncState
	var err error
	if rs.Epoch, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("resync epoch: %w", err)
	}
	if rs.Seq, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("resync seq: %w", err)
	}
	if rs.StewardAddr, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("resync steward: %w", err)
	}
	if rs.Members, p, err = getMembers(p); err != nil {
		return nil, fmt.Errorf("resync: %w", err)
	}
	if rs.Peers, p, err = getPeerStates(p); err != nil {
		return nil, fmt.Errorf("resync: %w", err)
	}
	if rs.Nodes, _, err = getNodeStates(p); err != nil {
		return nil, fmt.Errorf("resync: %w", err)
	}
	return &rs, nil
}

// EncodeFetch marshals a FetchRequest payload.
func EncodeFetch(fr *FetchRequest) []byte {
	return binary.AppendUvarint(nil, fr.From)
}

// DecodeFetch unmarshals a FetchRequest payload.
func DecodeFetch(p []byte) (*FetchRequest, error) {
	var fr FetchRequest
	var err error
	if fr.From, _, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("fetch from: %w", err)
	}
	return &fr, nil
}

// EncodeFetchReply marshals a FetchReply payload. Records nest as
// length-prefixed EncodeApply payloads.
func EncodeFetchReply(fr *FetchReply) []byte {
	b := appendString(nil, fr.Err)
	b = binary.AppendUvarint(b, uint64(len(fr.Records)))
	for _, rec := range fr.Records {
		rb := EncodeApply(rec)
		b = binary.AppendUvarint(b, uint64(len(rb)))
		b = append(b, rb...)
	}
	return b
}

// DecodeFetchReply unmarshals a FetchReply payload.
func DecodeFetchReply(p []byte) (*FetchReply, error) {
	var fr FetchReply
	var err error
	var v uint64
	if fr.Err, p, err = getString(p); err != nil {
		return nil, fmt.Errorf("fetch reply err: %w", err)
	}
	if v, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("fetch reply record count: %w", err)
	}
	if v > uint64(len(p)) {
		return nil, errors.New("transport: implausible record count")
	}
	fr.Records = make([]*ApplyRecord, 0, v)
	for i := uint64(0); i < v; i++ {
		var n uint64
		if n, p, err = getUvarint(p); err != nil {
			return nil, fmt.Errorf("fetch reply record %d len: %w", i, err)
		}
		if n > uint64(len(p)) {
			return nil, errors.New("transport: truncated fetch record")
		}
		rec, err := DecodeApply(p[:n])
		if err != nil {
			return nil, fmt.Errorf("fetch reply record %d: %w", i, err)
		}
		p = p[n:]
		fr.Records = append(fr.Records, rec)
	}
	return &fr, nil
}

// RawCall dials addr, sends one control frame and waits for its
// reply — the connectionless client path for admin tools (dlptd
// status, dlptd op) that have no cluster of their own. The context
// deadline bounds the whole call; without one, a 10s default applies
// so a hung daemon cannot wedge the tool.
func RawCall(ctx context.Context, addr string, typ byte, payload []byte) (byte, []byte, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return 0, nil, err
	}
	defer conn.Close()
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Now().Add(10 * time.Second) //dlptlint:ignore determinism I/O deadline, not a wire value
	}
	_ = conn.SetDeadline(deadline)
	fc := newFrameConn(conn)
	const callID = 1
	if err := fc.writeRaw(typ, callID, payload); err != nil {
		return 0, nil, err
	}
	for {
		rtyp, id, _, p, err := fc.readFrame()
		if err != nil {
			return 0, nil, err
		}
		if id != callID {
			continue
		}
		return rtyp, append([]byte(nil), p...), nil
	}
}

// EncodeAck marshals a LEAVE/APPLY acknowledgement (a RESPONSE frame
// carrying only an error string; empty means success).
func EncodeAck(errStr string) []byte {
	resp := response{Err: errStr}
	return appendResponse(nil, &resp)
}

// DecodeAck unmarshals an acknowledgement, returning its in-band
// error string.
func DecodeAck(p []byte) (string, error) {
	var resp response
	if err := decodeResponse(p, &resp); err != nil {
		return "", err
	}
	return resp.Err, nil
}
