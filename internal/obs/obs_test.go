package obs

import (
	"strings"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	g := r.Gauge("x", "")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	h := r.Histogram("x_seconds", "", nil)
	h.Observe(0.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram holds samples")
	}
	r.ReplaceGauges("x", "", "peer", map[string]float64{"a": 1})
	r.OnScrape(func() { t.Fatal("collector ran on nil registry") })
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatalf("nil WriteText: %v", err)
	}
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Fatalf("nil snapshot has %d series", len(snap))
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("req_total", "requests")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	// Same name+labels returns the same series.
	if r.Counter("req_total", "requests") != c {
		t.Fatal("repeated Counter call returned a different series")
	}
	c.Set(10) // scrape-time mirror overwrite
	if got := c.Value(); got != 10 {
		t.Fatalf("counter after Set = %g, want 10", got)
	}
	g := r.Gauge("depth", "pool depth")
	g.Set(4)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %g, want 3", got)
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hops_total", "", "phase", "climb", "peer", "p1")
	b := r.Counter("hops_total", "", "peer", "p1", "phase", "climb")
	if a != b {
		t.Fatal("label order changed series identity")
	}
	a.Inc()
	snap := r.Snapshot()
	if got := snap.Get(`hops_total{peer="p1",phase="climb"}`); got != 1 {
		t.Fatalf("canonical key lookup = %g, want 1 (snapshot: %v)", got, snap)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", "", "k", "a\\b\"c\nd").Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `weird_total{k="a\\b\"c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaped series line missing; got:\n%s", sb.String())
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 106.05; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	snap := r.Snapshot()
	checks := map[string]float64{
		`lat_seconds_bucket{le="0.1"}`:  1,
		`lat_seconds_bucket{le="1"}`:    3,
		`lat_seconds_bucket{le="10"}`:   4,
		`lat_seconds_bucket{le="+Inf"}`: 5,
		`lat_seconds_count`:             5,
		`lat_seconds_sum`:               106.05,
	}
	for k, want := range checks {
		if got := snap.Get(k); got != want {
			t.Fatalf("%s = %g, want %g", k, got, want)
		}
	}
	// A boundary value lands in its own bucket (le is inclusive).
	h.Observe(0.1)
	if got := r.Snapshot().Get(`lat_seconds_bucket{le="0.1"}`); got != 2 {
		t.Fatalf("boundary observe: le=0.1 bucket = %g, want 2", got)
	}
}

func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("visits_total", "node visits").Add(7)
	r.Gauge("load", "", "peer", "p1").Set(2)
	r.Histogram("hop_seconds", "hop latency", []float64{0.5}).Observe(0.25)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# HELP visits_total node visits\n",
		"# TYPE visits_total counter\n",
		"visits_total 7\n",
		"# TYPE load gauge\n",
		`load{peer="p1"} 2` + "\n",
		"# TYPE hop_seconds histogram\n",
		`hop_seconds_bucket{le="0.5"} 1` + "\n",
		`hop_seconds_bucket{le="+Inf"} 1` + "\n",
		"hop_seconds_sum 0.25\n",
		"hop_seconds_count 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q; got:\n%s", want, text)
		}
	}
	// The gauge family has no HELP (empty help string) but still a TYPE.
	if strings.Contains(text, "# HELP load") {
		t.Fatal("HELP emitted for empty help string")
	}
	// Every non-comment line must be "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestReplaceGaugesDropsStaleSeries(t *testing.T) {
	r := NewRegistry()
	r.ReplaceGauges("visit_load", "per-peer load", "peer", map[string]float64{
		"p1": 5, "p2": 3,
	})
	snap := r.Snapshot()
	if snap.Get(`visit_load{peer="p1"}`) != 5 || snap.Get(`visit_load{peer="p2"}`) != 3 {
		t.Fatalf("initial replace: %v", snap)
	}
	// Balance renamed p2 away; its series must vanish, not linger at 3.
	r.ReplaceGauges("visit_load", "per-peer load", "peer", map[string]float64{
		"p1": 6, "p9": 1,
	})
	snap = r.Snapshot()
	if _, ok := snap[`visit_load{peer="p2"}`]; ok {
		t.Fatal("stale series survived ReplaceGauges")
	}
	if snap.Get(`visit_load{peer="p1"}`) != 6 || snap.Get(`visit_load{peer="p9"}`) != 1 {
		t.Fatalf("after replace: %v", snap)
	}
}

func TestOnScrapeCollectorRuns(t *testing.T) {
	r := NewRegistry()
	mirror := r.Counter("external_total", "mirrored lifetime total")
	ext := 0.0
	r.OnScrape(func() { mirror.Set(ext) })
	ext = 42
	if got := r.Snapshot().Get("external_total"); got != 42 {
		t.Fatalf("snapshot after collector = %g, want 42", got)
	}
	ext = 43
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "external_total 43\n") {
		t.Fatalf("WriteText did not run collector; got:\n%s", sb.String())
	}
}

func TestDefLatencyBuckets(t *testing.T) {
	if len(DefLatencyBuckets) == 0 {
		t.Fatal("no default buckets")
	}
	for i := 1; i < len(DefLatencyBuckets); i++ {
		if DefLatencyBuckets[i] <= DefLatencyBuckets[i-1] {
			t.Fatalf("buckets not ascending at %d: %v", i, DefLatencyBuckets)
		}
	}
	if DefLatencyBuckets[0] != 1e-6 || DefLatencyBuckets[len(DefLatencyBuckets)-1] >= 5 {
		t.Fatalf("bucket range unexpected: %v", DefLatencyBuckets)
	}
}
