package obs

import (
	"encoding/json"
	"net/http"

	"dlpt/internal/trace"
)

// Handler serves the observability surface over HTTP:
//
//	/metrics     — the registry in Prometheus text exposition format
//	/debug/trace — recent span trees as JSON (empty list untraced)
func Handler(reg *Registry, rec *trace.Recorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		trees := rec.Trees()
		if trees == nil {
			trees = []*trace.TreeNode{}
		}
		_ = json.NewEncoder(w).Encode(trees)
	})
	return mux
}
