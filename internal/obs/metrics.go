package obs

import (
	"sync/atomic"
	"time"
)

// Canonical series names. The CI metrics smoke and the bench snapshot
// read these by name, so they are constants rather than literals.
const (
	SeriesVisits            = "dlpt_visits_total"
	SeriesHops              = "dlpt_hops_total"
	SeriesHopLatency        = "dlpt_hop_latency_seconds"
	SeriesQueryLatency      = "dlpt_query_latency_seconds"
	SeriesVisitLoad         = "dlpt_visit_load"
	SeriesPeerNodes         = "dlpt_peer_nodes"
	SeriesSaturationDrops   = "dlpt_saturation_drops_total"
	SeriesPoolConns         = "dlpt_pool_conns"
	SeriesPoolDials         = "dlpt_pool_dials_total"
	SeriesWireBytesIn       = "dlpt_wire_bytes_in_total"
	SeriesWireBytesOut      = "dlpt_wire_bytes_out_total"
	SeriesReplicationLag    = "dlpt_replication_lag_seconds"
	SeriesReplicaSnapshots  = "dlpt_replica_snapshot_msgs_total"
	SeriesReplicaTransfers  = "dlpt_replica_transfer_msgs_total"
	SeriesReplicaMovedNodes = "dlpt_replica_transferred_nodes_total"
	SeriesReplicaBytes      = "dlpt_replica_transfer_bytes_total"
	SeriesTopologyEvents    = "dlpt_topology_events_total"
	SeriesApplySeq          = "dlpt_apply_seq"
	SeriesApplyLag          = "dlpt_apply_lag_seconds"
	SeriesEpoch             = "dlpt_epoch"
	SeriesElections         = "dlpt_elections_total"
	SeriesFailoverDuration  = "dlpt_failover_seconds"
	SeriesSnapshotStall     = "dlpt_snapshot_write_stall_seconds"
	SeriesSnapshotBytes     = "dlpt_snapshot_bytes"
	SeriesSnapshotKeys      = "dlpt_snapshot_keys"
)

// Traversal phase labels.
const (
	PhaseClimb    = "climb"
	PhaseDescend  = "descend"
	PhaseWalk     = "walk"
	PhaseQRoute   = "qroute"
	PhaseRelay    = "relay"
	PhaseDiscover = "discover"
)

var phases = []string{PhaseClimb, PhaseDescend, PhaseWalk, PhaseQRoute, PhaseRelay, PhaseDiscover}

// Metrics pre-registers every series the engines instrument, so the
// hot paths touch pre-resolved atomics instead of the registry's
// maps. A nil *Metrics disables everything it covers.
type Metrics struct {
	Registry *Registry

	Visits *Counter
	Drops  *Counter

	hops   map[string]*Counter
	hopLat map[string]*Histogram

	DiscoverLatency *Histogram
	QueryLatency    *Histogram

	PoolConns    *Gauge
	PoolDials    *Counter
	WireBytesIn  *Counter
	WireBytesOut *Counter

	ReplicaSnapshotMsgs  *Counter
	ReplicaTransferMsgs  *Counter
	ReplicaTransferNodes *Counter
	ReplicaTransferBytes *Counter
	ReplicationLag       *Gauge

	ApplySeq *Gauge
	ApplyLag *Gauge

	Epoch            *Gauge
	FailoverDuration *Histogram

	SnapshotStall *Gauge
	SnapshotBytes *Gauge
	SnapshotKeys  *Gauge

	topo      map[string]*Counter
	elections map[string]*Counter

	// lastReplicate / lastApply are unix-nano stamps the lag gauges
	// derive from at scrape time.
	lastReplicate atomic.Int64
	lastApply     atomic.Int64
}

// NewMetrics registers the full series set on reg and returns the
// pre-resolved bundle.
func NewMetrics(reg *Registry) *Metrics {
	if reg == nil {
		return nil
	}
	m := &Metrics{
		Registry: reg,
		Visits:   reg.Counter(SeriesVisits, "Tree node visits by routed traversals."),
		Drops:    reg.Counter(SeriesSaturationDrops, "Discovery visits dropped by saturated peers."),
		hops:     make(map[string]*Counter, len(phases)),
		hopLat:   make(map[string]*Histogram, len(phases)),
		DiscoverLatency: reg.Histogram(SeriesQueryLatency,
			"End-to-end latency of routed operations.", nil, "op", "discover"),
		QueryLatency: reg.Histogram(SeriesQueryLatency,
			"End-to-end latency of routed operations.", nil, "op", "query"),
		PoolConns:    reg.Gauge(SeriesPoolConns, "Live pooled client connections."),
		PoolDials:    reg.Counter(SeriesPoolDials, "Lifetime TCP dials by the connection pool."),
		WireBytesIn:  reg.Counter(SeriesWireBytesIn, "Frame bytes read off the wire."),
		WireBytesOut: reg.Counter(SeriesWireBytesOut, "Frame bytes written to the wire."),
		ReplicaSnapshotMsgs: reg.Counter(SeriesReplicaSnapshots,
			"Node snapshots shipped to successors by Replicate ticks."),
		ReplicaTransferMsgs: reg.Counter(SeriesReplicaTransfers,
			"Replica-set transfer messages from topology changes."),
		ReplicaTransferNodes: reg.Counter(SeriesReplicaMovedNodes,
			"Replica snapshots moved by topology-change re-homing."),
		ReplicaTransferBytes: reg.Counter(SeriesReplicaBytes,
			"REPLICA frame payload bytes shipped over the wire."),
		ReplicationLag: reg.Gauge(SeriesReplicationLag,
			"Seconds since the last completed replication tick."),
		ApplySeq: reg.Gauge(SeriesApplySeq, "Last applied mutation sequence number."),
		ApplyLag: reg.Gauge(SeriesApplyLag,
			"Seconds since the last APPLY-stream mutation was applied."),
		Epoch: reg.Gauge(SeriesEpoch, "Current steward epoch of the overlay."),
		FailoverDuration: reg.Histogram(SeriesFailoverDuration,
			"Steward failover duration: steward declared dead to new steward open.", nil),
		SnapshotStall: reg.Gauge(SeriesSnapshotStall,
			"Write-lock stall of the last durable snapshot: catalogue capture plus journal rotation."),
		SnapshotBytes: reg.Gauge(SeriesSnapshotBytes,
			"Encoded size of the last durable snapshot."),
		SnapshotKeys: reg.Gauge(SeriesSnapshotKeys,
			"Catalogue entries in the last durable snapshot."),
		topo:      make(map[string]*Counter, 6),
		elections: make(map[string]*Counter, 4),
	}
	for _, ph := range phases {
		m.hops[ph] = reg.Counter(SeriesHops, "Tree edges traversed, by traversal phase.", "phase", ph)
		m.hopLat[ph] = reg.Histogram(SeriesHopLatency,
			"Per-hop latency by traversal phase.", nil, "phase", ph)
	}
	for _, ev := range []string{"join", "leave", "crash", "recover", "balance"} {
		m.topo[ev] = reg.Counter(SeriesTopologyEvents, "Peer lifecycle events.", "event", ev)
	}
	for _, ev := range []string{"started", "won", "lost", "deposed"} {
		m.elections[ev] = reg.Counter(SeriesElections, "Steward election events.", "event", ev)
	}
	reg.OnScrape(func() {
		if t := m.lastReplicate.Load(); t != 0 {
			m.ReplicationLag.Set(time.Since(time.Unix(0, t)).Seconds())
		}
		if t := m.lastApply.Load(); t != 0 {
			m.ApplyLag.Set(time.Since(time.Unix(0, t)).Seconds())
		}
	})
	return m
}

// RecordPhase accounts one completed traversal phase: hops adds to
// the phase's hop counter, and the mean per-hop latency (d/hops) is
// observed into the phase's hop-latency histogram.
func (m *Metrics) RecordPhase(phase string, hops int, d time.Duration) {
	if m == nil {
		return
	}
	c, h := m.hops[phase], m.hopLat[phase]
	if c == nil {
		c = m.Registry.Counter(SeriesHops, "", "phase", phase)
		h = m.Registry.Histogram(SeriesHopLatency, "", nil, "phase", phase)
	}
	if hops > 0 {
		c.Add(float64(hops))
		h.Observe(d.Seconds() / float64(hops))
	}
}

// TopologyEvent counts one peer lifecycle event (join, leave, crash,
// recover, balance).
func (m *Metrics) TopologyEvent(event string) {
	if m == nil {
		return
	}
	c := m.topo[event]
	if c == nil {
		c = m.Registry.Counter(SeriesTopologyEvents, "", "event", event)
	}
	c.Inc()
}

// MarkReplicated stamps the completion of a replication tick; the
// replication-lag gauge reads seconds-since at scrape time.
func (m *Metrics) MarkReplicated() {
	if m == nil {
		return
	}
	m.lastReplicate.Store(time.Now().UnixNano())
}

// MarkSnapshot records one completed durable snapshot: how long the
// cluster write lock was held for the capture + journal rotation, and
// the encoded size and entry count written off-lock.
func (m *Metrics) MarkSnapshot(stall time.Duration, bytes, keys int) {
	if m == nil {
		return
	}
	m.SnapshotStall.Set(stall.Seconds())
	m.SnapshotBytes.Set(float64(bytes))
	m.SnapshotKeys.Set(float64(keys))
}

// MarkApplied stamps one applied APPLY-stream mutation and its
// sequence number.
func (m *Metrics) MarkApplied(seq uint64) {
	if m == nil {
		return
	}
	m.lastApply.Store(time.Now().UnixNano())
	m.ApplySeq.Set(float64(seq))
}

// MarkEpoch stamps the steward epoch this daemon currently honors.
func (m *Metrics) MarkEpoch(epoch uint64) {
	if m == nil {
		return
	}
	m.Epoch.Set(float64(epoch))
}

// ElectionEvent counts one steward-election event (started, won,
// lost, deposed).
func (m *Metrics) ElectionEvent(event string) {
	if m == nil {
		return
	}
	c := m.elections[event]
	if c == nil {
		c = m.Registry.Counter(SeriesElections, "", "event", event)
	}
	c.Inc()
}

// ObserveFailover records one completed steward failover's duration.
func (m *Metrics) ObserveFailover(d time.Duration) {
	if m == nil {
		return
	}
	m.FailoverDuration.Observe(d.Seconds())
}
