// Package obs is a dependency-free metrics registry: counters, gauges
// and histograms with Prometheus text exposition, a consistent
// point-in-time Snapshot view, and scrape-time collectors that mirror
// the engines' existing point-in-time counters into continuous
// series.
//
// Everything is nil-safe: a nil *Registry hands out nil instruments,
// and every instrument method no-ops on a nil receiver — so
// instrumented hot paths cost one pointer test when observability is
// disabled.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// value is a float64 stored in atomic bits, shared by counters and
// gauges.
type value struct{ bits atomic.Uint64 }

func (v *value) add(d float64) {
	for {
		old := v.bits.Load()
		if v.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

func (v *value) set(f float64) { v.bits.Store(math.Float64bits(f)) }
func (v *value) get() float64  { return math.Float64frombits(v.bits.Load()) }

// Counter is a monotonically increasing series.
type Counter struct{ v value }

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d float64) {
	if c != nil {
		c.v.add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the counter's value: only for scrape-time mirrors of
// an external monotonic counter (the engines' lifetime totals), never
// for direct instrumentation.
func (c *Counter) Set(f float64) {
	if c != nil {
		c.v.set(f)
	}
}

// Value returns the current value (0 on a nil counter).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.get()
}

// Gauge is a series that can go up and down.
type Gauge struct{ v value }

// Set replaces the gauge's value.
func (g *Gauge) Set(f float64) {
	if g != nil {
		g.v.set(f)
	}
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g != nil {
		g.v.add(d)
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.get()
}

// Histogram is a cumulative-bucket distribution.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64
	sum    value
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.get()
}

// DefLatencyBuckets are the default latency bucket bounds in seconds
// (1µs .. ~4s, doubling).
var DefLatencyBuckets = func() []float64 {
	out := make([]float64, 0, 23)
	for b := 1e-6; b < 5; b *= 2 {
		out = append(out, b)
	}
	return out
}()

// family is one metric name: its metadata and every labelled series.
type family struct {
	name, help, kind string
	bounds           []float64 // histograms only

	mu     sync.Mutex
	series map[string]any // label string -> *Counter | *Gauge | *Histogram
	order  []string
}

func (f *family) get(labels string, make func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[labels]
	if !ok {
		s = make()
		f.series[labels] = s
		f.order = append(f.order, labels)
	}
	return s
}

// Registry holds the metric families and the scrape-time collectors.
type Registry struct {
	mu         sync.Mutex
	fams       map[string]*family
	order      []string
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) family(name, help, kind string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds,
			series: make(map[string]any)}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	return f
}

// labelString renders label pairs ("k", "v", ...) canonically:
// {k1="v1",k2="v2"} with keys sorted, or "" without labels.
func labelString(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	n := len(pairs) / 2
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pairs[2*idx[a]] < pairs[2*idx[b]] })
	var b strings.Builder
	b.WriteByte('{')
	for i, j := range idx {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[2*j])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(pairs[2*j+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Counter returns (creating on first use) the counter series for name
// and label pairs ("key", "value", ...).
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, help, "counter", nil)
	return f.get(labelString(labels), func() any { return &Counter{} }).(*Counter)
}

// Gauge returns (creating on first use) the gauge series for name and
// label pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, help, "gauge", nil)
	return f.get(labelString(labels), func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns (creating on first use) the histogram series for
// name and label pairs. bounds applies on family creation only; nil
// uses DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	f := r.family(name, help, "histogram", bounds)
	return f.get(labelString(labels), func() any {
		return &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
	}).(*Histogram)
}

// ReplaceGauges swaps a gauge family's entire series set with one
// sample per map entry, keyed by a single label. Collectors use it
// for per-peer series so renamed or departed peers don't linger as
// stale samples.
func (r *Registry) ReplaceGauges(name, help, labelKey string, vals map[string]float64) {
	if r == nil {
		return
	}
	f := r.family(name, help, "gauge", nil)
	f.mu.Lock()
	f.series = make(map[string]any, len(vals))
	f.order = f.order[:0]
	for k, v := range vals {
		g := &Gauge{}
		g.Set(v)
		ls := labelString([]string{labelKey, k})
		f.series[ls] = g
		f.order = append(f.order, ls)
	}
	sort.Strings(f.order)
	f.mu.Unlock()
}

// OnScrape registers a collector run before every exposition or
// snapshot: the hook that mirrors point-in-time engine counters into
// the registry.
func (r *Registry) OnScrape(fn func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

func (r *Registry) collect() {
	r.mu.Lock()
	fns := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// snapshotFamilies captures a consistent ordered view of every family
// and series after running the collectors.
func (r *Registry) snapshotFamilies() []*family {
	r.collect()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.fams[name])
	}
	return out
}

// WriteText writes the registry in Prometheus text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.snapshotFamilies() {
		f.mu.Lock()
		order := append([]string{}, f.order...)
		series := make(map[string]any, len(order))
		for _, ls := range order {
			series[ls] = f.series[ls]
		}
		f.mu.Unlock()
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, ls := range order {
			if err := writeSeries(w, f, ls, series[ls]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, ls string, s any) error {
	switch v := s.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ls, fmtFloat(v.Value()))
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ls, fmtFloat(v.Value()))
		return err
	case *Histogram:
		cum := uint64(0)
		for i, bound := range v.bounds {
			cum += v.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				withLabel(ls, "le", fmtFloat(bound)), cum); err != nil {
				return err
			}
		}
		cum += v.counts[len(v.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			withLabel(ls, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, ls, fmtFloat(v.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, ls, v.Count())
		return err
	}
	return nil
}

// withLabel appends one label to an already-rendered label string.
func withLabel(ls, key, val string) string {
	extra := key + `="` + escapeLabel(val) + `"`
	if ls == "" {
		return "{" + extra + "}"
	}
	return ls[:len(ls)-1] + "," + extra + "}"
}

func fmtFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Snapshot is a consistent point-in-time flat view of the registry:
// fully rendered series name (labels included) to value. Histograms
// contribute name_count, name_sum and name_bucket{...} entries.
type Snapshot map[string]float64

// Get returns the value of a series ("" labels → bare name).
func (s Snapshot) Get(series string) float64 { return s[series] }

// Snapshot captures every series after running the collectors once,
// so derived metrics computed from it come from one consistent read.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	out := make(Snapshot)
	for _, f := range r.snapshotFamilies() {
		f.mu.Lock()
		for ls, s := range f.series {
			switch v := s.(type) {
			case *Counter:
				out[f.name+ls] = v.Value()
			case *Gauge:
				out[f.name+ls] = v.Value()
			case *Histogram:
				cum := uint64(0)
				for i, bound := range v.bounds {
					cum += v.counts[i].Load()
					out[f.name+"_bucket"+withLabel(ls, "le", fmtFloat(bound))] = float64(cum)
				}
				cum += v.counts[len(v.bounds)].Load()
				out[f.name+"_bucket"+withLabel(ls, "le", "+Inf")] = float64(cum)
				out[f.name+"_sum"+ls] = v.Sum()
				out[f.name+"_count"+ls] = float64(v.Count())
			}
		}
		f.mu.Unlock()
	}
	return out
}
