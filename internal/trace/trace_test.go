package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	h := r.StartRoot("discover", "p1")
	if h.Active() {
		t.Fatal("handle from nil recorder is active")
	}
	if h.Context().Valid() {
		t.Fatal("handle from nil recorder has a valid context")
	}
	h.SetAttr("k", "v")
	h.End()
	h.End() // idempotent on inactive handles too
	if got := r.Total(); got != 0 {
		t.Fatalf("nil recorder Total = %d", got)
	}
	if r.Spans() != nil {
		t.Fatal("nil recorder returned spans")
	}
	if trees := r.Trees(); len(trees) != 0 {
		t.Fatalf("nil recorder returned %d trees", len(trees))
	}
}

func TestSpanLifecycle(t *testing.T) {
	r := NewRecorder(16)
	root := r.StartRoot("discover", "entry")
	root.SetAttr("key", "abc")
	if !root.Active() {
		t.Fatal("root not active before End")
	}
	rc := root.Context()
	if !rc.Valid() {
		t.Fatal("root context invalid")
	}
	child := r.Start(rc, "relay", "p2")
	cc := child.Context()
	if cc.Trace != rc.Trace {
		t.Fatalf("child trace %x != root trace %x", cc.Trace, rc.Trace)
	}
	if cc.Span == rc.Span {
		t.Fatal("child span id equals parent span id")
	}
	child.End()
	root.End()
	root.End() // second End must not double-record
	if got := r.Total(); got != 2 {
		t.Fatalf("Total = %d, want 2", got)
	}
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(spans))
	}
	// Completion order: the child ended first.
	if spans[0].Phase != "relay" || spans[1].Phase != "discover" {
		t.Fatalf("span order = %q, %q", spans[0].Phase, spans[1].Phase)
	}
	if spans[0].Parent != rc.Span {
		t.Fatal("child span does not point at root")
	}
	if len(spans[1].Attrs) != 1 || spans[1].Attrs[0].Key != "key" || spans[1].Attrs[0].Value != "abc" {
		t.Fatalf("root attrs = %v", spans[1].Attrs)
	}
}

func TestRingOverflowKeepsNewest(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		h := r.StartRoot("walk", fmt.Sprintf("p%d", i))
		h.End()
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		want := fmt.Sprintf("p%d", 6+i) // oldest-first: p6..p9 survive
		if s.Peer != want {
			t.Fatalf("span %d peer = %q, want %q", i, s.Peer, want)
		}
	}
}

func TestTreesAssemblyAndOrphans(t *testing.T) {
	r := NewRecorder(16)
	root := r.StartRoot("query", "entry")
	c1 := r.Start(root.Context(), "climb", "p1")
	c2 := r.Start(c1.Context(), "walk", "p2")
	c2.End()
	c1.End()
	root.End()
	// A span whose parent was recorded elsewhere (cross-process wire
	// context): promoted to a root with Orphan set.
	stray := r.Start(Context{Trace: 42, Span: 4242}, "relay", "px")
	stray.End()

	trees := r.Trees()
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2", len(trees))
	}
	var rooted, orphan *TreeNode
	for _, n := range trees {
		if n.Orphan {
			orphan = n
		} else {
			rooted = n
		}
	}
	if rooted == nil || orphan == nil {
		t.Fatalf("missing rooted or orphan tree: %+v", trees)
	}
	if rooted.Phase != "query" || len(rooted.Children) != 1 {
		t.Fatalf("root tree: phase %q, %d children", rooted.Phase, len(rooted.Children))
	}
	if rooted.Children[0].Phase != "climb" || len(rooted.Children[0].Children) != 1 {
		t.Fatal("climb child missing its walk child")
	}
	if orphan.Phase != "relay" {
		t.Fatalf("orphan phase = %q", orphan.Phase)
	}

	b, err := json.Marshal(trees)
	if err != nil {
		t.Fatalf("marshal trees: %v", err)
	}
	js := string(b)
	if !strings.Contains(js, `"orphan":true`) {
		t.Fatalf("orphan marker missing from JSON: %s", js)
	}
	if !strings.Contains(js, `"children"`) {
		t.Fatalf("children missing from JSON: %s", js)
	}
}

func TestFreshRootsGetDistinctTraces(t *testing.T) {
	r := NewRecorder(8)
	a := r.StartRoot("discover", "p")
	b := r.StartRoot("discover", "p")
	if a.Context().Trace == b.Context().Trace {
		t.Fatal("two fresh roots share a trace id")
	}
	a.End()
	b.End()
}
