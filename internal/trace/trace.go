// Package trace is a lightweight, dependency-free span recorder for
// the routed traversal: every hop of a discovery, every phase of a
// subtree query, every replica shipment and every topology event can
// record a span (id, parent, peer, phase, start, duration, attrs)
// into a fixed-capacity ring buffer.
//
// The recorder is nil-safe by design: a nil *Recorder hands out
// inactive handles whose methods return immediately, so instrumented
// hot paths cost one pointer test when tracing is disabled — no
// time.Now call, no allocation.
//
// Span identity crosses process boundaries: the transport layer
// propagates a Context (trace id + span id) in an optional frame
// header extension, so the fragments recorded by different daemons
// share one trace id and reassemble into one logical tree.
package trace

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Context identifies a position in a distributed trace: the trace the
// operation belongs to and the span that is the parent of whatever
// work happens next. The zero Context means "untraced".
type Context struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context belongs to a live trace.
func (c Context) Valid() bool { return c.Trace != 0 }

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one completed unit of traced work.
type Span struct {
	Trace    uint64
	ID       uint64
	Parent   uint64 // 0 for a trace root
	Peer     string // peer id (or host role) the work ran on
	Phase    string // climb, descend, walk, relay, qroute, replica, ...
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// MarshalJSON renders ids as hex strings: uint64 ids exceed the exact
// integer range of JSON numbers.
func (s Span) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Trace    string  `json:"trace"`
		ID       string  `json:"id"`
		Parent   string  `json:"parent,omitempty"`
		Peer     string  `json:"peer,omitempty"`
		Phase    string  `json:"phase"`
		Start    string  `json:"start"`
		Duration float64 `json:"duration_us"`
		Attrs    []Attr  `json:"attrs,omitempty"`
	}{
		Trace:    fmt.Sprintf("%016x", s.Trace),
		ID:       fmt.Sprintf("%016x", s.ID),
		Parent:   hexOrEmpty(s.Parent),
		Peer:     s.Peer,
		Phase:    s.Phase,
		Start:    s.Start.Format(time.RFC3339Nano),
		Duration: float64(s.Duration) / float64(time.Microsecond),
		Attrs:    s.Attrs,
	})
}

func hexOrEmpty(v uint64) string {
	if v == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", v)
}

// Span/trace id generation: a per-process base (wall-clock derived, so
// two daemons started at different instants draw from different
// ranges) plus a monotonic counter. Ids are never zero.
var (
	idCounter atomic.Uint64
	idBase    = uint64(time.Now().UnixNano())
)

func newID() uint64 {
	id := idBase + idCounter.Add(1)
	if id == 0 {
		id = 1
	}
	return id
}

// Recorder keeps the most recent completed spans in a ring buffer.
// A nil *Recorder is a valid, disabled recorder.
type Recorder struct {
	mu    sync.Mutex
	buf   []Span
	next  int // overwrite position once the ring is full
	total uint64
}

// DefaultCapacity is the ring size NewRecorder(0) uses.
const DefaultCapacity = 4096

// NewRecorder returns a recorder keeping the last capacity spans
// (DefaultCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Span, 0, capacity)}
}

// Enabled reports whether spans are being recorded.
func (r *Recorder) Enabled() bool { return r != nil }

// Handle is one in-flight span. The zero Handle (from a nil recorder)
// is inactive: every method returns immediately.
type Handle struct {
	rec  *Recorder
	span Span
}

// StartRoot begins a span in a fresh trace.
func (r *Recorder) StartRoot(phase, peer string) Handle {
	return r.Start(Context{}, phase, peer)
}

// Start begins a span under parent; a zero parent starts a new trace.
func (r *Recorder) Start(parent Context, phase, peer string) Handle {
	if r == nil {
		return Handle{}
	}
	tr := parent.Trace
	if tr == 0 {
		tr = newID()
	}
	return Handle{rec: r, span: Span{
		Trace:  tr,
		ID:     newID(),
		Parent: parent.Span,
		Peer:   peer,
		Phase:  phase,
		Start:  time.Now(),
	}}
}

// Active reports whether the handle records anything on End.
func (h *Handle) Active() bool { return h != nil && h.rec != nil }

// Context returns the handle's position for child spans (and for wire
// propagation). Inactive handles return the zero Context.
func (h *Handle) Context() Context {
	if h == nil || h.rec == nil {
		return Context{}
	}
	return Context{Trace: h.span.Trace, Span: h.span.ID}
}

// SetAttr annotates the span.
func (h *Handle) SetAttr(key, value string) {
	if h == nil || h.rec == nil {
		return
	}
	h.span.Attrs = append(h.span.Attrs, Attr{Key: key, Value: value})
}

// End completes the span and records it. Idempotent: the second End
// is a no-op.
func (h *Handle) End() {
	if h == nil || h.rec == nil {
		return
	}
	h.span.Duration = time.Since(h.span.Start)
	h.rec.record(h.span)
	h.rec = nil
}

func (r *Recorder) record(s Span) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
		r.next++
		if r.next == len(r.buf) {
			r.next = 0
		}
	}
	r.total++
	r.mu.Unlock()
}

// Total returns the number of spans ever recorded (including those
// the ring has since overwritten).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Spans returns a copy of the retained spans, oldest first.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// TreeNode is one span plus its recorded children, the JSON shape
// /debug/trace serves.
type TreeNode struct {
	Span
	// Orphan marks a span whose parent id is set but was not retained
	// (evicted from the ring, or recorded by another process).
	Orphan   bool        `json:"-"`
	Children []*TreeNode `json:"children,omitempty"`
}

// MarshalJSON flattens the embedded span fields next to children.
func (t *TreeNode) MarshalJSON() ([]byte, error) {
	sp, err := t.Span.MarshalJSON()
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(sp, &m); err != nil {
		return nil, err
	}
	if t.Orphan {
		m["orphan"] = true
	}
	if len(t.Children) > 0 {
		m["children"] = t.Children
	}
	return json.Marshal(m)
}

// Trees assembles the retained spans into per-trace span trees,
// ordered by each trace's first retained span. Spans whose parent was
// not retained are promoted to roots with Orphan set.
func (r *Recorder) Trees() []*TreeNode {
	spans := r.Spans()
	nodes := make(map[uint64]*TreeNode, len(spans))
	for i := range spans {
		nodes[spans[i].ID] = &TreeNode{Span: spans[i]}
	}
	var roots []*TreeNode
	for _, s := range spans {
		n := nodes[s.ID]
		if s.Parent == 0 {
			roots = append(roots, n)
			continue
		}
		if p, ok := nodes[s.Parent]; ok {
			p.Children = append(p.Children, n)
		} else {
			n.Orphan = true
			roots = append(roots, n)
		}
	}
	return roots
}
