// Package peering maintains a daemon's long-lived links: the
// bootstrap peers it joined through and the ring-neighbor members it
// routes to. A single maintenance loop probes every link, re-dials
// lost ones with jittered exponential backoff, and declares a peer
// crashed after a miss threshold — the signal that drives the
// overlay's CrashPeer/Recover path.
//
// # The maintenance-loop state machine
//
// Each link is in exactly one of three states:
//
//	          probe ok                    probe ok
//	        ┌─────────┐              ┌───────────────────┐
//	        ▼         │              │                   │
//	      ┌────┐ probe fail  ┌──────────┐ fails ≥ miss ┌──────┐
//	      │ UP │────────────▶│ BACKOFF  │─────────────▶│ DOWN │
//	      └────┘             └──────────┘  threshold   └──────┘
//	        ▲                 │    ▲                    │   ▲
//	        └── OnUp fires ───┘    └── re-dial, wait ───┘───┘
//
//	UP      — the last probe succeeded. The link is probed every
//	          Interval.
//	BACKOFF — one or more consecutive probes failed, but fewer than
//	          MissThreshold. Each failure schedules the next re-dial
//	          after Base·2^(fails-1), capped at Max and jittered by
//	          ±Jitter so a cohort of daemons that lost the same peer
//	          does not re-dial in lockstep (the thundering-herd
//	          avoidance bootstrap links need).
//	DOWN    — MissThreshold consecutive probes failed. OnDown fires
//	          exactly once on the transition; the owner reacts (the
//	          steward declares the peer crashed and runs Recover).
//	          The link keeps re-dialing at the capped backoff: a
//	          restarted daemon at the same address is detected and
//	          OnUp fires on the first successful probe, re-arming
//	          OnDown for the next loss.
//
// SetLinks reconciles the tracked set against the current membership:
// new addresses start in UP (optimistically, probed within one
// Interval), removed addresses are dropped mid-cycle. Probes run
// sequentially in the loop goroutine — link counts are small (ring
// neighbors + bootstraps), and serializing them keeps the state
// machine free of per-link locking.
package peering

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Link states reported by Snapshot.
const (
	StateUp      = "up"
	StateBackoff = "backoff"
	StateDown    = "down"
)

// Config parameterizes a Maintainer.
type Config struct {
	// Probe checks one link; a nil error means the peer answered.
	// The maintainer applies Timeout per call.
	Probe func(ctx context.Context, addr string) error
	// Interval is the steady-state probe period for UP links.
	Interval time.Duration
	// Base and Max bound the exponential re-dial backoff of failing
	// links; Jitter is the relative spread (0.2 = ±20%).
	Base   time.Duration
	Max    time.Duration
	Jitter float64
	// MissThreshold is how many consecutive failed probes flip a link
	// to DOWN (and fire OnDown).
	MissThreshold int
	// Timeout bounds one probe call.
	Timeout time.Duration
	// OnDown/OnUp fire on the edge transitions into DOWN and back to
	// UP, from the loop goroutine. They must not block indefinitely
	// and must not call back into the Maintainer.
	OnDown func(addr string)
	OnUp   func(addr string)
	// Seed fixes the jitter stream (0 seeds from the address table).
	Seed int64
}

// link is the per-address state machine instance.
type link struct {
	addr  string
	state string
	fails int       // consecutive probe failures
	next  time.Time // earliest next probe
}

// LinkStatus is one link's externally visible state.
type LinkStatus struct {
	Addr  string `json:"addr"`
	State string `json:"state"`
	Fails int    `json:"fails"`
}

// Maintainer runs the connection-maintenance loop. Create with New,
// drive with Run (usually in its own goroutine), reshape the tracked
// set with SetLinks.
type Maintainer struct {
	cfg Config

	mu    sync.Mutex
	links map[string]*link // guarded by mu
	rng   *rand.Rand       // guarded by mu
}

// New builds a Maintainer; zero config fields get serviceable
// defaults (1s interval, 250ms–15s backoff, ±20% jitter, 3 misses,
// probe timeout of one interval).
func New(cfg Config) *Maintainer {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Base <= 0 {
		cfg.Base = 250 * time.Millisecond
	}
	if cfg.Max <= 0 {
		cfg.Max = 15 * time.Second
	}
	if cfg.Jitter <= 0 {
		cfg.Jitter = 0.2
	}
	if cfg.MissThreshold <= 0 {
		cfg.MissThreshold = 3
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Maintainer{
		cfg:   cfg,
		links: make(map[string]*link),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// SetLinks reconciles the tracked link set to addrs: unknown
// addresses start UP (probed within one interval), addresses no
// longer listed are dropped.
func (m *Maintainer) SetLinks(addrs []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	want := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		want[a] = true
		if _, ok := m.links[a]; !ok {
			m.links[a] = &link{addr: a, state: StateUp}
		}
	}
	for a := range m.links {
		if !want[a] {
			delete(m.links, a)
		}
	}
}

// Snapshot reports every tracked link, sorted by address.
func (m *Maintainer) Snapshot() []LinkStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]LinkStatus, 0, len(m.links))
	for _, l := range m.links {
		out = append(out, LinkStatus{Addr: l.addr, State: l.state, Fails: l.fails})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Run drives the maintenance loop until ctx is cancelled. Probes run
// sequentially; the loop wakes at a quarter of the interval so
// short backoffs are honored without busy-waiting.
func (m *Maintainer) Run(ctx context.Context) {
	tick := m.cfg.Interval / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.probeDue(ctx)
		}
	}
}

// probeDue probes every link whose next-probe time has passed and
// advances its state machine.
func (m *Maintainer) probeDue(ctx context.Context) {
	now := time.Now()
	m.mu.Lock()
	var due []*link
	for _, l := range m.links {
		if !l.next.After(now) {
			due = append(due, l)
		}
	}
	m.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].addr < due[j].addr })
	for _, l := range due {
		if ctx.Err() != nil {
			return
		}
		pctx, cancel := context.WithTimeout(ctx, m.cfg.Timeout)
		err := m.cfg.Probe(pctx, l.addr)
		cancel()
		m.advance(l, err)
	}
}

// advance applies one probe outcome to l's state machine, firing the
// edge callbacks outside the lock.
func (m *Maintainer) advance(l *link, probeErr error) {
	var fire func(string)
	m.mu.Lock()
	if _, ok := m.links[l.addr]; !ok {
		m.mu.Unlock()
		return // dropped by SetLinks while probing
	}
	if probeErr == nil {
		if l.state == StateDown {
			fire = m.cfg.OnUp
		}
		l.state, l.fails = StateUp, 0
		l.next = time.Now().Add(m.jittered(m.cfg.Interval))
	} else {
		l.fails++
		l.next = time.Now().Add(backoffFor(m.rng, m.cfg.Base, m.cfg.Max, m.cfg.Jitter, l.fails))
		if l.state != StateDown {
			if l.fails >= m.cfg.MissThreshold {
				l.state = StateDown
				fire = m.cfg.OnDown
			} else {
				l.state = StateBackoff
			}
		}
	}
	addr := l.addr
	m.mu.Unlock()
	if fire != nil {
		fire(addr)
	}
}

// jittered spreads d by ±cfg.Jitter. Callers hold m.mu
// (dlptlint:held mu — the rng is not safe for concurrent use).
func (m *Maintainer) jittered(d time.Duration) time.Duration {
	return jitterSpread(m.rng, d, m.cfg.Jitter)
}

// jitterSpread spreads d by ±jitter (0.2 = ±20%).
func jitterSpread(rng *rand.Rand, d time.Duration, jitter float64) time.Duration {
	spread := 1 + jitter*(2*rng.Float64()-1)
	return time.Duration(float64(d) * spread)
}

// backoffFor is the shared delay schedule: the fails-th consecutive
// failure waits Base·2^(fails-1), capped at Max and spread by ±Jitter.
func backoffFor(rng *rand.Rand, base, max time.Duration, jitter float64, fails int) time.Duration {
	d := base << uint(min(fails-1, 20))
	if d > max || d <= 0 {
		d = max
	}
	return jitterSpread(rng, d, jitter)
}

// Backoff is the maintenance loop's retry-delay policy as a
// standalone helper: jittered exponential delays for any loop that
// retries against a lost peer (the daemon's origination forwarding
// and election retries reuse it instead of growing their own
// schedules). Zero fields get the Maintainer defaults. Not safe for
// concurrent use.
type Backoff struct {
	base, max time.Duration
	jitter    float64
	fails     int
	rng       *rand.Rand
}

// NewBackoff builds a Backoff; base/max/jitter of zero take the
// Maintainer defaults (250ms, 15s, ±20%) and seed 0 seeds from the
// clock.
func NewBackoff(base, max time.Duration, jitter float64, seed int64) *Backoff {
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	if max <= 0 {
		max = 15 * time.Second
	}
	if jitter <= 0 {
		jitter = 0.2
	}
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Backoff{base: base, max: max, jitter: jitter, rng: rand.New(rand.NewSource(seed))}
}

// Next records one more consecutive failure and returns the delay to
// wait before the next attempt.
func (b *Backoff) Next() time.Duration {
	b.fails++
	return backoffFor(b.rng, b.base, b.max, b.jitter, b.fails)
}

// Reset clears the consecutive-failure count after a success.
func (b *Backoff) Reset() { b.fails = 0 }
