package peering

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeProbe is a controllable probe target: each address can be
// flipped between answering and failing.
type fakeProbe struct {
	mu   sync.Mutex
	down map[string]bool
	hits map[string]int
}

func newFakeProbe() *fakeProbe {
	return &fakeProbe{down: make(map[string]bool), hits: make(map[string]int)}
}

func (f *fakeProbe) probe(_ context.Context, addr string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hits[addr]++
	if f.down[addr] {
		return errors.New("refused")
	}
	return nil
}

func (f *fakeProbe) set(addr string, down bool) {
	f.mu.Lock()
	f.down[addr] = down
	f.mu.Unlock()
}

func (f *fakeProbe) count(addr string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits[addr]
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition never held: %s", msg)
}

func startMaintainer(t *testing.T, f *fakeProbe, downs, ups chan string) *Maintainer {
	t.Helper()
	m := New(Config{
		Probe:         f.probe,
		Interval:      20 * time.Millisecond,
		Base:          5 * time.Millisecond,
		Max:           40 * time.Millisecond,
		MissThreshold: 3,
		Timeout:       50 * time.Millisecond,
		Seed:          42,
		OnDown: func(a string) {
			if downs != nil {
				downs <- a
			}
		},
		OnUp: func(a string) {
			if ups != nil {
				ups <- a
			}
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); m.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return m
}

// A healthy link stays UP and is probed repeatedly at the interval.
func TestLinkStaysUp(t *testing.T) {
	f := newFakeProbe()
	m := startMaintainer(t, f, nil, nil)
	m.SetLinks([]string{"a:1"})
	eventually(t, 2*time.Second, func() bool { return f.count("a:1") >= 3 },
		"link probed repeatedly")
	for _, l := range m.Snapshot() {
		if l.State != StateUp {
			t.Fatalf("healthy link state = %s, want up", l.State)
		}
	}
}

// A failing link walks BACKOFF → DOWN after the miss threshold,
// firing OnDown exactly once, and keeps re-dialing afterwards.
func TestMissThresholdDeclaresDown(t *testing.T) {
	f := newFakeProbe()
	downs := make(chan string, 8)
	m := startMaintainer(t, f, downs, nil)
	f.set("b:1", true)
	m.SetLinks([]string{"b:1"})
	select {
	case a := <-downs:
		if a != "b:1" {
			t.Fatalf("OnDown(%q), want b:1", a)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnDown never fired")
	}
	snap := m.Snapshot()
	if len(snap) != 1 || snap[0].State != StateDown || snap[0].Fails < 3 {
		t.Fatalf("snapshot after down = %+v", snap)
	}
	// The re-dial loop keeps probing a DOWN link (so a restarted
	// daemon at the same address is re-detected) without re-firing
	// OnDown.
	before := f.count("b:1")
	eventually(t, 2*time.Second, func() bool { return f.count("b:1") > before },
		"down link keeps being re-dialed")
	select {
	case <-downs:
		t.Fatal("OnDown fired twice for one loss")
	default:
	}
}

// A DOWN link whose peer comes back flips to UP, fires OnUp, and
// re-arms OnDown for the next loss.
func TestRecoveryFiresOnUpAndRearms(t *testing.T) {
	f := newFakeProbe()
	downs := make(chan string, 8)
	ups := make(chan string, 8)
	m := startMaintainer(t, f, downs, ups)
	f.set("c:1", true)
	m.SetLinks([]string{"c:1"})
	<-downs
	f.set("c:1", false)
	select {
	case <-ups:
	case <-time.After(2 * time.Second):
		t.Fatal("OnUp never fired after recovery")
	}
	eventually(t, time.Second, func() bool {
		snap := m.Snapshot()
		return len(snap) == 1 && snap[0].State == StateUp && snap[0].Fails == 0
	}, "recovered link back to up")
	f.set("c:1", true)
	select {
	case <-downs:
	case <-time.After(2 * time.Second):
		t.Fatal("OnDown did not re-arm after recovery")
	}
}

// SetLinks drops removed addresses and adds new ones mid-cycle.
func TestSetLinksReconciles(t *testing.T) {
	f := newFakeProbe()
	m := startMaintainer(t, f, nil, nil)
	m.SetLinks([]string{"x:1", "y:1"})
	eventually(t, time.Second, func() bool { return f.count("x:1") > 0 && f.count("y:1") > 0 },
		"both links probed")
	m.SetLinks([]string{"y:1", "z:1"})
	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].Addr != "y:1" || snap[1].Addr != "z:1" {
		t.Fatalf("snapshot after reconcile = %+v", snap)
	}
	stable := f.count("x:1")
	eventually(t, time.Second, func() bool { return f.count("z:1") > 0 },
		"new link probed")
	if f.count("x:1") > stable+1 {
		t.Fatalf("dropped link still probed: %d > %d", f.count("x:1"), stable+1)
	}
}

// Backoff grows exponentially: a failing link is probed far fewer
// times than a healthy one over the same window.
func TestBackoffSlowsProbing(t *testing.T) {
	f := newFakeProbe()
	m := New(Config{
		Probe:         f.probe,
		Interval:      10 * time.Millisecond,
		Base:          10 * time.Millisecond,
		Max:           500 * time.Millisecond,
		MissThreshold: 100, // never flips DOWN: isolate the backoff ladder
		Timeout:       50 * time.Millisecond,
		Seed:          7,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); m.Run(ctx) }()
	defer func() { cancel(); <-done }()
	f.set("up:1", false)
	f.set("down:1", true)
	m.SetLinks([]string{"up:1", "down:1"})
	time.Sleep(400 * time.Millisecond)
	healthy, failing := f.count("up:1"), f.count("down:1")
	if failing >= healthy {
		t.Fatalf("backoff did not slow probing: failing=%d healthy=%d", failing, healthy)
	}
}
