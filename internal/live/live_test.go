package live

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

func startCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	caps := make([]int, n)
	for i := range caps {
		caps[i] = 100
	}
	c, err := Start(keys.LowerAlnum, caps, 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestStartRejectsEmpty(t *testing.T) {
	if _, err := Start(keys.LowerAlnum, nil, 1); err == nil {
		t.Fatalf("empty cluster must fail")
	}
}

func TestRegisterAndDiscover(t *testing.T) {
	c := startCluster(t, 8)
	corpus := workload.GridCorpus(100)
	for _, k := range corpus {
		if err := c.Register(k, "provider:"+string(k)); err != nil {
			t.Fatalf("register %q: %v", k, err)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, k := range corpus {
		res, err := c.Discover(k)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("key %q not found", k)
		}
		if len(res.Values) != 1 || res.Values[0] != "provider:"+string(k) {
			t.Fatalf("values = %v", res.Values)
		}
		if res.PhysicalHops > res.LogicalHops {
			t.Fatalf("physical %d > logical %d", res.PhysicalHops, res.LogicalHops)
		}
		if len(res.Path) == 0 {
			t.Fatalf("empty path")
		}
	}
	res, err := c.Discover("zz_missing")
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("absent key found")
	}
}

func TestDiscoverEmptyTree(t *testing.T) {
	c := startCluster(t, 3)
	res, err := c.Discover("anything")
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("empty tree cannot satisfy")
	}
}

func TestConcurrentDiscovery(t *testing.T) {
	c := startCluster(t, 10)
	corpus := workload.GridCorpus(150)
	for _, k := range corpus {
		if err := c.Register(k, string(k)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := corpus[(w*37+i)%len(corpus)]
				res, err := c.Discover(k)
				if err != nil {
					errs <- err
					return
				}
				if !res.Found {
					errs <- fmt.Errorf("worker %d: %q not found", w, k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConcurrentDiscoveryWithWrites(t *testing.T) {
	c := startCluster(t, 8)
	corpus := workload.GridCorpus(300)
	initial := corpus[:150]
	extra := corpus[150:]
	for _, k := range initial {
		if err := c.Register(k, string(k)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Readers on the stable half.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				k := initial[(w*13+i)%len(initial)]
				res, err := c.Discover(k)
				if err != nil {
					errs <- err
					return
				}
				if !res.Found {
					errs <- fmt.Errorf("stable key %q lost during writes", k)
					return
				}
			}
		}(w)
	}
	// A writer registering the other half plus churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, k := range extra {
			if err := c.Register(k, string(k)); err != nil {
				errs <- err
				return
			}
			if i%30 == 0 {
				if _, err := c.AddPeer(50); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, k := range extra {
		res, err := c.Discover(k)
		if err != nil || !res.Found {
			t.Fatalf("late key %q missing: %v", k, err)
		}
	}
}

func TestAddRemovePeers(t *testing.T) {
	c := startCluster(t, 4)
	corpus := workload.GridCorpus(60)
	for _, k := range corpus {
		if err := c.Register(k, string(k)); err != nil {
			t.Fatal(err)
		}
	}
	id, err := c.AddPeer(100)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPeers() != 5 {
		t.Fatalf("NumPeers = %d", c.NumPeers())
	}
	if err := c.RemovePeer(id); err != nil {
		t.Fatal(err)
	}
	if c.NumPeers() != 4 {
		t.Fatalf("NumPeers = %d after removal", c.NumPeers())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, k := range corpus {
		res, err := c.Discover(k)
		if err != nil || !res.Found {
			t.Fatalf("key %q lost after churn", k)
		}
	}
	if err := c.RemovePeer("ghost_peer_id"); err == nil {
		t.Fatalf("removing unknown peer must fail")
	}
}

func TestUnregister(t *testing.T) {
	c := startCluster(t, 4)
	if err := c.Register("dgemm", "h1"); err != nil {
		t.Fatal(err)
	}
	if !c.Unregister("dgemm", "h1") {
		t.Fatalf("unregister failed")
	}
	if c.Unregister("dgemm", "h1") {
		t.Fatalf("double unregister must fail")
	}
	res, err := c.Discover("dgemm")
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("unregistered key still discoverable")
	}
}

func TestRoutedRangeAndComplete(t *testing.T) {
	c := startCluster(t, 6)
	for _, k := range []keys.Key{"sgemm", "sgemv", "strsm", "dgemm", "saxpy"} {
		if err := c.Register(k, string(k)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Complete("sge")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) != 2 {
		t.Fatalf("Complete = %v", res.Keys)
	}
	if res.NodesVisited == 0 {
		t.Fatalf("routed completion must visit nodes")
	}
	rr, err := c.RangeQuery("saxpy", "sgemv")
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Keys) != 3 {
		t.Fatalf("RangeQuery = %v", rr.Keys)
	}
	c.Stop()
	if _, err := c.Complete("s"); !errors.Is(err, ErrStopped) {
		t.Fatalf("Complete after stop = %v", err)
	}
	if _, err := c.RangeQuery("a", "z"); !errors.Is(err, ErrStopped) {
		t.Fatalf("RangeQuery after stop = %v", err)
	}
}

func TestSnapshotQueries(t *testing.T) {
	c := startCluster(t, 6)
	for _, k := range []keys.Key{"sgemm", "sgemv", "strsm", "dgemm"} {
		if err := c.Register(k, string(k)); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Snapshot()
	if got := snap.Complete("sge", 0); len(got) != 2 {
		t.Fatalf("Complete = %v", got)
	}
	if got := snap.Range("d", "e", 0); len(got) != 1 || got[0] != keys.Key("dgemm") {
		t.Fatalf("Range = %v", got)
	}
	if c.NumNodes() == 0 {
		t.Fatalf("NumNodes = 0")
	}
}

func TestStopIsIdempotentAndRejectsOps(t *testing.T) {
	c := startCluster(t, 3)
	if err := c.Register("k1", "v"); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	c.Stop()
	if err := c.Register("k2", "v"); !errors.Is(err, ErrStopped) {
		t.Fatalf("Register after stop = %v", err)
	}
	if _, err := c.Discover("k1"); !errors.Is(err, ErrStopped) {
		t.Fatalf("Discover after stop = %v", err)
	}
	if _, err := c.AddPeer(10); !errors.Is(err, ErrStopped) {
		t.Fatalf("AddPeer after stop = %v", err)
	}
	if err := c.RemovePeer("x"); !errors.Is(err, ErrStopped) {
		t.Fatalf("RemovePeer after stop = %v", err)
	}
}

// TestDifferentialAgainstSnapshot routes every key through the live
// cluster and cross-checks against the sequential reference.
func TestDifferentialAgainstSnapshot(t *testing.T) {
	c := startCluster(t, 12)
	corpus := workload.GridCorpus(200)
	for _, k := range corpus {
		if err := c.Register(k, string(k)); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Snapshot()
	for _, k := range corpus {
		n, ok := snap.Lookup(k)
		if !ok || !n.HasData() {
			t.Fatalf("reference lost %q", k)
		}
		res, err := c.Discover(k)
		if err != nil || !res.Found {
			t.Fatalf("live lost %q", k)
		}
	}
}
