package live

import (
	"testing"

	"dlpt/internal/leakcheck"
)

// TestMain fails the binary if peer goroutines outlive the tests:
// Cluster.Stop must drain every mailbox and join every proc.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
