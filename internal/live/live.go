// Package live runs the DLPT overlay as a concurrent message-passing
// system: one goroutine per peer, channel mailboxes, and hop-by-hop
// discovery routing between goroutines — the shape a deployment of
// the paper's protocol would take (the authors' future-work
// prototype; see DESIGN.md substitutions).
//
// Topology mutations (peer join/leave, service registration) are
// serialized writers over the embedded protocol state; discovery
// requests travel concurrently through the peer goroutines and only
// take read locks. Correctness against the sequential engine is
// checked by differential tests, and the package is exercised under
// the race detector.
package live

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"dlpt/internal/core"
	"dlpt/internal/keys"
	"dlpt/internal/trie"
)

// Result is the outcome of a live discovery.
type Result struct {
	Key          keys.Key
	Found        bool
	Values       []string
	LogicalHops  int
	PhysicalHops int
	// Path records the peer ids traversed (for tracing/demos).
	Path []keys.Key
}

// discoverMsg is one in-flight discovery request. ctx is the
// originating caller's context: every hop checks it, so cancelling
// the discovery aborts the routed traversal mid-flight instead of
// letting it run to completion against a departed client.
type discoverMsg struct {
	ctx     context.Context
	key     keys.Key
	at      keys.Key // node the request is addressed to
	goingUp bool
	res     Result
	reply   chan Result
}

// peerProc is the goroutine-owned handle of one peer.
type peerProc struct {
	id      keys.Key
	mailbox chan discoverMsg
}

// Cluster is a running overlay.
type Cluster struct {
	mu  sync.RWMutex // guards net topology and tree state
	net *core.Network
	rng *rand.Rand // guarded by mu (writers only)

	entryMu  sync.Mutex // guards entryRng (used by Discover readers)
	entryRng *rand.Rand

	procMu sync.RWMutex // guards procs
	procs  map[keys.Key]*peerProc

	quit chan struct{}
	wg   sync.WaitGroup

	stopOnce sync.Once
}

// ErrStopped is returned by operations on a stopped cluster.
var ErrStopped = errors.New("live: cluster stopped")

const mailboxDepth = 128

// Start launches a cluster with one peer per capacity entry.
func Start(alpha *keys.Alphabet, capacities []int, seed int64) (*Cluster, error) {
	if len(capacities) == 0 {
		return nil, fmt.Errorf("live: no peers")
	}
	c := &Cluster{
		net:      core.NewNetwork(alpha, core.PlacementLexicographic),
		rng:      rand.New(rand.NewSource(seed)),
		entryRng: rand.New(rand.NewSource(seed + 1)),
		procs:    make(map[keys.Key]*peerProc),
		quit:     make(chan struct{}),
	}
	for _, capacity := range capacities {
		if _, err := c.addPeerLocked(capacity); err != nil {
			c.Stop()
			return nil, err
		}
	}
	return c, nil
}

// addPeerLocked joins a new peer and spawns its goroutine. Callers
// must not hold mu.
func (c *Cluster) addPeerLocked(capacity int) (keys.Key, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var id keys.Key
	for {
		id = c.net.Alphabet.RandomKey(c.rng, 12, 12)
		if _, exists := c.net.Peer(id); !exists {
			break
		}
	}
	if err := c.net.JoinPeer(id, capacity, c.rng); err != nil {
		return "", err
	}
	p := &peerProc{id: id, mailbox: make(chan discoverMsg, mailboxDepth)}
	c.procMu.Lock()
	c.procs[id] = p
	c.procMu.Unlock()
	c.wg.Add(1)
	go c.run(p)
	return id, nil
}

// AddPeer joins one peer with the given capacity and returns its id.
func (c *Cluster) AddPeer(capacity int) (keys.Key, error) {
	select {
	case <-c.quit:
		return "", ErrStopped
	default:
	}
	return c.addPeerLocked(capacity)
}

// RemovePeer gracefully removes the peer with the given id.
func (c *Cluster) RemovePeer(id keys.Key) error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	err := c.net.LeavePeer(id)
	c.mu.Unlock()
	if err != nil {
		return err
	}
	c.procMu.Lock()
	delete(c.procs, id)
	c.procMu.Unlock()
	// The peer goroutine exits when the cluster stops; messages are
	// no longer routed to it because the proc table dropped it.
	return nil
}

// NumPeers returns the current peer count.
func (c *Cluster) NumPeers() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.NumPeers()
}

// NumNodes returns the current tree size.
func (c *Cluster) NumNodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.NumNodes()
}

// Register declares a service key with a value.
func (c *Cluster) Register(key keys.Key, value string) error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.InsertData(key, value, c.rng)
}

// RegisterBatch declares every entry under a single acquisition of
// the topology write lock, stopping at the first failure.
func (c *Cluster) RegisterBatch(entries []core.KV) error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.InsertBatch(entries, c.rng)
}

// Unregister removes a value from a key.
func (c *Cluster) Unregister(key keys.Key, value string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.RemoveData(key, value)
}

// Stopped reports whether the cluster has been stopped.
func (c *Cluster) Stopped() bool {
	select {
	case <-c.quit:
		return true
	default:
		return false
	}
}

// Snapshot returns a consistent copy of the whole tree (used by
// whole-catalogue reads).
func (c *Cluster) Snapshot() *trie.Tree {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.TreeSnapshot()
}

// RangeQuery resolves a lexicographic range query through the overlay
// (entry at a random node, climb, pruned subtree traversal), with hop
// accounting.
func (c *Cluster) RangeQuery(lo, hi keys.Key) (core.QueryResult, error) {
	select {
	case <-c.quit:
		return core.QueryResult{}, ErrStopped
	default:
	}
	c.entryMu.Lock()
	defer c.entryMu.Unlock()
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.RangeQuery(lo, hi, c.entryRng), nil
}

// Complete resolves automatic completion of a partial search string
// through the overlay.
func (c *Cluster) Complete(prefix keys.Key) (core.QueryResult, error) {
	select {
	case <-c.quit:
		return core.QueryResult{}, ErrStopped
	default:
	}
	c.entryMu.Lock()
	defer c.entryMu.Unlock()
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Complete(prefix, c.entryRng), nil
}

// Validate cross-checks all overlay invariants.
func (c *Cluster) Validate() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Validate()
}

// Discover routes a discovery request for key through the peer
// goroutines, entering the tree at a random node.
func (c *Cluster) Discover(key keys.Key) (Result, error) {
	return c.DiscoverContext(context.Background(), key)
}

// DiscoverContext is Discover under a caller context: cancelling ctx
// aborts the in-flight routed traversal and returns the context
// error.
func (c *Cluster) DiscoverContext(ctx context.Context, key keys.Key) (Result, error) {
	select {
	case <-c.quit:
		return Result{}, ErrStopped
	default:
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	c.entryMu.Lock()
	c.mu.RLock()
	entry, ok := c.net.RandomNodeKey(c.entryRng)
	c.mu.RUnlock()
	c.entryMu.Unlock()
	if !ok {
		return Result{Key: key}, nil
	}
	return c.discoverFrom(ctx, key, entry)
}

// DiscoverFrom routes a discovery entering at a chosen node key.
func (c *Cluster) DiscoverFrom(key, entry keys.Key) (Result, error) {
	select {
	case <-c.quit:
		return Result{}, ErrStopped
	default:
	}
	return c.discoverFrom(context.Background(), key, entry)
}

func (c *Cluster) discoverFrom(ctx context.Context, key, entry keys.Key) (Result, error) {
	reply := make(chan Result, 1)
	msg := discoverMsg{
		ctx:     ctx,
		key:     key,
		at:      entry,
		goingUp: true,
		res:     Result{Key: key},
		reply:   reply,
	}
	if !c.forward(msg, keys.Epsilon) {
		return Result{Key: key}, ErrStopped
	}
	select {
	case res := <-reply:
		return res, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	case <-c.quit:
		return Result{}, ErrStopped
	}
}

// forward delivers msg to the peer hosting msg.at. from is the
// sending peer (ε for client injection). It returns false when the
// cluster is stopping.
func (c *Cluster) forward(msg discoverMsg, from keys.Key) bool {
	c.mu.RLock()
	host, ok := c.net.HostOf(msg.at)
	c.mu.RUnlock()
	if !ok {
		msg.reply <- msg.res
		return true
	}
	if from != keys.Epsilon {
		msg.res.LogicalHops++
		if host != from {
			msg.res.PhysicalHops++
		}
	}
	c.procMu.RLock()
	p, ok := c.procs[host]
	c.procMu.RUnlock()
	if !ok {
		// Host raced with a leave; re-resolve once more via the
		// updated topology.
		c.mu.RLock()
		host2, ok2 := c.net.HostOf(msg.at)
		c.mu.RUnlock()
		if !ok2 {
			msg.reply <- msg.res
			return true
		}
		c.procMu.RLock()
		p, ok = c.procs[host2]
		c.procMu.RUnlock()
		if !ok {
			msg.reply <- msg.res
			return true
		}
	}
	select {
	case p.mailbox <- msg:
		return true
	case <-msg.ctx.Done():
		// The caller gave up: drop the request. The originator's
		// select on ctx.Done already returned the context error.
		return true
	case <-c.quit:
		return false
	}
}

// run is the peer goroutine: process discovery messages hop by hop.
func (c *Cluster) run(p *peerProc) {
	defer c.wg.Done()
	for {
		select {
		case <-c.quit:
			return
		case msg := <-p.mailbox:
			c.process(p, msg)
		}
	}
}

// process performs one routing step of the Section 2 discovery walk.
func (c *Cluster) process(p *peerProc, msg discoverMsg) {
	select {
	case <-msg.ctx.Done():
		return // cancelled mid-flight: abort the traversal
	default:
	}
	c.mu.RLock()
	peer, ok := c.net.Peer(p.id)
	var node *core.Node
	if ok {
		node = peer.Nodes[msg.at]
	}
	var next keys.Key
	done := false
	if node == nil {
		// The node moved (churn/balancing); re-deliver to the new
		// host without counting a tree hop.
		c.mu.RUnlock()
		msg.res.Path = append(msg.res.Path, p.id)
		if !c.forward(msg, p.id) {
			return
		}
		return
	}
	msg.res.Path = append(msg.res.Path, p.id)
	switch {
	case node.Key == msg.key:
		if node.HasData() {
			msg.res.Found = true
			for v := range node.Data {
				msg.res.Values = append(msg.res.Values, v)
			}
		}
		done = true
	default:
		if msg.goingUp && keys.IsPrefix(node.Key, msg.key) {
			msg.goingUp = false
		}
		if msg.goingUp {
			if !node.HasFather {
				done = true // root does not prefix the key: absent
			} else {
				next = node.Father
			}
		} else {
			q, okc := node.BestChildFor(msg.key)
			if !okc || !keys.IsPrefix(q, msg.key) {
				done = true
			} else {
				next = q
			}
		}
	}
	c.mu.RUnlock()
	if done {
		msg.reply <- msg.res
		return
	}
	msg.at = next
	c.forward(msg, p.id)
}

// Stop terminates all peer goroutines. It is idempotent.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() {
		close(c.quit)
	})
	c.wg.Wait()
}
