// Package live runs the DLPT overlay as a concurrent message-passing
// system: one goroutine per peer, channel mailboxes, and hop-by-hop
// discovery routing between goroutines — the shape a deployment of
// the paper's protocol would take (the authors' future-work
// prototype; see DESIGN.md substitutions).
//
// Topology mutations (peer join/leave, service registration) are
// serialized writers over the embedded protocol state; discovery
// requests travel concurrently through the peer goroutines and only
// take read locks. Correctness against the sequential engine is
// checked by differential tests, and the package is exercised under
// the race detector.
package live

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dlpt/internal/core"
	"dlpt/internal/keys"
	"dlpt/internal/lb"
	"dlpt/internal/obs"
	"dlpt/internal/persist"
	"dlpt/internal/trace"
	"dlpt/internal/trie"
)

// Result is the outcome of a live discovery.
type Result struct {
	Key          keys.Key
	Found        bool
	Values       []string
	LogicalHops  int
	PhysicalHops int
	// Dropped reports that a saturated peer ignored the request
	// (capacity gating).
	Dropped bool
	// Path records the peer ids traversed (for tracing/demos).
	Path []keys.Key
}

// Options are the optional cluster construction parameters.
type Options struct {
	// Placement picks ring identifiers for joining peers; nil draws
	// uniformly random identifiers.
	Placement lb.Strategy
	// Gate enforces per-peer capacity on the discovery path: every
	// visit consumes capacity and saturated peers drop requests.
	Gate bool
	// Persist, when non-nil, makes the cluster durable: Replicate
	// writes fsynced snapshots and catalogue mutations append to the
	// journal.
	Persist *persist.Store
	// Restore rebuilds the overlay from Persist instead of starting
	// fresh from the capacities (which are then ignored).
	Restore bool
	// Obs, when non-nil, receives visit/drop counters, per-phase hop
	// latencies and replication marks from the running overlay.
	Obs *obs.Metrics
	// Trace, when non-nil, records per-hop spans for every routed
	// discovery and replication tick.
	Trace *trace.Recorder
}

// discoverMsg is one in-flight discovery request. ctx is the
// originating caller's context: every hop checks it, so cancelling
// the discovery aborts the routed traversal mid-flight instead of
// letting it run to completion against a departed client.
type discoverMsg struct {
	ctx     context.Context
	key     keys.Key
	at      keys.Key // node the request is addressed to
	goingUp bool
	// tc is the trace context of the previous hop's span (the
	// discovery root for the first hop): each processing step parents
	// its span under it and replaces it with its own, chaining the
	// hops into one tree.
	tc trace.Context
	// redirects counts re-deliveries for a node the addressed peer
	// does not host. Transient moves (churn, balancing) resolve in a
	// hop or two; a crashed, unrecovered node would redirect forever,
	// so the walk gives up past maxRedirects.
	redirects int
	res       Result
	reply     chan Result
}

// maxRedirects bounds re-deliveries of a request addressed to a node
// its mapped peer does not host.
const maxRedirects = 4

// replicaMsg carries one successor replica batch to the peer that
// must hold it (the per-peer delivery path of the Replicate tick).
// done receives the number of snapshots installed.
type replicaMsg struct {
	batch core.ReplicaBatch
	done  chan int
}

// peerProc is the goroutine-owned handle of one peer.
type peerProc struct {
	// id is the peer's current ring identifier: written only under
	// Cluster.mu's write lock (balancing renames), read under either
	// side of it.
	id      keys.Key
	mailbox chan discoverMsg
	// ctrl delivers successor replica batches to the peer goroutine,
	// off the discovery fast path.
	ctrl chan replicaMsg
	// quit is closed when the peer leaves or crashes; the goroutine
	// then drains its mailbox and exits.
	quit chan struct{}
	// senders tracks in-flight forwards that hold a reference to this
	// proc, so draining can wait for the last possible send.
	senders sync.WaitGroup
}

// Cluster is a running overlay.
type Cluster struct {
	mu    sync.RWMutex   // guards net topology and tree state
	net   *core.Network  // guarded by mu
	rng   *rand.Rand     // guarded by mu (writers only)
	place lb.Strategy    // join placement hook; nil = uniform random
	gate  bool           // enforce peer capacity on discoveries
	store *persist.Store // durability layer; nil = in-memory only
	met   *obs.Metrics   // nil = no metrics; see Options.Obs
	rec   *trace.Recorder

	entryMu  sync.Mutex
	entryRng *rand.Rand // guarded by entryMu (used by Discover readers)

	procMu sync.RWMutex
	procs  map[keys.Key]*peerProc // guarded by procMu

	quit chan struct{}
	wg   sync.WaitGroup

	stopOnce sync.Once
}

// ErrStopped is returned by operations on a stopped cluster.
var ErrStopped = errors.New("live: cluster stopped")

const mailboxDepth = 128

// Start launches a cluster with one peer per capacity entry.
func Start(alpha *keys.Alphabet, capacities []int, seed int64) (*Cluster, error) {
	return StartOpts(alpha, capacities, seed, Options{})
}

// StartOpts is Start with explicit Options.
//
// dlptlint:exclusive — the cluster is under construction and has not
// escaped; peer goroutines spawned here synchronize through their own
// mailboxes before touching shared state.
func StartOpts(alpha *keys.Alphabet, capacities []int, seed int64, opts Options) (*Cluster, error) {
	if len(capacities) == 0 && !opts.Restore {
		return nil, fmt.Errorf("live: no peers")
	}
	c := &Cluster{
		net:      core.NewNetwork(alpha, core.PlacementLexicographic),
		rng:      rand.New(rand.NewSource(seed)),
		entryRng: rand.New(rand.NewSource(seed + 1)),
		place:    opts.Placement,
		gate:     opts.Gate,
		store:    opts.Persist,
		met:      opts.Obs,
		rec:      opts.Trace,
		procs:    make(map[keys.Key]*peerProc),
		quit:     make(chan struct{}),
	}
	c.net.Obs = opts.Obs
	c.net.Tracer = opts.Trace
	if opts.Restore {
		if c.store == nil {
			c.Stop()
			return nil, fmt.Errorf("live: restore without a persistence store")
		}
		if err := c.net.RestoreFromStore(c.store, c.rng); err != nil {
			c.Stop()
			return nil, err
		}
		for _, id := range c.net.PeerIDs() {
			c.spawnProc(id)
		}
	} else {
		for _, capacity := range capacities {
			if _, err := c.addPeerLocked(capacity); err != nil {
				c.Stop()
				return nil, err
			}
		}
	}
	// Callers of the mutation paths hold c.mu, serializing appends.
	c.net.AttachJournal(c.store)
	return c, nil
}

// spawnProc starts the goroutine serving peer id.
func (c *Cluster) spawnProc(id keys.Key) {
	p := &peerProc{
		id:      id,
		mailbox: make(chan discoverMsg, mailboxDepth),
		ctrl:    make(chan replicaMsg),
		quit:    make(chan struct{}),
	}
	c.procMu.Lock()
	c.procs[id] = p
	c.procMu.Unlock()
	c.wg.Add(1)
	go c.run(p)
}

// addPeerLocked joins a new peer and spawns its goroutine. Callers
// must not hold mu.
func (c *Cluster) addPeerLocked(capacity int) (keys.Key, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var id keys.Key
	if c.place != nil {
		id = c.place.PlaceJoin(c.net, c.rng, capacity)
	} else {
		for {
			id = c.net.Alphabet.RandomKey(c.rng, 12, 12)
			if _, exists := c.net.Peer(id); !exists {
				break
			}
		}
	}
	if err := c.net.JoinPeer(id, capacity, c.rng); err != nil {
		return "", err
	}
	c.spawnProc(id)
	c.met.TopologyEvent("join")
	return id, nil
}

// AddPeer joins one peer with the given capacity and returns its id.
func (c *Cluster) AddPeer(capacity int) (keys.Key, error) {
	select {
	case <-c.quit:
		return "", ErrStopped
	default:
	}
	return c.addPeerLocked(capacity)
}

// RemovePeer gracefully removes the peer with the given id: its tree
// nodes hand off to the peers becoming responsible for them and its
// goroutine drains and exits.
func (c *Cluster) RemovePeer(id keys.Key) error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	err := c.net.LeavePeer(id)
	c.mu.Unlock()
	if err != nil {
		return err
	}
	c.retireProc(id)
	c.met.TopologyEvent("leave")
	return nil
}

// FailPeer crashes the peer with the given id: its node states vanish
// without transfer and its goroutine drains and exits. The tree stays
// degraded until Recover runs.
func (c *Cluster) FailPeer(id keys.Key) error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	err := c.net.FailPeer(id)
	c.mu.Unlock()
	if err != nil {
		return err
	}
	c.retireProc(id)
	c.met.TopologyEvent("crash")
	return nil
}

// retireProc unroutes a departed peer's proc and signals its
// goroutine to drain. Safe to call for ids without a proc.
func (c *Cluster) retireProc(id keys.Key) {
	c.procMu.Lock()
	p, ok := c.procs[id]
	if ok {
		delete(c.procs, id)
	}
	c.procMu.Unlock()
	if ok {
		close(p.quit)
	}
}

// Recover restores crashed node state from the successor replicas and
// rebuilds the canonical tree structure.
func (c *Cluster) Recover() (restored int, lost []keys.Key, err error) {
	select {
	case <-c.quit:
		return 0, nil, ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	restored, lost = c.net.Recover()
	c.met.TopologyEvent("recover")
	return restored, lost, nil
}

// Replicate snapshots every tree node to its host's ring successor.
// The batches travel the cluster's real per-peer path: each successor
// peer's goroutine installs the replica set shipped to it through its
// ctrl channel (concurrent discoveries keep flowing on the mailboxes
// meanwhile); a batch whose target departed mid-tick falls back to a
// direct install, which re-routes per entry. On a durable cluster the
// tick finishes by writing the fsynced on-disk snapshot.
func (c *Cluster) Replicate() (int, error) {
	select {
	case <-c.quit:
		return 0, ErrStopped
	default:
	}
	c.mu.Lock()
	plan := c.net.ReplicaPlan()
	c.mu.Unlock()
	tick := c.rec.StartRoot("replicate", "")
	tick.SetAttr("batches", fmt.Sprintf("%d", len(plan)))
	total := 0
	for _, b := range plan {
		total += c.shipReplicas(tick.Context(), b)
	}
	tick.SetAttr("snapshots", fmt.Sprintf("%d", total))
	tick.End()
	c.met.MarkReplicated()
	c.mu.Lock()
	c.net.CompactReplicas()
	var pending *persist.PendingSnapshot
	var peers []persist.PeerState
	var cat *core.CatalogueCapture
	var stall time.Duration
	if c.store != nil {
		// Capture and journal rotation under c.mu, atomically: a
		// racing mutation journals either into the epoch this
		// snapshot supersedes AND is contained in the capture, or
		// into the new epoch and replays on top of it. The capture is
		// O(1) (copy-on-write catalogue image) and the encode + fsync
		// run after the lock is released, so the write stall is
		// independent of the catalogue size.
		start := time.Now()
		peers, cat = c.net.CaptureSnapshot()
		var err error
		if pending, err = c.store.BeginSnapshot(); err != nil {
			c.mu.Unlock()
			return total, err
		}
		stall = time.Since(start)
	}
	c.mu.Unlock()
	if pending != nil {
		if _, err := pending.Commit(peers, cat); err != nil {
			return total, err
		}
		c.met.MarkSnapshot(stall, pending.Bytes(), cat.Len())
	}
	return total, nil
}

// shipReplicas delivers one successor batch through the target peer's
// goroutine, falling back to a direct install when the target is gone
// or the cluster is stopping.
func (c *Cluster) shipReplicas(tc trace.Context, b core.ReplicaBatch) int {
	span := c.rec.Start(tc, "replica", string(b.To))
	span.SetAttr("snapshots", fmt.Sprintf("%d", len(b.Infos)))
	defer span.End()
	applyDirect := func() int {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.net.AcceptReplicas(b.From, b.To, b.Infos)
	}
	p, ok := c.lookupProc(b.To)
	if !ok {
		return applyDirect()
	}
	msg := replicaMsg{batch: b, done: make(chan int, 1)}
	select {
	case p.ctrl <- msg:
		p.senders.Done()
		return <-msg.done
	case <-p.quit:
		p.senders.Done()
		return applyDirect()
	case <-c.quit:
		p.senders.Done()
		return applyDirect()
	}
}

// ResetUnit ends the current load-accounting time unit.
func (c *Cluster) ResetUnit() error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.net.ResetUnit()
	return nil
}

// Balance runs one round of the named load-balancing strategy over
// every peer, then rewires the proc table to the renamed peer ids so
// mailbox routing keeps resolving.
func (c *Cluster) Balance(strategy string) (int, error) {
	strat, err := lb.ByName(strategy)
	if err != nil {
		return 0, err
	}
	select {
	case <-c.quit:
		return 0, ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	moves, rerr := lb.RunRound(c.net, strat)
	c.rewireProcs()
	c.met.TopologyEvent("balance")
	return moves, rerr
}

// rewireProcs re-keys the proc table to the current peer ids after
// balancing renames. Which goroutine serves which id is immaterial —
// all state lives in the shared network — so orphaned procs are
// paired with unclaimed ids in sorted order. Callers hold c.mu's
// write lock (dlptlint:held mu), which also licenses the p.id writes.
func (c *Cluster) rewireProcs() {
	current := make(map[keys.Key]bool, c.net.NumPeers())
	for _, id := range c.net.PeerIDs() {
		current[id] = true
	}
	c.procMu.Lock()
	defer c.procMu.Unlock()
	var orphans []*peerProc
	for id, p := range c.procs {
		if !current[id] {
			delete(c.procs, id)
			orphans = append(orphans, p)
		}
	}
	if len(orphans) == 0 {
		return
	}
	var free []keys.Key
	for id := range current {
		if _, ok := c.procs[id]; !ok {
			free = append(free, id)
		}
	}
	keys.SortKeys(free)
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].id < orphans[j].id })
	n := len(free)
	if len(orphans) < n {
		n = len(orphans)
	}
	for i := 0; i < n; i++ {
		orphans[i].id = free[i]
		c.procs[free[i]] = orphans[i]
	}
	for _, p := range orphans[n:] { // more procs than peers: retire
		close(p.quit)
	}
}

// PeerSummaries returns one summary per peer in ring order.
func (c *Cluster) PeerSummaries() []core.PeerSummary {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.PeerSummaries()
}

// ReplicationStats returns the replication traffic counters.
func (c *Cluster) ReplicationStats() core.ReplicationCounters {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Replication
}

// NumPeers returns the current peer count.
func (c *Cluster) NumPeers() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.NumPeers()
}

// NumNodes returns the current tree size.
func (c *Cluster) NumNodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.NumNodes()
}

// Register declares a service key with a value.
func (c *Cluster) Register(key keys.Key, value string) error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.InsertData(key, value, c.rng)
}

// RegisterBatch declares every entry under a single acquisition of
// the topology write lock, stopping at the first failure.
func (c *Cluster) RegisterBatch(entries []core.KV) error {
	select {
	case <-c.quit:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.InsertBatch(entries, c.rng)
}

// Unregister removes a value from a key.
func (c *Cluster) Unregister(key keys.Key, value string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.RemoveData(key, value)
}

// Stopped reports whether the cluster has been stopped.
func (c *Cluster) Stopped() bool {
	select {
	case <-c.quit:
		return true
	default:
		return false
	}
}

// Snapshot returns a consistent copy of the whole tree (used by
// whole-catalogue reads).
func (c *Cluster) Snapshot() *trie.Tree {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.TreeSnapshot()
}

// RangeQuery resolves a lexicographic range query through the overlay
// (entry at a random node, climb, pruned subtree traversal), with hop
// accounting.
func (c *Cluster) RangeQuery(lo, hi keys.Key) (core.QueryResult, error) {
	select {
	case <-c.quit:
		return core.QueryResult{}, ErrStopped
	default:
	}
	c.entryMu.Lock()
	defer c.entryMu.Unlock()
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.RangeQuery(lo, hi, c.entryRng), nil
}

// Complete resolves automatic completion of a partial search string
// through the overlay.
func (c *Cluster) Complete(prefix keys.Key) (core.QueryResult, error) {
	select {
	case <-c.quit:
		return core.QueryResult{}, ErrStopped
	default:
	}
	c.entryMu.Lock()
	defer c.entryMu.Unlock()
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Complete(prefix, c.entryRng), nil
}

// Validate cross-checks all overlay invariants.
func (c *Cluster) Validate() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Validate()
}

// streamBatchKeys bounds the matches emitted per walker batch (one
// channel send each), and streamBatchVisits bounds the node visits
// per read-lock hold so a sparse traversal cannot pin the lock.
const (
	streamBatchKeys   = 32
	streamBatchVisits = 256
)

// QueryStream is an in-flight streaming subtree query: a walker
// goroutine advances the traversal in bounded read-locked batches and
// fans the matches into a channel with backpressure; the consumer
// pulls them in lexicographic order. Closing the stream (or
// cancelling the query context) halts the traversal at the next
// batch boundary instead of letting it run to completion against a
// departed consumer.
type QueryStream struct {
	out  chan []keys.Key
	quit chan struct{}

	mu    sync.Mutex
	stats core.QueryResult
	err   error

	cur       []keys.Key
	pos       int
	closed    bool // set by Close; owned by the consumer goroutine
	closeOnce sync.Once
}

// StreamQuery starts a streaming subtree query. The entry point is
// drawn from the same seeded stream the slice queries use, so slice
// and streaming paths are byte-identical on identical workloads.
func (c *Cluster) StreamQuery(ctx context.Context, spec core.QuerySpec) (*QueryStream, error) {
	select {
	case <-c.quit:
		return nil, ErrStopped
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w := core.NewQueryWalker(c.net, spec)
	s := &QueryStream{
		out:  make(chan []keys.Key, 4),
		quit: make(chan struct{}),
	}
	if !w.Empty() {
		c.entryMu.Lock()
		c.mu.RLock()
		entry, ok := c.net.RandomNodeKey(c.entryRng)
		if ok {
			w.Start(entry)
		}
		c.mu.RUnlock()
		c.entryMu.Unlock()
	}
	c.wg.Add(1)
	go c.runStream(ctx, w, s)
	return s, nil
}

// runStream is the walker goroutine behind one QueryStream.
func (c *Cluster) runStream(ctx context.Context, w *core.QueryWalker, s *QueryStream) {
	defer c.wg.Done()
	defer close(s.out)
	began := time.Now()
	defer func() {
		// Flush the walker's open phase span even when the stream is
		// closed or cancelled mid-traversal.
		w.FinishTrace()
		if c.met != nil {
			c.met.QueryLatency.Observe(time.Since(began).Seconds())
		}
	}()
	for {
		select {
		case <-ctx.Done():
			s.fail(ctx.Err())
			return
		case <-s.quit:
			return
		case <-c.quit:
			s.fail(ErrStopped)
			return
		default:
		}
		c.mu.RLock()
		batch, more := w.StepN(nil, streamBatchKeys, streamBatchVisits)
		c.mu.RUnlock()
		s.mu.Lock()
		s.stats = w.Stats()
		s.mu.Unlock()
		if len(batch) > 0 {
			select {
			case s.out <- batch:
			case <-ctx.Done():
				s.fail(ctx.Err())
				return
			case <-s.quit:
				return
			case <-c.quit:
				s.fail(ErrStopped)
				return
			}
		}
		if !more {
			return
		}
	}
}

// fail records the error that terminated the stream early.
func (s *QueryStream) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Next returns the next matching key; ok == false means the stream is
// exhausted (see Err) or closed.
func (s *QueryStream) Next() (keys.Key, bool) {
	for {
		if s.closed {
			return keys.Epsilon, false
		}
		if s.pos < len(s.cur) {
			k := s.cur[s.pos]
			s.pos++
			return k, true
		}
		batch, ok := <-s.out
		if !ok {
			return keys.Epsilon, false
		}
		s.cur, s.pos = batch, 0
	}
}

// Err reports the error that terminated the stream early, nil after a
// normal end of stream.
func (s *QueryStream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stats returns the traversal counters accumulated so far.
func (s *QueryStream) Stats() core.QueryResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close halts the traversal — the walker goroutine exits at the next
// batch boundary — and discards buffered keys: Next reports end of
// stream afterwards. Idempotent; not safe to race with Next (streams
// are single-consumer).
func (s *QueryStream) Close() error {
	s.closeOnce.Do(func() { close(s.quit) })
	s.closed = true
	s.cur, s.pos = nil, 0
	return nil
}

// Discover routes a discovery request for key through the peer
// goroutines, entering the tree at a random node.
func (c *Cluster) Discover(key keys.Key) (Result, error) {
	return c.DiscoverContext(context.Background(), key)
}

// DiscoverContext is Discover under a caller context: cancelling ctx
// aborts the in-flight routed traversal and returns the context
// error.
func (c *Cluster) DiscoverContext(ctx context.Context, key keys.Key) (Result, error) {
	select {
	case <-c.quit:
		return Result{}, ErrStopped
	default:
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	c.entryMu.Lock()
	c.mu.RLock()
	entry, ok := c.net.RandomNodeKey(c.entryRng)
	c.mu.RUnlock()
	c.entryMu.Unlock()
	if !ok {
		return Result{Key: key}, nil
	}
	return c.discoverFrom(ctx, key, entry)
}

// DiscoverFrom routes a discovery entering at a chosen node key.
func (c *Cluster) DiscoverFrom(key, entry keys.Key) (Result, error) {
	select {
	case <-c.quit:
		return Result{}, ErrStopped
	default:
	}
	return c.discoverFrom(context.Background(), key, entry)
}

func (c *Cluster) discoverFrom(ctx context.Context, key, entry keys.Key) (Result, error) {
	began := time.Now()
	root := c.rec.StartRoot(obs.PhaseDiscover, string(entry))
	root.SetAttr("key", string(key))
	defer root.End()
	reply := make(chan Result, 1)
	msg := discoverMsg{
		ctx:     ctx,
		key:     key,
		at:      entry,
		goingUp: true,
		tc:      root.Context(),
		res:     Result{Key: key},
		reply:   reply,
	}
	if !c.forward(msg, keys.Epsilon) {
		return Result{Key: key}, ErrStopped
	}
	select {
	case res := <-reply:
		if c.met != nil {
			d := time.Since(began)
			c.met.DiscoverLatency.Observe(d.Seconds())
			c.met.RecordPhase(obs.PhaseDiscover, res.LogicalHops, d)
		}
		return res, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	case <-c.quit:
		return Result{}, ErrStopped
	}
}

// forward delivers msg to the peer hosting msg.at. from is the
// sending peer (ε for client injection). It returns false when the
// cluster is stopping.
func (c *Cluster) forward(msg discoverMsg, from keys.Key) bool {
	c.mu.RLock()
	host, ok := c.net.HostOf(msg.at)
	c.mu.RUnlock()
	if !ok {
		msg.reply <- msg.res
		return true
	}
	if from != keys.Epsilon {
		msg.res.LogicalHops++
		if host != from {
			msg.res.PhysicalHops++
		}
	}
	p, ok := c.lookupProc(host)
	if !ok {
		// Host raced with a leave; re-resolve once more via the
		// updated topology.
		c.mu.RLock()
		host2, ok2 := c.net.HostOf(msg.at)
		c.mu.RUnlock()
		if ok2 {
			p, ok = c.lookupProc(host2)
		}
		if !ok {
			msg.reply <- msg.res
			return true
		}
	}
	// The sender registration taken by lookupProc lets a departed
	// proc's drain wait out every send still holding its reference.
	defer p.senders.Done()
	select {
	case p.mailbox <- msg:
		return true
	case <-msg.ctx.Done():
		// The caller gave up: drop the request. The originator's
		// select on ctx.Done already returned the context error.
		return true
	case <-c.quit:
		return false
	}
}

// lookupProc resolves a peer id to its proc, registering the caller
// as an in-flight sender on success (release with senders.Done).
func (c *Cluster) lookupProc(id keys.Key) (*peerProc, bool) {
	c.procMu.RLock()
	defer c.procMu.RUnlock()
	p, ok := c.procs[id]
	if ok {
		p.senders.Add(1)
	}
	return p, ok
}

// run is the peer goroutine: process discovery messages hop by hop.
// When the peer leaves or crashes it drains its mailbox before
// exiting so no in-flight discovery is stranded.
func (c *Cluster) run(p *peerProc) {
	defer c.wg.Done()
	for {
		select {
		case <-c.quit:
			return
		case <-p.quit:
			c.drain(p)
			return
		case msg := <-p.mailbox:
			c.process(p, msg)
		case rm := <-p.ctrl:
			// A successor replica batch addressed to this peer: install
			// it under the topology write lock and acknowledge.
			c.mu.Lock()
			n := c.net.AcceptReplicas(rm.batch.From, rm.batch.To, rm.batch.Infos)
			c.mu.Unlock()
			rm.done <- n
		}
	}
}

// drain runs after a peer departed: the proc is already unrouted, so
// every remaining message takes the re-delivery path to the node's
// new host. Exit is safe only once all senders registered before the
// unrouting have finished, since they may still append to the
// mailbox.
func (c *Cluster) drain(p *peerProc) {
	sdone := make(chan struct{})
	go func() {
		p.senders.Wait()
		close(sdone)
	}()
	for {
		select {
		case msg := <-p.mailbox:
			c.process(p, msg)
		case <-sdone:
			for {
				select {
				case msg := <-p.mailbox:
					c.process(p, msg)
				default:
					return
				}
			}
		case <-c.quit:
			return
		}
	}
}

// process performs one routing step of the Section 2 discovery walk.
func (c *Cluster) process(p *peerProc, msg discoverMsg) {
	select {
	case <-msg.ctx.Done():
		return // cancelled mid-flight: abort the traversal
	default:
	}
	c.mu.RLock()
	self := p.id // balancing renames write p.id under the write lock
	// One span per routing hop, parented under the previous hop's so
	// the whole traversal forms a single tree rooted at the client.
	span := c.rec.Start(msg.tc, obs.PhaseRelay, string(self))
	defer span.End()
	msg.tc = span.Context()
	peer, ok := c.net.Peer(self)
	var node *core.Node
	if ok {
		node = peer.Nodes[msg.at]
	}
	var next keys.Key
	done := false
	if node == nil {
		// The node moved (churn/balancing); re-deliver to the new
		// host without counting a tree hop. A node lost to an
		// unrecovered crash has no host at all: past the redirect
		// bound the walk reports what it has (not found).
		c.mu.RUnlock()
		msg.res.Path = append(msg.res.Path, self)
		msg.redirects++
		if msg.redirects > maxRedirects {
			msg.reply <- msg.res
			return
		}
		// Re-deliver as an injection (from ε) so the redirect counts
		// no tree hop, matching the tcp engine's stale-routing relay.
		c.forward(msg, keys.Epsilon)
		return
	}
	node.RecordVisit()
	if c.met != nil {
		c.met.Visits.Inc()
	}
	if c.gate && !peer.TryProcess() {
		// Section 4's request model: the visit is received (load
		// recorded above) but a saturated peer ignores the request.
		c.mu.RUnlock()
		if c.met != nil {
			c.met.Drops.Inc()
		}
		msg.res.Dropped = true
		msg.reply <- msg.res
		return
	}
	msg.res.Path = append(msg.res.Path, self)
	switch {
	case node.Key == msg.key:
		if node.HasData() {
			msg.res.Found = true
			for v := range node.Data {
				msg.res.Values = append(msg.res.Values, v)
			}
		}
		done = true
	default:
		if msg.goingUp && keys.IsPrefix(node.Key, msg.key) {
			msg.goingUp = false
		}
		if msg.goingUp {
			if !node.HasFather {
				done = true // root does not prefix the key: absent
			} else {
				next = node.Father
			}
		} else {
			q, okc := node.BestChildFor(msg.key)
			if !okc || !keys.IsPrefix(q, msg.key) {
				done = true
			} else {
				next = q
			}
		}
	}
	c.mu.RUnlock()
	if done {
		msg.reply <- msg.res
		return
	}
	msg.at = next
	c.forward(msg, self)
}

// Stop terminates all peer goroutines. It is idempotent.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() {
		close(c.quit)
	})
	c.wg.Wait()
}
