package workload

import (
	"math/rand"
	"strings"
	"testing"

	"dlpt/internal/keys"
)

func TestCorporaDistinctAndValid(t *testing.T) {
	cases := map[string][]keys.Key{
		"blas":      BLASNames(),
		"lapack":    LAPACKNames(),
		"scalapack": ScaLAPACKNames(),
		"s3l":       S3LNames(),
	}
	for name, ks := range cases {
		if len(ks) < 20 {
			t.Errorf("%s corpus too small: %d", name, len(ks))
		}
		seen := map[keys.Key]bool{}
		for _, k := range ks {
			if seen[k] {
				t.Errorf("%s: duplicate key %q", name, k)
			}
			seen[k] = true
			if !keys.LowerAlnum.Valid(k) {
				t.Errorf("%s: key %q outside LowerAlnum", name, k)
			}
		}
	}
}

func TestCorpusPrefixStructure(t *testing.T) {
	for _, k := range S3LNames() {
		if !strings.HasPrefix(string(k), "s3l_") {
			t.Fatalf("S3L key %q lacks s3l_ prefix", k)
		}
	}
	for _, k := range ScaLAPACKNames() {
		if !strings.HasPrefix(string(k), "p") {
			t.Fatalf("ScaLAPACK key %q lacks p prefix", k)
		}
	}
	// BLAS type prefixes all present.
	found := map[byte]bool{}
	for _, k := range BLASNames() {
		found[k[0]] = true
	}
	for _, c := range []byte{'s', 'd', 'c', 'z'} {
		if !found[c] {
			t.Fatalf("missing BLAS type prefix %c", c)
		}
	}
}

func TestGridCorpusSizes(t *testing.T) {
	for _, n := range []int{10, 100, 1000, 1500} {
		ks := GridCorpus(n)
		if len(ks) != n {
			t.Fatalf("GridCorpus(%d) = %d keys", n, len(ks))
		}
		seen := map[keys.Key]bool{}
		for _, k := range ks {
			if seen[k] {
				t.Fatalf("GridCorpus(%d): duplicate %q", n, k)
			}
			seen[k] = true
		}
	}
}

func TestGridCorpusDeterministic(t *testing.T) {
	a, b := GridCorpus(1200), GridCorpus(1200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corpus not deterministic at %d", i)
		}
	}
}

func TestGridCorpusContainsHotspotSubtrees(t *testing.T) {
	ks := GridCorpus(1000)
	s3l, p := 0, 0
	for _, k := range ks {
		if keys.IsPrefix("s3l", k) {
			s3l++
		}
		if keys.IsPrefix("p", k) {
			p++
		}
	}
	if s3l < 10 || p < 10 {
		t.Fatalf("hot-spot subtrees too small: s3l=%d p=%d", s3l, p)
	}
}

func TestUniformPicker(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	avail := []keys.Key{"a", "b", "c"}
	counts := map[keys.Key]int{}
	for i := 0; i < 3000; i++ {
		counts[(Uniform{}).Pick(r, avail, 0)]++
	}
	for _, k := range avail {
		if counts[k] < 800 || counts[k] > 1200 {
			t.Fatalf("uniform pick skewed: %v", counts)
		}
	}
	if (Uniform{}).Name() != "uniform" {
		t.Fatalf("name wrong")
	}
}

func TestZipfPickerSkews(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	avail := GridCorpus(100)
	z := Zipf{S: 1.5}
	counts := make([]int, len(avail))
	idx := map[keys.Key]int{}
	for i, k := range avail {
		idx[k] = i
	}
	for i := 0; i < 5000; i++ {
		counts[idx[z.Pick(r, avail, 0)]]++
	}
	if counts[0] <= counts[len(counts)-1] {
		t.Fatalf("zipf must favour rank 0: first=%d last=%d", counts[0], counts[len(counts)-1])
	}
	// Default S kicks in for S <= 1.
	zDefault := Zipf{}
	_ = zDefault.Pick(r, avail, 0)
	if zDefault.Name() != "zipf" {
		t.Fatalf("name wrong")
	}
}

func TestHotSpotSchedule(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	avail := GridCorpus(1000)
	h := Figure8Schedule()
	if h.Name() != "hotspot" {
		t.Fatalf("name wrong")
	}
	countPrefix := func(t0 int, prefix keys.Key, n int) int {
		c := 0
		for i := 0; i < n; i++ {
			if keys.IsPrefix(prefix, h.Pick(r, avail, t0)) {
				c++
			}
		}
		return c
	}
	// Before the hot spot: s3l keys are a small fraction.
	if c := countPrefix(10, "s3l", 2000); c > 400 {
		t.Fatalf("t=10 s3l fraction too high: %d/2000", c)
	}
	// During the S3L phase, the bias dominates.
	if c := countPrefix(50, "s3l", 2000); c < 1500 {
		t.Fatalf("t=50 s3l fraction too low: %d/2000", c)
	}
	// During the ScaLAPACK phase, "p" dominates.
	if c := countPrefix(100, "p", 2000); c < 1500 {
		t.Fatalf("t=100 p fraction too low: %d/2000", c)
	}
	// After both: uniform again.
	if c := countPrefix(140, "s3l", 2000); c > 400 {
		t.Fatalf("t=140 s3l fraction too high: %d/2000", c)
	}
}

func TestHotSpotCacheInvalidation(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	h := Figure8Schedule()
	avail := []keys.Key{"s3l_fft", "pgesv"}
	k1 := h.Pick(r, avail, 50)
	if k1 != "s3l_fft" && k1 != "pgesv" {
		t.Fatalf("unexpected pick %q", k1)
	}
	// Growing availability must refresh the cached filter.
	avail2 := []keys.Key{"s3l_fft", "s3l_sort", "pgesv"}
	sawSort := false
	for i := 0; i < 200; i++ {
		if h.Pick(r, avail2, 50) == "s3l_sort" {
			sawSort = true
			break
		}
	}
	if !sawSort {
		t.Fatalf("cache not refreshed after corpus growth")
	}
}

func TestHotSpotMissingPrefixFallsBack(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	h := &HotSpot{Phases: []Phase{{From: 0, To: 10, Prefix: "zzz", Bias: 1.0}}}
	avail := []keys.Key{"a", "b"}
	k := h.Pick(r, avail, 5)
	if k != "a" && k != "b" {
		t.Fatalf("must fall back to uniform: %q", k)
	}
}

func TestCapacities(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	cs := Capacities(r, 1000, 10, 4)
	if len(cs) != 1000 {
		t.Fatalf("len = %d", len(cs))
	}
	mn, mx := cs[0], cs[0]
	for _, c := range cs {
		if c < mn {
			mn = c
		}
		if c > mx {
			mx = c
		}
	}
	if mn < 10 || mx > 40 {
		t.Fatalf("capacities out of [10,40]: min=%d max=%d", mn, mx)
	}
	if float64(mx)/float64(mn) < 2 {
		t.Fatalf("expected wide capacity spread, got %d..%d", mn, mx)
	}
	// Degenerate arguments clamp.
	cs = Capacities(r, 3, 0, 0)
	for _, c := range cs {
		if c != 1 {
			t.Fatalf("clamped capacities = %v", cs)
		}
	}
}
