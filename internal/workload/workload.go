// Package workload generates the service-key corpora and request
// distributions of the paper's evaluation (Section 4): identifiers
// "commonly encountered in a grid computing context such as names of
// linear algebra routines" — BLAS, LAPACK, ScaLAPACK and Sun S3L —
// plus the request pickers (uniform and the hot-spot schedule of
// Figure 8).
package workload

import (
	"fmt"
	"math/rand"

	"dlpt/internal/keys"
)

// blasBases are BLAS level 1-3 routine stems, instantiated with the
// s/d/c/z type prefixes.
var blasBases = []string{
	"axpy", "scal", "copy", "swap", "dot", "nrm2", "asum", "rot", "rotg",
	"gemv", "gbmv", "symv", "sbmv", "spmv", "trmv", "tbmv", "tpmv",
	"trsv", "tbsv", "tpsv", "ger", "syr", "spr", "syr2", "spr2",
	"gemm", "symm", "syrk", "syr2k", "trmm", "trsm",
}

// lapackBases are common LAPACK driver/computational stems.
var lapackBases = []string{
	"gesv", "gbsv", "gtsv", "posv", "ppsv", "pbsv", "ptsv", "sysv",
	"spsv", "gels", "gelsd", "gglse", "ggglm", "syev", "syevd", "spev",
	"sbev", "stev", "gees", "geev", "gesvd", "gesdd", "getrf", "getrs",
	"getri", "potrf", "potrs", "potri", "geqrf", "orgqr", "ormqr",
	"gerqf", "gelqf", "geqlf", "trtrs", "trtri", "gecon", "pocon",
}

// scalapackBases are ScaLAPACK stems; routine names take the "p"
// prefix (the hot spot of Figure 8 at t in [80,120)).
var scalapackBases = []string{
	"gesv", "getrf", "getrs", "getri", "posv", "potrf", "potrs",
	"geqrf", "orgqr", "ormqr", "gels", "syev", "syevd", "syevx",
	"gesvd", "gebrd", "gehrd", "getf2", "trtrs", "lange", "lansy",
	"gemr2d", "tran", "geadd", "laprnt", "lacpy", "laset", "dbsv", "dtsv",
}

// s3lBases are Sun S3L library operation names; routine names take
// the "s3l_" prefix (the hot spot of Figure 8 at t in [40,80)).
var s3lBases = []string{
	"mat_mult", "matvec_mult", "vec_mult", "inner_prod", "outer_prod",
	"fft", "ifft", "fft_detailed", "rc_fft", "lu_factor", "lu_solve",
	"lu_invert", "lu_deallocate", "qr_factor", "qr_solve", "cholesky_factor",
	"cholesky_solve", "eigen", "eigen_iter", "gen_lsq", "gen_svd",
	"sort", "sort_up", "sort_down", "grade_up", "grade_down", "rank",
	"gen_band_solve", "gen_trid_solve", "sym_eigen", "trans", "copy_array",
	"zero_elements", "set_array_element", "get_array_element", "reduce",
	"scan", "rand_lcg", "rand_fib", "declare_sparse", "sparse_matvec",
	"convert_sparse", "walsh", "acorr", "conv", "deconv", "gbtrs",
}

var typePrefixes = []string{"s", "d", "c", "z"}

// BLASNames returns the full BLAS corpus (type prefix x stem).
func BLASNames() []keys.Key {
	var out []keys.Key
	for _, tp := range typePrefixes {
		for _, b := range blasBases {
			out = append(out, keys.Key(tp+b))
		}
	}
	return out
}

// LAPACKNames returns the LAPACK corpus.
func LAPACKNames() []keys.Key {
	var out []keys.Key
	for _, tp := range typePrefixes {
		for _, b := range lapackBases {
			out = append(out, keys.Key(tp+b))
		}
	}
	return out
}

// ScaLAPACKNames returns the ScaLAPACK corpus ("p" + type + stem).
func ScaLAPACKNames() []keys.Key {
	var out []keys.Key
	for _, tp := range typePrefixes {
		for _, b := range scalapackBases {
			out = append(out, keys.Key("p"+tp+b))
		}
	}
	return out
}

// S3LNames returns the Sun S3L corpus ("s3l_" + operation).
func S3LNames() []keys.Key {
	var out []keys.Key
	for _, b := range s3lBases {
		out = append(out, keys.Key("s3l_"+b))
	}
	return out
}

// GridCorpus returns n distinct service keys drawn from the grid
// libraries (BLAS, LAPACK, ScaLAPACK, S3L), extended with versioned
// variants ("_v2", "_v3", ...) when n exceeds the base corpus — the
// paper's trees hold about 1000 keys. The result is deterministic.
func GridCorpus(n int) []keys.Key {
	base := append(BLASNames(), LAPACKNames()...)
	base = append(base, ScaLAPACKNames()...)
	base = append(base, S3LNames()...)
	if n <= len(base) {
		return base[:n]
	}
	out := append([]keys.Key(nil), base...)
	v := 2
	for len(out) < n {
		for _, b := range base {
			if len(out) >= n {
				break
			}
			out = append(out, keys.Key(fmt.Sprintf("%s_v%d", b, v)))
		}
		v++
	}
	return out
}

// Picker selects the key targeted by a discovery request at time t
// among the currently available (declared) keys.
type Picker interface {
	// Name identifies the distribution in reports.
	Name() string
	// Pick returns one key from available (which must be non-empty).
	Pick(r *rand.Rand, available []keys.Key, t int) keys.Key
}

// Uniform picks uniformly among available keys ("services requested
// were randomly picked among the set of available services").
type Uniform struct{}

// Name implements Picker.
func (Uniform) Name() string { return "uniform" }

// Pick implements Picker.
func (Uniform) Pick(r *rand.Rand, available []keys.Key, _ int) keys.Key {
	return available[r.Intn(len(available))]
}

// Zipf picks rank-biased keys (rank 1 most popular), modelling
// skewed service popularity. S controls the skew (S > 1).
type Zipf struct {
	S float64
}

// Name implements Picker.
func (Zipf) Name() string { return "zipf" }

// Pick implements Picker.
func (z Zipf) Pick(r *rand.Rand, available []keys.Key, _ int) keys.Key {
	s := z.S
	if s <= 1 {
		s = 1.2
	}
	zf := rand.NewZipf(r, s, 1, uint64(len(available)-1))
	return available[int(zf.Uint64())]
}

// Phase is one segment of a hot-spot schedule: between From
// (inclusive) and To (exclusive), requests target keys with the given
// prefix with probability Bias, and are uniform otherwise. A phase
// with an empty prefix is fully uniform.
type Phase struct {
	From, To int
	Prefix   keys.Key
	Bias     float64
}

// HotSpot reproduces the Figure 8 workload: bursts of requests on
// lexicographically close keys (a subtree), moving over time.
type HotSpot struct {
	Phases []Phase

	cachedLen    int
	cachedPrefix keys.Key
	cached       []keys.Key
}

// Figure8Schedule returns the paper's schedule: uniform for t<40, the
// S3L subtree for t in [40,80), the ScaLAPACK ("p") subtree for t in
// [80,120), uniform again afterwards.
func Figure8Schedule() *HotSpot {
	return &HotSpot{Phases: []Phase{
		{From: 40, To: 80, Prefix: "s3l", Bias: 0.9},
		{From: 80, To: 120, Prefix: "p", Bias: 0.9},
	}}
}

// Name implements Picker.
func (h *HotSpot) Name() string { return "hotspot" }

// Pick implements Picker.
func (h *HotSpot) Pick(r *rand.Rand, available []keys.Key, t int) keys.Key {
	for _, ph := range h.Phases {
		if t >= ph.From && t < ph.To && !ph.Prefix.IsEmpty() {
			if r.Float64() < ph.Bias {
				if sub := h.withPrefix(available, ph.Prefix); len(sub) > 0 {
					return sub[r.Intn(len(sub))]
				}
			}
			break
		}
	}
	return available[r.Intn(len(available))]
}

// withPrefix filters available keys by prefix, caching per
// (len(available), prefix) since the key population only grows.
func (h *HotSpot) withPrefix(available []keys.Key, prefix keys.Key) []keys.Key {
	if h.cachedLen == len(available) && h.cachedPrefix == prefix {
		return h.cached
	}
	var sub []keys.Key
	for _, k := range available {
		if keys.IsPrefix(prefix, k) {
			sub = append(sub, k)
		}
	}
	h.cachedLen = len(available)
	h.cachedPrefix = prefix
	h.cached = sub
	return sub
}

// Capacities draws nPeers capacities uniformly from [base,
// base*ratio], the paper's heterogeneity model ("the ratio between
// the most and the least powerful peers is 4").
func Capacities(r *rand.Rand, nPeers, base, ratio int) []int {
	if base < 1 {
		base = 1
	}
	if ratio < 1 {
		ratio = 1
	}
	out := make([]int, nPeers)
	for i := range out {
		out[i] = base + r.Intn(base*(ratio-1)+1)
	}
	return out
}
