package catalog

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// corpus builds a service-name-like key set with heavy prefix
// sharing, the shape the succinct codec is designed for.
func corpus(n int) []string {
	bases := []string{
		"dgemm", "dgemv", "dgetrf", "dgetrs", "dpotrf", "dpotrs",
		"sgemm", "sgemv", "sgetrf", "zgemm", "zheev", "dsyev",
		"pdgemm", "pdgetrf", "pdpotrf", "s3l_mat_mult", "s3l_fft",
	}
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		b := bases[i%len(bases)]
		if v := i / len(bases); v > 0 {
			b = fmt.Sprintf("%s_v%d", b, v+1)
		}
		out = append(out, b)
	}
	return out
}

func entriesFor(ks []string, full bool) []Entry {
	entries := make([]Entry, len(ks))
	for i, k := range ks {
		entries[i] = Entry{Key: k, Values: []string{"ep://grid-" + fmt.Sprint(i%16)}}
		if full {
			if len(k) > 1 {
				entries[i].Father = k[:len(k)-1]
				entries[i].HasFather = true
			}
			entries[i].LoadPrev = i % 7
			entries[i].LoadCur = i % 5
		}
	}
	return entries
}

func TestRoundTripBothCodecs(t *testing.T) {
	ks := corpus(500)
	for _, full := range []bool{false, true} {
		secs := SecValues
		if full {
			secs = SecAll
		}
		want := canonicalize(entriesFor(ks, full))
		for _, c := range []Codec{Legacy, LOUDS} {
			enc := Append(nil, c, entriesFor(ks, full), secs)
			got, gotSecs, err := Decode(enc)
			if err != nil {
				t.Fatalf("codec v%d: decode: %v", c.Version(), err)
			}
			if gotSecs != secs {
				t.Fatalf("codec v%d: sections = %v, want %v", c.Version(), gotSecs, secs)
			}
			if !entriesEqual(got, want) {
				t.Fatalf("codec v%d: round trip mismatch", c.Version())
			}
		}
	}
}

func TestRoundTripWithChildren(t *testing.T) {
	entries := []Entry{
		{Key: "", Values: []string{"root"}, Children: []string{"dge", "sge"}},
		{Key: "dgemm", Values: []string{"a", "b"}, Father: "dge", HasFather: true},
		{Key: "dgemv", Father: "dge", HasFather: true},
		{Key: "sgemm", Father: "sge", HasFather: true, Children: []string{"sgemm_v2"}},
		{Key: "sgemm_v2", Values: []string{"a"}, Father: "sgemm", HasFather: true},
	}
	for _, c := range []Codec{Legacy, LOUDS} {
		enc := Append(nil, c, entries, SecAll)
		got, _, err := Decode(enc)
		if err != nil {
			t.Fatalf("codec v%d: decode: %v", c.Version(), err)
		}
		if !entriesEqual(got, entries) {
			t.Fatalf("codec v%d: mismatch\ngot  %+v\nwant %+v", c.Version(), got, entries)
		}
	}
}

func TestUnsortedInputCanonicalizes(t *testing.T) {
	in := []Entry{{Key: "b"}, {Key: "a", Values: []string{"old"}}, {Key: "a", Values: []string{"new"}}}
	enc := Append(nil, LOUDS, in, SecValues)
	got, _, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{{Key: "a", Values: []string{"new"}}, {Key: "b"}}
	if !entriesEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestEmptyCatalogue(t *testing.T) {
	for _, c := range []Codec{Legacy, LOUDS} {
		enc := Append(nil, c, nil, SecValues)
		got, _, err := Decode(enc)
		if err != nil {
			t.Fatalf("codec v%d: %v", c.Version(), err)
		}
		if len(got) != 0 {
			t.Fatalf("codec v%d: got %d entries", c.Version(), len(got))
		}
	}
}

func TestKeysRoundTrip(t *testing.T) {
	sorted := corpus(200)
	canon := canonicalize(entriesFor(sorted, false))
	sortedKeys := make([]string, len(canon))
	for i, e := range canon {
		sortedKeys[i] = e.Key
	}
	// Sorted-unique keys travel through the succinct codec.
	enc := AppendKeys(nil, LOUDS, sortedKeys)
	if enc[0] != versionLOUDS {
		t.Fatalf("sorted keys: codec v%d, want LOUDS", enc[0])
	}
	got, err := DecodeKeys(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sortedKeys) {
		t.Fatal("sorted keys round trip mismatch")
	}
	// An unsorted batch must keep its order: the legacy fallback.
	unsorted := []string{"zz", "aa", "mm"}
	enc = AppendKeys(nil, LOUDS, unsorted)
	if enc[0] != versionLegacy {
		t.Fatalf("unsorted keys: codec v%d, want legacy fallback", enc[0])
	}
	got, err = DecodeKeys(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, unsorted) {
		t.Fatal("unsorted keys lost their order")
	}
}

// TestSuccinctSizeWin pins the reason this codec exists: on a
// prefix-sharing corpus with shared endpoint values, the succinct
// form must be at least 5x smaller than the legacy form.
func TestSuccinctSizeWin(t *testing.T) {
	entries := entriesFor(corpus(10000), false)
	legacy := len(Append(nil, Legacy, entries, SecValues))
	louds := len(Append(nil, LOUDS, entries, SecValues))
	t.Logf("legacy=%d bytes (%.1f/key), louds=%d bytes (%.1f/key), ratio=%.1fx",
		legacy, float64(legacy)/10000, louds, float64(louds)/10000,
		float64(legacy)/float64(louds))
	if louds*5 > legacy {
		t.Fatalf("succinct codec too large: legacy=%d louds=%d (<5x)", legacy, louds)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	entries := entriesFor(corpus(300), true)
	a := Append(nil, LOUDS, entries, SecAll)
	b := Append(nil, LOUDS, entries, SecAll)
	if string(a) != string(b) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestHostileInputsDoNotPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seed := Append(nil, LOUDS, entriesFor(corpus(64), true), SecAll)
	for i := 0; i < 5000; i++ {
		p := append([]byte(nil), seed...)
		// Flip a handful of bytes and truncate somewhere.
		for j := 0; j < 4; j++ {
			p[rng.Intn(len(p))] ^= byte(1 << rng.Intn(8))
		}
		p = p[:rng.Intn(len(p)+1)]
		entries, _, err := Decode(p) // must not panic or hang
		_ = entries
		_ = err
	}
}

func TestViewStreamsLazily(t *testing.T) {
	entries := entriesFor(corpus(100), false)
	enc := Append(nil, LOUDS, entries, SecValues)
	v, err := NewView(enc)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != len(canonicalize(entries)) {
		t.Fatalf("Len = %d", v.Len())
	}
	seen := 0
	err = v.Ascend(func(e Entry) bool {
		seen++
		return seen < 10 // early stop must be clean
	})
	if err != nil || seen != 10 {
		t.Fatalf("early stop: seen=%d err=%v", seen, err)
	}
}

func entriesEqual(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Key != y.Key || x.Father != y.Father || x.HasFather != y.HasFather ||
			x.LoadPrev != y.LoadPrev || x.LoadCur != y.LoadCur {
			return false
		}
		if len(x.Values) != len(y.Values) || len(x.Children) != len(y.Children) {
			return false
		}
		for j := range x.Values {
			if x.Values[j] != y.Values[j] {
				return false
			}
		}
		for j := range x.Children {
			if x.Children[j] != y.Children[j] {
				return false
			}
		}
	}
	return true
}
