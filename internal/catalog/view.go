package catalog

import (
	"errors"
	"fmt"
)

// View is a decoded-but-not-materialized catalogue: it holds the
// envelope bytes (possibly a memory-mapped snapshot region) plus the
// small rank/select directory rebuilt from the LOUDS bitmap, and
// materializes entries only as Ascend walks them — the lazy
// cold-restart path. Keys, values and links are copied out of the
// underlying bytes as they are produced, so the mapping may be
// released once the walk (or the last walk) returns.
//
// A View is not safe for concurrent use.
type View struct {
	secs Sections

	// Legacy envelopes have no succinct structure to navigate; they
	// decode eagerly into entries and Ascend just replays them.
	eager []Entry

	n      int // trie node count
	m      int // entry count
	louds  *bitvec
	labels []byte  // label of node j is labels[j-1]
	isEnt  *bitvec // entry marks, one bit per node
	valTab []span  // distinct-value table: spans into valRaw
	valRaw []byte
	valStr []string // memoized materialized values
	refs   []byte   // per-entry value references
	strct  []byte   // per-entry father/children records
	loads  []byte   // per-entry load records
}

// span is one string's location inside a section's raw bytes.
type span struct{ off, end int }

// NewView opens a full envelope for lazy iteration, dispatching on
// the version byte like Decode.
func NewView(p []byte) (*View, error) {
	if len(p) < 2 {
		return nil, errors.New("catalog: truncated envelope")
	}
	c, ok := ByVersion(p[0])
	if !ok {
		return nil, fmt.Errorf("catalog: unknown codec version %d", p[0])
	}
	secs := Sections(p[1])
	if secs&^SecAll != 0 {
		return nil, fmt.Errorf("catalog: unknown sections 0x%02x", p[1])
	}
	if _, lazy := c.(loudsCodec); lazy {
		return viewFromPayload(p[2:], secs)
	}
	entries, err := c.DecodePayload(p[2:], secs)
	if err != nil {
		return nil, err
	}
	return &View{secs: secs, eager: entries, m: len(entries)}, nil
}

// viewFromPayload validates a LOUDS payload's structure (counts,
// section bounds, bitmap population) without materializing any
// entry.
func viewFromPayload(p []byte, secs Sections) (*View, error) {
	nu, p, err := getUvarint(p)
	if err != nil {
		return nil, fmt.Errorf("catalog: node count: %w", err)
	}
	if nu == 0 {
		return &View{secs: secs}, nil
	}
	if nu > maxCatalogNodes(p) {
		return nil, errors.New("catalog: implausible node count")
	}
	n := int(nu)
	mu, p, err := getUvarint(p)
	if err != nil {
		return nil, fmt.Errorf("catalog: entry count: %w", err)
	}
	if mu > nu {
		return nil, errors.New("catalog: more entries than trie nodes")
	}
	v := &View{secs: secs, n: n, m: int(mu)}

	bmLen := (2*n - 1 + 7) / 8
	if len(p) < bmLen {
		return nil, errors.New("catalog: truncated LOUDS bitmap")
	}
	v.louds = newBitvec(wordsFromBytes(p[:bmLen], 2*n-1), 2*n-1)
	p = p[bmLen:]
	if v.louds.ones() != n-1 {
		return nil, errors.New("catalog: LOUDS bitmap population mismatch")
	}
	if len(p) < n-1 {
		return nil, errors.New("catalog: truncated label section")
	}
	v.labels = p[:n-1]
	p = p[n-1:]
	entLen := (n + 7) / 8
	if len(p) < entLen {
		return nil, errors.New("catalog: truncated entry bitmap")
	}
	v.isEnt = newBitvec(wordsFromBytes(p[:entLen], n), n)
	p = p[entLen:]
	if v.isEnt.ones() != v.m {
		return nil, errors.New("catalog: entry bitmap population mismatch")
	}

	if secs&SecValues != 0 {
		var sec []byte
		if sec, p, err = getSection(p); err != nil {
			return nil, fmt.Errorf("catalog: value section: %w", err)
		}
		if err := v.indexValueTable(sec); err != nil {
			return nil, err
		}
	}
	if secs&SecStruct != 0 {
		if v.strct, p, err = getSection(p); err != nil {
			return nil, fmt.Errorf("catalog: struct section: %w", err)
		}
	}
	if secs&SecLoads != 0 {
		if v.loads, _, err = getSection(p); err != nil {
			return nil, fmt.Errorf("catalog: load section: %w", err)
		}
	}
	return v, nil
}

func getSection(p []byte) ([]byte, []byte, error) {
	n, p, err := getUvarint(p)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(p)) {
		return nil, nil, errors.New("catalog: truncated section")
	}
	return p[:n], p[n:], nil
}

// indexValueTable records the table strings' spans; the strings
// themselves materialize on first reference.
func (v *View) indexValueTable(sec []byte) error {
	cu, rest, err := getUvarint(sec)
	if err != nil {
		return fmt.Errorf("catalog: value table count: %w", err)
	}
	if cu > uint64(len(rest)) {
		return errors.New("catalog: implausible value table count")
	}
	v.valRaw = sec
	v.valTab = make([]span, 0, cu)
	off := len(sec) - len(rest)
	for i := uint64(0); i < cu; i++ {
		lu, after, err := getUvarint(sec[off:])
		if err != nil {
			return fmt.Errorf("catalog: value table string %d: %w", i, err)
		}
		start := len(sec) - len(after)
		if lu > uint64(len(after)) {
			return errors.New("catalog: truncated value table string")
		}
		v.valTab = append(v.valTab, span{start, start + int(lu)})
		off = start + int(lu)
	}
	v.refs = sec[off:]
	return nil
}

// value materializes (and memoizes) table entry i.
func (v *View) value(i int) string {
	if v.valStr == nil {
		v.valStr = make([]string, len(v.valTab))
	}
	if s := v.valStr[i]; s != "" {
		return s
	}
	sp := v.valTab[i]
	s := string(v.valRaw[sp.off:sp.end])
	v.valStr[i] = s
	return s
}

// Sections reports which per-entry sections the catalogue carries.
func (v *View) Sections() Sections { return v.secs }

// Len returns the number of entries.
func (v *View) Len() int { return v.m }

// run returns node j's child run [start, end) in the bitmap.
func (v *View) run(j int) (int, int) {
	start := 0
	if j > 0 {
		start = v.louds.select0(j-1) + 1
	}
	return start, v.louds.select0(j)
}

// nodeString spells node id's key by walking its ancestor chain. The
// bool is false when the chain is corrupt (a cycle or an id outside
// the trie).
func (v *View) nodeString(id int) (string, bool) {
	if id == 0 {
		return "", true
	}
	if id < 0 || id >= v.n {
		return "", false
	}
	buf := make([]byte, 0, 16)
	for steps := 0; id != 0; steps++ {
		if steps >= v.n {
			return "", false // cycle in a hostile bitmap
		}
		buf = append(buf, v.labels[id-1])
		pos := v.louds.select1(id - 1)
		if pos < 0 {
			return "", false
		}
		id = v.louds.rank0(pos)
	}
	for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return string(buf), true
}

// Ascend walks the catalogue in ascending key order, materializing
// one entry at a time. The walk stops early when yield returns
// false; the per-entry section cursors make a stopped walk
// non-resumable (open a fresh View to walk again — Views over
// snapshots are cheap).
func (v *View) Ascend(yield func(Entry) bool) error {
	if v.louds == nil {
		for _, e := range v.eager {
			if !yield(e) {
				return nil
			}
		}
		return nil
	}
	type frame struct{ kid, end int }
	stack := make([]frame, 0, 16)
	key := make([]byte, 0, 32)
	vc := valCursor{refs: v.refs}
	strct, loads := v.strct, v.loads
	emitted, visited := 0, 0

	node := 0
	for {
		if visited++; visited > v.n {
			return errors.New("catalog: cyclic LOUDS bitmap")
		}
		if v.isEnt.get(node) {
			e := Entry{Key: string(key)}
			var err error
			if v.secs&SecValues != 0 {
				if e.Values, err = v.nextValues(&vc); err != nil {
					return err
				}
			}
			if v.secs&SecStruct != 0 {
				if strct, err = v.decodeStruct(strct, &e); err != nil {
					return err
				}
			}
			if v.secs&SecLoads != 0 {
				if loads, err = v.decodeLoads(loads, &e); err != nil {
					return err
				}
			}
			emitted++
			if !yield(e) {
				return nil
			}
		}
		start, end := v.run(node)
		if start < end { // descend to the first child
			kid := v.louds.rank1(start) + 1
			if kid >= v.n {
				return errors.New("catalog: LOUDS child out of range")
			}
			stack = append(stack, frame{kid, kid + (end - start)})
			key = append(key, v.labels[kid-1])
			node = kid
			continue
		}
		// Ascend until a sibling exists.
		for {
			if len(stack) == 0 {
				if emitted != v.m {
					return errors.New("catalog: unreachable entry nodes")
				}
				return nil
			}
			top := &stack[len(stack)-1]
			key = key[:len(key)-1]
			top.kid++
			if top.kid < top.end {
				if top.kid >= v.n {
					return errors.New("catalog: LOUDS child out of range")
				}
				key = append(key, v.labels[top.kid-1])
				node = top.kid
				break
			}
			stack = stack[:len(stack)-1]
		}
	}
}

// valCursor walks the run-length-grouped value-reference stream: a
// group `repeat | count | refs...` covers repeat+1 consecutive
// entries sharing one value list.
type valCursor struct {
	refs   []byte
	repeat uint64   // entries left that reuse vals
	vals   []string // current group's value list
}

func (v *View) nextValues(c *valCursor) ([]string, error) {
	if c.repeat > 0 {
		c.repeat--
		if c.vals == nil {
			return nil, nil
		}
		// Each entry gets its own slice: decoded entries are handed to
		// callers that own and may mutate them.
		return append([]string(nil), c.vals...), nil
	}
	rep, refs, err := getUvarint(c.refs)
	if err != nil {
		return nil, fmt.Errorf("catalog: value run length: %w", err)
	}
	if rep > uint64(v.m) {
		return nil, errors.New("catalog: implausible value run length")
	}
	cu, refs, err := getUvarint(refs)
	if err != nil {
		return nil, fmt.Errorf("catalog: value ref count: %w", err)
	}
	if cu > uint64(len(refs))+1 {
		return nil, errors.New("catalog: implausible value ref count")
	}
	var vals []string
	for i := uint64(0); i < cu; i++ {
		var idx uint64
		if idx, refs, err = getUvarint(refs); err != nil {
			return nil, fmt.Errorf("catalog: value ref: %w", err)
		}
		if idx >= uint64(len(v.valTab)) {
			return nil, errors.New("catalog: value ref out of table")
		}
		vals = append(vals, v.value(int(idx)))
	}
	c.refs, c.repeat, c.vals = refs, rep, vals
	if vals == nil {
		return nil, nil
	}
	return append([]string(nil), vals...), nil
}

func (v *View) decodeStruct(p []byte, e *Entry) ([]byte, error) {
	fu, p, err := getUvarint(p)
	if err != nil {
		return nil, fmt.Errorf("catalog: father ref: %w", err)
	}
	if fu > 0 {
		s, ok := v.nodeString(int(fu - 1))
		if !ok {
			return nil, errors.New("catalog: father ref out of trie")
		}
		e.Father, e.HasFather = s, true
	}
	cu, p, err := getUvarint(p)
	if err != nil {
		return nil, fmt.Errorf("catalog: child ref count: %w", err)
	}
	if cu > uint64(len(p))+1 {
		return nil, errors.New("catalog: implausible child ref count")
	}
	for i := uint64(0); i < cu; i++ {
		var idx uint64
		if idx, p, err = getUvarint(p); err != nil {
			return nil, fmt.Errorf("catalog: child ref: %w", err)
		}
		s, ok := v.nodeString(int(idx))
		if !ok {
			return nil, errors.New("catalog: child ref out of trie")
		}
		e.Children = append(e.Children, s)
	}
	return p, nil
}

func (v *View) decodeLoads(p []byte, e *Entry) ([]byte, error) {
	lu, p, err := getUvarint(p)
	if err != nil {
		return nil, fmt.Errorf("catalog: loadPrev: %w", err)
	}
	e.LoadPrev = int(lu)
	if lu, p, err = getUvarint(p); err != nil {
		return nil, fmt.Errorf("catalog: loadCur: %w", err)
	}
	e.LoadCur = int(lu)
	return p, nil
}

// get reports bit i of the entry bitmap.
func (b *bitvec) get(i int) bool {
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}
