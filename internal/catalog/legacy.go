package catalog

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// legacyCodec is the version-0 codec: the verbose length-prefixed
// entry encoding the transport REPLICA frames and snapshots used
// before the succinct codec existed. One entry costs its full key
// plus every section inline — no sharing, no deduplication. It stays
// both readable and writable so old snapshots load and mixed-version
// clusters interoperate during migration.
//
// The raw form preserves entry order, which AppendKeys relies on for
// traversal-ordered key batches; AppendPayload canonicalizes first
// like every codec.
type legacyCodec struct{}

func (legacyCodec) Version() byte { return versionLegacy }

func (legacyCodec) AppendPayload(dst []byte, entries []Entry, secs Sections) []byte {
	return appendLegacyPayload(dst, canonicalize(entries), secs)
}

func appendLegacyPayload(dst []byte, entries []Entry, secs Sections) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = appendString(dst, e.Key)
		if secs&SecStruct != 0 {
			// The father of a fatherless entry encodes empty — the
			// canonical form every codec agrees on.
			if e.HasFather {
				dst = appendString(dst, e.Father)
				dst = append(dst, 1)
			} else {
				dst = appendString(dst, "")
				dst = append(dst, 0)
			}
			dst = binary.AppendUvarint(dst, uint64(len(e.Children)))
			for _, c := range e.Children {
				dst = appendString(dst, c)
			}
		}
		if secs&SecValues != 0 {
			dst = binary.AppendUvarint(dst, uint64(len(e.Values)))
			for _, v := range e.Values {
				dst = appendString(dst, v)
			}
		}
		if secs&SecLoads != 0 {
			dst = binary.AppendUvarint(dst, uint64(e.LoadPrev))
			dst = binary.AppendUvarint(dst, uint64(e.LoadCur))
		}
	}
	return dst
}

func (legacyCodec) DecodePayload(p []byte, secs Sections) ([]Entry, error) {
	n, p, err := getUvarint(p)
	if err != nil {
		return nil, fmt.Errorf("catalog: entry count: %w", err)
	}
	// Each entry costs at least one byte on the wire: a count beyond
	// the remaining payload is corrupt, and pre-allocating from it
	// would let a tiny input demand an arbitrary allocation.
	if n > uint64(len(p))+1 {
		return nil, errors.New("catalog: implausible entry count")
	}
	out := make([]Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e Entry
		if e.Key, p, err = getString(p); err != nil {
			return nil, fmt.Errorf("catalog: entry %d key: %w", i, err)
		}
		if secs&SecStruct != 0 {
			if e.Father, p, err = getString(p); err != nil {
				return nil, fmt.Errorf("catalog: entry %d father: %w", i, err)
			}
			if len(p) < 1 {
				return nil, errors.New("catalog: truncated hasFather")
			}
			e.HasFather = p[0] != 0
			p = p[1:]
			var m uint64
			if m, p, err = getUvarint(p); err != nil {
				return nil, fmt.Errorf("catalog: entry %d child count: %w", i, err)
			}
			if m > uint64(len(p)) {
				return nil, errors.New("catalog: implausible child count")
			}
			for j := uint64(0); j < m; j++ {
				var c string
				if c, p, err = getString(p); err != nil {
					return nil, fmt.Errorf("catalog: entry %d child %d: %w", i, j, err)
				}
				e.Children = append(e.Children, c)
			}
		}
		if secs&SecValues != 0 {
			var m uint64
			if m, p, err = getUvarint(p); err != nil {
				return nil, fmt.Errorf("catalog: entry %d value count: %w", i, err)
			}
			if m > uint64(len(p)) {
				return nil, errors.New("catalog: implausible value count")
			}
			for j := uint64(0); j < m; j++ {
				var v string
				if v, p, err = getString(p); err != nil {
					return nil, fmt.Errorf("catalog: entry %d value %d: %w", i, j, err)
				}
				e.Values = append(e.Values, v)
			}
		}
		if secs&SecLoads != 0 {
			var v uint64
			if v, p, err = getUvarint(p); err != nil {
				return nil, fmt.Errorf("catalog: entry %d loadPrev: %w", i, err)
			}
			e.LoadPrev = int(v)
			if v, p, err = getUvarint(p); err != nil {
				return nil, fmt.Errorf("catalog: entry %d loadCur: %w", i, err)
			}
			e.LoadCur = int(v)
		}
		out = append(out, e)
	}
	return out, nil
}

// --- shared wire helpers -----------------------------------------------------

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func getUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errors.New("catalog: truncated varint")
	}
	return v, p[n:], nil
}

func getString(p []byte) (string, []byte, error) {
	n, p, err := getUvarint(p)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(p)) < n {
		return "", nil, errors.New("catalog: truncated string")
	}
	return string(p[:n]), p[n:], nil
}
