package catalog

import (
	"encoding/binary"
	"math/bits"
	"sort"
)

// loudsCodec is the version-1 succinct codec, after the LOUDS
// (Level-Order Unary Degree Sequence) trie encodings of Jacobson and
// the SuRF fast-succinct-trie line: the sorted key set becomes a
// byte trie marshalled breadth-first as
//
//	bitmap  — for each trie node in BFS order, degree ones then a
//	          zero (2n-1 bits for n nodes; the i-th one, counting
//	          from zero, IS node i+1, so parent/child navigation is
//	          rank/select arithmetic over the bitmap)
//	labels  — one byte per non-root node, BFS order
//	entries — one bit per node marking the nodes that carry an entry
//
// followed by the optional sections, each length-prefixed:
//
//	values  — a sorted distinct-value table plus run-length-grouped
//	          per-entry varint references into it (a run of entries
//	          sharing one value list costs a few bytes total instead
//	          of a full copy — or even a count — per entry)
//	struct  — per entry, the father and children links as trie-node
//	          indexes (a full key collapses to a varint because the
//	          trie already spells it)
//	loads   — per entry, LoadPrev and LoadCur varints
//
// Per-entry section records are in lexicographic key order — the
// depth-first order of the trie — so decoding streams them in step
// with the walk. Keys sharing prefixes share trie paths, which on
// service-name corpora shrinks the key bytes by roughly an order of
// magnitude; the rank directory is rebuilt at decode time from the
// bitmap itself, so the wire form carries no redundancy.
type loudsCodec struct{}

func (loudsCodec) Version() byte { return versionLOUDS }

// maxCatalogNodes bounds the node count a decoder will accept
// relative to the payload it came from: every non-root node costs at
// least one label byte, so anything larger is corrupt and must not
// drive allocation.
func maxCatalogNodes(p []byte) uint64 { return uint64(len(p)) + 1 }

// --- bit vector with rank/select ---------------------------------------------

// bitvec is a plain bit vector with a word-granular rank directory:
// rank is two array reads and a popcount, select is a binary search
// over words then an in-word scan. Bits are addressed LSB-first
// within each 64-bit word, matching the serialized byte order.
type bitvec struct {
	words []uint64
	n     int      // number of valid bits
	ranks []uint32 // ranks[i] = ones in words[:i]
}

func newBitvec(words []uint64, n int) *bitvec {
	b := &bitvec{words: words, n: n, ranks: make([]uint32, len(words)+1)}
	for i, w := range words {
		b.ranks[i+1] = b.ranks[i] + uint32(bits.OnesCount64(w))
	}
	return b
}

func (b *bitvec) ones() int { return int(b.ranks[len(b.words)]) }

// rank1 counts ones in [0, i).
func (b *bitvec) rank1(i int) int {
	w := i >> 6
	r := int(b.ranks[w])
	if off := uint(i & 63); off != 0 {
		r += bits.OnesCount64(b.words[w] & (1<<off - 1))
	}
	return r
}

// rank0 counts zeros in [0, i).
func (b *bitvec) rank0(i int) int { return i - b.rank1(i) }

// select1 returns the position of the i-th one (0-based), or -1.
func (b *bitvec) select1(i int) int {
	if i < 0 || i >= b.ones() {
		return -1
	}
	// Last word whose cumulative rank is still <= i.
	lo, hi := 0, len(b.words)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(b.ranks[mid]) <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo<<6 + selectInWord(b.words[lo], i-int(b.ranks[lo]))
}

// select0 returns the position of the i-th zero (0-based), or -1.
func (b *bitvec) select0(i int) int {
	if i < 0 || i >= b.n-b.ones() {
		return -1
	}
	lo, hi := 0, len(b.words)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if mid<<6-int(b.ranks[mid]) <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	pos := lo<<6 + selectInWord(^b.words[lo], i-(lo<<6-int(b.ranks[lo])))
	if pos >= b.n {
		return -1
	}
	return pos
}

// selectInWord returns the position of the r-th set bit of w.
func selectInWord(w uint64, r int) int {
	for i := 0; i < 64; i++ {
		if w&(1<<uint(i)) != 0 {
			if r == 0 {
				return i
			}
			r--
		}
	}
	return -1
}

// wordsFromBytes loads a little-endian byte serialization into words,
// masking any tail bits beyond n so popcount validation is exact.
func wordsFromBytes(p []byte, n int) []uint64 {
	words := make([]uint64, (n+63)/64)
	for i, c := range p {
		words[i>>3] |= uint64(c) << uint((i&7)*8)
	}
	if off := uint(n & 63); off != 0 && len(words) > 0 {
		words[len(words)-1] &= 1<<off - 1
	}
	return words
}

// --- encoding ----------------------------------------------------------------

// bnode is one trie node during encoding.
type bnode struct {
	lab  byte
	kids []*bnode
	id   int
}

// buildTrie inserts the sorted distinct strings into a byte trie and
// returns the root plus each string's terminal node. Sorted insertion
// keeps every node's children in ascending label order, which is what
// makes the decoder's depth-first walk emit keys lexicographically.
func buildTrie(strs []string) (*bnode, map[string]*bnode) {
	root := &bnode{}
	at := make(map[string]*bnode, len(strs))
	for _, s := range strs {
		n := root
		for i := 0; i < len(s); i++ {
			c := s[i]
			if k := len(n.kids); k > 0 && n.kids[k-1].lab == c {
				n = n.kids[k-1]
				continue
			}
			kid := &bnode{lab: c}
			n.kids = append(n.kids, kid)
			n = kid
		}
		at[s] = n
	}
	return root, at
}

func setBit(p []byte, i int) { p[i>>3] |= 1 << uint(i&7) }

func (loudsCodec) AppendPayload(dst []byte, entries []Entry, secs Sections) []byte {
	entries = canonicalize(entries)
	if len(entries) == 0 {
		return binary.AppendUvarint(dst, 0)
	}

	// Every string the catalogue must spell lives in one trie: the
	// entry keys plus, when the struct section rides along, the father
	// and children links (they are keys of the same tree, so they
	// share the same prefixes).
	strs := make([]string, 0, len(entries))
	for _, e := range entries {
		strs = append(strs, e.Key)
		if secs&SecStruct != 0 {
			if e.HasFather {
				strs = append(strs, e.Father)
			}
			strs = append(strs, e.Children...)
		}
	}
	sort.Strings(strs)
	strs = dedupSorted(strs)
	root, at := buildTrie(strs)

	// BFS numbering; bitmap and labels fall out of the same pass.
	n := 0
	for queue := []*bnode{root}; len(queue) > 0; {
		nd := queue[0]
		queue = queue[1:]
		nd.id = n
		n++
		queue = append(queue, nd.kids...)
	}
	bitmap := make([]byte, (2*n-1+7)/8)
	labels := make([]byte, 0, n-1)
	bit := 0
	for queue := []*bnode{root}; len(queue) > 0; {
		nd := queue[0]
		queue = queue[1:]
		for _, kid := range nd.kids {
			setBit(bitmap, bit)
			bit++
			labels = append(labels, kid.lab)
		}
		bit++ // the run-terminating zero
		queue = append(queue, nd.kids...)
	}
	entBits := make([]byte, (n+7)/8)
	for _, e := range entries {
		setBit(entBits, at[e.Key].id)
	}

	dst = binary.AppendUvarint(dst, uint64(n))
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	dst = append(dst, bitmap...)
	dst = append(dst, labels...)
	dst = append(dst, entBits...)

	if secs&SecValues != 0 {
		dst = appendSection(dst, encodeValueSection(entries))
	}
	if secs&SecStruct != 0 {
		var sec []byte
		for _, e := range entries {
			if e.HasFather {
				sec = binary.AppendUvarint(sec, uint64(at[e.Father].id)+1)
			} else {
				sec = binary.AppendUvarint(sec, 0)
			}
			sec = binary.AppendUvarint(sec, uint64(len(e.Children)))
			for _, c := range e.Children {
				sec = binary.AppendUvarint(sec, uint64(at[c].id))
			}
		}
		dst = appendSection(dst, sec)
	}
	if secs&SecLoads != 0 {
		var sec []byte
		for _, e := range entries {
			sec = binary.AppendUvarint(sec, uint64(e.LoadPrev))
			sec = binary.AppendUvarint(sec, uint64(e.LoadCur))
		}
		dst = appendSection(dst, sec)
	}
	return dst
}

// encodeValueSection writes the distinct-value table (sorted) and the
// per-entry references into it, run-length grouped: each group is
// `repeat | count | refs...` and covers repeat+1 consecutive entries
// sharing the same value list. Catalogues where many services declare
// the same endpoint — the common shape — collapse to a handful of
// groups instead of two bytes per entry.
func encodeValueSection(entries []Entry) []byte {
	var all []string
	for _, e := range entries {
		all = append(all, e.Values...)
	}
	sort.Strings(all)
	all = dedupSorted(all)
	idx := make(map[string]int, len(all))
	for i, v := range all {
		idx[v] = i
	}
	sec := binary.AppendUvarint(nil, uint64(len(all)))
	for _, v := range all {
		sec = appendString(sec, v)
	}
	for i := 0; i < len(entries); {
		j := i + 1
		for j < len(entries) && equalStrings(entries[j].Values, entries[i].Values) {
			j++
		}
		sec = binary.AppendUvarint(sec, uint64(j-i-1))
		sec = binary.AppendUvarint(sec, uint64(len(entries[i].Values)))
		for _, v := range entries[i].Values {
			sec = binary.AppendUvarint(sec, uint64(idx[v]))
		}
		i = j
	}
	return sec
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func appendSection(dst, sec []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(sec)))
	return append(dst, sec...)
}

func dedupSorted(ss []string) []string {
	out := ss[:0]
	for _, s := range ss {
		if n := len(out); n > 0 && out[n-1] == s {
			continue
		}
		out = append(out, s)
	}
	return out
}

func (c loudsCodec) DecodePayload(p []byte, secs Sections) ([]Entry, error) {
	v, err := viewFromPayload(p, secs)
	if err != nil {
		return nil, err
	}
	out := make([]Entry, 0, v.m)
	err = v.Ascend(func(e Entry) bool {
		out = append(out, e)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
