// Package catalog is the shared marshalling layer for node
// catalogues: the sorted set of tree-node states that snapshots
// persist and REPLICA/STREAM frames ship. Every encoded catalogue is
// a self-describing envelope
//
//	version(1) | sections(1) | payload
//
// where the version byte selects the codec and the sections byte
// records which optional per-entry sections (values, structure,
// loads) the payload carries. Two codecs exist:
//
//	version 0 — Legacy: the verbose length-prefixed encoding the
//	            transport frames used historically; kept readable
//	            (and writable, for mixed-version interop) forever.
//	version 1 — LOUDS: a succinct trie encoding (see louds.go) that
//	            stores the key set as a breadth-first LOUDS bitmap
//	            with a rank/select directory, one label byte per trie
//	            node, and deduplicated value/structure sections. On
//	            prefix-sharing service-key corpora it is roughly an
//	            order of magnitude smaller than the legacy form.
//
// Decoding dispatches on the version byte, so a reader that knows
// both codecs accepts either — old snapshots stay loadable and
// mixed-version clusters interoperate. Entries decode in ascending
// key order regardless of codec.
package catalog

import (
	"errors"
	"fmt"
	"sort"
)

// Entry is one catalogue entry: a tree node's key plus the optional
// sections a particular use carries (snapshots: values only; replica
// batches: everything; stream batches: keys only).
type Entry struct {
	Key       string
	Values    []string
	Father    string
	HasFather bool
	Children  []string
	LoadPrev  int
	LoadCur   int
}

// Sections says which per-entry sections an encoded catalogue
// carries. Keys are always present.
type Sections uint8

const (
	// SecValues carries each entry's registered values.
	SecValues Sections = 1 << iota
	// SecStruct carries each entry's father and children links.
	SecStruct
	// SecLoads carries each entry's load history (LoadPrev, LoadCur).
	SecLoads

	// SecAll is every section: the full NodeInfo fidelity replica
	// batches need.
	SecAll = SecValues | SecStruct | SecLoads
)

// Codec encodes and decodes the payload part of an envelope. The
// envelope (version and sections bytes) is handled by Append/Decode.
type Codec interface {
	// Version is the envelope version byte identifying this codec.
	Version() byte
	// AppendPayload appends the encoding of entries to dst. Entries
	// need not be sorted; the encoded form is canonical (sorted by
	// key, later duplicates winning).
	AppendPayload(dst []byte, entries []Entry, secs Sections) []byte
	// DecodePayload parses a payload produced by AppendPayload,
	// returning the entries in ascending key order.
	DecodePayload(p []byte, secs Sections) ([]Entry, error)
}

// The codec registry. Default is what new snapshots and frames are
// written with; decoding accepts every registered version.
var (
	// Legacy is the version-0 verbose codec.
	Legacy Codec = legacyCodec{}
	// LOUDS is the version-1 succinct codec.
	LOUDS Codec = loudsCodec{}
	// Default is the codec used when the caller does not choose one.
	Default = LOUDS
)

// ByVersion returns the codec registered for an envelope version
// byte.
func ByVersion(v byte) (Codec, bool) {
	switch v {
	case versionLegacy:
		return Legacy, true
	case versionLOUDS:
		return LOUDS, true
	}
	return nil, false
}

// ByName resolves a codec by its human name ("legacy", "louds") —
// the configuration surface for forcing the migration codec.
func ByName(name string) (Codec, bool) {
	switch name {
	case "legacy":
		return Legacy, true
	case "louds", "":
		return LOUDS, true
	}
	return nil, false
}

const (
	versionLegacy = 0
	versionLOUDS  = 1
)

// Append encodes entries as a full envelope with the given codec.
func Append(dst []byte, c Codec, entries []Entry, secs Sections) []byte {
	dst = append(dst, c.Version(), byte(secs))
	return c.AppendPayload(dst, entries, secs)
}

// Decode parses a full envelope, dispatching on its version byte.
// Entries come back in ascending key order.
func Decode(p []byte) ([]Entry, Sections, error) {
	if len(p) < 2 {
		return nil, 0, errors.New("catalog: truncated envelope")
	}
	c, ok := ByVersion(p[0])
	if !ok {
		return nil, 0, fmt.Errorf("catalog: unknown codec version %d", p[0])
	}
	secs := Sections(p[1])
	if secs&^SecAll != 0 {
		return nil, 0, fmt.Errorf("catalog: unknown sections 0x%02x", p[1])
	}
	entries, err := c.DecodePayload(p[2:], secs)
	if err != nil {
		return nil, 0, err
	}
	return entries, secs, nil
}

// AppendKeys encodes a bare key list (no sections). Key lists that
// are already sorted and duplicate-free — every tree walk emits them
// that way — keep their order through any codec; an unsorted list
// falls back to the legacy codec's raw (order-preserving) form so
// the receiver sees exactly the sequence that was sent.
func AppendKeys(dst []byte, c Codec, ks []string) []byte {
	entries := make([]Entry, len(ks))
	for i, k := range ks {
		entries[i].Key = k
	}
	if !sortedUnique(ks) {
		dst = append(dst, versionLegacy, 0)
		return appendLegacyPayload(dst, entries, 0)
	}
	return Append(dst, c, entries, 0)
}

// DecodeKeys parses an envelope into its bare key list.
func DecodeKeys(p []byte) ([]string, error) {
	entries, _, err := Decode(p)
	if err != nil {
		return nil, err
	}
	ks := make([]string, len(entries))
	for i, e := range entries {
		ks[i] = e.Key
	}
	return ks, nil
}

func sortedUnique(ks []string) bool {
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			return false
		}
	}
	return true
}

// canonicalize returns entries sorted by key with later duplicates
// winning — the canonical form both codecs encode. The input slice is
// never mutated; when it is already canonical it is returned as is.
func canonicalize(entries []Entry) []Entry {
	canon := true
	for i := 1; i < len(entries); i++ {
		if entries[i].Key <= entries[i-1].Key {
			canon = false
			break
		}
	}
	if canon {
		return entries
	}
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	out := sorted[:0]
	for _, e := range sorted {
		if n := len(out); n > 0 && out[n-1].Key == e.Key {
			out[n-1] = e // later duplicate wins
			continue
		}
		out = append(out, e)
	}
	return out
}
