package catalog

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzEntries builds a catalogue from fuzzed blobs: keys and values
// come NUL-separated, structure links point back into the key set so
// the LOUDS trie must spell them, and the father of a fatherless
// entry is empty (the canonical form both codecs agree on).
func fuzzEntries(keysBlob, valsBlob, father string, hasFather bool, lp, lc int) []Entry {
	ks := splitBlob(keysBlob)
	vals := splitBlob(valsBlob)
	if lp < 0 {
		lp = -lp
	}
	if lc < 0 {
		lc = -lc
	}
	entries := make([]Entry, 0, len(ks))
	for i, k := range ks {
		e := Entry{Key: k, LoadPrev: lp + i, LoadCur: lc}
		if len(vals) > 0 {
			e.Values = append(e.Values, vals[i%len(vals)])
			if i%3 == 0 {
				e.Values = append(e.Values, vals[0])
			}
		}
		if i%2 == 0 && hasFather {
			e.HasFather = true
			e.Father = father
		}
		if i%2 == 1 {
			e.Children = []string{ks[(i+1)%len(ks)], father}
		}
		entries = append(entries, e)
	}
	return entries
}

func splitBlob(blob string) []string {
	var out []string
	for _, s := range bytes.Split([]byte(blob), []byte{0}) {
		out = append(out, string(s))
	}
	return out
}

// expectEntries is the canonical decode image of entries under secs:
// sorted with later duplicates winning, absent sections zeroed, empty
// slices nil.
func expectEntries(entries []Entry, secs Sections) []Entry {
	want := append([]Entry(nil), canonicalize(entries)...)
	for i := range want {
		e := &want[i]
		if secs&SecValues == 0 || len(e.Values) == 0 {
			e.Values = nil
		}
		if secs&SecStruct == 0 {
			e.Father, e.HasFather, e.Children = "", false, nil
		} else {
			if !e.HasFather {
				e.Father = ""
			}
			if len(e.Children) == 0 {
				e.Children = nil
			}
		}
		if secs&SecLoads == 0 {
			e.LoadPrev, e.LoadCur = 0, 0
		}
	}
	if len(want) == 0 {
		return nil
	}
	return want
}

// FuzzCatalogRoundTrip encodes fuzz-built catalogues through both
// codecs and demands the decode equal the canonical image — and that
// the two codecs, fed the same entries, decode to identical values.
// This is the byte-determinism contract snapshots and REPLICA/STREAM
// frames rest on.
func FuzzCatalogRoundTrip(f *testing.F) {
	f.Add("a\x00ab\x00abc", "v1\x00v2", "a", true, 3, 9, byte(SecAll), false)
	f.Add("", "", "", false, 0, 0, byte(0), true)
	f.Add("dup\x00dup\x00z", "x", "dup", true, 1, 2, byte(SecValues|SecLoads), true)
	f.Add("k\xffe\x00y\x00", "\x01\x02", "\xff", true, 1 << 20, 7, byte(SecStruct), false)

	f.Fuzz(func(t *testing.T, keysBlob, valsBlob, father string, hasFather bool, lp, lc int, secsByte byte, preferLegacy bool) {
		secs := Sections(secsByte) & SecAll
		entries := fuzzEntries(keysBlob, valsBlob, father, hasFather, lp, lc)
		want := expectEntries(entries, secs)

		decoded := make([][]Entry, 0, 2)
		for _, c := range []Codec{Legacy, LOUDS} {
			enc := Append(nil, c, entries, secs)
			if enc[0] != c.Version() || Sections(enc[1]) != secs {
				t.Fatalf("codec %d envelope header = %x/%x", c.Version(), enc[0], enc[1])
			}
			got, gotSecs, err := Decode(enc)
			if err != nil {
				t.Fatalf("codec %d decode: %v", c.Version(), err)
			}
			if gotSecs != secs {
				t.Fatalf("codec %d sections = %v, want %v", c.Version(), gotSecs, secs)
			}
			if len(got) == 0 {
				got = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("codec %d round-trip:\n got %+v\nwant %+v", c.Version(), got, want)
			}
			decoded = append(decoded, got)
		}
		if !reflect.DeepEqual(decoded[0], decoded[1]) {
			t.Fatalf("codecs disagree:\nlegacy %+v\nlouds  %+v", decoded[0], decoded[1])
		}

		// The bare key-list form (STREAM batches). Unsorted input takes
		// the legacy order-preserving fallback; either way DecodeKeys
		// must return exactly the sequence AppendKeys was given.
		c := Default
		if preferLegacy {
			c = Legacy
		}
		ks := splitBlob(keysBlob)
		gotKs, err := DecodeKeys(AppendKeys(nil, c, ks))
		if err != nil {
			t.Fatalf("DecodeKeys: %v", err)
		}
		if len(gotKs) == 0 {
			gotKs = nil
		}
		if len(ks) == 0 {
			ks = nil
		}
		if !reflect.DeepEqual(gotKs, ks) {
			t.Fatalf("key round-trip: %q != %q", gotKs, ks)
		}
	})
}

// FuzzCatalogDecode drives arbitrary bytes through the envelope
// decoder. The decoder owns the trust boundary with remote peers and
// with snapshot files on disk: whatever the bytes — hostile bitmaps,
// truncated sections, flipped version bytes — it must return an error
// rather than panic or over-allocate. When the bytes do parse, the
// decoded catalogue must re-encode and re-decode to its own canonical
// image (decode is a fixpoint under every registered codec).
func FuzzCatalogDecode(f *testing.F) {
	entries := []Entry{
		{Key: "srv/a", Values: []string{"v"}, HasFather: true, Father: "srv", LoadCur: 2},
		{Key: "srv/ab", Children: []string{"srv/a"}, LoadPrev: 1},
		{Key: "t", Values: []string{"v", "w"}},
	}
	for _, c := range []Codec{Legacy, LOUDS} {
		for _, secs := range []Sections{0, SecValues, SecStruct, SecLoads, SecAll} {
			enc := Append(nil, c, entries, secs)
			f.Add(enc)
			// Truncations chop mid-section; the downgrade flips the
			// version byte so one codec parses the other's payload.
			f.Add(enc[:len(enc)/2])
			f.Add(enc[:2])
			flip := append([]byte(nil), enc...)
			flip[0] ^= 1
			f.Add(flip)
		}
	}
	// A hostile LOUDS header: huge node count over a tiny payload.
	f.Add([]byte{1, 0, 0xff, 0xff, 0xff, 0xff, 0x0f})
	// A bitmap whose popcount disagrees with the node count.
	f.Add([]byte{1, 0, 3, 1, 0xff, 'a', 'b', 0x07})

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, secs, err := Decode(data)
		if err != nil {
			return
		}
		_, _ = DecodeKeys(data)

		c, ok := ByVersion(data[0])
		if !ok {
			t.Fatalf("Decode accepted unregistered version %d", data[0])
		}
		want := expectEntries(entries, secs)
		for _, rc := range []Codec{c, Legacy, LOUDS} {
			got, gotSecs, err := Decode(Append(nil, rc, entries, secs))
			if err != nil {
				t.Fatalf("re-encode with codec %d: %v", rc.Version(), err)
			}
			if gotSecs != secs {
				t.Fatalf("re-encode sections = %v, want %v", gotSecs, secs)
			}
			if len(got) == 0 {
				got = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("decode not a fixpoint under codec %d:\n got %+v\nwant %+v", rc.Version(), got, want)
			}
		}
	})
}
