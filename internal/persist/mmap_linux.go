//go:build linux

package persist

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps a file read-only. The mapping outlives the descriptor
// (closed before returning); the release function unmaps it. Pages
// fault in on first touch, which is what makes the version-2
// snapshot's catalogue walk lazy at the VM level too.
func mapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	size := int(info.Size())
	if size == 0 {
		return nil, func() {}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: mmap: %w", err)
	}
	return data, func() { _ = syscall.Munmap(data) }, nil
}
