package persist

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dlpt/internal/catalog"
)

func testState() ([]PeerState, []NodeState) {
	peers := []PeerState{{ID: "aaa", Capacity: 100}, {ID: "mmm", Capacity: 200}}
	nodes := []NodeState{
		{Key: "dgemm", Values: []string{"ep://1", "ep://2"}},
		{Key: "dgemv", Values: []string{"ep://3"}},
	}
	return peers, nodes
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	peers, nodes := testState()
	seq, err := s.WriteSnapshot(peers, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("first snapshot seq = %d", seq)
	}
	if err := s.Append(false, "saxpy", "ep://4"); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(true, "dgemv", "ep://3"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshot == nil || st.Snapshot.Seq != 1 {
		t.Fatalf("snapshot not loaded: %+v", st.Snapshot)
	}
	if len(st.Snapshot.Peers) != 2 || st.Snapshot.Peers[1].Capacity != 200 {
		t.Fatalf("peers = %+v", st.Snapshot.Peers)
	}
	if got := st.Snapshot.NodeList(); len(got) != 2 || len(got[0].Values) != 2 {
		t.Fatalf("nodes = %+v", got)
	}
	if len(st.Journal) != 2 {
		t.Fatalf("journal = %+v", st.Journal)
	}
	if st.Journal[0].Remove || st.Journal[0].Key != "saxpy" {
		t.Fatalf("journal[0] = %+v", st.Journal[0])
	}
	if !st.Journal[1].Remove || st.Journal[1].Key != "dgemv" {
		t.Fatalf("journal[1] = %+v", st.Journal[1])
	}
}

func TestSnapshotRotationPrunesOldEpochs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	peers, nodes := testState()
	for i := 0; i < 4; i++ {
		if _, err := s.WriteSnapshot(peers, nodes); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(false, "k", "v"); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := s.snapshotSeqs()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != keepSnapshots || seqs[len(seqs)-1] != 4 {
		t.Fatalf("kept snapshots %v", seqs)
	}
	st, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshot.Seq != 4 {
		t.Fatalf("loaded seq %d", st.Snapshot.Seq)
	}
	// Only the records of the newest epoch replay on top of it.
	if len(st.Journal) != 1 {
		t.Fatalf("journal = %+v", st.Journal)
	}
}

func TestTruncatedJournalStopsCleanly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	peers, nodes := testState()
	if _, err := s.WriteSnapshot(peers, nodes); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(false, "key", "value"); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Tear the last record: drop its trailing bytes.
	path := filepath.Join(dir, "journal-1.log")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf[:len(buf)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Journal) != 2 {
		t.Fatalf("torn journal replayed %d records, want 2", len(st.Journal))
	}
}

func TestCorruptJournalRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	peers, nodes := testState()
	if _, err := s.WriteSnapshot(peers, nodes); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(false, "key", "value"); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip a payload byte in the middle record.
	path := filepath.Join(dir, "journal-1.log")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := len(buf) / 3
	buf[recLen+6] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Journal) != 1 {
		t.Fatalf("corrupt journal replayed %d records, want 1", len(st.Journal))
	}
}

func TestCorruptSnapshotFallsBackOneEpoch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	peers, nodes := testState()
	if _, err := s.WriteSnapshot(peers, nodes[:1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(false, "bridge", "ep"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteSnapshot(peers, nodes); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(false, "tail", "ep"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Corrupt the newest snapshot.
	path := filepath.Join(dir, "snapshot-2.snap")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshot == nil || st.Snapshot.Seq != 1 {
		t.Fatalf("did not fall back to epoch 1: %+v", st.Snapshot)
	}
	// Epoch-1 and epoch-2 journals bridge forward past the torn
	// snapshot: both records replay.
	if len(st.Journal) != 2 {
		t.Fatalf("journal = %+v", st.Journal)
	}
	if st.Journal[0].Key != "bridge" || st.Journal[1].Key != "tail" {
		t.Fatalf("journal order = %+v", st.Journal)
	}
}

func TestLoadEmptyDirectory(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshot != nil {
		t.Fatalf("snapshot from empty dir: %+v", st.Snapshot)
	}
	if len(st.Journal) != 0 {
		t.Fatalf("journal from empty dir: %+v", st.Journal)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Append(false, "k", "v"); err == nil {
		t.Fatal("append on closed store succeeded")
	}
	if _, err := s.WriteSnapshot(nil, nil); err == nil {
		t.Fatal("snapshot on closed store succeeded")
	}
}

// TestReopenTruncatesTornTail pins the crash-mid-append recovery: a
// torn record at the journal tail is cut away on reopen, so records
// appended afterwards stay reachable to replay.
func TestReopenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	peers, nodes := testState()
	if _, err := s.WriteSnapshot(peers, nodes); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(false, "before", "ep"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Crash mid-append: tear the tail of the last record.
	path := filepath.Join(dir, "journal-1.log")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(buf, buf[:7]...) // garbage partial record
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen and keep appending: the new records must land after the
	// valid prefix, not after the garbage.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Append(false, "after", "ep"); err != nil {
		t.Fatal(err)
	}
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if len(st.Journal) != 2 {
		t.Fatalf("replayed %d records, want 2 (%+v)", len(st.Journal), st.Journal)
	}
	if st.Journal[0].Key != "before" || st.Journal[1].Key != "after" {
		t.Fatalf("journal = %+v", st.Journal)
	}
}

// TestBeginCommitCrashWindow pins the off-lock snapshot protocol's
// crash safety: a process that dies between BeginSnapshot (journal
// rotated into the new epoch) and Commit (snapshot file written)
// loses nothing — Load falls back one epoch and replays both
// journals — and a reopened store continues from the rotated journal
// epoch instead of double-booking it.
func TestBeginCommitCrashWindow(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	peers, nodes := testState()
	if _, err := s.WriteSnapshot(peers, nodes); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(false, "preCapture", "ep"); err != nil {
		t.Fatal(err)
	}
	p, err := s.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if p.Seq() != 2 {
		t.Fatalf("pending seq = %d", p.Seq())
	}
	// Mutations racing the off-lock encode land in the new epoch.
	if err := s.Append(false, "postCapture", "ep"); err != nil {
		t.Fatal(err)
	}
	// Crash before Commit.
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshot == nil || st.Snapshot.Seq != 1 {
		t.Fatalf("fallback snapshot = %+v", st.Snapshot)
	}
	if len(st.Journal) != 2 || st.Journal[0].Key != "preCapture" || st.Journal[1].Key != "postCapture" {
		t.Fatalf("journal = %+v", st.Journal)
	}
	// The reopened store must continue in epoch 2 (the rotated
	// journal), so the next snapshot is epoch 3 — appending new
	// records to an already-rotated-past journal would scramble
	// replay order.
	if err := s2.Append(false, "postCrash", "ep"); err != nil {
		t.Fatal(err)
	}
	seq, err := s2.WriteSnapshot(peers, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("post-crash snapshot seq = %d, want 3", seq)
	}
}

// TestV1SnapshotStillLoads pins the migration contract: snapshot
// files written by the original inline-node-list format load
// unchanged.
func TestV1SnapshotStillLoads(t *testing.T) {
	dir := t.TempDir()
	peers, nodes := testState()
	// Hand-roll a version-1 snapshot image, byte-compatible with the
	// original writer.
	buf := []byte(snapMagic)
	buf = binary.AppendUvarint(buf, snapVersionNodes)
	buf = binary.AppendUvarint(buf, 1) // seq
	buf = binary.AppendUvarint(buf, uint64(len(peers)))
	for _, p := range peers {
		buf = appendString(buf, p.ID)
		buf = binary.AppendUvarint(buf, uint64(p.Capacity))
	}
	buf = binary.AppendUvarint(buf, uint64(len(nodes)))
	for _, n := range nodes {
		buf = appendString(buf, n.Key)
		buf = binary.AppendUvarint(buf, uint64(len(n.Values)))
		for _, v := range n.Values {
			buf = appendString(buf, v)
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	if err := os.WriteFile(filepath.Join(dir, "snapshot-1.snap"), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Release()
	if st.Snapshot == nil || st.Snapshot.Seq != 1 {
		t.Fatalf("v1 snapshot not loaded: %+v", st.Snapshot)
	}
	if !reflect.DeepEqual(st.Snapshot.NodeList(), nodes) {
		t.Fatalf("v1 nodes = %+v", st.Snapshot.NodeList())
	}
}

// TestCodecChoiceRoundTrips pins that a store writing with the
// legacy codec produces snapshots any store can read, identical to
// the succinct ones.
func TestCodecChoiceRoundTrips(t *testing.T) {
	peers, nodes := testState()
	var got [][]NodeState
	for _, c := range []catalog.Codec{catalog.Legacy, catalog.LOUDS} {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s.SetCodec(c)
		if _, err := s.WriteSnapshot(peers, nodes); err != nil {
			t.Fatal(err)
		}
		st, err := s.Load()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, st.Snapshot.NodeList())
		st.Release()
		s.Close()
	}
	if !reflect.DeepEqual(got[0], got[1]) {
		t.Fatalf("codec divergence: %+v vs %+v", got[0], got[1])
	}
	if !reflect.DeepEqual(got[0], nodes) {
		t.Fatalf("restored nodes = %+v", got[0])
	}
}

// TestAppendErrorSurfacesAtSnapshot pins the journal-failure
// contract: a failed append is reported by the next WriteSnapshot
// (which heals the gap) instead of passing silently.
func TestAppendErrorSurfacesAtSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Break the journal handle behind the store's back.
	s.mu.Lock()
	s.journal.Close()
	s.mu.Unlock()
	if err := s.Append(false, "k", "v"); err == nil {
		t.Fatal("append on a closed handle succeeded")
	}
	peers, nodes := testState()
	if _, err := s.WriteSnapshot(peers, nodes); err == nil {
		t.Fatal("snapshot after failed appends reported no error")
	}
	// The epoch turned over; the failure was surfaced once and the
	// store is whole again.
	if _, err := s.WriteSnapshot(peers, nodes); err != nil {
		t.Fatalf("second snapshot still failing: %v", err)
	}
}
