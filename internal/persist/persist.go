// Package persist is the durability layer of the fault-tolerance
// subsystem: it serializes the overlay's replica state to disk so a
// cold restart — every peer dead, including the last one — can
// rebuild the tree from the persistence directory.
//
// The on-disk layout is a sequence of versioned snapshot files plus
// one append-only journal per snapshot epoch:
//
//	snapshot-<seq>.snap — the full replica state at one Replicate
//	                      tick: the peer ring (ids and capacities)
//	                      and every replicated data node (key and
//	                      values), CRC-protected, written to a temp
//	                      file, fsynced and renamed into place.
//	journal-<seq>.log   — every catalogue mutation (register /
//	                      unregister) since snapshot <seq>, one
//	                      CRC-framed record per operation, appended
//	                      in order.
//
// Snapshot writing is split in two so the expensive half runs off
// the cluster write lock: BeginSnapshot allocates the next epoch and
// rotates the journal — the only steps that must be atomic with the
// caller's state capture — and the returned PendingSnapshot's Commit
// encodes, writes and fsyncs the snapshot file with no store-wide
// lock held, so concurrent journal appends (and therefore the
// cluster's registration path) never stall behind an fsync. A crash
// between Begin and Commit is safe by construction: Load falls back
// to the previous epoch's snapshot and replays both epochs' journals
// forward. WriteSnapshot composes the two for callers that have no
// lock to get off of.
//
// Journal records land in the journal of the epoch they follow. Load
// is corruption-tolerant: it walks the snapshots newest-first until
// one passes its CRC, then replays every journal of that epoch and
// later in order, stopping cleanly at the first truncated or corrupt
// record — a torn write costs at most the tail of a journal, never
// the snapshot behind it. The two newest snapshots are kept so a
// torn snapshot write can always fall back one epoch (the journals
// of the older epoch bridge the gap forward).
//
// Snapshot catalogues are encoded with the catalog codec (version-2
// snapshot files; the succinct LOUDS codec by default, see
// internal/catalog) and memory-mapped at load so a cold restart
// materializes entries lazily while streaming them into the overlay;
// version-1 snapshot files (inline node list) stay loadable forever.
//
// Only snapshots are fsynced; journal appends ride the OS cache. The
// durability contract is therefore exactly the paper's replication
// model: everything declared before the last Replicate survives any
// crash, and journaled mutations after it survive ordinary process
// death (but not power loss).
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"dlpt/internal/catalog"
)

// PeerState is one persisted ring member.
type PeerState struct {
	ID       string
	Capacity int
}

// NodeState is one persisted replicated data node: the declared key
// and its registered values. Structural (dataless) tree nodes are not
// persisted — the canonical PGCP structure over the data keys is
// derivable, and the restore path rebuilds it by anti-entropy.
type NodeState struct {
	Key    string
	Values []string
}

// Record is one journaled catalogue mutation.
type Record struct {
	// Remove distinguishes an unregister from a register.
	Remove bool
	Key    string
	Value  string
}

// Snapshot is the full persisted replica state of one epoch. For a
// version-2 snapshot loaded from disk the catalogue stays in its
// memory-mapped succinct form (view) and Nodes is nil; constructed
// in-memory snapshots (mirrors, tests) fill Nodes directly. Iterate
// with AscendNodes, which handles both.
type Snapshot struct {
	Seq   uint64
	Peers []PeerState
	Nodes []NodeState

	view *catalog.View
}

// AscendNodes streams the snapshot's catalogue in ascending key
// order, materializing one node at a time — for a mapped snapshot
// this is the lazy cold-restart path: entries (and the pages that
// spell them) are touched only as the walk reaches them.
func (sn *Snapshot) AscendNodes(yield func(NodeState) bool) error {
	if sn.view == nil {
		for _, ns := range sn.Nodes {
			if !yield(ns) {
				return nil
			}
		}
		return nil
	}
	return sn.view.Ascend(func(e catalog.Entry) bool {
		return yield(NodeState{Key: e.Key, Values: e.Values})
	})
}

// NodeList materializes the full catalogue as a slice — convenience
// for mirrors and tests; large restores should stream with
// AscendNodes instead.
func (sn *Snapshot) NodeList() []NodeState {
	if sn.view == nil {
		return sn.Nodes
	}
	out := make([]NodeState, 0, sn.view.Len())
	_ = sn.AscendNodes(func(ns NodeState) bool {
		out = append(out, ns)
		return true
	})
	return out
}

// NumNodes returns the catalogue entry count.
func (sn *Snapshot) NumNodes() int {
	if sn.view != nil {
		return sn.view.Len()
	}
	return len(sn.Nodes)
}

// LoadedState is what Load recovered from disk: the newest valid
// snapshot (nil when none exists yet) and the journal records of that
// epoch and every later one, in append order. Call Release when done
// restoring — a version-2 snapshot aliases a memory-mapped file until
// then.
type LoadedState struct {
	Snapshot *Snapshot
	Journal  []Record

	release func()
}

// Release unmaps the snapshot file backing a lazily loaded
// catalogue. The Snapshot must not be iterated afterwards; all
// strings already materialized are copies and stay valid. Safe to
// call on any LoadedState, more than once.
func (st *LoadedState) Release() {
	if st.release != nil {
		st.release()
		st.release = nil
	}
	if st.Snapshot != nil {
		st.Snapshot.view = nil
	}
}

const (
	snapMagic = "DLPTSNP1"
	// snapVersionNodes is the original inline node-list snapshot
	// format; snapVersionCatalog carries the catalogue as one
	// self-describing catalog envelope instead. Both load.
	snapVersionNodes   = 1
	snapVersionCatalog = 2
	snapSuffix         = ".snap"
	snapPrefix         = "snapshot-"
	jrnlPrefix         = "journal-"
	jrnlSuffix         = ".log"
)

// keepSnapshots is how many snapshot epochs survive pruning: the
// newest plus one fallback for torn writes.
const keepSnapshots = 2

// Store is one persistence directory. All methods are safe for
// concurrent use.
type Store struct {
	dir   string
	codec catalog.Codec

	mu      sync.Mutex
	seq     uint64 // current epoch: newest snapshot or rotated journal
	journal *os.File
	closed  bool
	// appendErr records the first journal-append failure of the
	// current epoch so it cannot pass silently: the next snapshot
	// surfaces it (the snapshot itself heals the gap — the lost
	// records described state the new snapshot now contains).
	appendErr error
}

// Open creates or reopens the persistence directory. The journal of
// the newest epoch is opened for appending, so a reopened store
// continues the epoch it was closed in. The newest epoch is the
// maximum over snapshots AND journals: a crash between BeginSnapshot
// (which rotates the journal) and Commit (which writes the snapshot
// file) leaves a journal one epoch ahead of the snapshots, and new
// records must keep appending there — appending to an older epoch
// would scramble replay order.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	s := &Store{dir: dir, codec: catalog.Default}
	seqs, err := s.snapshotSeqs()
	if err != nil {
		return nil, err
	}
	if len(seqs) > 0 {
		s.seq = seqs[len(seqs)-1]
	}
	jseqs, err := s.journalSeqs()
	if err != nil {
		return nil, err
	}
	if len(jseqs) > 0 && jseqs[len(jseqs)-1] > s.seq {
		s.seq = jseqs[len(jseqs)-1]
	}
	if err := s.openJournalLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the persistence directory path.
func (s *Store) Dir() string { return s.dir }

// SetCodec forces the catalogue codec future snapshots are written
// with — the migration escape hatch (decoding always accepts every
// registered codec, whatever is configured here).
func (s *Store) SetCodec(c catalog.Codec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.codec = c
}

// Close releases the journal handle. The store's files stay on disk.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.journal != nil {
		err := s.journal.Close()
		s.journal = nil
		return err
	}
	return nil
}

// snapshotSeqs lists the epochs that have a snapshot file, ascending.
func (s *Store) snapshotSeqs() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if len(name) <= len(snapPrefix)+len(snapSuffix) ||
			name[:len(snapPrefix)] != snapPrefix ||
			name[len(name)-len(snapSuffix):] != snapSuffix {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, snapPrefix+"%d"+snapSuffix, &seq); err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// journalSeqs lists the epochs that have a journal file, ascending.
func (s *Store) journalSeqs() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		var seq uint64
		if _, err := fmt.Sscanf(name, jrnlPrefix+"%d"+jrnlSuffix, &seq); err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func (s *Store) snapPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%d%s", snapPrefix, seq, snapSuffix))
}

func (s *Store) jrnlPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%d%s", jrnlPrefix, seq, jrnlSuffix))
}

// openJournalLocked (re)opens the current epoch's journal for append,
// first truncating any torn tail left by a crash mid-append: records
// appended after corrupt bytes would be unreachable to replay (it
// stops at the first bad record), so they must never exist.
func (s *Store) openJournalLocked() error {
	path := s.jrnlPath(s.seq)
	if err := truncateTornTail(path); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	s.journal = f
	return nil
}

// truncateTornTail cuts a journal file back to its longest valid
// record prefix. Missing files are fine.
func truncateTornTail(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	valid := int64(0)
	hdr := make([]byte, 4)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			break
		}
		n := binary.BigEndian.Uint32(hdr)
		if n > 1<<24 {
			break
		}
		body := make([]byte, n+4)
		if _, err := io.ReadFull(f, body); err != nil {
			break
		}
		if crc32.ChecksumIEEE(body[:n]) != binary.BigEndian.Uint32(body[n:]) {
			break
		}
		valid += int64(4 + len(body))
	}
	info, err := f.Stat()
	f.Close()
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if info.Size() > valid {
		if err := os.Truncate(path, valid); err != nil {
			return fmt.Errorf("persist: %w", err)
		}
	}
	return nil
}

// Append journals one catalogue mutation into the current epoch.
func (s *Store) Append(remove bool, key, value string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.journal == nil {
		return errors.New("persist: store closed")
	}
	payload := make([]byte, 0, 2+len(key)+len(value)+8)
	op := byte(0)
	if remove {
		op = 1
	}
	payload = append(payload, op)
	payload = appendString(payload, key)
	payload = appendString(payload, value)
	frame := make([]byte, 0, len(payload)+8)
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	_, err := s.journal.Write(frame)
	if err != nil && s.appendErr == nil {
		s.appendErr = err
	}
	return err
}

// EntrySource is a sorted stream of catalogue entries — what a
// snapshot commit encodes. The core's copy-on-write capture and the
// eager node lists both satisfy it.
type EntrySource interface {
	Len() int
	Ascend(yield func(catalog.Entry) bool)
}

// nodesSource adapts an eager []NodeState to EntrySource.
type nodesSource []NodeState

func (ns nodesSource) Len() int { return len(ns) }

func (ns nodesSource) Ascend(yield func(catalog.Entry) bool) {
	for _, n := range ns {
		if !yield(catalog.Entry{Key: n.Key, Values: n.Values}) {
			return
		}
	}
}

// PendingSnapshot is an epoch allocated by BeginSnapshot whose
// snapshot file has not been written yet. Exactly one Commit (or
// none, if the process dies — recovery handles that) must follow.
type PendingSnapshot struct {
	s   *Store
	seq uint64
	// healErr is the superseded epoch's first journal-append failure,
	// surfaced by Commit.
	healErr error
	bytes   int
}

// Seq returns the epoch this snapshot will commit as.
func (p *PendingSnapshot) Seq() uint64 { return p.seq }

// Bytes returns the encoded snapshot size after Commit.
func (p *PendingSnapshot) Bytes() int { return p.bytes }

// BeginSnapshot allocates the next epoch and rotates the journal —
// the only part of a snapshot that must be atomic with the caller's
// state capture, so this is the only part the caller runs under its
// cluster write lock. Everything that scales with catalogue size
// (encode, write, fsync) happens in Commit, off the lock. Mutations
// journaled between Begin and Commit land in the new epoch's journal
// and replay on top of the committed snapshot; if the process dies
// before Commit, Load falls back one epoch and replays both
// journals.
func (s *Store) BeginSnapshot() (*PendingSnapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("persist: store closed")
	}
	seq := s.seq + 1
	if s.journal != nil {
		_ = s.journal.Close()
	}
	s.seq = seq
	if err := s.openJournalLocked(); err != nil {
		return nil, err
	}
	p := &PendingSnapshot{s: s, seq: seq, healErr: s.appendErr}
	s.appendErr = nil
	return p, nil
}

// Commit encodes and durably writes the snapshot allocated by
// BeginSnapshot: temp file, fsync, rename, directory fsync, then
// pruning of epochs older than the fallback. No store-wide lock is
// held while encoding or syncing, so concurrent journal appends
// proceed. It returns the committed epoch number.
func (p *PendingSnapshot) Commit(peers []PeerState, cat EntrySource) (uint64, error) {
	s := p.s
	s.mu.Lock()
	codec := s.codec
	s.mu.Unlock()

	buf := []byte(snapMagic)
	buf = binary.AppendUvarint(buf, snapVersionCatalog)
	buf = binary.AppendUvarint(buf, p.seq)
	buf = binary.AppendUvarint(buf, uint64(len(peers)))
	for _, ps := range peers {
		buf = appendString(buf, ps.ID)
		buf = binary.AppendUvarint(buf, uint64(ps.Capacity))
	}
	entries := make([]catalog.Entry, 0, cat.Len())
	cat.Ascend(func(e catalog.Entry) bool {
		entries = append(entries, e)
		return true
	})
	blob := catalog.Append(nil, codec, entries, catalog.SecValues)
	buf = binary.AppendUvarint(buf, uint64(len(blob)))
	buf = append(buf, blob...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	p.bytes = len(buf)

	tmp := s.snapPath(p.seq) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("persist: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("persist: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("persist: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp, s.snapPath(p.seq)); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("persist: %w", err)
	}
	syncDir(s.dir)

	s.mu.Lock()
	s.pruneLocked()
	s.mu.Unlock()
	if p.healErr != nil {
		// Surface the superseded epoch's journal failures rather than
		// letting them pass silently; the snapshot just written
		// contains the state the lost records described, so durability
		// is whole again from here on.
		return p.seq, fmt.Errorf(
			"persist: journal appends failed during the previous epoch (state healed by snapshot %d): %w",
			p.seq, p.healErr)
	}
	return p.seq, nil
}

// WriteSnapshot persists the full replica state as the next epoch in
// one call — BeginSnapshot plus Commit for callers with no cluster
// lock to get off of. It returns the new epoch number.
func (s *Store) WriteSnapshot(peers []PeerState, nodes []NodeState) (uint64, error) {
	p, err := s.BeginSnapshot()
	if err != nil {
		return 0, err
	}
	return p.Commit(peers, nodesSource(nodes))
}

// pruneLocked removes snapshots (and their journals) older than the
// keepSnapshots newest epochs.
func (s *Store) pruneLocked() {
	seqs, err := s.snapshotSeqs()
	if err != nil || len(seqs) <= keepSnapshots {
		return
	}
	for _, seq := range seqs[:len(seqs)-keepSnapshots] {
		os.Remove(s.snapPath(seq))
		os.Remove(s.jrnlPath(seq))
	}
}

// Load recovers the persisted state: the newest snapshot whose CRC
// verifies, plus the journals of its epoch and all later epochs in
// order, each replayed until its first truncated or corrupt record.
// A directory with no valid snapshot yields a nil Snapshot and only
// epoch-0 journal records.
func (s *Store) Load() (*LoadedState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seqs, err := s.snapshotSeqs()
	if err != nil {
		return nil, err
	}
	st := &LoadedState{}
	var base uint64
	for i := len(seqs) - 1; i >= 0; i-- {
		snap, release, err := loadSnapshot(s.snapPath(seqs[i]))
		if err != nil {
			continue // corrupt or torn: fall back one epoch
		}
		st.Snapshot = snap
		st.release = release
		base = snap.Seq
		break
	}
	// Every journal of the base epoch and later, ascending.
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var jseqs []uint64
	for _, e := range entries {
		name := e.Name()
		var seq uint64
		if _, err := fmt.Sscanf(name, jrnlPrefix+"%d"+jrnlSuffix, &seq); err != nil {
			continue
		}
		if seq >= base {
			jseqs = append(jseqs, seq)
		}
	}
	sort.Slice(jseqs, func(i, j int) bool { return jseqs[i] < jseqs[j] })
	for _, seq := range jseqs {
		recs, err := readJournal(s.jrnlPath(seq))
		if err != nil {
			return nil, err
		}
		st.Journal = append(st.Journal, recs...)
	}
	return st, nil
}

// loadSnapshot memory-maps and CRC-verifies one snapshot file. A
// version-2 snapshot keeps its catalogue in the mapping behind a
// lazy catalog view; the returned release function unmaps it. A
// version-1 snapshot decodes eagerly (its strings are copies) and
// releases the mapping before returning.
func loadSnapshot(path string) (*Snapshot, func(), error) {
	buf, release, err := mapFile(path)
	if err != nil {
		return nil, nil, err
	}
	snap, lazy, err := parseSnapshot(buf)
	if err != nil || !lazy {
		release()
		release = func() {}
	}
	if err != nil {
		return nil, nil, err
	}
	return snap, release, nil
}

// parseSnapshot decodes a snapshot image. The bool reports whether
// the returned Snapshot still aliases buf (a lazy catalogue view).
func parseSnapshot(buf []byte) (*Snapshot, bool, error) {
	if len(buf) < len(snapMagic)+4 || string(buf[:len(snapMagic)]) != snapMagic {
		return nil, false, errors.New("persist: bad snapshot magic")
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return nil, false, errors.New("persist: snapshot checksum mismatch")
	}
	p := body[len(snapMagic):]
	var v uint64
	var err error
	if v, p, err = getUvarint(p); err != nil {
		return nil, false, err
	}
	if v != snapVersionNodes && v != snapVersionCatalog {
		return nil, false, fmt.Errorf("persist: unsupported snapshot version %d", v)
	}
	version := v
	snap := &Snapshot{}
	if snap.Seq, p, err = getUvarint(p); err != nil {
		return nil, false, err
	}
	var n uint64
	if n, p, err = getUvarint(p); err != nil {
		return nil, false, err
	}
	for i := uint64(0); i < n; i++ {
		var ps PeerState
		if ps.ID, p, err = getString(p); err != nil {
			return nil, false, err
		}
		if v, p, err = getUvarint(p); err != nil {
			return nil, false, err
		}
		ps.Capacity = int(v)
		snap.Peers = append(snap.Peers, ps)
	}
	if version == snapVersionCatalog {
		var blobLen uint64
		if blobLen, p, err = getUvarint(p); err != nil {
			return nil, false, err
		}
		if blobLen > uint64(len(p)) {
			return nil, false, errors.New("persist: truncated catalogue blob")
		}
		view, err := catalog.NewView(p[:blobLen])
		if err != nil {
			return nil, false, fmt.Errorf("persist: %w", err)
		}
		snap.view = view
		return snap, true, nil
	}
	if n, p, err = getUvarint(p); err != nil {
		return nil, false, err
	}
	for i := uint64(0); i < n; i++ {
		var ns NodeState
		if ns.Key, p, err = getString(p); err != nil {
			return nil, false, err
		}
		if v, p, err = getUvarint(p); err != nil {
			return nil, false, err
		}
		for j := uint64(0); j < v; j++ {
			var s string
			if s, p, err = getString(p); err != nil {
				return nil, false, err
			}
			ns.Values = append(ns.Values, s)
		}
		snap.Nodes = append(snap.Nodes, ns)
	}
	return snap, false, nil
}

// readJournal replays one journal file until EOF or the first record
// that is truncated or fails its CRC (the torn tail of a crash).
func readJournal(path string) ([]Record, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	var out []Record
	hdr := make([]byte, 4)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return out, nil // clean EOF or torn header: stop
		}
		n := binary.BigEndian.Uint32(hdr)
		if n > 1<<24 {
			return out, nil // implausible length: corrupt tail
		}
		body := make([]byte, n+4)
		if _, err := io.ReadFull(f, body); err != nil {
			return out, nil // torn record
		}
		payload, tail := body[:n], body[n:]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(tail) {
			return out, nil // corrupt record: stop replay here
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return out, nil
		}
		out = append(out, rec)
	}
}

func decodeRecord(p []byte) (Record, error) {
	var rec Record
	if len(p) < 1 {
		return rec, errors.New("persist: empty record")
	}
	rec.Remove = p[0] == 1
	p = p[1:]
	var err error
	if rec.Key, p, err = getString(p); err != nil {
		return rec, err
	}
	if rec.Value, _, err = getString(p); err != nil {
		return rec, err
	}
	return rec, nil
}

// --- encoding helpers --------------------------------------------------------

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func getUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errors.New("persist: truncated varint")
	}
	return v, p[n:], nil
}

func getString(p []byte) (string, []byte, error) {
	n, p, err := getUvarint(p)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(p)) < n {
		return "", nil, errors.New("persist: truncated string")
	}
	return string(p[:n]), p[n:], nil
}

// syncDir fsyncs a directory so a rename is durable; best effort on
// platforms where directories cannot be synced.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
