//go:build !linux

package persist

import "os"

// mapFile on platforms without the mmap fast path reads the file
// into memory; release is a no-op. The lazy catalogue walk still
// avoids materializing the node list eagerly.
func mapFile(path string) ([]byte, func(), error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return buf, func() {}, nil
}
