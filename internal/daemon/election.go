// Steward failover: epoch-fenced election, the epoch-open barrier
// that resynchronizes member mirrors behind the winner, and the
// deposed steward's demotion-and-rejoin path. See the package comment
// for the protocol overview.
//
// Lock discipline: the vote-collection loop round-trips without d.mu
// (snapshotting under the lock, re-verifying before commit), so the
// daemon keeps serving while campaigning. winElection and the barrier
// hold d.mu throughout — member-side barrier handlers never
// round-trip back, so the hold cannot deadlock — which makes the
// epoch cut-over atomic against concurrent joins and originations:
// they queue behind the lock and land under the new epoch.

package daemon

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"dlpt/internal/keys"
	"dlpt/internal/peering"
	"dlpt/internal/persist"
	"dlpt/internal/transport"
)

// staleEpochPrefix marks the machine-parsable fencing refusal:
// "daemon: stale epoch: <epoch> <stewardAddr>". A deposed steward
// parses it to learn who replaced it.
const staleEpochPrefix = "daemon: stale epoch: "

// staleEpochAck formats the fencing refusal.
func staleEpochAck(epoch uint64, stewardAddr string) string {
	return staleEpochPrefix + strconv.FormatUint(epoch, 10) + " " + stewardAddr
}

// parseStaleEpoch recovers (epoch, stewardAddr) from a fencing
// refusal; ok is false for any other string.
func parseStaleEpoch(es string) (epoch uint64, stewardAddr string, ok bool) {
	rest, found := strings.CutPrefix(es, staleEpochPrefix)
	if !found {
		return 0, "", false
	}
	num, addr, _ := strings.Cut(rest, " ")
	e, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, "", false
	}
	return e, addr, true
}

// deposeLocked demotes this steward after evidence of a higher epoch
// (a member's fencing refusal or a probed STATUS reply). The daemon
// immediately stops serializing — stewardship, epoch and steward
// address flip under the caller's lock — and a background goroutine
// rejoins the overlay as a plain member under a fresh ring id, since
// the new steward has already crashed this daemon's old identity out
// of every mirror.
func (d *Daemon) deposeLocked(epoch uint64, stewardAddr string) {
	if !d.steward || d.closed {
		return
	}
	d.logf("dlptd: deposed by epoch %d steward at %s; rejoining as member", epoch, stewardAddr)
	d.met.ElectionEvent("deposed")
	d.steward = false
	d.epoch = epoch
	d.promised = max(d.promised, epoch)
	if stewardAddr != "" {
		d.stewardAddr = stewardAddr
	}
	d.met.MarkEpoch(d.epoch)
	d.wg.Add(1)
	go d.rejoinAsMember()
}

// rejoinAsMember runs a deposed steward's re-entry: a fresh JOIN
// through the new steward (falling back to any member for a
// redirect), then a full mirror reset under the assigned id. The
// daemon lock is held across join and install for the same reason
// startMember holds it: racing APPLY broadcasts queue behind the
// installation and then extend the sequence in order.
func (d *Daemon) rejoinAsMember() {
	defer d.wg.Done()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || d.steward {
		return
	}
	targets := make([]string, 0, len(d.members))
	if d.stewardAddr != "" && d.stewardAddr != d.selfAddr {
		targets = append(targets, d.stewardAddr)
	}
	for id, m := range d.members {
		if id != d.selfID && m.Addr != d.selfAddr && !contains(targets, m.Addr) {
			targets = append(targets, m.Addr)
		}
	}
	hello, err := d.joinVia(targets)
	if err != nil {
		d.logf("dlptd: deposed steward rejoin failed: %v", err)
		return
	}
	if err := d.installHelloLocked(hello); err != nil {
		d.logf("dlptd: deposed steward rejoin install: %v", err)
		return
	}
	d.logf("dlptd: rejoined overlay as member %s (epoch %d, seq %d)", d.selfID, d.epoch, d.seq)
}

// installHelloLocked replaces this daemon's overlay identity and
// mirror with a join handshake's state (the rejoin counterpart of
// startMember's install).
func (d *Daemon) installHelloLocked(hello *transport.HelloInfo) error {
	members := make(map[keys.Key]transport.Member, len(hello.Members))
	memberAddrs := make(map[keys.Key]string, len(hello.Members))
	for _, m := range hello.Members {
		members[m.ID] = m
		memberAddrs[m.ID] = m.Addr
	}
	if err := d.cluster.ResetToMirror(hello.Peers, hello.Nodes, memberAddrs, hello.AssignedID); err != nil {
		return err
	}
	d.members = members
	d.selfID = hello.AssignedID
	d.seq = hello.Seq
	d.met.MarkApplied(d.seq)
	d.epoch = hello.Epoch
	d.promised = max(d.promised, hello.Epoch)
	d.met.MarkEpoch(d.epoch)
	d.stewardAddr = hello.StewardAddr
	d.applyLog = nil
	d.suspected = make(map[string]bool)
	d.syncLinksLocked()
	return nil
}

// maybeElectLocked starts this member's candidate loop when the
// steward link is down and this member is the overlay's deterministic
// candidate: the lowest ring id among members whose links are not
// suspected. Candidacy re-checks inside the loop, so a wrong guess
// (the candidate itself died next) self-corrects on the next link
// loss.
func (d *Daemon) maybeElectLocked() {
	if d.closed || d.steward || d.electing {
		return
	}
	if d.stewardAddr == "" || !d.suspected[d.stewardAddr] {
		return
	}
	if candidate := d.candidateLocked(); candidate != d.selfID {
		return
	}
	d.electing = true
	d.stewardDownAt = time.Now()
	d.met.ElectionEvent("started")
	d.logf("dlptd: steward at %s lost; standing for election", d.stewardAddr)
	d.wg.Add(1)
	go d.runElection()
}

// candidateLocked returns the deterministic election candidate: the
// lowest ring id among members whose addresses are not suspected
// (self is never suspected — a daemon does not probe itself).
func (d *Daemon) candidateLocked() keys.Key {
	var best keys.Key
	found := false
	for id, m := range d.members {
		if id != d.selfID && d.suspected[m.Addr] {
			continue
		}
		if !found || id < best {
			best, found = id, true
		}
	}
	return best
}

// runElection is the candidate loop: propose a bumped epoch, collect
// promises from the live members, and either win with a majority of
// the KNOWN membership (the dead steward counts toward the
// denominator — split quorums under a partition cannot both clear
// half of a table they share) or back off and retry while the
// conditions persist. Round-trips run without the daemon lock.
func (d *Daemon) runElection() {
	defer d.wg.Done()
	et := time.Duration(d.cfg.ElectionTimeout)
	bo := peering.NewBackoff(et/4, et, 0.2, d.cfg.Seed+1)
	var proposed uint64
	for {
		d.mu.Lock()
		if d.closed || d.steward || !d.suspected[d.stewardAddr] || d.candidateLocked() != d.selfID {
			d.electing = false
			d.mu.Unlock()
			return
		}
		// Re-propose the same epoch while it is still ours to claim
		// (voters that were slow to suspect the steward grant it on a
		// later round); bump only when the floor moved or a competitor
		// holds the promise.
		if proposed <= d.epoch || proposed < d.promised ||
			(proposed == d.promised && d.promisedTo != d.selfAddr) {
			proposed = max(d.epoch, d.promised) + 1
		}
		d.promised = proposed // self-promise: never grant a competitor this epoch
		d.promisedTo = d.selfAddr
		total := len(d.members)
		selfID, selfAddr, selfSeq := d.selfID, d.selfAddr, d.seq
		voters := make([]transport.Member, 0, len(d.members))
		for id, m := range d.members {
			if id != d.selfID && !d.suspected[m.Addr] {
				voters = append(voters, m)
			}
		}
		d.mu.Unlock()

		votes := 1 // self
		maxSeq, maxSeqAddr := selfSeq, ""
		var fencedBy uint64
		req := transport.EncodeElect(&transport.ElectRequest{
			Epoch: proposed, ID: selfID, Addr: selfAddr, Seq: selfSeq,
		})
		for _, v := range voters {
			ctx, cancel := context.WithTimeout(d.ctx, et)
			rtyp, rp, err := d.cluster.ControlRoundTrip(ctx, v.Addr, transport.FrameElect, req)
			cancel()
			if err != nil {
				d.logf("dlptd: election epoch %d: vote from %s failed: %v", proposed, v.Addr, err)
				d.cluster.DropEndpointAddr(v.Addr)
				continue
			}
			if rtyp != transport.FrameElectResp {
				continue
			}
			rep, err := transport.DecodeElectReply(rp)
			if err != nil {
				continue
			}
			if rep.Granted {
				votes++
				if rep.Seq > maxSeq {
					maxSeq, maxSeqAddr = rep.Seq, v.Addr
				}
				continue
			}
			if rep.Epoch > fencedBy {
				fencedBy = rep.Epoch
			}
		}
		quorum := total/2 + 1
		if votes >= quorum {
			d.winElection(proposed, maxSeq, maxSeqAddr)
			return
		}
		d.logf("dlptd: election epoch %d lost: %d/%d votes (quorum %d)", proposed, votes, total, quorum)
		d.met.ElectionEvent("lost")
		d.mu.Lock()
		if fencedBy > d.promised {
			d.promised = fencedBy
			d.promisedTo = "" // floor raised by a competitor's promise
		}
		d.mu.Unlock()
		select {
		case <-d.ctx.Done():
			d.mu.Lock()
			d.electing = false
			d.mu.Unlock()
			return
		case <-time.After(bo.Next()):
		}
	}
}

// winElection commits a quorum: catch up to the most advanced voter's
// stream position, assume stewardship under the won epoch, run the
// epoch-open barrier, and serialize the old steward's crash as the
// new epoch's first overlay mutation.
func (d *Daemon) winElection(epoch, maxSeq uint64, maxSeqAddr string) {
	if maxSeqAddr != "" && maxSeq > d.Seq() {
		d.catchUp(maxSeqAddr, maxSeq)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.electing = false
	if d.closed || d.steward || !d.suspected[d.stewardAddr] {
		d.met.ElectionEvent("lost")
		return
	}
	oldAddr := d.stewardAddr
	var oldID keys.Key
	oldFound := false
	for id, m := range d.members {
		if m.Addr == oldAddr {
			oldID, oldFound = id, true
			break
		}
	}
	d.epoch = epoch
	d.promised = max(d.promised, epoch)
	d.steward = true
	d.stewardAddr = d.selfAddr
	d.met.MarkEpoch(d.epoch)
	d.met.ElectionEvent("won")
	d.logf("dlptd: won election: steward of epoch %d at seq %d", d.epoch, d.seq)
	d.openEpochLocked()
	if oldFound {
		d.crashPeerLocked(oldID, oldAddr)
	}
	if !d.stewardDownAt.IsZero() {
		d.met.ObserveFailover(time.Since(d.stewardDownAt))
	}
}

// catchUp pulls the sequenced records this candidate missed from the
// most advanced voter before assuming stewardship, so the new epoch
// starts from the longest committed stream any survivor holds.
func (d *Daemon) catchUp(addr string, target uint64) {
	d.mu.Lock()
	from := d.seq + 1
	d.mu.Unlock()
	ctx, cancel := context.WithTimeout(d.ctx, time.Duration(d.cfg.ElectionTimeout))
	rtyp, rp, err := d.cluster.ControlRoundTrip(ctx, addr,
		transport.FrameFetch, transport.EncodeFetch(&transport.FetchRequest{From: from}))
	cancel()
	if err != nil {
		d.logf("dlptd: catch-up fetch from %s: %v", addr, err)
		return
	}
	if rtyp != transport.FrameFetchResp {
		d.logf("dlptd: catch-up fetch from %s: reply frame %d", addr, rtyp)
		return
	}
	rep, err := transport.DecodeFetchReply(rp)
	if err != nil || rep.Err != "" {
		d.logf("dlptd: catch-up fetch from %s: %v%s", addr, err, rep.Err)
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, rec := range rep.Records {
		if rec.Seq != d.seq+1 {
			continue
		}
		if err := d.applyLocked(rec); err != nil {
			d.logf("dlptd: catch-up apply seq %d: %v", rec.Seq, err)
			return
		}
		d.seq = rec.Seq
		d.met.MarkApplied(d.seq)
		d.appendLogLocked(rec)
	}
	d.logf("dlptd: caught up to seq %d (target %d) from %s", d.seq, target, addr)
}

// openEpochLocked runs the epoch-open barrier: every unsuspected
// member adopts the new epoch and reports its last applied sequence;
// members behind by a gap the apply log covers get a replay, members
// too far behind (or ahead, holding uncommitted records from the old
// steward's torn broadcast) get a full RESYNC snapshot. Failures are
// logged and left to the probe loop's crash path — the barrier must
// not wedge stewardship on an unreachable member.
func (d *Daemon) openEpochLocked() {
	peers, nodes := d.cluster.PersistStateView()
	open := transport.EncodeEpochOpen(&transport.EpochOpen{
		Epoch: d.epoch, StewardID: d.selfID, StewardAddr: d.selfAddr, Seq: d.seq,
	})
	for _, m := range d.memberListLocked() {
		if m.ID == d.selfID || d.suspected[m.Addr] {
			continue
		}
		ctx, cancel := context.WithTimeout(d.ctx, 5*time.Second)
		rtyp, rp, err := d.cluster.ControlRoundTrip(ctx, m.Addr, transport.FrameEpochOpen, open)
		cancel()
		if err != nil {
			d.logf("dlptd: epoch-open to %s failed: %v", m.Addr, err)
			continue
		}
		if rtyp != transport.FrameEpochOpenResp {
			d.logf("dlptd: epoch-open to %s: reply frame %d", m.Addr, rtyp)
			continue
		}
		rep, err := transport.DecodeEpochOpenReply(rp)
		if err != nil || rep.Err != "" {
			d.logf("dlptd: epoch-open to %s refused: %v%s", m.Addr, err, rep.Err)
			continue
		}
		switch {
		case rep.Seq == d.seq:
			// In step already.
		case rep.Seq < d.seq && d.logCoversLocked(rep.Seq+1):
			d.replayLocked(m, rep.Seq)
		default:
			// Too far behind for the log, or ahead of the committed
			// stream: re-bootstrap the mirror wholesale.
			d.resyncLocked(m, peers, nodes)
		}
	}
}

// logCoversLocked reports whether the apply log's contiguous tail
// reaches back to sequence from.
func (d *Daemon) logCoversLocked(from uint64) bool {
	return len(d.applyLog) > 0 && d.applyLog[0].Seq <= from
}

// replayLocked re-ships the records a member missed, re-stamped under
// the current epoch so the member's fence admits them.
func (d *Daemon) replayLocked(m transport.Member, afterSeq uint64) {
	gap := d.applyLog[len(d.applyLog)-int(d.seq-afterSeq):]
	d.logf("dlptd: replaying seq %d..%d to %s", afterSeq+1, d.seq, m.Addr)
	for i := range gap {
		rec := gap[i]
		rec.Epoch = d.epoch
		ctx, cancel := context.WithTimeout(d.ctx, 5*time.Second)
		rtyp, rp, err := d.cluster.ControlRoundTrip(ctx, m.Addr, transport.FrameApply, transport.EncodeApply(&rec))
		cancel()
		if err != nil {
			d.logf("dlptd: replay seq %d to %s failed: %v", rec.Seq, m.Addr, err)
			return
		}
		if rtyp == transport.FrameAck {
			if es, derr := transport.DecodeAck(rp); derr == nil && es != "" {
				d.logf("dlptd: replay seq %d refused by %s: %s", rec.Seq, m.Addr, es)
				return
			}
		}
	}
}

// resyncLocked re-bootstraps one member's mirror with a full snapshot
// of the new steward's state — the member-side install keeps its ring
// id and listener, so the overlay's membership is undisturbed.
func (d *Daemon) resyncLocked(m transport.Member, peers []persist.PeerState, nodes []persist.NodeState) {
	d.logf("dlptd: resyncing %s at %s to epoch %d seq %d", m.ID, m.Addr, d.epoch, d.seq)
	payload := transport.EncodeResync(&transport.ResyncState{
		Epoch:       d.epoch,
		Seq:         d.seq,
		StewardAddr: d.selfAddr,
		Members:     d.memberListLocked(),
		Peers:       peers,
		Nodes:       nodes,
	})
	ctx, cancel := context.WithTimeout(d.ctx, 10*time.Second)
	rtyp, rp, err := d.cluster.ControlRoundTrip(ctx, m.Addr, transport.FrameResync, payload)
	cancel()
	if err != nil {
		d.logf("dlptd: resync %s failed: %v", m.Addr, err)
		return
	}
	if rtyp != transport.FrameAck {
		d.logf("dlptd: resync %s: reply frame %d", m.Addr, rtyp)
		return
	}
	if es, derr := transport.DecodeAck(rp); derr == nil && es != "" {
		d.logf("dlptd: resync %s refused: %s", m.Addr, es)
	}
}

// handleElect answers one election proposal: a promise is granted iff
// the proposal clears this voter's fencing floor, this voter is not
// itself the steward, and this voter also believes the steward is
// down — otherwise the refusal carries the floor and a steward hint
// so the candidate can converge instead of looping.
func (d *Daemon) handleElect(payload []byte) (byte, []byte) {
	er, err := transport.DecodeElect(payload)
	if err != nil {
		return transport.FrameAck, transport.EncodeAck("daemon: malformed elect: " + err.Error())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	rep := &transport.ElectReply{Epoch: max(d.epoch, d.promised), Seq: d.seq}
	// A candidate may re-propose the epoch this voter already granted
	// it (its earlier round failed elsewhere); the re-grant is
	// idempotent.
	regrant := er.Epoch > d.epoch && er.Epoch == d.promised && d.promisedTo == er.Addr
	switch {
	case d.closed:
		rep.Err = "daemon: shutting down"
	case d.steward:
		rep.Err = "daemon: i am steward"
		rep.StewardAddr = d.selfAddr
	case er.Epoch <= max(d.epoch, d.promised) && !regrant:
		rep.Err = fmt.Sprintf("daemon: epoch %d not past promised %d", er.Epoch, max(d.epoch, d.promised))
	case !d.suspected[d.stewardAddr]:
		rep.Err = "daemon: steward link is live"
		rep.StewardAddr = d.stewardAddr
	default:
		d.promised = er.Epoch
		d.promisedTo = er.Addr
		rep.Granted = true
		rep.Epoch = er.Epoch
		d.logf("dlptd: promised epoch %d to %s at %s", er.Epoch, er.ID, er.Addr)
	}
	return transport.FrameElectResp, transport.EncodeElectReply(rep)
}

// handleEpochOpen runs the member side of the barrier: adopt the won
// epoch and the new steward, report the last applied sequence. Never
// round-trips back — the steward holds its lock across the barrier.
func (d *Daemon) handleEpochOpen(payload []byte) (byte, []byte) {
	eo, err := transport.DecodeEpochOpen(payload)
	if err != nil {
		return transport.FrameAck, transport.EncodeAck("daemon: malformed epoch-open: " + err.Error())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	rep := &transport.EpochOpenReply{Seq: d.seq}
	switch {
	case d.closed:
		rep.Err = "daemon: shutting down"
	case eo.Epoch < d.epoch:
		rep.Err = staleEpochAck(d.epoch, d.stewardAddr)
	case d.steward:
		// Defensive: a steward that hears a barrier for a higher epoch
		// was deposed and cannot serve the barrier mid-demotion.
		d.deposeLocked(eo.Epoch, eo.StewardAddr)
		rep.Err = "daemon: deposed, rejoining"
	default:
		d.epoch = eo.Epoch
		d.promised = max(d.promised, eo.Epoch)
		d.stewardAddr = eo.StewardAddr
		delete(d.suspected, eo.StewardAddr)
		d.met.MarkEpoch(d.epoch)
		d.logf("dlptd: epoch %d opened by steward %s at %s (local seq %d, steward seq %d)",
			eo.Epoch, eo.StewardID, eo.StewardAddr, d.seq, eo.Seq)
	}
	return transport.FrameEpochOpenResp, transport.EncodeEpochOpenReply(rep)
}

// handleResync installs a full state snapshot from the new steward,
// keeping this daemon's ring id and listener: the re-bootstrap path
// for members whose gap outran the steward's apply log.
func (d *Daemon) handleResync(payload []byte) (byte, []byte) {
	ack := func(errStr string) (byte, []byte) {
		return transport.FrameAck, transport.EncodeAck(errStr)
	}
	rs, err := transport.DecodeResync(payload)
	if err != nil {
		return ack("daemon: malformed resync: " + err.Error())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ack("daemon: shutting down")
	}
	if rs.Epoch < d.epoch {
		return ack(staleEpochAck(d.epoch, d.stewardAddr))
	}
	selfID := d.selfID
	found := false
	for _, m := range rs.Members {
		if m.ID == selfID || m.Addr == d.selfAddr {
			selfID, found = m.ID, true
			break
		}
	}
	if !found {
		return ack("daemon: resync state lacks this member")
	}
	members := make(map[keys.Key]transport.Member, len(rs.Members))
	memberAddrs := make(map[keys.Key]string, len(rs.Members))
	for _, m := range rs.Members {
		members[m.ID] = m
		memberAddrs[m.ID] = m.Addr
	}
	if err := d.cluster.ResetToMirror(rs.Peers, rs.Nodes, memberAddrs, selfID); err != nil {
		return ack("daemon: resync install: " + err.Error())
	}
	d.members = members
	d.selfID = selfID
	d.seq = rs.Seq
	d.met.MarkApplied(d.seq)
	d.epoch = rs.Epoch
	d.promised = max(d.promised, rs.Epoch)
	d.met.MarkEpoch(d.epoch)
	d.stewardAddr = rs.StewardAddr
	d.applyLog = nil
	d.syncLinksLocked()
	d.logf("dlptd: mirror re-bootstrapped by resync at epoch %d seq %d", d.epoch, d.seq)
	return ack("")
}

// handleFetch serves a candidate's catch-up: the contiguous apply-log
// tail from the requested sequence onward.
//
//dlptlint:ignore epochfence read-only handler: logCoversLocked and the record copies only read; stale fetchers get stale tails, which the election term check rejects
func (d *Daemon) handleFetch(payload []byte) (byte, []byte) {
	fr, err := transport.DecodeFetch(payload)
	if err != nil {
		return transport.FrameAck, transport.EncodeAck("daemon: malformed fetch: " + err.Error())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	rep := &transport.FetchReply{}
	switch {
	case fr.From > d.seq:
		// Nothing to serve: the requester is already at or past us.
	case d.logCoversLocked(fr.From):
		for i := range d.applyLog {
			if d.applyLog[i].Seq >= fr.From {
				rec := d.applyLog[i]
				rep.Records = append(rep.Records, &rec)
			}
		}
	default:
		rep.Err = fmt.Sprintf("daemon: apply log starts past seq %d", fr.From)
	}
	return transport.FrameFetchResp, transport.EncodeFetchReply(rep)
}
