// Steward-failover suite: deterministic in-process elections driven
// by abrupt cluster stops and the transport fault hooks. The
// cross-process version (SIGKILL under load) lives in cmd/dlptd's
// smoke test.

package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"dlpt/internal/transport"
)

// failoverConfig is testConfig with the failover timers tightened.
func failoverConfig(seed int64, bootstrap ...string) Config {
	cfg := testConfig(seed, bootstrap...)
	cfg.ElectionTimeout = Duration(300 * time.Millisecond)
	cfg.ForwardRetry = Duration(8 * time.Second)
	return cfg
}

// mirrorState marshals a daemon's deterministic mirror state — the
// peer table and the catalogue, the byte-identical-by-construction
// part (load counters are excluded by the persist view itself).
func mirrorState(t *testing.T, d *Daemon) string {
	t.Helper()
	peers, nodes := d.Cluster().PersistStateView()
	b, err := json.Marshal(struct {
		Peers any
		Nodes any
	}{peers, nodes})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// waitSteward waits until exactly one of ds holds stewardship at
// epoch, and returns it.
func waitSteward(t *testing.T, ds []*Daemon, epoch uint64) *Daemon {
	t.Helper()
	var steward *Daemon
	waitFor(t, 30*time.Second, func() bool {
		steward = nil
		n := 0
		for _, d := range ds {
			if d.IsSteward() && d.Epoch() == epoch {
				steward = d
				n++
			}
		}
		return n == 1
	}, fmt.Sprintf("one survivor assumes stewardship at epoch %d", epoch))
	return steward
}

// register writes one key through d, failing the test on error.
func register(t *testing.T, d *Daemon, k, v string) {
	t.Helper()
	if err := d.mutate(transport.OpRegister, k, v); err != nil {
		t.Fatalf("register %s via %s: %v", k, d.Addr(), err)
	}
}

// Killing the steward elects the lowest-id survivor under epoch 2,
// the survivors' mirrors converge byte-identically, and writes resume
// through the new steward.
func TestStewardFailoverElectsLowestSurvivor(t *testing.T) {
	ds := []*Daemon{startDaemon(t, failoverConfig(1))}
	for i := 1; i < 4; i++ {
		ds = append(ds, startDaemon(t, failoverConfig(int64(i+1), ds[0].Addr())))
	}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		register(t, ds[i%4], fmt.Sprintf("pre%02d", i), "v")
	}
	if err := ds[0].ReplicateNow(); err != nil {
		t.Fatalf("replicate: %v", err)
	}

	// Abrupt steward death: no graceful leave, no warning.
	ds[0].Cluster().Stop()
	survivors := ds[1:]
	steward := waitSteward(t, survivors, 2)

	// Deterministic election rule: lowest surviving ring id wins.
	lowest := survivors[0]
	for _, d := range survivors[1:] {
		if d.SelfID() < lowest.SelfID() {
			lowest = d
		}
	}
	if steward != lowest {
		t.Fatalf("steward %s is not the lowest surviving id %s", steward.SelfID(), lowest.SelfID())
	}

	// The barrier and the old steward's crash record reach every
	// survivor: same epoch, same seq, member table of 3.
	waitFor(t, 15*time.Second, func() bool {
		for _, d := range survivors {
			if d.Epoch() != 2 || d.MemberCount() != 3 || d.Seq() != steward.Seq() {
				return false
			}
		}
		return true
	}, "survivors converge on epoch 2")

	// Writes resume through every survivor (members forward with
	// retry; the steward serializes).
	for i, d := range survivors {
		register(t, d, fmt.Sprintf("post%02d", i), "v")
	}
	waitFor(t, 10*time.Second, func() bool {
		for _, d := range survivors {
			if d.Seq() != steward.Seq() {
				return false
			}
		}
		return true
	}, "post-failover writes reach every mirror")

	// Byte-identical mirrors, and both the pre- and post-failover
	// catalogue serve everywhere.
	want := mirrorState(t, steward)
	for i, d := range survivors {
		if got := mirrorState(t, d); got != want {
			t.Fatalf("survivor %d mirror diverged:\n got %s\nwant %s", i, got, want)
		}
		for j := 0; j < 10; j++ {
			k := fmt.Sprintf("pre%02d", j)
			resp, err := Admin(ctx, d.Addr(), &AdminRequest{Op: "discover", Key: k})
			if err != nil || !resp.Found {
				t.Fatalf("discover %s on survivor %d: found=%v err=%v", k, i, resp != nil && resp.Found, err)
			}
		}
		if _, err := Admin(ctx, d.Addr(), &AdminRequest{Op: "validate"}); err != nil {
			t.Fatalf("validate survivor %d: %v", i, err)
		}
	}
	if st, err := GetStatus(ctx, steward.Addr()); err != nil || st.Role != "steward" || st.Epoch != 2 {
		t.Fatalf("steward status = %+v, err %v", st, err)
	}
}

// A member that missed APPLY broadcasts (dropped by fault injection)
// converges after the failover barrier: the new steward replays the
// gap from its apply log.
func TestFailoverReplaysDroppedBroadcasts(t *testing.T) {
	faults := transport.NewFaults(11)
	cfg := failoverConfig(1)
	cfg.Faults = faults
	ds := []*Daemon{startDaemon(t, cfg)}
	for i := 1; i < 4; i++ {
		ds = append(ds, startDaemon(t, failoverConfig(int64(i+1), ds[0].Addr())))
	}
	register(t, ds[0], "base", "v")

	// Find the survivor that will NOT win (highest id): drop the
	// steward's broadcasts to it so it falls behind.
	lagging := ds[1]
	for _, d := range ds[2:] {
		if d.SelfID() > lagging.SelfID() {
			lagging = d
		}
	}
	faults.Inject(transport.FaultRule{Type: transport.FrameApply, Addr: lagging.Addr(), Drop: true})
	for i := 0; i < 6; i++ {
		register(t, ds[0], fmt.Sprintf("gap%02d", i), "v")
	}
	// Replicate so the steward's own nodes survive its crash; the
	// OpReplicate broadcast to the lagging member drops too, widening
	// the replayed gap by one.
	if err := ds[0].ReplicateNow(); err != nil {
		t.Fatalf("replicate: %v", err)
	}
	if lagging.Seq() >= ds[0].Seq() {
		t.Fatalf("fault hook failed: lagging member at seq %d, steward at %d", lagging.Seq(), ds[0].Seq())
	}

	ds[0].Cluster().Stop()
	survivors := ds[1:]
	steward := waitSteward(t, survivors, 2)
	if steward == lagging {
		t.Fatalf("lagging member won the election despite higher id")
	}
	waitFor(t, 15*time.Second, func() bool {
		return lagging.Seq() == steward.Seq() && lagging.Epoch() == 2
	}, "barrier replays the gap to the lagging member")

	want := mirrorState(t, steward)
	if got := mirrorState(t, lagging); got != want {
		t.Fatalf("lagging mirror diverged after replay:\n got %s\nwant %s", got, want)
	}
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		k := fmt.Sprintf("gap%02d", i)
		resp, err := Admin(ctx, lagging.Addr(), &AdminRequest{Op: "discover", Key: k})
		if err != nil || !resp.Found {
			t.Fatalf("dropped-broadcast key %s missing on lagging member: err=%v", k, err)
		}
	}
}

// A member whose gap outran the bounded apply log re-bootstraps with
// a full RESYNC snapshot instead of a replay.
func TestFailoverResyncsMemberTooFarBehind(t *testing.T) {
	faults := transport.NewFaults(13)
	cfg := failoverConfig(1)
	cfg.Faults = faults
	mk := func(seed int64, bootstrap ...string) Config {
		c := failoverConfig(seed, bootstrap...)
		c.ResyncLogSize = 3 // force the gap past the log
		return c
	}
	cfg.ResyncLogSize = 3
	ds := []*Daemon{startDaemon(t, cfg)}
	for i := 1; i < 4; i++ {
		ds = append(ds, startDaemon(t, mk(int64(i+1), ds[0].Addr())))
	}
	register(t, ds[0], "base", "v")

	lagging := ds[1]
	for _, d := range ds[2:] {
		if d.SelfID() > lagging.SelfID() {
			lagging = d
		}
	}
	faults.Inject(transport.FaultRule{Type: transport.FrameApply, Addr: lagging.Addr(), Drop: true})
	// 8 missed records against a 3-record log: logCovers fails and the
	// barrier must take the RESYNC branch.
	for i := 0; i < 8; i++ {
		register(t, ds[0], fmt.Sprintf("far%02d", i), "v")
	}
	if err := ds[0].ReplicateNow(); err != nil {
		t.Fatalf("replicate: %v", err)
	}

	ds[0].Cluster().Stop()
	survivors := ds[1:]
	steward := waitSteward(t, survivors, 2)
	waitFor(t, 15*time.Second, func() bool {
		return lagging.Seq() == steward.Seq() && lagging.Epoch() == 2
	}, "RESYNC re-bootstraps the member")

	want := mirrorState(t, steward)
	if got := mirrorState(t, lagging); got != want {
		t.Fatalf("mirror diverged after resync:\n got %s\nwant %s", got, want)
	}
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("far%02d", i)
		resp, err := Admin(ctx, lagging.Addr(), &AdminRequest{Op: "discover", Key: k})
		if err != nil || !resp.Found {
			t.Fatalf("key %s missing after resync: err=%v", k, err)
		}
	}
	if _, err := Admin(ctx, lagging.Addr(), &AdminRequest{Op: "validate"}); err != nil {
		t.Fatalf("validate after resync: %v", err)
	}
}

// A paused-then-resumed old steward is fenced by the new epoch: its
// late traffic bounces, it deposes itself and rejoins as a plain
// member, and a write originated on it lands through the new steward.
// Every daemon gets its own fault plan; the old steward is
// partitioned from the members in both directions while the members
// elect under epoch 2, then the partition heals.
func TestDeposedStewardFencedAndRejoins(t *testing.T) {
	fOld := transport.NewFaults(17)
	fM1 := transport.NewFaults(18)
	fM2 := transport.NewFaults(19)

	cfgOld := failoverConfig(1)
	cfgOld.Faults = fOld
	cfgOld.MissThreshold = 1 << 20 // the pause: old steward never crashes anyone out
	old := startDaemon(t, cfgOld)

	cfgM1 := failoverConfig(2, old.Addr())
	cfgM1.Faults = fM1
	m1 := startDaemon(t, cfgM1)
	cfgM2 := failoverConfig(3, old.Addr())
	cfgM2.Faults = fM2
	m2 := startDaemon(t, cfgM2)

	register(t, old, "before", "v")
	// Snapshot replicas onto ring successors so the old steward's
	// eventual crash-out is survivable.
	if err := old.ReplicateNow(); err != nil {
		t.Fatalf("replicate: %v", err)
	}
	waitFor(t, 10*time.Second, func() bool {
		return m1.Seq() == old.Seq() && m2.Seq() == old.Seq()
	}, "members in step before the partition")

	// Both directions go dark: the members see the steward dead and
	// elect; the paused steward sees nothing (huge miss threshold).
	oldAddr := old.Addr()
	fOld.Partition(m1.Addr(), m2.Addr())
	fM1.Partition(oldAddr)
	fM2.Partition(oldAddr)

	steward := waitSteward(t, []*Daemon{m1, m2}, 2)
	if !old.IsSteward() {
		t.Fatalf("old steward must still believe in epoch 1 while partitioned")
	}

	// Heal. The old steward's next act — a write broadcast or a probed
	// STATUS reply — hits the epoch fence, deposes it and triggers the
	// rejoin. The write originated on it must still land: the mutate
	// retry loop forwards to the new steward after the demotion.
	fOld.Clear()
	fM1.Clear()
	fM2.Clear()
	register(t, old, "after", "v")

	waitFor(t, 20*time.Second, func() bool {
		return !old.IsSteward() && old.Epoch() == 2
	}, "old steward deposed by the fence")
	waitFor(t, 20*time.Second, func() bool {
		return old.MemberCount() == 3 && m1.MemberCount() == 3 && m2.MemberCount() == 3 &&
			old.Seq() == steward.Seq() && old.Epoch() == 2
	}, "old steward rejoins as a plain member")

	ctx := context.Background()
	for _, k := range []string{"before", "after"} {
		for i, d := range []*Daemon{old, m1, m2} {
			resp, err := Admin(ctx, d.Addr(), &AdminRequest{Op: "discover", Key: k})
			if err != nil || !resp.Found {
				t.Fatalf("discover %s on daemon %d after rejoin: err=%v", k, i, err)
			}
		}
	}
	want := mirrorState(t, steward)
	if got := mirrorState(t, old); got != want {
		t.Fatalf("rejoined mirror diverged:\n got %s\nwant %s", got, want)
	}
	if st, err := GetStatus(ctx, old.Addr()); err != nil || st.Role != "member" {
		t.Fatalf("old steward status = %+v, err %v", st, err)
	}
}

// With no quorum possible (two-daemon overlay, steward dead), a
// member's origination exhausts its retry budget and reports the
// typed ErrNoSteward.
func TestOriginationReportsErrNoSteward(t *testing.T) {
	steward := startDaemon(t, failoverConfig(1))
	cfg := failoverConfig(2, steward.Addr())
	cfg.ForwardRetry = Duration(1500 * time.Millisecond)
	member := startDaemon(t, cfg)
	register(t, member, "ok", "v")

	steward.Cluster().Stop()
	waitFor(t, 10*time.Second, func() bool {
		return member.maint != nil && len(member.Status().Links) > 0
	}, "member probes the dead steward")

	start := time.Now()
	err := member.mutate(transport.OpRegister, "lost", "v")
	if !errors.Is(err, ErrNoSteward) {
		t.Fatalf("want ErrNoSteward, got %v", err)
	}
	if elapsed := time.Since(start); elapsed < 1200*time.Millisecond {
		t.Fatalf("retry budget not spent: returned after %v", elapsed)
	}
	if member.IsSteward() {
		t.Fatalf("two-daemon overlay must not fail over (no quorum)")
	}
}

// A joiner holding a stale steward redirect (the steward died between
// the redirect and the dial) falls back to the live members and joins
// through the newly elected steward.
func TestStaleJoinRedirectReResolves(t *testing.T) {
	ds := []*Daemon{startDaemon(t, failoverConfig(1))}
	for i := 1; i < 4; i++ {
		ds = append(ds, startDaemon(t, failoverConfig(int64(i+1), ds[0].Addr())))
	}
	// Kill the steward and immediately bootstrap a joiner via a
	// member: the member's first redirect names the dead steward; the
	// joiner must evict that hint and re-ask instead of dialing the
	// corpse until timeout.
	ds[0].Cluster().Stop()
	survivors := ds[1:]
	joiner := startDaemon(t, failoverConfig(9, survivors[0].Addr(), survivors[1].Addr()))

	steward := waitSteward(t, survivors, 2)
	waitFor(t, 20*time.Second, func() bool {
		return joiner.MemberCount() == 4 && steward.MemberCount() == 4
	}, "joiner lands in the post-failover overlay")
	register(t, joiner, "joined", "v")
	ctx := context.Background()
	resp, err := Admin(ctx, steward.Addr(), &AdminRequest{Op: "discover", Key: "joined"})
	if err != nil || !resp.Found {
		t.Fatalf("joiner's write missing on steward: err=%v", err)
	}
}

// Delayed election traffic (jittered fault delays on ELECT frames)
// slows the election but does not break it: same winner, same
// convergence.
func TestFailoverUnderElectionDelay(t *testing.T) {
	faults := make([]*transport.Faults, 4)
	ds := make([]*Daemon, 0, 4)
	for i := 0; i < 4; i++ {
		faults[i] = transport.NewFaults(int64(23 + i))
		faults[i].Inject(transport.FaultRule{
			Type: transport.FrameElect, Delay: 150 * time.Millisecond, Jitter: 0.4,
		})
		cfg := failoverConfig(int64(i + 1))
		if i > 0 {
			cfg.Bootstrap = []string{ds[0].Addr()}
		}
		cfg.Faults = faults[i]
		ds = append(ds, startDaemon(t, cfg))
	}
	register(t, ds[0], "delayed", "v")
	ds[0].Cluster().Stop()
	survivors := ds[1:]
	steward := waitSteward(t, survivors, 2)
	waitFor(t, 15*time.Second, func() bool {
		for _, d := range survivors {
			if d.Epoch() != 2 || d.Seq() != steward.Seq() {
				return false
			}
		}
		return true
	}, "survivors converge despite delayed ELECT frames")
	register(t, steward, "postdelay", "v")
	resp, err := Admin(context.Background(), survivors[len(survivors)-1].Addr(),
		&AdminRequest{Op: "discover", Key: "postdelay"})
	if err != nil || !resp.Found {
		t.Fatalf("postdelay write missing: err=%v", err)
	}
}
