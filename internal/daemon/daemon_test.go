package daemon

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"dlpt/internal/keys"
	"dlpt/internal/transport"
)

// quietf discards daemon logs unless -v.
func quietf(t *testing.T) func(string, ...any) {
	return func(format string, args ...any) { t.Logf(format, args...) }
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out: %s", msg)
}

// testConfig is a loopback daemon config with fast timers.
func testConfig(seed int64, bootstrap ...string) Config {
	return Config{
		Listen:         "127.0.0.1:0",
		Bootstrap:      bootstrap,
		Capacity:       8,
		Alphabet:       "lower_alnum",
		Seed:           seed,
		ProbeEvery:     Duration(50 * time.Millisecond),
		MissThreshold:  3,
		ReplicateEvery: Duration(time.Hour), // keep ticks out of short tests
		JoinTimeout:    Duration(15 * time.Second),
	}
}

func startDaemon(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	d, err := Start(cfg, quietf(t))
	if err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// startOverlay brings up a steward plus n-1 members joined through it.
func startOverlay(t *testing.T, n int) []*Daemon {
	t.Helper()
	ds := []*Daemon{startDaemon(t, testConfig(1))}
	for i := 1; i < n; i++ {
		ds = append(ds, startDaemon(t, testConfig(int64(i+1), ds[0].Addr())))
	}
	return ds
}

// Three daemons form one overlay through the bootstrap handshake and
// serve registrations, discoveries and streamed completions across
// process... boundaries (in-process here; cmd/dlptd's smoke test runs
// the real three-process version).
func TestThreeDaemonOverlay(t *testing.T) {
	ds := startOverlay(t, 3)
	for i, d := range ds {
		if got := d.MemberCount(); got != 3 {
			t.Fatalf("daemon %d member count = %d, want 3", i, got)
		}
		if got := d.Cluster().NumPeers(); got != 3 {
			t.Fatalf("daemon %d peer count = %d, want 3", i, got)
		}
	}
	// Mutate through every daemon's admin surface: members forward to
	// the steward, the steward broadcasts, all mirrors converge.
	ctx := context.Background()
	entries := map[string]string{
		"blas3dgemm": "host1:4000",
		"blas3dtrsm": "host2:4000",
		"s3lsort":    "host3:4000",
		"fftw3":      "host1:4100",
	}
	i := 0
	for k, v := range entries {
		if _, err := Admin(ctx, ds[i%3].Addr(), &AdminRequest{Op: "register", Key: k, Value: v}); err != nil {
			t.Fatalf("register %s via daemon %d: %v", k, i%3, err)
		}
		i++
	}
	for idx, d := range ds {
		for k, v := range entries {
			resp, err := Admin(ctx, d.Addr(), &AdminRequest{Op: "discover", Key: k})
			if err != nil {
				t.Fatalf("discover %s on daemon %d: %v", k, idx, err)
			}
			if !resp.Found || len(resp.Values) != 1 || resp.Values[0] != v {
				t.Fatalf("discover %s on daemon %d = %+v, want %s", k, idx, resp, v)
			}
		}
		resp, err := Admin(ctx, d.Addr(), &AdminRequest{Op: "complete", Prefix: "blas3"})
		if err != nil {
			t.Fatalf("complete on daemon %d: %v", idx, err)
		}
		if len(resp.Keys) != 2 {
			t.Fatalf("complete blas3 on daemon %d = %v, want 2 keys", idx, resp.Keys)
		}
		if _, err := Admin(ctx, d.Addr(), &AdminRequest{Op: "validate"}); err != nil {
			t.Fatalf("validate on daemon %d: %v", idx, err)
		}
	}
	// Every mirror applied the same serialized mutation stream.
	seq := ds[0].Seq()
	for idx, d := range ds {
		if d.Seq() != seq {
			t.Fatalf("daemon %d seq = %d, steward seq = %d", idx, d.Seq(), seq)
		}
	}
	st, err := GetStatus(ctx, ds[1].Addr())
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Role != "member" || st.Peers != 3 || len(st.Members) != 3 {
		t.Fatalf("status = %+v", st)
	}
}

// A JOIN with the wrong handshake version is rejected in-band and the
// joiner fails fast instead of retrying.
func TestJoinVersionMismatchRejected(t *testing.T) {
	s := startDaemon(t, testConfig(1))
	jr := &transport.JoinRequest{
		Version:  transport.HandshakeVersion + 98,
		Alphabet: string(keys.LowerAlnum.Digits()),
		Addr:     "127.0.0.1:1",
		Capacity: 8,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rtyp, p, err := transport.RawCall(ctx, s.Addr(), transport.FrameJoin, transport.EncodeJoin(jr))
	if err != nil || rtyp != transport.FrameHello {
		t.Fatalf("raw join: frame %d, err %v", rtyp, err)
	}
	hello, err := transport.DecodeHello(p)
	if err != nil {
		t.Fatalf("decode hello: %v", err)
	}
	if !strings.Contains(hello.Err, "handshake version") {
		t.Fatalf("hello.Err = %q, want version rejection", hello.Err)
	}
	// The daemon-level join loop treats it as permanent.
	cfg := testConfig(9, s.Addr())
	cfg.JoinTimeout = Duration(10 * time.Second)
	cfg.Alphabet = "binary" // also incompatible: alphabet mismatch
	start := time.Now()
	if _, err := Start(cfg, quietf(t)); err == nil {
		t.Fatal("join with mismatched alphabet succeeded")
	} else if !strings.Contains(err.Error(), "alphabet") {
		t.Fatalf("join error = %v, want alphabet rejection", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("incompatible join retried instead of failing fast")
	}
}

// A second JOIN advertising an address already in the member table is
// refused: the overlay would otherwise route one listener as two
// peers.
func TestJoinDuplicateAddressRejected(t *testing.T) {
	ds := startOverlay(t, 2)
	jr := &transport.JoinRequest{
		Version:  transport.HandshakeVersion,
		Alphabet: string(keys.LowerAlnum.Digits()),
		Addr:     ds[1].Addr(),
		Capacity: 8,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rtyp, p, err := transport.RawCall(ctx, ds[0].Addr(), transport.FrameJoin, transport.EncodeJoin(jr))
	if err != nil || rtyp != transport.FrameHello {
		t.Fatalf("raw join: frame %d, err %v", rtyp, err)
	}
	hello, err := transport.DecodeHello(p)
	if err != nil {
		t.Fatalf("decode hello: %v", err)
	}
	if !strings.Contains(hello.Err, "address already joined") {
		t.Fatalf("hello.Err = %q, want duplicate-address rejection", hello.Err)
	}
}

// A member started before its bootstrap peer keeps re-dialing with
// backoff and joins once the steward comes up.
func TestJoinRetriesUntilBootstrapUp(t *testing.T) {
	// Reserve a port for the future steward, then free it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stewardAddr := ln.Addr().String()
	ln.Close()

	memberCh := make(chan error, 1)
	var member *Daemon
	go func() {
		var err error
		member, err = Start(testConfig(2, stewardAddr), quietf(t))
		memberCh <- err
	}()
	time.Sleep(400 * time.Millisecond) // let a few dials fail first
	select {
	case err := <-memberCh:
		t.Fatalf("member finished before steward existed: %v", err)
	default:
	}
	cfg := testConfig(1)
	cfg.Listen = stewardAddr
	steward := startDaemon(t, cfg)
	if err := <-memberCh; err != nil {
		t.Fatalf("member join after steward up: %v", err)
	}
	defer member.Close()
	waitFor(t, 5*time.Second, func() bool { return steward.MemberCount() == 2 },
		"steward sees the late joiner")
}

// A bootstrap target that dies mid-handshake (accepts, then cuts the
// connection) is skipped and the joiner fails over to the next
// bootstrap address.
func TestJoinFailsOverWhenBootstrapDiesMidJoin(t *testing.T) {
	flaky, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer flaky.Close()
	go func() {
		for {
			conn, err := flaky.Accept()
			if err != nil {
				return
			}
			conn.Close() // cut the join mid-handshake
		}
	}()
	steward := startDaemon(t, testConfig(1))
	member := startDaemon(t, testConfig(2, flaky.Addr().String(), steward.Addr()))
	if member.MemberCount() != 2 {
		t.Fatalf("member count = %d, want 2", member.MemberCount())
	}
	if member.Status().StewardAddr != steward.Addr() {
		t.Fatalf("joined through %s, want %s", member.Status().StewardAddr, steward.Addr())
	}
}

// Killing a member abruptly trips the steward's maintenance loop: the
// peer is declared crashed, its nodes recover from ring-successor
// replicas, and the surviving mirrors stay valid and convergent.
func TestMemberCrashRecovery(t *testing.T) {
	ds := startOverlay(t, 3)
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		k := fmt.Sprintf("svc%02d", i)
		if _, err := Admin(ctx, ds[i%3].Addr(), &AdminRequest{Op: "register", Key: k, Value: "v"}); err != nil {
			t.Fatalf("register %s: %v", k, err)
		}
	}
	// Snapshot replicas onto ring successors so a crash is survivable.
	if err := ds[0].ReplicateNow(); err != nil {
		t.Fatalf("replicate: %v", err)
	}

	// Abrupt death: stop the cluster without the graceful leave.
	ds[2].Cluster().Stop()
	waitFor(t, 10*time.Second, func() bool { return ds[0].MemberCount() == 2 },
		"steward crashes the dead member out")
	waitFor(t, 10*time.Second, func() bool { return ds[1].MemberCount() == 2 },
		"surviving member applies the crash")
	for i, d := range []*Daemon{ds[0], ds[1]} {
		if _, err := Admin(ctx, d.Addr(), &AdminRequest{Op: "validate"}); err != nil {
			t.Fatalf("validate on survivor %d: %v", i, err)
		}
	}
	for i := 0; i < 12; i++ {
		k := fmt.Sprintf("svc%02d", i)
		resp, err := Admin(ctx, ds[1].Addr(), &AdminRequest{Op: "discover", Key: k})
		if err != nil {
			t.Fatalf("discover %s after crash: %v", k, err)
		}
		if !resp.Found {
			t.Fatalf("key %s lost after crash recovery", k)
		}
	}
	if ds[0].Seq() != ds[1].Seq() {
		t.Fatalf("seq diverged after crash: steward %d, member %d", ds[0].Seq(), ds[1].Seq())
	}
}

// A member's Close leaves gracefully: its nodes hand off and the
// remaining overlay keeps every registration.
func TestGracefulLeave(t *testing.T) {
	ds := startOverlay(t, 3)
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("leave%02d", i)
		if _, err := Admin(ctx, ds[2].Addr(), &AdminRequest{Op: "register", Key: k, Value: "v"}); err != nil {
			t.Fatalf("register %s: %v", k, err)
		}
	}
	if err := ds[1].Close(); err != nil {
		t.Fatalf("close member: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return ds[0].MemberCount() == 2 },
		"steward processes the leave")
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("leave%02d", i)
		resp, err := Admin(ctx, ds[2].Addr(), &AdminRequest{Op: "discover", Key: k})
		if err != nil || !resp.Found {
			t.Fatalf("discover %s after leave: found=%v err=%v", k, resp != nil && resp.Found, err)
		}
	}
	if _, err := Admin(ctx, ds[0].Addr(), &AdminRequest{Op: "validate"}); err != nil {
		t.Fatalf("validate after leave: %v", err)
	}
}

// A steward restart reloads the durable catalogue into a fresh
// overlay: registrations survive, membership does not (members rejoin
// through the handshake).
func TestStewardCatalogueRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(1)
	cfg.DataDir = dir
	s, err := Start(cfg, quietf(t))
	if err != nil {
		t.Fatalf("start steward: %v", err)
	}
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		k := fmt.Sprintf("dur%02d", i)
		if _, err := Admin(ctx, s.Addr(), &AdminRequest{Op: "register", Key: k, Value: "v"}); err != nil {
			t.Fatalf("register %s: %v", k, err)
		}
	}
	s.Close()

	s2 := startDaemon(t, cfg)
	for i := 0; i < 6; i++ {
		k := fmt.Sprintf("dur%02d", i)
		resp, err := Admin(ctx, s2.Addr(), &AdminRequest{Op: "discover", Key: k})
		if err != nil || !resp.Found {
			t.Fatalf("discover %s after restart: found=%v err=%v", k, resp != nil && resp.Found, err)
		}
	}
	if _, err := Admin(ctx, s2.Addr(), &AdminRequest{Op: "validate"}); err != nil {
		t.Fatalf("validate after restart: %v", err)
	}
}
