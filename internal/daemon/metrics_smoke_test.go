package daemon

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"dlpt/internal/obs"
)

// TestMetricsEndpointThreeDaemonOverlay is the metrics smoke: a
// 3-daemon overlay with the HTTP listener enabled serves the core
// observability series in valid Prometheus text format on every host
// while real cross-daemon traffic flows, and the same counters answer
// the "obs" admin op over the wire.
func TestMetricsEndpointThreeDaemonOverlay(t *testing.T) {
	cfg := testConfig(1)
	cfg.MetricsAddr = "127.0.0.1:0"
	cfg.ReplicateEvery = Duration(200 * time.Millisecond)
	steward := startDaemon(t, cfg)
	var ds []*Daemon
	ds = append(ds, steward)
	for i := 1; i < 3; i++ {
		mc := testConfig(int64(i+1), steward.Addr())
		mc.MetricsAddr = "127.0.0.1:0"
		ds = append(ds, startDaemon(t, mc))
	}

	ctx := context.Background()
	for i := 0; i < 12; i++ {
		k := fmt.Sprintf("svc%02d", i)
		d := ds[i%3]
		if _, err := Admin(ctx, d.Addr(), &AdminRequest{Op: "register", Key: k, Value: "ep"}); err != nil {
			t.Fatalf("register %s: %v", k, err)
		}
	}
	for i, d := range ds {
		for j := 0; j < 12; j++ {
			k := fmt.Sprintf("svc%02d", j)
			resp, err := Admin(ctx, d.Addr(), &AdminRequest{Op: "discover", Key: k})
			if err != nil || !resp.Found {
				t.Fatalf("discover %s via daemon %d: err=%v", k, i, err)
			}
		}
	}
	// A replicate tick populates the replication-lag gauge.
	waitFor(t, 5*time.Second, func() bool {
		snap, err := Admin(ctx, steward.Addr(), &AdminRequest{Op: "obs"})
		return err == nil && snap.Obs.Get(obs.SeriesReplicaSnapshots) > 0
	}, "replication tick observed")

	required := []string{
		obs.SeriesVisitLoad,
		obs.SeriesHopLatency + "_count",
		obs.SeriesHopLatency + "_bucket",
		obs.SeriesHopLatency + "_sum",
		obs.SeriesPoolConns,
		obs.SeriesReplicationLag,
		obs.SeriesVisits,
		obs.SeriesWireBytesIn,
		obs.SeriesApplySeq,
	}
	for i, d := range ds {
		addr := d.MetricsAddr()
		if addr == "" {
			t.Fatalf("daemon %d has no metrics listener", i)
		}
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatalf("scrape daemon %d: %v", i, err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("daemon %d content type %q", i, ct)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		text := string(body)
		// Valid exposition shape: non-comment lines are "series value".
		sawType := false
		for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
			if strings.HasPrefix(line, "# TYPE ") {
				sawType = true
				continue
			}
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if len(strings.Fields(line)) != 2 {
				t.Fatalf("daemon %d: malformed exposition line %q", i, line)
			}
		}
		if !sawType {
			t.Fatalf("daemon %d exposition has no TYPE metadata", i)
		}
		for _, fam := range required {
			if !strings.Contains(text, "\n"+fam) && !strings.HasPrefix(text, fam) {
				t.Fatalf("daemon %d exposition missing family %s:\n%.600s", i, fam, text)
			}
		}
		// The steward applied the registrations through its own mutation
		// stream; every mirror follows the same sequence.
		if !strings.Contains(text, obs.SeriesApplySeq+" ") {
			t.Fatalf("daemon %d missing apply-seq gauge", i)
		}

		// /debug/trace serves span trees recorded by real wire traffic.
		tr, err := http.Get("http://" + addr + "/debug/trace")
		if err != nil {
			t.Fatalf("trace scrape daemon %d: %v", i, err)
		}
		tb, _ := io.ReadAll(tr.Body)
		tr.Body.Close()
		if !strings.HasPrefix(string(tb), "[") {
			t.Fatalf("daemon %d /debug/trace not a JSON list: %.80s", i, tb)
		}
	}

	// The ADMIN wire path answers the same counters without HTTP. Node
	// visits accrue on whichever daemon hosts the visited nodes, so the
	// fleet-wide sum is the meaningful check.
	visits := 0.0
	for i, d := range ds {
		resp, err := Admin(ctx, d.Addr(), &AdminRequest{Op: "obs"})
		if err != nil {
			t.Fatal(err)
		}
		visits += resp.Obs.Get(obs.SeriesVisits)
		if i > 0 && resp.Obs.Get(obs.SeriesApplySeq) <= 0 {
			t.Fatalf("obs op reports zero apply seq on member %d", i)
		}
	}
	if visits <= 0 {
		t.Fatal("no node visits recorded across the overlay")
	}
}

// TestMetricsAddrDisabledByDefault pins the opt-in: without
// MetricsAddr no HTTP listener opens, yet the obs admin op still
// serves the snapshot.
func TestMetricsAddrDisabledByDefault(t *testing.T) {
	d := startDaemon(t, testConfig(1))
	if addr := d.MetricsAddr(); addr != "" {
		t.Fatalf("unexpected metrics listener at %s", addr)
	}
	ctx := context.Background()
	if _, err := Admin(ctx, d.Addr(), &AdminRequest{Op: "register", Key: "svc", Value: "ep"}); err != nil {
		t.Fatal(err)
	}
	resp, err := Admin(ctx, d.Addr(), &AdminRequest{Op: "obs"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Obs) == 0 {
		t.Fatal("obs op returned an empty snapshot")
	}
}
