package daemon

import (
	"testing"

	"dlpt/internal/leakcheck"
)

// TestMain fails the binary if daemon goroutines (control loops, link
// maintainers, metrics servers, election candidates) outlive the
// tests: Daemon.Close must join everything it started.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
