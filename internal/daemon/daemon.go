// Package daemon turns the in-process TCP cluster into a cross-host
// deployment: every dlptd process hosts one peer and a full-state
// mirror of the overlay, and one process — the steward, the daemon
// started with an empty bootstrap list — serializes every overlay
// mutation into a numbered APPLY stream that keeps the mirrors
// convergent.
//
// The protocol rests on a determinism property of the core overlay:
// the prefix tree's structure is canonical given the key set and the
// ring, and replica placement follows the ring-successor rule, so
// independent processes that apply the same mutation sequence to the
// same starting state hold byte-identical topology and catalogue
// (only load counters drift, and nothing validates those). Routing
// then needs no coordination at all — every daemon resolves HostOf
// locally and relays discovery, routing and stream frames straight to
// the owning process.
//
// Joining: a member binds its listener first, then dials a bootstrap
// address and sends JOIN (version, alphabet, placement, advertised
// address, capacity). The steward validates compatibility, admits the
// peer through the ordinary membership path, broadcasts the join to
// the existing members, and answers HELLO with the assigned ring id,
// the member table and a state snapshot consistent with the handshake
// sequence number, which the joiner installs as its mirror. A member
// that receives JOIN redirects the joiner to the steward.
//
// Mutating: members forward Register/Unregister to the steward as an
// APPLY with sequence 0 (an origination request); the steward applies
// it, assigns the next sequence number and synchronously broadcasts
// the record to every member — including the originator — before
// acknowledging. A member refuses any record that does not extend its
// sequence exactly by one.
//
// Failure: each daemon's peering.Maintainer probes its links with
// STATUS round-trips. The steward acts on a member's loss: after the
// miss threshold it declares the member crashed (CrashPeer), recovers
// the lost nodes from ring-successor replicas, and broadcasts both
// steps.
//
// Steward failover: every control frame carries the steward epoch
// alongside its sequence number. When members lose the steward link,
// the survivor with the lowest ring id among the unsuspected members
// proposes itself under a bumped epoch; each voter grants at most one
// promise per epoch, and a majority of the known members elects. The
// winner first pulls any records it missed from its most advanced
// voter, then runs the epoch-open barrier: every member adopts the
// new epoch and steward address and reports its last applied sequence
// number — gaps replay from the winner's bounded apply log, members
// too far behind (or ahead) install a full RESYNC snapshot — and
// finally the old steward's crash is serialized under the new epoch.
// Receivers refuse control traffic fenced behind their epoch, so a
// paused-then-resumed old steward's late broadcasts bounce; the
// stale-epoch refusals (and the epoch in probed STATUS replies) tell
// it that it was deposed, and it rejoins as a plain member under a
// fresh ring id. Elections need a majority, so a two-daemon overlay
// cannot fail over; members that miss a broadcast mid-epoch still
// converge through the next barrier or the probe-loop crash path.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"dlpt/internal/core"
	"dlpt/internal/keys"
	"dlpt/internal/lb"
	"dlpt/internal/obs"
	"dlpt/internal/peering"
	"dlpt/internal/persist"
	"dlpt/internal/trace"
	"dlpt/internal/transport"
)

// incompatiblePrefix marks join rejections that no amount of retrying
// will fix (version, alphabet, placement or address conflicts); the
// join loop fails fast on them instead of backing off.
const incompatiblePrefix = "incompatible: "

// Daemon is one dlptd process: a single-peer cluster holding a full
// overlay mirror, the control-plane protocol around it, and the link
// maintenance loop.
type Daemon struct {
	cfg           Config
	alpha         *keys.Alphabet
	alphaDigits   string
	placementName string
	logf          func(format string, args ...any)

	cluster *transport.Cluster
	store   *persist.Store
	maint   *peering.Maintainer

	// Observability: every daemon aggregates metrics and records spans
	// (the wire path serves them via the "obs" admin op); the HTTP
	// endpoint only binds when Config.MetricsAddr asks for it.
	obsReg     *obs.Registry
	met        *obs.Metrics
	rec        *trace.Recorder
	metricsLn  net.Listener
	metricsSrv *http.Server

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu          sync.Mutex
	steward     bool                          // guarded by mu
	selfID      keys.Key                      // guarded by mu
	selfAddr    string                        // guarded by mu
	stewardAddr string                        // guarded by mu
	seq         uint64                        // guarded by mu
	members     map[keys.Key]transport.Member // guarded by mu
	closed      bool                          // guarded by mu

	// Failover state. epoch is the steward generation this daemon
	// honors (fencing floor for inbound control frames); promised is
	// the highest election proposal granted, never re-granted lower,
	// and promisedTo the address it was granted to (a candidate may
	// re-propose its own promised epoch across retry rounds, so slow
	// voters don't inflate the epoch). suspected tracks addresses
	// whose links crossed the miss threshold; electing serializes this
	// daemon's candidate loop. applyLog is the bounded contiguous tail
	// of applied records ending at seq, the replay source for
	// post-election gap repair.
	epoch         uint64                  // guarded by mu
	promised      uint64                  // guarded by mu
	promisedTo    string                  // guarded by mu
	suspected     map[string]bool         // guarded by mu
	electing      bool                    // guarded by mu
	stewardDownAt time.Time               // guarded by mu
	applyLog      []transport.ApplyRecord // guarded by mu
}

// Start brings a daemon up according to cfg: a steward seeds a fresh
// overlay (reloading its durable catalogue if DataDir has one), a
// member joins through the bootstrap list, retrying with backoff
// until JoinTimeout. logf receives operational log lines (nil means
// the standard logger).
func Start(cfg Config, logf func(format string, args ...any)) (*Daemon, error) {
	cfg = cfg.withDefaults()
	alpha, err := alphabetFor(cfg.Alphabet)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:         cfg,
		alpha:       alpha,
		alphaDigits: string(alpha.Digits()),
		logf:        logf,
		members:     make(map[keys.Key]transport.Member),
		suspected:   make(map[string]bool),
	}
	d.obsReg = obs.NewRegistry()
	d.met = obs.NewMetrics(d.obsReg)
	d.rec = trace.NewRecorder(trace.DefaultCapacity)
	if d.logf == nil {
		d.logf = log.Printf
	}
	if cfg.Placement != "" {
		strat, err := lb.ByName(cfg.Placement)
		if err != nil {
			return nil, err
		}
		d.placementName = strat.Name()
	}
	d.ctx, d.cancel = context.WithCancel(context.Background())
	if len(cfg.Bootstrap) == 0 {
		err = d.startSteward()
	} else {
		err = d.startMember()
	}
	if err != nil {
		d.cancel()
		return nil, err
	}
	if cfg.MetricsAddr != "" {
		if err := d.startMetrics(cfg.MetricsAddr); err != nil {
			d.cancel()
			d.cluster.Stop()
			if d.store != nil {
				d.store.Close()
			}
			return nil, err
		}
	}
	d.maint = peering.New(peering.Config{
		Probe:         d.probe,
		Interval:      time.Duration(cfg.ProbeEvery),
		MissThreshold: cfg.MissThreshold,
		OnDown:        d.onLinkDown,
		OnUp:          d.onLinkUp,
		Seed:          cfg.Seed,
	})
	d.mu.Lock()
	d.syncLinksLocked()
	d.mu.Unlock()
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		d.maint.Run(d.ctx)
	}()
	// Every daemon runs the replication loop: the tick no-ops unless
	// this daemon currently holds stewardship, so an elected member
	// starts replicating and a deposed steward stops, without loop
	// lifecycle churn.
	d.wg.Add(1)
	go d.replicateLoop()
	role := "member"
	if d.steward {
		role = "steward"
	}
	d.logf("dlptd %s up: peer %s at %s", role, d.selfID, d.selfAddr)
	return d, nil
}

// startMetrics binds the opt-in observability HTTP listener: /metrics
// serves the Prometheus exposition text and /debug/trace the recent
// span trees as JSON.
func (d *Daemon) startMetrics(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("daemon: metrics listener: %w", err)
	}
	d.metricsLn = ln
	d.metricsSrv = &http.Server{Handler: obs.Handler(d.obsReg, d.rec)}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		if err := d.metricsSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			d.logf("dlptd: metrics server: %v", err)
		}
	}()
	d.logf("dlptd: metrics at http://%s/metrics", ln.Addr())
	return nil
}

// MetricsAddr returns the bound metrics listener address, "" when the
// endpoint is disabled.
func (d *Daemon) MetricsAddr() string {
	if d.metricsLn == nil {
		return ""
	}
	return d.metricsLn.Addr().String()
}

// startSteward seeds a fresh single-peer overlay. With a data
// directory, the previous catalogue — snapshot plus journal tail — is
// folded and re-registered: the catalogue survives a steward restart,
// the membership does not (members always rejoin through the
// handshake and receive fresh mirrors).
//
// dlptlint:exclusive — runs during Start before the listener serves
// control frames; the daemon has not escaped to other goroutines.
func (d *Daemon) startSteward() error {
	var entries []core.KV
	if d.cfg.DataDir != "" {
		store, err := persist.Open(d.cfg.DataDir)
		if err != nil {
			return err
		}
		st, err := store.Load()
		if err != nil {
			store.Close()
			return err
		}
		d.store = store
		entries = foldCatalogue(st)
		st.Release()
	}
	opts := transport.Options{
		Bind:          d.cfg.Listen,
		AdvertiseHost: d.cfg.Advertise,
		Persist:       d.store,
		Control:       d.control,
		Obs:           d.met,
		Trace:         d.rec,
		Faults:        d.cfg.Faults,
	}
	if d.placementName != "" {
		strat, err := lb.ByName(d.placementName)
		if err != nil {
			return err
		}
		opts.Placement = strat
	}
	c, err := transport.StartOpts(d.alpha, []int{d.cfg.Capacity}, d.cfg.Seed, opts)
	if err != nil {
		if d.store != nil {
			d.store.Close()
		}
		return err
	}
	d.cluster = c
	for id, addr := range c.Addrs() {
		d.selfID, d.selfAddr = id, addr
	}
	d.steward = true
	d.stewardAddr = d.selfAddr
	d.epoch, d.promised = 1, 1
	d.met.MarkEpoch(d.epoch)
	d.members[d.selfID] = transport.Member{ID: d.selfID, Addr: d.selfAddr, Capacity: d.cfg.Capacity}
	if len(entries) > 0 {
		if err := c.RegisterBatch(entries); err != nil {
			c.Stop()
			return fmt.Errorf("daemon: restore catalogue: %w", err)
		}
		// Rotate a fresh snapshot epoch so the restore's journal
		// appends don't double the next reload.
		if _, err := c.ReplicateLocal(); err != nil {
			c.Stop()
			return err
		}
		d.logf("dlptd steward restored %d catalogue entries from %s", len(entries), d.cfg.DataDir)
	}
	return nil
}

// foldCatalogue flattens a loaded persistent state — snapshot plus
// journal tail — into the registration list for a fresh overlay.
func foldCatalogue(st *persist.LoadedState) []core.KV {
	vals := make(map[string]map[string]bool)
	add := func(k, v string) {
		if vals[k] == nil {
			vals[k] = make(map[string]bool)
		}
		vals[k][v] = true
	}
	if st.Snapshot != nil {
		_ = st.Snapshot.AscendNodes(func(ns persist.NodeState) bool {
			for _, v := range ns.Values {
				add(ns.Key, v)
			}
			return true
		})
	}
	for _, r := range st.Journal {
		if r.Remove {
			if vs := vals[r.Key]; vs != nil {
				delete(vs, r.Value)
			}
		} else {
			add(r.Key, r.Value)
		}
	}
	ks := make([]string, 0, len(vals))
	for k := range vals {
		if len(vals[k]) > 0 {
			ks = append(ks, k)
		}
	}
	sort.Strings(ks)
	var out []core.KV
	for _, k := range ks {
		vs := make([]string, 0, len(vals[k]))
		for v := range vals[k] {
			vs = append(vs, v)
		}
		sort.Strings(vs)
		for _, v := range vs {
			out = append(out, core.KV{Key: keys.Key(k), Value: v})
		}
	}
	return out
}

// startMember binds the listener first (so JOIN can advertise it),
// starts an empty cluster, joins through the bootstrap list and
// installs the steward's state snapshot as this process's mirror. The
// daemon lock is held across join and install: APPLY broadcasts that
// race the installation queue behind it and then extend the sequence
// in order.
func (d *Daemon) startMember() error {
	ln, err := net.Listen("tcp", transport.NormalizeBind(d.cfg.Listen))
	if err != nil {
		return err
	}
	d.selfAddr = transport.AdvertiseAddr(ln.Addr().String(), d.cfg.Advertise)
	c, err := transport.StartOpts(d.alpha, nil, d.cfg.Seed, transport.Options{
		AllowEmpty:    true,
		AdvertiseHost: d.cfg.Advertise,
		Control:       d.control,
		Obs:           d.met,
		Trace:         d.rec,
		Faults:        d.cfg.Faults,
	})
	if err != nil {
		ln.Close()
		return err
	}
	d.cluster = c
	d.mu.Lock()
	defer d.mu.Unlock()
	hello, err := d.joinOverlay()
	if err != nil {
		ln.Close()
		c.Stop()
		return err
	}
	memberAddrs := make(map[keys.Key]string, len(hello.Members))
	for _, m := range hello.Members {
		d.members[m.ID] = m
		memberAddrs[m.ID] = m.Addr
	}
	if err := c.InstallMirror(hello.Peers, hello.Nodes, memberAddrs, hello.AssignedID, ln); err != nil {
		ln.Close()
		c.Stop()
		return fmt.Errorf("daemon: install mirror: %w", err)
	}
	d.selfID = hello.AssignedID
	d.seq = hello.Seq
	d.met.MarkApplied(d.seq)
	d.epoch, d.promised = hello.Epoch, hello.Epoch
	d.met.MarkEpoch(d.epoch)
	d.stewardAddr = hello.StewardAddr
	return nil
}

// joinOverlay runs the bootstrap handshake loop against the
// configured bootstrap list.
func (d *Daemon) joinOverlay() (*transport.HelloInfo, error) {
	return d.joinVia(d.cfg.Bootstrap)
}

// joinVia runs the bootstrap handshake loop: every base address is
// tried in order, and transient failures (peer not up yet, connection
// cut mid-join) back off exponentially with jitter until JoinTimeout.
// A member's rejection naming the steward makes that address the
// preferred target for the next round — but only as an evictable
// hint: if the hinted steward cannot be reached (it died between the
// redirect and our dial, e.g. mid-failover), the hint is dropped and
// the live base members are asked again for a fresh one, instead of
// re-dialing the dead address until the timeout. Incompatibility
// rejections fail immediately.
//
// dlptlint:held mu — rejoinAsMember calls this with the lock held;
// the startup path (startMember) runs before the daemon escapes.
func (d *Daemon) joinVia(base []string) (*transport.HelloInfo, error) {
	payload := transport.EncodeJoin(&transport.JoinRequest{
		Version:   transport.HandshakeVersion,
		Alphabet:  d.alphaDigits,
		Placement: d.placementName,
		Addr:      d.selfAddr,
		Capacity:  d.cfg.Capacity,
	})
	rng := rand.New(rand.NewSource(d.cfg.Seed))
	backoff := 100 * time.Millisecond
	deadline := time.Now().Add(time.Duration(d.cfg.JoinTimeout))
	var hint string // learned steward address; evicted on dial failure
	var lastErr error
	for {
		targets := base
		if hint != "" && !contains(base, hint) {
			targets = append([]string{hint}, base...)
		}
		for _, addr := range targets {
			cctx, cancel := context.WithTimeout(d.ctx, 3*time.Second)
			rtyp, rp, err := d.cluster.ControlRoundTrip(cctx, addr, transport.FrameJoin, payload)
			cancel()
			if err != nil {
				// The pooled connection may hold a dead dial; evict so
				// the retry dials fresh.
				d.cluster.DropEndpointAddr(addr)
				if addr == hint {
					hint = "" // stale redirect: fall back to the members
				}
				lastErr = fmt.Errorf("join %s: %w", addr, err)
				continue
			}
			if rtyp != transport.FrameHello {
				lastErr = fmt.Errorf("join %s: unexpected reply frame %d", addr, rtyp)
				continue
			}
			hello, err := transport.DecodeHello(rp)
			if err != nil {
				lastErr = fmt.Errorf("join %s: %w", addr, err)
				continue
			}
			if hello.Err != "" {
				if strings.HasPrefix(hello.Err, incompatiblePrefix) {
					return nil, fmt.Errorf("daemon: join %s rejected: %s", addr, hello.Err)
				}
				lastErr = fmt.Errorf("join %s: %s", addr, hello.Err)
				if hello.StewardAddr != "" && hello.StewardAddr != addr {
					hint = hello.StewardAddr
				}
				continue
			}
			return hello, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("daemon: bootstrap failed after %v: %w",
				time.Duration(d.cfg.JoinTimeout), lastErr)
		}
		select {
		case <-d.ctx.Done():
			return nil, d.ctx.Err()
		case <-time.After(backoff + time.Duration(rng.Int63n(int64(backoff/2)+1))):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// bumpSeqLocked advances the apply-stream sequence and stamps the
// metrics gauge (dlpt_apply_seq) and the lag clock behind
// dlpt_apply_lag_seconds.
func (d *Daemon) bumpSeqLocked() {
	d.seq++
	d.met.MarkApplied(d.seq)
}

// control dispatches the control-plane frames the transport hands us.
func (d *Daemon) control(typ byte, payload []byte) (byte, []byte) {
	switch typ {
	case transport.FrameJoin:
		return d.handleJoin(payload)
	case transport.FrameLeave:
		return d.handleLeave(payload)
	case transport.FrameApply:
		return d.handleApply(payload)
	case transport.FrameStatus:
		return d.handleStatus()
	case transport.FrameAdmin:
		return d.handleAdmin(payload)
	case transport.FrameElect:
		return d.handleElect(payload)
	case transport.FrameEpochOpen:
		return d.handleEpochOpen(payload)
	case transport.FrameResync:
		return d.handleResync(payload)
	case transport.FrameFetch:
		return d.handleFetch(payload)
	}
	return transport.FrameAck, transport.EncodeAck(fmt.Sprintf("daemon: unknown control frame %d", typ))
}

// handleJoin admits (or rejects) a joining daemon. Members redirect
// to the steward; the steward validates compatibility, runs the
// ordinary membership join with the joiner's advertised address,
// broadcasts the join to the existing members and replies with the
// full mirror state.
func (d *Daemon) handleJoin(payload []byte) (byte, []byte) {
	reject := func(errStr, steward string) (byte, []byte) {
		return transport.FrameHello, transport.EncodeHello(&transport.HelloInfo{
			Version: transport.HandshakeVersion, Err: errStr, StewardAddr: steward,
		})
	}
	jr, err := transport.DecodeJoin(payload)
	if err != nil {
		return reject("daemon: malformed join: "+err.Error(), "")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return reject("daemon: shutting down", "")
	}
	if !d.steward {
		return reject("daemon: not steward", d.stewardAddr)
	}
	if jr.Version != transport.HandshakeVersion {
		return reject(fmt.Sprintf("%shandshake version %d, want %d",
			incompatiblePrefix, jr.Version, transport.HandshakeVersion), "")
	}
	if jr.Alphabet != d.alphaDigits {
		return reject(incompatiblePrefix+"alphabet mismatch", "")
	}
	if jr.Placement != d.placementName {
		return reject(fmt.Sprintf("%splacement %q, want %q",
			incompatiblePrefix, jr.Placement, d.placementName), "")
	}
	if jr.Capacity <= 0 {
		return reject(incompatiblePrefix+"capacity must be positive", "")
	}
	for _, m := range d.members {
		if m.Addr == jr.Addr {
			return reject(incompatiblePrefix+"address already joined: "+jr.Addr, "")
		}
	}
	id, err := d.cluster.JoinRemotePeer(jr.Capacity, jr.Addr)
	if err != nil {
		return reject("daemon: join failed: "+err.Error(), "")
	}
	d.bumpSeqLocked()
	// Broadcast before adding the joiner to the table: the joiner's
	// mirror snapshot below already contains its own join.
	d.broadcastLocked(&transport.ApplyRecord{
		Seq: d.seq, Op: transport.OpJoin, ID: id, Capacity: jr.Capacity, Addr: jr.Addr,
	})
	d.members[id] = transport.Member{ID: id, Addr: jr.Addr, Capacity: jr.Capacity}
	d.syncLinksLocked()
	peers, nodes := d.cluster.PersistStateView()
	d.logf("dlptd steward admitted peer %s at %s (overlay now %d daemons)", id, jr.Addr, len(d.members))
	return transport.FrameHello, transport.EncodeHello(&transport.HelloInfo{
		Version:     transport.HandshakeVersion,
		StewardAddr: d.selfAddr,
		Alphabet:    d.alphaDigits,
		Placement:   d.placementName,
		AssignedID:  id,
		Seq:         d.seq,
		Epoch:       d.epoch,
		Members:     d.memberListLocked(),
		Peers:       peers,
		Nodes:       nodes,
	})
}

// handleLeave runs a member's graceful departure: the peer's nodes
// hand off deterministically in every mirror via the broadcast.
func (d *Daemon) handleLeave(payload []byte) (byte, []byte) {
	notice, err := transport.DecodeLeave(payload)
	if err != nil {
		return transport.FrameAck, transport.EncodeAck("daemon: malformed leave: " + err.Error())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.steward {
		return transport.FrameAck, transport.EncodeAck("daemon: not steward")
	}
	if notice.Epoch < d.epoch {
		return transport.FrameAck, transport.EncodeAck(staleEpochAck(d.epoch, d.stewardAddr))
	}
	m, ok := d.members[notice.ID]
	if !ok {
		return transport.FrameAck, transport.EncodeAck("") // already departed
	}
	if err := d.cluster.RemovePeer(notice.ID); err != nil {
		return transport.FrameAck, transport.EncodeAck("daemon: leave: " + err.Error())
	}
	delete(d.members, notice.ID)
	d.cluster.DropEndpointAddr(m.Addr)
	d.bumpSeqLocked()
	d.broadcastLocked(&transport.ApplyRecord{Seq: d.seq, Op: transport.OpLeave, ID: notice.ID, Addr: m.Addr})
	d.syncLinksLocked()
	d.logf("dlptd steward: peer %s at %s left (overlay now %d daemons)", notice.ID, m.Addr, len(d.members))
	return transport.FrameAck, transport.EncodeAck("")
}

// handleApply processes one mutation record: sequence 0 is a member's
// origination request the steward serializes and broadcasts; a
// positive sequence is the steward's broadcast a member replays iff
// it extends the mirror's sequence exactly.
func (d *Daemon) handleApply(payload []byte) (byte, []byte) {
	ack := func(errStr string) (byte, []byte) {
		return transport.FrameAck, transport.EncodeAck(errStr)
	}
	rec, err := transport.DecodeApply(payload)
	if err != nil {
		return ack("daemon: malformed apply: " + err.Error())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if rec.Seq == 0 {
		// Origination requests carry no stream position, so epoch
		// fencing does not apply: the steward serializes them under its
		// own epoch.
		if !d.steward {
			return ack("daemon: not steward")
		}
		if rec.Op != transport.OpRegister && rec.Op != transport.OpUnregister {
			return ack("daemon: only catalogue mutations originate remotely")
		}
		if err := d.applyLocked(rec); err != nil {
			return ack(err.Error())
		}
		d.bumpSeqLocked()
		rec.Seq = d.seq
		if d.broadcastLocked(rec) {
			// Fenced mid-broadcast: a newer steward exists, so this
			// write was never committed under a live epoch. Refuse it —
			// the originator retries against the new steward, and the
			// rejoin reset discards this mirror's divergence.
			return ack("daemon: deposed during broadcast, retry")
		}
		return ack("")
	}
	if rec.Epoch < d.epoch {
		// Epoch fence: a deposed steward's late broadcast. The refusal
		// names the live epoch and steward so the sender learns its fate.
		return ack(staleEpochAck(d.epoch, d.stewardAddr))
	}
	if d.steward {
		return ack("daemon: steward does not accept sequenced applies")
	}
	if rec.Seq != d.seq+1 {
		return ack(fmt.Sprintf("daemon: sequence gap: got %d, want %d", rec.Seq, d.seq+1))
	}
	if err := d.applyLocked(rec); err != nil {
		// The mirror did not advance: the steward will log the refusal
		// and the probe loop eventually crashes this daemon out rather
		// than let a divergent mirror serve.
		return ack(err.Error())
	}
	if rec.Epoch > d.epoch {
		// Post-election replay reached us before (or instead of) the
		// barrier: adopt the stream's epoch as the new fencing floor.
		d.epoch = rec.Epoch
		d.promised = max(d.promised, rec.Epoch)
		d.met.MarkEpoch(d.epoch)
	}
	d.seq = rec.Seq
	d.met.MarkApplied(d.seq)
	d.appendLogLocked(rec)
	return ack("")
}

// appendLogLocked keeps the bounded contiguous tail of applied
// records ending at d.seq — the replay source for post-election gap
// repair on whichever daemon wins an election.
func (d *Daemon) appendLogLocked(rec *transport.ApplyRecord) {
	d.applyLog = append(d.applyLog, *rec)
	if n := d.cfg.ResyncLogSize; len(d.applyLog) > n {
		d.applyLog = append(d.applyLog[:0:0], d.applyLog[len(d.applyLog)-n:]...)
	}
}

// applyLocked replays one mutation against the local mirror.
func (d *Daemon) applyLocked(rec *transport.ApplyRecord) error {
	switch rec.Op {
	case transport.OpRegister:
		return d.cluster.Register(rec.Key, rec.Value)
	case transport.OpUnregister:
		d.cluster.Unregister(rec.Key, rec.Value)
		return nil
	case transport.OpJoin:
		if err := d.cluster.AddRemotePeerWithID(rec.ID, rec.Capacity, rec.Addr); err != nil {
			return err
		}
		d.members[rec.ID] = transport.Member{ID: rec.ID, Addr: rec.Addr, Capacity: rec.Capacity}
		d.syncLinksLocked()
		return nil
	case transport.OpLeave:
		if err := d.cluster.RemovePeer(rec.ID); err != nil {
			return err
		}
		d.forgetMemberLocked(rec.ID)
		return nil
	case transport.OpCrash:
		if err := d.cluster.FailPeer(rec.ID); err != nil {
			return err
		}
		d.forgetMemberLocked(rec.ID)
		return nil
	case transport.OpRecover:
		_, _, err := d.cluster.Recover()
		return err
	case transport.OpReplicate:
		_, err := d.cluster.ReplicateLocal()
		return err
	}
	return fmt.Errorf("daemon: unknown op %d", rec.Op)
}

// forgetMemberLocked drops a departed/crashed member from the table,
// its pooled connection and the link set.
func (d *Daemon) forgetMemberLocked(id keys.Key) {
	if m, ok := d.members[id]; ok {
		d.cluster.DropEndpointAddr(m.Addr)
		delete(d.members, id)
	}
	d.syncLinksLocked()
}

// broadcastLocked stamps one sequenced record with the current epoch,
// appends it to the apply log and ships it to every other member,
// synchronously and in sorted order — the steward never has two
// records in flight to the same member, so the per-member sequence
// check cannot trip on reordering. A member that fails its broadcast
// is logged and left to the probe loop. The return reports whether a
// member's stale-epoch refusal revealed that this steward was deposed
// (the demotion and rejoin are already underway when it returns true).
func (d *Daemon) broadcastLocked(rec *transport.ApplyRecord) bool {
	rec.Epoch = d.epoch
	d.appendLogLocked(rec)
	payload := transport.EncodeApply(rec)
	ids := make([]keys.Key, 0, len(d.members))
	for id := range d.members {
		if id != d.selfID {
			ids = append(ids, id)
		}
	}
	keys.SortKeys(ids)
	var deposedEpoch uint64
	var deposedSteward string
	for _, id := range ids {
		m := d.members[id]
		ctx, cancel := context.WithTimeout(d.ctx, 5*time.Second)
		rtyp, rp, err := d.cluster.ControlRoundTrip(ctx, m.Addr, transport.FrameApply, payload)
		cancel()
		if err != nil {
			d.logf("dlptd: apply seq %d to %s (%s) failed: %v", rec.Seq, id, m.Addr, err)
			continue
		}
		if rtyp == transport.FrameAck {
			if es, derr := transport.DecodeAck(rp); derr == nil && es != "" {
				if e, saddr, ok := parseStaleEpoch(es); ok && e > d.epoch {
					deposedEpoch, deposedSteward = e, saddr
					d.logf("dlptd: apply seq %d fenced by %s: %s", rec.Seq, id, es)
					continue
				}
				d.logf("dlptd: apply seq %d refused by %s: %s", rec.Seq, id, es)
			}
		}
	}
	if deposedEpoch > d.epoch {
		d.deposeLocked(deposedEpoch, deposedSteward)
		return true
	}
	return false
}

// probe is the link-maintenance health check: one STATUS round-trip
// on the pooled connection. A failure evicts the pooled connection,
// so the next probe — and the next relay — dials fresh: the probe
// loop is the re-dial loop. The reply's epoch is inspected: a steward
// that paused through an election learns from any probed peer that a
// higher epoch exists and that it was deposed.
func (d *Daemon) probe(ctx context.Context, addr string) error {
	rtyp, rp, err := d.cluster.ControlRoundTrip(ctx, addr, transport.FrameStatus, nil)
	if err != nil {
		d.cluster.DropEndpointAddr(addr)
		return err
	}
	if rtyp != transport.FrameStatusResp {
		return fmt.Errorf("daemon: probe reply frame %d", rtyp)
	}
	var st Status
	if err := json.Unmarshal(rp, &st); err == nil {
		d.noteEpoch(st.Epoch, st.StewardAddr)
	}
	return nil
}

// noteEpoch reacts to an epoch observed on a probed peer: a higher
// one demotes a deposed steward (triggering its rejoin) or advances a
// lagging member's fencing floor.
func (d *Daemon) noteEpoch(epoch uint64, stewardAddr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || epoch <= d.epoch {
		return
	}
	if d.steward {
		d.deposeLocked(epoch, stewardAddr)
		return
	}
	d.epoch = epoch
	d.promised = max(d.promised, epoch)
	if stewardAddr != "" && stewardAddr != d.selfAddr {
		d.stewardAddr = stewardAddr
	}
	d.met.MarkEpoch(d.epoch)
}

// onLinkDown reacts to a link crossing the miss threshold. The
// steward declares the member crashed, recovers the lost subtree from
// the ring-successor replicas, and broadcasts both steps so every
// mirror converges. A member marks the address suspected and — when
// the loss is the steward itself and this member is the election
// candidate — starts an election.
func (d *Daemon) onLinkDown(addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.suspected[addr] = true
	if !d.steward {
		d.logf("dlptd: link to %s lost", addr)
		d.maybeElectLocked()
		return
	}
	var id keys.Key
	found := false
	for mid, m := range d.members {
		if m.Addr == addr {
			id, found = mid, true
			break
		}
	}
	if !found {
		return
	}
	d.crashPeerLocked(id, addr)
}

// crashPeerLocked serializes one member's crash under the current
// epoch: fail the peer, broadcast the crash, recover the lost nodes
// from ring-successor replicas, broadcast the recovery. Steward only;
// callers hold d.mu.
func (d *Daemon) crashPeerLocked(id keys.Key, addr string) {
	d.logf("dlptd steward: peer %s at %s declared crashed", id, addr)
	if err := d.cluster.FailPeer(id); err != nil {
		d.logf("dlptd steward: crash %s: %v", id, err)
		return
	}
	delete(d.members, id)
	d.cluster.DropEndpointAddr(addr)
	d.bumpSeqLocked()
	d.broadcastLocked(&transport.ApplyRecord{Seq: d.seq, Op: transport.OpCrash, ID: id, Addr: addr})
	restored, lost, err := d.cluster.Recover()
	if err != nil {
		d.logf("dlptd steward: recover after %s: %v", id, err)
	} else {
		d.logf("dlptd steward: recovered %d nodes (%d lost) after %s", restored, len(lost), id)
	}
	d.bumpSeqLocked()
	d.broadcastLocked(&transport.ApplyRecord{Seq: d.seq, Op: transport.OpRecover})
	d.syncLinksLocked()
}

// onLinkUp clears the suspicion on a recovered link. A crashed member
// was already removed from the overlay; a restarted daemon at the
// same address re-joins through the handshake, so no other state
// transition happens here.
func (d *Daemon) onLinkUp(addr string) {
	d.mu.Lock()
	delete(d.suspected, addr)
	d.mu.Unlock()
	d.logf("dlptd: link to %s recovered", addr)
}

// syncLinksLocked points the maintainer at every other member's
// address (for a member this covers the steward and its ring
// neighbors) and prunes suspicions of addresses no longer linked.
func (d *Daemon) syncLinksLocked() {
	if d.maint == nil {
		return
	}
	addrs := make([]string, 0, len(d.members))
	live := make(map[string]bool, len(d.members))
	for id, m := range d.members {
		if id != d.selfID {
			addrs = append(addrs, m.Addr)
			live[m.Addr] = true
		}
	}
	for a := range d.suspected {
		if !live[a] {
			delete(d.suspected, a)
		}
	}
	d.maint.SetLinks(addrs)
}

// memberListLocked flattens the member table, sorted by ring id.
func (d *Daemon) memberListLocked() []transport.Member {
	out := make([]transport.Member, 0, len(d.members))
	for _, m := range d.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ReplicateNow runs one replication tick immediately (the body of
// the steward's periodic loop): every mirror snapshots its tree
// nodes to ring successors — and the steward fsyncs a durable
// snapshot — in the same sequence slot. Steward only.
func (d *Daemon) ReplicateNow() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	if !d.steward {
		return fmt.Errorf("daemon: only the steward replicates")
	}
	if _, err := d.cluster.ReplicateLocal(); err != nil {
		return err
	}
	d.bumpSeqLocked()
	d.broadcastLocked(&transport.ApplyRecord{Seq: d.seq, Op: transport.OpReplicate})
	return nil
}

// replicateLoop is the periodic replication tick. It runs on every
// daemon and no-ops per tick unless this daemon currently holds
// stewardship — so an elected member starts replicating and a deposed
// steward stops, with no loop lifecycle churn across failovers.
func (d *Daemon) replicateLoop() {
	defer d.wg.Done()
	t := time.NewTicker(time.Duration(d.cfg.ReplicateEvery))
	defer t.Stop()
	for {
		select {
		case <-d.ctx.Done():
			return
		case <-t.C:
			if !d.IsSteward() {
				continue
			}
			if err := d.ReplicateNow(); err != nil {
				d.logf("dlptd steward: replicate: %v", err)
			}
		}
	}
}

// Close shuts the daemon down. A member leaves gracefully first (the
// steward hands its nodes off and broadcasts the departure), then the
// cluster, maintenance loop and store stop. Idempotent.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	steward := d.steward
	stewardAddr := d.stewardAddr
	selfID, selfAddr := d.selfID, d.selfAddr
	epoch := d.epoch
	d.mu.Unlock()
	if !steward {
		payload := transport.EncodeLeave(&transport.LeaveNotice{ID: selfID, Addr: selfAddr, Epoch: epoch})
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		rtyp, rp, err := d.cluster.ControlRoundTrip(ctx, stewardAddr, transport.FrameLeave, payload)
		cancel()
		if err != nil {
			d.logf("dlptd: graceful leave failed: %v", err)
		} else if rtyp == transport.FrameAck {
			if es, derr := transport.DecodeAck(rp); derr == nil && es != "" {
				d.logf("dlptd: leave refused: %s", es)
			}
		}
	}
	d.cancel()
	if d.metricsSrv != nil {
		d.metricsSrv.Close()
	}
	d.cluster.Stop()
	if d.store != nil {
		d.store.Close()
	}
	d.wg.Wait()
	return nil
}

// Cluster exposes the daemon's transport cluster (tests and tooling).
func (d *Daemon) Cluster() *transport.Cluster { return d.cluster }

// Addr returns the daemon's advertised listener address.
func (d *Daemon) Addr() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.selfAddr
}

// SelfID returns the daemon's assigned ring id.
func (d *Daemon) SelfID() keys.Key {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.selfID
}

// IsSteward reports whether this daemon serializes the overlay's
// mutations.
func (d *Daemon) IsSteward() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.steward
}

// MemberCount returns the number of daemons currently in the member
// table (including this one).
func (d *Daemon) MemberCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.members)
}

// Seq returns the last applied mutation sequence number.
func (d *Daemon) Seq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// Epoch returns the steward generation this daemon honors.
func (d *Daemon) Epoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

// Status captures the daemon's externally visible state (the
// handleStatus reply and the local view share this path).
func (d *Daemon) Status() *Status {
	d.mu.Lock()
	role := "member"
	if d.steward {
		role = "steward"
	}
	st := &Status{
		Role:        role,
		ID:          string(d.selfID),
		Addr:        d.selfAddr,
		StewardAddr: d.stewardAddr,
		Epoch:       d.epoch,
		Seq:         d.seq,
	}
	for _, m := range d.memberListLocked() {
		st.Members = append(st.Members, MemberInfo{ID: string(m.ID), Addr: m.Addr, Capacity: m.Capacity})
	}
	d.mu.Unlock()
	st.Peers = d.cluster.NumPeers()
	st.Nodes = d.cluster.NumNodes()
	if d.maint != nil {
		st.Links = d.maint.Snapshot()
	}
	return st
}

func (d *Daemon) handleStatus() (byte, []byte) {
	b, err := json.Marshal(d.Status())
	if err != nil {
		return transport.FrameAck, transport.EncodeAck("daemon: status: " + err.Error())
	}
	return transport.FrameStatusResp, b
}

func (d *Daemon) handleAdmin(payload []byte) (byte, []byte) {
	var req AdminRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		b, _ := json.Marshal(&AdminResponse{Err: "daemon: malformed admin request: " + err.Error()})
		return transport.FrameAdminResp, b
	}
	resp := d.admin(&req)
	b, err := json.Marshal(resp)
	if err != nil {
		b, _ = json.Marshal(&AdminResponse{Err: "daemon: admin: " + err.Error()})
	}
	return transport.FrameAdminResp, b
}

// admin executes one admin operation against the overlay. Catalogue
// mutations route through the serialized apply stream; reads run
// directly on the local mirror (discoveries and streamed queries
// still hop to the owning daemons over the wire).
func (d *Daemon) admin(req *AdminRequest) *AdminResponse {
	resp := &AdminResponse{}
	ctx, cancel := context.WithTimeout(d.ctx, 30*time.Second)
	defer cancel()
	switch req.Op {
	case "register":
		if err := d.mutate(transport.OpRegister, req.Key, req.Value); err != nil {
			resp.Err = err.Error()
		}
	case "unregister":
		if err := d.mutate(transport.OpUnregister, req.Key, req.Value); err != nil {
			resp.Err = err.Error()
		}
	case "discover":
		res, err := d.cluster.DiscoverContext(ctx, keys.Key(req.Key))
		if err != nil {
			resp.Err = err.Error()
			break
		}
		resp.Found = res.Found
		resp.Values = res.Values
		resp.Logical = res.LogicalHops
		resp.Physical = res.PhysicalHops
		resp.Dropped = res.Dropped
	case "complete", "range":
		spec := core.QuerySpec{Limit: req.Limit}
		if req.Op == "range" {
			spec.Range = true
			spec.Lo, spec.Hi = keys.Key(req.Lo), keys.Key(req.Hi)
		} else {
			spec.Prefix = keys.Key(req.Prefix)
		}
		s, err := d.cluster.StreamQuery(ctx, spec)
		if err != nil {
			resp.Err = err.Error()
			break
		}
		for k, ok := s.Next(); ok; k, ok = s.Next() {
			resp.Keys = append(resp.Keys, string(k))
		}
		if err := s.Err(); err != nil {
			resp.Err = err.Error()
		}
		st := s.Stats()
		resp.Logical = st.LogicalHops
		resp.Physical = st.PhysicalHops
		resp.Visited = st.NodesVisited
		s.Close()
	case "validate":
		if err := d.cluster.Validate(); err != nil {
			resp.Err = err.Error()
		}
	case "obs":
		// The same counters the /metrics endpoint exports, over the
		// admin wire path (dlptd status -obs) — no HTTP listener needed.
		resp.Obs = d.obsReg.Snapshot()
	default:
		resp.Err = fmt.Sprintf("daemon: unknown admin op %q", req.Op)
	}
	return resp
}

// ErrNoSteward is reported (wrapped) when a member exhausts its
// ForwardRetry budget without reaching a live steward — i.e. the
// failover window outlasted the retry budget.
var ErrNoSteward = errors.New("daemon: no steward reachable")

// mutate routes one catalogue mutation through the serialized stream:
// the steward applies and broadcasts directly; a member forwards an
// origination request to the steward — without holding the daemon
// lock, because the steward's broadcast comes back through this
// member's own apply handler before the forward is acknowledged.
//
// Forwarding retries with jittered exponential backoff across the
// ForwardRetry budget: a failover window looks like a dead dial, a
// "not steward" refusal from a redirect target, or a stale-epoch
// fence, and all of those heal once the election settles. The steward
// address is re-read (and updated from fence hints) each attempt, and
// a member elected mid-retry applies locally. Semantic refusals — the
// mutation itself is invalid — fail immediately.
func (d *Daemon) mutate(op byte, key, value string) error {
	bo := peering.NewBackoff(100*time.Millisecond, 2*time.Second, 0.2, d.cfg.Seed+0x5eed)
	deadline := time.Now().Add(time.Duration(d.cfg.ForwardRetry))
	var lastErr error
	for {
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			return errors.New("daemon: shutting down")
		}
		if d.steward {
			rec := &transport.ApplyRecord{Op: op, Key: keys.Key(key), Value: value}
			if err := d.applyLocked(rec); err != nil {
				d.mu.Unlock()
				return err
			}
			d.bumpSeqLocked()
			rec.Seq = d.seq
			deposed := d.broadcastLocked(rec)
			d.mu.Unlock()
			if !deposed {
				return nil
			}
			// Fenced mid-broadcast: the write never committed under a
			// live epoch (the rejoin reset discards the local apply).
			// Fall through to the retry loop — the next attempt forwards
			// to the steward that fenced us.
			lastErr = errors.New("daemon: deposed during broadcast")
		} else {
			stewardAddr := d.stewardAddr
			d.mu.Unlock()
			lastErr = d.forwardOnce(stewardAddr, op, key, value)
			if lastErr == nil {
				return nil
			}
			retry, hintEpoch, hintAddr := retryableForwardErr(lastErr)
			if !retry {
				return lastErr
			}
			if hintAddr != "" {
				d.noteEpoch(hintEpoch, hintAddr)
			}
			d.cluster.DropEndpointAddr(stewardAddr)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w after %v: %v", ErrNoSteward, time.Duration(d.cfg.ForwardRetry), lastErr)
		}
		select {
		case <-d.ctx.Done():
			return d.ctx.Err()
		case <-time.After(bo.Next()):
		}
	}
}

// forwardOnce sends one origination APPLY to the presumed steward.
func (d *Daemon) forwardOnce(stewardAddr string, op byte, key, value string) error {
	payload := transport.EncodeApply(&transport.ApplyRecord{Op: op, Key: keys.Key(key), Value: value})
	ctx, cancel := context.WithTimeout(d.ctx, 5*time.Second)
	defer cancel()
	rtyp, rp, err := d.cluster.ControlRoundTrip(ctx, stewardAddr, transport.FrameApply, payload)
	if err != nil {
		return fmt.Errorf("daemon: forward to steward: %w", err)
	}
	if rtyp != transport.FrameAck {
		return fmt.Errorf("daemon: forward reply frame %d", rtyp)
	}
	es, err := transport.DecodeAck(rp)
	if err != nil {
		return err
	}
	if es != "" {
		return fmt.Errorf("%s", es)
	}
	return nil
}

// retryableForwardErr classifies a forwarding failure: transport
// errors and steward-churn refusals heal after the failover settles,
// so the origination loop keeps retrying them; anything else is a
// semantic refusal surfaced immediately. A stale-epoch fence also
// yields the refuser's (epoch, steward address) hint.
func retryableForwardErr(err error) (retry bool, hintEpoch uint64, hintAddr string) {
	msg := err.Error()
	if e, saddr, ok := parseStaleEpoch(msg); ok {
		return true, e, saddr
	}
	switch {
	case strings.Contains(msg, "forward to steward"), // transport failure
		strings.Contains(msg, "daemon: not steward"),
		strings.Contains(msg, "deposed during broadcast"),
		strings.Contains(msg, "daemon: shutting down"):
		return true, 0, ""
	}
	return false, 0, ""
}
