// The admin wire contract: STATUS and ADMIN frames carry JSON both
// ways, so `dlptd status`/`dlptd op` and the smoke tests can drive a
// running daemon with one raw TCP round-trip and no cluster of their
// own.

package daemon

import (
	"context"
	"encoding/json"
	"fmt"

	"dlpt/internal/obs"
	"dlpt/internal/peering"
	"dlpt/internal/transport"
)

// Status is a daemon's externally visible state.
type Status struct {
	Role        string               `json:"role"`
	ID          string               `json:"id"`
	Addr        string               `json:"addr"`
	StewardAddr string               `json:"steward_addr"`
	Epoch       uint64               `json:"epoch"`
	Seq         uint64               `json:"seq"`
	Members     []MemberInfo         `json:"members,omitempty"`
	Peers       int                  `json:"peers"`
	Nodes       int                  `json:"nodes"`
	Links       []peering.LinkStatus `json:"links,omitempty"`
}

// MemberInfo is one row of the member table.
type MemberInfo struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"`
	Capacity int    `json:"capacity"`
}

// AdminRequest is one admin operation: register, unregister,
// discover, complete, range, validate or obs (a snapshot of the
// daemon's metric series, the same counters /metrics exports).
type AdminRequest struct {
	Op     string `json:"op"`
	Key    string `json:"key,omitempty"`
	Value  string `json:"value,omitempty"`
	Prefix string `json:"prefix,omitempty"`
	Lo     string `json:"lo,omitempty"`
	Hi     string `json:"hi,omitempty"`
	Limit  int    `json:"limit,omitempty"`
}

// AdminResponse carries an admin operation's outcome; Err is the
// in-band failure.
type AdminResponse struct {
	Err      string   `json:"err,omitempty"`
	Found    bool     `json:"found,omitempty"`
	Values   []string `json:"values,omitempty"`
	Keys     []string `json:"keys,omitempty"`
	Logical  int      `json:"logical_hops"`
	Physical int      `json:"physical_hops"`
	Visited  int      `json:"nodes_visited"`
	Dropped  bool     `json:"dropped,omitempty"`
	// Obs is the metric snapshot answered to the "obs" op, keyed
	// `name{labels}` exactly as the Prometheus exposition names series.
	Obs obs.Snapshot `json:"obs,omitempty"`
}

// GetStatus queries a running daemon's status over one raw TCP
// round-trip.
func GetStatus(ctx context.Context, addr string) (*Status, error) {
	rtyp, p, err := transport.RawCall(ctx, addr, transport.FrameStatus, nil)
	if err != nil {
		return nil, err
	}
	if rtyp != transport.FrameStatusResp {
		return nil, replyError(rtyp, p)
	}
	var st Status
	if err := json.Unmarshal(p, &st); err != nil {
		return nil, fmt.Errorf("daemon: status reply: %w", err)
	}
	return &st, nil
}

// Admin executes one admin operation on a running daemon over one raw
// TCP round-trip. A non-empty AdminResponse.Err is returned as the
// error.
func Admin(ctx context.Context, addr string, req *AdminRequest) (*AdminResponse, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	rtyp, p, err := transport.RawCall(ctx, addr, transport.FrameAdmin, b)
	if err != nil {
		return nil, err
	}
	if rtyp != transport.FrameAdminResp {
		return nil, replyError(rtyp, p)
	}
	var resp AdminResponse
	if err := json.Unmarshal(p, &resp); err != nil {
		return nil, fmt.Errorf("daemon: admin reply: %w", err)
	}
	if resp.Err != "" {
		return &resp, fmt.Errorf("%s", resp.Err)
	}
	return &resp, nil
}

// replyError surfaces the in-band error of an unexpected reply frame
// (typically a bare ack explaining the refusal).
func replyError(rtyp byte, p []byte) error {
	if rtyp == transport.FrameAck {
		if es, err := transport.DecodeAck(p); err == nil && es != "" {
			return fmt.Errorf("%s", es)
		}
	}
	return fmt.Errorf("daemon: unexpected reply frame %d", rtyp)
}
