package daemon

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dlpt/internal/keys"
	"dlpt/internal/transport"
)

// Duration is a time.Duration that unmarshals from JSON either as a
// Go duration string ("2s", "150ms") or as integer nanoseconds.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch t := v.(type) {
	case float64:
		*d = Duration(time.Duration(t))
		return nil
	case string:
		dur, err := time.ParseDuration(t)
		if err != nil {
			return fmt.Errorf("daemon: bad duration %q: %w", t, err)
		}
		*d = Duration(dur)
		return nil
	default:
		return fmt.Errorf("daemon: duration must be a string or integer, got %T", v)
	}
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Config describes one dlptd process. The Bootstrap list decides the
// role: empty means this daemon seeds a fresh overlay and acts as its
// steward (the process that serializes every overlay mutation);
// non-empty means it joins an existing overlay through one of the
// listed addresses.
type Config struct {
	// Listen is the bind address of the daemon's peer listener:
	// "host:port", "host" (ephemeral port) or empty (loopback
	// ephemeral).
	Listen string `json:"listen"`
	// Advertise overrides the host other daemons dial, for listeners
	// bound to an unspecified address (0.0.0.0).
	Advertise string `json:"advertise,omitempty"`
	// Bootstrap lists peer daemons to join through, tried in order
	// with backoff. Empty makes this daemon the overlay's steward.
	Bootstrap []string `json:"bootstrap,omitempty"`
	// DataDir enables durable persistence. Only the steward uses it:
	// on restart the catalogue is reloaded and re-registered into a
	// fresh overlay (members always rejoin through Bootstrap and
	// receive their state from the steward's handshake).
	DataDir string `json:"data_dir,omitempty"`
	// Capacity is this daemon's peer capacity (default 64).
	Capacity int `json:"capacity,omitempty"`
	// Alphabet names the overlay key alphabet: "binary",
	// "lower_alnum", "printable_ascii" (the default), or a literal
	// digit string. All daemons of one overlay must agree; the join
	// handshake enforces it.
	Alphabet string `json:"alphabet,omitempty"`
	// Placement names the join-placement policy (internal/lb); empty
	// draws uniformly random ring ids. Must match across the overlay.
	Placement string `json:"placement,omitempty"`
	// Seed fixes the daemon's rng stream (0 seeds from the clock).
	Seed int64 `json:"seed,omitempty"`
	// ReplicateEvery is the steward's replication tick period
	// (default 10s). Each tick snapshots every tree node to its ring
	// successor on every mirror and, with DataDir set, fsyncs a
	// durable snapshot.
	ReplicateEvery Duration `json:"replicate_every,omitempty"`
	// ProbeEvery is the link-maintenance probe interval (default 1s).
	ProbeEvery Duration `json:"probe_every,omitempty"`
	// MissThreshold is how many consecutive failed probes declare a
	// peer daemon crashed (default 3).
	MissThreshold int `json:"miss_threshold,omitempty"`
	// JoinTimeout bounds the bootstrap retry loop (default 30s).
	JoinTimeout Duration `json:"join_timeout,omitempty"`
	// ElectionTimeout bounds one election vote round-trip and paces
	// the candidate's retry loop after a failed round (default 1s).
	ElectionTimeout Duration `json:"election_timeout,omitempty"`
	// ForwardRetry is the total budget a member spends retrying a
	// catalogue origination against a lost or changing steward —
	// covering a failover window — before reporting ErrNoSteward
	// (default 10s).
	ForwardRetry Duration `json:"forward_retry,omitempty"`
	// ResyncLogSize bounds the in-memory tail of applied records every
	// daemon keeps for post-election gap replay; members further
	// behind the new steward re-bootstrap with a full snapshot
	// (default 512).
	ResyncLogSize int `json:"resync_log_size,omitempty"`
	// MetricsAddr, when non-empty, opens an HTTP listener at this
	// address serving /metrics (Prometheus text format) and
	// /debug/trace (recent per-hop span trees as JSON). Empty disables
	// the listener; the daemon still aggregates metrics internally and
	// serves them over the ADMIN wire path (`dlptd status -obs`).
	MetricsAddr string `json:"metrics_addr,omitempty"`
	// Faults, when non-nil, injects deterministic transport faults
	// (drops, delays, duplicates, partitions) into this daemon's
	// outbound frame path. Test-only; never read from config files.
	Faults *transport.Faults `json:"-"`
}

// LoadConfig reads a JSON config file.
func LoadConfig(path string) (*Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(b, &cfg); err != nil {
		return nil, fmt.Errorf("daemon: parse %s: %w", path, err)
	}
	return &cfg, nil
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 64
	}
	if c.ReplicateEvery <= 0 {
		c.ReplicateEvery = Duration(10 * time.Second)
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = Duration(time.Second)
	}
	if c.MissThreshold <= 0 {
		c.MissThreshold = 3
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = Duration(30 * time.Second)
	}
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = Duration(time.Second)
	}
	if c.ForwardRetry <= 0 {
		c.ForwardRetry = Duration(10 * time.Second)
	}
	if c.ResyncLogSize <= 0 {
		c.ResyncLogSize = 512
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	return c
}

// alphabetFor resolves the configured alphabet name (or literal digit
// string) to an alphabet.
func alphabetFor(name string) (*keys.Alphabet, error) {
	switch name {
	case "", "printable_ascii":
		return keys.PrintableASCII, nil
	case "binary":
		return keys.Binary, nil
	case "lower_alnum":
		return keys.LowerAlnum, nil
	default:
		return keys.NewAlphabet(name)
	}
}
