// Package pht implements the Prefix Hash Tree of Ramabhadran,
// Ratnasamy, Hellerstein and Shenker (PODC 2004): a binary trie built
// over a DHT, the closest related work the paper compares against in
// Table 2. Each trie vertex lives in the DHT under the hash of its
// bit-prefix label; leaves hold up to B keys and split on overflow.
//
// A PHT lookup costs one DHT get per descended prefix (linear
// descent, O(D log P) total routing hops) or O(log D) gets with
// binary search on the prefix length — both are implemented and
// measured by the Table 2 experiment.
package pht

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"dlpt/internal/dht"
	"dlpt/internal/keys"
)

// Counters tracks PHT traffic in DHT operations and underlying
// routing hops.
type Counters struct {
	DHTGets     int
	DHTPuts     int
	RoutingHops int
}

// PHT is a prefix hash tree client bound to a DHT ring.
type PHT struct {
	Counters Counters

	ring *dht.Ring
	d    int // key bit length D
	b    int // leaf bucket capacity B
	rng  *rand.Rand
}

// vertex is the DHT-stored record of one trie node.
type vertex struct {
	Leaf bool     `json:"leaf"`
	Keys []string `json:"keys,omitempty"`
}

// New creates a PHT over the given ring with key bit-length d and
// leaf capacity b, initializing the root leaf.
func New(ring *dht.Ring, d, b int, rng *rand.Rand) (*PHT, error) {
	if d < 1 || b < 1 {
		return nil, fmt.Errorf("pht: bad parameters d=%d b=%d", d, b)
	}
	p := &PHT{ring: ring, d: d, b: b, rng: rng}
	if err := p.putVertex("", vertex{Leaf: true}); err != nil {
		return nil, err
	}
	return p, nil
}

// D returns the key bit length.
func (p *PHT) D() int { return p.d }

// B returns the leaf capacity.
func (p *PHT) B() int { return p.b }

func label(prefix string) string { return "pht:" + prefix }

func (p *PHT) getVertex(prefix string) (vertex, bool, error) {
	raw, hops, ok, err := p.ring.Get(label(prefix), p.rng)
	p.Counters.DHTGets++
	p.Counters.RoutingHops += hops
	if err != nil || !ok {
		return vertex{}, false, err
	}
	var v vertex
	if err := json.Unmarshal([]byte(raw), &v); err != nil {
		return vertex{}, false, fmt.Errorf("pht: corrupt vertex %q: %w", prefix, err)
	}
	return v, true, nil
}

func (p *PHT) putVertex(prefix string, v vertex) error {
	sort.Strings(v.Keys)
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	hops, err := p.ring.Put(label(prefix), string(raw), p.rng)
	p.Counters.DHTPuts++
	p.Counters.RoutingHops += hops
	return err
}

func (p *PHT) deleteVertex(prefix string) error {
	hops, err := p.ring.Delete(label(prefix), p.rng)
	p.Counters.DHTPuts++
	p.Counters.RoutingHops += hops
	return err
}

// findLeafLinear walks prefixes of increasing length until the leaf
// owning bits is found (the PHT linear descent).
func (p *PHT) findLeafLinear(bits string) (string, vertex, error) {
	for l := 0; l <= p.d; l++ {
		prefix := bits[:l]
		v, ok, err := p.getVertex(prefix)
		if err != nil {
			return "", vertex{}, err
		}
		if !ok {
			return "", vertex{}, fmt.Errorf("pht: missing vertex %q", prefix)
		}
		if v.Leaf {
			return prefix, v, nil
		}
	}
	return "", vertex{}, fmt.Errorf("pht: descended past depth %d", p.d)
}

// findLeafBinary locates the owning leaf with binary search on the
// prefix length: a present leaf ends the search, a present internal
// vertex moves the window deeper, a missing vertex moves it shallower.
func (p *PHT) findLeafBinary(bits string) (string, vertex, error) {
	lo, hi := 0, p.d
	for lo <= hi {
		mid := (lo + hi) / 2
		v, ok, err := p.getVertex(bits[:mid])
		if err != nil {
			return "", vertex{}, err
		}
		switch {
		case ok && v.Leaf:
			return bits[:mid], v, nil
		case ok: // internal: leaf is deeper
			lo = mid + 1
		default: // no vertex: leaf is shallower
			hi = mid - 1
		}
	}
	return "", vertex{}, fmt.Errorf("pht: binary search failed for %q", bits)
}

// Insert adds key to the structure, splitting overflowing leaves.
func (p *PHT) Insert(key keys.Key) error {
	bits := keys.Bits(key, p.d)
	prefix, v, err := p.findLeafLinear(bits)
	if err != nil {
		return err
	}
	for _, k := range v.Keys {
		if k == string(key) {
			return nil // already present
		}
	}
	v.Keys = append(v.Keys, string(key))
	if len(v.Keys) <= p.b || len(prefix) == p.d {
		// Fits (or the leaf is at maximum depth and may overflow:
		// keys indistinguishable within D bits cannot be split).
		return p.putVertex(prefix, v)
	}
	return p.split(prefix, v)
}

// split turns an overflowing leaf into an internal vertex with two
// leaf children, recursing while a child still overflows.
func (p *PHT) split(prefix string, v vertex) error {
	var zero, one vertex
	zero.Leaf, one.Leaf = true, true
	for _, k := range v.Keys {
		kb := keys.Bits(keys.Key(k), p.d)
		if kb[len(prefix)] == '0' {
			zero.Keys = append(zero.Keys, k)
		} else {
			one.Keys = append(one.Keys, k)
		}
	}
	if err := p.putVertex(prefix, vertex{Leaf: false}); err != nil {
		return err
	}
	children := []struct {
		suffix string
		child  vertex
	}{{"0", zero}, {"1", one}}
	for _, c := range children {
		suffix, child := c.suffix, c.child
		cp := prefix + suffix
		if len(child.Keys) > p.b && len(cp) < p.d {
			if err := p.split(cp, child); err != nil {
				return err
			}
			continue
		}
		if err := p.putVertex(cp, child); err != nil {
			return err
		}
	}
	return nil
}

// Lookup reports whether key is present, using linear descent.
func (p *PHT) Lookup(key keys.Key) (bool, error) {
	bits := keys.Bits(key, p.d)
	_, v, err := p.findLeafLinear(bits)
	if err != nil {
		return false, err
	}
	for _, k := range v.Keys {
		if k == string(key) {
			return true, nil
		}
	}
	return false, nil
}

// LookupBinary is Lookup via binary search on the prefix length.
func (p *PHT) LookupBinary(key keys.Key) (bool, error) {
	bits := keys.Bits(key, p.d)
	_, v, err := p.findLeafBinary(bits)
	if err != nil {
		return false, err
	}
	for _, k := range v.Keys {
		if k == string(key) {
			return true, nil
		}
	}
	return false, nil
}

// Delete removes key, merging a pair of leaf siblings back into their
// parent when their united content fits a bucket.
func (p *PHT) Delete(key keys.Key) (bool, error) {
	bits := keys.Bits(key, p.d)
	prefix, v, err := p.findLeafLinear(bits)
	if err != nil {
		return false, err
	}
	found := false
	out := v.Keys[:0]
	for _, k := range v.Keys {
		if k == string(key) {
			found = true
			continue
		}
		out = append(out, k)
	}
	if !found {
		return false, nil
	}
	v.Keys = out
	if err := p.putVertex(prefix, v); err != nil {
		return false, err
	}
	return true, p.maybeMerge(prefix)
}

// maybeMerge collapses leaf siblings into their parent while the
// union fits in one bucket.
func (p *PHT) maybeMerge(prefix string) error {
	for len(prefix) > 0 {
		parent := prefix[:len(prefix)-1]
		sibSuffix := "1"
		if prefix[len(prefix)-1] == '1' {
			sibSuffix = "0"
		}
		self, okSelf, err := p.getVertex(prefix)
		if err != nil || !okSelf || !self.Leaf {
			return err
		}
		sib, okSib, err := p.getVertex(parent + sibSuffix)
		if err != nil || !okSib || !sib.Leaf {
			return err
		}
		if len(self.Keys)+len(sib.Keys) > p.b {
			return nil
		}
		merged := vertex{Leaf: true, Keys: append(append([]string{}, self.Keys...), sib.Keys...)}
		if err := p.putVertex(parent, merged); err != nil {
			return err
		}
		if err := p.deleteVertex(prefix); err != nil {
			return err
		}
		if err := p.deleteVertex(parent + sibSuffix); err != nil {
			return err
		}
		prefix = parent
	}
	return nil
}

// Range returns the present keys whose bit encodings fall within
// [lo, hi] in encoded order, traversing only the intersecting
// subtrees. limit <= 0 means unlimited.
func (p *PHT) Range(lo, hi keys.Key, limit int) ([]keys.Key, error) {
	loBits, hiBits := keys.Bits(lo, p.d), keys.Bits(hi, p.d)
	if hiBits < loBits {
		return nil, nil
	}
	var out []keys.Key
	var walk func(prefix string) (bool, error)
	walk = func(prefix string) (bool, error) {
		// Prune subtrees outside [loBits, hiBits]: the subtree at
		// prefix covers bit strings in [prefix0..0, prefix1..1].
		minB := prefix + strings.Repeat("0", p.d-len(prefix))
		maxB := prefix + strings.Repeat("1", p.d-len(prefix))
		if maxB < loBits || minB > hiBits {
			return true, nil
		}
		v, ok, err := p.getVertex(prefix)
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
		if v.Leaf {
			for _, k := range v.Keys {
				kb := keys.Bits(keys.Key(k), p.d)
				if loBits <= kb && kb <= hiBits {
					out = append(out, keys.Key(k))
					if limit > 0 && len(out) >= limit {
						return false, nil
					}
				}
			}
			return true, nil
		}
		for _, suffix := range []string{"0", "1"} {
			cont, err := walk(prefix + suffix)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	if _, err := walk(""); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		return keys.Bits(out[i], p.d) < keys.Bits(out[j], p.d)
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// Validate checks trie structural invariants by walking from the
// root: internal vertices have both children present, leaves respect
// the capacity (except at maximum depth), and every stored key's bit
// encoding extends its leaf prefix.
func (p *PHT) Validate() error {
	var walk func(prefix string) error
	walk = func(prefix string) error {
		v, ok, err := p.getVertex(prefix)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("pht: missing vertex %q", prefix)
		}
		if v.Leaf {
			if len(v.Keys) > p.b && len(prefix) < p.d {
				return fmt.Errorf("pht: leaf %q overflows: %d > %d", prefix, len(v.Keys), p.b)
			}
			for _, k := range v.Keys {
				if !strings.HasPrefix(keys.Bits(keys.Key(k), p.d), prefix) {
					return fmt.Errorf("pht: key %q misfiled under %q", k, prefix)
				}
			}
			return nil
		}
		if len(v.Keys) != 0 {
			return fmt.Errorf("pht: internal vertex %q holds keys", prefix)
		}
		if len(prefix) >= p.d {
			return fmt.Errorf("pht: internal vertex at max depth %q", prefix)
		}
		if err := walk(prefix + "0"); err != nil {
			return err
		}
		return walk(prefix + "1")
	}
	return walk("")
}

// Keys returns every stored key in encoded order (full traversal).
func (p *PHT) Keys() ([]keys.Key, error) {
	maxKey := keys.Key(strings.Repeat("\xff", p.d/8+1))
	return p.Range("", maxKey, 0)
}
